file(REMOVE_RECURSE
  "CMakeFiles/fig7_success_f6_q06.dir/fig7_success_f6_q06.cpp.o"
  "CMakeFiles/fig7_success_f6_q06.dir/fig7_success_f6_q06.cpp.o.d"
  "fig7_success_f6_q06"
  "fig7_success_f6_q06.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_success_f6_q06.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
