# Empty dependencies file for fig7_success_f6_q06.
# This may be replaced when dependencies are built.
