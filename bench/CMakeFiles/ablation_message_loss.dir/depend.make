# Empty dependencies file for ablation_message_loss.
# This may be replaced when dependencies are built.
