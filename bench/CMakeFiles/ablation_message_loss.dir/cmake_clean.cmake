file(REMOVE_RECURSE
  "CMakeFiles/ablation_message_loss.dir/ablation_message_loss.cpp.o"
  "CMakeFiles/ablation_message_loss.dir/ablation_message_loss.cpp.o.d"
  "ablation_message_loss"
  "ablation_message_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_message_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
