# Empty dependencies file for ablation_membership_view.
# This may be replaced when dependencies are built.
