file(REMOVE_RECURSE
  "CMakeFiles/ablation_membership_view.dir/ablation_membership_view.cpp.o"
  "CMakeFiles/ablation_membership_view.dir/ablation_membership_view.cpp.o.d"
  "ablation_membership_view"
  "ablation_membership_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_membership_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
