file(REMOVE_RECURSE
  "CMakeFiles/ablation_fanout_distributions.dir/ablation_fanout_distributions.cpp.o"
  "CMakeFiles/ablation_fanout_distributions.dir/ablation_fanout_distributions.cpp.o.d"
  "ablation_fanout_distributions"
  "ablation_fanout_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fanout_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
