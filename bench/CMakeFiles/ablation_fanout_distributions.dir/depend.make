# Empty dependencies file for ablation_fanout_distributions.
# This may be replaced when dependencies are built.
