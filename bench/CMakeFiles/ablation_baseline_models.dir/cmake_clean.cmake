file(REMOVE_RECURSE
  "CMakeFiles/ablation_baseline_models.dir/ablation_baseline_models.cpp.o"
  "CMakeFiles/ablation_baseline_models.dir/ablation_baseline_models.cpp.o.d"
  "ablation_baseline_models"
  "ablation_baseline_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_baseline_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
