# Empty dependencies file for ablation_baseline_models.
# This may be replaced when dependencies are built.
