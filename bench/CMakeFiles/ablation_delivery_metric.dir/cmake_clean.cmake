file(REMOVE_RECURSE
  "CMakeFiles/ablation_delivery_metric.dir/ablation_delivery_metric.cpp.o"
  "CMakeFiles/ablation_delivery_metric.dir/ablation_delivery_metric.cpp.o.d"
  "ablation_delivery_metric"
  "ablation_delivery_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_delivery_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
