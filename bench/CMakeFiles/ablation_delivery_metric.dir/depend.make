# Empty dependencies file for ablation_delivery_metric.
# This may be replaced when dependencies are built.
