
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/perf_microbench.cpp" "bench/CMakeFiles/perf_microbench.dir/perf_microbench.cpp.o" "gcc" "bench/CMakeFiles/perf_microbench.dir/perf_microbench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gossip_experiment.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_scenario.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_graph.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_parallel.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_protocol.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_core.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_obs.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_stats.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_membership.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_net.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_rng.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_math.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
