# Empty dependencies file for fig6_success_f4_q09.
# This may be replaced when dependencies are built.
