file(REMOVE_RECURSE
  "CMakeFiles/fig6_success_f4_q09.dir/fig6_success_f4_q09.cpp.o"
  "CMakeFiles/fig6_success_f4_q09.dir/fig6_success_f4_q09.cpp.o.d"
  "fig6_success_f4_q09"
  "fig6_success_f4_q09.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_success_f4_q09.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
