# Empty dependencies file for fig2_mean_fanout.
# This may be replaced when dependencies are built.
