file(REMOVE_RECURSE
  "CMakeFiles/fig2_mean_fanout.dir/fig2_mean_fanout.cpp.o"
  "CMakeFiles/fig2_mean_fanout.dir/fig2_mean_fanout.cpp.o.d"
  "fig2_mean_fanout"
  "fig2_mean_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_mean_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
