file(REMOVE_RECURSE
  "CMakeFiles/fig5_reliability_n5000.dir/fig5_reliability_n5000.cpp.o"
  "CMakeFiles/fig5_reliability_n5000.dir/fig5_reliability_n5000.cpp.o.d"
  "fig5_reliability_n5000"
  "fig5_reliability_n5000.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_reliability_n5000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
