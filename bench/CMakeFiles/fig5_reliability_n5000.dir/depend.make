# Empty dependencies file for fig5_reliability_n5000.
# This may be replaced when dependencies are built.
