# Empty dependencies file for ablation_anti_entropy.
# This may be replaced when dependencies are built.
