file(REMOVE_RECURSE
  "CMakeFiles/ablation_anti_entropy.dir/ablation_anti_entropy.cpp.o"
  "CMakeFiles/ablation_anti_entropy.dir/ablation_anti_entropy.cpp.o.d"
  "ablation_anti_entropy"
  "ablation_anti_entropy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_anti_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
