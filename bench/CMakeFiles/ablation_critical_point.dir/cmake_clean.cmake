file(REMOVE_RECURSE
  "CMakeFiles/ablation_critical_point.dir/ablation_critical_point.cpp.o"
  "CMakeFiles/ablation_critical_point.dir/ablation_critical_point.cpp.o.d"
  "ablation_critical_point"
  "ablation_critical_point.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_critical_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
