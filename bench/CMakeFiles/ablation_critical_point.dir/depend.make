# Empty dependencies file for ablation_critical_point.
# This may be replaced when dependencies are built.
