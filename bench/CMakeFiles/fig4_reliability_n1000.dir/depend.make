# Empty dependencies file for fig4_reliability_n1000.
# This may be replaced when dependencies are built.
