file(REMOVE_RECURSE
  "CMakeFiles/fig4_reliability_n1000.dir/fig4_reliability_n1000.cpp.o"
  "CMakeFiles/fig4_reliability_n1000.dir/fig4_reliability_n1000.cpp.o.d"
  "fig4_reliability_n1000"
  "fig4_reliability_n1000.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_reliability_n1000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
