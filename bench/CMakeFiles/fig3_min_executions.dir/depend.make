# Empty dependencies file for fig3_min_executions.
# This may be replaced when dependencies are built.
