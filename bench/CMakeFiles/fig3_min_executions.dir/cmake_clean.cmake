file(REMOVE_RECURSE
  "CMakeFiles/fig3_min_executions.dir/fig3_min_executions.cpp.o"
  "CMakeFiles/fig3_min_executions.dir/fig3_min_executions.cpp.o.d"
  "fig3_min_executions"
  "fig3_min_executions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_min_executions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
