# Empty dependencies file for ablation_targeted_failures.
# This may be replaced when dependencies are built.
