file(REMOVE_RECURSE
  "CMakeFiles/ablation_targeted_failures.dir/ablation_targeted_failures.cpp.o"
  "CMakeFiles/ablation_targeted_failures.dir/ablation_targeted_failures.cpp.o.d"
  "ablation_targeted_failures"
  "ablation_targeted_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_targeted_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
