# Empty dependencies file for ablation_crash_timing.
# This may be replaced when dependencies are built.
