file(REMOVE_RECURSE
  "CMakeFiles/ablation_crash_timing.dir/ablation_crash_timing.cpp.o"
  "CMakeFiles/ablation_crash_timing.dir/ablation_crash_timing.cpp.o.d"
  "ablation_crash_timing"
  "ablation_crash_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_crash_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
