/// Reproduces paper Figs. 5a/5b: the Fig. 4 sweep at n = 5000. The paper's
/// observation to verify: agreement between simulation and analysis is
/// tighter than at n = 1000 ("our modeling works better in larger scale
/// systems").

#include "reliability_figure.hpp"

int main() {
  gossip::bench::run_reliability_figure("Fig. 5a/5b (E4)", 5000,
                                        "fig5_reliability_n5000.csv");
  return 0;
}
