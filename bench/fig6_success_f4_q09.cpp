/// Reproduces paper Fig. 6: distribution of gossiping-success count X with
/// mean fanout f = 4.0 and non-failed ratio q = 0.9 in a 2000-member group
/// (20 executions per simulation, 100 simulations) against B(20, R).

#include "success_figure.hpp"

int main() {
  gossip::bench::run_success_figure("Fig. 6 (E5)", 4.0, 0.9,
                                    "fig6_success_f4_q09.csv");
  return 0;
}
