/// Ablation A3: message loss, which the paper's model omits (it models only
/// node crashes). Independent per-message loss with probability eps thins
/// every gossip edge, so the model extends naturally:
///     S = 1 - exp(-z * q * (1-eps) * S)
/// i.e. loss multiplies the effective fanout. This bench validates that
/// extension against the graph Monte Carlo with edge thinning.
///
/// Both simulated columns run as scenario-engine grids: the component
/// metric sweeps a Poisson-thinned fanout (Poisson thinning of a Poisson
/// fanout is again Poisson), and the delivery metric sweeps the graph
/// backend's edge_keep probability.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/reliability_model.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace {

/// Exact round-trip formatting: the swept values must parse back to the
/// same doubles the pre-scenario bench computed inline.
std::string fmt_exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

int main() {
  using namespace gossip;
  bench::print_banner("Ablation A3",
                      "Message loss extension: S = 1 - exp(-zq(1-eps)S) vs "
                      "edge-thinned simulation (n = 2000, f = 4, q = 0.9)");

  const double z = 4.0;
  const double q = 0.9;
  const std::vector<double> losses{0.0, 0.1, 0.2, 0.3, 0.4,
                                   0.5, 0.6, 0.7, 0.75, 0.8};

  // Component metric under loss: sample the thinned configuration graph.
  scenario::ScenarioSpec component;
  component.set("name", "ablation_message_loss_component")
      .set("n", "2000")
      .set("backend", "component")
      .set("fanout", "poisson($zt)")
      .set("failure", "crash(0.1)")
      .set("repetitions", "20")
      .set("seed", "5");
  // Delivery metric: full gossip digraph with each edge dropped w.p. eps.
  scenario::ScenarioSpec delivery;
  delivery.set("name", "ablation_message_loss_delivery")
      .set("n", "2000")
      .set("backend", "graph")
      .set("fanout", "poisson(4)")
      .set("failure", "crash(0.1)")
      .set("edge_keep", "$keep")
      .set("repetitions", "20")
      .set("seed", "5");
  for (const double eps : losses) {
    component.add_case({{"zt", fmt_exact(z * (1.0 - eps))}});
    delivery.add_case({{"keep", fmt_exact(1.0 - eps)}});
  }

  const scenario::ScenarioRunner runner;
  const auto component_results = runner.run(component);
  const auto delivery_results = runner.run(delivery);

  const std::string csv_path = experiment::csv_path_in(
      bench::kResultsDir, "ablation_message_loss.csv");
  experiment::CsvWriter csv(
      csv_path, {"loss", "analysis_S", "sim_component_S", "sim_delivery"});

  experiment::TextTable table;
  table.column("loss eps", 9)
      .column("analysis S", 11)
      .column("sim component", 14)
      .column("sim delivery", 13);

  for (std::size_t i = 0; i < losses.size(); ++i) {
    const double eps = losses[i];
    // Thinned-model prediction: same Eq. (11) with z' = z(1-eps).
    const double analysis = core::poisson_reliability(z * (1.0 - eps), q);
    const double component_s = component_results[i].reliability.mean();
    const double delivery_s = delivery_results[i].reliability.mean();

    table.add_row({experiment::fmt_double(eps, 2),
                   experiment::fmt_double(analysis, 4),
                   experiment::fmt_double(component_s, 4),
                   experiment::fmt_double(delivery_s, 4)});
    csv.add_row({experiment::fmt_double(eps, 2),
                 experiment::fmt_double(analysis, 6),
                 experiment::fmt_double(component_s, 6),
                 experiment::fmt_double(delivery_s, 6)});
  }
  table.print(std::cout);

  std::cout << "\nReading: the loss-extended fixed point tracks the "
               "simulation; reliability collapses when\nz q (1-eps) drops "
               "below 1 (here eps > 1 - 1/(zq) = "
            << experiment::fmt_double(1.0 - 1.0 / (z * q), 3) << ").\n";
  bench::print_footer(csv_path);
  return 0;
}
