/// Ablation A3: message loss, which the paper's model omits (it models only
/// node crashes). Independent per-message loss with probability eps thins
/// every gossip edge, so the model extends naturally:
///     S = 1 - exp(-z * q * (1-eps) * S)
/// i.e. loss multiplies the effective fanout. This bench validates that
/// extension against the graph Monte Carlo with edge thinning.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/reliability_model.hpp"
#include "experiment/component_mc.hpp"
#include "experiment/monte_carlo.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace gossip;
  bench::print_banner("Ablation A3",
                      "Message loss extension: S = 1 - exp(-zq(1-eps)S) vs "
                      "edge-thinned simulation (n = 2000, f = 4, q = 0.9)");

  const std::uint32_t n = 2000;
  const double z = 4.0;
  const double q = 0.9;
  const auto dist = core::poisson_fanout(z);

  const std::string csv_path = experiment::csv_path_in(
      bench::kResultsDir, "ablation_message_loss.csv");
  experiment::CsvWriter csv(
      csv_path, {"loss", "analysis_S", "sim_component_S", "sim_delivery"});

  experiment::TextTable table;
  table.column("loss eps", 9)
      .column("analysis S", 11)
      .column("sim component", 14)
      .column("sim delivery", 13);

  for (const double eps :
       {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8}) {
    // Thinned-model prediction: same Eq. (11) with z' = z(1-eps).
    const double analysis = core::poisson_reliability(z * (1.0 - eps), q);

    // Component metric under loss: Poisson thinning of a Poisson fanout is
    // again Poisson, so sample the thinned configuration graph directly.
    const auto thinned = core::poisson_fanout(z * (1.0 - eps));
    experiment::MonteCarloOptions opt;
    opt.replications = 20;
    opt.seed = 5;
    const auto component =
        experiment::estimate_giant_component(n, *thinned, q, opt);

    // Delivery metric: generate the full gossip digraph and drop each edge
    // with probability eps (the protocol-level realization of loss).
    const auto delivery = experiment::estimate_reliability_graph(
        n, *dist, q, opt, /*edge_keep_probability=*/1.0 - eps);

    table.add_row({experiment::fmt_double(eps, 2),
                   experiment::fmt_double(analysis, 4),
                   experiment::fmt_double(
                       component.giant_fraction_alive.mean(), 4),
                   experiment::fmt_double(delivery.mean_reliability(), 4)});
    csv.add_row({experiment::fmt_double(eps, 2),
                 experiment::fmt_double(analysis, 6),
                 experiment::fmt_double(
                     component.giant_fraction_alive.mean(), 6),
                 experiment::fmt_double(delivery.mean_reliability(), 6)});
  }
  table.print(std::cout);

  std::cout << "\nReading: the loss-extended fixed point tracks the "
               "simulation; reliability collapses when\nz q (1-eps) drops "
               "below 1 (here eps > 1 - 1/(zq) = "
            << experiment::fmt_double(1.0 - 1.0 / (z * q), 3) << ").\n";
  bench::print_footer(csv_path);
  return 0;
}
