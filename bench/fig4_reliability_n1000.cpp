/// Reproduces paper Figs. 4a/4b: reliability of gossiping vs mean fanout in
/// a 1000-member group, q in {0.1, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0} (the union
/// of the 4a and 4b grids), 20 runs per {f, q} point.

#include "reliability_figure.hpp"

int main() {
  gossip::bench::run_reliability_figure("Fig. 4a/4b (E3)", 1000,
                                        "fig4_reliability_n1000.csv");
  return 0;
}
