/// Ablation A9: one-shot gossip (Fig. 1) vs anti-entropy rounds (push /
/// pull / push-pull, Demers et al. [2]). Reports rounds-to-coverage and
/// message budgets, simulation vs the mean-field recurrences — what the
/// repeated-executions model (Eqs. 5-6) trades away by not keeping state
/// between rounds.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/baselines/anti_entropy_model.hpp"
#include "core/reliability_model.hpp"
#include "core/success_model.hpp"
#include "protocol/anti_entropy.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace gossip;
  bench::print_banner("Ablation A9",
                      "Anti-entropy (push/pull/push-pull, fanout 1/round) "
                      "vs repeated one-shot gossip (n = 2000, q = 0.9)");

  const std::uint32_t n = 2000;
  const double q = 0.9;
  const std::int64_t budget_rounds = 30;

  const std::string csv_path = experiment::csv_path_in(
      bench::kResultsDir, "ablation_anti_entropy.csv");
  experiment::CsvWriter csv(csv_path,
                            {"mode", "rounds_to_coverage_sim",
                             "rounds_to_coverage_model", "messages_sim"});

  experiment::TextTable table;
  table.column("mode", 10)
      .column("rounds(sim)", 12)
      .column("rounds(model)", 14)
      .column("messages", 10);

  struct Case {
    std::string label;
    protocol::ExchangeMode sim_mode;
    core::baselines::AntiEntropyMode model_mode;
  };
  const std::vector<Case> cases{
      {"push", protocol::ExchangeMode::kPush,
       core::baselines::AntiEntropyMode::kPush},
      {"pull", protocol::ExchangeMode::kPull,
       core::baselines::AntiEntropyMode::kPull},
      {"push-pull", protocol::ExchangeMode::kPushPull,
       core::baselines::AntiEntropyMode::kPushPull},
  };

  for (const auto& c : cases) {
    protocol::AntiEntropyParams params;
    params.num_nodes = n;
    params.nonfailed_ratio = q;
    params.fanout = core::fixed_fanout(1);
    params.rounds = budget_rounds;
    params.mode = c.sim_mode;

    const rng::RngStream root(37);
    stats::OnlineSummary rounds;
    stats::OnlineSummary messages;
    std::size_t converged = 0;
    const std::size_t reps = 15;
    for (std::size_t i = 0; i < reps; ++i) {
      auto rng = root.substream(i);
      const auto result = protocol::run_anti_entropy(params, rng);
      if (result.rounds_to_full_coverage > 0) {
        rounds.add(static_cast<double>(result.rounds_to_full_coverage));
        ++converged;
      }
      messages.add(static_cast<double>(result.execution.messages_sent));
    }

    core::baselines::AntiEntropyModelParams mp;
    mp.num_members = n;
    mp.fanout = 1.0;
    mp.nonfailed_ratio = q;
    mp.mode = c.model_mode;
    // Model target: every survivor, i.e. fraction 1 - 1/(nq).
    std::string model_rounds = "n/a";
    try {
      model_rounds = std::to_string(core::baselines::
              anti_entropy_rounds_to_fraction(
                  mp, 1.0 - 1.0 / (static_cast<double>(n) * q), 2000));
    } catch (const std::domain_error&) {
      // push alone plateaus below full coverage in the mean-field limit
    }

    const std::string sim_rounds =
        converged > 0 ? experiment::fmt_double(rounds.mean(), 1) + " (" +
                            std::to_string(converged) + "/" +
                            std::to_string(reps) + ")"
                      : "did not converge";
    table.add_row({c.label, sim_rounds, model_rounds,
                   experiment::fmt_double(messages.mean(), 0)});
    csv.add_row({c.label,
                 converged > 0 ? experiment::fmt_double(rounds.mean(), 2)
                               : "-1",
                 model_rounds, experiment::fmt_double(messages.mean(), 0)});
  }
  table.print(std::cout);

  // The one-shot comparison: repeated Fig. 1 executions per Eqs. (5)-(6).
  const double r = core::poisson_reliability(4.0, q);
  const auto t = core::required_executions(r, 1.0 - 1.0 / (n * q));
  std::cout << "\nOne-shot comparison: Fig. 1 gossip with Poisson(4) has "
               "R = "
            << experiment::fmt_double(r, 4) << "; reaching every survivor "
            << "w.p. 1-1/(nq) needs t = " << t << " executions ~ "
            << t * 4 * static_cast<int>(n * q) << " messages.\n"
            << "Anti-entropy reaches certainty on the connected survivors "
               "with stateful rounds instead;\npush-pull needs the fewest "
               "rounds, pull pays reply messages, push stalls on the last "
               "stragglers.\n";
  bench::print_footer(csv_path);
  return 0;
}
