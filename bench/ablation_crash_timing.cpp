/// Ablation A7: WHEN failures happen. The paper treats crashes as static
/// ("before receiving, or after receiving but before forwarding"); this
/// ablation sweeps the crash time across the dissemination and shows the
/// static model is exactly the early-crash limit, while late crashes cost
/// nothing — bounding how conservative the paper's model is for real churn.
///
/// The sweep itself is a scenario-engine grid (scenario/runner.hpp): the
/// crash window is the swept variable of a midrun_crash failure spec, and
/// the runner owns the replication/seeding loop this bench used to
/// hand-roll.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/branching.hpp"
#include "core/reliability_model.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

int main() {
  using namespace gossip;
  bench::print_banner("Ablation A7",
                      "Crash timing: 40% of members crash during "
                      "dissemination (n = 1500, Poisson(5), unit latency)");

  const double z = 5.0;
  const double crash_fraction = 0.4;
  const double q_equiv = 1.0 - crash_fraction;

  const auto gf = core::GeneratingFunction::from_distribution(
      *core::poisson_fanout(z));
  const double static_delivery =
      core::analyze_directed_gossip(gf, q_equiv).expected_delivery;
  const double nocrash_delivery =
      core::analyze_directed_gossip(gf, 1.0).expected_delivery;

  std::cout << "Static-failure model bounds (delivery metric):\n"
            << "  crash-at-t=0 equivalent (q = " << q_equiv
            << "): " << experiment::fmt_double(static_delivery, 4) << "\n"
            << "  no-crash equivalent (q = 1.0):   "
            << experiment::fmt_double(nocrash_delivery, 4) << "\n\n";

  const std::vector<std::pair<double, double>> windows{
      {0.0, 0.1}, {1.0, 2.0}, {2.0, 3.0}, {3.0, 4.0},
      {4.0, 6.0}, {6.0, 9.0}, {12.0, 15.0}, {50.0, 60.0}};

  scenario::ScenarioSpec spec;
  spec.set("name", "ablation_crash_timing")
      .set("n", "1500")
      .set("fanout", "poisson(5)")
      .set("failure", "midrun_crash(0.4, $lo, $hi)")
      .set("repetitions", "30")
      .set("seed", "19");
  for (const auto& [lo, hi] : windows) {
    spec.add_case({{"lo", experiment::fmt_double(lo, 1)},
                   {"hi", experiment::fmt_double(hi, 1)}});
  }
  const auto results = scenario::ScenarioRunner().run(spec);

  const std::string csv_path = experiment::csv_path_in(
      bench::kResultsDir, "ablation_crash_timing.csv");
  experiment::CsvWriter csv(
      csv_path, {"crash_window_center", "delivery_mean", "midrun_crashes"});

  experiment::TextTable table;
  table.column("crash window", 14)
      .column("delivery", 9)
      .column("crashes", 8);

  for (std::size_t i = 0; i < windows.size(); ++i) {
    const auto& [lo, hi] = windows[i];
    const auto& result = results[i];
    const std::string window = "[" + experiment::fmt_double(lo, 1) + "," +
                               experiment::fmt_double(hi, 1) + "]";
    table.add_row({window,
                   experiment::fmt_double(result.reliability.mean(), 4),
                   experiment::fmt_double(result.midrun_crashes.mean(), 0)});
    csv.add_row({experiment::fmt_double(0.5 * (lo + hi), 2),
                 experiment::fmt_double(result.reliability.mean(), 6),
                 experiment::fmt_double(result.midrun_crashes.mean(), 1)});
  }
  table.print(std::cout);

  std::cout << "\nReading: delivery interpolates from the static-failure "
               "prediction (early windows) up to the\nno-crash level once "
               "the crash window passes the ~log(n)/log(zq) hop depth of "
               "the cascade.\nThe paper's static model is the worst case "
               "over crash timings — safe for provisioning.\n";
  bench::print_footer(csv_path);
  return 0;
}
