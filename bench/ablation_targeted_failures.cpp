/// Ablation A6: targeted failures through the paper's general Eq. (1). The
/// model's q_k freedom (occupancy per degree) covers failure patterns the
/// uniform-q case study cannot: hubs crashing preferentially (attack),
/// hubs hardened (protection). Analysis vs per-degree-occupancy Monte Carlo
/// on a heavy-tailed fanout where hubs matter.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/degree_distribution.hpp"
#include "core/percolation.hpp"
#include "experiment/component_mc.hpp"

int main() {
  using namespace gossip;
  bench::print_banner("Ablation A6",
                      "Targeted failures via per-degree occupancy q_k "
                      "(geometric fanout, mean 4, n = 3000)");

  const auto dist = core::geometric_fanout(4.0);
  const auto gf = core::GeneratingFunction::from_distribution(*dist);

  struct Scenario {
    std::string label;
    core::OccupancyFunction occupancy;
  };
  const std::vector<Scenario> scenarios{
      {"uniform-q0.80", [](std::int64_t) { return 0.80; }},
      {"hubs-die(k>=8)", [](std::int64_t k) { return k >= 8 ? 0.0 : 1.0; }},
      {"hubs-safe(k>=8)",
       [](std::int64_t k) { return k >= 8 ? 1.0 : 0.72; }},
      {"leaves-die(k<=1)",
       [](std::int64_t k) { return k <= 1 ? 0.0 : 1.0; }},
  };

  const std::string csv_path = experiment::csv_path_in(
      bench::kResultsDir, "ablation_targeted_failures.csv");
  experiment::CsvWriter csv(csv_path,
                            {"scenario", "survivors", "transmissibility",
                             "analysis_R", "sim_R"});

  experiment::TextTable table;
  table.column("scenario", 17)
      .column("survivors", 10)
      .column("F1'(1)", 8)
      .column("analysis R", 11)
      .column("sim R", 9);

  for (const auto& s : scenarios) {
    const auto analysis = core::analyze_occupancy_percolation(gf, s.occupancy);
    experiment::MonteCarloOptions opt;
    opt.replications = 20;
    opt.seed = 41;
    const auto est = experiment::estimate_giant_component_occupancy(
        3000, *dist, s.occupancy, opt);
    table.add_row({s.label,
                   experiment::fmt_double(analysis.occupied_fraction, 4),
                   experiment::fmt_double(analysis.mean_transmissibility, 3),
                   experiment::fmt_double(analysis.reliability, 4),
                   experiment::fmt_double(
                       est.giant_fraction_alive.mean(), 4)});
    csv.add_row({s.label,
                 experiment::fmt_double(analysis.occupied_fraction, 6),
                 experiment::fmt_double(analysis.mean_transmissibility, 6),
                 experiment::fmt_double(analysis.reliability, 6),
                 experiment::fmt_double(est.giant_fraction_alive.mean(), 6)});
  }
  table.print(std::cout);

  std::cout << "\nReading: losing the few high-fanout members ('hubs-die') "
               "costs far more transmissibility than\nlosing the same or a "
               "larger fraction of members uniformly — and hardening hubs "
               "buys back most of it.\nFault-tolerant gossip should place "
               "reliable members where the fanout mass is.\n";
  bench::print_footer(csv_path);
  return 0;
}
