/// Ablation A5: the phase transition. Eq. (3)/(10) predicts the critical
/// non-failed ratio q_c = 1/G1'(1) (= 1/z for Poisson). Sweeps q finely
/// through the predicted transition for several distributions and group
/// sizes, locating the empirical knee and the finite-size sharpening the
/// paper observes between n = 1000 and n = 5000.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/degree_distribution.hpp"
#include "core/percolation.hpp"
#include "experiment/component_mc.hpp"
#include "experiment/sweep.hpp"

int main() {
  using namespace gossip;
  bench::print_banner("Ablation A5",
                      "Phase transition location vs Eq. (3) prediction");

  const std::string csv_path = experiment::csv_path_in(
      bench::kResultsDir, "ablation_critical_point.csv");
  experiment::CsvWriter csv(
      csv_path, {"distribution", "n", "q", "analysis_R", "sim_R"});

  struct Case {
    core::DegreeDistributionPtr dist;
    std::uint32_t n;
  };
  const std::vector<Case> cases{
      {core::poisson_fanout(4.0), 1000},
      {core::poisson_fanout(4.0), 5000},
      {core::fixed_fanout(4), 2000},
      {core::geometric_fanout(4.0), 2000},
  };

  for (const auto& c : cases) {
    const auto gf = core::GeneratingFunction::from_distribution(*c.dist);
    const double qc = core::critical_nonfailed_ratio(gf);
    std::cout << "\n-- " << c.dist->name() << ", n = " << c.n
              << "  (predicted q_c = " << experiment::fmt_double(qc, 4)
              << ") --\n";
    experiment::TextTable table;
    table.column("q", 7).column("analysis R", 11).column("sim R", 9);

    // Fine sweep across [0.4 q_c, 2.5 q_c], clipped to (0, 1].
    for (double ratio = 0.4; ratio <= 2.5; ratio += 0.15) {
      const double q = std::min(1.0, qc * ratio);
      const double analysis =
          core::analyze_site_percolation(gf, q).reliability;
      experiment::MonteCarloOptions opt;
      opt.replications = 20;
      opt.seed = 29;
      const auto est =
          experiment::estimate_giant_component(c.n, *c.dist, q, opt);
      table.add_row({experiment::fmt_double(q, 4),
                     experiment::fmt_double(analysis, 4),
                     experiment::fmt_double(
                         est.giant_fraction_alive.mean(), 4)});
      csv.add_row({c.dist->name(), std::to_string(c.n),
                   experiment::fmt_double(q, 4),
                   experiment::fmt_double(analysis, 6),
                   experiment::fmt_double(est.giant_fraction_alive.mean(),
                                          6)});
      if (q >= 1.0) break;
    }
    table.print(std::cout);
  }

  std::cout << "\nReading: below q_c the simulated giant fraction decays "
               "with n (finite-size largest component);\nabove q_c it locks "
               "onto the analysis. Larger n sharpens the knee — the paper's "
               "Fig. 4-vs-5 observation.\n";
  bench::print_footer(csv_path);
  return 0;
}
