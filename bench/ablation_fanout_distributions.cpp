/// Ablation A1: does the *shape* of the fanout distribution matter at equal
/// mean? This is the paper's motivation for supporting arbitrary P — the
/// generalized-random-graph analysis predicts that the critical point
/// q_c = 1/G1'(1) depends on the distribution's second factorial moment,
/// not just its mean. Compares fixed, Poisson, uniform, binomial, geometric
/// and zipf fanouts at (approximately) equal mean across a failure sweep,
/// analysis vs component simulation.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/degree_distribution.hpp"
#include "core/percolation.hpp"
#include "experiment/component_mc.hpp"
#include "experiment/sweep.hpp"

int main() {
  using namespace gossip;
  bench::print_banner("Ablation A1",
                      "Fanout distribution shape at equal mean ~ 4: "
                      "reliability and critical point");

  // All means ~= 4.0 (zipf is tuned to land close).
  const std::vector<core::DegreeDistributionPtr> dists{
      core::fixed_fanout(4),
      core::poisson_fanout(4.0),
      core::uniform_fanout(1, 7),
      core::binomial_fanout(8, 0.5),
      core::geometric_fanout(4.0),
      core::zipf_fanout(64, 1.18),
  };

  const std::string csv_path = experiment::csv_path_in(
      bench::kResultsDir, "ablation_fanout_distributions.csv");
  experiment::CsvWriter csv(csv_path, {"distribution", "mean", "critical_q",
                                       "q", "analysis_R", "sim_R"});

  std::cout << "\nCritical non-failed ratio per distribution (Eq. 3):\n";
  experiment::TextTable crit_table;
  crit_table.column("distribution", 18).column("mean", 8).column("q_c", 8);
  for (const auto& dist : dists) {
    const auto gf = core::GeneratingFunction::from_distribution(*dist);
    crit_table.add_row({dist->name(),
                        experiment::fmt_double(dist->mean(), 3),
                        experiment::fmt_double(
                            core::critical_nonfailed_ratio(gf), 4)});
  }
  crit_table.print(std::cout);

  const std::vector<double> q_grid{0.15, 0.25, 0.4, 0.6, 0.8, 1.0};
  for (const auto& dist : dists) {
    const auto gf = core::GeneratingFunction::from_distribution(*dist);
    const double qc = core::critical_nonfailed_ratio(gf);
    std::cout << "\n-- " << dist->name() << " --\n";
    experiment::TextTable table;
    table.column("q", 6).column("analysis R", 11).column("sim R", 9);
    for (const double q : q_grid) {
      const double analysis =
          core::analyze_site_percolation(gf, q).reliability;
      experiment::MonteCarloOptions opt;
      opt.replications = 20;
      opt.seed = 11;
      const auto est =
          experiment::estimate_giant_component(2000, *dist, q, opt);
      table.add_row({experiment::fmt_double(q, 2),
                     experiment::fmt_double(analysis, 4),
                     experiment::fmt_double(
                         est.giant_fraction_alive.mean(), 4)});
      csv.add_row({dist->name(), experiment::fmt_double(dist->mean(), 4),
                   experiment::fmt_double(qc, 4),
                   experiment::fmt_double(q, 2),
                   experiment::fmt_double(analysis, 6),
                   experiment::fmt_double(est.giant_fraction_alive.mean(),
                                          6)});
    }
    table.print(std::cout);
  }

  std::cout
      << "\nReading: at equal mean fanout, low-variance distributions "
         "(fixed) maximize reliability in the\nsupercritical regime, while "
         "heavy-tailed ones (geometric, zipf) percolate at smaller q_c but "
         "deliver\nlower plateau reliability — the trade-off the paper's "
         "arbitrary-P analysis exposes.\n";
  bench::print_footer(csv_path);
  return 0;
}
