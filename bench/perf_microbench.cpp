/// P1: google-benchmark microbenchmarks of the hot paths — percolation
/// solves, random-graph generation, reachability/components, the DES event
/// loop, and the samplers. These bound the cost of every experiment in the
/// harness.

#include <benchmark/benchmark.h>

#include "core/percolation.hpp"
#include "core/reliability_model.hpp"
#include "experiment/meanfield.hpp"
#include "experiment/monte_carlo.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/reachability.hpp"
#include "protocol/flat_gossip.hpp"
#include "protocol/gossip_multicast.hpp"
#include "rng/distributions.hpp"
#include "rng/lut_sampler.hpp"
#include "scenario/topology.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace gossip;

void BM_PoissonReliabilityClosedForm(benchmark::State& state) {
  double q = 0.5;
  for (auto _ : state) {
    q = q < 0.99 ? q + 1e-6 : 0.5;  // defeat caching
    benchmark::DoNotOptimize(core::poisson_reliability(4.0, q));
  }
}
BENCHMARK(BM_PoissonReliabilityClosedForm);

void BM_GenericPercolationSolve(benchmark::State& state) {
  const auto gf = core::GeneratingFunction::from_distribution(
      *core::poisson_fanout(4.0));
  double q = 0.5;
  for (auto _ : state) {
    q = q < 0.99 ? q + 1e-6 : 0.5;
    benchmark::DoNotOptimize(core::analyze_site_percolation(gf, q));
  }
}
BENCHMARK(BM_GenericPercolationSolve);

void BM_PoissonSampling(benchmark::State& state) {
  rng::RngStream rng(1);
  const double mean = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::sample_poisson(rng, mean));
  }
}
BENCHMARK(BM_PoissonSampling)->Arg(4)->Arg(40);

void BM_SampleDistinctTargets(benchmark::State& state) {
  rng::RngStream rng(2);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::sample_distinct_excluding(rng, 8, n, 0));
  }
}
BENCHMARK(BM_SampleDistinctTargets)->Arg(1000)->Arg(100000);

void BM_GossipDigraphGeneration(benchmark::State& state) {
  rng::RngStream rng(3);
  graph::GossipGraphParams params;
  params.num_nodes = static_cast<std::uint32_t>(state.range(0));
  params.alive_probability = 0.9;
  const auto dist = core::poisson_fanout(4.0);
  const auto sampler = dist->sampler();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::make_gossip_digraph(params, sampler, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GossipDigraphGeneration)->Arg(1000)->Arg(5000);

void BM_DirectedReach(benchmark::State& state) {
  rng::RngStream rng(4);
  graph::GossipGraphParams params;
  params.num_nodes = static_cast<std::uint32_t>(state.range(0));
  params.alive_probability = 0.9;
  const auto dist = core::poisson_fanout(4.0);
  const auto gg = graph::make_gossip_digraph(params, dist->sampler(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::directed_reach(gg.graph, gg.source));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DirectedReach)->Arg(1000)->Arg(5000);

void BM_UndirectedComponents(benchmark::State& state) {
  rng::RngStream rng(5);
  const auto dist = core::poisson_fanout(4.0);
  const auto g = graph::configuration_model_from_sampler(
      static_cast<std::uint32_t>(state.range(0)), dist->sampler(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::undirected_components(g));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_UndirectedComponents)->Arg(1000)->Arg(5000);

void BM_DesEventLoop(benchmark::State& state) {
  const auto events = state.range(0);
  for (auto _ : state) {
    sim::Simulator simulator;
    for (std::int64_t i = 0; i < events; ++i) {
      (void)simulator.schedule_at(static_cast<double>(i % 97), [] {});
    }
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_DesEventLoop)->Arg(10000);

void BM_FullProtocolExecution(benchmark::State& state) {
  protocol::GossipParams params;
  params.num_nodes = static_cast<std::uint32_t>(state.range(0));
  params.nonfailed_ratio = 0.9;
  params.fanout = core::poisson_fanout(4.0);
  rng::RngStream rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol::run_gossip_once(params, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullProtocolExecution)->Arg(1000);

void BM_Lut88SamplerDraw(benchmark::State& state) {
  const auto dist = core::poisson_fanout(4.0);
  const rng::Lut88Sampler sampler(dist->pmf_vector(1e-9));
  rng::RngStream rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_Lut88SamplerDraw);

// The headline pair: one full execution at the Fig. 4 operating point
// (Poisson(4) fanout, q = 0.9) through the message-level DES reference vs
// the flat struct-of-arrays round engine. tools/bench_compare.py gates the
// flat/reference ratio; the ISSUE's acceptance bar is >= 5x at n = 10^5.
void BM_RoundLoopReference(benchmark::State& state) {
  protocol::GossipParams params;
  params.num_nodes = static_cast<std::uint32_t>(state.range(0));
  params.nonfailed_ratio = 0.9;
  params.fanout = core::poisson_fanout(4.0);
  rng::RngStream rng(2008);
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol::run_gossip_once(params, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RoundLoopReference)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_RoundLoopFlat(benchmark::State& state) {
  protocol::FlatGossipParams params;
  params.num_nodes = static_cast<std::uint64_t>(state.range(0));
  params.nonfailed_ratio = 0.9;
  params.fanout = core::poisson_fanout(4.0);
  protocol::FlatGossipEngine engine(params);
  rng::RngStream rng(2008);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_once(rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RoundLoopFlat)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

// Same round loop with a RoundTrace probe attached: the delta against
// BM_RoundLoopFlat is the whole cost of per-round observation (a handful
// of counter subtractions and one virtual call per round — sub-percent).
// The null-probe case is gated separately in CI: BM_RoundLoopFlat itself
// must stay within 1.05x of the committed pre-instrumentation baseline.
void BM_RoundLoopFlatTraced(benchmark::State& state) {
  protocol::FlatGossipParams params;
  params.num_nodes = static_cast<std::uint64_t>(state.range(0));
  params.nonfailed_ratio = 0.9;
  params.fanout = core::poisson_fanout(4.0);
  protocol::FlatGossipEngine engine(params);
  rng::RngStream rng(2008);
  obs::RoundTrace trace;
  for (auto _ : state) {
    trace.clear();
    benchmark::DoNotOptimize(engine.run_once(rng, &trace));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RoundLoopFlatTraced)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

// The topology hot path: the same flat round loop with neighbor-restricted
// selection over a million-node ER overlay (mean degree 16, built ONCE
// outside the timing loop, shared CSR). The delta against BM_RoundLoopFlat
// at the same n is the whole cost of CSR indexing plus the 3-branch
// neighbor sampler; bench_compare.py gates it like every other entry.
void BM_FlatGossipTopology(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  scenario::TopologyConfig config;
  config.family = scenario::TopologyFamily::kEr;
  config.has_p = true;
  config.p = 16.0 / static_cast<double>(n - 1);
  protocol::FlatGossipParams params;
  params.num_nodes = n;
  params.nonfailed_ratio = 0.9;
  params.fanout = core::poisson_fanout(4.0);
  params.topology = scenario::build_topology_adjacency(config,
      static_cast<std::uint32_t>(n), 2008);
  protocol::FlatGossipEngine engine(params);
  rng::RngStream rng(2008);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_once(rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlatGossipTopology)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_GraphMonteCarloReplication(benchmark::State& state) {
  const auto dist = core::poisson_fanout(4.0);
  experiment::MonteCarloOptions opt;
  opt.replications = 1;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    opt.seed = ++seed;
    benchmark::DoNotOptimize(experiment::estimate_reliability_graph(
        static_cast<std::uint32_t>(state.range(0)), *dist, 0.9, opt));
  }
}
BENCHMARK(BM_GraphMonteCarloReplication)->Arg(1000);

// The analytic engine end to end — pmf extraction, recurrence trajectory,
// Brent fixed point, extinction PGF — at the Fig. 4 operating point with a
// million members. Cost depends on the fanout support and the O(log n)
// round count, not on n: this is the estimate the scenario runner gets for
// `engine = meanfield` instead of replications. CI gates it >= 100x faster
// than ONE flat-engine replication at the same n within the same run
// (tools/bench_compare.py --min-speedup), keeping the "microseconds vs
// replications" promise honest.
void BM_MeanFieldPredict(benchmark::State& state) {
  protocol::FlatGossipParams params;
  params.num_nodes = static_cast<std::uint64_t>(state.range(0));
  params.nonfailed_ratio = 0.9;
  params.fanout = core::poisson_fanout(4.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        experiment::estimate_reliability_meanfield(params));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MeanFieldPredict)->Arg(1000000);

// Which sanitizer (if any) this binary was built with. Stamped into the
// benchmark JSON context so tools/bench_compare.py can refuse sanitized
// baselines and downgrade ratio gates on sanitized runs — sanitizer
// builds are 2-20x slower and must never be compared against clean
// baselines as if they measured the same thing.
const char* sanitizer_name() {
#if defined(__SANITIZE_THREAD__)
  return "thread";
#elif defined(__SANITIZE_ADDRESS__)
  return "address";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  return "thread";
#elif __has_feature(address_sanitizer)
  return "address";
#elif __has_feature(memory_sanitizer)
  return "memory";
#else
  return "none";
#endif
#else
  return "none";
#endif
}

}  // namespace

// Expanded BENCHMARK_MAIN() so the sanitizer context lands in every
// output format before benchmarks run.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("sanitizer", sanitizer_name());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
