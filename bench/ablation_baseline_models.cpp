/// Ablation A4: model shootout. The related-work section contrasts three
/// modeling lineages — the pbcast recurrence, the SI epidemic, and the
/// KMG/Microsoft random-graph success model — with the paper's percolation
/// model. This bench puts all four against the same simulated ground truth.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/baselines/kmg_model.hpp"
#include "core/baselines/pbcast_recurrence.hpp"
#include "core/baselines/si_epidemic.hpp"
#include "core/reliability_model.hpp"
#include "experiment/component_mc.hpp"
#include "experiment/monte_carlo.hpp"

int main() {
  using namespace gossip;
  bench::print_banner(
      "Ablation A4",
      "Percolation model vs pbcast recurrence vs SI epidemic vs KMG "
      "(n = 2000, q = 0.9)");

  const std::uint32_t n = 2000;
  const double q = 0.9;

  const std::string csv_path = experiment::csv_path_in(
      bench::kResultsDir, "ablation_baseline_models.csv");
  experiment::CsvWriter csv(
      csv_path, {"f", "sim_component", "percolation_S", "pbcast_forward_once",
                 "si_saturation", "kmg_success", "sim_success_rate"});

  experiment::TextTable table;
  table.column("f", 5)
      .column("sim", 8)
      .column("percolation", 12)
      .column("pbcast-mf", 10)
      .column("SI", 6)
      .column("KMG succ", 9)
      .column("sim succ", 9);

  for (const double f : {1.5, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0}) {
    const auto dist = core::poisson_fanout(f);
    experiment::MonteCarloOptions opt;
    opt.replications = 20;
    opt.seed = 3;
    const auto sim = experiment::estimate_giant_component(n, *dist, q, opt);
    const auto delivery =
        experiment::estimate_reliability_graph(n, *dist, q, opt);

    const double percolation = core::poisson_reliability(f, q);

    // pbcast mean-field, forward-once (the Fig. 1 protocol's round analog);
    // run enough rounds to converge.
    core::baselines::RoundGossipParams rp;
    rp.num_members = n;
    rp.fanout = f;
    rp.nonfailed_ratio = q;
    rp.rounds = 60;
    const double pbcast =
        core::baselines::pbcast_expected_infected_forward_once(rp).back();

    // SI epidemic: always saturates for any positive seed — report its
    // long-run value (the deficiency the paper points out).
    core::baselines::SiParams sp;
    sp.contact_rate = f;
    sp.nonfailed_ratio = q;
    sp.initial_infected_fraction = 1.0 / static_cast<double>(n);
    sp.t_end = 50.0;
    sp.dt = 0.01;
    const double si =
        core::baselines::si_trajectory(sp).back().infected_fraction;

    const double kmg = core::baselines::kmg_success_probability(
        static_cast<std::int64_t>(n), f, 1.0 - q);

    table.add_row({experiment::fmt_double(f, 1),
                   experiment::fmt_double(sim.giant_fraction_alive.mean(), 4),
                   experiment::fmt_double(percolation, 4),
                   experiment::fmt_double(pbcast, 4),
                   experiment::fmt_double(si, 2),
                   experiment::fmt_double(kmg, 4),
                   experiment::fmt_double(delivery.success_rate(), 4)});
    csv.add_row({experiment::fmt_double(f, 1),
                 experiment::fmt_double(sim.giant_fraction_alive.mean(), 6),
                 experiment::fmt_double(percolation, 6),
                 experiment::fmt_double(pbcast, 6),
                 experiment::fmt_double(si, 6),
                 experiment::fmt_double(kmg, 6),
                 experiment::fmt_double(delivery.success_rate(), 6)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading: the percolation model tracks the simulated reliability "
         "across the whole range,\nincluding the f < 1/q die-out regime. The "
         "pbcast mean-field recurrence is close but blind to\nstochastic "
         "die-out; SI predicts saturation everywhere (no failure notion); "
         "KMG predicts only the\nall-members success probability, which "
         "stays ~0 until f approaches ln n' ~ "
      << experiment::fmt_double(std::log(static_cast<double>(n) * q), 2)
      << ".\n";
  bench::print_footer(csv_path);
  return 0;
}
