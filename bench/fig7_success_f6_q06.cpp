/// Reproduces paper Fig. 7: the Fig. 6 experiment at f = 6.0, q = 0.6 —
/// the same product f*q = 3.6 and hence the same per-execution reliability
/// R as Fig. 6, but a different failure environment. The paper's point:
/// the two distributions are close to the same B(20, R) yet not identical,
/// because f and q influence the success of gossiping differently.

#include "success_figure.hpp"

int main() {
  gossip::bench::run_success_figure("Fig. 7 (E6)", 6.0, 0.6,
                                    "fig7_success_f6_q06.csv");
  return 0;
}
