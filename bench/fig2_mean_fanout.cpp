/// Reproduces paper Fig. 2: the mean Poisson fanout z required to reach a
/// target reliability S at non-failed ratio q (Eq. 12,
/// z = -ln(1-S)/(qS)), for q in {0.2, 0.4, 0.6, 0.8, 1.0} and S swept over
/// [0.1111, 0.9999] — "the reliability of gossiping ranges from 0.1111 to
/// 0.9999" (Section 4.3).

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/reliability_model.hpp"
#include "experiment/sweep.hpp"

int main() {
  using namespace gossip;
  bench::print_banner(
      "Fig. 2 (E1)",
      "Mean fanout z vs required reliability S under various q (Eq. 12)");

  const std::vector<double> q_grid{0.2, 0.4, 0.6, 0.8, 1.0};
  // The paper plots S from 0.1111 to 0.9999.
  std::vector<double> s_grid = experiment::linspace(0.1111, 0.9911, 45);
  s_grid.push_back(0.9999);

  experiment::TextTable table;
  table.column("S", 8);
  for (const double q : q_grid) {
    table.column("z(q=" + experiment::fmt_double(q, 1) + ")", 10);
  }

  const std::string csv_path =
      experiment::csv_path_in(bench::kResultsDir, "fig2_mean_fanout.csv");
  std::vector<std::string> header{"S"};
  for (const double q : q_grid) {
    header.push_back("z_q" + experiment::fmt_double(q, 1));
  }
  experiment::CsvWriter csv(csv_path, header);

  for (const double s : s_grid) {
    std::vector<std::string> row{experiment::fmt_double(s, 4)};
    for (const double q : q_grid) {
      row.push_back(
          experiment::fmt_double(core::poisson_required_fanout(s, q), 4));
    }
    table.add_row(row);
    csv.add_row(row);
  }
  table.print(std::cout);

  // The paper's headline extremes: z ~ 46 at (S = 0.9999, q = 0.2) and the
  // shape "fanout explodes as S -> 1, and scales as 1/q".
  std::cout << "\nSpot checks (paper Fig. 2 extremes):\n"
            << "  z(S=0.9999, q=0.2) = "
            << core::poisson_required_fanout(0.9999, 0.2)
            << "  (paper plot tops out near 46)\n"
            << "  z(S=0.9999, q=1.0) = "
            << core::poisson_required_fanout(0.9999, 1.0) << "\n";
  bench::print_footer(csv_path);
  return 0;
}
