/// Ablation A2: the analysis assumes each member picks targets uniformly
/// from the WHOLE group (full membership view). Deployed systems run over
/// partial views (the paper assumes "a scalable membership protocol is
/// available, such as [SCAMP]"). How far do partial views push the realized
/// reliability from the model? Runs the actual DES protocol over full,
/// uniform-partial, and SCAMP-style views.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/reliability_model.hpp"
#include "experiment/monte_carlo.hpp"
#include "membership/full_view.hpp"
#include "membership/partial_view.hpp"
#include "membership/scamp.hpp"

int main() {
  using namespace gossip;
  bench::print_banner("Ablation A2",
                      "Membership view: full vs uniform-partial vs SCAMP "
                      "(DES protocol, n = 1000, Poisson fanout 4)");

  const std::uint32_t n = 1000;
  const double fanout_mean = 4.0;
  rng::RngStream build_rng(77);

  struct ViewCase {
    std::string label;
    membership::MembershipProviderPtr provider;
  };
  membership::ScampParams scamp_params;
  scamp_params.num_nodes = n;
  scamp_params.redundancy = 1;
  const std::vector<ViewCase> cases{
      {"full", membership::full_membership(n)},
      {"partial-8", membership::uniform_partial_membership(n, 8, build_rng)},
      {"partial-20", membership::uniform_partial_membership(n, 20, build_rng)},
      {"scamp", membership::scamp_membership(scamp_params, build_rng)},
  };

  const std::string csv_path = experiment::csv_path_in(
      bench::kResultsDir, "ablation_membership_view.csv");
  experiment::CsvWriter csv(csv_path,
                            {"view", "q", "analysis_S", "delivery_mean",
                             "delivery_takeoff_runs_mean"});

  for (const double q : {0.6, 0.9, 1.0}) {
    const double analysis = core::poisson_reliability(fanout_mean, q);
    std::cout << "\n-- q = " << q
              << "  (analysis S = " << experiment::fmt_double(analysis, 4)
              << ") --\n";
    experiment::TextTable table;
    table.column("view", 12)
        .column("delivery mean", 14)
        .column("takeoff mean", 13)
        .column("takeoff runs", 13);

    for (const auto& vc : cases) {
      protocol::GossipParams params;
      params.num_nodes = n;
      params.nonfailed_ratio = q;
      params.fanout = core::poisson_fanout(fanout_mean);
      params.membership = vc.provider;

      // Per-replication results so take-off conditioning is possible.
      const rng::RngStream root(13);
      stats::OnlineSummary all_runs;
      stats::OnlineSummary takeoff_runs;
      const std::size_t reps = 40;
      for (std::size_t i = 0; i < reps; ++i) {
        auto rng = root.substream(i);
        const auto exec = protocol::run_gossip_once(params, rng);
        all_runs.add(exec.reliability);
        if (exec.reliability > 0.5 * analysis) {
          takeoff_runs.add(exec.reliability);
        }
      }
      table.add_row(
          {vc.label, experiment::fmt_double(all_runs.mean(), 4),
           experiment::fmt_double(takeoff_runs.mean(), 4),
           std::to_string(takeoff_runs.count()) + "/" + std::to_string(reps)});
      csv.add_row({vc.label, experiment::fmt_double(q, 2),
                   experiment::fmt_double(analysis, 6),
                   experiment::fmt_double(all_runs.mean(), 6),
                   experiment::fmt_double(takeoff_runs.mean(), 6)});
    }
    table.print(std::cout);
  }

  std::cout << "\nReading: views of ~2 ln n (SCAMP) already approximate the "
               "full-view model closely — the\nproperty that justifies the "
               "paper's uniform-target assumption over SCAMP-style "
               "membership.\n";
  bench::print_footer(csv_path);
  return 0;
}
