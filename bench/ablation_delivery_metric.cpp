/// Ablation A8: the component-vs-delivery decomposition. The paper's
/// reliability is the giant-component share S; the protocol's delivered
/// fraction is takeoff * reach, where take-off depends on the WHOLE fanout
/// distribution (extinction of the forward cascade) and per-member reach
/// only on its mean (in-degrees are Poisson). This bench reports the full
/// decomposition for several fanout shapes at equal mean, against the graph
/// Monte Carlo.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/branching.hpp"
#include "core/degree_distribution.hpp"
#include "core/percolation.hpp"
#include "experiment/monte_carlo.hpp"

int main() {
  using namespace gossip;
  bench::print_banner("Ablation A8",
                      "Delivery metric decomposition: takeoff x reach "
                      "(equal mean 4, q = 0.9, n = 2000)");

  const double q = 0.9;
  const std::vector<core::DegreeDistributionPtr> dists{
      core::fixed_fanout(4),
      core::poisson_fanout(4.0),
      core::uniform_fanout(1, 7),
      core::geometric_fanout(4.0),
      core::zipf_fanout(64, 1.18),
  };

  const std::string csv_path = experiment::csv_path_in(
      bench::kResultsDir, "ablation_delivery_metric.csv");
  experiment::CsvWriter csv(csv_path,
                            {"distribution", "component_S", "takeoff",
                             "reach_given_takeoff", "predicted_delivery",
                             "sim_delivery"});

  experiment::TextTable table;
  table.column("distribution", 18)
      .column("component S", 12)
      .column("takeoff", 8)
      .column("reach", 7)
      .column("predicted", 10)
      .column("sim", 7);

  for (const auto& dist : dists) {
    const auto gf = core::GeneratingFunction::from_distribution(*dist);
    const double component =
        core::analyze_site_percolation(gf, q).reliability;
    const auto directed = core::analyze_directed_gossip(gf, q);

    experiment::MonteCarloOptions opt;
    opt.replications = 300;
    opt.seed = 23;
    const auto est = experiment::estimate_reliability_graph(2000, *dist, q,
                                                            opt);

    table.add_row({dist->name(), experiment::fmt_double(component, 4),
                   experiment::fmt_double(directed.takeoff_probability, 4),
                   experiment::fmt_double(
                       directed.member_reach_given_takeoff, 4),
                   experiment::fmt_double(directed.expected_delivery, 4),
                   experiment::fmt_double(est.mean_reliability(), 4)});
    csv.add_row({dist->name(), experiment::fmt_double(component, 6),
                 experiment::fmt_double(directed.takeoff_probability, 6),
                 experiment::fmt_double(
                     directed.member_reach_given_takeoff, 6),
                 experiment::fmt_double(directed.expected_delivery, 6),
                 experiment::fmt_double(est.mean_reliability(), 6)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading: 'reach' is identical across shapes (in-degrees are "
         "Poisson at equal mean); the shapes\ndiffer only through take-off "
         "— P(fanout = 0) is what kills cascades. Fixed fanout never dies\n"
         "(takeoff = 1); geometric/zipf die at the source with probability "
         "~P(0). Note the component and\ndelivery metrics live on different "
         "graphs with different thresholds (q G1'(1) > 1 vs q z > 1);\n"
         "they coincide only for Poisson fanout — see DESIGN.md and the "
         "MetricDivergence tests.\n";
  bench::print_footer(csv_path);
  return 0;
}
