/// Reproduces paper Fig. 3: the minimum number of executions t needed to
/// reach gossiping-success probability p_s = 0.999 as a function of the
/// per-execution reliability S (Eq. 6, t >= lg(1-p_s)/lg(1-S)).

#include <iostream>

#include "bench_util.hpp"
#include "core/success_model.hpp"
#include "experiment/sweep.hpp"

int main() {
  using namespace gossip;
  bench::print_banner(
      "Fig. 3 (E2)",
      "Minimum executions t for success p_s = 0.999 vs reliability S (Eq. 6)");

  const double target_success = 0.999;
  // The paper plots S from 0.2 to ~1.05 (we stop below 1).
  const auto s_grid = experiment::linspace(0.2, 0.995, 60);

  experiment::TextTable table;
  table.column("S", 8).column("t_min", 6).column("achieved_ps", 12);

  const std::string csv_path =
      experiment::csv_path_in(bench::kResultsDir, "fig3_min_executions.csv");
  experiment::CsvWriter csv(csv_path, {"S", "t_min", "achieved_ps"});

  for (const double s : s_grid) {
    const auto t = core::required_executions(s, target_success);
    const double achieved = core::success_probability(s, t);
    std::vector<std::string> row{experiment::fmt_double(s, 4),
                                 std::to_string(t),
                                 experiment::fmt_double(achieved, 6)};
    table.add_row(row);
    csv.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\nSpot checks (paper Section 5.2): at R = 0.967, "
            << "t = " << core::required_executions(0.967, 0.999)
            << " (paper: 'greater than three' -> 3)\n"
            << "Shape check: t falls from "
            << core::required_executions(0.2, 0.999) << " at S=0.2 to "
            << core::required_executions(0.9, 0.999)
            << " at S=0.9 (paper Fig. 3 falls from ~31 to ~3).\n";
  bench::print_footer(csv_path);
  return 0;
}
