#pragma once

/// \file reliability_figure.hpp
/// Shared implementation of the Figs. 4-5 reproduction: reliability of
/// gossiping vs mean fanout f in {1.1, 1.5, ..., 6.7} under various
/// non-failed ratios q, n members, 20 replications per point (the paper's
/// protocol, Section 5.1).
///
/// Three series are reported per point:
///   * analysis      — Eq. (11), the continuous line in the paper's plots;
///   * sim_component — giant-component share among non-failed members,
///                     the metric the paper's MATLAB simulation plots
///                     ("we calculate the size of giant component for each
///                     case"); tallies with the analysis;
///   * sim_delivery  — actual source-to-member delivery ratio of the
///                     protocol (unconditional mean ~ S^2 because the
///                     cascade dies entirely with probability ~ 1-S).
/// EXPERIMENTS.md discusses the component-vs-delivery distinction.

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/degree_distribution.hpp"
#include "core/reliability_model.hpp"
#include "experiment/component_mc.hpp"
#include "experiment/monte_carlo.hpp"
#include "experiment/sweep.hpp"

namespace gossip::bench {

inline void run_reliability_figure(const std::string& figure_id,
                                   std::uint32_t num_nodes,
                                   const std::string& csv_name,
                                   std::size_t replications = 20,
                                   std::uint64_t seed = 2008) {
  print_banner(figure_id,
               "Reliability of gossiping vs mean fanout, n = " +
                   std::to_string(num_nodes) + ", " +
                   std::to_string(replications) + " runs per point");

  const auto fanouts = experiment::paper_fanout_grid();
  // Union of the paper's 4a/4b (5a/5b) q grids.
  const std::vector<double> q_grid{0.1, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0};

  const std::string csv_path = experiment::csv_path_in(kResultsDir, csv_name);
  experiment::CsvWriter csv(csv_path,
                            {"q", "f", "analysis_S", "sim_component_mean",
                             "sim_component_ci95_half", "sim_delivery_mean",
                             "sim_delivery_success_rate"});

  for (const double q : q_grid) {
    std::cout << "\n-- q = " << q << " (critical fanout 1/q = " << 1.0 / q
              << ") --\n";
    experiment::TextTable table;
    table.column("f", 6)
        .column("analysis S", 11)
        .column("sim component", 16)
        .column("sim delivery", 13)
        .column("success%", 9);

    for (const double f : fanouts) {
      const auto dist = core::poisson_fanout(f);
      const double analysis = core::poisson_reliability(f, q);

      experiment::MonteCarloOptions opt;
      opt.replications = replications;
      opt.seed = seed;
      const auto component =
          experiment::estimate_giant_component(num_nodes, *dist, q, opt);
      const auto delivery =
          experiment::estimate_reliability_graph(num_nodes, *dist, q, opt);

      const auto comp_ci =
          stats::mean_confidence_interval(component.giant_fraction_alive);
      table.add_row(
          {experiment::fmt_double(f, 2), experiment::fmt_double(analysis, 4),
           experiment::fmt_pm(component.giant_fraction_alive.mean(),
                              comp_ci.width() / 2.0, 4),
           experiment::fmt_double(delivery.mean_reliability(), 4),
           experiment::fmt_double(delivery.success_rate() * 100.0, 1)});
      csv.add_row({experiment::fmt_double(q, 2), experiment::fmt_double(f, 2),
                   experiment::fmt_double(analysis, 6),
                   experiment::fmt_double(
                       component.giant_fraction_alive.mean(), 6),
                   experiment::fmt_double(comp_ci.width() / 2.0, 6),
                   experiment::fmt_double(delivery.mean_reliability(), 6),
                   experiment::fmt_double(delivery.success_rate(), 4)});
    }
    table.print(std::cout);
  }

  std::cout << "\nReading: 'sim component' is the paper's plotted simulation "
               "metric and should track 'analysis S';\nthe phase transition "
               "sits at f = 1/q per Eq. (10). 'sim delivery' is the raw "
               "protocol delivery ratio\n(~ S^2 unconditionally; see "
               "EXPERIMENTS.md).\n";
  print_footer(csv_path);
}

}  // namespace gossip::bench
