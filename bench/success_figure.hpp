#pragma once

/// \file success_figure.hpp
/// Shared implementation of the Figs. 6-7 reproduction: the distribution of
/// X, the number of executions (out of t = 20) in which a non-failed member
/// receives the message, in a 2000-member group, 100 simulations — against
/// the paper's model X ~ B(20, R(q, Po(z))) (Eqs. 5-6).

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/reliability_model.hpp"
#include "core/success_model.hpp"
#include "experiment/component_mc.hpp"
#include "stats/gof.hpp"

namespace gossip::bench {

inline void run_success_figure(const std::string& figure_id, double fanout,
                               double q, const std::string& csv_name,
                               std::uint32_t num_nodes = 2000,
                               std::int64_t executions = 20,
                               std::size_t simulations = 100,
                               std::uint64_t seed = 2008) {
  const double reliability = core::poisson_reliability(fanout, q);
  print_banner(figure_id,
               "Distribution of per-member success count X over " +
                   std::to_string(executions) + " executions; f = " +
                   experiment::fmt_double(fanout, 1) + ", q = " +
                   experiment::fmt_double(q, 1) + ", n = " +
                   std::to_string(num_nodes) + "; model B(t, R), R = " +
                   experiment::fmt_double(reliability, 4) +
                   " (paper rounds to 0.967)");

  experiment::SuccessCountParams params;
  params.num_nodes = num_nodes;
  params.fanout = core::poisson_fanout(fanout);
  params.nonfailed_ratio = q;
  params.executions = executions;
  params.simulations = simulations;

  experiment::MonteCarloOptions opt;
  opt.seed = seed;

  params.metric = experiment::SuccessMetric::kGiantMembership;
  const auto giant = experiment::run_success_count_experiment(params, opt);
  params.metric = experiment::SuccessMetric::kSourceDelivery;
  const auto delivery = experiment::run_success_count_experiment(params, opt);

  const auto model_pmf = core::success_count_pmf(executions, reliability);
  const auto giant_pmf = giant.histogram.pmf();
  const auto delivery_pmf = delivery.histogram.pmf();

  experiment::TextTable table;
  table.column("k", 4)
      .column("B(20,R) model", 13)
      .column("sim component", 14)
      .column("sim delivery", 13);
  const std::string csv_path = experiment::csv_path_in(kResultsDir, csv_name);
  experiment::CsvWriter csv(
      csv_path, {"k", "model_pmf", "sim_component_pmf", "sim_delivery_pmf"});

  for (std::int64_t k = 0; k <= executions; ++k) {
    const auto idx = static_cast<std::size_t>(k);
    std::vector<std::string> row{
        std::to_string(k), experiment::fmt_double(model_pmf[idx], 4),
        experiment::fmt_double(giant_pmf[idx], 4),
        experiment::fmt_double(delivery_pmf[idx], 4)};
    table.add_row(row);
    csv.add_row(row);
  }
  table.print(std::cout);

  std::vector<std::uint64_t> observed;
  for (std::int64_t k = 0; k <= executions; ++k) {
    observed.push_back(giant.histogram.count(k));
  }
  const auto gof = stats::chi_square_test(observed, model_pmf);

  std::cout << "\nMean X: model = "
            << experiment::fmt_double(
                   static_cast<double>(executions) * reliability, 3)
            << ", sim component = "
            << experiment::fmt_double(giant.mean_count, 3)
            << ", sim delivery = "
            << experiment::fmt_double(delivery.mean_count, 3)
            << " (delivery deflated by cascade die-out, ~ t*S^2 = "
            << experiment::fmt_double(static_cast<double>(executions) *
                                          reliability * reliability,
                                      3)
            << ")\n"
            << "Chi-square (component vs B(t,R)): stat = "
            << experiment::fmt_double(gof.statistic, 2)
            << ", dof = " << gof.dof
            << ", p = " << experiment::fmt_double(gof.p_value, 4)
            << " (members within an execution share one graph, which "
               "inflates the statistic; the mean is the robust check)\n"
            << "Eq. (6): executions needed for p_s = 0.999 at this R: t = "
            << core::required_executions(reliability, 0.999) << "\n";
  print_footer(csv_path);
}

}  // namespace gossip::bench
