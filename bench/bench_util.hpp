#pragma once

/// \file bench_util.hpp
/// Shared plumbing for the figure-reproduction benches: banners, the CSV
/// output directory, and common formatting.

#include <iostream>
#include <string>

#include "experiment/csv.hpp"
#include "experiment/table.hpp"

namespace gossip::bench {

inline constexpr const char* kResultsDir = "results";

inline void print_banner(const std::string& experiment_id,
                         const std::string& description) {
  std::cout << "=====================================================\n"
            << experiment_id << "\n"
            << description << "\n"
            << "=====================================================\n";
}

inline void print_footer(const std::string& csv_path) {
  std::cout << "\n[csv] " << csv_path << "\n\n";
}

}  // namespace gossip::bench
