#!/usr/bin/env python3
"""Compare a Google Benchmark JSON run against a committed baseline.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json [--max-ratio 1.5]
                           [--max-ratio-for NAME=R]...
                           [--min-speedup NAME_A/NAME_B=FACTOR]...

Both files are ``--benchmark_format=json`` output. Benchmarks are matched
by their full name (including args, e.g. ``BM_RoundLoopFlat/100000``); the
gate is on real_time per iteration. A benchmark only present on one side is
reported but does not fail the gate (benchmarks get added over time, and a
baseline recorded on different hardware is advisory for absolute times).

``--max-ratio R`` (default 1.5): fail when current/baseline real_time
exceeds R for any benchmark present in both files. Machine-to-machine
variance is why the default gate is deliberately loose; it exists to catch
order-of-magnitude regressions (an accidental O(n^2), a lost optimization
flag), not 5% noise.

``--max-ratio-for NAME=R``: per-benchmark override of the global ratio
gate (repeatable; exact full-name match). Use it to hold a specific hot
path to a tighter bound than the machine-variance default, e.g. the
null-probe overhead gate:

    --max-ratio-for BM_RoundLoopFlat/1000000=1.05

``--min-speedup A/B=F``: fail unless benchmark A is at least F times
faster than benchmark B *within the current run*. Since both numbers come
from the same machine and process, this check is hardware-independent —
it pins relative performance claims, e.g.:

    --min-speedup BM_RoundLoopFlat/100000/BM_RoundLoopReference/100000=5

Sanitizer awareness: perf_microbench stamps a ``sanitizer`` key into the
benchmark JSON context (``none``, ``thread``, ``address``, ...). A run
made under a sanitizer is 2-20x slower and meaningless as a performance
measurement, so a sanitized *baseline* is refused outright and a
sanitized *current* run downgrades ratio gates to informational (the
within-run --min-speedup gates still apply). ``--allow-sanitizer``
overrides the baseline refusal for local experiments.

Exit status: 0 = all gates pass, 1 = regression, 2 = usage/parse error.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """Return ({name: real_time_ns}, sanitizer) from a google-benchmark
    JSON file. `sanitizer` is the custom context value stamped by
    perf_microbench ("none" when absent, i.e. pre-stamp baselines)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    sanitizer = doc.get("context", {}).get("sanitizer", "none")
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repeated runs); the
        # raw iterations row carries run_type "iteration" (or no run_type
        # in older benchmark versions).
        if bench.get("run_type", "iteration") != "iteration":
            continue
        name = bench.get("name")
        time = bench.get("real_time")
        unit = bench.get("time_unit", "ns")
        if name is None or time is None:
            continue
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            raise SystemExit(f"error: {path}: unknown time_unit {unit!r}")
        out[name] = float(time) * scale
    if not out:
        raise SystemExit(f"error: {path}: no benchmarks found")
    return out, sanitizer


def parse_speedup_spec(spec):
    """'A/B=F' where A and B are benchmark names (which themselves contain
    slashes for args) -> (A, B, F). The split point is the LAST '/' before
    '='; benchmark arg segments are numeric, so the name boundary is the
    '/BM_' separator."""
    if "=" not in spec:
        raise SystemExit(f"error: bad --min-speedup spec {spec!r}")
    names, _, factor_text = spec.rpartition("=")
    try:
        factor = float(factor_text)
    except ValueError:
        raise SystemExit(f"error: bad --min-speedup factor in {spec!r}")
    sep = names.find("/BM_", 1)
    if sep < 0:
        raise SystemExit(
            f"error: --min-speedup spec {spec!r} must name two benchmarks "
            "as NAME_A/NAME_B=FACTOR")
    return names[:sep], names[sep + 1:], factor


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-ratio", type=float, default=1.5)
    parser.add_argument("--max-ratio-for", action="append", default=[],
                        metavar="NAME=R")
    parser.add_argument("--min-speedup", action="append", default=[],
                        metavar="NAME_A/NAME_B=FACTOR")
    parser.add_argument("--allow-sanitizer", action="store_true",
                        help="accept a baseline recorded under a sanitizer "
                             "(normally refused: sanitized times are not "
                             "performance baselines)")
    args = parser.parse_args(argv)

    per_bench_ratio = {}
    for spec in args.max_ratio_for:
        name, eq, ratio_text = spec.rpartition("=")
        if not eq or not name:
            raise SystemExit(f"error: bad --max-ratio-for spec {spec!r}")
        try:
            per_bench_ratio[name] = float(ratio_text)
        except ValueError:
            raise SystemExit(f"error: bad --max-ratio-for ratio in {spec!r}")

    baseline, baseline_san = load_benchmarks(args.baseline)
    current, current_san = load_benchmarks(args.current)

    if baseline_san != "none" and not args.allow_sanitizer:
        raise SystemExit(
            f"error: baseline {args.baseline} was recorded under "
            f"{baseline_san} sanitizer — not a performance baseline "
            "(pass --allow-sanitizer to override)")
    ratio_gates_active = current_san == "none"
    if not ratio_gates_active:
        print(f"note: current run was built with the {current_san} "
              "sanitizer; ratio gates are informational only "
              "(within-run --min-speedup gates still apply)")

    failures = []
    for name in per_bench_ratio:
        if name not in baseline or name not in current:
            failures.append(
                f"--max-ratio-for {name}: benchmark missing from "
                f"{'baseline' if name not in baseline else 'current'} run")

    print(f"{'benchmark':<44} {'baseline':>12} {'current':>12} {'ratio':>7}")
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            print(f"{name:<44} {baseline[name]:>12.1f} {'-':>12} {'-':>7}")
            continue
        if name not in baseline:
            print(f"{name:<44} {'-':>12} {current[name]:>12.1f} {'-':>7}  "
                  "(new)")
            continue
        max_ratio = per_bench_ratio.get(name, args.max_ratio)
        ratio = current[name] / baseline[name] if baseline[name] else 0.0
        flag = ""
        if ratio > max_ratio:
            if ratio_gates_active:
                flag = f"  REGRESSION (> {max_ratio:g}x)"
                failures.append(
                    f"{name}: {ratio:.2f}x slower than baseline "
                    f"(limit {max_ratio:g}x)")
            else:
                flag = f"  (sanitized run; > {max_ratio:g}x ignored)"
        print(f"{name:<44} {baseline[name]:>12.1f} {current[name]:>12.1f} "
              f"{ratio:>7.2f}{flag}")

    for spec in args.min_speedup:
        fast, slow, factor = parse_speedup_spec(spec)
        missing = [n for n in (fast, slow) if n not in current]
        if missing:
            failures.append(
                f"--min-speedup {spec}: missing benchmark(s) "
                f"{', '.join(missing)} in current run")
            continue
        achieved = current[slow] / current[fast] if current[fast] else 0.0
        verdict = "ok" if achieved >= factor else "FAIL"
        print(f"speedup {fast} vs {slow}: {achieved:.1f}x "
              f"(required {factor:g}x) {verdict}")
        if achieved < factor:
            failures.append(
                f"{fast} is only {achieved:.1f}x faster than {slow} "
                f"(required {factor:g}x)")

    if failures:
        print("\nFAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall benchmark gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
