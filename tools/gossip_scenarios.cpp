/// gossip_scenarios — runs a declarative fault-injection scenario file
/// through the scenario engine and emits the project's standard table/CSV
/// formats. One spec file describes one experiment grid; see scenarios/ for
/// worked examples and README.md ("Running scenarios") for the format.
///
///   gossip_scenarios <spec.scn> [--csv <path>] [--threads N] [--print-spec]
///
///   --csv <path>   CSV output path (default: results/<name>.csv)
///   --threads N    worker threads; 0 = hardware concurrency (default 0).
///                  Results are bit-identical for every choice.
///   --print-spec   echo the parsed, normalized spec before running

#include <iostream>
#include <string>

#include "experiment/csv.hpp"
#include "parallel/thread_pool.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace {

int usage() {
  std::cerr << "usage: gossip_scenarios <spec.scn> [--csv <path>] "
               "[--threads N] [--print-spec]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gossip;

  std::string spec_path;
  std::string csv_path;
  std::size_t threads = 0;
  bool print_spec = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv" && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      try {
        threads = static_cast<std::size_t>(
            scenario::to_u64(argv[++i], "--threads"));
      } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return usage();
      }
    } else if (arg == "--print-spec") {
      print_spec = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      return usage();
    }
  }
  if (spec_path.empty()) return usage();

  try {
    const auto spec = scenario::ScenarioSpec::load(spec_path);
    if (print_spec) std::cout << spec.format() << "\n";

    const auto cases = spec.expand_cases();
    std::cout << "=====================================================\n"
              << "scenario " << spec.name() << " (" << cases.size()
              << " case" << (cases.size() == 1 ? "" : "s") << ", "
              << spec.get("repetitions", "20") << " repetitions each)\n";
    if (spec.has("description")) {
      std::cout << spec.get("description") << "\n";
    }
    std::cout << "=====================================================\n";

    parallel::ThreadPool pool(threads);
    scenario::ScenarioRunner runner(&pool);
    const auto results = runner.run(spec);
    scenario::print_results_table(std::cout, results);

    if (csv_path.empty()) {
      csv_path = experiment::csv_path_in("results", spec.name() + ".csv");
    }
    scenario::write_results_csv(csv_path, results);
    std::cout << "\n[csv] " << csv_path << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
