/// gossip_scenarios — runs a declarative fault-injection scenario file
/// through the scenario engine and emits the project's standard table/CSV
/// formats. One spec file describes one experiment grid; see scenarios/ for
/// worked examples and README.md ("Running scenarios") for the format.
///
///   gossip_scenarios <spec.scn> [--csv <path>] [--threads N] [--print-spec]
///                    [--smoke] [--set key=value]... [--trace-out <csv>]
///                    [--manifest <json>]
///   gossip_scenarios --compare <a.csv> <b.csv> [--tolerance T]
///   gossip_scenarios --list-keys
///
///   --csv <path>   CSV output path (default: results/<name>.csv)
///   --threads N    worker threads; 0 = hardware concurrency (default 0).
///                  Results are bit-identical for every choice.
///   --print-spec   echo the parsed, normalized spec before running
///   --smoke        smoke mode: cap repetitions at 2 so CI can execute a
///                  spec end to end in seconds (numbers are NOT the spec's
///                  pinned values; use a full run for those)
///   --set k=v      override a spec field from the command line (repeatable;
///                  applied before validation, so unknown keys still fail
///                  with the usual did-you-mean diagnostic)
///   --trace-out    per-round trajectory CSV path; implies trace = rounds
///                  for specs that do not already request it
///   --manifest     run-manifest JSON path (default: results CSV path with
///                  .csv replaced by .manifest.json). A manifest is always
///                  written; see docs/observability.md for the schema.
///   --list-keys    print the engine's full known spec-key set and exit
///   --compare      tolerance-diff two result CSVs (rows matched by
///                  scenario/case/metric); exit 0 iff they agree. Use it to
///                  check a re-run, a different thread count, or a new code
///                  version against a committed reference run.
///   --tolerance T  absolute tolerance on reliability columns in --compare
///                  mode (default 0.03, the paper-anchor tolerance)

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "experiment/csv.hpp"
#include "experiment/table.hpp"
#include "parallel/thread_pool.hpp"
#include "scenario/compare.hpp"
#include "scenario/manifest.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace {

int usage() {
  std::cerr << "usage: gossip_scenarios <spec.scn> [--csv <path>] "
               "[--threads N] [--print-spec] [--smoke] [--set key=value]... "
               "[--trace-out <csv>] [--manifest <json>]\n"
               "       gossip_scenarios --compare <a.csv> <b.csv> "
               "[--tolerance T]\n"
               "       gossip_scenarios --list-keys\n";
  return 2;
}

/// results/<name>.csv -> results/<name>.manifest.json.
std::string default_manifest_path(const std::string& csv_path) {
  const std::string suffix = ".csv";
  if (csv_path.size() > suffix.size() &&
      csv_path.compare(csv_path.size() - suffix.size(), suffix.size(),
                       suffix) == 0) {
    return csv_path.substr(0, csv_path.size() - suffix.size()) +
           ".manifest.json";
  }
  return csv_path + ".manifest.json";
}

int run_compare(int argc, char** argv) {
  using namespace gossip;
  std::string path_a;
  std::string path_b;
  scenario::CompareOptions options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      try {
        options.reliability_tolerance =
            scenario::to_double(argv[++i], "--tolerance");
      } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return usage();
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (path_a.empty()) {
      path_a = arg;
    } else if (path_b.empty()) {
      path_b = arg;
    } else {
      return usage();
    }
  }
  if (path_b.empty()) return usage();
  try {
    const auto report =
        scenario::compare_result_csvs(path_a, path_b, options);
    scenario::print_compare_report(std::cout, report);
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gossip;

  if (argc > 1 && std::string(argv[1]) == "--compare") {
    return run_compare(argc, argv);
  }
  if (argc > 1 && std::string(argv[1]) == "--list-keys") {
    for (const auto& key : scenario::known_spec_keys()) {
      std::cout << key << "\n";
    }
    return 0;
  }

  std::string spec_path;
  std::string csv_path;
  std::string trace_path;
  std::string manifest_path;
  std::vector<std::pair<std::string, std::string>> overrides;
  std::size_t threads = 0;
  bool print_spec = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv" && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--manifest" && i + 1 < argc) {
      manifest_path = argv[++i];
    } else if (arg == "--set" && i + 1 < argc) {
      const std::string assignment = argv[++i];
      const auto eq = assignment.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::cerr << "error: --set expects key=value; got '" << assignment
                  << "'\n";
        return usage();
      }
      overrides.emplace_back(scenario::trim(assignment.substr(0, eq)),
                             scenario::trim(assignment.substr(eq + 1)));
    } else if (arg == "--threads" && i + 1 < argc) {
      try {
        threads = static_cast<std::size_t>(
            scenario::to_u64(argv[++i], "--threads"));
      } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return usage();
      }
    } else if (arg == "--print-spec") {
      print_spec = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      return usage();
    }
  }
  if (spec_path.empty()) return usage();

  try {
    auto spec = scenario::ScenarioSpec::load(spec_path);
    for (const auto& [key, value] : overrides) {
      spec.set(key, value);
    }
    // Requesting a trajectory CSV from an untraced spec turns tracing on —
    // the common case for ad-hoc inspection of a committed scenario.
    if (!trace_path.empty() && spec.get("trace", "off") != "rounds") {
      spec.set("trace", "rounds");
    }
    // Key typos fail here, before any header or partial output, and the
    // error names every unknown key with its nearest valid spelling.
    scenario::validate_spec_keys(spec);
    if (smoke && std::strtoul(spec.get("repetitions", "20").c_str(),
                              nullptr, 10) > 2) {
      spec.set("repetitions", "2");
    }
    if (print_spec) std::cout << spec.format() << "\n";

    const auto cases = spec.expand_cases();
    std::cout << "=====================================================\n"
              << "scenario " << spec.name() << " (" << cases.size()
              << " case" << (cases.size() == 1 ? "" : "s") << ", "
              << spec.get("repetitions", "20") << " repetitions each"
              << (smoke ? ", SMOKE MODE" : "") << ")\n";
    if (spec.has("description")) {
      std::cout << spec.get("description") << "\n";
    }
    std::cout << "=====================================================\n";

    parallel::ThreadPool pool(threads);
    scenario::ScenarioRunner runner(&pool);
    scenario::RunTelemetry telemetry;
    const auto results = runner.run(spec, &telemetry);
    scenario::print_results_table(std::cout, results);

    // Multi-message workloads get a per-message breakdown: reliability is
    // not one number once messages land at different points of the churn.
    for (const auto& result : results) {
      if (result.workload_messages <= 1) continue;
      std::cout << "\nper-message breakdown, case " << result.label << ":\n";
      for (std::size_t m = 0; m < result.per_message_reliability.size();
           ++m) {
        std::cout << "  msg " << (m + 1) << ": reliability "
                  << experiment::fmt_double(
                         result.per_message_reliability[m].mean(), 4)
                  << "  mean latency "
                  << experiment::fmt_double(
                         result.per_message_latency[m].mean(), 3)
                  << "\n";
      }
    }

    if (csv_path.empty()) {
      csv_path = experiment::csv_path_in("results", spec.name() + ".csv");
    }
    scenario::write_results_csv(csv_path, results);
    std::cout << "\n[csv] " << csv_path << "\n";
    if (!trace_path.empty()) {
      scenario::write_trace_csv(trace_path, results);
      std::cout << "[trace] " << trace_path << "\n";
    }

    auto manifest = scenario::build_run_manifest(spec, results, telemetry);
    manifest.tool = "gossip_scenarios";
    manifest.spec_path = spec_path;
    manifest.threads = pool.num_threads();
    manifest.smoke = smoke;
    manifest.results_csv = csv_path;
    manifest.trace_csv = trace_path;
    if (manifest_path.empty()) {
      manifest_path = default_manifest_path(csv_path);
    }
    obs::write_manifest(manifest_path, manifest);
    std::cout << "[manifest] " << manifest_path << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
