#!/usr/bin/env python3
"""Determinism lint: machine-check the repo's reproducibility contract.

The simulator's load-bearing guarantee is that Monte Carlo results are
bit-identical across 1/2/8 workers, traced vs. untraced runs, and flat
vs. DES backends. Runtime tests sample that property; this tool enforces
the source-level invariants that make it hold (see tools/lint/rules.py
for the rule list and docs/static-analysis.md for the rationale).

Usage:
    # Lint every translation unit the build sees, plus all src/ headers:
    tools/lint/determinism_lint.py --compile-commands build/compile_commands.json

    # Lint explicit files (fixtures, pre-commit):
    tools/lint/determinism_lint.py --root tests/lint/fixtures \\
        tests/lint/fixtures/src/protocol/bad_wall_clock.cpp

    tools/lint/determinism_lint.py --list-rules

Backends: with the libclang Python bindings installed (python3-clang),
``--backend clang`` (or auto) parses each TU with the compile command the
build used and matches on AST nodes — precise about macros, scopes, and
templates. Without them, ``--backend lexical`` runs the same rules over
comment- and string-stripped source. Both honor the same
``// LINT-ALLOW(rule): reason`` escape hatch, and a clang parse failure
for a TU falls back to the lexical engine for that TU, so the lint always
produces a verdict.

Exit status: 0 = clean, 1 = violations found, 2 = usage/setup error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Iterable, List, Optional, Sequence

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import rules as rules_mod
from rules import ALL_RULES, RULE_NAMES, SourceFile, Violation, check_file

SOURCE_SUFFIXES = (".cpp", ".cc", ".cxx")
HEADER_SUFFIXES = (".hpp", ".h", ".hh", ".hxx")


def die(message: str) -> "NoReturn":
    print(message, file=sys.stderr)
    raise SystemExit(2)


# --------------------------------------------------------------------------
# File discovery
# --------------------------------------------------------------------------

def repo_relative(path: str, root: str) -> Optional[str]:
    """`path` relative to `root` with '/' separators, or None if outside."""
    rel = os.path.relpath(os.path.abspath(path), root)
    if rel.startswith(".."):
        return None
    return rel.replace(os.sep, "/")


def load_compile_commands(path: str, root: str) -> Dict[str, List[str]]:
    """{repo-relative source: compiler args} for TUs under <root>/src."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            entries = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        die(f"error: cannot read {path}: {exc}")
    out: Dict[str, List[str]] = {}
    for entry in entries:
        file_path = entry.get("file", "")
        directory = entry.get("directory", ".")
        if not os.path.isabs(file_path):
            file_path = os.path.join(directory, file_path)
        rel = repo_relative(file_path, root)
        if rel is None or not rel.startswith("src/"):
            continue  # tests, benches, _deps: out of scope
        if "command" in entry:
            args = entry["command"].split()
        else:
            args = list(entry.get("arguments", []))
        out[rel] = args
    return out


def discover_headers(root: str) -> List[str]:
    found: List[str] = []
    src_root = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for name in sorted(filenames):
            if name.endswith(HEADER_SUFFIXES):
                rel = repo_relative(os.path.join(dirpath, name), root)
                if rel is not None:
                    found.append(rel)
    return sorted(found)


# --------------------------------------------------------------------------
# libclang backend
# --------------------------------------------------------------------------

class ClangBackend:
    """AST-based matcher built on clang.cindex.

    Matches the same contract as the lexical rules:
      rng-source / wall-clock  -> references to banned decls or types
      unordered-iteration      -> CXXForRangeStmt over unordered_* ranges
                                  and begin()/cbegin() member calls on them
      hot-path-alloc           -> CXXNewExpr and malloc-family calls
    float-accumulation stays lexical (an AST dataflow pass is not worth
    the precision for a rule whose fix is always "use OnlineSummary").
    """

    RNG_NAMES = {
        "rand", "srand", "rand_r", "drand48", "lrand48", "random_device",
        "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
        "default_random_engine", "ranlux24", "ranlux48", "ranlux24_base",
        "ranlux48_base", "knuth_b",
    }
    CLOCK_NAMES = {
        "system_clock", "steady_clock", "high_resolution_clock",
        "gettimeofday", "clock_gettime", "timespec_get", "time", "clock",
        "localtime", "gmtime",
    }
    ALLOC_NAMES = {"malloc", "calloc", "realloc", "aligned_alloc", "strdup"}

    def __init__(self) -> None:
        from clang import cindex  # raises ImportError when unavailable

        self.cindex = cindex
        self.index = cindex.Index.create()

    # -- compile-arg hygiene ------------------------------------------------

    @staticmethod
    def _parse_args(args: Sequence[str]) -> List[str]:
        """Strip the compiler path, -o/-c and the input file itself."""
        cleaned: List[str] = []
        skip = False
        for i, arg in enumerate(args):
            if i == 0:
                continue  # the compiler executable
            if skip:
                skip = False
                continue
            if arg in ("-o", "-c"):
                skip = arg == "-o"
                continue
            if arg.endswith(SOURCE_SUFFIXES):
                continue
            cleaned.append(arg)
        return cleaned

    # -- per-file check -----------------------------------------------------

    def check(self, root: str, rel_path: str, text: str,
              compile_args: Optional[Sequence[str]]) -> List[Violation]:
        cindex = self.cindex
        source = SourceFile(path=rel_path, raw=text)
        abs_path = os.path.join(root, rel_path)
        args = (self._parse_args(compile_args) if compile_args
                else ["-std=c++20", "-I" + os.path.join(root, "src")])
        tu = self.index.parse(
            abs_path, args=args,
            options=cindex.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES * 0)
        for diag in tu.diagnostics:
            if diag.severity >= cindex.Diagnostic.Fatal:
                raise RuntimeError(f"clang parse failed: {diag.spelling}")

        active = {rule.name: rule for rule in ALL_RULES
                  if rule.applies_to(rel_path)}
        out: List[Violation] = []

        def emit(rule_name: str, cursor, message: str) -> None:
            line = cursor.location.line
            if source.allowed(line, rule_name):
                return
            out.append(Violation(rel_path, line, rule_name, message,
                                 source.line_text(line)))

        def in_this_file(cursor) -> bool:
            f = cursor.location.file
            return f is not None and os.path.abspath(f.name) == os.path.abspath(abs_path)

        def visit(cursor) -> None:
            if not in_this_file(cursor):
                for child in cursor.get_children():
                    visit(child)
                return
            kind = cursor.kind
            spelling = cursor.spelling or ""
            if kind in (cindex.CursorKind.DECL_REF_EXPR,
                        cindex.CursorKind.TYPE_REF,
                        cindex.CursorKind.CALL_EXPR):
                if "rng-source" in active and spelling in self.RNG_NAMES:
                    emit("rng-source", cursor,
                         f"'{spelling}' is an entropy source outside "
                         "src/rng/; draw from a seeded rng::RngStream "
                         "substream instead")
                if "wall-clock" in active and spelling in self.CLOCK_NAMES:
                    emit("wall-clock", cursor,
                         "wall-clock read in a result-producing layer; "
                         "simulation logic runs on virtual time only. If "
                         "this feeds pure telemetry, annotate it: "
                         "// LINT-ALLOW(wall-clock): <why>")
                if ("hot-path-alloc" in active and
                        kind == cindex.CursorKind.CALL_EXPR and
                        spelling in self.ALLOC_NAMES):
                    emit("hot-path-alloc", cursor,
                         f"'{spelling}' in a certified allocation-free hot "
                         "path; reuse the engine free-list or hoist the "
                         "buffer to setup")
            if ("hot-path-alloc" in active and
                    kind == cindex.CursorKind.CXX_NEW_EXPR):
                emit("hot-path-alloc", cursor,
                     "raw new in a certified allocation-free hot path; "
                     "reuse the engine free-list or hoist the buffer to "
                     "setup")
            if ("unordered-iteration" in active and
                    kind == cindex.CursorKind.CXX_FOR_RANGE_STMT):
                children = list(cursor.get_children())
                if len(children) >= 2:
                    range_type = children[-2].type.spelling
                    if "unordered_" in range_type:
                        emit("unordered-iteration", cursor,
                             f"range-for over '{range_type}'; use an "
                             "ordered container or sort the keys before "
                             "anything result-bearing reads them")
            if ("unordered-iteration" in active and
                    kind == cindex.CursorKind.CALL_EXPR and
                    spelling in ("begin", "cbegin", "rbegin", "crbegin")):
                children = list(cursor.get_children())
                if children:
                    base_type = children[0].type.spelling
                    if "unordered_" in base_type:
                        emit("unordered-iteration", cursor,
                             f"iterator walk over '{base_type}'; use an "
                             "ordered container or sort the keys first")
            for child in cursor.get_children():
                visit(child)

        visit(tu.cursor)

        # bare-allow + float-accumulation ride the lexical engine in both
        # backends (see class docstring).
        lexical = check_file(rel_path, text,
                             rules=[r for r in ALL_RULES
                                    if r.name == "float-accumulation"])
        out.extend(lexical)
        seen = set()
        unique = []
        for v in sorted(out, key=lambda v: (v.path, v.line, v.rule)):
            key = (v.line, v.rule)
            if key in seen:
                continue
            seen.add(key)
            unique.append(v)
        return unique


def make_clang_backend() -> Optional[ClangBackend]:
    try:
        backend = ClangBackend()
        return backend
    except Exception:  # ImportError or libclang.so resolution failure
        return None


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def lint_files(root: str, targets: Dict[str, Optional[Sequence[str]]],
               backend_name: str, verbose: bool) -> List[Violation]:
    clang_backend = None
    if backend_name in ("auto", "clang"):
        clang_backend = make_clang_backend()
        if clang_backend is None and backend_name == "clang":
            die("error: --backend clang requires the libclang Python "
                "bindings (python3-clang); use --backend lexical")
    if verbose:
        engine = "clang AST" if clang_backend else "lexical"
        print(f"determinism-lint: {len(targets)} file(s), "
              f"{engine} backend", file=sys.stderr)

    violations: List[Violation] = []
    for rel_path in sorted(targets):
        abs_path = os.path.join(root, rel_path)
        try:
            with open(abs_path, "r", encoding="utf-8", errors="replace") as fh:
                text = fh.read()
        except OSError as exc:
            die(f"error: cannot read {abs_path}: {exc}")
        if clang_backend is not None:
            try:
                violations.extend(
                    clang_backend.check(root, rel_path, text,
                                        targets[rel_path]))
                continue
            except Exception as exc:
                if verbose:
                    print(f"determinism-lint: clang backend failed on "
                          f"{rel_path} ({exc}); lexical fallback",
                          file=sys.stderr)
        violations.extend(check_file(rel_path, text))
    return violations


def main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="*",
                        help="explicit files to lint (paths under --root); "
                             "default: every src/ TU in --compile-commands "
                             "plus every src/ header")
    parser.add_argument("--root", default=None,
                        help="repo root the rule scopes are relative to "
                             "(default: parent of tools/lint/)")
    parser.add_argument("--compile-commands", default=None,
                        metavar="JSON",
                        help="compile_commands.json to enumerate TUs (and "
                             "feed exact compile args to the clang backend)")
    parser.add_argument("--backend", choices=("auto", "clang", "lexical"),
                        default="auto")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--verbose", "-v", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.name}\n    {rule.description}")
        print("bare-allow\n    malformed or reason-less LINT-ALLOW "
              "annotations (the annotation is the audit trail)")
        return 0

    root = os.path.abspath(args.root) if args.root else os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

    targets: Dict[str, Optional[Sequence[str]]] = {}
    if args.files:
        for file_arg in args.files:
            rel = repo_relative(file_arg, root)
            if rel is None:
                die(f"error: {file_arg} is outside --root {root}")
            targets[rel] = None
    else:
        compile_commands = args.compile_commands
        if compile_commands is None:
            for candidate in ("build/compile_commands.json",
                              "compile_commands.json"):
                probe = os.path.join(root, candidate)
                if os.path.exists(probe):
                    compile_commands = probe
                    break
        if compile_commands is None:
            die("error: no compile_commands.json found; configure the "
                "build (CMake exports it by default) or pass "
                "--compile-commands / explicit files")
        targets.update(load_compile_commands(compile_commands, root))
        if not targets:
            die(f"error: {compile_commands} contains no src/ translation "
                f"units under {root}")
        for header in discover_headers(root):
            targets.setdefault(header, None)

    violations = lint_files(root, targets, args.backend, args.verbose)
    for violation in violations:
        print(violation.render())
    checked = len(targets)
    if violations:
        print(f"\ndeterminism-lint: {len(violations)} violation(s) in "
              f"{checked} file(s)", file=sys.stderr)
        return 1
    if args.verbose:
        print(f"determinism-lint: {checked} file(s) clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
