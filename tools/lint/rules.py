"""Rule definitions for the determinism lint.

Each rule encodes one clause of the repo's determinism contract — the
property (PR 1/2/6/7) that Monte Carlo results are bit-identical across
worker counts, traced vs. untraced runs, and flat vs. DES backends:

  rng-source           all randomness flows through src/rng/ streams; any
                       other entropy source (std::rand, random_device,
                       ad-hoc std engines) is an unseeded leak.
  wall-clock           result-producing layers never read wall clocks;
                       elapsed-time telemetry must be annotated so a reader
                       can see it cannot feed a metric.
  unordered-iteration  result-producing layers never iterate unordered
                       associative containers (iteration order is
                       implementation- and address-dependent).
  hot-path-alloc       the flat hot-path files PR 6 certified
                       allocation-free stay free of raw new/malloc.
  float-accumulation   replication folds use stats::OnlineSummary, not
                       naive `double sum = 0; sum += x` accumulators whose
                       result depends on summation order.

Every rule honors an inline escape hatch on the offending line or the
line directly above it:

    // LINT-ALLOW(rule-name): reason the contract is not at risk here

A LINT-ALLOW with no reason text is itself a violation (`bare-allow`):
the annotation is the audit trail, so it must say why.

The module is importable both by the lexical backend (regex over
comment/string-stripped source) and by the libclang backend, which reuses
the scoping tables and messages but matches on AST nodes.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

# --------------------------------------------------------------------------
# Scoping tables (paths are repo-root-relative, '/' separated)
# --------------------------------------------------------------------------

#: Layers whose output feeds figures, CSVs, JSON manifests, or pinned
#: anchors. The unordered-iteration, wall-clock, and float-accumulation
#: rules apply here.
RESULT_LAYERS = (
    "src/protocol/",
    "src/experiment/",
    "src/stats/",
    "src/scenario/",
)

#: Files PR 6 certified zero-steady-state-allocation (verified at runtime
#: by a counting operator new in the protocol tests). Raw new/malloc in
#: these files is rejected outright; container setup allocations
#: (vector::resize and friends) are fine and invisible to this rule.
HOT_PATH_FILES = frozenset({
    "src/protocol/flat_gossip.cpp",
    "src/protocol/flat_gossip.hpp",
    "src/rng/lut_sampler.cpp",
    "src/rng/lut_sampler.hpp",
    "src/core/bitvec.hpp",
})

#: The only directory that may construct entropy sources.
RNG_LAYER = "src/rng/"

#: Files allowed to read wall clocks without annotation: run manifests
#: exist to record wall time and peak RSS, so the whole file is timing.
WALL_CLOCK_ALLOWED_FILES = frozenset({
    "src/obs/manifest.cpp",
    "src/obs/manifest.hpp",
    "src/scenario/manifest.cpp",
    "src/scenario/manifest.hpp",
})


@dataclasses.dataclass(frozen=True)
class Violation:
    path: str       # repo-root-relative path
    line: int       # 1-based
    rule: str
    message: str
    snippet: str = ""

    def render(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.snippet:
            text += f"\n    {self.snippet.strip()}"
        return text


# --------------------------------------------------------------------------
# Lexing: blank out comments / string literals, harvest LINT-ALLOW
# --------------------------------------------------------------------------

_ALLOW_RE = re.compile(
    r"LINT-ALLOW\s*\(\s*(?P<rules>[A-Za-z0-9_,\s-]*?)\s*\)\s*(?P<colon>:?)\s*(?P<reason>.*?)\s*(?:\*/)?\s*$"
)


@dataclasses.dataclass
class SourceFile:
    """One lexed translation unit / header."""

    path: str                 # repo-root-relative, '/' separated
    raw: str
    code: str = ""            # raw with comments + string/char bodies blanked
    allows: dict = dataclasses.field(default_factory=dict)   # line -> set(rules)
    bare_allows: list = dataclasses.field(default_factory=list)  # lines lacking a reason

    def __post_init__(self) -> None:
        self.code, comments = _strip_comments_and_strings(self.raw)
        self._harvest_allows(comments)
        self.code_lines = self.code.split("\n")

    def _harvest_allows(self, comments: Sequence[tuple]) -> None:
        for line, text in comments:
            match = _ALLOW_RE.search(text)
            if match is None:
                # Only an annotation *attempt* (LINT-ALLOW with parens) is
                # malformed; prose mentioning the marker is fine.
                if re.search(r"LINT-ALLOW\s*\(", text):
                    self.bare_allows.append((line, "malformed LINT-ALLOW (expected 'LINT-ALLOW(rule): reason')"))
                continue
            rules = {r.strip() for r in match.group("rules").split(",") if r.strip()}
            reason = match.group("reason")
            if not rules:
                self.bare_allows.append((line, "LINT-ALLOW names no rule"))
                continue
            if not match.group("colon") or not reason:
                self.bare_allows.append(
                    (line, "LINT-ALLOW(" + ", ".join(sorted(rules)) + ") has no reason; "
                           "write 'LINT-ALLOW(rule): why the contract holds'"))
                continue
            self.allows.setdefault(line, set()).update(rules)

    def allowed(self, line: int, rule: str) -> bool:
        """True when `line` (or the comment line above it) allows `rule`."""
        for probe in (line, line - 1):
            if rule in self.allows.get(probe, ()):  # exact or preceding line
                return True
        return False

    def line_text(self, line: int) -> str:
        raw_lines = self.raw.split("\n")
        return raw_lines[line - 1] if 1 <= line <= len(raw_lines) else ""


def _strip_comments_and_strings(text: str):
    """Blank comments and string/char literal bodies, preserving layout.

    Returns (code, comments) where `comments` is a list of
    (1-based line, comment text) pairs — line comments yield one pair,
    block comments one pair per line so LINT-ALLOW works inside either.
    Newlines are preserved so line numbers in `code` match `raw`.
    """
    out: List[str] = []
    comments: List[tuple] = []
    i, n = 0, len(text)
    line = 1
    comment_start_line = 0
    buffer: List[str] = []
    state = "code"  # code | line_comment | block_comment | string | char | raw_string
    raw_delim = ""
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                comment_start_line = line
                buffer = []
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                comment_start_line = line
                buffer = []
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                # Raw string literal?  R"delim( ... )delim"
                if out and text[i - 1] == "R" and (i < 2 or not text[i - 2].isalnum()):
                    close = text.find("(", i + 1)
                    if close != -1 and close - i <= 17:
                        raw_delim = ")" + text[i + 1:close] + '"'
                        state = "raw_string"
                        out.append('"')
                        i += 1
                        continue
                state = "string"
                out.append('"')
                i += 1
                continue
            if ch == "'":
                # C++14 digit separator (1'000'000), not a char literal.
                hexdigits = "0123456789abcdefABCDEF"
                if i > 0 and text[i - 1] in hexdigits and nxt in hexdigits:
                    out.append("'")
                    i += 1
                    continue
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(ch)
            if ch == "\n":
                line += 1
            i += 1
            continue
        if state == "line_comment":
            if ch == "\n":
                comments.append((comment_start_line, "".join(buffer)))
                state = "code"
                out.append("\n")
                line += 1
            else:
                buffer.append(ch)
                out.append(" ")
            i += 1
            continue
        if state == "block_comment":
            if ch == "*" and nxt == "/":
                comments.append((comment_start_line, "".join(buffer)))
                state = "code"
                out.append("  ")
                i += 2
                continue
            if ch == "\n":
                comments.append((comment_start_line, "".join(buffer)))
                buffer = []
                comment_start_line = line + 1
                out.append("\n")
                line += 1
            else:
                buffer.append(ch)
                out.append(" ")
            i += 1
            continue
        if state == "string":
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                state = "code"
                out.append('"')
            elif ch == "\n":  # unterminated; be forgiving
                state = "code"
                out.append("\n")
                line += 1
            else:
                out.append(" ")
            i += 1
            continue
        if state == "char":
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == "'":
                state = "code"
                out.append("'")
            elif ch == "\n":
                state = "code"
                out.append("\n")
                line += 1
            else:
                out.append(" ")
            i += 1
            continue
        if state == "raw_string":
            if text.startswith(raw_delim, i):
                out.append(" " * (len(raw_delim) - 1) + '"')
                i += len(raw_delim)
                state = "code"
                continue
            if ch == "\n":
                out.append("\n")
                line += 1
            else:
                out.append(" ")
            i += 1
            continue
    if state == "line_comment":
        comments.append((comment_start_line, "".join(buffer)))
    elif state == "block_comment":
        comments.append((comment_start_line, "".join(buffer)))
    return "".join(out), comments


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

class Rule:
    name = ""
    description = ""

    def applies_to(self, path: str) -> bool:
        raise NotImplementedError

    def check(self, source: SourceFile) -> Iterator[Violation]:
        raise NotImplementedError

    # Helper: emit one violation per matching line, honoring LINT-ALLOW.
    def _scan(self, source: SourceFile, pattern: re.Pattern,
              message: Callable[[re.Match], str]) -> Iterator[Violation]:
        for lineno, text in enumerate(source.code_lines, start=1):
            for match in pattern.finditer(text):
                if source.allowed(lineno, self.name):
                    continue
                yield Violation(source.path, lineno, self.name,
                                message(match), source.line_text(lineno))


def _in_result_layers(path: str) -> bool:
    return any(path.startswith(layer) for layer in RESULT_LAYERS)


class RngSourceRule(Rule):
    name = "rng-source"
    description = (
        "entropy sources (std::rand, srand, std::random_device, ad-hoc "
        "<random> engines) outside src/rng/ — all randomness must come "
        "from seeded gossip::rng streams")

    _pattern = re.compile(
        r"\b(?:std\s*::\s*)?"
        r"(?P<what>rand(?=\s*\()|srand\b|rand_r\b|drand48\b|lrand48\b|"
        r"random_device\b|mt19937(?:_64)?\b|minstd_rand0?\b|"
        r"default_random_engine\b|ranlux(?:24|48)(?:_base)?\b|knuth_b\b)")

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/") and not path.startswith(RNG_LAYER)

    def check(self, source: SourceFile) -> Iterator[Violation]:
        return self._scan(
            source, self._pattern,
            lambda m: (f"'{m.group('what')}' is an entropy source outside "
                       f"{RNG_LAYER}; draw from a seeded rng::RngStream "
                       "substream instead"))


class WallClockRule(Rule):
    name = "wall-clock"
    description = (
        "wall-clock reads (time(), std::chrono system/steady/high_resolution "
        "clocks, gettimeofday, clock()) in result-producing layers "
        "(protocol/, experiment/, stats/, scenario/) without an annotation")

    _pattern = re.compile(
        r"\b(?P<what>system_clock|steady_clock|high_resolution_clock|"
        r"gettimeofday|clock_gettime|timespec_get|"
        r"(?:std\s*::\s*)?time\s*\(\s*(?:NULL|nullptr|0|&)|"
        r"clock\s*\(\s*\)|localtime\b|gmtime\b)")

    def applies_to(self, path: str) -> bool:
        return _in_result_layers(path) and path not in WALL_CLOCK_ALLOWED_FILES

    def check(self, source: SourceFile) -> Iterator[Violation]:
        return self._scan(
            source, self._pattern,
            lambda m: ("wall-clock read in a result-producing layer; "
                       "simulation logic runs on virtual time only. If this "
                       "feeds pure telemetry (elapsed-seconds fields), "
                       "annotate it: // LINT-ALLOW(wall-clock): <why>"))


class UnorderedIterationRule(Rule):
    name = "unordered-iteration"
    description = (
        "iteration over std::unordered_{map,set,multimap,multiset} in "
        "result-producing layers — bucket order is implementation- and "
        "address-dependent, so anything folded from it can differ run to run")

    _decl = re.compile(
        r"\bunordered_(?:multi)?(?:map|set)\s*<[^;{}()]*?>\s*&?\s*"
        r"(?P<name>[A-Za-z_]\w*)\s*(?:[;={(,)]|$)")
    _direct_range_for = re.compile(
        r"\bfor\s*\([^;)]*:\s*[^)]*\bunordered_(?:multi)?(?:map|set)\b")

    def applies_to(self, path: str) -> bool:
        return _in_result_layers(path)

    def check(self, source: SourceFile) -> Iterator[Violation]:
        # Pass 1: names declared (locals, params, members) with unordered
        # type, anywhere in this file.
        tracked = set()
        for text in source.code_lines:
            for match in self._decl.finditer(text):
                tracked.add(match.group("name"))
        # Range-fors span lines, so all patterns scan the whole blanked
        # text ([^;)] classes admit newlines) and map match offsets back
        # to line numbers.
        patterns: List[tuple] = [(
            self._direct_range_for,
            "range-for directly over an unordered container")]
        if tracked:
            names = "|".join(sorted(re.escape(n) for n in tracked))
            patterns.append((re.compile(
                r"\bfor\s*\([^;)]*:\s*(?:[A-Za-z_]\w*\s*[.]\s*|\*\s*)?"
                r"(?P<n>" + names + r")\s*\)"),
                "range-for over unordered container '{name}'"))
            patterns.append((re.compile(
                r"\b(?P<n>" + names + r")\s*\.\s*(?:c?r?begin|c?r?end)\s*\("),
                "iterator walk over unordered container '{name}'"))
        for pattern, what in patterns:
            for match in pattern.finditer(source.code):
                lineno = source.code.count("\n", 0, match.start()) + 1
                if source.allowed(lineno, self.name):
                    continue
                name = (match.groupdict() or {}).get("n") or ""
                yield Violation(
                    source.path, lineno, self.name,
                    what.format(name=name) +
                    "; use an ordered container or sort the keys before "
                    "anything result-bearing reads them",
                    source.line_text(lineno))


class HotPathAllocRule(Rule):
    name = "hot-path-alloc"
    description = (
        "raw new/malloc in the flat hot-path files PR 6 certified "
        "allocation-free (" + ", ".join(sorted(HOT_PATH_FILES)) + ")")

    _pattern = re.compile(
        r"\b(?P<what>new\b(?!\s*\()|new\s*\(|malloc\s*\(|calloc\s*\(|"
        r"realloc\s*\(|aligned_alloc\s*\(|strdup\s*\()")

    def applies_to(self, path: str) -> bool:
        return path in HOT_PATH_FILES

    def check(self, source: SourceFile) -> Iterator[Violation]:
        return self._scan(
            source, self._pattern,
            lambda m: ("raw allocation in a certified allocation-free hot "
                       "path; reuse the engine free-list or hoist the buffer "
                       "to setup"))


class FloatAccumulationRule(Rule):
    name = "float-accumulation"
    description = (
        "naive floating-point accumulator (double x = 0; ...; x += v) in a "
        "result-producing layer — replication folds must go through "
        "stats::OnlineSummary so summation is order-pinned and compensated")

    _decl = re.compile(
        r"\b(?:double|float)\s+(?P<name>[A-Za-z_]\w*)\s*(?:=\s*0(?:\.0*f?)?|\{\s*0?(?:\.0*f?)?\s*\}|\{\})\s*[;,]")

    def applies_to(self, path: str) -> bool:
        return _in_result_layers(path)

    def check(self, source: SourceFile) -> Iterator[Violation]:
        accumulators = {}
        for lineno, text in enumerate(source.code_lines, start=1):
            for match in self._decl.finditer(text):
                accumulators.setdefault(match.group("name"), lineno)
        if not accumulators:
            return
        names = "|".join(sorted(re.escape(n) for n in accumulators))
        add_assign = re.compile(r"\b(?P<name>" + names + r")\s*\+=")
        for lineno, text in enumerate(source.code_lines, start=1):
            for match in add_assign.finditer(text):
                name = match.group("name")
                if lineno <= accumulators[name]:
                    continue
                if source.allowed(lineno, self.name):
                    continue
                yield Violation(
                    source.path, lineno, self.name,
                    f"'{name}' (zero-initialized double at line "
                    f"{accumulators[name]}) is accumulated with += ; fold "
                    "through stats::OnlineSummary, or annotate why order "
                    "cannot reach a result",
                    source.line_text(lineno))


ALL_RULES: Sequence[Rule] = (
    RngSourceRule(),
    WallClockRule(),
    UnorderedIterationRule(),
    HotPathAllocRule(),
    FloatAccumulationRule(),
)

RULE_NAMES = tuple(rule.name for rule in ALL_RULES)


def check_file(path: str, text: str,
               rules: Optional[Iterable[Rule]] = None) -> List[Violation]:
    """Lint one file (repo-root-relative `path`); returns violations.

    Also reports malformed/bare LINT-ALLOW annotations and allows that
    name a rule the lint does not define (both under rule `bare-allow`).
    """
    source = SourceFile(path=path, raw=text)
    violations: List[Violation] = []
    for line, why in source.bare_allows:
        violations.append(Violation(path, line, "bare-allow", why,
                                    source.line_text(line)))
    for line, named in sorted(source.allows.items()):
        for rule_name in sorted(named - set(RULE_NAMES)):
            violations.append(Violation(
                path, line, "bare-allow",
                f"LINT-ALLOW names unknown rule '{rule_name}' "
                f"(known: {', '.join(RULE_NAMES)})",
                source.line_text(line)))
    for rule in (rules if rules is not None else ALL_RULES):
        if not rule.applies_to(path):
            continue
        violations.extend(rule.check(source))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    # One report per (line, rule): multiple matches on a line (e.g. a
    # .begin()/.end() pair) are the same defect.
    unique: List[Violation] = []
    seen = set()
    for violation in violations:
        key = (violation.path, violation.line, violation.rule)
        if key in seen:
            continue
        seen.add(key)
        unique.append(violation)
    return unique
