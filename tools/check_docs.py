#!/usr/bin/env python3
"""Documentation checks: mermaid blocks parse, intra-repo links resolve.

Scans README.md and docs/**/*.md and fails (exit 1) when:
  - a relative markdown link points at a file that does not exist,
  - a same-file '#anchor' link has no matching heading,
  - a cross-file '#anchor' fragment has no matching heading in the target,
  - a ```mermaid block is empty, has an unknown diagram type, or has
    unbalanced brackets/parens/braces (the failure modes that make GitHub
    render an error box instead of a diagram).

External http(s)/mailto links are not fetched. Run from anywhere:

    python3 tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

MERMAID_TYPES = (
    "graph",
    "flowchart",
    "sequenceDiagram",
    "classDiagram",
    "stateDiagram",
    "stateDiagram-v2",
    "erDiagram",
    "journey",
    "gantt",
    "pie",
    "mindmap",
    "timeline",
)

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
FENCE_RE = re.compile(r"^```(\w*)\s*$")


def doc_files() -> list[Path]:
    files = [REPO / "README.md"]
    files += sorted((REPO / "docs").glob("**/*.md"))
    return [f for f in files if f.is_file()]


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to dashes, drop punctuation."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)       # unwrap inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def strip_fences(text: str) -> str:
    """Removes fenced code blocks so links inside code are not checked."""
    out, in_fence = [], False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()) or line.strip() == "```":
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def anchors_of(path: Path, cache: dict[Path, set[str]]) -> set[str]:
    if path not in cache:
        text = path.read_text(encoding="utf-8")
        cache[path] = {github_slug(h) for h in HEADING_RE.findall(text)}
    return cache[path]


def check_links(path: Path, text: str, cache: dict[Path, set[str]]) -> list[str]:
    errors = []
    for target in LINK_RE.findall(strip_fences(text)):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        dest = path if not base else (path.parent / base).resolve()
        if not dest.exists():
            errors.append(f"{path.relative_to(REPO)}: dead link '{target}'")
            continue
        if fragment and dest.suffix == ".md":
            if github_slug(fragment) not in anchors_of(dest, cache):
                errors.append(
                    f"{path.relative_to(REPO)}: link '{target}' — no heading "
                    f"matches '#{fragment}' in {dest.relative_to(REPO)}"
                )
    return errors


def check_mermaid(path: Path, text: str) -> list[str]:
    errors = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        if lines[i].strip() != "```mermaid":
            i += 1
            continue
        start = i + 1
        block = []
        i += 1
        while i < len(lines) and lines[i].strip() != "```":
            block.append(lines[i])
            i += 1
        where = f"{path.relative_to(REPO)}:{start}"
        body = [l for l in block if l.strip() and not l.strip().startswith("%%")]
        if not body:
            errors.append(f"{where}: empty mermaid block")
            continue
        head = body[0].strip().split()[0]
        if head not in MERMAID_TYPES:
            errors.append(
                f"{where}: unknown mermaid diagram type '{head}' "
                f"(known: {', '.join(MERMAID_TYPES)})"
            )
        joined = "\n".join(body)
        for open_ch, close_ch in (("(", ")"), ("[", "]"), ("{", "}")):
            if joined.count(open_ch) != joined.count(close_ch):
                errors.append(
                    f"{where}: unbalanced '{open_ch}{close_ch}' in mermaid block"
                )
    return errors


def main() -> int:
    errors = []
    cache: dict[Path, set[str]] = {}
    files = doc_files()
    if len(files) < 2:
        errors.append("expected README.md plus docs/*.md — docs/ missing?")
    for path in files:
        text = path.read_text(encoding="utf-8")
        errors += check_links(path, text, cache)
        errors += check_mermaid(path, text)
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    print(f"check_docs: {len(files)} files, {len(errors)} error(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
