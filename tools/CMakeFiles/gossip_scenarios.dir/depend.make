# Empty dependencies file for gossip_scenarios.
# This may be replaced when dependencies are built.
