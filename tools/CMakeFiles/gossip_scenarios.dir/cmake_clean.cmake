file(REMOVE_RECURSE
  "CMakeFiles/gossip_scenarios.dir/gossip_scenarios.cpp.o"
  "CMakeFiles/gossip_scenarios.dir/gossip_scenarios.cpp.o.d"
  "gossip_scenarios"
  "gossip_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
