/// Failure-tolerance explorer: sweeps the non-failed ratio q across the
/// phase transition for several fanout distributions and reports where
/// gossip reliability collapses — the paper's headline question ("the
/// maximum ratio of failed nodes that can be tolerated").

#include <iostream>
#include <vector>

#include "core/degree_distribution.hpp"
#include "core/percolation.hpp"
#include "experiment/component_mc.hpp"
#include "experiment/table.hpp"

int main() {
  using namespace gossip;

  const std::uint32_t n = 3000;
  const std::vector<core::DegreeDistributionPtr> dists{
      core::poisson_fanout(3.0),
      core::poisson_fanout(6.0),
      core::fixed_fanout(3),
      core::geometric_fanout(3.0),
  };

  std::cout << "Where does gossip stop tolerating failures? (n = " << n
            << ", component metric, 15 runs per point)\n";

  for (const auto& dist : dists) {
    const auto gf = core::GeneratingFunction::from_distribution(*dist);
    const double qc = core::critical_nonfailed_ratio(gf);
    std::cout << "\n== " << dist->name() << "  (Eq. 3 predicts q_c = " << qc
              << ", i.e. tolerates " << (1.0 - qc) * 100.0
              << "% failures) ==\n";

    experiment::TextTable table;
    table.column("failures%", 10)
        .column("q", 7)
        .column("analysis R", 11)
        .column("sim R", 8)
        .column("verdict", 10);

    for (double failures = 0.0; failures <= 0.9001; failures += 0.1) {
      const double q = 1.0 - failures;
      if (q <= 0.0) break;
      const double analysis =
          core::analyze_site_percolation(gf, q).reliability;
      experiment::MonteCarloOptions opt;
      opt.replications = 15;
      opt.seed = 99;
      const auto est = experiment::estimate_giant_component(n, *dist, q, opt);
      const bool alive = est.giant_fraction_alive.mean() > 0.1;
      table.add_row({experiment::fmt_double(failures * 100.0, 0),
                     experiment::fmt_double(q, 2),
                     experiment::fmt_double(analysis, 4),
                     experiment::fmt_double(
                         est.giant_fraction_alive.mean(), 4),
                     alive ? "spreads" : "dies"});
    }
    table.print(std::cout);
  }

  std::cout << "\nHeavier-tailed fanouts (geometric) survive more failures "
               "than Poisson at equal mean\n(q_c = 1/G1'(1) falls with the "
               "second factorial moment), but deliver lower plateau\n"
               "reliability — pick the distribution to match the failure "
               "regime you must survive.\n";
  return 0;
}
