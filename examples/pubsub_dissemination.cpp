/// Publish/subscribe event dissemination — the application class the
/// paper's introduction motivates. A 10,000-member topic group built over
/// SCAMP-style partial membership views disseminates a burst of events
/// while a fraction of brokers has crashed; measured delivery is compared
/// against the paper's model prediction.

#include <iostream>
#include <vector>

#include "core/reliability_model.hpp"
#include "core/success_model.hpp"
#include "membership/scamp.hpp"
#include "protocol/gossip_multicast.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace gossip;

  const std::uint32_t subscribers = 10000;
  const double broker_failure_ratio = 0.15;
  const double q = 1.0 - broker_failure_ratio;
  const double fanout_mean = 5.0;
  const int events = 12;

  std::cout << "Topic group: " << subscribers << " subscribers, "
            << broker_failure_ratio * 100 << "% crashed, Poisson("
            << fanout_mean << ") fanout, SCAMP membership\n\n";

  // Build SCAMP views once (the membership substrate the paper assumes).
  rng::RngStream build_rng(555);
  membership::ScampParams scamp;
  scamp.num_nodes = subscribers;
  scamp.redundancy = 1;
  const auto provider = membership::scamp_membership(scamp, build_rng);

  // Model prediction (full-view assumption).
  const core::GossipModel model(subscribers, core::poisson_fanout(fanout_mean),
                                q);
  std::cout << "Model: per-event reliability R = " << model.reliability()
            << ", events needed for 99.99% coverage t = "
            << core::required_executions(model.reliability(), 0.9999)
            << "\n\n";

  // Disseminate a burst of independent events (each a fresh execution with
  // a fresh source) over the same crashed-broker pattern.
  protocol::GossipParams params;
  params.num_nodes = subscribers;
  params.nonfailed_ratio = q;
  params.fanout = core::poisson_fanout(fanout_mean);
  params.membership = provider;
  params.latency = net::lognormal_latency(0.0, 0.4);  // WAN-ish delays

  rng::RngStream run_rng(777);
  const auto alive =
      protocol::draw_alive_mask(subscribers, /*source=*/0, q, run_rng);

  stats::OnlineSummary delivery;
  stats::OnlineSummary completion;
  std::vector<std::uint32_t> covered(subscribers, 0);
  for (int e = 0; e < events; ++e) {
    auto rng = run_rng.substream(static_cast<std::uint64_t>(e));
    const auto exec = protocol::run_gossip_once(params, alive, rng);
    delivery.add(exec.reliability);
    completion.add(exec.completion_time);
    for (std::uint32_t v = 0; v < subscribers; ++v) {
      if (exec.received[v]) ++covered[v];
    }
    std::cout << "  event " << e << ": delivered to "
              << exec.nonfailed_received << "/" << exec.nonfailed_count
              << " live subscribers (R = " << exec.reliability
              << ", t = " << exec.completion_time << ")\n";
  }

  std::uint32_t alive_count = 0;
  std::uint32_t reached_ever = 0;
  for (std::uint32_t v = 0; v < subscribers; ++v) {
    if (!alive[v]) continue;
    ++alive_count;
    if (covered[v] > 0) ++reached_ever;
  }

  std::cout << "\nSummary over " << events << " events:\n"
            << "  mean per-event delivery = " << delivery.mean()
            << "  (model R = " << model.reliability() << ")\n"
            << "  mean completion time    = " << completion.mean() << "\n"
            << "  subscribers reached by >= 1 event: " << reached_ever << "/"
            << alive_count << " ("
            << static_cast<double>(reached_ever) /
                   static_cast<double>(alive_count)
            << "; Eq. (5) predicts "
            << core::success_probability(model.reliability(), events)
            << ")\n";
  return 0;
}
