/// Protocol shoot-out at equal message budget: the paper's random-fanout
/// forward-once algorithm (Fig. 1) vs the traditional fixed-fanout variant
/// vs round-based push gossip. Reports delivery, messages, duplicates, and
/// time-to-completion on the message-level simulator.

#include <iostream>

#include "core/reliability_model.hpp"
#include "experiment/table.hpp"
#include "protocol/gossip_multicast.hpp"
#include "protocol/round_gossip.hpp"
#include "stats/summary.hpp"

namespace {

struct Row {
  std::string label;
  gossip::stats::OnlineSummary reliability;
  gossip::stats::OnlineSummary messages;
  gossip::stats::OnlineSummary duplicates;
  gossip::stats::OnlineSummary time;
};

}  // namespace

int main() {
  using namespace gossip;

  const std::uint32_t n = 2000;
  const double q = 0.85;
  const double budget_mean_fanout = 4.0;  // equal expected messages/node
  const std::size_t reps = 25;

  std::cout << "Protocol comparison: n = " << n << ", q = " << q
            << ", mean fanout budget = " << budget_mean_fanout << ", "
            << reps << " runs each\n"
            << "(model reliability at this budget: "
            << core::poisson_reliability(budget_mean_fanout, q) << ")\n\n";

  std::vector<Row> rows;

  // 1) Paper's Fig. 1: random Poisson fanout, forward once, asynchronous.
  {
    Row row;
    row.label = "fig1-poisson";
    protocol::GossipParams params;
    params.num_nodes = n;
    params.nonfailed_ratio = q;
    params.fanout = core::poisson_fanout(budget_mean_fanout);
    const rng::RngStream root(1);
    for (std::size_t i = 0; i < reps; ++i) {
      auto rng = root.substream(i);
      const auto exec = protocol::run_gossip_once(params, rng);
      row.reliability.add(exec.reliability);
      row.messages.add(static_cast<double>(exec.messages_sent));
      row.duplicates.add(static_cast<double>(exec.duplicate_receipts));
      row.time.add(exec.completion_time);
    }
    rows.push_back(std::move(row));
  }

  // 2) Traditional fixed fanout, forward once.
  {
    Row row;
    row.label = "fixed-fanout";
    protocol::GossipParams params;
    params.num_nodes = n;
    params.nonfailed_ratio = q;
    params.fanout =
        core::fixed_fanout(static_cast<std::int64_t>(budget_mean_fanout));
    const rng::RngStream root(2);
    for (std::size_t i = 0; i < reps; ++i) {
      auto rng = root.substream(i);
      const auto exec = protocol::run_gossip_once(params, rng);
      row.reliability.add(exec.reliability);
      row.messages.add(static_cast<double>(exec.messages_sent));
      row.duplicates.add(static_cast<double>(exec.duplicate_receipts));
      row.time.add(exec.completion_time);
    }
    rows.push_back(std::move(row));
  }

  // 3) Round-based push gossip, forward-always, fanout 1 per round. Only
  //    informed members send, so the budget is consumed over time rather
  //    than up-front; 16 rounds lets the doubling process saturate and
  //    makes the total message count comparable to one fanout-4 shot.
  {
    Row row;
    row.label = "rounds-16x1";
    protocol::RoundGossipProtocolParams params;
    params.num_nodes = n;
    params.nonfailed_ratio = q;
    params.fanout = core::fixed_fanout(1);
    params.rounds = 16;
    params.mode = protocol::RoundGossipMode::kForwardAlways;
    const rng::RngStream root(3);
    for (std::size_t i = 0; i < reps; ++i) {
      auto rng = root.substream(i);
      const auto res = protocol::run_round_gossip(params, rng);
      row.reliability.add(res.execution.reliability);
      row.messages.add(static_cast<double>(res.execution.messages_sent));
      row.duplicates.add(
          static_cast<double>(res.execution.duplicate_receipts));
      row.time.add(static_cast<double>(res.rounds_executed));
    }
    rows.push_back(std::move(row));
  }

  experiment::TextTable table;
  table.column("protocol", 14)
      .column("reliability", 12)
      .column("messages", 10)
      .column("duplicates", 11)
      .column("time", 7);
  for (const auto& row : rows) {
    table.add_row({row.label,
                   experiment::fmt_double(row.reliability.mean(), 4),
                   experiment::fmt_double(row.messages.mean(), 0),
                   experiment::fmt_double(row.duplicates.mean(), 0),
                   experiment::fmt_double(row.time.mean(), 2)});
  }
  table.print(std::cout);

  std::cout << "\nReading: at equal mean fanout the fixed variant edges out "
               "the Poisson one (lower variance ->\nlower die-out). "
               "Round-based fanout-1 push eventually reaches everyone but "
               "pays ~4x the latency\nand keeps paying messages every "
               "round. The paper's contribution is that the one-shot "
               "variants\nsit in ONE analytical framework (arbitrary P); "
               "the round-based process needs the recurrence\nmodels of "
               "core/baselines instead.\n";
  return 0;
}
