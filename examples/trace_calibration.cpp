/// Trace calibration: from a measured fanout trace to a provisioned
/// protocol. A deployed gossip system logs the fanouts its members actually
/// used; this tool fits a distribution family, checks adequacy, feeds the
/// fit into the paper's model, and verifies the resulting reliability
/// prediction by simulation — the full model-in-the-loop workflow.

#include <iostream>
#include <vector>

#include "core/fanout_planner.hpp"
#include "core/percolation.hpp"
#include "core/reliability_model.hpp"
#include "experiment/component_mc.hpp"
#include "rng/distributions.hpp"
#include "stats/fit.hpp"

int main() {
  using namespace gossip;

  // ---- 1. "Measured" trace ----------------------------------------------
  // Stand-in for a production log: a system whose members mostly gossip
  // with Poisson(4.5) fanout, but 10% of them are rate-limited to fanout 1.
  rng::RngStream trace_rng(20260610);
  std::vector<std::int64_t> trace;
  trace.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    if (trace_rng.bernoulli(0.1)) {
      trace.push_back(1);
    } else {
      trace.push_back(rng::sample_poisson(trace_rng, 4.5));
    }
  }
  std::cout << "Trace: " << trace.size() << " fanout samples collected\n\n";

  // ---- 2. Fit candidate families -----------------------------------------
  const auto poisson_fit = stats::fit_poisson(trace);
  const auto geometric_fit = stats::fit_geometric(trace);
  std::cout << "Poisson fit:   mean = " << poisson_fit.mean
            << ", log-likelihood = " << poisson_fit.log_likelihood << "\n"
            << "Geometric fit: mean = " << geometric_fit.mean
            << ", log-likelihood = " << geometric_fit.log_likelihood << "\n";

  const auto adequacy = stats::poisson_adequacy_test(trace, poisson_fit.mean);
  std::cout << "Poisson adequacy: chi2 = " << adequacy.statistic
            << ", dof = " << adequacy.dof << ", p = " << adequacy.p_value
            << (adequacy.p_value < 0.01
                    ? "  -> Poisson is NOT a perfect fit (the rate-limited "
                      "members fatten the low tail);\n     fall back to the "
                      "EMPIRICAL distribution, which the model accepts "
                      "directly.\n"
                    : "  -> Poisson fits.\n");

  // ---- 3. Model with the empirical distribution --------------------------
  std::vector<double> weights;
  for (const auto s : trace) {
    const auto k = static_cast<std::size_t>(s);
    if (weights.size() <= k) weights.resize(k + 1, 0.0);
    weights[k] += 1.0;
  }
  const auto empirical = core::empirical_fanout(weights);
  const double q = 0.85;
  const core::GossipModel model(2000, empirical, q);
  const core::GossipModel naive(2000, core::poisson_fanout(poisson_fit.mean),
                                q);
  std::cout << "\nAt q = " << q << ":\n"
            << "  empirical-distribution model: R = " << model.reliability()
            << " (q_c = " << model.critical_nonfailed_ratio() << ")\n"
            << "  naive Poisson-fit model:      R = " << naive.reliability()
            << " (q_c = " << naive.critical_nonfailed_ratio() << ")\n";

  // ---- 4. Verify by simulation -------------------------------------------
  experiment::MonteCarloOptions opt;
  opt.replications = 30;
  opt.seed = 99;
  const auto est = experiment::estimate_giant_component(2000, *empirical, q,
                                                        opt);
  std::cout << "  simulated (component metric): R = "
            << est.giant_fraction_alive.mean() << "\n\n";

  const double delta_emp =
      std::abs(est.giant_fraction_alive.mean() - model.reliability());
  const double delta_naive =
      std::abs(est.giant_fraction_alive.mean() - naive.reliability());
  std::cout << "Empirical-model error " << delta_emp
            << " vs naive-Poisson error " << delta_naive << ": "
            << (delta_emp <= delta_naive
                    ? "calibrating on the real distribution wins.\n"
                    : "(unexpected: naive model closer on this draw)\n");
  return 0;
}
