/// Provisioning tool: given a reliability target, an expected failure
/// level, and a success requirement, compute the Poisson fanout and
/// repetition count per the paper's Eqs. (10)-(12) and (6) — then verify
/// the plan by simulation.
///
/// Usage: fanout_planner [target_reliability] [failure_ratio] [target_success]
///   defaults:            0.99                 0.2              0.999

#include <cstdlib>
#include <iostream>

#include "core/fanout_planner.hpp"
#include "core/reliability_model.hpp"
#include "experiment/component_mc.hpp"
#include "experiment/monte_carlo.hpp"

int main(int argc, char** argv) {
  using namespace gossip;

  core::PlanRequest request;
  request.target_reliability = argc > 1 ? std::atof(argv[1]) : 0.99;
  const double failure_ratio = argc > 2 ? std::atof(argv[2]) : 0.2;
  request.nonfailed_ratio = 1.0 - failure_ratio;
  request.target_success = argc > 3 ? std::atof(argv[3]) : 0.999;

  std::cout << "Planning gossip for:\n"
            << "  target reliability  = " << request.target_reliability << "\n"
            << "  assumed failures    = " << failure_ratio << " (q = "
            << request.nonfailed_ratio << ")\n"
            << "  target success      = " << request.target_success << "\n\n";

  const auto plan = core::plan_poisson_gossip(request);

  std::cout << "Plan (Eqs. 10-12 and 6):\n"
            << "  mean fanout z        = " << plan.mean_fanout << "\n"
            << "  executions t         = " << plan.executions << "\n"
            << "  critical ratio q_c   = " << plan.critical_q << "\n"
            << "  failure margin       = " << plan.failure_margin
            << " (how much more failure the giant component survives)\n"
            << "  predicted reliability= " << plan.predicted_reliability
            << "\n  predicted success    = " << plan.predicted_success
            << "\n\n";

  // What if failures exceed the assumption? Report the breaking point.
  std::cout << "Sensitivity: max tolerable failure ratio at z = "
            << plan.mean_fanout << " while keeping R >= "
            << request.target_reliability << " is "
            << core::max_tolerable_failure_ratio(plan.mean_fanout,
                                                 request.target_reliability)
            << "\n\n";

  // Verify by simulation: giant-component metric over 30 runs, n = 2000.
  const auto dist = core::poisson_fanout(plan.mean_fanout);
  experiment::MonteCarloOptions opt;
  opt.replications = 30;
  opt.seed = 7;
  const auto est = experiment::estimate_giant_component(
      2000, *dist, request.nonfailed_ratio, opt);
  const auto ci = stats::mean_confidence_interval(est.giant_fraction_alive);
  std::cout << "Simulation check (n = 2000, 30 runs):\n"
            << "  measured reliability = " << est.giant_fraction_alive.mean()
            << "  (95% CI [" << ci.lo << ", " << ci.hi << "])\n"
            << "  plan is " << (ci.hi >= request.target_reliability * 0.995
                                    ? "CONFIRMED"
                                    : "NOT confirmed")
            << " by simulation\n";
  return 0;
}
