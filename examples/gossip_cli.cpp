/// gossip_cli — command-line front end to the library, for operators who
/// want answers without writing C++. Subcommands map one-to-one onto the
/// paper's results:
///
///   gossip_cli reliability <mean_fanout> <q>
///       R(q, Po(z)) via Eq. (11), plus q_c and the failure margin.
///   gossip_cli plan <target_reliability> <failure_ratio> <target_success>
///       Fanout + repetition plan via Eqs. (12) and (6).
///   gossip_cli tolerance <mean_fanout> <target_reliability>
///       Maximum tolerable failure ratio at a given fanout.
///   gossip_cli simulate <n> <mean_fanout> <q> [replications=20] [seed=42]
///       Monte Carlo check: component + delivery metrics.
///   gossip_cli success <reliability> <target_success>
///       Required executions t via Eq. (6).

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/branching.hpp"
#include "core/fanout_planner.hpp"
#include "core/reliability_model.hpp"
#include "core/success_model.hpp"
#include "experiment/component_mc.hpp"
#include "experiment/monte_carlo.hpp"

namespace {

int usage() {
  std::cerr
      << "usage:\n"
      << "  gossip_cli reliability <mean_fanout> <q>\n"
      << "  gossip_cli plan <target_reliability> <failure_ratio> "
         "<target_success>\n"
      << "  gossip_cli tolerance <mean_fanout> <target_reliability>\n"
      << "  gossip_cli simulate <n> <mean_fanout> <q> [replications] [seed]\n"
      << "  gossip_cli success <reliability> <target_success>\n";
  return 2;
}

double parse_double(const char* s) { return std::strtod(s, nullptr); }

}  // namespace

int main(int argc, char** argv) {
  using namespace gossip;
  if (argc < 2) return usage();
  const std::string command = argv[1];

  try {
    if (command == "reliability" && argc == 4) {
      const double z = parse_double(argv[2]);
      const double q = parse_double(argv[3]);
      const double r = core::poisson_reliability(z, q);
      const double qc = core::poisson_critical_q(z);
      const auto gf = core::GeneratingFunction::from_distribution(
          *core::poisson_fanout(z));
      const auto directed = core::analyze_directed_gossip(gf, q);
      std::cout << "reliability R(q, Po(z))      = " << r << "\n"
                << "critical non-failed ratio qc = " << qc << "\n"
                << "failure margin (q - qc)      = " << q - qc << "\n"
                << "take-off probability         = "
                << directed.takeoff_probability << "\n"
                << "expected delivered fraction  = "
                << directed.expected_delivery << "\n";
      return 0;
    }
    if (command == "plan" && argc == 5) {
      core::PlanRequest request;
      request.target_reliability = parse_double(argv[2]);
      request.nonfailed_ratio = 1.0 - parse_double(argv[3]);
      request.target_success = parse_double(argv[4]);
      const auto plan = core::plan_poisson_gossip(request);
      std::cout << "mean fanout z       = " << plan.mean_fanout << "\n"
                << "executions t        = " << plan.executions << "\n"
                << "critical ratio qc   = " << plan.critical_q << "\n"
                << "failure margin      = " << plan.failure_margin << "\n"
                << "predicted R         = " << plan.predicted_reliability
                << "\n"
                << "predicted success   = " << plan.predicted_success << "\n";
      return 0;
    }
    if (command == "tolerance" && argc == 4) {
      const double z = parse_double(argv[2]);
      const double target = parse_double(argv[3]);
      std::cout << "max tolerable failure ratio = "
                << core::max_tolerable_failure_ratio(z, target) << "\n";
      return 0;
    }
    if (command == "simulate" && (argc == 5 || argc == 6 || argc == 7)) {
      const auto n = static_cast<std::uint32_t>(std::atoi(argv[2]));
      const double z = parse_double(argv[3]);
      const double q = parse_double(argv[4]);
      experiment::MonteCarloOptions opt;
      opt.replications =
          argc > 5 ? static_cast<std::size_t>(std::atoi(argv[5])) : 20;
      opt.seed = argc > 6 ? static_cast<std::uint64_t>(
                                std::strtoull(argv[6], nullptr, 10))
                          : 42;
      const auto dist = core::poisson_fanout(z);
      const auto component =
          experiment::estimate_giant_component(n, *dist, q, opt);
      const auto delivery =
          experiment::estimate_reliability_graph(n, *dist, q, opt);
      std::cout << "analysis S (Eq. 11)      = "
                << core::poisson_reliability(z, q) << "\n"
                << "sim component metric     = "
                << component.giant_fraction_alive.mean() << "\n"
                << "sim delivery metric      = "
                << delivery.mean_reliability() << "\n"
                << "replications             = " << opt.replications << "\n";
      return 0;
    }
    if (command == "success" && argc == 4) {
      const double r = parse_double(argv[2]);
      const double target = parse_double(argv[3]);
      const auto t = core::required_executions(r, target);
      std::cout << "required executions t = " << t << "\n"
                << "achieved success      = "
                << core::success_probability(r, t) << "\n";
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
