/// Quickstart: model a gossip multicast group, predict its fault tolerance
/// with the paper's analysis, then check the prediction against one
/// simulated protocol execution.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <iostream>

#include "core/reliability_model.hpp"
#include "core/success_model.hpp"
#include "protocol/gossip_multicast.hpp"

int main() {
  using namespace gossip;

  // A multicast group of 1000 members where we expect up to 10% of members
  // to have crashed, gossiping with a Poisson(4) random fanout (the paper's
  // Fig. 6 operating point).
  const std::size_t group_size = 1000;
  const double nonfailed_ratio = 0.9;
  const core::GossipModel model(group_size, core::poisson_fanout(4.0),
                                nonfailed_ratio);

  std::cout << "Gossip(" << group_size << ", " << model.fanout().name()
            << ", q=" << nonfailed_ratio << ")\n\n";

  // --- What the analysis says (Section 4 of the paper) ---
  std::cout << "Analytical model:\n"
            << "  reliability R(q,P)          = " << model.reliability()
            << "\n  critical non-failed ratio q_c = "
            << model.critical_nonfailed_ratio()
            << "  (giant component exists because q > q_c)\n"
            << "  max tolerable failure ratio = "
            << model.max_tolerable_failure_ratio()
            << "\n  expected receivers          = "
            << model.expected_receivers() << " of "
            << model.expected_nonfailed() << " non-failed members\n";

  // How many executions to reach ALL surviving members with 99.9%
  // probability (Eqs. (5)-(6))?
  const auto t = core::required_executions(model.reliability(), 0.999);
  std::cout << "  executions for 99.9% member coverage: t = " << t << "\n\n";

  // --- One actual protocol execution on the simulated network ---
  protocol::GossipParams params;
  params.num_nodes = static_cast<std::uint32_t>(group_size);
  params.nonfailed_ratio = nonfailed_ratio;
  params.fanout = model.fanout_ptr();

  rng::RngStream rng(/*seed=*/20080410);
  const auto exec = protocol::run_gossip_once(params, rng);

  std::cout << "One simulated execution (message-level DES):\n"
            << "  non-failed members  = " << exec.nonfailed_count << "\n"
            << "  received message    = " << exec.nonfailed_received << "\n"
            << "  realized reliability= " << exec.reliability << "\n"
            << "  messages sent       = " << exec.messages_sent << "\n"
            << "  duplicate receipts  = " << exec.duplicate_receipts << "\n"
            << "  completion time     = " << exec.completion_time
            << " (hops at unit latency)\n\n";

  std::cout << "Note: a single execution either reaches ~R of the members\n"
               "(the giant cascade) or dies out near the source — re-run\n"
               "with different seeds to observe both modes; Eq. (5) is why\n"
               "repeating t times makes coverage near-certain.\n";
  return 0;
}
