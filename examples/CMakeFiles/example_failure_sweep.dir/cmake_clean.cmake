file(REMOVE_RECURSE
  "CMakeFiles/example_failure_sweep.dir/failure_sweep.cpp.o"
  "CMakeFiles/example_failure_sweep.dir/failure_sweep.cpp.o.d"
  "example_failure_sweep"
  "example_failure_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_failure_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
