# Empty dependencies file for example_failure_sweep.
# This may be replaced when dependencies are built.
