# Empty dependencies file for example_gossip_cli.
# This may be replaced when dependencies are built.
