file(REMOVE_RECURSE
  "CMakeFiles/example_gossip_cli.dir/gossip_cli.cpp.o"
  "CMakeFiles/example_gossip_cli.dir/gossip_cli.cpp.o.d"
  "example_gossip_cli"
  "example_gossip_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gossip_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
