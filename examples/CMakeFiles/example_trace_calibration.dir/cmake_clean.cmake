file(REMOVE_RECURSE
  "CMakeFiles/example_trace_calibration.dir/trace_calibration.cpp.o"
  "CMakeFiles/example_trace_calibration.dir/trace_calibration.cpp.o.d"
  "example_trace_calibration"
  "example_trace_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_trace_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
