# Empty dependencies file for example_trace_calibration.
# This may be replaced when dependencies are built.
