# Empty dependencies file for example_protocol_comparison.
# This may be replaced when dependencies are built.
