file(REMOVE_RECURSE
  "CMakeFiles/example_protocol_comparison.dir/protocol_comparison.cpp.o"
  "CMakeFiles/example_protocol_comparison.dir/protocol_comparison.cpp.o.d"
  "example_protocol_comparison"
  "example_protocol_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_protocol_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
