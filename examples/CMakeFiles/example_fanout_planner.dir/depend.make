# Empty dependencies file for example_fanout_planner.
# This may be replaced when dependencies are built.
