file(REMOVE_RECURSE
  "CMakeFiles/example_fanout_planner.dir/fanout_planner.cpp.o"
  "CMakeFiles/example_fanout_planner.dir/fanout_planner.cpp.o.d"
  "example_fanout_planner"
  "example_fanout_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fanout_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
