# Empty dependencies file for example_pubsub_dissemination.
# This may be replaced when dependencies are built.
