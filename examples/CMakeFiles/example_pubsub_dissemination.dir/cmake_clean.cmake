file(REMOVE_RECURSE
  "CMakeFiles/example_pubsub_dissemination.dir/pubsub_dissemination.cpp.o"
  "CMakeFiles/example_pubsub_dissemination.dir/pubsub_dissemination.cpp.o.d"
  "example_pubsub_dissemination"
  "example_pubsub_dissemination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pubsub_dissemination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
