#include "math/fixed_point.hpp"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace gossip::math {
namespace {

TEST(FixedPoint, SolvesCosineFixedPoint) {
  FixedPointOptions opts;
  opts.clamp_lo = 0.0;
  opts.clamp_hi = 1.0;
  const auto result = fixed_point([](double x) { return std::cos(x); }, 0.5,
                                  opts);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.value, 0.7390851332151607, 1e-10);
}

TEST(FixedPoint, SolvesPercolationSelfConsistency) {
  // u = 1 - q + q * exp(z (u - 1)) for Poisson fanout: the paper's Eq. (4).
  const double q = 0.9;
  const double z = 4.0;
  const auto result = fixed_point(
      [q, z](double u) { return 1.0 - q + q * std::exp(z * (u - 1.0)); }, 0.0);
  EXPECT_TRUE(result.converged);
  // Reliability S = 1 - G0(u) should be ~0.9695 at z*q = 3.6.
  const double reliability = 1.0 - std::exp(z * (result.value - 1.0));
  EXPECT_NEAR(reliability, 0.9695, 2e-4);
}

TEST(FixedPoint, SubcriticalConvergesToOne) {
  const double q = 0.2;
  const double z = 2.0;  // z*q = 0.4 < 1
  const auto result = fixed_point(
      [q, z](double u) { return 1.0 - q + q * std::exp(z * (u - 1.0)); }, 0.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.value, 1.0, 1e-6);
}

TEST(FixedPoint, DampingStillConverges) {
  FixedPointOptions opts;
  opts.damping = 0.5;
  const auto result = fixed_point([](double x) { return std::cos(x); }, 0.1,
                                  opts);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.value, 0.7390851332151607, 1e-9);
}

TEST(FixedPoint, ClampKeepsIteratesInInterval) {
  FixedPointOptions opts;
  opts.clamp_lo = 0.0;
  opts.clamp_hi = 1.0;
  opts.max_iterations = 50;
  // Map tries to escape; iterates must stay clamped.
  const auto result =
      fixed_point([](double x) { return 5.0 * x + 2.0; }, 0.5, opts);
  EXPECT_GE(result.value, 0.0);
  EXPECT_LE(result.value, 1.0);
}

TEST(FixedPoint, ReportsNonConvergenceAtIterationCap) {
  FixedPointOptions opts;
  opts.max_iterations = 5;
  opts.tolerance = 0.0;
  const auto result = fixed_point([](double x) { return x * 0.99; }, 1.0,
                                  opts);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 5);
}

TEST(FixedPoint, RejectsInvalidDamping) {
  FixedPointOptions opts;
  opts.damping = 0.0;
  EXPECT_THROW((void)fixed_point([](double x) { return x; }, 0.5, opts),
               std::invalid_argument);
  opts.damping = 1.5;
  EXPECT_THROW((void)fixed_point([](double x) { return x; }, 0.5, opts),
               std::invalid_argument);
}

TEST(FixedPoint, RejectsEmptyClampInterval) {
  FixedPointOptions opts;
  opts.clamp_lo = 1.0;
  opts.clamp_hi = 0.0;
  EXPECT_THROW((void)fixed_point([](double x) { return x; }, 0.5, opts),
               std::invalid_argument);
}

/// Property sweep: for every supercritical (z, q), the iteration from 0
/// lands on a fixed point of the map inside [0, 1).
class PercolationFixedPointSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(PercolationFixedPointSweep, LandsOnFixedPointBelowOne) {
  const auto [z, q] = GetParam();
  const auto g = [q, z](double u) {
    return 1.0 - q + q * std::exp(z * (u - 1.0));
  };
  const auto result = fixed_point(g, 0.0);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.value, g(result.value), 1e-10);
  if (z * q > 1.05) {
    EXPECT_LT(result.value, 1.0 - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SupercriticalGrid, PercolationFixedPointSweep,
    ::testing::Values(std::pair{2.0, 0.6}, std::pair{2.0, 0.9},
                      std::pair{3.0, 0.5}, std::pair{4.0, 0.4},
                      std::pair{5.0, 0.3}, std::pair{6.0, 0.6},
                      std::pair{8.0, 0.2}, std::pair{10.0, 0.9}));

}  // namespace
}  // namespace gossip::math
