#include "math/ode.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace gossip::math {
namespace {

TEST(Rk4, SolvesExponentialDecayAccurately) {
  const OdeSystem decay = [](double, const std::vector<double>& y,
                             std::vector<double>& dydt) {
    dydt[0] = -y[0];
  };
  const auto y = integrate_rk4(decay, {1.0}, 0.0, 2.0, 0.01);
  EXPECT_NEAR(y[0], std::exp(-2.0), 1e-9);
}

TEST(Rk4, SolvesLogisticGrowthAgainstClosedForm) {
  const double r = 1.8;
  const OdeSystem logistic = [r](double, const std::vector<double>& y,
                                 std::vector<double>& dydt) {
    dydt[0] = r * y[0] * (1.0 - y[0]);
  };
  const double i0 = 0.01;
  const auto y = integrate_rk4(logistic, {i0}, 0.0, 5.0, 0.001);
  const double e = std::exp(r * 5.0);
  const double expected = i0 * e / (1.0 - i0 + i0 * e);
  EXPECT_NEAR(y[0], expected, 1e-8);
}

TEST(Rk4, HandlesCoupledSystem) {
  // Harmonic oscillator: y'' = -y -> (y, v).
  const OdeSystem oscillator = [](double, const std::vector<double>& y,
                                  std::vector<double>& dydt) {
    dydt[0] = y[1];
    dydt[1] = -y[0];
  };
  const double t = 3.1;
  const auto y = integrate_rk4(oscillator, {1.0, 0.0}, 0.0, t, 0.001);
  EXPECT_NEAR(y[0], std::cos(t), 1e-8);
  EXPECT_NEAR(y[1], -std::sin(t), 1e-8);
}

TEST(Rk4, FinalPartialStepLandsExactlyOnEndpoint) {
  double last_t = -1.0;
  const OdeSystem decay = [](double, const std::vector<double>& y,
                             std::vector<double>& dydt) {
    dydt[0] = -y[0];
  };
  (void)integrate_rk4(decay, {1.0}, 0.0, 1.05, 0.1,
                      [&](double t, const std::vector<double>&) {
                        last_t = t;
                      });
  EXPECT_DOUBLE_EQ(last_t, 1.05);
}

TEST(Rk4, ObserverSeesInitialState) {
  std::vector<double> times;
  const OdeSystem trivial = [](double, const std::vector<double>&,
                               std::vector<double>& dydt) { dydt[0] = 0.0; };
  (void)integrate_rk4(trivial, {42.0}, 0.0, 0.3, 0.1,
                      [&](double t, const std::vector<double>& y) {
                        times.push_back(t);
                        EXPECT_DOUBLE_EQ(y[0], 42.0);
                      });
  ASSERT_GE(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times.front(), 0.0);
}

TEST(Rk4, ZeroLengthIntervalReturnsInitialState) {
  const OdeSystem decay = [](double, const std::vector<double>& y,
                             std::vector<double>& dydt) {
    dydt[0] = -y[0];
  };
  const auto y = integrate_rk4(decay, {3.0}, 1.0, 1.0, 0.1);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
}

TEST(Euler, ConvergesLinearlyButLessAccurateThanRk4) {
  const OdeSystem decay = [](double, const std::vector<double>& y,
                             std::vector<double>& dydt) {
    dydt[0] = -y[0];
  };
  const double exact = std::exp(-1.0);
  const auto euler = integrate_euler(decay, {1.0}, 0.0, 1.0, 0.01);
  const auto rk4 = integrate_rk4(decay, {1.0}, 0.0, 1.0, 0.01);
  const double euler_err = std::abs(euler[0] - exact);
  const double rk4_err = std::abs(rk4[0] - exact);
  EXPECT_LT(rk4_err, euler_err / 100.0);
  EXPECT_LT(euler_err, 1e-2);
}

TEST(Euler, HalvingStepRoughlyHalvesError) {
  const OdeSystem decay = [](double, const std::vector<double>& y,
                             std::vector<double>& dydt) {
    dydt[0] = -y[0];
  };
  const double exact = std::exp(-1.0);
  const auto coarse = integrate_euler(decay, {1.0}, 0.0, 1.0, 0.02);
  const auto fine = integrate_euler(decay, {1.0}, 0.0, 1.0, 0.01);
  const double ratio = std::abs(coarse[0] - exact) / std::abs(fine[0] - exact);
  EXPECT_NEAR(ratio, 2.0, 0.3);
}

TEST(OdeValidation, RejectsBadArguments) {
  const OdeSystem trivial = [](double, const std::vector<double>&,
                               std::vector<double>& dydt) { dydt[0] = 0.0; };
  EXPECT_THROW((void)integrate_rk4(trivial, {0.0}, 1.0, 0.0, 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)integrate_rk4(trivial, {0.0}, 0.0, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)integrate_euler(trivial, {0.0}, 0.0, 1.0, -0.1),
               std::invalid_argument);
}

}  // namespace
}  // namespace gossip::math
