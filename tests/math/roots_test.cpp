#include "math/roots.hpp"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace gossip::math {
namespace {

TEST(Bisect, FindsRootOfLinearFunction) {
  const auto result = bisect([](double x) { return 2.0 * x - 1.0; }, 0.0, 1.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.root, 0.5, 1e-10);
}

TEST(Bisect, FindsRootOfCubic) {
  const auto result =
      bisect([](double x) { return x * x * x - 2.0; }, 0.0, 2.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.root, std::cbrt(2.0), 1e-9);
}

TEST(Bisect, AcceptsRootAtEndpoint) {
  const auto result = bisect([](double x) { return x; }, 0.0, 1.0);
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.root, 0.0);
}

TEST(Bisect, ThrowsWithoutSignChange) {
  EXPECT_THROW(
      (void)bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
      std::invalid_argument);
}

TEST(Bisect, ThrowsOnInvertedBracket) {
  EXPECT_THROW((void)bisect([](double x) { return x; }, 1.0, 0.0),
               std::invalid_argument);
}

TEST(Bisect, RespectsIterationCap) {
  RootOptions opts;
  opts.max_iterations = 3;
  opts.x_tolerance = 0.0;
  opts.f_tolerance = 0.0;
  const auto result = bisect([](double x) { return x - 0.1234567; }, 0.0, 1.0,
                             opts);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 3);
}

TEST(Newton, ConvergesQuadraticallyOnSqrt2) {
  const auto f = [](double x) { return x * x - 2.0; };
  const auto df = [](double x) { return 2.0 * x; };
  const auto result = newton(f, df, 1.0, 0.0, 2.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.root, std::sqrt(2.0), 1e-12);
  EXPECT_LT(result.iterations, 10);
}

TEST(Newton, FallsBackToBisectionWhenDerivativeVanishes) {
  // f'(0) = 0 at the starting point; the guard must keep progress.
  const auto f = [](double x) { return x * x * x - 0.5; };
  const auto df = [](double x) { return 3.0 * x * x; };
  const auto result = newton(f, df, 0.0, 0.0, 1.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.root, std::cbrt(0.5), 1e-9);
}

TEST(Newton, HandlesDecreasingFunction) {
  const auto f = [](double x) { return 1.0 - x; };
  const auto df = [](double) { return -1.0; };
  const auto result = newton(f, df, 0.2, 0.0, 2.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.root, 1.0, 1e-10);
}

TEST(Brent, FindsTranscendentalRoot) {
  // x = cos(x) near 0.739085.
  const auto result =
      brent([](double x) { return x - std::cos(x); }, 0.0, 1.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.root, 0.7390851332151607, 1e-10);
}

TEST(Brent, FindsPoissonReliabilityFixedPoint) {
  // The exact shape solved throughout the project: S - 1 + exp(-zq S).
  const double zq = 3.6;
  const auto result = brent(
      [zq](double s) { return s - 1.0 + std::exp(-zq * s); }, 0.1, 1.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.root, 0.9695, 2e-4);
}

TEST(Brent, ThrowsWithoutSignChange) {
  EXPECT_THROW((void)brent([](double x) { return x * x + 0.5; }, -1.0, 1.0),
               std::invalid_argument);
}

struct RootCase {
  const char* label;
  double (*f)(double);
  double lo;
  double hi;
  double expected;
};

class RootFinderAgreement : public ::testing::TestWithParam<RootCase> {};

TEST_P(RootFinderAgreement, BisectAndBrentAgree) {
  const auto& c = GetParam();
  const auto fb = [&](double x) { return c.f(x); };
  const auto r1 = bisect(fb, c.lo, c.hi);
  const auto r2 = brent(fb, c.lo, c.hi);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_NEAR(r1.root, c.expected, 1e-8);
  EXPECT_NEAR(r2.root, c.expected, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    StandardFunctions, RootFinderAgreement,
    ::testing::Values(
        RootCase{"linear", [](double x) { return 3.0 * x - 2.0; }, 0.0, 1.0,
                 2.0 / 3.0},
        RootCase{"quadratic", [](double x) { return x * x - 0.25; }, 0.0, 1.0,
                 0.5},
        RootCase{"exp", [](double x) { return std::exp(x) - 2.0; }, 0.0, 1.0,
                 std::log(2.0)},
        RootCase{"log", [](double x) { return std::log(x) + 1.0; }, 0.1, 1.0,
                 std::exp(-1.0)},
        RootCase{"sin", [](double x) { return std::sin(x) - 0.5; }, 0.0, 1.5,
                 0.5235987755982989}),
    [](const ::testing::TestParamInfo<RootCase>& param_info) {
      return param_info.param.label;
    });

}  // namespace
}  // namespace gossip::math
