// Unit tests of the mean-field analytic engine (math/meanfield.hpp): the
// finite-n fixed point, the recurrence trajectory, the RK4 SIR cross-check,
// and the branching-process extinction probability. The statistical
// agreement with the simulators is pinned separately in tests/validation/;
// here the references are closed forms and the paper's Eq. 11 anchor
// S(z q = 3.6) ~= 0.9695 — hand-rolled Poisson pmfs keep this suite on the
// base math layer.

#include "math/meanfield.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace gossip {
namespace {

// Eq. 11 fixed point S = 1 - exp(-3.6 S), the Fig. 4(a)/4(b) headline.
constexpr double kEq11Anchor = 0.9695;

std::vector<double> poisson_pmf(double mean) {
  std::vector<double> pmf;
  double p = std::exp(-mean);
  double cumulative = 0.0;
  for (int k = 0; k < 400 && cumulative < 1.0 - 1e-13; ++k) {
    pmf.push_back(p);
    cumulative += p;
    p *= mean / static_cast<double>(k + 1);
  }
  return pmf;
}

meanfield::Params fig4a_params(std::uint64_t n) {
  meanfield::Params params;
  params.num_nodes = n;
  params.nonfailed_ratio = 0.9;
  params.fanout_pmf = poisson_pmf(4.0);
  return params;
}

TEST(MeanFieldFixedPoint, MatchesEq11AnchorAtLargeN) {
  EXPECT_NEAR(meanfield::predict_reliability(fig4a_params(10000000)),
              kEq11Anchor, 5e-4);
}

TEST(MeanFieldFixedPoint, ZqEquivalenceOfTheTwoFig4Points) {
  // z = 4, q = 0.9 and z = 6, q = 0.6 share z q = 3.6 and so the same
  // asymptotic reliability (the paper's Fig. 4 pairing).
  meanfield::Params b;
  b.num_nodes = 10000000;
  b.nonfailed_ratio = 0.6;
  b.fanout_pmf = poisson_pmf(6.0);
  EXPECT_NEAR(meanfield::predict_reliability(fig4a_params(10000000)),
              meanfield::predict_reliability(b), 1e-3);
}

TEST(MeanFieldFixedPoint, SolverConvergesWithBracketDiagnostics) {
  const auto fp = meanfield::solve_fixed_point(fig4a_params(1000));
  EXPECT_TRUE(fp.solve.converged);
  EXPECT_GE(fp.informed, 1.0);
  EXPECT_LE(fp.informed, 1.0 + 999.0 * 0.9);
  EXPECT_NEAR(fp.reliability, fp.informed / (1.0 + 999.0 * 0.9), 1e-12);
}

TEST(MeanFieldTrajectory, EndpointConvergesToFixedPointAsThresholdShrinks) {
  auto params = fig4a_params(1000);
  params.extinction_threshold = 1e-9;
  const auto traj = meanfield::predict_trajectory(params);
  EXPECT_NEAR(traj.reliability, meanfield::predict_reliability(params), 1e-6);
}

TEST(MeanFieldTrajectory, DefaultThresholdTruncatesOnlySlightly) {
  const auto params = fig4a_params(1000);
  const auto traj = meanfield::predict_trajectory(params);
  EXPECT_NEAR(traj.reliability, meanfield::predict_reliability(params), 5e-3);
  EXPECT_LT(traj.reliability, 1.0);
  EXPECT_LE(traj.rounds_to_extinction, 40u);  // O(log n) drain.
}

TEST(MeanFieldTrajectory, MirrorsInjectionRoundZero) {
  const auto traj = meanfield::predict_trajectory(fig4a_params(1000));
  ASSERT_GE(traj.rounds.size(), 2u);
  const auto& inject = traj.rounds.front();
  EXPECT_EQ(inject.round, 0u);
  EXPECT_DOUBLE_EQ(inject.newly_informed, 1.0);
  EXPECT_DOUBLE_EQ(inject.informed, 1.0);
  EXPECT_DOUBLE_EQ(inject.sends, 0.0);
  // Round 1: the source forwards alone.
  EXPECT_DOUBLE_EQ(traj.rounds[1].frontier, 1.0);
}

TEST(MeanFieldTrajectory, SendAccountingIdentityHoldsEveryRound) {
  meanfield::Params params = fig4a_params(2000);
  params.loss_probability = 0.2;
  const auto traj = meanfield::predict_trajectory(params);
  for (std::size_t r = 1; r < traj.rounds.size(); ++r) {
    const auto& p = traj.rounds[r];
    EXPECT_NEAR(p.sends,
                p.newly_informed + p.redundant + p.losses + p.dead_receipts,
                1e-9 * (1.0 + p.sends))
        << "round " << r;
  }
  EXPECT_NEAR(traj.messages,
              [&] {
                double total = 0.0;
                for (const auto& p : traj.rounds) total += p.sends;
                return total;
              }(),
              1e-9);
}

TEST(MeanFieldTrajectory, InformedFractionIsMonotoneAndEndsAtReliability) {
  const auto traj = meanfield::predict_trajectory(fig4a_params(1000));
  for (std::size_t r = 1; r < traj.rounds.size(); ++r) {
    EXPECT_GE(traj.rounds[r].informed_fraction,
              traj.rounds[r - 1].informed_fraction);
  }
  EXPECT_DOUBLE_EQ(traj.rounds.back().informed_fraction, traj.reliability);
}

TEST(MeanFieldOde, Rk4CrossCheckAgreesWithFixedPoint) {
  // The SIR final size solves the same equation with exp(-h I) in place of
  // (1-h)^I; the gap is O(z^2/n).
  const auto params_1k = fig4a_params(1000);
  EXPECT_NEAR(meanfield::predict_reliability_ode(params_1k),
              meanfield::predict_reliability(params_1k), 1e-3);
  const auto params_1m = fig4a_params(1000000);
  EXPECT_NEAR(meanfield::predict_reliability_ode(params_1m),
              meanfield::predict_reliability(params_1m), 1e-4);
}

TEST(MeanFieldModel, LossFoldsIntoEffectiveFanout) {
  // Poisson(5) with 20% loss carries the same delivery pressure as
  // Poisson(4) lossless — the folding the simulators exhibit.
  meanfield::Params lossy;
  lossy.num_nodes = 2000;
  lossy.nonfailed_ratio = 0.9;
  lossy.loss_probability = 0.2;
  lossy.fanout_pmf = poisson_pmf(5.0);
  meanfield::Params lossless;
  lossless.num_nodes = 2000;
  lossless.nonfailed_ratio = 0.9;
  lossless.fanout_pmf = poisson_pmf(4.0);
  EXPECT_NEAR(meanfield::effective_fanout(lossy), 4.0, 1e-6);
  EXPECT_NEAR(meanfield::predict_reliability(lossy),
              meanfield::predict_reliability(lossless), 1e-6);
}

TEST(MeanFieldModel, FanoutCapBindsAtTinyGroups) {
  meanfield::Params params;
  params.num_nodes = 3;
  params.nonfailed_ratio = 1.0;
  params.fanout_pmf = {0.0, 0.0, 0.0, 0.0, 1.0};  // fanout 4, capped at 2.
  EXPECT_NEAR(meanfield::effective_fanout(params), 2.0, 1e-12);
}

TEST(MeanFieldModel, ReliabilityMonotoneInFanoutAndSurvival) {
  double previous = 0.0;
  for (const double z : {1.5, 2.0, 3.0, 4.0, 6.0}) {
    meanfield::Params params;
    params.num_nodes = 1000;
    params.nonfailed_ratio = 0.9;
    params.fanout_pmf = poisson_pmf(z);
    const double r = meanfield::predict_reliability(params);
    EXPECT_GT(r, previous) << "z = " << z;
    previous = r;
  }
  previous = 0.0;
  for (const double q : {0.4, 0.6, 0.8, 1.0}) {
    meanfield::Params params;
    params.num_nodes = 1000;
    params.nonfailed_ratio = q;
    params.fanout_pmf = poisson_pmf(4.0);
    const double r = meanfield::predict_reliability(params);
    EXPECT_GT(r, previous) << "q = " << q;
    previous = r;
  }
}

TEST(MeanFieldExtinction, SubcriticalCascadesDieOutAlmostSurely) {
  meanfield::Params params;
  params.num_nodes = 10000;
  params.nonfailed_ratio = 0.8;
  params.fanout_pmf = poisson_pmf(1.0);  // z q = 0.8 < 1.
  EXPECT_NEAR(meanfield::extinction_probability(params), 1.0, 1e-9);
}

TEST(MeanFieldExtinction, SupercriticalDieOutMatchesPoissonOffspring) {
  // Offspring PGF at the Fig. 4(a) point is Poisson with mean z q = 3.6;
  // its smallest fixed point is ~0.0305.
  const double rho = meanfield::extinction_probability(fig4a_params(1000));
  EXPECT_NEAR(rho, 0.0305, 2e-3);
}

TEST(MeanFieldModel, DegenerateRegimes) {
  meanfield::Params lonely = fig4a_params(1000);
  lonely.nonfailed_ratio = 0.0;  // Source only: trivially reliable.
  EXPECT_DOUBLE_EQ(meanfield::predict_reliability(lonely), 1.0);

  meanfield::Params dark = fig4a_params(1000);
  dark.loss_probability = 1.0;  // Every message lost: source alone.
  const double a = 1.0 + 999.0 * 0.9;
  EXPECT_NEAR(meanfield::predict_reliability(dark), 1.0 / a, 1e-12);
  EXPECT_NEAR(meanfield::extinction_probability(dark), 1.0, 1e-12);
}

TEST(MeanFieldModel, RejectsOutOfDomainParameters) {
  meanfield::Params params = fig4a_params(1000);
  params.num_nodes = 1;
  EXPECT_THROW((void)meanfield::predict_reliability(params),
               std::invalid_argument);
  params = fig4a_params(1000);
  params.fanout_pmf.clear();
  EXPECT_THROW((void)meanfield::predict_reliability(params),
               std::invalid_argument);
  params = fig4a_params(1000);
  params.fanout_pmf = {0.5, -0.5};
  EXPECT_THROW((void)meanfield::predict_reliability(params),
               std::invalid_argument);
  params = fig4a_params(1000);
  params.nonfailed_ratio = 1.5;
  EXPECT_THROW((void)meanfield::predict_reliability(params),
               std::invalid_argument);
  params = fig4a_params(1000);
  params.loss_probability = -0.1;
  EXPECT_THROW((void)meanfield::predict_reliability(params),
               std::invalid_argument);
  params = fig4a_params(1000);
  params.extinction_threshold = 0.0;
  EXPECT_THROW((void)meanfield::predict_trajectory(params),
               std::invalid_argument);
}

}  // namespace
}  // namespace gossip
