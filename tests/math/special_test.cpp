#include "math/special.hpp"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace gossip::math {
namespace {

TEST(LogFactorial, MatchesExactSmallValues) {
  EXPECT_NEAR(log_factorial(0), 0.0, 1e-14);
  EXPECT_NEAR(log_factorial(1), 0.0, 1e-14);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-11);
}

TEST(LogFactorial, ThrowsOnNegative) {
  EXPECT_THROW((void)log_factorial(-1), std::invalid_argument);
}

TEST(LogBinomialCoefficient, MatchesPascalTriangle) {
  EXPECT_NEAR(std::exp(log_binomial_coefficient(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(10, 5)), 252.0, 1e-8);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(20, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(20, 20)), 1.0, 1e-12);
}

TEST(LogBinomialCoefficient, OutOfSupportIsNegInfinity) {
  EXPECT_TRUE(std::isinf(log_binomial_coefficient(5, 6)));
  EXPECT_LT(log_binomial_coefficient(5, 6), 0.0);
  EXPECT_TRUE(std::isinf(log_binomial_coefficient(5, -1)));
}

TEST(BinomialPmf, KnownValues) {
  EXPECT_NEAR(binomial_pmf(2, 1, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(binomial_pmf(10, 3, 0.3), 0.2668279320, 1e-9);
  EXPECT_NEAR(binomial_pmf(20, 20, 0.967), std::pow(0.967, 20.0), 1e-12);
}

TEST(BinomialPmf, DegenerateProbabilities) {
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 1, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 4, 1.0), 0.0);
}

TEST(BinomialPmf, OutOfSupportIsZero) {
  EXPECT_DOUBLE_EQ(binomial_pmf(5, -1, 0.4), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 6, 0.4), 0.0);
}

TEST(BinomialPmf, RejectsInvalidProbability) {
  EXPECT_THROW((void)binomial_pmf(5, 2, -0.1), std::invalid_argument);
  EXPECT_THROW((void)binomial_pmf(5, 2, 1.1), std::invalid_argument);
}

class BinomialPmfNormalization
    : public ::testing::TestWithParam<std::pair<std::int64_t, double>> {};

TEST_P(BinomialPmfNormalization, SumsToOne) {
  const auto [n, p] = GetParam();
  double sum = 0.0;
  double mean = 0.0;
  for (std::int64_t k = 0; k <= n; ++k) {
    const double pk = binomial_pmf(n, k, p);
    sum += pk;
    mean += static_cast<double>(k) * pk;
  }
  EXPECT_NEAR(sum, 1.0, 1e-10);
  EXPECT_NEAR(mean, static_cast<double>(n) * p, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BinomialPmfNormalization,
    ::testing::Values(std::pair<std::int64_t, double>{1, 0.5},
                      std::pair<std::int64_t, double>{10, 0.1},
                      std::pair<std::int64_t, double>{20, 0.967},
                      std::pair<std::int64_t, double>{50, 0.5},
                      std::pair<std::int64_t, double>{200, 0.9},
                      std::pair<std::int64_t, double>{500, 0.02}));

TEST(BinomialSf, MatchesDirectSummation) {
  const std::int64_t n = 20;
  const double p = 0.3;
  for (std::int64_t k = 0; k <= n + 1; ++k) {
    double direct = 0.0;
    for (std::int64_t i = k; i <= n; ++i) direct += binomial_pmf(n, i, p);
    EXPECT_NEAR(binomial_sf(n, k, p), direct, 1e-10) << "k=" << k;
  }
}

TEST(BinomialSf, EdgeCases) {
  EXPECT_DOUBLE_EQ(binomial_sf(10, 0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(binomial_sf(10, -3, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(binomial_sf(10, 11, 0.5), 0.0);
}

TEST(PoissonPmf, KnownValues) {
  EXPECT_NEAR(poisson_pmf(0, 1.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(poisson_pmf(3, 2.5),
              std::exp(-2.5) * 2.5 * 2.5 * 2.5 / 6.0, 1e-12);
}

TEST(PoissonPmf, ZeroMeanIsPointMass) {
  EXPECT_DOUBLE_EQ(poisson_pmf(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(poisson_pmf(1, 0.0), 0.0);
}

TEST(PoissonPmf, NegativeSupportIsZero) {
  EXPECT_DOUBLE_EQ(poisson_pmf(-1, 3.0), 0.0);
}

TEST(PoissonCdf, MatchesPmfAccumulation) {
  const double mean = 4.2;
  double acc = 0.0;
  for (std::int64_t k = 0; k <= 30; ++k) {
    acc += poisson_pmf(k, mean);
    EXPECT_NEAR(poisson_cdf(k, mean), acc, 1e-10);
  }
}

TEST(Log1mExp, AccurateInBothBranches) {
  // Near zero from below: log(1 - e^x) with x = -1e-10 ~ log(1e-10).
  EXPECT_NEAR(log1mexp(-1e-10), std::log(1e-10), 1e-4);
  // Large negative: log(1 - e^-50) ~ -e^-50.
  EXPECT_NEAR(log1mexp(-50.0), -std::exp(-50.0), 1e-30);
  EXPECT_THROW((void)log1mexp(0.0), std::invalid_argument);
}

TEST(OneMinusPow, MatchesNaiveForModerateValues) {
  EXPECT_NEAR(one_minus_pow(0.5, 3.0), 1.0 - 0.125, 1e-12);
  EXPECT_NEAR(one_minus_pow(0.033, 3.0), 1.0 - std::pow(0.033, 3.0), 1e-12);
}

TEST(OneMinusPow, AccurateForTinyProbability) {
  // 1 - (1 - 1e-12)^2 ~ 2e-12; naive evaluation would lose this entirely
  // (1 - 2e-12 rounds back to values with ~1e-16 absolute noise). The
  // remaining error comes only from representing 1 - 1e-12 as a double.
  const double result = one_minus_pow(1.0 - 1e-12, 2.0);
  EXPECT_NEAR(result, 2e-12, 1e-15);
  EXPECT_GT(result, 0.0);
}

TEST(OneMinusPow, EdgeCases) {
  EXPECT_DOUBLE_EQ(one_minus_pow(0.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(one_minus_pow(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(one_minus_pow(1.0, 5.0), 0.0);
}

TEST(RegularizedGamma, PPlusQIsOne) {
  for (const double a : {0.5, 1.0, 2.5, 10.0, 50.0}) {
    for (const double x : {0.1, 1.0, 5.0, 25.0, 100.0}) {
      EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x), 1.0,
                  1e-10)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedGamma, ExponentialSpecialCase) {
  // P(1, x) = 1 - e^{-x}.
  for (const double x : {0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(ChiSquareSf, KnownCriticalValues) {
  // Classical table: chi2(0.95; dof=1) = 3.841, dof=5 -> 11.070.
  EXPECT_NEAR(chi_square_sf(3.841, 1.0), 0.05, 2e-4);
  EXPECT_NEAR(chi_square_sf(11.070, 5.0), 0.05, 2e-4);
  EXPECT_NEAR(chi_square_sf(18.307, 10.0), 0.05, 2e-4);
}

TEST(ChiSquareSf, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(chi_square_sf(0.0, 3.0), 1.0);
  EXPECT_LT(chi_square_sf(1000.0, 3.0), 1e-10);
  EXPECT_THROW((void)chi_square_sf(-1.0, 3.0), std::invalid_argument);
  EXPECT_THROW((void)chi_square_sf(1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace gossip::math
