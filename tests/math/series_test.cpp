#include "math/series.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "math/special.hpp"

namespace gossip::math {
namespace {

TEST(EvaluateSeries, MatchesPolynomial) {
  // 1 + 2x + 3x^2 at x = 2 -> 17.
  const std::vector<double> c{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(evaluate_series(c, 2.0), 17.0);
  EXPECT_DOUBLE_EQ(evaluate_series(c, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(evaluate_series(c, 1.0), 6.0);
}

TEST(EvaluateSeries, EmptySeriesIsZero) {
  EXPECT_DOUBLE_EQ(evaluate_series({}, 3.0), 0.0);
}

TEST(EvaluateSeriesDerivative, MatchesAnalyticDerivative) {
  // d/dx (1 + 2x + 3x^2) = 2 + 6x.
  const std::vector<double> c{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(evaluate_series_derivative(c, 2.0), 14.0);
  EXPECT_DOUBLE_EQ(evaluate_series_derivative(c, 0.0), 2.0);
}

TEST(EvaluateSeriesSecondDerivative, MatchesAnalytic) {
  // d2/dx2 (x^3) = 6x.
  const std::vector<double> c{0.0, 0.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(evaluate_series_second_derivative(c, 2.0), 12.0);
}

TEST(DifferentiateSeries, ProducesDerivativeCoefficients) {
  const std::vector<double> c{5.0, 1.0, 2.0, 3.0};
  const auto d = differentiate_series(c);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], 4.0);
  EXPECT_DOUBLE_EQ(d[2], 9.0);
}

TEST(DifferentiateSeries, ConstantBecomesZero) {
  const auto d = differentiate_series(std::vector<double>{7.0});
  ASSERT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
}

TEST(FactorialMoment, PoissonHasPowersOfMean) {
  // For Poisson(z), E[K(K-1)...(K-n+1)] = z^n.
  const double z = 3.0;
  std::vector<double> pmf;
  for (std::int64_t k = 0; k < 80; ++k) pmf.push_back(poisson_pmf(k, z));
  EXPECT_NEAR(factorial_moment(pmf, 1), z, 1e-9);
  EXPECT_NEAR(factorial_moment(pmf, 2), z * z, 1e-8);
  EXPECT_NEAR(factorial_moment(pmf, 3), z * z * z, 1e-7);
}

TEST(FactorialMoment, ZerothMomentIsTotalMass) {
  const std::vector<double> pmf{0.25, 0.5, 0.25};
  EXPECT_DOUBLE_EQ(factorial_moment(pmf, 0), 1.0);
}

TEST(FactorialMoment, ThrowsOnNegativeOrder) {
  EXPECT_THROW((void)factorial_moment(std::vector<double>{1.0}, -1),
               std::invalid_argument);
}

TEST(SeriesMeanVariance, MatchDirectComputation) {
  // Distribution on {0,1,2,3} with pmf {.1,.2,.3,.4}.
  const std::vector<double> pmf{0.1, 0.2, 0.3, 0.4};
  const double mean = 0.2 + 0.6 + 1.2;
  EXPECT_NEAR(series_mean(pmf), mean, 1e-12);
  double var = 0.0;
  for (std::size_t k = 0; k < pmf.size(); ++k) {
    const double d = static_cast<double>(k) - mean;
    var += d * d * pmf[k];
  }
  EXPECT_NEAR(series_variance(pmf), var, 1e-12);
}

TEST(NormalizePmf, ScalesToUnitMass) {
  const auto out = normalize_pmf(std::vector<double>{2.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(out[0], 0.25);
  EXPECT_DOUBLE_EQ(out[1], 0.25);
  EXPECT_DOUBLE_EQ(out[2], 0.5);
}

TEST(NormalizePmf, RejectsNegativeAndZeroMass) {
  EXPECT_THROW((void)normalize_pmf(std::vector<double>{1.0, -0.5}),
               std::invalid_argument);
  EXPECT_THROW((void)normalize_pmf(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
}

TEST(TrimSeries, DropsTrailingEpsilonTerms) {
  const std::vector<double> c{1.0, 0.5, 1e-18, 0.0};
  const auto trimmed = trim_series(c, 1e-15);
  ASSERT_EQ(trimmed.size(), 2u);
  EXPECT_DOUBLE_EQ(trimmed[1], 0.5);
}

TEST(TrimSeries, KeepsAtLeastOneTerm) {
  const auto trimmed = trim_series(std::vector<double>{0.0, 0.0}, 1.0);
  EXPECT_EQ(trimmed.size(), 1u);
}

}  // namespace
}  // namespace gossip::math
