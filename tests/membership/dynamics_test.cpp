/// ScampDynamics: live SCAMP views under a churn of join/leave/lease
/// events. The invariants pinned here are what the protocol relies on when
/// it reads the evolving view per round: views never contain the owner,
/// duplicates, or departed members; repair keeps arity near the SCAMP
/// (c+1) ln n operating point through a leave burst; and a lease cycle
/// re-converges every survivor back into the membership graph.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "membership/dynamics.hpp"

namespace gossip::membership {
namespace {

constexpr std::uint32_t kNodes = 300;

ScampParams params_for(std::uint32_t redundancy) {
  ScampParams params;
  params.num_nodes = kNodes;
  params.redundancy = redundancy;
  return params;
}

/// Structural invariants every trajectory must maintain: no self-loops, no
/// duplicate arcs, no arcs at departed members, empty views for departed
/// owners.
void expect_invariants(const MembershipDynamics& dynamics) {
  for (NodeId u = 0; u < dynamics.num_nodes(); ++u) {
    const auto& view = dynamics.view_of(u);
    if (!dynamics.is_present(u)) {
      EXPECT_TRUE(view.empty()) << "absent node " << u << " kept a view";
      continue;
    }
    std::vector<NodeId> sorted = view;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end())
        << "duplicate arc in view of " << u;
    for (const NodeId v : view) {
      EXPECT_NE(v, u) << "self-loop at " << u;
      EXPECT_TRUE(dynamics.is_present(v))
          << "view of " << u << " kept departed member " << v;
    }
  }
}

double mean_present_view_size(const MembershipDynamics& dynamics) {
  double total = 0.0;
  std::size_t present = 0;
  for (NodeId v = 0; v < dynamics.num_nodes(); ++v) {
    if (!dynamics.is_present(v)) continue;
    ++present;
    total += static_cast<double>(dynamics.view_of(v).size());
  }
  return present == 0 ? 0.0 : total / static_cast<double>(present);
}

std::vector<std::size_t> in_degrees(const MembershipDynamics& dynamics) {
  std::vector<std::size_t> degree(dynamics.num_nodes(), 0);
  for (NodeId u = 0; u < dynamics.num_nodes(); ++u) {
    for (const NodeId v : dynamics.view_of(u)) ++degree[v];
  }
  return degree;
}

TEST(ScampDynamics, InitialViewsSatisfyInvariantsAndScampArity) {
  auto factory = scamp_dynamics_factory(params_for(1));
  auto dynamics = factory->create(rng::RngStream(7));
  expect_invariants(*dynamics);
  // Mean view size ~ (c+1) ln n = 2 ln 300 ~ 11.4; allow a wide band.
  const double expected = 2.0 * std::log(static_cast<double>(kNodes));
  const double mean = mean_present_view_size(*dynamics);
  EXPECT_GT(mean, 0.4 * expected);
  EXPECT_LT(mean, 2.5 * expected);
}

TEST(ScampDynamics, LeaveBurstKeepsViewsRepairedAndWithinArityBounds) {
  auto factory = scamp_dynamics_factory(params_for(1));
  auto dynamics = factory->create(rng::RngStream(11));
  auto rng = rng::RngStream(12);
  const double mean_before = mean_present_view_size(*dynamics);

  // A 30% leave burst, every third-ish member by a deterministic draw.
  std::size_t left = 0;
  for (NodeId v = 1; v < kNodes; ++v) {
    if (rng.bernoulli(0.3)) {
      dynamics->leave(v, rng);
      ++left;
    }
  }
  ASSERT_GT(left, kNodes / 5);
  expect_invariants(*dynamics);

  // Unsubscription repair replaces most lapsed arcs: the survivors' mean
  // view size must stay within SCAMP's operating band, not collapse with
  // the departed 30%.
  const double mean_after = mean_present_view_size(*dynamics);
  EXPECT_GT(mean_after, 0.5 * mean_before);
  EXPECT_LT(mean_after, 1.5 * mean_before);
}

TEST(ScampDynamics, LeaseCycleReconvergesEverySurvivorIntoTheGraph) {
  auto factory = scamp_dynamics_factory(params_for(1));
  auto dynamics = factory->create(rng::RngStream(21));
  auto rng = rng::RngStream(22);
  for (NodeId v = 1; v < kNodes; ++v) {
    if (rng.bernoulli(0.4)) dynamics->leave(v, rng);
  }
  // One full lease cycle: every survivor's subscription expires and is
  // renewed. Afterwards every present member must be subscribed somewhere
  // (in-degree >= 1) and know someone (out-degree >= 1) — the graph has
  // re-converged to a state gossip can traverse.
  for (NodeId v = 0; v < kNodes; ++v) {
    if (dynamics->is_present(v)) dynamics->expire_lease(v, rng);
  }
  expect_invariants(*dynamics);
  const auto degree = in_degrees(*dynamics);
  for (NodeId v = 0; v < kNodes; ++v) {
    if (!dynamics->is_present(v)) continue;
    EXPECT_GE(degree[v], 1u) << "node " << v << " unsubscribed after lease";
    EXPECT_GE(dynamics->view_of(v).size(), 1u)
        << "node " << v << " lost its view after lease";
  }
}

TEST(ScampDynamics, RejoinAfterLeaveRestoresMembership) {
  auto factory = scamp_dynamics_factory(params_for(2));
  auto dynamics = factory->create(rng::RngStream(31));
  auto rng = rng::RngStream(32);
  const NodeId node = 42;
  dynamics->leave(node, rng);
  EXPECT_FALSE(dynamics->is_present(node));
  for (NodeId u = 0; u < kNodes; ++u) {
    EXPECT_FALSE(std::count(dynamics->view_of(u).begin(),
                            dynamics->view_of(u).end(), node))
        << "departed node lingered in view of " << u;
  }

  dynamics->join(node, rng);
  EXPECT_TRUE(dynamics->is_present(node));
  EXPECT_GE(dynamics->view_of(node).size(), 1u);
  EXPECT_GE(in_degrees(*dynamics)[node], 1u)
      << "rejoined node is unreachable: nobody holds its subscription";
  expect_invariants(*dynamics);
}

TEST(ScampDynamics, SelectTargetsDrawsOnlyFromTheCurrentView) {
  auto factory = scamp_dynamics_factory(params_for(1));
  auto dynamics = factory->create(rng::RngStream(41));
  auto rng = rng::RngStream(42);
  for (NodeId v = 1; v < kNodes; ++v) {
    if (v % 2 == 0) dynamics->leave(v, rng);
  }
  for (const NodeId owner : {NodeId{1}, NodeId{3}, NodeId{77}}) {
    const auto& view = dynamics->view_of(owner);
    const auto targets = dynamics->select_targets(owner, 4, rng);
    EXPECT_LE(targets.size(), std::min<std::size_t>(4, view.size()));
    for (const NodeId t : targets) {
      EXPECT_TRUE(std::count(view.begin(), view.end(), t))
          << "target " << t << " not in the current view of " << owner;
      EXPECT_TRUE(dynamics->is_present(t));
    }
  }
  // k beyond the view size returns the whole view.
  const auto& view = dynamics->view_of(1);
  EXPECT_EQ(dynamics->select_targets(1, view.size() + 10, rng), view);
}

TEST(ScampDynamics, TrajectoriesAreDeterministicPerSeed) {
  auto factory = scamp_dynamics_factory(params_for(1));
  auto a = factory->create(rng::RngStream(55));
  auto b = factory->create(rng::RngStream(55));
  auto rng_a = rng::RngStream(56);
  auto rng_b = rng::RngStream(56);
  for (NodeId v = 1; v < kNodes; v += 3) {
    a->leave(v, rng_a);
    b->leave(v, rng_b);
  }
  for (NodeId v = 1; v < kNodes; v += 6) {
    a->join(v, rng_a);
    b->join(v, rng_b);
  }
  for (NodeId v = 0; v < kNodes; v += 5) {
    if (a->is_present(v)) a->expire_lease(v, rng_a);
    if (b->is_present(v)) b->expire_lease(v, rng_b);
  }
  for (NodeId v = 0; v < kNodes; ++v) {
    ASSERT_EQ(a->is_present(v), b->is_present(v));
    ASSERT_EQ(a->view_of(v), b->view_of(v)) << "trajectory diverged at " << v;
  }
}

}  // namespace
}  // namespace gossip::membership
