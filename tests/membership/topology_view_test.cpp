#include "membership/topology_view.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace gossip::membership {
namespace {

/// 4-node path 0-1-2-3 plus chord 0-2, undirected, both directions.
CsrAdjacencyPtr path_with_chord() {
  auto csr = std::make_shared<CsrAdjacency>();
  csr->offsets = {0, 2, 4, 7, 8};
  csr->neighbors = {1, 2, 0, 2, 0, 1, 3, 2};
  csr->max_degree = 3;
  return csr;
}

TEST(CsrAdjacency, AccessorsMatchTheFlatArrays) {
  const auto csr = path_with_chord();
  EXPECT_EQ(csr->num_nodes(), 4u);
  EXPECT_EQ(csr->degree(0), 2u);
  EXPECT_EQ(csr->degree(2), 3u);
  EXPECT_EQ(csr->degree(3), 1u);
  const auto nbrs = csr->neighbors_of(2);
  EXPECT_EQ(std::vector<NodeId>(nbrs.begin(), nbrs.end()),
            (std::vector<NodeId>{0, 1, 3}));
}

TEST(CsrAdjacency, ValidationAcceptsTheWellFormed) {
  EXPECT_NO_THROW(validate_csr_adjacency(*path_with_chord()));
}

TEST(CsrAdjacency, ValidationRejectsEveryMalformation) {
  {
    auto bad = *path_with_chord();
    bad.offsets.front() = 1;
    EXPECT_THROW(validate_csr_adjacency(bad), std::invalid_argument);
  }
  {
    auto bad = *path_with_chord();
    bad.offsets.back() = 7;  // does not cover neighbors
    EXPECT_THROW(validate_csr_adjacency(bad), std::invalid_argument);
  }
  {
    auto bad = *path_with_chord();
    bad.neighbors[0] = 9;  // out of range
    EXPECT_THROW(validate_csr_adjacency(bad), std::invalid_argument);
  }
  {
    auto bad = *path_with_chord();
    bad.neighbors[0] = 0;  // self-loop at node 0
    EXPECT_THROW(validate_csr_adjacency(bad), std::invalid_argument);
  }
  {
    auto bad = *path_with_chord();
    bad.neighbors[1] = 1;  // duplicate neighbor 1 at node 0
    EXPECT_THROW(validate_csr_adjacency(bad), std::invalid_argument);
  }
  {
    auto bad = *path_with_chord();
    bad.max_degree = 5;
    EXPECT_THROW(validate_csr_adjacency(bad), std::invalid_argument);
  }
}

TEST(TopologyMembership, ViewServesExactlyTheNeighborSet) {
  const auto csr = path_with_chord();
  const auto provider = topology_membership(csr);
  rng::RngStream rng(5);
  for (NodeId owner = 0; owner < 4; ++owner) {
    const auto view = provider->view_for(owner);
    const auto nbrs = csr->neighbors_of(owner);
    EXPECT_EQ(view->size(), nbrs.size());
    // Asking for more than the degree returns the whole neighborhood.
    auto all = view->select_targets(10, rng);
    std::sort(all.begin(), all.end());
    std::vector<NodeId> expected(nbrs.begin(), nbrs.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(all, expected) << "owner " << owner;
  }
}

TEST(TopologyMembership, SelectionsAreDistinctAndNeighborRestricted) {
  const auto csr = path_with_chord();
  const auto provider = topology_membership(csr);
  const auto view = provider->view_for(2);
  rng::RngStream rng(17);
  for (int i = 0; i < 200; ++i) {
    const auto picks = view->select_targets(2, rng);
    ASSERT_EQ(picks.size(), 2u);
    ASSERT_NE(picks[0], picks[1]);
    for (const NodeId t : picks) {
      const auto nbrs = csr->neighbors_of(2);
      ASSERT_TRUE(std::find(nbrs.begin(), nbrs.end(), t) != nbrs.end())
          << "pick " << t << " is not a neighbor of 2";
    }
  }
}

TEST(TopologyMembership, IntoVariantMatchesReturningVariantDrawForDraw) {
  const auto provider = topology_membership(path_with_chord());
  const auto view = provider->view_for(2);
  rng::RngStream a(123);
  rng::RngStream b(123);
  std::vector<NodeId> scratch;
  for (int i = 0; i < 50; ++i) {
    const auto returned = view->select_targets(2, a);
    view->select_targets_into(2, b, scratch);
    ASSERT_EQ(returned, scratch) << "draw " << i;
  }
}

TEST(TopologyMembership, RejectsNullAndMalformedAdjacency) {
  EXPECT_THROW(topology_membership(nullptr), std::invalid_argument);
  auto bad = std::make_shared<CsrAdjacency>(*path_with_chord());
  bad->max_degree = 99;
  EXPECT_THROW(topology_membership(bad), std::invalid_argument);
  const auto provider = topology_membership(path_with_chord());
  EXPECT_THROW(provider->view_for(4), std::out_of_range);
}

TEST(TopologyMembership, IsolatedNodeYieldsAnEmptyView) {
  auto csr = std::make_shared<CsrAdjacency>();
  csr->offsets = {0, 1, 1, 2};
  csr->neighbors = {2, 0};
  csr->max_degree = 1;
  const auto provider = topology_membership(csr, "island");
  const auto view = provider->view_for(1);
  EXPECT_EQ(view->size(), 0u);
  rng::RngStream rng(1);
  EXPECT_TRUE(view->select_targets(3, rng).empty());
  EXPECT_EQ(provider->name(), "island");
}

}  // namespace
}  // namespace gossip::membership
