#include "membership/partial_view.hpp"

#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

namespace gossip::membership {
namespace {

TEST(ListMembership, ServesConfiguredViews) {
  const auto provider = list_membership({{1, 2}, {0}, {}}, "test");
  EXPECT_EQ(provider->name(), "test");
  EXPECT_EQ(provider->view_for(0)->size(), 2u);
  EXPECT_EQ(provider->view_for(1)->size(), 1u);
  EXPECT_EQ(provider->view_for(2)->size(), 0u);
}

TEST(ListMembership, SelectionDrawsOnlyFromView) {
  const auto provider = list_membership({{2, 3, 4}, {}, {}, {}, {}});
  const auto view = provider->view_for(0);
  rng::RngStream rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const auto targets = view->select_targets(2, rng);
    ASSERT_EQ(targets.size(), 2u);
    for (const auto t : targets) {
      ASSERT_TRUE(t == 2 || t == 3 || t == 4);
    }
    ASSERT_NE(targets[0], targets[1]);
  }
}

TEST(ListMembership, RequestBeyondViewReturnsWholeView) {
  const auto provider = list_membership({{1, 2}, {}, {}});
  rng::RngStream rng(2);
  const auto targets = provider->view_for(0)->select_targets(10, rng);
  std::set<NodeId> unique(targets.begin(), targets.end());
  EXPECT_EQ(unique, (std::set<NodeId>{1, 2}));
}

TEST(ListMembership, EmptyViewYieldsNoTargets) {
  const auto provider = list_membership({{}, {0}});
  rng::RngStream rng(3);
  EXPECT_TRUE(provider->view_for(0)->select_targets(3, rng).empty());
}

TEST(ListMembership, ViewOutlivesProviderHandle) {
  // Regression guard for the shared-storage lifetime contract.
  MembershipViewPtr view;
  {
    const auto provider = list_membership({{1}, {0}});
    view = provider->view_for(0);
  }  // provider handle gone; view must still be usable
  rng::RngStream rng(4);
  const auto targets = view->select_targets(1, rng);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0], 1u);
}

TEST(ListMembership, ValidationRejectsBadViews) {
  EXPECT_THROW((void)list_membership({{0}}), std::invalid_argument);  // self
  EXPECT_THROW((void)list_membership({{5}, {}}), std::invalid_argument);
  EXPECT_THROW((void)list_membership({{1, 1}, {}}), std::invalid_argument);
}

TEST(ListMembership, RejectsOutOfRangeOwner) {
  const auto provider = list_membership({{1}, {0}});
  EXPECT_THROW((void)provider->view_for(2), std::out_of_range);
}

TEST(UniformPartialMembership, AllViewsHaveRequestedSize) {
  rng::RngStream rng(5);
  const auto provider = uniform_partial_membership(200, 12, rng);
  for (NodeId v = 0; v < 200; ++v) {
    ASSERT_EQ(provider->view_for(v)->size(), 12u) << "node " << v;
  }
}

TEST(UniformPartialMembership, ViewsExcludeOwner) {
  rng::RngStream rng(6);
  const auto provider = uniform_partial_membership(50, 5, rng);
  for (NodeId v = 0; v < 50; ++v) {
    rng::RngStream select_rng(v);
    const auto targets = provider->view_for(v)->select_targets(5, select_rng);
    for (const auto t : targets) {
      ASSERT_NE(t, v);
    }
  }
}

TEST(UniformPartialMembership, MaximalViewEqualsFullKnowledge) {
  rng::RngStream rng(7);
  const auto provider = uniform_partial_membership(10, 9, rng);
  rng::RngStream select_rng(1);
  const auto targets = provider->view_for(3)->select_targets(9, select_rng);
  std::set<NodeId> unique(targets.begin(), targets.end());
  EXPECT_EQ(unique.size(), 9u);
  EXPECT_FALSE(unique.count(3));
}

TEST(UniformPartialMembership, RejectsInvalidParameters) {
  rng::RngStream rng(8);
  EXPECT_THROW((void)uniform_partial_membership(1, 1, rng),
               std::invalid_argument);
  EXPECT_THROW((void)uniform_partial_membership(10, 0, rng),
               std::invalid_argument);
  EXPECT_THROW((void)uniform_partial_membership(10, 10, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace gossip::membership
