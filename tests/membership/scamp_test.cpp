#include "membership/scamp.hpp"

#include <cmath>
#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

#include "stats/summary.hpp"

namespace gossip::membership {
namespace {

TEST(Scamp, ViewsContainNoSelfOrDuplicates) {
  ScampParams p;
  p.num_nodes = 300;
  rng::RngStream rng(1);
  const auto views = build_scamp_views(p, rng);
  ASSERT_EQ(views.size(), 300u);
  for (NodeId owner = 0; owner < 300; ++owner) {
    std::set<NodeId> seen;
    for (const NodeId peer : views[owner]) {
      ASSERT_NE(peer, owner) << "self in view of " << owner;
      ASSERT_LT(peer, 300u);
      ASSERT_TRUE(seen.insert(peer).second)
          << "duplicate " << peer << " in view of " << owner;
    }
  }
}

TEST(Scamp, EveryNodeIsKnownBySomeone) {
  // Subscriptions guarantee each joiner lands in at least one view,
  // otherwise gossip could never reach it.
  ScampParams p;
  p.num_nodes = 500;
  rng::RngStream rng(2);
  const auto views = build_scamp_views(p, rng);
  std::vector<int> in_degree(p.num_nodes, 0);
  for (const auto& view : views) {
    for (const NodeId peer : view) ++in_degree[peer];
  }
  for (NodeId v = 0; v < p.num_nodes; ++v) {
    EXPECT_GT(in_degree[v], 0) << "node " << v << " unknown to everyone";
  }
}

TEST(Scamp, MeanViewSizeScalesLogarithmically) {
  // SCAMP converges to (c+1) ln n views on average; allow generous slack
  // since our constructor is a single-pass approximation.
  ScampParams p;
  p.redundancy = 1;
  rng::RngStream rng(3);
  for (const std::uint32_t n : {200u, 1000u}) {
    p.num_nodes = n;
    const auto views = build_scamp_views(p, rng);
    stats::OnlineSummary sizes;
    for (const auto& view : views) {
      sizes.add(static_cast<double>(view.size()));
    }
    const double expected = 2.0 * std::log(static_cast<double>(n));
    EXPECT_GT(sizes.mean(), 0.4 * expected) << "n=" << n;
    EXPECT_LT(sizes.mean(), 3.0 * expected) << "n=" << n;
  }
}

TEST(Scamp, RedundancyIncreasesViewSizes) {
  rng::RngStream rng1(4);
  rng::RngStream rng2(4);
  ScampParams lean;
  lean.num_nodes = 400;
  lean.redundancy = 0;
  ScampParams rich = lean;
  rich.redundancy = 4;
  const auto lean_views = build_scamp_views(lean, rng1);
  const auto rich_views = build_scamp_views(rich, rng2);
  double lean_total = 0.0;
  double rich_total = 0.0;
  for (const auto& v : lean_views) lean_total += static_cast<double>(v.size());
  for (const auto& v : rich_views) rich_total += static_cast<double>(v.size());
  EXPECT_GT(rich_total, lean_total);
}

TEST(Scamp, DeterministicForSameSeed) {
  ScampParams p;
  p.num_nodes = 100;
  rng::RngStream rng1(42);
  rng::RngStream rng2(42);
  EXPECT_EQ(build_scamp_views(p, rng1), build_scamp_views(p, rng2));
}

TEST(Scamp, ProviderWrapperWorks) {
  ScampParams p;
  p.num_nodes = 50;
  rng::RngStream rng(5);
  const auto provider = scamp_membership(p, rng);
  EXPECT_EQ(provider->name(), "scamp");
  rng::RngStream select_rng(6);
  const auto view = provider->view_for(10);
  const auto targets =
      view->select_targets(std::min<std::size_t>(2, view->size()), select_rng);
  for (const auto t : targets) {
    EXPECT_NE(t, 10u);
    EXPECT_LT(t, 50u);
  }
}

TEST(Scamp, RejectsTooFewNodes) {
  ScampParams p;
  p.num_nodes = 1;
  rng::RngStream rng(7);
  EXPECT_THROW((void)build_scamp_views(p, rng), std::invalid_argument);
}

}  // namespace
}  // namespace gossip::membership
