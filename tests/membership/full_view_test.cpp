#include "membership/full_view.hpp"

#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

namespace gossip::membership {
namespace {

TEST(FullMembership, ViewSizeIsAllOtherMembers) {
  const auto provider = full_membership(100);
  EXPECT_EQ(provider->view_for(0)->size(), 99u);
  EXPECT_EQ(provider->view_for(99)->size(), 99u);
  EXPECT_EQ(provider->name(), "full");
}

TEST(FullMembership, TargetsAreDistinctAndExcludeOwner) {
  const auto provider = full_membership(50);
  const auto view = provider->view_for(7);
  rng::RngStream rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const auto targets = view->select_targets(10, rng);
    ASSERT_EQ(targets.size(), 10u);
    std::set<NodeId> unique(targets.begin(), targets.end());
    ASSERT_EQ(unique.size(), 10u);
    ASSERT_FALSE(unique.count(7));
    for (const auto t : targets) ASSERT_LT(t, 50u);
  }
}

TEST(FullMembership, OverlargeRequestClampsToViewSize) {
  const auto provider = full_membership(5);
  const auto view = provider->view_for(2);
  rng::RngStream rng(2);
  const auto targets = view->select_targets(100, rng);
  std::set<NodeId> unique(targets.begin(), targets.end());
  EXPECT_EQ(unique.size(), 4u);
  EXPECT_FALSE(unique.count(2));
}

TEST(FullMembership, ZeroTargetsIsEmpty) {
  const auto provider = full_membership(5);
  rng::RngStream rng(3);
  EXPECT_TRUE(provider->view_for(0)->select_targets(0, rng).empty());
}

TEST(FullMembership, TargetSelectionIsUniform) {
  const auto provider = full_membership(20);
  const auto view = provider->view_for(0);
  rng::RngStream rng(4);
  std::vector<int> counts(20, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (const auto v : view->select_targets(3, rng)) ++counts[v];
  }
  EXPECT_EQ(counts[0], 0);  // owner never chosen
  const double expected = trials * 3.0 / 19.0;
  for (NodeId v = 1; v < 20; ++v) {
    EXPECT_NEAR(counts[v], expected, expected * 0.1) << "node " << v;
  }
}

TEST(FullMembership, RejectsInvalidConstruction) {
  EXPECT_THROW((void)full_membership(0), std::invalid_argument);
  EXPECT_THROW((void)full_membership(1), std::invalid_argument);
}

TEST(FullMembership, RejectsOutOfRangeOwner) {
  const auto provider = full_membership(3);
  EXPECT_THROW((void)provider->view_for(3), std::out_of_range);
}

}  // namespace
}  // namespace gossip::membership
