#include "sim/simulator.hpp"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace gossip::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunExecutesInTimeOrderAndAdvancesClock) {
  Simulator sim;
  std::vector<double> seen;
  (void)sim.schedule_at(2.0, [&] { seen.push_back(sim.now()); });
  (void)sim.schedule_at(1.0, [&] { seen.push_back(sim.now()); });
  (void)sim.schedule_at(3.0, [&] { seen.push_back(sim.now()); });
  const auto executed = sim.run();
  EXPECT_EQ(executed, 3u);
  EXPECT_EQ(seen, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  (void)sim.schedule_at(5.0, [&] {
    (void)sim.schedule_after(2.5, [&] { fired_at = sim.now(); });
  });
  (void)sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) {
      (void)sim.schedule_after(1.0, recurse);
    }
  };
  (void)sim.schedule_at(0.0, recurse);
  (void)sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<double> seen;
  for (const double t : {1.0, 2.0, 3.0, 4.0}) {
    (void)sim.schedule_at(t, [&, t] { seen.push_back(t); });
  }
  (void)sim.run_until(2.5);
  EXPECT_EQ(seen, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.pending(), 2u);
  (void)sim.run();
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Simulator, RunUntilIncludesEventsExactlyAtBoundary) {
  Simulator sim;
  bool ran = false;
  (void)sim.schedule_at(2.0, [&] { ran = true; });
  (void)sim.run_until(2.0);
  EXPECT_TRUE(ran);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  (void)sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  (void)sim.schedule_at(5.0, [] {});
  (void)sim.run();
  EXPECT_THROW((void)sim.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW((void)sim.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, StepExecutesExactlyOneEvent) {
  Simulator sim;
  int count = 0;
  (void)sim.schedule_at(1.0, [&] { ++count; });
  (void)sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsExecutedAccumulates) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) {
    (void)sim.schedule_at(static_cast<double>(i), [] {});
  }
  (void)sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, ResetRestoresInitialState) {
  Simulator sim;
  (void)sim.schedule_at(1.0, [] {});
  (void)sim.run();
  (void)sim.schedule_at(10.0, [] {});
  sim.reset();
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.events_executed(), 0u);
  // Scheduling at time 0 works again after reset.
  bool ran = false;
  (void)sim.schedule_at(0.0, [&] { ran = true; });
  (void)sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, DeterministicTieBreakForSimultaneousEvents) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    (void)sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  (void)sim.run();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

}  // namespace
}  // namespace gossip::sim
