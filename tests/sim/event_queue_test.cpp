#include "sim/event_queue.hpp"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace gossip::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW((void)q.next_time(), std::logic_error);
  EXPECT_THROW((void)q.pop(), std::logic_error);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  (void)q.push(3.0, [&] { order.push_back(3); });
  (void)q.push(1.0, [&] { order.push_back(1); });
  (void)q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    cb();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsPopFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    (void)q.push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.pop().second();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.push(1.0, [&] { ran = true; });
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelledEventIsSkippedByPop) {
  EventQueue q;
  std::vector<int> order;
  const EventId a = q.push(1.0, [&] { order.push_back(1); });
  (void)q.push(2.0, [&] { order.push_back(2); });
  EXPECT_TRUE(q.cancel(a));
  EXPECT_EQ(q.next_time(), 2.0);
  q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, NextTimePeeksWithoutRemoving) {
  EventQueue q;
  (void)q.push(7.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 7.5);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  (void)q.push(1.0, [] {});
  (void)q.push(2.0, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, IdsAreUnique) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  const EventId b = q.push(1.0, [] {});
  EXPECT_NE(a, b);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  // Push times in a scrambled deterministic pattern.
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    (void)q.push(t, [] {});
  }
  double prev = -1.0;
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    EXPECT_GE(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace gossip::sim
