#include "stats/gof.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "rng/rng_stream.hpp"

namespace gossip::stats {
namespace {

TEST(ChiSquareTest, PerfectFitHasHighPValue) {
  // Observations exactly proportional to the pmf.
  const std::vector<std::uint64_t> observed{250, 250, 250, 250};
  const std::vector<double> pmf{0.25, 0.25, 0.25, 0.25};
  const auto result = chi_square_test(observed, pmf);
  EXPECT_NEAR(result.statistic, 0.0, 1e-12);
  EXPECT_GT(result.p_value, 0.999);
  EXPECT_DOUBLE_EQ(result.dof, 3.0);
}

TEST(ChiSquareTest, GrossMismatchHasLowPValue) {
  const std::vector<std::uint64_t> observed{900, 50, 25, 25};
  const std::vector<double> pmf{0.25, 0.25, 0.25, 0.25};
  const auto result = chi_square_test(observed, pmf);
  EXPECT_LT(result.p_value, 1e-10);
}

TEST(ChiSquareTest, KnownStatisticValue) {
  // Two bins, expected 50/50, observed 60/40: chi2 = (10^2/50)*2 = 4.
  const std::vector<std::uint64_t> observed{60, 40};
  const std::vector<double> pmf{0.5, 0.5};
  const auto result = chi_square_test(observed, pmf);
  EXPECT_NEAR(result.statistic, 4.0, 1e-10);
  EXPECT_NEAR(result.p_value, 0.0455, 1e-3);
}

TEST(ChiSquareTest, PoolsSparseTails) {
  // Tail bins with tiny expectation must be pooled, not divided by ~0.
  const std::vector<std::uint64_t> observed{1, 48, 50, 1, 0};
  const std::vector<double> pmf{0.001, 0.499, 0.489, 0.01, 0.001};
  const auto result = chi_square_test(observed, pmf, 5.0);
  EXPECT_GT(result.pooled_bins, 0);
  EXPECT_GE(result.p_value, 0.0);
  EXPECT_LE(result.p_value, 1.0);
}

TEST(ChiSquareTest, DegenerateFullPoolingReportsPerfectFit) {
  const std::vector<std::uint64_t> observed{2, 1};
  const std::vector<double> pmf{0.5, 0.5};
  // min_expected far above the total pools everything into one bin.
  const auto result = chi_square_test(observed, pmf, 1e6);
  EXPECT_DOUBLE_EQ(result.dof, 0.0);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(ChiSquareTest, ValidationErrors) {
  const std::vector<std::uint64_t> observed{1, 2};
  EXPECT_THROW(
      (void)chi_square_test(observed, std::vector<double>{1.0}),
      std::invalid_argument);
  EXPECT_THROW((void)chi_square_test(std::vector<std::uint64_t>{},
                                     std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW((void)chi_square_test(std::vector<std::uint64_t>{0, 0},
                                     std::vector<double>{0.5, 0.5}),
               std::invalid_argument);
}

TEST(ChiSquareTest, AcceptsSampledBinomialData) {
  // Sample B(10, 0.4) via inversion from uniforms and verify self-fit.
  rng::RngStream g(1234);
  const std::int64_t n = 10;
  const double p = 0.4;
  std::vector<double> pmf(static_cast<std::size_t>(n) + 1);
  for (std::int64_t k = 0; k <= n; ++k) {
    double log_pmf = 0.0;
    // Direct product form is fine at n = 10.
    double c = 1.0;
    for (std::int64_t j = 0; j < k; ++j) {
      c *= static_cast<double>(n - j) / static_cast<double>(j + 1);
    }
    log_pmf = c * std::pow(p, static_cast<double>(k)) *
              std::pow(1 - p, static_cast<double>(n - k));
    pmf[static_cast<std::size_t>(k)] = log_pmf;
  }
  std::vector<std::uint64_t> observed(pmf.size(), 0);
  for (int trial = 0; trial < 20000; ++trial) {
    int count = 0;
    for (int j = 0; j < n; ++j) {
      if (g.next_double() < p) ++count;
    }
    ++observed[static_cast<std::size_t>(count)];
  }
  const auto result = chi_square_test(observed, pmf);
  EXPECT_GT(result.p_value, 1e-3);
}

TEST(KsTest, UniformSampleAgainstUniformCdf) {
  rng::RngStream g(99);
  std::vector<double> sample;
  for (int i = 0; i < 2000; ++i) sample.push_back(g.next_double());
  const auto result =
      ks_test(std::move(sample), [](double x) { return x; });
  EXPECT_GT(result.p_value, 1e-3);
  EXPECT_LT(result.statistic, 0.05);
}

TEST(KsTest, DetectsWrongDistribution) {
  rng::RngStream g(99);
  std::vector<double> sample;
  for (int i = 0; i < 2000; ++i) {
    const double u = g.next_double();
    sample.push_back(u * u);  // Beta(1/2)-ish, not uniform
  }
  const auto result =
      ks_test(std::move(sample), [](double x) { return x; });
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(KsTest, RejectsEmptySample) {
  EXPECT_THROW((void)ks_test({}, [](double x) { return x; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace gossip::stats
