#include "stats/ci.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace gossip::stats {
namespace {

TEST(NormalQuantile, MatchesStandardTwoSidedValues) {
  EXPECT_NEAR(normal_quantile_two_sided(0.95), 1.959963985, 1e-6);
  EXPECT_NEAR(normal_quantile_two_sided(0.99), 2.575829304, 1e-6);
  EXPECT_NEAR(normal_quantile_two_sided(0.90), 1.644853627, 1e-6);
  EXPECT_NEAR(normal_quantile_two_sided(0.6827), 1.0, 1e-3);
}

TEST(NormalQuantile, RejectsOutOfRangeConfidence) {
  EXPECT_THROW((void)normal_quantile_two_sided(0.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile_two_sided(1.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile_two_sided(-0.5), std::invalid_argument);
}

TEST(MeanConfidenceInterval, CentersOnMean) {
  OnlineSummary s;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  const auto ci = mean_confidence_interval(s, 0.95);
  EXPECT_NEAR(0.5 * (ci.lo + ci.hi), 3.0, 1e-12);
  EXPECT_TRUE(ci.contains(3.0));
  EXPECT_GT(ci.width(), 0.0);
}

TEST(MeanConfidenceInterval, HigherConfidenceIsWider) {
  OnlineSummary s;
  for (int i = 0; i < 30; ++i) s.add(static_cast<double>(i % 7));
  const auto ci95 = mean_confidence_interval(s, 0.95);
  const auto ci99 = mean_confidence_interval(s, 0.99);
  EXPECT_GT(ci99.width(), ci95.width());
}

TEST(MeanConfidenceInterval, DegenerateSampleHasZeroWidth) {
  OnlineSummary s;
  s.add(2.0);
  const auto ci = mean_confidence_interval(s);
  EXPECT_DOUBLE_EQ(ci.width(), 0.0);
}

TEST(WilsonInterval, ContainsPointEstimate) {
  const auto ci = wilson_interval(30, 100);
  EXPECT_LT(ci.lo, 0.3);
  EXPECT_GT(ci.hi, 0.3);
  EXPECT_GT(ci.lo, 0.0);
  EXPECT_LT(ci.hi, 1.0);
}

TEST(WilsonInterval, ExtremeCountsStayInUnitInterval) {
  const auto all = wilson_interval(100, 100);
  EXPECT_LE(all.hi, 1.0);
  EXPECT_GT(all.lo, 0.9);
  const auto none = wilson_interval(0, 100);
  EXPECT_GE(none.lo, 0.0);
  EXPECT_LT(none.hi, 0.1);
}

TEST(WilsonInterval, ShrinksWithMoreTrials) {
  const auto small = wilson_interval(5, 10);
  const auto large = wilson_interval(500, 1000);
  EXPECT_LT(large.width(), small.width());
}

TEST(WilsonInterval, KnownValue) {
  // Wilson 95% interval for 8/10: approximately [0.49, 0.943].
  const auto ci = wilson_interval(8, 10, 0.95);
  EXPECT_NEAR(ci.lo, 0.49, 0.01);
  EXPECT_NEAR(ci.hi, 0.943, 0.01);
}

TEST(WilsonInterval, RejectsInvalidCounts) {
  EXPECT_THROW((void)wilson_interval(1, 0), std::invalid_argument);
  EXPECT_THROW((void)wilson_interval(11, 10), std::invalid_argument);
}

TEST(Interval, ContainsAndWidth) {
  const Interval iv{1.0, 3.0};
  EXPECT_DOUBLE_EQ(iv.width(), 2.0);
  EXPECT_TRUE(iv.contains(1.0));
  EXPECT_TRUE(iv.contains(3.0));
  EXPECT_FALSE(iv.contains(0.999));
  EXPECT_FALSE(iv.contains(3.001));
}

}  // namespace
}  // namespace gossip::stats
