/// Property-based checks of OnlineSummary's parallel-merge algebra: the
/// deterministic thread-pool reductions (scenario runner, Monte-Carlo
/// estimators) rely on merge() agreeing with sequential accumulation no
/// matter how a sample series is partitioned or in which order the parts
/// are folded back together. A seed-driven generator produces random
/// series and random partitions; every (moment, partition) pair must
/// reproduce the sequential result within floating-point fold error.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rng/rng_stream.hpp"
#include "stats/summary.hpp"

namespace gossip::stats {
namespace {

/// Random series with a deliberately awkward scale mix (values spanning
/// several orders of magnitude stress the Chan merge's cancellation).
std::vector<double> random_series(rng::RngStream& rng, std::size_t size) {
  std::vector<double> values(size);
  for (auto& v : values) {
    const double base = rng.next_double() - 0.5;
    const double scale = static_cast<double>(1u << rng.next_below(12));
    v = base * scale;
  }
  return values;
}

OnlineSummary summarize(const std::vector<double>& values, std::size_t begin,
                        std::size_t end) {
  OnlineSummary summary;
  for (std::size_t i = begin; i < end; ++i) summary.add(values[i]);
  return summary;
}

void expect_same_moments(const OnlineSummary& a, const OnlineSummary& b,
                         const std::string& what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_NEAR(a.mean(), b.mean(), 1e-9 * (1.0 + std::fabs(b.mean()))) << what;
  EXPECT_NEAR(a.variance(), b.variance(),
              1e-9 * (1.0 + std::fabs(b.variance())))
      << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

TEST(OnlineSummaryProperty, MergeOfRandomPartitionsMatchesSequential) {
  rng::RngStream rng(20080808);
  for (int trial = 0; trial < 50; ++trial) {
    const auto size = 2 + static_cast<std::size_t>(rng.next_below(200));
    const auto values = random_series(rng, size);
    const auto sequential = summarize(values, 0, size);

    // Random partition into up to 8 contiguous chunks, merged in order.
    std::vector<std::size_t> cuts{0, size};
    for (int c = 0; c < 7; ++c) cuts.push_back(rng.next_below(size));
    std::sort(cuts.begin(), cuts.end());
    OnlineSummary merged;
    for (std::size_t p = 0; p + 1 < cuts.size(); ++p) {
      const auto part = summarize(values, cuts[p], cuts[p + 1]);
      merged.merge(part);
    }
    expect_same_moments(merged, sequential,
                        "trial " + std::to_string(trial));
  }
}

TEST(OnlineSummaryProperty, MergeIsAssociative) {
  // (a + b) + c == a + (b + c) on the summary's moments, for random
  // splits — the property that makes tree-shaped parallel reductions
  // order-of-completion independent.
  rng::RngStream rng(31337);
  for (int trial = 0; trial < 50; ++trial) {
    const auto values = random_series(rng, 120);
    const auto cut1 = 1 + rng.next_below(40);
    const auto cut2 = cut1 + 1 + rng.next_below(40);
    const auto a = summarize(values, 0, cut1);
    const auto b = summarize(values, cut1, cut2);
    const auto c = summarize(values, cut2, values.size());

    OnlineSummary left = a;
    left.merge(b);
    left.merge(c);
    OnlineSummary bc = b;
    bc.merge(c);
    OnlineSummary right = a;
    right.merge(bc);
    expect_same_moments(left, right, "trial " + std::to_string(trial));
  }
}

TEST(OnlineSummaryProperty, MergeIsOrderInvariant) {
  // Chunk order must not matter: fold the same three parts in all six
  // permutations and compare against the sequential summary.
  rng::RngStream rng(8);
  const auto values = random_series(rng, 90);
  const auto sequential = summarize(values, 0, values.size());
  const OnlineSummary parts[3] = {summarize(values, 0, 30),
                                  summarize(values, 30, 60),
                                  summarize(values, 60, 90)};
  int order[3] = {0, 1, 2};
  do {
    OnlineSummary merged;
    for (const int p : order) merged.merge(parts[p]);
    expect_same_moments(merged, sequential,
                        "order " + std::to_string(order[0]) +
                            std::to_string(order[1]) +
                            std::to_string(order[2]));
  } while (std::next_permutation(order, order + 3));
}

TEST(OnlineSummaryProperty, MergingEmptyAndSingletonSummariesIsExact) {
  // Degenerate shapes the pool reduction actually produces: empty worker
  // summaries (no replications landed on that worker) and singleton
  // summaries (one replication) must merge without perturbing anything.
  OnlineSummary base;
  base.add(2.0);
  base.add(4.0);

  OnlineSummary empty;
  OnlineSummary merged = base;
  merged.merge(empty);
  expect_same_moments(merged, base, "merge empty right");

  OnlineSummary from_empty;
  from_empty.merge(base);
  expect_same_moments(from_empty, base, "merge into empty");

  // A series built purely from singleton merges equals plain adds.
  OnlineSummary adds;
  OnlineSummary singletons;
  rng::RngStream rng(5);
  for (int i = 0; i < 25; ++i) {
    const double v = rng.next_double() * 10.0;
    adds.add(v);
    OnlineSummary one;
    one.add(v);
    singletons.merge(one);
  }
  expect_same_moments(singletons, adds, "singleton chain");
}

}  // namespace
}  // namespace gossip::stats
