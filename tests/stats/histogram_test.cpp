#include "stats/histogram.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace gossip::stats {
namespace {

TEST(IntHistogram, CountsValues) {
  IntHistogram h(5);
  h.add(0);
  h.add(2);
  h.add(2);
  h.add(5);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 0u);
  EXPECT_EQ(h.count(2), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.max_value(), 5);
}

TEST(IntHistogram, WeightedAdd) {
  IntHistogram h(3);
  h.add(1, 10);
  EXPECT_EQ(h.count(1), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(IntHistogram, ClampsOutOfRangeAndTracksOverflow) {
  IntHistogram h(3);
  h.add(-2);
  h.add(7);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(IntHistogram, PmfSumsToOne) {
  IntHistogram h(4);
  for (int i = 0; i < 10; ++i) h.add(i % 5);
  const auto pmf = h.pmf();
  double sum = 0.0;
  for (const double p : pmf) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(pmf[0], 0.2);
}

TEST(IntHistogram, EmptyPmfIsZero) {
  IntHistogram h(2);
  for (const double p : h.pmf()) {
    EXPECT_DOUBLE_EQ(p, 0.0);
  }
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(IntHistogram, MeanMatchesDirect) {
  IntHistogram h(10);
  h.add(2);
  h.add(4);
  h.add(6);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(IntHistogram, CountThrowsOutsideRange) {
  IntHistogram h(3);
  EXPECT_THROW((void)h.count(4), std::out_of_range);
  EXPECT_THROW((void)h.count(-1), std::out_of_range);
}

TEST(IntHistogram, RejectsNegativeMax) {
  EXPECT_THROW(IntHistogram(-1), std::invalid_argument);
}

TEST(IntHistogram, SingleBinHistogram) {
  IntHistogram h(0);
  h.add(0);
  h.add(3);  // clamped
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.overflow(), 1u);
}

}  // namespace
}  // namespace gossip::stats
