#include "stats/fit.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "math/special.hpp"
#include "rng/distributions.hpp"
#include "rng/rng_stream.hpp"

namespace gossip::stats {
namespace {

std::vector<std::int64_t> poisson_samples(double mean, int count,
                                          std::uint64_t seed) {
  rng::RngStream rng(seed);
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(rng::sample_poisson(rng, mean));
  }
  return out;
}

TEST(FitPoisson, RecoverssTrueMean) {
  const auto samples = poisson_samples(4.2, 20000, 1);
  const auto fit = fit_poisson(samples);
  EXPECT_NEAR(fit.mean, 4.2, 0.08);
  EXPECT_EQ(fit.samples, 20000u);
  EXPECT_LT(fit.log_likelihood, 0.0);
}

TEST(FitPoisson, MleIsSampleMean) {
  const std::vector<std::int64_t> samples{1, 2, 3, 4};
  const auto fit = fit_poisson(samples);
  EXPECT_DOUBLE_EQ(fit.mean, 2.5);
}

TEST(FitPoisson, LikelihoodPeaksAtMle) {
  const auto samples = poisson_samples(3.0, 2000, 2);
  const auto fit = fit_poisson(samples);
  // Perturbing the mean must lower the likelihood.
  const auto ll_at = [&](double mean) {
    double ll = 0.0;
    for (const auto s : samples) {
      ll += std::log(math::poisson_pmf(s, mean));
    }
    return ll;
  };
  EXPECT_GT(fit.log_likelihood, ll_at(fit.mean * 1.15));
  EXPECT_GT(fit.log_likelihood, ll_at(fit.mean * 0.85));
}

TEST(FitPoisson, RejectsEmptyAndNegative) {
  EXPECT_THROW((void)fit_poisson(std::vector<std::int64_t>{}),
               std::invalid_argument);
  EXPECT_THROW((void)fit_poisson(std::vector<std::int64_t>{1, -1}),
               std::invalid_argument);
}

TEST(FitGeometric, RecoversParameters) {
  rng::RngStream rng(3);
  std::vector<std::int64_t> samples;
  const double p = 0.25;  // mean 3
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(rng::sample_geometric(rng, p));
  }
  const auto fit = fit_geometric(samples);
  EXPECT_NEAR(fit.mean, 3.0, 0.1);
  EXPECT_NEAR(fit.success_probability, 0.25, 0.01);
}

TEST(PoissonAdequacy, AcceptsPoissonData) {
  const auto samples = poisson_samples(3.7, 10000, 4);
  const auto fit = fit_poisson(samples);
  const auto result = poisson_adequacy_test(samples, fit.mean);
  EXPECT_GT(result.p_value, 1e-3);
}

TEST(PoissonAdequacy, RejectsGeometricData) {
  // Geometric data has variance >> mean; the Poisson fit must be rejected.
  rng::RngStream rng(5);
  std::vector<std::int64_t> samples;
  for (int i = 0; i < 10000; ++i) {
    samples.push_back(rng::sample_geometric(rng, 0.25));
  }
  const auto fit = fit_poisson(samples);
  const auto result = poisson_adequacy_test(samples, fit.mean);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(PoissonAdequacy, EstimatedFlagCostsOneDof) {
  const auto samples = poisson_samples(3.0, 5000, 6);
  const auto with = poisson_adequacy_test(samples, 3.0, /*estimated=*/true);
  const auto without = poisson_adequacy_test(samples, 3.0,
                                             /*estimated=*/false);
  EXPECT_NEAR(without.dof - with.dof, 1.0, 1e-12);
}

TEST(PoissonAdequacy, ValidatesInput) {
  EXPECT_THROW((void)poisson_adequacy_test(std::vector<std::int64_t>{}, 1.0),
               std::invalid_argument);
  const std::vector<std::int64_t> ok{1, 2};
  EXPECT_THROW((void)poisson_adequacy_test(ok, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace gossip::stats
