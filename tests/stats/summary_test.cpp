#include "stats/summary.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace gossip::stats {
namespace {

TEST(OnlineSummary, EmptySummaryIsNeutral) {
  const OnlineSummary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.standard_error(), 0.0);
}

TEST(OnlineSummary, SingleValue) {
  OnlineSummary s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(OnlineSummary, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
  OnlineSummary s;
  for (const double x : xs) s.add(x);

  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double m2 = 0.0;
  for (const double x : xs) m2 += (x - mean) * (x - mean);
  const double var = m2 / static_cast<double>(xs.size() - 1);

  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
  EXPECT_NEAR(s.standard_error(),
              std::sqrt(var / static_cast<double>(xs.size())), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 32.0);
  EXPECT_NEAR(s.sum(), 63.0, 1e-12);
}

TEST(OnlineSummary, NumericallyStableAroundLargeOffset) {
  // Classic Welford scenario: large offset, small spread.
  OnlineSummary s;
  const double offset = 1e9;
  for (const double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(OnlineSummary, MergeEmptyIsNoop) {
  OnlineSummary a;
  a.add(1.0);
  a.add(2.0);
  const OnlineSummary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
}

TEST(OnlineSummary, MergeIntoEmptyCopies) {
  OnlineSummary a;
  OnlineSummary b;
  b.add(4.0);
  b.add(6.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
}

class MergeEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(MergeEquivalence, MergedEqualsSequential) {
  const int split = GetParam();
  std::vector<double> xs;
  for (int i = 0; i < 40; ++i) {
    xs.push_back(std::sin(static_cast<double>(i)) * 10.0 + i);
  }
  OnlineSummary all;
  for (const double x : xs) all.add(x);

  OnlineSummary left;
  OnlineSummary right;
  for (int i = 0; i < split; ++i) left.add(xs[static_cast<std::size_t>(i)]);
  for (std::size_t i = static_cast<std::size_t>(split); i < xs.size(); ++i) {
    right.add(xs[i]);
  }
  left.merge(right);

  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

INSTANTIATE_TEST_SUITE_P(Splits, MergeEquivalence,
                         ::testing::Values(0, 1, 7, 20, 39, 40));

}  // namespace
}  // namespace gossip::stats
