/// ScenarioRunner: grid execution over the thread pool with bit-identical
/// results for any worker count, exact agreement with the hand-written
/// replication loops it replaced, and the physics of the new failure
/// models (churn timing, targeted kills, bursty loss).

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/degree_distribution.hpp"
#include "experiment/monte_carlo.hpp"
#include "net/latency.hpp"
#include "parallel/thread_pool.hpp"
#include "protocol/gossip_multicast.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "stats/summary.hpp"

namespace gossip::scenario {
namespace {

/// A spec that exercises every schedule family at once, sweeping the churn
/// time so the grid has several protocol-backend cases.
ScenarioSpec schedule_heavy_spec() {
  ScenarioSpec spec;
  spec.set("name", "schedule_heavy")
      .set("n", "300")
      .set("fanout", "poisson(4)")
      .set("latency", "exponential(1)")
      .set("failure",
           "crash(0.05)+churn(crash@$t:0.2, join@6:0.5)+"
           "bursty_loss(0.6, 0.5, 2, 0.5)")
      .set("repetitions", "16")
      .set("seed", "33")
      .add_axis("t", {"0.5", "2", "4"});
  return spec;
}

TEST(ScenarioRunner, BitIdenticalAcrossWorkerCounts) {
  const auto spec = schedule_heavy_spec();
  const auto serial = ScenarioRunner(nullptr).run(spec);

  parallel::ThreadPool pool1(1);
  parallel::ThreadPool pool2(2);
  parallel::ThreadPool pool8(8);
  for (parallel::ThreadPool* pool : {&pool1, &pool2, &pool8}) {
    const auto parallel_results = ScenarioRunner(pool).run(spec);
    ASSERT_EQ(parallel_results.size(), serial.size());
    for (std::size_t c = 0; c < serial.size(); ++c) {
      // Exact equality, not EXPECT_NEAR: replication r of a case always
      // draws from RngStream(seed).substream(r), so the scheduler cannot
      // influence any bit of the estimate.
      EXPECT_EQ(parallel_results[c].reliability.mean(),
                serial[c].reliability.mean());
      EXPECT_EQ(parallel_results[c].reliability.variance(),
                serial[c].reliability.variance());
      EXPECT_EQ(parallel_results[c].messages.mean(),
                serial[c].messages.mean());
      EXPECT_EQ(parallel_results[c].midrun_crashes.mean(),
                serial[c].midrun_crashes.mean());
      EXPECT_EQ(parallel_results[c].success_count, serial[c].success_count);
    }
  }
}

TEST(ScenarioRunner, FlatBackendMatchesDirectFlatEstimate) {
  // backend = flat must route to estimate_reliability_flat with exactly
  // the spec's parameters: same seed, same numbers, to the last bit.
  ScenarioSpec spec;
  spec.set("name", "flat_direct")
      .set("n", "2000")
      .set("backend", "flat")
      .set("fanout", "poisson(4)")
      .set("failure", "crash(0.1)")
      .set("loss", "0.05")
      .set("repetitions", "12")
      .set("seed", "2008");
  const auto results = ScenarioRunner(nullptr).run(spec);
  ASSERT_EQ(results.size(), 1u);

  protocol::FlatGossipParams fp;
  fp.num_nodes = 2000;
  fp.nonfailed_ratio = 0.9;
  fp.loss_probability = 0.05;
  fp.fanout = core::poisson_fanout(4.0);
  experiment::MonteCarloOptions options;
  options.replications = 12;
  options.seed = 2008;
  const auto direct = experiment::estimate_reliability_flat(fp, options);
  EXPECT_EQ(results[0].reliability.mean(), direct.mean_reliability());
  EXPECT_EQ(results[0].messages.mean(), direct.messages.mean());
}

TEST(ScenarioRunner, FlatBackendRejectsUnsupportedKnobs) {
  // Everything outside the Fig. 4/5 regime is a spec error, never a silent
  // fallback to different physics.
  auto base = [] {
    ScenarioSpec spec;
    spec.set("name", "flat_bad")
        .set("n", "100")
        .set("backend", "flat")
        .set("fanout", "poisson(4)")
        .set("repetitions", "2")
        .set("seed", "1");
    return spec;
  };
  {
    auto spec = base();
    spec.set("latency", "exponential(1)");
    EXPECT_THROW((void)ScenarioRunner(nullptr).run(spec),
                 std::invalid_argument);
  }
  {
    auto spec = base();
    spec.set("failure", "churn(crash@2:0.3)");
    EXPECT_THROW((void)ScenarioRunner(nullptr).run(spec),
                 std::invalid_argument);
  }
  {
    auto spec = base();
    spec.set("workload.messages", "3");
    EXPECT_THROW((void)ScenarioRunner(nullptr).run(spec),
                 std::invalid_argument);
  }
}

TEST(ScenarioRunner, MidrunSpecMatchesHandWrittenReplicationLoop) {
  // The contract behind the ablation migrations: a spec-driven midrun-crash
  // case must reproduce the bespoke loop it replaced bit for bit.
  ScenarioSpec spec;
  spec.set("name", "midrun_exact")
      .set("n", "300")
      .set("fanout", "poisson(5)")
      .set("failure", "midrun_crash(0.4, 1, 2)")
      .set("repetitions", "10")
      .set("seed", "19");
  const auto results = ScenarioRunner(nullptr).run(spec);
  ASSERT_EQ(results.size(), 1u);

  protocol::GossipParams params;
  params.num_nodes = 300;
  params.fanout = core::poisson_fanout(5.0);
  params.midrun_crash_fraction = 0.4;
  params.midrun_crash_time = net::uniform_latency(1.0, 2.0);
  const rng::RngStream root(19);
  stats::OnlineSummary reliability;
  stats::OnlineSummary crashes;
  for (std::size_t i = 0; i < 10; ++i) {
    auto rng = root.substream(i);
    const auto exec = protocol::run_gossip_once(params, rng);
    reliability.add(exec.reliability);
    crashes.add(static_cast<double>(exec.midrun_crashes));
  }
  EXPECT_EQ(results[0].reliability.mean(), reliability.mean());
  EXPECT_EQ(results[0].reliability.variance(), reliability.variance());
  EXPECT_EQ(results[0].midrun_crashes.mean(), crashes.mean());
}

TEST(ScenarioRunner, GraphBackendMatchesMonteCarloEstimator) {
  ScenarioSpec spec;
  spec.set("name", "graph_exact")
      .set("n", "400")
      .set("backend", "graph")
      .set("fanout", "poisson(4)")
      .set("failure", "crash(0.1)")
      .set("edge_keep", "0.75")
      .set("repetitions", "12")
      .set("seed", "5");
  const auto results = ScenarioRunner(nullptr).run(spec);
  ASSERT_EQ(results.size(), 1u);

  experiment::MonteCarloOptions options;
  options.replications = 12;
  options.seed = 5;
  const auto estimate = experiment::estimate_reliability_graph(
      400, *core::poisson_fanout(4.0), 1.0 - 0.1, options, 0.75);
  EXPECT_EQ(results[0].reliability.mean(), estimate.reliability.mean());
  EXPECT_EQ(results[0].messages.mean(), estimate.messages.mean());
  EXPECT_EQ(results[0].success_count, estimate.success_count);
}

TEST(ScenarioRunner, LateChurnCostsLessThanEarlyChurn) {
  ScenarioSpec spec;
  spec.set("name", "churn_timing")
      .set("n", "400")
      .set("fanout", "poisson(5)")
      .set("failure", "churn(crash@$t:0.4)")
      .set("repetitions", "20")
      .set("seed", "3")
      .add_axis("t", {"0.1", "50"});
  const auto results = ScenarioRunner(nullptr).run(spec);
  ASSERT_EQ(results.size(), 2u);
  // Crashing before the cascade bites; crashing after it is free (every
  // member has already forwarded), so late-churn delivery is ~1 among the
  // members counted alive at the end... which the early case cannot reach.
  EXPECT_LT(results[0].reliability.mean() + 0.05,
            results[1].reliability.mean());
  // completion_time reports the last RECEIPT: the churn action parked at
  // t=50 must not inflate it past the (much earlier) end of dissemination.
  EXPECT_LT(results[1].completion_time.mean(), 50.0);
}

TEST(ScenarioRunner, TargetedHubsHurtMoreThanLeaves) {
  ScenarioSpec spec;
  spec.set("name", "targeted_contrast")
      .set("n", "500")
      .set("fanout", "geometric(4)")
      .set("failure", "targeted(0.2, $mode)")
      .set("repetitions", "20")
      .set("seed", "17")
      .add_axis("mode", {"hubs", "leaves"});
  const auto results = ScenarioRunner(nullptr).run(spec);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_LT(results[0].reliability.mean() + 0.1,
            results[1].reliability.mean());
}

TEST(ScenarioRunner, TotalBurstyLossStopsDissemination) {
  ScenarioSpec spec;
  spec.set("name", "blackout")
      .set("n", "200")
      .set("fanout", "fixed(4)")
      .set("failure", "bursty_loss(1, 0, 1000000, 1)")
      .set("repetitions", "5")
      .set("seed", "2");
  const auto results = ScenarioRunner(nullptr).run(spec);
  ASSERT_EQ(results.size(), 1u);
  // Every link drops every message: only the source ever receives m.
  EXPECT_NEAR(results[0].reliability.mean(), 1.0 / 200.0, 1e-12);
  EXPECT_EQ(results[0].success_count, 0u);
}

TEST(ScenarioRunner, RejectsTyposAndImpossibleBackendCombos) {
  ScenarioSpec typo;
  typo.set("name", "typo").set("n", "100").set("fanuot", "poisson(4)");
  EXPECT_THROW((void)ScenarioRunner(nullptr).run(typo),
               std::invalid_argument);

  ScenarioSpec graph_latency;
  graph_latency.set("name", "bad")
      .set("n", "100")
      .set("backend", "graph")
      .set("fanout", "poisson(4)")
      .set("latency", "constant(1)");
  EXPECT_THROW((void)ScenarioRunner(nullptr).run(graph_latency),
               std::invalid_argument);

  ScenarioSpec graph_schedule;
  graph_schedule.set("name", "bad")
      .set("n", "100")
      .set("backend", "graph")
      .set("fanout", "poisson(4)")
      .set("failure", "churn(crash@1:0.5)");
  EXPECT_THROW((void)ScenarioRunner(nullptr).run(graph_schedule),
               std::invalid_argument);

  ScenarioSpec component_thinned;
  component_thinned.set("name", "bad")
      .set("n", "100")
      .set("backend", "component")
      .set("fanout", "poisson(4)")
      .set("edge_keep", "0.5");
  EXPECT_THROW((void)ScenarioRunner(nullptr).run(component_thinned),
               std::invalid_argument);

  ScenarioSpec component_success;
  component_success.set("name", "bad")
      .set("n", "100")
      .set("backend", "component")
      .set("fanout", "poisson(4)")
      .set("metric", "success");
  EXPECT_THROW((void)ScenarioRunner(nullptr).run(component_success),
               std::invalid_argument);

  ScenarioSpec proto_edge_keep;
  proto_edge_keep.set("name", "bad")
      .set("n", "100")
      .set("fanout", "poisson(4)")
      .set("edge_keep", "0.5");
  EXPECT_THROW((void)ScenarioRunner(nullptr).run(proto_edge_keep),
               std::invalid_argument);

  ScenarioSpec loss_typo;
  loss_typo.set("name", "bad")
      .set("n", "100")
      .set("fanout", "poisson(4)")
      .set("loss", "1.5");
  EXPECT_THROW((void)ScenarioRunner(nullptr).run(loss_typo),
               std::invalid_argument);
}

#ifdef GOSSIP_SCENARIOS_DIR
TEST(ScenarioRunner, Fig4aScenarioReproducesPinnedAnchor) {
  // Acceptance gate: scenarios/fig4a.scn must reproduce the Fig. 4a anchor
  // pinned by paper_figures_test.cpp (graph MC at n=1000, Po(4), q=0.9,
  // 60 reps, seed 2008 -> S ~ 0.9695 +- 0.03), bit-identically across
  // worker counts.
  const auto spec =
      ScenarioSpec::load(std::string(GOSSIP_SCENARIOS_DIR) + "/fig4a.scn");
  parallel::ThreadPool pool(8);
  const auto results = ScenarioRunner(&pool).run(spec);
  const auto serial = ScenarioRunner(nullptr).run(spec);
  ASSERT_EQ(results.size(), serial.size());

  bool found_anchor = false;
  for (std::size_t c = 0; c < results.size(); ++c) {
    EXPECT_EQ(results[c].reliability.mean(), serial[c].reliability.mean());
    EXPECT_EQ(results[c].success_count, serial[c].success_count);
    if (results[c].label == "z=4.0,f=0.1") {
      found_anchor = true;
      EXPECT_NEAR(results[c].reliability.mean(), 0.9695, 0.03);
    }
  }
  EXPECT_TRUE(found_anchor) << "fig4a.scn lost its z=4.0, f=0.1 anchor case";
}
#endif

}  // namespace
}  // namespace gossip::scenario
