/// Tolerance diff of scenario result CSVs (scenario/compare.hpp), the
/// engine behind `gossip_scenarios --compare`.

#include "scenario/compare.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace gossip::scenario {
namespace {

class CompareCsvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& path : files_) std::remove(path.c_str());
  }

  std::string write_csv(const std::string& name,
                        const std::vector<std::string>& lines) {
    const std::string path = ::testing::TempDir() + name;
    std::ofstream out(path);
    for (const auto& line : lines) out << line << "\n";
    files_.push_back(path);
    return path;
  }

  static std::string header() {
    return "scenario,case,backend,metric,replications,seed,"
           "reliability_mean,reliability_ci_lo,reliability_ci_hi,"
           "success_rate,messages_mean,completion_mean,"
           "midrun_crashes_mean,workload_messages,msg_reliability_min,"
           "msg_latency_mean";
  }

  std::vector<std::string> files_;
};

TEST_F(CompareCsvTest, IdenticalFilesAgree) {
  const std::vector<std::string> lines = {
      header(),
      "fig4,fanout=4,protocol,reliability,60,2008,0.9695,0.96,0.98,"
      "0.95,4400.0,9.0,0.0,1,0.9695,"};
  const auto a = write_csv("cmp_a.csv", lines);
  const auto b = write_csv("cmp_b.csv", lines);
  const auto report = compare_result_csvs(a, b);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.rows_compared, 1u);
  EXPECT_TRUE(report.diffs.empty());
}

TEST_F(CompareCsvTest, StatisticalJitterWithinToleranceAgrees) {
  // Different seeds and worker counts: reliability moves by < 0.03,
  // messages by < 10%. That is agreement, not a regression.
  const auto a = write_csv(
      "jit_a.csv",
      {header(),
       "fig4,fanout=4,protocol,reliability,60,2008,0.9695,0.96,0.98,"
       "0.95,4400.0,9.0,0.0,1,0.9695,"});
  const auto b = write_csv(
      "jit_b.csv",
      {header(),
       "fig4,fanout=4,protocol,reliability,60,7,0.9551,0.94,0.97,"
       "0.93,4630.0,9.4,0.0,1,0.9551,"});
  EXPECT_TRUE(compare_result_csvs(a, b).ok());
}

TEST_F(CompareCsvTest, OutOfToleranceReliabilityIsFlagged) {
  const auto a = write_csv(
      "tol_a.csv",
      {header(),
       "fig4,fanout=4,protocol,reliability,60,2008,0.9695,0.96,0.98,"
       "0.95,4400.0,9.0,0.0,1,0.9695,"});
  const auto b = write_csv(
      "tol_b.csv",
      {header(),
       "fig4,fanout=4,protocol,reliability,60,2008,0.9000,0.96,0.98,"
       "0.95,4400.0,9.0,0.0,1,0.9695,"});
  const auto report = compare_result_csvs(a, b);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.diffs.size(), 1u);
  EXPECT_EQ(report.diffs[0].column, "reliability_mean");
  // Tightening the tolerance flags more columns; loosening clears it.
  CompareOptions loose;
  loose.reliability_tolerance = 0.10;
  EXPECT_TRUE(compare_result_csvs(a, b, loose).ok());
}

TEST_F(CompareCsvTest, UnmatchedRowsAreReported) {
  const auto a = write_csv(
      "row_a.csv",
      {header(),
       "fig4,fanout=4,protocol,reliability,60,2008,0.97,0.96,0.98,"
       "0.95,4400.0,9.0,0.0,1,0.97,",
       "fig4,fanout=5,protocol,reliability,60,2008,0.99,0.98,1.0,"
       "1.0,5500.0,9.0,0.0,1,0.99,"});
  const auto b = write_csv(
      "row_b.csv",
      {header(),
       "fig4,fanout=4,protocol,reliability,60,2008,0.97,0.96,0.98,"
       "0.95,4400.0,9.0,0.0,1,0.97,"});
  const auto report = compare_result_csvs(a, b);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.rows_compared, 1u);
  ASSERT_EQ(report.only_in_a.size(), 1u);
  EXPECT_NE(report.only_in_a[0].find("fanout=5"), std::string::npos);
  EXPECT_TRUE(report.only_in_b.empty());
}

TEST_F(CompareCsvTest, EmptyCellsAreSkippedNotCompared) {
  // msg_latency_mean is blank for backends without per-message data; a
  // blank-vs-number pairing must not count as a diff.
  const auto a = write_csv(
      "blank_a.csv",
      {header(),
       "fig4,fanout=4,round,reliability,60,2008,0.97,0.96,0.98,"
       "0.95,4400.0,9.0,0.0,1,0.97,"});
  const auto b = write_csv(
      "blank_b.csv",
      {header(),
       "fig4,fanout=4,round,reliability,60,2008,0.97,0.96,0.98,"
       "0.95,4400.0,9.0,0.0,1,0.97,7.25"});
  EXPECT_TRUE(compare_result_csvs(a, b).ok());
}

TEST_F(CompareCsvTest, RejectsMalformedInputs) {
  EXPECT_THROW((void)compare_result_csvs("/nonexistent/a.csv",
                                         "/nonexistent/b.csv"),
               std::runtime_error);
  const auto not_results =
      write_csv("bad.csv", {"x,y,z", "1,2,3"});
  const auto good = write_csv(
      "good.csv",
      {header(),
       "fig4,fanout=4,round,reliability,60,2008,0.97,0.96,0.98,"
       "0.95,4400.0,9.0,0.0,1,0.97,"});
  EXPECT_THROW((void)compare_result_csvs(not_results, good),
               std::runtime_error);
  const auto ragged = write_csv("ragged.csv",
                                {header(), "fig4,fanout=4,round"});
  EXPECT_THROW((void)compare_result_csvs(ragged, good),
               std::runtime_error);
}

TEST_F(CompareCsvTest, QuotedCaseLabelsRoundTrip) {
  // Sweep labels carry embedded commas and are RFC 4180-quoted by the
  // writer; the key match must see the unquoted label.
  const auto a = write_csv(
      "quo_a.csv",
      {header(),
       "fig4a,\"z=4.0,f=0.1\",graph,reliability,60,2008,0.9695,0.96,0.98,"
       "0.95,4400.0,0.0,0.0,1,0.9695,"});
  const auto b = write_csv(
      "quo_b.csv",
      {header(),
       "fig4a,\"z=4.0,f=0.1\",graph,reliability,60,7,0.9600,0.95,0.97,"
       "0.93,4500.0,0.0,0.0,1,0.9600,"});
  const auto report = compare_result_csvs(a, b);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.rows_compared, 1u);
}

TEST_F(CompareCsvTest, ExactZeroCellsFallBackToAbsoluteTolerance) {
  // Regression: a relative band around an exact 0.0 collapses to zero
  // width, so a run that records 0 midrun crashes against one recording a
  // trivial nonzero count (here 0.2 of a crash per replication) used to be
  // flagged as a mismatch. Such cells now use the absolute fallback.
  const auto a = write_csv(
      "zero_a.csv",
      {header(),
       "churn,rate=0.1,protocol,reliability,60,2008,0.97,0.96,0.98,"
       "0.95,4400.0,9.0,0.0,1,0.97,"});
  const auto b = write_csv(
      "zero_b.csv",
      {header(),
       "churn,rate=0.1,protocol,reliability,60,7,0.97,0.96,0.98,"
       "0.95,4400.0,9.0,0.2,1,0.97,"});
  EXPECT_TRUE(compare_result_csvs(a, b).ok());

  // Two exact zeros agree trivially...
  const auto both_zero = write_csv(
      "zero_c.csv",
      {header(),
       "churn,rate=0.1,protocol,reliability,60,9,0.97,0.96,0.98,"
       "0.95,4400.0,9.0,0.0,1,0.97,"});
  EXPECT_TRUE(compare_result_csvs(a, both_zero).ok());

  // ...but the fallback is a real tolerance, not a free pass: a zero
  // against a non-trivial count still diffs, and tightening the option
  // flags the 0.2 case too.
  const auto big = write_csv(
      "zero_d.csv",
      {header(),
       "churn,rate=0.1,protocol,reliability,60,7,0.97,0.96,0.98,"
       "0.95,4400.0,9.0,1.7,1,0.97,"});
  const auto report = compare_result_csvs(a, big);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.diffs.size(), 1u);
  EXPECT_EQ(report.diffs[0].column, "midrun_crashes_mean");
  EXPECT_DOUBLE_EQ(report.diffs[0].allowed, 0.5);

  CompareOptions tight;
  tight.zero_absolute_tolerance = 0.1;
  EXPECT_FALSE(compare_result_csvs(a, b, tight).ok());
}

TEST_F(CompareCsvTest, MeanFieldColumnsCompareAsReliabilities) {
  // The analytic-engine columns (meanfield_reliability, abs_diff) joined
  // the absolute-tolerance family; files from before the column existed
  // still compare (absent columns are skipped).
  const std::string wide_header =
      header() + ",engine,meanfield_reliability,abs_diff";
  const auto a = write_csv(
      "mf_a.csv",
      {wide_header,
       "fig4,fanout=4,flat,reliability,60,2008,0.9695,0.96,0.98,"
       "0.95,4400.0,9.0,0.0,1,0.9695,,both,0.9699,0.0004"});
  const auto b = write_csv(
      "mf_b.csv",
      {wide_header,
       "fig4,fanout=4,flat,reliability,60,7,0.9710,0.96,0.98,"
       "0.95,4400.0,9.0,0.0,1,0.9710,,both,0.9699,0.0011"});
  EXPECT_TRUE(compare_result_csvs(a, b).ok());

  const auto drifted = write_csv(
      "mf_c.csv",
      {wide_header,
       "fig4,fanout=4,flat,reliability,60,7,0.9710,0.96,0.98,"
       "0.95,4400.0,9.0,0.0,1,0.9710,,both,0.9200,0.0510"});
  const auto report = compare_result_csvs(a, drifted);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.diffs.size(), 2u);
  EXPECT_EQ(report.diffs[0].column, "meanfield_reliability");
  EXPECT_EQ(report.diffs[1].column, "abs_diff");

  const auto narrow = write_csv(
      "mf_d.csv",
      {header(),
       "fig4,fanout=4,flat,reliability,60,7,0.9710,0.96,0.98,"
       "0.95,4400.0,9.0,0.0,1,0.9710,"});
  EXPECT_TRUE(compare_result_csvs(a, narrow).ok());
}

TEST_F(CompareCsvTest, ReportPrinterSummarizes) {
  const auto a = write_csv(
      "prn_a.csv",
      {header(),
       "fig4,fanout=4,round,reliability,60,2008,0.97,0.96,0.98,"
       "0.95,4400.0,9.0,0.0,1,0.97,"});
  const auto report = compare_result_csvs(a, a);
  std::ostringstream out;
  print_compare_report(out, report);
  EXPECT_NE(out.str().find("OK"), std::string::npos);
  EXPECT_NE(out.str().find("1 row(s) compared"), std::string::npos);
}

}  // namespace
}  // namespace gossip::scenario
