/// The `engine =` axis of the scenario runner: spec validation for the
/// analytic mean-field engine, determinism of pure mean-field cases, and
/// the shape of the widened results/trace CSVs for engine = both.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace gossip::scenario {
namespace {

ScenarioSpec meanfield_spec() {
  ScenarioSpec spec;
  spec.set("name", "engine_probe")
      .set("n", "2000")
      .set("backend", "flat")
      .set("fanout", "poisson(4)")
      .set("failure", "crash(0.1)")
      .set("metric", "reliability")
      .set("repetitions", "20")
      .set("seed", "11")
      .set("engine", "meanfield");
  return spec;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(EngineSpec, UnknownEngineNamesAreRejected) {
  auto spec = meanfield_spec();
  spec.set("engine", "analytic");
  try {
    (void)ScenarioRunner().run(spec);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("montecarlo, meanfield"),
              std::string::npos)
        << error.what();
  }
}

TEST(EngineSpec, MeanFieldRejectsFeaturesOutsideTheStaticRegime) {
  // The analytic model derives the flat engine's constraint set; every
  // knob outside it must fail fast with a message naming the engine.
  const auto expect_rejected = [](ScenarioSpec spec, const char* what) {
    try {
      (void)ScenarioRunner().run(spec);
      FAIL() << what << ": expected invalid_argument";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("mean-field"),
                std::string::npos)
          << what << ": " << error.what();
    }
  };

  auto component = meanfield_spec();
  component.set("backend", "component");
  expect_rejected(component, "component backend");

  auto success = meanfield_spec();
  success.set("metric", "success");
  expect_rejected(success, "success metric");

  auto latency = meanfield_spec();
  latency.set("backend", "protocol").set("latency", "uniform(0,2)");
  expect_rejected(latency, "latency model");

  auto workload = meanfield_spec();
  workload.set("backend", "protocol").set("workload.messages", "4");
  expect_rejected(workload, "multi-message workload");

  auto schedule = meanfield_spec();
  schedule.set("backend", "protocol").set("failure", "midrun_crash(0.2)");
  expect_rejected(schedule, "mid-run failures");
}

TEST(EngineRun, PureMeanFieldCaseIsDeterministicAndRunsNoReplications) {
  const auto spec = meanfield_spec();
  const auto first = ScenarioRunner().run(spec);
  const auto second = ScenarioRunner().run(spec);
  ASSERT_EQ(first.size(), 1u);

  const auto& result = first[0];
  EXPECT_EQ(result.engine, Engine::kMeanField);
  EXPECT_TRUE(result.has_meanfield);
  // No simulation happened: the spec's 20 repetitions are not run, and the
  // summaries carry the single analytic value with a degenerate CI.
  EXPECT_EQ(result.replications, 0u);
  EXPECT_EQ(result.reliability.count(), 1u);
  EXPECT_DOUBLE_EQ(result.reliability.mean(), result.meanfield_reliability);
  EXPECT_DOUBLE_EQ(result.reliability.standard_error(), 0.0);
  EXPECT_DOUBLE_EQ(result.abs_diff(), 0.0);  // Meaningful for both only.
  EXPECT_GT(result.meanfield_reliability, 0.9);
  EXPECT_LT(result.meanfield_reliability, 1.0);
  EXPECT_GT(result.meanfield_extinction, 0.0);

  // Bit-for-bit repeatable: the engine is a closed-form evaluation.
  EXPECT_DOUBLE_EQ(second[0].meanfield_reliability,
                   result.meanfield_reliability);
  EXPECT_DOUBLE_EQ(second[0].meanfield_messages, result.meanfield_messages);
}

TEST(EngineRun, BothKeepsTheMonteCarloResultIdenticalToMonteCarloAlone) {
  // engine = both must be pure observation on the simulation side: the
  // Monte-Carlo summaries are bit-identical to an engine = montecarlo run
  // of the same spec, with the prediction riding alongside.
  auto mc_spec = meanfield_spec();
  mc_spec.set("engine", "montecarlo").set("n", "500");
  auto both_spec = meanfield_spec();
  both_spec.set("engine", "both").set("n", "500");

  const auto mc = ScenarioRunner().run(mc_spec);
  const auto both = ScenarioRunner().run(both_spec);
  ASSERT_EQ(both.size(), 1u);
  EXPECT_EQ(both[0].replications, 20u);
  EXPECT_EQ(both[0].reliability.count(), mc[0].reliability.count());
  EXPECT_DOUBLE_EQ(both[0].reliability.mean(), mc[0].reliability.mean());
  EXPECT_DOUBLE_EQ(both[0].messages.mean(), mc[0].messages.mean());
  EXPECT_FALSE(mc[0].has_meanfield);
  EXPECT_TRUE(both[0].has_meanfield);
  EXPECT_GE(both[0].abs_diff(), 0.0);
}

TEST(EngineCsv, ResultColumnsAppearAndStayEmptyForPureMonteCarlo) {
  auto spec = meanfield_spec();
  spec.set("engine", "both").set("n", "500");
  const auto results = ScenarioRunner().run(spec);

  const std::string path = ::testing::TempDir() + "engine_results.csv";
  write_results_csv(path, results);
  const auto text = read_file(path);
  std::remove(path.c_str());

  EXPECT_NE(text.find(",engine,meanfield_reliability,abs_diff"),
            std::string::npos);
  EXPECT_NE(text.find(",both,"), std::string::npos);

  // A pure Monte-Carlo run writes the same header with empty analytic
  // cells, so downstream tooling sees one stable schema.
  auto mc_spec = meanfield_spec();
  mc_spec.set("engine", "montecarlo").set("n", "500");
  const auto mc_results = ScenarioRunner().run(mc_spec);
  const std::string mc_path = ::testing::TempDir() + "engine_mc.csv";
  write_results_csv(mc_path, mc_results);
  const auto mc_text = read_file(mc_path);
  std::remove(mc_path.c_str());
  EXPECT_NE(mc_text.find(",montecarlo,,"), std::string::npos);
}

TEST(EngineCsv, TraceCsvCarriesTheAnalyticTrajectory) {
  auto spec = meanfield_spec();
  spec.set("engine", "both").set("n", "500").set("trace", "rounds");
  const auto results = ScenarioRunner().run(spec);
  ASSERT_FALSE(results[0].meanfield_trace.empty());
  // Round 0 is the injection, mirroring the simulated trace schema.
  EXPECT_EQ(results[0].meanfield_trace[0].round, 0u);
  EXPECT_DOUBLE_EQ(results[0].meanfield_trace[0].newly_informed, 1.0);

  const std::string path = ::testing::TempDir() + "engine_trace.csv";
  write_trace_csv(path, results);
  const auto text = read_file(path);
  std::remove(path.c_str());
  // Analytic rows are tagged with "meanfield" in the backend column and 0
  // replications, so they never collide with the simulated rows.
  EXPECT_NE(text.find(",meanfield,"), std::string::npos);
  EXPECT_NE(text.find(",flat,"), std::string::npos);
}

}  // namespace
}  // namespace gossip::scenario
