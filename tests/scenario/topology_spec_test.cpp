/// The `topology =` spec-key family: key registration and nearest-name
/// suggestions, per-family knob validation, backend/engine restrictions, the
/// shared per-case overlay (flat and protocol backends see the same graph),
/// and the regional_outage failure part.

#include <algorithm>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "scenario/topology.hpp"

namespace gossip::scenario {
namespace {

ScenarioSpec base_spec() {
  ScenarioSpec spec;
  spec.set("name", "topo")
      .set("n", "300")
      .set("backend", "flat")
      .set("fanout", "poisson(4)")
      .set("repetitions", "8")
      .set("seed", "7");
  return spec;
}

std::string run_error(const ScenarioSpec& spec) {
  try {
    (void)ScenarioRunner(nullptr).run(spec);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

TEST(TopologyKeys, ListedInKnownSpecKeys) {
  const auto keys = known_spec_keys();
  for (const char* key : {"topology", "topology.p", "topology.m",
                          "topology.clusters", "topology.bridge_edges"}) {
    EXPECT_TRUE(std::find(keys.begin(), keys.end(), key) != keys.end())
        << "missing spec key " << key;
  }
}

TEST(TopologyKeys, MisspelledKnobGetsTheNearestNameSuggestion) {
  auto spec = base_spec();
  spec.set("topology", "er").set("topolgy.p", "0.02");
  const std::string error = run_error(spec);
  EXPECT_NE(error.find("unknown field 'topolgy.p'"), std::string::npos)
      << error;
  EXPECT_NE(error.find("did you mean 'topology.p'?"), std::string::npos)
      << error;
}

TEST(TopologyKeys, FamilyMustBeKnown) {
  auto spec = base_spec();
  spec.set("topology", "smallworld");
  EXPECT_NE(run_error(spec).find("topology must be uniform, er, ba, or wan"),
            std::string::npos);
}

TEST(TopologyKeys, EachFamilyRequiresItsOwnKnobs) {
  {
    auto spec = base_spec();
    spec.set("topology", "er");
    EXPECT_NE(run_error(spec).find("topology = er requires topology.p"),
              std::string::npos);
  }
  {
    auto spec = base_spec();
    spec.set("topology", "ba");
    EXPECT_NE(run_error(spec).find("topology = ba requires topology.m"),
              std::string::npos);
  }
  {
    auto spec = base_spec();
    spec.set("topology", "wan").set("topology.clusters", "4");
    EXPECT_NE(run_error(spec).find("topology = wan requires"),
              std::string::npos);
  }
}

TEST(TopologyKeys, KnobsAreRangeCheckedWheneverPresent) {
  {
    // Even a family that ignores the knob validates it: sweeps across
    // families share knob lines, so a bad value is always a spec error.
    auto spec = base_spec();
    spec.set("topology", "uniform").set("topology.p", "1.5");
    EXPECT_NE(run_error(spec).find("topology.p must be in [0, 1]"),
              std::string::npos);
  }
  {
    auto spec = base_spec();
    spec.set("topology", "ba").set("topology.m", "0");
    EXPECT_NE(run_error(spec).find("topology.m must be >= 1"),
              std::string::npos);
  }
  {
    auto spec = base_spec();
    spec.set("topology", "wan")
        .set("topology.clusters", "1")
        .set("topology.bridge_edges", "4");
    EXPECT_NE(run_error(spec).find("topology.clusters must be >= 2"),
              std::string::npos);
  }
  {
    auto spec = base_spec();
    spec.set("topology", "wan")
        .set("topology.clusters", "4")
        .set("topology.bridge_edges", "2");
    EXPECT_NE(run_error(spec).find("topology.bridge_edges must be >="),
              std::string::npos);
  }
}

TEST(TopologyKeys, KnobsWithoutTheFamilyKeyAreRejected) {
  auto spec = base_spec();
  spec.set("topology.p", "0.02");
  EXPECT_NE(run_error(spec).find("topology.* knobs require the topology key"),
            std::string::npos);
}

TEST(TopologyKeys, NonUniformRejectsUnsupportedCombinations) {
  {
    auto spec = base_spec();
    spec.set("topology", "er").set("topology.p", "0.05")
        .set("backend", "graph");
    EXPECT_NE(run_error(spec).find("use the protocol or flat backend"),
              std::string::npos);
  }
  {
    auto spec = base_spec();
    spec.set("topology", "er").set("topology.p", "0.05")
        .set("engine", "meanfield");
    EXPECT_NE(run_error(spec).find("montecarlo-only"), std::string::npos);
  }
  {
    auto spec = base_spec();
    spec.set("topology", "er").set("topology.p", "0.05")
        .set("backend", "protocol").set("membership", "uniform(20)");
    EXPECT_NE(run_error(spec).find("IS the membership view"),
              std::string::npos);
  }
}

TEST(TopologyKeys, UniformFamilyIsTheExistingEngineUnchanged) {
  auto plain = base_spec();
  auto uniform = base_spec();
  uniform.set("topology", "uniform");
  const auto a = ScenarioRunner(nullptr).run(plain);
  const auto b = ScenarioRunner(nullptr).run(uniform);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].reliability.mean(), b[0].reliability.mean());
  EXPECT_EQ(a[0].messages.mean(), b[0].messages.mean());
}

TEST(TopologyKeys, FlatAndProtocolShareTheSameOverlayGraph) {
  // Both backends must build the overlay from the same (seed, salt)
  // substream: pin it through build_topology_adjacency directly.
  TopologyConfig config;
  config.family = TopologyFamily::kEr;
  config.has_p = true;
  config.p = 0.03;
  const auto a = build_topology_adjacency(config, 400, 7);
  const auto b = build_topology_adjacency(config, 400, 7);
  EXPECT_EQ(a->offsets, b->offsets);
  EXPECT_EQ(a->neighbors, b->neighbors);
  const auto other_seed = build_topology_adjacency(config, 400, 8);
  EXPECT_NE(a->neighbors, other_seed->neighbors);
}

TEST(TopologyKeys, SweepAcrossFamiliesSharesKnobLines) {
  ScenarioSpec spec;
  spec.set("name", "topo_sweep")
      .set("n", "200")
      .set("backend", "flat")
      .set("fanout", "poisson(4)")
      .set("repetitions", "4")
      .set("seed", "11")
      .set("topology", "$topo")
      .set("topology.p", "0.05")
      .set("topology.m", "3")
      .add_axis("topo", {"uniform", "er", "ba"});
  const auto results = ScenarioRunner(nullptr).run(spec);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_GT(r.reliability.mean(), 0.0) << r.label;
  }
}

TEST(RegionalOutage, RegistryBuildsAndValidatesTheSchedule) {
  const auto config = make_failure("regional_outage(4, 1)");
  ASSERT_NE(config.schedule, nullptr);
  EXPECT_EQ(config.schedule->name(), "regional_outage(4,1,0)");
  EXPECT_THROW(make_failure("regional_outage(4)"), std::invalid_argument);
  EXPECT_THROW(make_failure("regional_outage(4, 0)"), std::invalid_argument);
  EXPECT_THROW(make_failure("regional_outage(4, 4)"), std::invalid_argument);
  EXPECT_THROW(make_failure("regional_outage(4, 1, -2)"),
               std::invalid_argument);
}

TEST(RegionalOutage, KillsWholeContiguousClustersAtTimeZero) {
  // n = 200, 4 clusters of 50, one doomed region: reliability over the
  // survivors stays 1 with a saturating fanout, and the non-failed count
  // reflects exactly one lost block (+1 if the source's own block died).
  ScenarioSpec spec;
  spec.set("name", "outage")
      .set("n", "200")
      .set("backend", "protocol")
      .set("fanout", "fixed(199)")
      .set("failure", "regional_outage(4, 1)")
      .set("repetitions", "6")
      .set("seed", "3");
  const auto results = ScenarioRunner(nullptr).run(spec);
  ASSERT_EQ(results.size(), 1u);
  // Everyone alive hears the saturating broadcast, so per-replication
  // reliability is 1.0 even though a quarter of the group is down.
  EXPECT_DOUBLE_EQ(results[0].reliability.mean(), 1.0);
  EXPECT_EQ(results[0].success_count, results[0].replications);
}

TEST(RegionalOutage, ScheduledOutageLowersReliabilityUnderLatency) {
  // With the outage after dissemination finished (t = 50 under unit-ish
  // latency), the kill arrives too late to hurt anyone: contrast with an
  // immediate outage under a modest fanout.
  const auto run = [](const char* failure) {
    ScenarioSpec spec;
    spec.set("name", "outage_timing")
        .set("n", "200")
        .set("backend", "protocol")
        .set("fanout", "poisson(4)")
        .set("failure", failure)
        .set("repetitions", "10")
        .set("seed", "13");
    return ScenarioRunner(nullptr).run(spec)[0].reliability.mean();
  };
  const double immediate = run("regional_outage(4, 2)");
  const double late = run("regional_outage(4, 2, 50)");
  // A late outage cannot reduce delivered coverage (deliveries already
  // happened); an immediate one removes half the group's receivers.
  EXPECT_GT(late, immediate);
}

}  // namespace
}  // namespace gossip::scenario
