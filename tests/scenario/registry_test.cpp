/// Component registries: spec strings resolve to the right factories with
/// the right parameters, unknown names are rejected with a diagnostic that
/// lists what IS known, and failure specs compose with '+'.

#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "scenario/registry.hpp"
#include "scenario/spec.hpp"

namespace gossip::scenario {
namespace {

TEST(ParseComponent, HeadOnlyAndArguments) {
  const auto bare = parse_component("  full  ");
  EXPECT_EQ(bare.head, "full");
  EXPECT_TRUE(bare.args.empty());

  const auto args = parse_component("binomial(10, 0.4)");
  EXPECT_EQ(args.head, "binomial");
  EXPECT_EQ(args.args, (std::vector<std::string>{"10", "0.4"}));
}

TEST(ParseComponent, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_component(""), std::invalid_argument);
  EXPECT_THROW((void)parse_component("poisson(4"), std::invalid_argument);
  EXPECT_THROW((void)parse_component("(4)"), std::invalid_argument);
  EXPECT_THROW((void)parse_component("poisson(4,,5)"), std::invalid_argument);
}

TEST(FanoutRegistry, BuildsEveryFamily) {
  EXPECT_NEAR(make_fanout("poisson(4.0)")->mean(), 4.0, 1e-12);
  EXPECT_NEAR(make_fanout("fixed(5)")->mean(), 5.0, 1e-12);
  EXPECT_NEAR(make_fanout("binomial(10, 0.4)")->mean(), 4.0, 1e-12);
  EXPECT_NEAR(make_fanout("geometric(4)")->mean(), 4.0, 1e-9);
  EXPECT_GT(make_fanout("zipf(20, 1.5)")->mean(), 1.0);
  EXPECT_NEAR(make_fanout("uniform(2, 6)")->mean(), 4.0, 1e-12);
  // empirical(0, 1): all mass on f = 1.
  EXPECT_NEAR(make_fanout("empirical(0, 1)")->mean(), 1.0, 1e-12);
}

TEST(FanoutRegistry, RejectsUnknownNamesListingKnownOnes) {
  try {
    (void)make_fanout("powerlaw(2.5)");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("powerlaw"), std::string::npos);
    EXPECT_NE(what.find("poisson"), std::string::npos);
    EXPECT_NE(what.find("known:"), std::string::npos);
  }
  EXPECT_THROW((void)make_fanout("poisson(4, 5)"), std::invalid_argument);
  EXPECT_THROW((void)make_fanout("fixed(2.5)"), std::invalid_argument);
  EXPECT_FALSE(fanout_names().empty());
}

TEST(LatencyRegistry, BuildsEveryFamilyAndRejectsUnknown) {
  EXPECT_EQ(make_latency("constant(1)")->name(), "Constant(1)");
  EXPECT_EQ(make_latency("uniform(0, 2)")->name(), "Uniform[0,2]");
  EXPECT_EQ(make_latency("exponential(1.5)")->name(),
            "Exponential(mean=1.5)");
  EXPECT_EQ(make_latency("lognormal(0, 0.5)")->name(),
            "Lognormal(mu=0,sigma=0.5)");
  EXPECT_THROW((void)make_latency("pareto(1)"), std::invalid_argument);
  EXPECT_EQ(latency_names().size(), 4u);
}

TEST(MembershipRegistry, BuildsEveryFamilyAndRejectsUnknown) {
  rng::RngStream rng(7);
  const auto full = make_membership("full", 50, rng);
  EXPECT_EQ(full->view_for(0)->size(), 49u);
  const auto uniform = make_membership("uniform(8)", 50, rng);
  EXPECT_EQ(uniform->view_for(3)->size(), 8u);
  const auto scamp = make_membership("scamp(2)", 50, rng);
  EXPECT_GT(scamp->view_for(1)->size(), 0u);
  EXPECT_THROW((void)make_membership("hyparview(5)", 50, rng),
               std::invalid_argument);
  EXPECT_THROW((void)make_membership("full(3)", 50, rng),
               std::invalid_argument);
  EXPECT_EQ(membership_names().size(), 3u);
}

TEST(FailureRegistry, StaticCrashMapsToNonfailedRatio) {
  const auto none = make_failure("none");
  EXPECT_DOUBLE_EQ(none.nonfailed_ratio, 1.0);
  EXPECT_EQ(none.schedule, nullptr);

  const auto crash = make_failure("crash(0.1)");
  EXPECT_DOUBLE_EQ(crash.nonfailed_ratio, 1.0 - 0.1);
  EXPECT_EQ(crash.schedule, nullptr);
  EXPECT_DOUBLE_EQ(crash.midrun_fraction, 0.0);

  // q must stay positive: everyone-crashes is not a gossip experiment.
  EXPECT_THROW((void)make_failure("crash(1.0)"), std::invalid_argument);
}

TEST(FailureRegistry, MidrunCrashMapsToProtocolFields) {
  const auto midrun = make_failure("midrun_crash(0.4, 1, 2)");
  EXPECT_DOUBLE_EQ(midrun.midrun_fraction, 0.4);
  ASSERT_NE(midrun.midrun_time, nullptr);
  EXPECT_EQ(midrun.midrun_time->name(), "Uniform[1,2]");

  const auto defaulted = make_failure("midrun_crash(0.2)");
  EXPECT_EQ(defaulted.midrun_time, nullptr);  // protocol default window
  EXPECT_THROW((void)make_failure("midrun_crash(0.4, 1)"),
               std::invalid_argument);
}

TEST(FailureRegistry, SchedulesCarryDescriptiveNames) {
  const auto churn = make_failure("churn(crash@2:0.3, join@5:0.5)");
  ASSERT_NE(churn.schedule, nullptr);
  EXPECT_EQ(churn.schedule->name(), "churn(crash@2:0.3,join@5:0.5)");

  const auto targeted = make_failure("targeted(0.2, hubs)");
  ASSERT_NE(targeted.schedule, nullptr);
  EXPECT_EQ(targeted.schedule->name(), "targeted(0.2,hubs)");

  const auto bursty = make_failure("bursty_loss(0.8, 1, 2, 0.5)");
  ASSERT_NE(bursty.schedule, nullptr);
  EXPECT_EQ(bursty.schedule->name(), "bursty_loss(0.8,1,2,0.5,0)");
}

TEST(FailureRegistry, RejectsBadScheduleArguments) {
  EXPECT_THROW((void)make_failure("churn(melt@2:0.3)"),
               std::invalid_argument);
  EXPECT_THROW((void)make_failure("churn(crash@2)"), std::invalid_argument);
  EXPECT_THROW((void)make_failure("churn(crash@-1:0.3)"),
               std::invalid_argument);
  EXPECT_THROW((void)make_failure("targeted(0.2, everyone)"),
               std::invalid_argument);
  EXPECT_THROW((void)make_failure("targeted(1.5, hubs)"),
               std::invalid_argument);
  EXPECT_THROW((void)make_failure("bursty_loss(2, 0, 1)"),
               std::invalid_argument);
  EXPECT_THROW((void)make_failure("meteor_strike(1)"),
               std::invalid_argument);
}

TEST(FailureRegistry, LeaseEventsAndHottestForwarderKill) {
  const auto lease = make_failure("churn(crash@1:0.3, lease@4:0.25)");
  ASSERT_NE(lease.schedule, nullptr);
  EXPECT_EQ(lease.schedule->name(), "churn(crash@1:0.3,lease@4:0.25)");

  const auto hottest = make_failure("kill_hottest_forwarder(0.2, 3)");
  ASSERT_NE(hottest.schedule, nullptr);
  EXPECT_EQ(hottest.schedule->name(), "kill_hottest_forwarder(0.2,3)");
  EXPECT_THROW((void)make_failure("kill_hottest_forwarder(1.5, 3)"),
               std::invalid_argument);
  EXPECT_THROW((void)make_failure("kill_hottest_forwarder(0.2)"),
               std::invalid_argument);
}

TEST(FailureRegistry, UnknownNamesSuggestTheNearestComponent) {
  try {
    (void)make_failure("bursty_los(0.5, 0, 1)");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'bursty_loss'"),
              std::string::npos)
        << e.what();
  }
}

TEST(DynamicsRegistry, BuildsScampChurnAndRejectsUnknown) {
  EXPECT_EQ(make_dynamics("none", 100), nullptr);
  const auto factory = make_dynamics("scamp-churn(2)", 100);
  ASSERT_NE(factory, nullptr);
  EXPECT_EQ(factory->name(), "scamp-churn(2)");
  // Bare head defaults to redundancy 1.
  EXPECT_EQ(make_dynamics("scamp-churn", 100)->name(), "scamp-churn(1)");
  EXPECT_THROW((void)make_dynamics("scamp-churn(1,2,3)", 100),
               std::invalid_argument);
  try {
    (void)make_dynamics("scamp-chrun(1)", 100);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'scamp-churn'"),
              std::string::npos)
        << e.what();
  }
  // The static membership registry redirects scamp-churn to the
  // membership.dynamics key instead of treating it as a typo of scamp.
  try {
    (void)make_membership("scamp-churn(1)", 100, rng::RngStream(1));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("membership.dynamics"),
              std::string::npos)
        << e.what();
  }
}

TEST(FailureRegistry, PlusComposesParts) {
  const auto composed =
      make_failure("crash(0.1)+crash(0.2)+churn(crash@2:0.3)+"
                   "bursty_loss(0.5, 0, 4)");
  // Independent static crash fractions multiply their survival ratios.
  EXPECT_DOUBLE_EQ(composed.nonfailed_ratio, (1.0 - 0.1) * (1.0 - 0.2));
  ASSERT_NE(composed.schedule, nullptr);
  EXPECT_EQ(composed.schedule->name(),
            "churn(crash@2:0.3)+bursty_loss(0.5,0,4,1,0)");

  EXPECT_THROW(
      (void)make_failure("midrun_crash(0.1)+midrun_crash(0.2)"),
      std::invalid_argument);
}

}  // namespace
}  // namespace gossip::scenario
