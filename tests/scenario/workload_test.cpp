/// Multi-message workloads and live-membership co-simulation through the
/// scenario engine: per-message stats bit-identical for any worker count,
/// the shipped scamp_churn.scn / multimsg_churn.scn anchors (live SCAMP
/// repair beats a frozen snapshot under the same churn trace — the
/// direction the paper's current-membership assumption predicts), the
/// adaptive hottest-forwarder kill, and the one-pass spec-key validation.

#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/degree_distribution.hpp"
#include "parallel/thread_pool.hpp"
#include "protocol/gossip_multicast.hpp"
#include "scenario/failure_models.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace gossip::scenario {
namespace {

ScenarioSpec multimsg_spec() {
  ScenarioSpec spec;
  spec.set("name", "workload_det")
      .set("n", "300")
      .set("fanout", "poisson(4)")
      .set("latency", "exponential(1)")
      .set("failure", "churn(crash@1.5:0.25, lease@3:0.3, join@6:0.5)")
      .set("membership.dynamics", "scamp-churn(1)")
      .set("workload.messages", "6")
      .set("workload.spacing", "1.25")
      .set("workload.sources", "spread")
      .set("repetitions", "12")
      .set("seed", "77");
  return spec;
}

TEST(Workload, PerMessageStatsBitIdenticalAcross1_2_8Workers) {
  const auto spec = multimsg_spec();
  const auto serial = ScenarioRunner(nullptr).run(spec);
  ASSERT_EQ(serial.size(), 1u);
  ASSERT_EQ(serial[0].workload_messages, 6u);
  ASSERT_EQ(serial[0].per_message_reliability.size(), 6u);

  parallel::ThreadPool pool1(1);
  parallel::ThreadPool pool2(2);
  parallel::ThreadPool pool8(8);
  for (parallel::ThreadPool* pool : {&pool1, &pool2, &pool8}) {
    const auto results = ScenarioRunner(pool).run(spec);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].reliability.mean(), serial[0].reliability.mean());
    EXPECT_EQ(results[0].success_count, serial[0].success_count);
    ASSERT_EQ(results[0].per_message_reliability.size(), 6u);
    for (std::size_t m = 0; m < 6; ++m) {
      // Exact equality: replication r of the case always runs on
      // RngStream(seed).substream(r), and the per-message fold walks
      // slots in index order, so no scheduler can shift a bit.
      EXPECT_EQ(results[0].per_message_reliability[m].mean(),
                serial[0].per_message_reliability[m].mean());
      EXPECT_EQ(results[0].per_message_reliability[m].variance(),
                serial[0].per_message_reliability[m].variance());
      EXPECT_EQ(results[0].per_message_latency[m].mean(),
                serial[0].per_message_latency[m].mean());
    }
  }
}

TEST(Workload, SingleMessageWorkloadMatchesRunGossipOnceBitForBit) {
  // The degenerate workload IS the single-message protocol: same mask,
  // same substreams, same draws. This equality is what lets the runner
  // route every protocol case through run_gossip_workload without
  // perturbing any pre-workload scenario or pinned anchor.
  protocol::GossipParams params;
  params.num_nodes = 250;
  params.nonfailed_ratio = 0.85;
  params.fanout = core::poisson_fanout(4.0);
  for (std::size_t rep = 0; rep < 5; ++rep) {
    auto rng_once = rng::RngStream(99).substream(rep);
    auto rng_workload = rng::RngStream(99).substream(rep);
    const auto once = protocol::run_gossip_once(params, rng_once);
    const auto workload = protocol::run_gossip_workload(
        params, protocol::WorkloadParams{}, rng_workload);
    ASSERT_EQ(workload.messages.size(), 1u);
    EXPECT_EQ(workload.messages[0].reliability, once.reliability);
    EXPECT_EQ(workload.mean_reliability, once.reliability);
    EXPECT_EQ(workload.all_success, once.success);
    EXPECT_EQ(workload.messages_sent, once.messages_sent);
    EXPECT_EQ(workload.completion_time, once.completion_time);
    EXPECT_EQ(workload.nonfailed_count, once.nonfailed_count);
  }
}

TEST(Workload, LiveDynamicsRejectsStaticMembershipAndBadWorkloads) {
  ScenarioSpec both;
  both.set("name", "bad")
      .set("n", "100")
      .set("fanout", "poisson(4)")
      .set("membership", "scamp(1)")
      .set("membership.dynamics", "scamp-churn(1)");
  EXPECT_THROW((void)ScenarioRunner(nullptr).run(both),
               std::invalid_argument);

  ScenarioSpec graph_dynamics;
  graph_dynamics.set("name", "bad")
      .set("n", "100")
      .set("backend", "graph")
      .set("fanout", "poisson(4)")
      .set("membership.dynamics", "scamp-churn(1)");
  EXPECT_THROW((void)ScenarioRunner(nullptr).run(graph_dynamics),
               std::invalid_argument);

  ScenarioSpec graph_workload;
  graph_workload.set("name", "bad")
      .set("n", "100")
      .set("backend", "graph")
      .set("fanout", "poisson(4)")
      .set("workload.messages", "4");
  EXPECT_THROW((void)ScenarioRunner(nullptr).run(graph_workload),
               std::invalid_argument);

  ScenarioSpec zero_messages;
  zero_messages.set("name", "bad")
      .set("n", "100")
      .set("fanout", "poisson(4)")
      .set("workload.messages", "0");
  EXPECT_THROW((void)ScenarioRunner(nullptr).run(zero_messages),
               std::invalid_argument);

  ScenarioSpec bad_sources;
  bad_sources.set("name", "bad")
      .set("n", "100")
      .set("fanout", "poisson(4)")
      .set("workload.sources", "everywhere");
  EXPECT_THROW((void)ScenarioRunner(nullptr).run(bad_sources),
               std::invalid_argument);
}

TEST(Validation, ReportsAllUnknownKeysWithNearestNamesInOnePass) {
  ScenarioSpec spec;
  spec.set("name", "typos")
      .set("n", "100")
      .set("fanuot", "poisson(4)")
      .set("metrik", "reliability")
      .set("workload.mesages", "4");
  try {
    validate_spec_keys(spec);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    // One exception, all three typos, each with its nearest valid key.
    EXPECT_NE(what.find("'fanuot'"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean 'fanout'"), std::string::npos) << what;
    EXPECT_NE(what.find("'metrik'"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean 'metric'"), std::string::npos) << what;
    EXPECT_NE(what.find("'workload.mesages'"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean 'workload.messages'"),
              std::string::npos)
        << what;
  }
}

TEST(HottestForwarderKill, KillsExactlyTheTopForwardersAtTheScheduledTime) {
  // Drive the schedule against a mock context: 10 members, forwarding
  // counts 0,10,20,...; fraction 0.3 of the 9 alive non-source members
  // rounds to 3 kills — the three hottest (9, 8, 7), never the source 0.
  const std::uint32_t n = 10;
  std::vector<std::uint8_t> alive(n, 1);
  std::vector<std::pair<double, std::function<void()>>> actions;
  protocol::FailureContext context;
  context.num_nodes = n;
  context.source = 0;
  context.is_alive = [&](net::NodeId v) { return alive[v] != 0; };
  context.set_alive = [&](net::NodeId v, bool a) { alive[v] = a ? 1 : 0; };
  context.schedule_action = [&](double t, std::function<void()> action) {
    actions.emplace_back(t, std::move(action));
  };
  context.forwards_sent = [](net::NodeId v) {
    return static_cast<std::uint64_t>(v) * 10;
  };

  const auto schedule = hottest_forwarder_kill_schedule(0.3, 2.5);
  EXPECT_EQ(schedule->name(), "kill_hottest_forwarder(0.3,2.5)");
  auto rng = rng::RngStream(1);
  schedule->apply(context, rng);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].first, 2.5);
  actions[0].second();
  for (net::NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(alive[v] != 0, v < 7) << "node " << v;
  }
}

#ifdef GOSSIP_SCENARIOS_DIR
TEST(Workload, ScampChurnScenarioAnchorLiveRepairBeatsFrozenSnapshot) {
  // Acceptance gate: scenarios/scamp_churn.scn runs the same churn trace
  // over a frozen SCAMP snapshot (case 0) and live SCAMP views (case 1).
  // The paper's model assumes gossip targets are drawn from the CURRENT
  // membership; under churn a frozen snapshot wastes fanout on departed
  // members, so live repair must come out strictly more reliable. The
  // absolute values are pinned from the shipped spec (seed 23).
  const auto spec = ScenarioSpec::load(std::string(GOSSIP_SCENARIOS_DIR) +
                                       "/scamp_churn.scn");
  parallel::ThreadPool pool(4);
  const auto results = ScenarioRunner(&pool).run(spec);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_EQ(results[0].label, "view=scamp(2),dyn=none");
  ASSERT_EQ(results[1].label, "view=full,dyn=scamp-churn(2)");
  const double frozen = results[0].reliability.mean();
  const double live = results[1].reliability.mean();
  EXPECT_GT(live, frozen + 0.05)
      << "live SCAMP repair must beat the frozen snapshot under churn";
  EXPECT_NEAR(frozen, 0.7997, 0.04);
  EXPECT_NEAR(live, 0.9539, 0.04);
}

TEST(Workload, MultimsgChurnScenarioRunsEndToEndWithPinnedAnchor) {
  const auto spec = ScenarioSpec::load(std::string(GOSSIP_SCENARIOS_DIR) +
                                       "/multimsg_churn.scn");
  parallel::ThreadPool pool(8);
  const auto parallel_results = ScenarioRunner(&pool).run(spec);
  const auto serial = ScenarioRunner(nullptr).run(spec);
  ASSERT_EQ(parallel_results.size(), 1u);
  ASSERT_EQ(serial.size(), 1u);
  ASSERT_EQ(serial[0].workload_messages, 8u);
  ASSERT_EQ(serial[0].per_message_reliability.size(), 8u);
  for (std::size_t m = 0; m < 8; ++m) {
    EXPECT_EQ(parallel_results[0].per_message_reliability[m].mean(),
              serial[0].per_message_reliability[m].mean());
  }
  // Pinned from the shipped spec (seed 41): the workload mean, and the
  // churn signature — the pre-crash message 1 beats message 3, which was
  // injected right after the t=2 crash from possibly-departed sources.
  EXPECT_NEAR(serial[0].reliability.mean(), 0.7879, 0.04);
  EXPECT_NEAR(serial[0].per_message_reliability[0].mean(), 0.9394, 0.04);
  EXPECT_GT(serial[0].per_message_reliability[0].mean(),
            serial[0].per_message_reliability[2].mean() + 0.1);
}
#endif

}  // namespace
}  // namespace gossip::scenario
