/// Scenario-layer round tracing: the `trace =` key must aggregate
/// per-round trajectories bit-identically for any worker count, leave the
/// metric summaries untouched relative to an untraced run, pad extinct
/// rounds so every aggregate covers all replications, and be rejected by
/// the backends that have no rounds.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "parallel/thread_pool.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace gossip::scenario {
namespace {

ScenarioSpec traced_spec(const std::string& backend,
                         const std::string& trace) {
  ScenarioSpec spec;
  spec.set("name", "trace_" + backend)
      .set("n", "800")
      .set("backend", backend)
      .set("fanout", "poisson(4)")
      .set("failure", "crash(0.1)")
      .set("loss", "0.05")
      .set("repetitions", "12")
      .set("seed", "2008");
  if (!trace.empty()) spec.set("trace", trace);
  return spec;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ScenarioTrace, OffByDefault) {
  const auto results =
      ScenarioRunner(nullptr).run(traced_spec("flat", ""));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].trace, TraceMode::kOff);
  EXPECT_TRUE(results[0].round_trace.empty());
  EXPECT_EQ(results[0].trace_sends.count(), 0u);
  EXPECT_EQ(results[0].trace_informed_fraction.count(), 0u);
}

TEST(ScenarioTrace, TracedMetricsMatchUntracedBitForBit) {
  for (const char* backend : {"protocol", "flat"}) {
    const auto plain =
        ScenarioRunner(nullptr).run(traced_spec(backend, ""));
    const auto traced =
        ScenarioRunner(nullptr).run(traced_spec(backend, "rounds"));
    ASSERT_EQ(plain.size(), 1u);
    ASSERT_EQ(traced.size(), 1u);
    // Probes only observe: attaching them must not move a single bit of
    // the metric aggregates.
    EXPECT_EQ(traced[0].reliability.mean(), plain[0].reliability.mean())
        << backend;
    EXPECT_EQ(traced[0].reliability.variance(),
              plain[0].reliability.variance())
        << backend;
    EXPECT_EQ(traced[0].messages.mean(), plain[0].messages.mean())
        << backend;
    EXPECT_EQ(traced[0].success_count, plain[0].success_count) << backend;
    // The traced counters and the metric summaries describe the same runs.
    EXPECT_EQ(traced[0].trace_sends.mean(), plain[0].messages.mean())
        << backend;
  }
}

TEST(ScenarioTrace, RoundAggregatesBitIdenticalAcrossWorkerCounts) {
  for (const char* backend : {"protocol", "flat"}) {
    const auto spec = traced_spec(backend, "rounds");
    const auto serial = ScenarioRunner(nullptr).run(spec);
    ASSERT_EQ(serial.size(), 1u);
    ASSERT_FALSE(serial[0].round_trace.empty()) << backend;

    parallel::ThreadPool pool1(1);
    parallel::ThreadPool pool2(2);
    parallel::ThreadPool pool8(8);
    for (parallel::ThreadPool* pool : {&pool1, &pool2, &pool8}) {
      const auto results = ScenarioRunner(pool).run(spec);
      ASSERT_EQ(results.size(), 1u);
      const auto& a = serial[0].round_trace;
      const auto& b = results[0].round_trace;
      ASSERT_EQ(a.size(), b.size()) << backend;
      for (std::size_t r = 0; r < a.size(); ++r) {
        // Exact equality: replication r always folds in index order no
        // matter which worker ran it.
        EXPECT_EQ(a[r].sends.mean(), b[r].sends.mean()) << backend << " round " << r;
        EXPECT_EQ(a[r].newly_informed.mean(), b[r].newly_informed.mean())
            << backend << " round " << r;
        EXPECT_EQ(a[r].informed_fraction.mean(),
                  b[r].informed_fraction.mean())
            << backend << " round " << r;
        EXPECT_EQ(a[r].informed_fraction.variance(),
                  b[r].informed_fraction.variance())
            << backend << " round " << r;
      }
      EXPECT_EQ(results[0].trace_sends.mean(), serial[0].trace_sends.mean());
      EXPECT_EQ(results[0].trace_informed_fraction.variance(),
                serial[0].trace_informed_fraction.variance());
    }
  }
}

TEST(ScenarioTrace, ExtinctRoundsArePaddedToFullReplicationCount) {
  for (const char* backend : {"protocol", "flat"}) {
    const auto results =
        ScenarioRunner(nullptr).run(traced_spec(backend, "rounds"));
    ASSERT_EQ(results.size(), 1u);
    const auto& result = results[0];
    ASSERT_FALSE(result.round_trace.empty()) << backend;
    for (std::size_t r = 0; r < result.round_trace.size(); ++r) {
      EXPECT_EQ(result.round_trace[r].informed_fraction.count(),
                result.replications)
          << backend << " round " << r;
      EXPECT_EQ(result.round_trace[r].sends.count(), result.replications)
          << backend << " round " << r;
    }
    // Round 0 is the injection in every replication.
    EXPECT_EQ(result.round_trace[0].newly_informed.mean(), 1.0) << backend;
    EXPECT_EQ(result.round_trace[0].sends.mean(), 0.0) << backend;
    // The trajectory ends where the headline metric lives: with static
    // crashes the final informed fraction IS the reliability, folded in
    // the same replication order, so the aggregates are bitwise equal.
    EXPECT_EQ(result.round_trace.back().informed_fraction.mean(),
              result.reliability.mean())
        << backend;
    // The trajectory is monotone non-decreasing in the mean.
    for (std::size_t r = 1; r < result.round_trace.size(); ++r) {
      EXPECT_GE(result.round_trace[r].informed_fraction.mean(),
                result.round_trace[r - 1].informed_fraction.mean())
          << backend << " round " << r;
    }
  }
}

TEST(ScenarioTrace, CountersModeSkipsRoundTrajectories) {
  const auto results =
      ScenarioRunner(nullptr).run(traced_spec("flat", "counters"));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].trace, TraceMode::kCounters);
  EXPECT_TRUE(results[0].round_trace.empty());
  EXPECT_EQ(results[0].trace_sends.count(), results[0].replications);
  EXPECT_EQ(results[0].trace_informed_fraction.count(),
            results[0].replications);
  EXPECT_GT(results[0].trace_rounds.mean(), 0.0);
  EXPECT_GT(results[0].trace_losses.mean(), 0.0);        // loss = 0.05
  EXPECT_GT(results[0].trace_dead_receipts.mean(), 0.0); // crash(0.1)
}

TEST(ScenarioTrace, RoundlessBackendsRejectTraceRequests) {
  for (const char* backend : {"graph", "component"}) {
    ScenarioSpec spec;
    spec.set("name", "no_rounds")
        .set("n", "300")
        .set("backend", backend)
        .set("fanout", "poisson(4)")
        .set("failure", "crash(0.1)")
        .set("repetitions", "4")
        .set("seed", "7")
        .set("trace", "rounds");
    EXPECT_THROW((void)ScenarioRunner(nullptr).run(spec),
                 std::invalid_argument)
        << backend;
  }
}

TEST(ScenarioTrace, UnknownTraceModeIsRejected) {
  EXPECT_THROW(
      (void)ScenarioRunner(nullptr).run(traced_spec("flat", "verbose")),
      std::invalid_argument);
}

TEST(ScenarioTrace, TraceIsAKnownSpecKey) {
  const auto keys = known_spec_keys();
  EXPECT_NE(std::find(keys.begin(), keys.end(), "trace"), keys.end());
}

TEST(ScenarioTrace, TraceModeNames) {
  EXPECT_EQ(trace_mode_name(TraceMode::kOff), "off");
  EXPECT_EQ(trace_mode_name(TraceMode::kCounters), "counters");
  EXPECT_EQ(trace_mode_name(TraceMode::kRounds), "rounds");
}

TEST(ScenarioTrace, TraceCsvIdenticalAcrossWorkerCounts) {
  const auto spec = traced_spec("flat", "rounds");
  const auto serial = ScenarioRunner(nullptr).run(spec);
  parallel::ThreadPool pool8(8);
  const auto parallel_results = ScenarioRunner(&pool8).run(spec);

  const std::string path_a = testing::TempDir() + "/trace_serial.csv";
  const std::string path_b = testing::TempDir() + "/trace_pool.csv";
  write_trace_csv(path_a, serial);
  write_trace_csv(path_b, parallel_results);
  const std::string csv_a = slurp(path_a);
  const std::string csv_b = slurp(path_b);
  EXPECT_EQ(csv_a, csv_b);
  // One row per round plus the header.
  const auto lines = static_cast<std::size_t>(
      std::count(csv_a.begin(), csv_a.end(), '\n'));
  EXPECT_EQ(lines, serial[0].round_trace.size() + 1);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(ScenarioTrace, TraceCsvHeaderOnlyWithoutRoundTraces) {
  const auto results =
      ScenarioRunner(nullptr).run(traced_spec("flat", "counters"));
  const std::string path = testing::TempDir() + "/trace_empty.csv";
  write_trace_csv(path, results);
  const std::string csv = slurp(path);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1);
  EXPECT_NE(csv.find("informed_fraction_mean"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gossip::scenario
