/// ScenarioSpec: text parsing, programmatic composition, grid expansion,
/// and the parse/format round-trip contract that makes spec files and
/// in-code specs interchangeable.

#include <stdexcept>

#include <gtest/gtest.h>

#include "scenario/spec.hpp"

namespace gossip::scenario {
namespace {

TEST(ScenarioSpecParse, ReadsFieldsCommentsAndWhitespace) {
  const auto spec = ScenarioSpec::parse(
      "# a comment line\n"
      "name = demo   # trailing comment\n"
      "\n"
      "n       = 1000\n"
      "fanout  = poisson(4.0)\n");
  EXPECT_EQ(spec.name(), "demo");
  EXPECT_EQ(spec.get("n"), "1000");
  EXPECT_EQ(spec.get("fanout"), "poisson(4.0)");
  EXPECT_FALSE(spec.has("latency"));
  EXPECT_EQ(spec.get("latency", "constant(1)"), "constant(1)");
}

TEST(ScenarioSpecParse, SweepAxesExpandRangesAndLiterals) {
  const auto spec = ScenarioSpec::parse(
      "name = sweep\n"
      "sweep.z = range(1.0, 2.0, 0.5), 4.0\n"
      "sweep.mode = hubs, leaves\n");
  ASSERT_EQ(spec.axes().size(), 2u);
  EXPECT_EQ(spec.axes()[0].var, "z");
  EXPECT_EQ(spec.axes()[0].values,
            (std::vector<std::string>{"1", "1.5", "2", "4.0"}));
  EXPECT_EQ(spec.axes()[1].values,
            (std::vector<std::string>{"hubs", "leaves"}));
}

TEST(ScenarioSpecParse, RejectsMalformedInput) {
  EXPECT_THROW((void)ScenarioSpec::parse("just a line\n"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("n = \n"), std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("n = 1\nn = 2\n"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("sweep.z = range(2, 1, 0.5)\n"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("sweep.z = range(1, 2)\n"),
               std::invalid_argument);
  // Errors carry the offending line number.
  try {
    (void)ScenarioSpec::parse("name = ok\nbroken line\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ScenarioSpecFormat, RoundTripsThroughParse) {
  ScenarioSpec spec;
  spec.set("name", "round_trip")
      .set("n", "500")
      .set("fanout", "poisson($z)")
      .set("failure", "crash($f)+bursty_loss(0.5, 1, 2)")
      .add_axis("z", {"2", "4"})
      .add_axis("f", {"0.0", "0.1"});
  const auto reparsed = ScenarioSpec::parse(spec.format());
  EXPECT_EQ(spec, reparsed);
  // And format is a fixed point: format(parse(format(s))) == format(s).
  EXPECT_EQ(spec.format(), reparsed.format());
}

TEST(ScenarioSpecFormat, RoundTripsExplicitCases) {
  ScenarioSpec spec;
  spec.set("name", "cases")
      .set("fanout", "poisson($z)")
      .add_case({{"z", "2"}, {"mode", "hubs"}})
      .add_case({{"z", "4"}, {"mode", "leaves"}});
  const auto reparsed = ScenarioSpec::parse(spec.format());
  EXPECT_EQ(spec, reparsed);
  ASSERT_EQ(reparsed.cases().size(), 2u);
  EXPECT_EQ(reparsed.cases()[1][1].second, "leaves");
}

TEST(ScenarioSpecExpand, CartesianGridFirstAxisSlowest) {
  ScenarioSpec spec;
  spec.set("name", "grid")
      .set("fanout", "poisson($z)")
      .set("failure", "crash($f)")
      .add_axis("z", {"2", "4"})
      .add_axis("f", {"0.0", "0.1", "0.5"});
  const auto cases = spec.expand_cases();
  ASSERT_EQ(cases.size(), 6u);
  EXPECT_EQ(cases[0].label, "z=2,f=0.0");
  EXPECT_EQ(cases[1].label, "z=2,f=0.1");
  EXPECT_EQ(cases[3].label, "z=4,f=0.0");
  EXPECT_EQ(cases[4].fields.at("fanout"), "poisson(4)");
  EXPECT_EQ(cases[4].fields.at("failure"), "crash(0.1)");
  EXPECT_EQ(cases[5].index, 5u);
}

TEST(ScenarioSpecExpand, SingleCaseWhenNoGridIsDeclared) {
  ScenarioSpec spec;
  spec.set("name", "single").set("fanout", "poisson(4)");
  const auto cases = spec.expand_cases();
  ASSERT_EQ(cases.size(), 1u);
  EXPECT_EQ(cases[0].label, "-");
  EXPECT_TRUE(cases[0].bindings.empty());
}

TEST(ScenarioSpecExpand, RejectsUnknownVariablesAndMixedGrids) {
  ScenarioSpec dangling;
  dangling.set("name", "bad").set("fanout", "poisson($z)");
  EXPECT_THROW((void)dangling.expand_cases(), std::invalid_argument);

  ScenarioSpec mixed;
  mixed.set("name", "mixed")
      .set("fanout", "poisson($z)")
      .add_axis("z", {"2"})
      .add_case({{"z", "4"}});
  EXPECT_THROW((void)mixed.expand_cases(), std::invalid_argument);
}

TEST(ScenarioSpecExpand, DoubleDollarEscapesLiteralDollar) {
  ScenarioSpec spec;
  spec.set("name", "escape")
      .set("description", "cost per node: $$0.01 at z=$z")
      .add_case({{"z", "4"}});
  const auto cases = spec.expand_cases();
  EXPECT_EQ(cases[0].fields.at("description"), "cost per node: $0.01 at z=4");
}

TEST(ScenarioSpecFormat, UnnamedSpecRoundTripsWithoutGainingAName) {
  ScenarioSpec spec;
  spec.set("n", "100").set("fanout", "poisson(4)");
  EXPECT_FALSE(spec.has("name"));
  EXPECT_EQ(spec.name(), "scenario");  // the default, not a stored field
  const auto reparsed = ScenarioSpec::parse(spec.format());
  EXPECT_EQ(spec, reparsed);
}

TEST(ScenarioSpecCompose, RejectsValuesTheTextFormatCannotRepresent) {
  ScenarioSpec spec;
  EXPECT_THROW(spec.set("description", "50% loss # worst case"),
               std::invalid_argument);
  EXPECT_THROW(spec.set("description", "two\nlines"), std::invalid_argument);
  EXPECT_THROW(spec.add_axis("z", {"1", "2#3"}), std::invalid_argument);
  EXPECT_THROW(spec.add_case({{"z", "4\r5"}}), std::invalid_argument);
  EXPECT_THROW(spec.add_case({{"bad var", "4"}}), std::invalid_argument);
  // 'case' is a reserved key in the text format.
  EXPECT_THROW(spec.set("case", "z=1"), std::invalid_argument);
}

TEST(ScenarioSpecCompose, NormalizesWhitespaceLikeParse) {
  // set() trims exactly as parse() does, so programmatic and parsed specs
  // compare equal and parse(format()) stays exact.
  ScenarioSpec spec;
  spec.set(" n ", " 100 ");
  EXPECT_EQ(spec.get("n"), "100");
  EXPECT_EQ(spec, ScenarioSpec::parse(spec.format()));
  EXPECT_THROW(spec.set("n", "   "), std::invalid_argument);
}

TEST(ScenarioSpecParse, RejectsEmptySweepValues) {
  EXPECT_THROW((void)ScenarioSpec::parse("sweep.z = 1, 2,\n"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("sweep.z = 1,, 2\n"),
               std::invalid_argument);
  ScenarioSpec spec;
  EXPECT_THROW(spec.add_axis("z", {"1", ""}), std::invalid_argument);
}

TEST(ScenarioSpecExpand, SubstitutesMultipleReferencesPerField) {
  ScenarioSpec spec;
  spec.set("name", "multi")
      .set("failure", "midrun_crash(0.4, $lo, $hi)")
      .add_case({{"lo", "1.0"}, {"hi", "2.0"}});
  const auto cases = spec.expand_cases();
  EXPECT_EQ(cases[0].fields.at("failure"), "midrun_crash(0.4, 1.0, 2.0)");
}

TEST(ScenarioSpecHelpers, SplitTopLevelRespectsParentheses) {
  EXPECT_EQ(split_top_level("a, b(c, d), e", ','),
            (std::vector<std::string>{"a", "b(c, d)", "e"}));
  EXPECT_TRUE(split_top_level("   ", ',').empty());
  EXPECT_EQ(split_top_level("x,", ',').size(), 2u);  // trailing empty piece
}

TEST(ScenarioSpecParse, DottedFieldKeysParseFormatAndSubstitute) {
  const auto spec = ScenarioSpec::parse(
      "name = w\n"
      "workload.messages = 4\n"
      "membership.dynamics = scamp-churn($c)\n"
      "sweep.c = 1, 2\n");
  EXPECT_EQ(spec.get("workload.messages"), "4");
  EXPECT_EQ(ScenarioSpec::parse(spec.format()), spec);
  const auto cases = spec.expand_cases();
  ASSERT_EQ(cases.size(), 2u);
  EXPECT_EQ(cases[1].fields.at("membership.dynamics"), "scamp-churn(2)");

  // Dots split identifiers; they do not relax the identifier rule, and the
  // sweep prefix stays reserved.
  EXPECT_THROW((void)ScenarioSpec().set(".x", "1"), std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec().set("a..b", "1"), std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec().set("a.", "1"), std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec().set("sweep.z", "1"),
               std::invalid_argument);
}

TEST(ScenarioSpecHelpers, EditDistanceAndNearestName) {
  EXPECT_EQ(edit_distance("fanout", "fanout"), 0u);
  EXPECT_EQ(edit_distance("fanuot", "fanout"), 2u);  // transposition = 2 ops
  EXPECT_EQ(edit_distance("", "abc"), 3u);
  EXPECT_EQ(nearest_name("fanuot", {"fanout", "failure", "metric"}),
            "fanout");
  // Nothing plausibly close: no suggestion rather than a misleading one.
  EXPECT_EQ(nearest_name("zzzzzzzz", {"fanout", "failure"}), "");
}

TEST(ScenarioSpecHelpers, StrictNumericParses) {
  EXPECT_DOUBLE_EQ(to_double(" 2.5 ", "x"), 2.5);
  EXPECT_DOUBLE_EQ(to_double("+0.25", "x"), 0.25);
  EXPECT_DOUBLE_EQ(to_double("1e3", "x"), 1000.0);
  EXPECT_EQ(to_u32("1000", "n"), 1000u);
  EXPECT_EQ(to_u64("98765432100", "seed"), 98765432100ULL);
  EXPECT_EQ(to_u64("18446744073709551615", "seed"),
            18446744073709551615ULL);  // exactly 2^64 - 1
  EXPECT_THROW((void)to_double("2.5abc", "x"), std::invalid_argument);
  EXPECT_THROW((void)to_u32("-3", "n"), std::invalid_argument);
  EXPECT_THROW((void)to_u32("5000000000", "n"), std::invalid_argument);
  EXPECT_THROW((void)to_u64("abc", "seed"), std::invalid_argument);
}

TEST(ScenarioSpecHelpers, NumericParsesRejectPartialTokens) {
  // Every character of the value must parse; a numeric prefix followed by
  // junk is a spec error, never a silent truncation to the prefix.
  EXPECT_THROW((void)to_u64("4abc", "fanout"), std::invalid_argument);
  EXPECT_THROW((void)to_u32("10 20", "n"), std::invalid_argument);
  EXPECT_THROW((void)to_double("1.5.2", "x"), std::invalid_argument);
  EXPECT_THROW((void)to_double("0x10", "x"), std::invalid_argument);
  EXPECT_THROW((void)to_double("", "x"), std::invalid_argument);
  EXPECT_THROW((void)to_double("+", "x"), std::invalid_argument);
  EXPECT_THROW((void)to_u64("", "seed"), std::invalid_argument);
  EXPECT_THROW((void)to_u64("+", "seed"), std::invalid_argument);
  EXPECT_THROW((void)to_u64("1.5", "seed"), std::invalid_argument);
}

TEST(ScenarioSpecHelpers, NumericParsesRejectOverflow) {
  // 2^64 exactly one past the representable max, and a double exponent far
  // beyond the format: both must throw, not saturate or wrap.
  EXPECT_THROW((void)to_u64("18446744073709551616", "seed"),
               std::invalid_argument);
  EXPECT_THROW((void)to_u64("99999999999999999999999", "seed"),
               std::invalid_argument);
  EXPECT_THROW((void)to_double("1e999", "x"), std::invalid_argument);
  EXPECT_THROW((void)to_double("-1e999", "x"), std::invalid_argument);
}

TEST(ScenarioSpecHelpers, NumericParsesAreLocaleIndependent) {
  // std::from_chars always uses '.' as the decimal separator, regardless of
  // the global C locale — the comma form must be rejected whole, not
  // prefix-parsed as "3".
  EXPECT_DOUBLE_EQ(to_double("3.5", "x"), 3.5);
  EXPECT_THROW((void)to_double("3,5", "x"), std::invalid_argument);
}

}  // namespace
}  // namespace gossip::scenario
