/// Acceptance anchor for the round-trace telemetry: the shipped
/// scenarios/fig4a_trace.scn runs the SAME Fig. 4(a) operating point
/// (n = 1000, Poisson(4) fanout, 10% static crashes) through both
/// round-structured backends with trace = rounds, and the trajectories
/// must land on the pinned paper anchor — final informed fraction
/// ~0.9695 — with the two engines agreeing with each other.

#include <cmath>

#include <gtest/gtest.h>

#include "parallel/thread_pool.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace gossip::scenario {
namespace {

#ifdef GOSSIP_SCENARIOS_DIR

constexpr double kFig4aAnchor = 0.9695;  // Paper Fig. 4(a) at z=4, f=0.1.

TEST(TraceAnchor, Fig4aTrajectoriesHitThePinnedAnchorOnBothBackends) {
  const auto spec = ScenarioSpec::load(std::string(GOSSIP_SCENARIOS_DIR) +
                                       "/fig4a_trace.scn");
  parallel::ThreadPool pool(4);
  const auto results = ScenarioRunner(&pool).run(spec);
  ASSERT_EQ(results.size(), 2u);  // sweep.b = protocol, flat

  double final_fraction[2] = {0.0, 0.0};
  for (std::size_t c = 0; c < results.size(); ++c) {
    const auto& result = results[c];
    EXPECT_EQ(result.trace, TraceMode::kRounds) << result.label;
    ASSERT_FALSE(result.round_trace.empty()) << result.label;

    // The trajectory's endpoint IS the reliability estimate.
    const double fraction =
        result.round_trace.back().informed_fraction.mean();
    EXPECT_EQ(fraction, result.reliability.mean()) << result.label;
    EXPECT_NEAR(fraction, kFig4aAnchor, 0.03) << result.label;
    final_fraction[c] = fraction;

    // Epidemic shape: one source, monotone growth, most of the group
    // reached within the logarithmic round horizon.
    EXPECT_EQ(result.round_trace[0].newly_informed.mean(), 1.0);
    for (std::size_t r = 1; r < result.round_trace.size(); ++r) {
      EXPECT_GE(result.round_trace[r].informed_fraction.mean(),
                result.round_trace[r - 1].informed_fraction.mean())
          << result.label << " round " << r;
    }
    EXPECT_LE(result.round_trace.size(), 40u) << result.label;
  }

  // The flat engine is the DES's statistical twin in this regime.
  EXPECT_NEAR(final_fraction[0], final_fraction[1], 0.03);
}

#else
TEST(TraceAnchor, DISABLED_NoScenariosDir) {}
#endif

}  // namespace
}  // namespace gossip::scenario
