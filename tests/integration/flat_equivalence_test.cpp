/// Statistical equivalence of the flat struct-of-arrays engine
/// (protocol/flat_gossip.hpp) with the message-level DES reference on the
/// paper's pinned operating points, plus the million-node smoke run the
/// hot path exists for.
///
/// Both Fig. 4 (n = 1000) and Fig. 5 (n = 5000) sit on z*q = 3.6 with
/// Poisson(4) fanout and q = 0.9, where the model predicts S ~ 0.9695. The
/// flat engine draws fanouts through the quantized 8.8 LUT, so it realizes
/// a pmf within ~2^-8 of Poisson(4) per outcome — equivalent within the
/// Monte Carlo tolerance used throughout this suite, not bit-identical to
/// the reference (its own determinism is pinned in flat_gossip_test.cpp).

#include <gtest/gtest.h>

#include "core/degree_distribution.hpp"
#include "core/reliability_model.hpp"
#include "experiment/monte_carlo.hpp"
#include "protocol/flat_gossip.hpp"

namespace gossip {
namespace {

constexpr double kHeadlineReliability = 0.9695;  // S at z*q = 3.6

protocol::FlatGossipParams flat_params(std::uint64_t n, double z, double q) {
  protocol::FlatGossipParams p;
  p.num_nodes = n;
  p.source = 0;
  p.nonfailed_ratio = q;
  p.fanout = core::poisson_fanout(z);
  return p;
}

TEST(FlatEquivalence, MatchesHeadlineReliabilityAtFig4Anchor) {
  // Fig. 4 operating point: n = 1000, Poisson(4), q = 0.9. Same seed,
  // replication count, and tolerance as the reference-path anchor test in
  // paper_figures_test.cpp.
  experiment::MonteCarloOptions options;
  options.replications = 60;
  options.seed = 2008;
  const auto estimate = experiment::estimate_reliability_flat(
      flat_params(1000, 4.0, 0.9), options);
  EXPECT_NEAR(estimate.mean_reliability(), kHeadlineReliability, 0.03);
}

TEST(FlatEquivalence, MatchesDesReferenceAtFig4Anchor) {
  // Flat vs DES on identical {n, z, q}: independent seeds, so the contrast
  // is purely statistical — two estimators of the same quantity.
  experiment::MonteCarloOptions options;
  options.replications = 60;
  options.seed = 2008;
  const auto flat = experiment::estimate_reliability_flat(
      flat_params(1000, 4.0, 0.9), options);

  protocol::GossipParams ref;
  ref.num_nodes = 1000;
  ref.source = 0;
  ref.nonfailed_ratio = 0.9;
  ref.fanout = core::poisson_fanout(4.0);
  const auto des = experiment::estimate_reliability_protocol(ref, options);

  EXPECT_NEAR(flat.mean_reliability(), des.mean_reliability(), 0.03);
  // Message volume per execution must agree too: both paths send one
  // message per selected target, n*z in expectation.
  EXPECT_NEAR(flat.messages.mean() / des.messages.mean(), 1.0, 0.05);
}

TEST(FlatEquivalence, MatchesHeadlineReliabilityAtFig5Anchor) {
  // Fig. 5 operating point: n = 5000, same z*q = 3.6. Successful cascades
  // concentrate tightly around S at this n, but the mean still includes the
  // ~3% of executions where the cascade dies out near the source, so the
  // tolerance stays at the suite-wide 0.03 anchor convention.
  experiment::MonteCarloOptions options;
  options.replications = 40;
  options.seed = 2008;
  const auto estimate = experiment::estimate_reliability_flat(
      flat_params(5000, 4.0, 0.9), options);
  EXPECT_NEAR(estimate.mean_reliability(), kHeadlineReliability, 0.03);
}

TEST(FlatEquivalence, MillionNodeReplicationCompletes) {
  // The tentpole smoke run: one full replication at n = 10^6 with the
  // paper's Fig. 4 parameters, inside CI time and a bounded workspace. At
  // this scale a single execution concentrates hard around S.
  protocol::FlatGossipEngine engine(flat_params(1'000'000, 4.0, 0.9));
  EXPECT_LE(engine.workspace_bytes(), 16u * 1024 * 1024);
  rng::RngStream rng(2008);
  const auto result = engine.run_once(rng);
  EXPECT_EQ(result.num_nodes, 1'000'000u);
  EXPECT_NEAR(static_cast<double>(result.nonfailed_count), 900'000.0,
              3'000.0);
  EXPECT_NEAR(result.reliability, kHeadlineReliability, 0.01);
  EXPECT_GT(result.messages_sent, 1'000'000u);  // ~ n*z sends
  EXPECT_GT(result.rounds, 5u);                 // ~ log n generations
}

TEST(FlatEquivalence, LossFoldsIntoEffectiveFanoutLikeTheModel) {
  // I.i.d. loss p thins every edge independently, so S(z, q, loss) should
  // track the model's S(z*(1-loss), q). Paper Section 6 extension regime.
  experiment::MonteCarloOptions options;
  options.replications = 40;
  options.seed = 7;
  auto p = flat_params(2000, 5.0, 0.9);
  p.loss_probability = 0.2;
  const auto estimate = experiment::estimate_reliability_flat(p, options);
  const double predicted = core::poisson_reliability(5.0 * 0.8, 0.9);
  EXPECT_NEAR(estimate.mean_reliability(), predicted, 0.03);
}

}  // namespace
}  // namespace gossip
