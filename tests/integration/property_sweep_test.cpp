/// Property sweeps across the whole model surface: bounds, monotonicity,
/// duality and round-trip identities that must hold for EVERY operating
/// point, parameterized over a grid of fanout distributions and failure
/// ratios.

#include <cmath>

#include <gtest/gtest.h>

#include "core/branching.hpp"
#include "core/fanout_planner.hpp"
#include "core/percolation.hpp"
#include "core/reliability_model.hpp"
#include "core/success_model.hpp"
#include "experiment/monte_carlo.hpp"

namespace gossip {
namespace {

struct SweepPoint {
  core::DegreeDistributionPtr dist;
  double q;
};

class ModelPropertySweep : public ::testing::TestWithParam<SweepPoint> {
 protected:
  [[nodiscard]] static core::GeneratingFunction gf_of(const SweepPoint& p) {
    return core::GeneratingFunction::from_distribution(*p.dist);
  }
};

TEST_P(ModelPropertySweep, PercolationOutputsAreWithinBounds) {
  const auto& p = GetParam();
  const auto gf = gf_of(p);
  const auto result = core::analyze_site_percolation(gf, p.q);
  EXPECT_GE(result.reliability, 0.0);
  EXPECT_LE(result.reliability, 1.0);
  EXPECT_GE(result.giant_fraction_all, 0.0);
  EXPECT_LE(result.giant_fraction_all, p.q + 1e-12);
  EXPECT_GE(result.u, 0.0);
  EXPECT_LE(result.u, 1.0);
  // u must actually solve its self-consistency condition.
  if (gf.mean() > 0.0) {
    EXPECT_NEAR(result.u, 1.0 - p.q + p.q * gf.g1(result.u), 1e-6);
  }
}

TEST_P(ModelPropertySweep, SupercriticalityIsConsistent) {
  const auto& p = GetParam();
  const auto gf = gf_of(p);
  const auto result = core::analyze_site_percolation(gf, p.q);
  if (result.supercritical) {
    EXPECT_GT(result.reliability, 0.0);
  } else {
    EXPECT_LT(result.reliability, 0.05);  // finite tolerance near q_c
  }
  EXPECT_EQ(result.supercritical, p.q > result.critical_q);
}

TEST_P(ModelPropertySweep, DirectedAnalysisIsWithinBounds) {
  const auto& p = GetParam();
  const auto gf = gf_of(p);
  const auto directed = core::analyze_directed_gossip(gf, p.q);
  EXPECT_GE(directed.takeoff_probability, 0.0);
  EXPECT_LE(directed.takeoff_probability, 1.0);
  EXPECT_GE(directed.member_reach_given_takeoff, 0.0);
  EXPECT_LE(directed.member_reach_given_takeoff, 1.0);
  EXPECT_LE(directed.expected_delivery,
            directed.takeoff_probability + 1e-12);
  // Extinction solves its fixed point.
  EXPECT_NEAR(directed.extinction_probability,
              gf.g0(1.0 - p.q + p.q * directed.extinction_probability), 1e-6);
}

TEST_P(ModelPropertySweep, DirectedAndComponentThresholdsAreDistinct) {
  // The two metrics live on DIFFERENT random graphs and have different
  // thresholds: the component metric (the paper's configuration model with
  // degree = fanout) becomes positive when q * G1'(1) > 1; the directed
  // delivery becomes positive when q * mean_fanout > 1 (in-edges arrive on
  // top of the drawn out-edges). They coincide for Poisson fanout, where
  // G1'(1) = mean. Check each against its own threshold.
  const auto& p = GetParam();
  const auto gf = gf_of(p);
  const auto component = core::analyze_site_percolation(gf, p.q);
  const auto directed = core::analyze_directed_gossip(gf, p.q);
  if (p.q * gf.mean_excess_degree() > 1.05) {
    EXPECT_GT(component.reliability, 0.0) << p.dist->name();
  }
  if (p.q * gf.mean() > 1.05) {
    EXPECT_GT(directed.expected_delivery, 0.0) << p.dist->name();
  } else if (p.q * gf.mean() < 0.95) {
    EXPECT_NEAR(directed.expected_delivery, 0.0, 1e-4) << p.dist->name();
  }
}

TEST(MetricDivergence, FixedFanoutTwoDeliversWhereComponentModelSaysNever) {
  // Reproduction finding (see DESIGN.md): with fixed fanout k = 2 the
  // paper's configuration-model reliability is 0 for EVERY q < 1
  // (q_c = 1/(k-1) = 1: degree-2 graphs are unions of cycles), yet the
  // actual directed protocol delivers to a macroscopic fraction as soon as
  // q*k > 1, because targets also RECEIVE edges beyond their own fanout.
  const auto gf = core::GeneratingFunction::from_distribution(
      *core::fixed_fanout(2));
  const double q = 0.8;
  const auto component = core::analyze_site_percolation(gf, q);
  const auto directed = core::analyze_directed_gossip(gf, q);
  EXPECT_NEAR(component.reliability, 0.0, 1e-4);
  EXPECT_GT(directed.expected_delivery, 0.5);

  // And the directed prediction matches the protocol-equivalent Monte Carlo.
  experiment::MonteCarloOptions opt;
  opt.replications = 200;
  opt.seed = 91;
  const auto est = experiment::estimate_reliability_graph(
      1500, *core::fixed_fanout(2), q, opt);
  EXPECT_NEAR(est.mean_reliability(), directed.expected_delivery, 0.05);
}

TEST_P(ModelPropertySweep, OccupancyGeneralizationAgreesAtUniformQ) {
  const auto& p = GetParam();
  const auto gf = gf_of(p);
  const auto scalar = core::analyze_site_percolation(gf, p.q);
  const double q = p.q;
  const auto general = core::analyze_occupancy_percolation(
      gf, [q](std::int64_t) { return q; });
  EXPECT_NEAR(general.reliability, scalar.reliability, 1e-6);
}

TEST_P(ModelPropertySweep, ReliabilityIsMonotoneInOccupancy) {
  const auto& p = GetParam();
  const auto gf = gf_of(p);
  const double lower_q = std::max(0.05, p.q - 0.2);
  const auto at_q = core::analyze_site_percolation(gf, p.q);
  const auto at_lower = core::analyze_site_percolation(gf, lower_q);
  EXPECT_GE(at_q.reliability, at_lower.reliability - 1e-9);
}

TEST_P(ModelPropertySweep, SuccessModelRoundTrips) {
  const auto& p = GetParam();
  const auto gf = gf_of(p);
  const double r = core::analyze_site_percolation(gf, p.q).reliability;
  if (r <= 0.0) return;  // subcritical: no finite t exists
  for (const double target : {0.9, 0.999}) {
    const auto t = core::required_executions(r, target);
    EXPECT_GE(core::success_probability(r, t), target);
    if (t > 0) {
      EXPECT_LT(core::success_probability(r, t - 1), target);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelPropertySweep,
    ::testing::Values(
        SweepPoint{core::poisson_fanout(1.2), 0.5},
        SweepPoint{core::poisson_fanout(4.0), 0.15},
        SweepPoint{core::poisson_fanout(4.0), 0.9},
        SweepPoint{core::poisson_fanout(8.0), 0.4},
        SweepPoint{core::fixed_fanout(2), 0.8},
        SweepPoint{core::fixed_fanout(6), 0.3},
        SweepPoint{core::geometric_fanout(3.0), 0.25},
        SweepPoint{core::geometric_fanout(5.0), 0.9},
        SweepPoint{core::uniform_fanout(0, 6), 0.7},
        SweepPoint{core::uniform_fanout(2, 10), 0.2},
        SweepPoint{core::binomial_fanout(10, 0.4), 0.6},
        SweepPoint{core::zipf_fanout(32, 1.3), 0.8},
        SweepPoint{core::empirical_fanout({0.3, 0.2, 0.2, 0.1, 0.2}), 0.9}));

TEST(PlannerPropertySweep, PlansAreFeasibleAcrossTheGrid) {
  for (const double target : {0.5, 0.9, 0.99, 0.9999}) {
    for (const double q : {0.2, 0.5, 0.8, 1.0}) {
      core::PlanRequest req;
      req.target_reliability = target;
      req.nonfailed_ratio = q;
      req.target_success = 0.999;
      const auto plan = core::plan_poisson_gossip(req);
      EXPECT_GE(plan.predicted_reliability, target - 1e-9)
          << "S=" << target << " q=" << q;
      EXPECT_GE(plan.predicted_success, 0.999) << "S=" << target << " q=" << q;
      EXPECT_GT(plan.failure_margin, 0.0) << "S=" << target << " q=" << q;
      // Round trip through the closed forms.
      EXPECT_NEAR(core::poisson_reliability(plan.mean_fanout, q), target,
                  1e-6);
    }
  }
}

TEST(PlannerPropertySweep, FanoutIsMonotoneInTargetAndFailures) {
  double prev = 0.0;
  for (const double target : {0.3, 0.6, 0.9, 0.99, 0.999}) {
    core::PlanRequest req;
    req.target_reliability = target;
    req.nonfailed_ratio = 0.7;
    const double z = core::plan_poisson_gossip(req).mean_fanout;
    EXPECT_GT(z, prev);
    prev = z;
  }
  prev = 0.0;
  for (const double failures : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    core::PlanRequest req;
    req.target_reliability = 0.95;
    req.nonfailed_ratio = 1.0 - failures;
    const double z = core::plan_poisson_gossip(req).mean_fanout;
    EXPECT_GT(z, prev);
    prev = z;
  }
}

TEST(DualityPropertySweep, PoissonTakeoffEqualsReachEqualsS) {
  // The Poisson self-duality: forward extinction and backward reach solve
  // the same equation, both equal to Eq. (11)'s S.
  for (double z = 1.2; z <= 9.0; z += 0.6) {
    for (const double q : {0.3, 0.6, 1.0}) {
      if (z * q <= 1.05) continue;
      const auto gf = core::GeneratingFunction::from_distribution(
          *core::poisson_fanout(z));
      const auto d = core::analyze_directed_gossip(gf, q);
      const double s = core::poisson_reliability(z, q);
      EXPECT_NEAR(d.takeoff_probability, s, 1e-5) << z << " " << q;
      EXPECT_NEAR(d.member_reach_given_takeoff, s, 1e-5) << z << " " << q;
    }
  }
}

}  // namespace
}  // namespace gossip
