/// Cross-run reproducibility: the same master seed must yield bit-identical
/// Monte Carlo estimates on repeated runs and across worker counts, and
/// substream derivation must hand out decorrelated, non-colliding streams.
/// This is the contract that makes every figure in the paper reproducible
/// from a single recorded seed.

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/degree_distribution.hpp"
#include "experiment/monte_carlo.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/rng_stream.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace gossip {
namespace {

experiment::ReliabilityEstimate run_estimate(std::uint64_t seed,
                                             parallel::ThreadPool* pool) {
  experiment::MonteCarloOptions options;
  options.replications = 24;
  options.seed = seed;
  options.pool = pool;
  return experiment::estimate_reliability_graph(
      500, *core::poisson_fanout(4.0), 0.9, options);
}

TEST(Determinism, RepeatedRunsAreBitIdentical) {
  const auto first = run_estimate(12345, nullptr);
  const auto second = run_estimate(12345, nullptr);
  // Exact equality, not EXPECT_NEAR: replication i always derives
  // substream(seed, i), so the estimates must agree to the last bit.
  EXPECT_EQ(first.reliability.mean(), second.reliability.mean());
  EXPECT_EQ(first.reliability.variance(), second.reliability.variance());
  EXPECT_EQ(first.messages.mean(), second.messages.mean());
  EXPECT_EQ(first.success_count, second.success_count);
  EXPECT_EQ(first.replications, second.replications);
}

TEST(Determinism, EstimateIsIdenticalAcrossWorkerCounts) {
  const auto serial = run_estimate(777, nullptr);
  parallel::ThreadPool pool2(2);
  const auto parallel2 = run_estimate(777, &pool2);
  parallel::ThreadPool pool4(4);
  const auto parallel4 = run_estimate(777, &pool4);
  EXPECT_EQ(serial.reliability.mean(), parallel2.reliability.mean());
  EXPECT_EQ(serial.reliability.mean(), parallel4.reliability.mean());
  EXPECT_EQ(serial.messages.mean(), parallel2.messages.mean());
  EXPECT_EQ(serial.success_count, parallel2.success_count);
  EXPECT_EQ(serial.success_count, parallel4.success_count);
}

TEST(Determinism, ScenarioRunnerIsBitIdenticalAcross1To8Workers) {
  // Same contract as the raw Monte Carlo above, one layer up: a scenario
  // grid mixing protocol-backend failure schedules with a graph-backend
  // case must aggregate identically for 1, 2, and 8 workers (and serial),
  // because every (case, replication) task derives its own substream.
  scenario::ScenarioSpec spec;
  spec.set("name", "determinism")
      .set("n", "250")
      .set("backend", "$b")
      .set("fanout", "poisson(4)")
      .set("failure", "$f")
      .set("repetitions", "12")
      .set("seed", "777");
  // Two protocol cases with identical parameters (they must also produce
  // identical series) interleaved with a graph case, so the runner's
  // heterogeneous-backend result ordering is exercised too.
  const std::string schedules =
      "crash(0.1)+churn(crash@1:0.2)+bursty_loss(0.5, 0, 2)";
  spec.add_case({{"b", "protocol"}, {"f", schedules}})
      .add_case({{"b", "graph"}, {"f", "crash(0.1)"}})
      .add_case({{"b", "protocol"}, {"f", schedules}});

  const auto serial = scenario::ScenarioRunner(nullptr).run(spec);
  ASSERT_EQ(serial.size(), 3u);
  EXPECT_EQ(serial[0].reliability.mean(), serial[2].reliability.mean());
  EXPECT_NE(serial[0].reliability.mean(), serial[1].reliability.mean());

  for (const std::size_t workers : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(workers);
    const auto parallel_results = scenario::ScenarioRunner(&pool).run(spec);
    ASSERT_EQ(parallel_results.size(), serial.size());
    for (std::size_t c = 0; c < serial.size(); ++c) {
      EXPECT_EQ(parallel_results[c].reliability.mean(),
                serial[c].reliability.mean())
          << "workers=" << workers << " case=" << c;
      EXPECT_EQ(parallel_results[c].reliability.variance(),
                serial[c].reliability.variance());
      EXPECT_EQ(parallel_results[c].messages.mean(),
                serial[c].messages.mean());
      EXPECT_EQ(parallel_results[c].success_count, serial[c].success_count);
    }
  }
}

TEST(Determinism, DifferentSeedsProduceDifferentSamples) {
  const auto a = run_estimate(1, nullptr);
  const auto b = run_estimate(2, nullptr);
  EXPECT_NE(a.reliability.mean(), b.reliability.mean());
}

TEST(Determinism, SubstreamDerivationIsStableAndOrderIndependent) {
  const rng::RngStream root(9001);
  auto child_a = root.substream(7);
  auto child_b = root.substream(7);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(child_a(), child_b()) << "draw " << i;
  }

  // Derivation must not depend on how much the parent has been consumed.
  rng::RngStream advanced(9001);
  for (int i = 0; i < 1000; ++i) {
    (void)advanced();
  }
  auto child_c = root.substream(11);
  auto child_d = advanced.substream(11);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(child_c(), child_d()) << "draw " << i;
  }
}

TEST(Determinism, IndependentSubstreamsDoNotCollide) {
  // 4096 substreams x 16 draws: any repeated 64-bit value across streams
  // would signal overlapping state trajectories (probability ~ 2^-40 for
  // honest independent draws).
  const rng::RngStream root(42);
  std::set<std::uint64_t> seen;
  constexpr int kStreams = 4096;
  constexpr int kDraws = 16;
  for (int s = 0; s < kStreams; ++s) {
    auto child = root.substream(static_cast<std::uint64_t>(s));
    for (int d = 0; d < kDraws; ++d) {
      seen.insert(child());
    }
  }
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kStreams) * static_cast<std::size_t>(kDraws));
}

TEST(Determinism, SubstreamsDecorrelateFromParentAndSiblings) {
  const rng::RngStream root(2026);
  auto parent = root;
  auto s0 = root.substream(0);
  auto s1 = root.substream(1);
  int equal_to_parent = 0;
  int equal_between_siblings = 0;
  for (int i = 0; i < 256; ++i) {
    const auto p = parent();
    const auto a = s0();
    const auto b = s1();
    equal_to_parent += (p == a);
    equal_between_siblings += (a == b);
  }
  EXPECT_EQ(equal_to_parent, 0);
  EXPECT_EQ(equal_between_siblings, 0);
}

}  // namespace
}  // namespace gossip
