/// Regression suite pinning the headline numbers behind paper Figs. 2-7 so
/// later refactors of the model stack cannot silently drift the published
/// operating points. Each figure's anchor values are asserted against the
/// closed forms (Eqs. 5, 6, 10-12) and, for Figs. 4-5, cross-checked with
/// the seeded graph-backend Monte Carlo.

#include <algorithm>
#include <cmath>
#include <iterator>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/degree_distribution.hpp"
#include "core/reliability_model.hpp"
#include "core/success_model.hpp"
#include "experiment/monte_carlo.hpp"

namespace gossip {
namespace {

// Section 5.2's shared operating point: {f=4, q=0.9} and {f=6, q=0.6} both
// give z*q = 3.6, whose Eq. 11 fixed point is S ~ 0.9695.
constexpr double kHeadlineReliability = 0.9695;

TEST(PaperFig2, RequiredFanoutMatchesEq12Anchors) {
  // z = -ln(1-S)/(qS). Anchors from the Fig. 2 curves' extremes.
  EXPECT_NEAR(core::poisson_required_fanout(0.9999, 1.0),
              -std::log(1.0 - 0.9999) / 0.9999, 1e-9);
  EXPECT_NEAR(core::poisson_required_fanout(0.9999, 1.0), 9.2113, 1e-3);
  // Halving q doubles the required fanout at fixed S.
  const double z_q10 = core::poisson_required_fanout(0.95, 1.0);
  const double z_q05 = core::poisson_required_fanout(0.95, 0.5);
  EXPECT_NEAR(z_q05, 2.0 * z_q10, 1e-9);
}

TEST(PaperFig2, RequiredFanoutRoundTripsThroughEq11) {
  for (const double q : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    for (const double s : {0.1111, 0.5, 0.9, 0.9911, 0.9999}) {
      const double z = core::poisson_required_fanout(s, q);
      EXPECT_NEAR(core::poisson_reliability(z, q), s, 1e-6)
          << "S=" << s << " q=" << q;
    }
  }
}

TEST(PaperFig3, MinimumExecutionsForSuccess999) {
  // Eq. 6 at the Section 5.2 spot checks: R = 0.9695 needs t = 2 executions
  // for p_s = 0.999; the slightly weaker R = 0.967 already needs t = 3.
  EXPECT_EQ(core::required_executions(kHeadlineReliability, 0.999), 2);
  EXPECT_EQ(core::required_executions(0.967, 0.999), 3);
  // Low-reliability end of the Fig. 3 curve: R = 0.2 needs 31 executions.
  EXPECT_EQ(core::required_executions(0.2, 0.999),
            static_cast<std::int64_t>(
                std::ceil(std::log(1.0 - 0.999) / std::log(1.0 - 0.2))));
  // Minimality: one execution fewer must miss the target.
  for (const double r : {0.2, 0.5, 0.9, kHeadlineReliability}) {
    const auto t = core::required_executions(r, 0.999);
    EXPECT_GE(core::success_probability(r, t), 0.999);
    EXPECT_LT(core::success_probability(r, t - 1), 0.999);
  }
}

TEST(PaperFig4And5, HeadlineReliabilityAtFq36) {
  // Both Fig. 4/5 operating points sit on z*q = 3.6 and share S ~ 0.9695.
  EXPECT_NEAR(core::poisson_reliability(4.0, 0.9), kHeadlineReliability, 5e-4);
  EXPECT_NEAR(core::poisson_reliability(6.0, 0.6), kHeadlineReliability, 5e-4);
  EXPECT_NEAR(core::poisson_reliability(4.0, 0.9),
              core::poisson_reliability(6.0, 0.6), 1e-9);
}

TEST(PaperFig4And5, CriticalPointIsZqEqualsOne) {
  // Eq. 10: the reliability collapses exactly where z*q crosses 1.
  EXPECT_NEAR(core::poisson_critical_q(4.0), 0.25, 1e-12);
  EXPECT_NEAR(core::poisson_critical_q(6.0), 1.0 / 6.0, 1e-12);
  for (const double z : {2.0, 4.0, 6.0}) {
    const double qc = core::poisson_critical_q(z);
    EXPECT_DOUBLE_EQ(core::poisson_reliability(z, qc), 0.0);
    EXPECT_DOUBLE_EQ(core::poisson_reliability(z, 0.99 * qc), 0.0);
    EXPECT_GT(core::poisson_reliability(z, 1.05 * qc), 0.0);
  }
}

TEST(PaperFig4And5, GossipModelAgreesWithClosedForm) {
  const core::GossipModel model(1000, core::poisson_fanout(4.0), 0.9);
  EXPECT_NEAR(model.reliability(), kHeadlineReliability, 5e-4);
  EXPECT_NEAR(model.critical_nonfailed_ratio(), 0.25, 1e-6);
  EXPECT_TRUE(model.supercritical());
  EXPECT_NEAR(model.max_tolerable_failure_ratio(), 0.75, 1e-6);
}

TEST(PaperFig4And5, MonteCarloConfirmsHeadlineAtN1000) {
  experiment::MonteCarloOptions options;
  options.replications = 60;
  options.seed = 2008;
  const auto estimate = experiment::estimate_reliability_graph(
      1000, *core::poisson_fanout(4.0), 0.9, options);
  // Finite-size effects at n = 1000 keep the sample mean within a few
  // points of the n -> infinity fixed point.
  EXPECT_NEAR(estimate.mean_reliability(), kHeadlineReliability, 0.03);
}

TEST(PaperFig6And7, SuccessCountDistributionAnchors) {
  // Figs. 6-7 draw B(t=20, R~0.9695) through the simulated histograms.
  const auto pmf = core::success_count_pmf(20, kHeadlineReliability);
  ASSERT_EQ(pmf.size(), 21u);
  EXPECT_NEAR(std::accumulate(pmf.begin(), pmf.end(), 0.0), 1.0, 1e-12);

  double mean = 0.0;
  for (std::size_t k = 0; k < pmf.size(); ++k) {
    mean += static_cast<double>(k) * pmf[k];
  }
  EXPECT_NEAR(mean, 20.0 * kHeadlineReliability, 1e-9);

  // The mode of B(20, 0.9695) is X = 20: most simulations deliver to every
  // surviving member in all 20 executions.
  const auto mode =
      std::distance(pmf.begin(), std::max_element(pmf.begin(), pmf.end()));
  EXPECT_EQ(mode, 20);
  EXPECT_NEAR(pmf[20], std::pow(kHeadlineReliability, 20.0), 1e-12);
}

TEST(PaperFig6And7, BothOperatingPointsShareTheSameCurve) {
  const double r_f4 = core::poisson_reliability(4.0, 0.9);
  const double r_f6 = core::poisson_reliability(6.0, 0.6);
  const auto pmf_f4 = core::success_count_pmf(20, r_f4);
  const auto pmf_f6 = core::success_count_pmf(20, r_f6);
  ASSERT_EQ(pmf_f4.size(), pmf_f6.size());
  for (std::size_t k = 0; k < pmf_f4.size(); ++k) {
    EXPECT_NEAR(pmf_f4[k], pmf_f6[k], 1e-9) << "k=" << k;
  }
}

}  // namespace
}  // namespace gossip
