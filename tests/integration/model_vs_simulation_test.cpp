/// Cross-module validation: the paper's analytical model (core), the graph
/// Monte Carlo (graph + experiment), and the message-level DES protocol
/// (sim + net + protocol) must tell one consistent story. These are the
/// repository's equivalent of the paper's Section 5.

#include <cmath>

#include <gtest/gtest.h>

#include "core/reliability_model.hpp"
#include "core/success_model.hpp"
#include "experiment/component_mc.hpp"
#include "experiment/monte_carlo.hpp"
#include "graph/generators.hpp"
#include "graph/reachability.hpp"
#include "protocol/repeated_gossip.hpp"

namespace gossip {
namespace {

struct OperatingPoint {
  double fanout;
  double q;
};

class ComponentAgreesWithAnalysis
    : public ::testing::TestWithParam<OperatingPoint> {};

TEST_P(ComponentAgreesWithAnalysis, WithinFinitSizeTolerance) {
  // The Figs. 4-5 claim: component-metric simulation tallies with Eq. (11).
  const auto [f, q] = GetParam();
  const auto fanout = core::poisson_fanout(f);
  experiment::MonteCarloOptions opt;
  opt.replications = 20;  // the paper's count
  opt.seed = 2008;
  const auto est = experiment::estimate_giant_component(1000, *fanout, q, opt);
  const double analysis = core::poisson_reliability(f, q);
  // Supercritical points: tight agreement. Near/below critical the finite
  // graph has a small largest component where the analysis says 0.
  if (f * q > 1.4) {
    EXPECT_NEAR(est.giant_fraction_alive.mean(), analysis, 0.05)
        << "f=" << f << " q=" << q;
  } else {
    EXPECT_LT(est.giant_fraction_alive.mean(), analysis + 0.12)
        << "f=" << f << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperOperatingPoints, ComponentAgreesWithAnalysis,
    ::testing::Values(OperatingPoint{1.1, 0.5}, OperatingPoint{1.9, 0.5},
                      OperatingPoint{3.1, 0.5}, OperatingPoint{4.3, 0.5},
                      OperatingPoint{5.9, 0.5}, OperatingPoint{2.3, 1.0},
                      OperatingPoint{3.5, 0.8}, OperatingPoint{4.0, 0.9},
                      OperatingPoint{6.0, 0.6}, OperatingPoint{6.7, 0.3}));

TEST(IntegrationReliability, DesProtocolMatchesGraphMonteCarlo) {
  // The DES protocol and the sampled-digraph BFS are two implementations of
  // the same random process; their delivery estimates must agree.
  protocol::GossipParams params;
  params.num_nodes = 600;
  params.fanout = core::poisson_fanout(4.0);
  params.nonfailed_ratio = 0.9;
  experiment::MonteCarloOptions opt;
  opt.replications = 150;
  opt.seed = 31;
  const auto des = experiment::estimate_reliability_protocol(params, opt);
  const auto mc = experiment::estimate_reliability_graph(
      600, *params.fanout, 0.9, opt);
  // Per-execution reliability is bimodal (die-out vs giant cascade), so the
  // sample mean is noisy: std ~ 0.23, SEM(150) ~ 0.02 per backend.
  EXPECT_NEAR(des.mean_reliability(), mc.mean_reliability(), 0.08);
  // Message accounting differs by construction: the DES sends only from
  // members that actually received m (~ reliability * n * q senders), while
  // the sampled digraph materializes every alive member's potential edges
  // (~ n * q senders). Check each against its own expectation.
  const double alive = 600.0 * 0.9;
  EXPECT_NEAR(des.messages.mean(), des.mean_reliability() * alive * 4.0,
              0.08 * mc.messages.mean());
  EXPECT_NEAR(mc.messages.mean(), alive * 4.0, 0.05 * mc.messages.mean());
  EXPECT_LT(des.messages.mean(), mc.messages.mean());
}

TEST(IntegrationReliability, ConditionalDeliveryMatchesAnalysis) {
  // Conditioned on the cascade taking off (reliability > 1/2 S), the
  // delivered fraction concentrates on the analytical S.
  const double z = 4.0;
  const double q = 0.9;
  const double s = core::poisson_reliability(z, q);
  const auto fanout = core::poisson_fanout(z);
  experiment::MonteCarloOptions opt;
  opt.replications = 200;
  opt.seed = 17;

  // Re-run the graph MC manually to get per-replication values.
  stats::OnlineSummary taken_off;
  const rng::RngStream root(opt.seed);
  for (std::size_t i = 0; i < opt.replications; ++i) {
    auto rng = root.substream(i);
    graph::GossipGraphParams gp;
    gp.num_nodes = 1500;
    gp.alive_probability = q;
    const auto gg = graph::make_gossip_digraph(gp, fanout->sampler(), rng);
    const auto reach = graph::directed_reach(gg.graph, gg.source);
    std::uint32_t alive_received = 0;
    for (graph::NodeId v = 0; v < gp.num_nodes; ++v) {
      if (gg.alive[v] && reach.is_reached(v)) ++alive_received;
    }
    const double rel = static_cast<double>(alive_received) /
                       static_cast<double>(gg.alive_count);
    if (rel > 0.5 * s) taken_off.add(rel);
  }
  ASSERT_GT(taken_off.count(), 50u);
  EXPECT_NEAR(taken_off.mean(), s, 0.02);
}

TEST(IntegrationReliability, TakeOffProbabilityMatchesS) {
  // P(cascade reaches the giant component) ~ S as well (extinction duality
  // for Poisson offspring), so success_rate-of-takeoff ~ S.
  const double z = 3.0;
  const double q = 0.8;
  const double s = core::poisson_reliability(z, q);
  const auto fanout = core::poisson_fanout(z);
  experiment::MonteCarloOptions opt;
  opt.replications = 300;
  opt.seed = 23;
  const auto est =
      experiment::estimate_reliability_graph(1200, *fanout, q, opt);
  // mean(delivery) ~ P(takeoff) * S = S^2; back out P(takeoff).
  const double takeoff = est.mean_reliability() / s;
  EXPECT_NEAR(takeoff, s, 0.05);
}

TEST(IntegrationSuccess, RepeatedProtocolCountsMatchBinomialMean) {
  // Protocol-level Fig. 6 (delivery metric): E[X] ~ t * S^2 including
  // die-out; per-member counts live in [0, t].
  const double z = 4.0;
  const double q = 0.9;
  const double s = core::poisson_reliability(z, q);
  protocol::RepeatedGossipParams params;
  params.base.num_nodes = 500;
  params.base.fanout = core::poisson_fanout(z);
  params.base.nonfailed_ratio = q;
  params.executions = 20;
  rng::RngStream rng(41);
  const auto result = protocol::run_repeated_gossip(params, rng);
  const auto samples = result.success_count_samples(0);
  double mean = 0.0;
  for (const auto x : samples) mean += x;
  mean /= static_cast<double>(samples.size());
  EXPECT_NEAR(mean, 20.0 * s * s, 1.5);
}

TEST(IntegrationSuccess, RequiredExecutionsVerifiedBySimulation) {
  // Eq. (6) says t = 3 reaches p_s = 0.999 at R ~ 0.9695 (giant metric).
  // Verify via the component experiment: fraction of members with X >= 1
  // in 3 executions should be ~ 1 - (1-S)^3 > 0.999... within noise.
  experiment::SuccessCountParams params;
  params.num_nodes = 1500;
  params.fanout = core::poisson_fanout(4.0);
  params.nonfailed_ratio = 0.9;
  params.executions = 3;
  params.simulations = 6;
  params.metric = experiment::SuccessMetric::kGiantMembership;
  experiment::MonteCarloOptions opt;
  opt.seed = 47;
  const auto result = experiment::run_success_count_experiment(params, opt);
  const double missed = static_cast<double>(result.histogram.count(0)) /
                        static_cast<double>(result.member_samples);
  const double s = core::poisson_reliability(4.0, 0.9);
  const double predicted_miss = std::pow(1.0 - s, 3.0);
  EXPECT_NEAR(missed, predicted_miss, 5e-4);
  EXPECT_LT(missed, 1.0 - 0.998);
}

TEST(IntegrationCriticalPoint, EmpiricalTransitionNearOneOverZ) {
  // Eq. (10): sweep q across 1/z and verify the giant component appears.
  const double z = 4.0;
  const auto fanout = core::poisson_fanout(z);
  experiment::MonteCarloOptions opt;
  opt.replications = 15;
  opt.seed = 53;
  const auto below =
      experiment::estimate_giant_component(3000, *fanout, 0.15, opt);
  const auto above =
      experiment::estimate_giant_component(3000, *fanout, 0.40, opt);
  EXPECT_LT(below.giant_fraction_alive.mean(), 0.08);   // q < 1/4
  EXPECT_GT(above.giant_fraction_alive.mean(), 0.35);   // q > 1/4
}

TEST(IntegrationDistributions, NonPoissonFanoutAgreesWithGenericSolver) {
  // The generality claim: the analysis holds for arbitrary P, not just
  // Poisson. Validate geometric and fixed fanouts against the component MC.
  experiment::MonteCarloOptions opt;
  opt.replications = 20;
  opt.seed = 59;
  for (const auto& dist :
       {core::geometric_fanout(4.0), core::fixed_fanout(4),
        core::uniform_fanout(2, 6)}) {
    const double q = 0.8;
    const auto gf = core::GeneratingFunction::from_distribution(*dist);
    const double analysis =
        core::analyze_site_percolation(gf, q).reliability;
    const auto est =
        experiment::estimate_giant_component(1500, *dist, q, opt);
    EXPECT_NEAR(est.giant_fraction_alive.mean(), analysis, 0.05)
        << dist->name();
  }
}

}  // namespace
}  // namespace gossip
