/// Golden-file acceptance for the shipped topology scenarios: running
/// scenarios/er_vs_uniform.scn and scenarios/wan_outage.scn in-process must
/// reproduce their scenarios/golden/*.csv byte for byte. Results CSVs are
/// bit-identical for any worker count (replication i always uses
/// substream(seed, i)), so these are exact artifacts like
/// golden_trace_test.cpp's — any intentional change to the overlay
/// builders, the regional_outage draw order, or the CSV schema must
/// regenerate them:
///
///     build/tools/gossip_scenarios scenarios/er_vs_uniform.scn
///         --csv scenarios/golden/er_vs_uniform.csv
///     build/tools/gossip_scenarios scenarios/wan_outage.scn
///         --csv scenarios/golden/wan_outage.csv
///
/// (each command with its --csv flag on one line)

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/thread_pool.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace gossip::scenario {
namespace {

#ifdef GOSSIP_SCENARIOS_DIR

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void expect_matches_golden(const std::string& scn, const std::string& csv) {
  const std::string dir(GOSSIP_SCENARIOS_DIR);
  const auto spec = ScenarioSpec::load(dir + "/" + scn);
  parallel::ThreadPool pool(4);
  const auto results = ScenarioRunner(&pool).run(spec);

  const std::string out_path = ::testing::TempDir() + "topology_golden.csv";
  write_results_csv(out_path, results);
  const auto produced = read_file(out_path);
  std::remove(out_path.c_str());

  const auto golden = read_file(dir + "/golden/" + csv);
  ASSERT_FALSE(golden.empty()) << "missing scenarios/golden/" << csv;

  if (produced != golden) {
    std::vector<std::string> produced_lines;
    std::vector<std::string> golden_lines;
    std::istringstream pin(produced);
    std::istringstream gin(golden);
    std::string line;
    while (std::getline(pin, line)) produced_lines.push_back(line);
    while (std::getline(gin, line)) golden_lines.push_back(line);
    const auto common = std::min(produced_lines.size(), golden_lines.size());
    for (std::size_t i = 0; i < common; ++i) {
      ASSERT_EQ(produced_lines[i], golden_lines[i])
          << csv << " line " << i + 1;
    }
    ASSERT_EQ(produced_lines.size(), golden_lines.size()) << csv;
    FAIL() << csv << " differs in line endings or trailing bytes";
  }
}

TEST(TopologyGolden, ErVsUniformReproducesTheGoldenCsvByteForByte) {
  expect_matches_golden("er_vs_uniform.scn", "er_vs_uniform.csv");
}

TEST(TopologyGolden, WanOutageReproducesTheGoldenCsvByteForByte) {
  expect_matches_golden("wan_outage.scn", "wan_outage.csv");

  // Sanity on the golden's physics, not just its bytes: a one-cluster
  // outage leaves three intact regions, so the survivors' coverage beats
  // i.i.d. crashes of the same expected mass spread over every
  // neighborhood of the overlay.
  const std::string dir(GOSSIP_SCENARIOS_DIR);
  const auto golden = read_file(dir + "/golden/wan_outage.csv");
  EXPECT_NE(golden.find("regional_outage"), std::string::npos);
  EXPECT_NE(golden.find("crash(0.25)"), std::string::npos);
}

#else
TEST(TopologyGolden, DISABLED_NoScenariosDir) {}
#endif

}  // namespace
}  // namespace gossip::scenario
