/// Consistency between the paper's percolation model and the baseline
/// models it is compared against (related-work Section 2): where the
/// theories overlap they must agree; where they differ the difference must
/// have the documented sign.

#include <cmath>

#include <gtest/gtest.h>

#include "core/baselines/kmg_model.hpp"
#include "core/baselines/pbcast_recurrence.hpp"
#include "core/baselines/si_epidemic.hpp"
#include "core/reliability_model.hpp"
#include "core/success_model.hpp"
#include "experiment/component_mc.hpp"
#include "experiment/monte_carlo.hpp"
#include "protocol/round_gossip.hpp"

namespace gossip {
namespace {

TEST(BaselineConsistency, SirFinalSizeEqualsPercolationReliability) {
  // The SIR final-size equation and Eq. (11) are the same fixed point; this
  // is the formal bridge between the epidemic and random-graph views.
  for (double z = 1.2; z <= 8.0; z += 0.7) {
    for (const double q : {0.4, 0.7, 1.0}) {
      EXPECT_DOUBLE_EQ(core::baselines::sir_final_size(z, q),
                       core::poisson_reliability(z, q))
          << "z=" << z << " q=" << q;
    }
  }
}

TEST(BaselineConsistency, SiModelCannotRepresentDieOut) {
  // The paper's criticism of the SI/LRG model: with any positive seed the
  // SI dynamics saturate to 1 even in regimes where gossip actually dies
  // out (subcritical percolation).
  core::baselines::SiParams p;
  p.contact_rate = 0.8;       // z*q < 1 with q = 1: subcritical gossip
  p.nonfailed_ratio = 1.0;
  p.initial_infected_fraction = 0.001;
  p.t_end = 100.0;
  p.dt = 0.01;
  const auto traj = core::baselines::si_trajectory(p);
  EXPECT_GT(traj.back().infected_fraction, 0.99);
  EXPECT_DOUBLE_EQ(core::poisson_reliability(0.8, 1.0), 0.0);
}

TEST(BaselineConsistency, ReedFrostApproachesForwardOnceMeanField) {
  // Reed-Frost is a forward-once chain; its expected final size should
  // track the forward-once mean-field recurrence (up to the chain's
  // stochastic die-out mass, which the mean-field cannot see).
  core::baselines::RoundGossipParams p;
  p.num_members = 60;
  p.fanout = 6.0;  // well supercritical: die-out mass is negligible
  p.nonfailed_ratio = 1.0;
  p.rounds = 60;
  const double exact = core::baselines::reed_frost_expected_reliability(p);
  const auto mean_field =
      core::baselines::pbcast_expected_infected_forward_once(p);
  EXPECT_NEAR(exact, mean_field.back(), 0.08);
}

TEST(BaselineConsistency, ForwardOnceMeanFieldLagsForwardAlways) {
  core::baselines::RoundGossipParams p;
  p.num_members = 1000;
  p.fanout = 2.0;
  p.rounds = 6;
  const auto once = core::baselines::pbcast_expected_infected_forward_once(p);
  const auto always = core::baselines::pbcast_expected_infected(p);
  EXPECT_LT(once.back(), always.back());
}

TEST(BaselineConsistency, ReedFrostMatchesRoundGossipSimulation) {
  // The exact chain and the simulated round protocol describe the same
  // process: forward-once, with Reed-Frost's independent per-pair contact
  // assumption. Drawing j ~ Binomial(n-1, tau) distinct targets makes each
  // pair contacted independently with probability tau, matching the chain
  // exactly (a FIXED fanout of 2 distinct targets would have near-zero
  // early die-out and overshoot the chain's expectation).
  const std::int64_t n = 30;
  const double fanout = 2.0;
  core::baselines::RoundGossipParams mp;
  mp.num_members = n;
  mp.fanout = fanout;
  mp.nonfailed_ratio = 1.0;
  mp.rounds = 30;
  const double exact = core::baselines::reed_frost_expected_reliability(mp);

  protocol::RoundGossipProtocolParams sp;
  sp.num_nodes = static_cast<std::uint32_t>(n);
  sp.fanout = core::binomial_fanout(n - 1, fanout / static_cast<double>(n - 1));
  sp.rounds = 30;
  sp.mode = protocol::RoundGossipMode::kForwardOnce;
  stats::OnlineSummary sim;
  for (std::uint64_t seed = 0; seed < 800; ++seed) {
    rng::RngStream rng(seed);
    sim.add(protocol::run_round_gossip(sp, rng).execution.reliability);
  }
  EXPECT_NEAR(sim.mean(), exact, 0.05);
}

TEST(BaselineConsistency, FixedFanoutOutlivesBinomialContactModel) {
  // Deterministic fanout cannot die out at the source, so it dominates the
  // independent-contact (Reed-Frost) process at equal mean.
  const std::int64_t n = 30;
  protocol::RoundGossipProtocolParams fixed;
  fixed.num_nodes = static_cast<std::uint32_t>(n);
  fixed.fanout = core::fixed_fanout(2);
  fixed.rounds = 30;
  fixed.mode = protocol::RoundGossipMode::kForwardOnce;
  protocol::RoundGossipProtocolParams binom = fixed;
  binom.fanout = core::binomial_fanout(n - 1, 2.0 / static_cast<double>(n - 1));
  stats::OnlineSummary s_fixed;
  stats::OnlineSummary s_binom;
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    rng::RngStream rng1(seed);
    rng::RngStream rng2(seed);
    s_fixed.add(protocol::run_round_gossip(fixed, rng1).execution.reliability);
    s_binom.add(protocol::run_round_gossip(binom, rng2).execution.reliability);
  }
  EXPECT_GT(s_fixed.mean(), s_binom.mean());
}

TEST(BaselineConsistency, KmgFanoutThresholdSeparatesSuccessRegimes) {
  // KMG: fanout ln n + c governs all-or-nothing success. Verify the
  // empirical success rate of the protocol crosses ~exp(-e^{-c}).
  const std::uint32_t n = 400;
  const double c = 1.0;
  const double fanout =
      std::log(static_cast<double>(n)) + c;  // ~ 6.99 + 1
  const double predicted =
      core::baselines::kmg_success_probability(n, fanout, 0.0);

  const auto dist = core::poisson_fanout(fanout);
  experiment::MonteCarloOptions opt;
  opt.replications = 300;
  opt.seed = 61;
  const auto est = experiment::estimate_reliability_graph(n, *dist, 1.0, opt);
  EXPECT_NEAR(est.success_rate(), predicted, 0.1);
}

TEST(BaselineConsistency, PercolationModelCoversReliabilityKmgDoesNot) {
  // KMG answers only "does EVERYONE get it"; the paper's model also gives
  // the per-member reliability below that threshold. At a fanout well below
  // ln n, KMG predicts near-certain failure while the reliability model
  // still predicts (and simulation confirms) high per-member delivery.
  const std::uint32_t n = 2000;
  const double fanout = 4.0;  // << ln 2000 ~ 7.6
  const double kmg =
      core::baselines::kmg_success_probability(n, fanout, 0.0);
  EXPECT_LT(kmg, 0.05);

  const double reliability = core::poisson_reliability(fanout, 1.0);
  EXPECT_GT(reliability, 0.97);

  const auto dist = core::poisson_fanout(fanout);
  experiment::MonteCarloOptions opt;
  opt.replications = 50;
  opt.seed = 67;
  const auto est = experiment::estimate_giant_component(n, *dist, 1.0, opt);
  EXPECT_NEAR(est.giant_fraction_alive.mean(), reliability, 0.02);
}

TEST(BaselineConsistency, SuccessModelBridgesReliabilityAndKmgRegime) {
  // Repeating a moderate-fanout execution t times (Eqs. 5-6) reaches the
  // same per-member guarantee KMG needs a log-n fanout for; the message
  // budget trade-off is what the ablation bench quantifies.
  const double s = core::poisson_reliability(4.0, 1.0);
  const auto t = core::required_executions(s, 0.999);
  EXPECT_LE(t, 3);
  EXPECT_GE(core::success_probability(s, t), 0.999);
}

}  // namespace
}  // namespace gossip
