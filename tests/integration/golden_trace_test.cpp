/// Golden-file acceptance for `--trace-out`: running the shipped
/// scenarios/fig4a_trace.scn (engine = both, trace = rounds) must
/// reproduce scenarios/golden/fig4a_trace.csv byte for byte. The trace
/// pipeline promises bit-identical output for any worker count and run
/// method (CLI or in-process), so the golden is an exact artifact, not a
/// tolerance comparison — any intentional change to the trajectory
/// schema, the aggregation, or the analytic model must regenerate it:
///
///     build/tools/gossip_scenarios scenarios/fig4a_trace.scn \
///         --trace-out scenarios/golden/fig4a_trace.csv

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/thread_pool.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace gossip::scenario {
namespace {

#ifdef GOSSIP_SCENARIOS_DIR

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(GoldenTrace, Fig4aTraceScenarioReproducesTheGoldenCsvByteForByte) {
  const std::string dir(GOSSIP_SCENARIOS_DIR);
  const auto spec = ScenarioSpec::load(dir + "/fig4a_trace.scn");
  parallel::ThreadPool pool(4);
  const auto results = ScenarioRunner(&pool).run(spec);

  const std::string out_path = ::testing::TempDir() + "fig4a_trace_out.csv";
  write_trace_csv(out_path, results);
  const auto produced = read_file(out_path);
  std::remove(out_path.c_str());

  const auto golden = read_file(dir + "/golden/fig4a_trace.csv");
  ASSERT_FALSE(golden.empty()) << "missing scenarios/golden/fig4a_trace.csv";

  if (produced != golden) {
    // Byte equality failed: report the first differing line so the diff is
    // actionable without manual file juggling.
    const auto produced_lines = split_lines(produced);
    const auto golden_lines = split_lines(golden);
    const auto common = std::min(produced_lines.size(), golden_lines.size());
    for (std::size_t i = 0; i < common; ++i) {
      ASSERT_EQ(produced_lines[i], golden_lines[i]) << "line " << i + 1;
    }
    ASSERT_EQ(produced_lines.size(), golden_lines.size());
    FAIL() << "files differ in line endings or trailing bytes";
  }

  // Sanity on the golden itself: both simulated backends and the analytic
  // engine contribute trajectory rows.
  EXPECT_NE(golden.find(",protocol,"), std::string::npos);
  EXPECT_NE(golden.find(",flat,"), std::string::npos);
  EXPECT_NE(golden.find(",meanfield,"), std::string::npos);
}

#else
TEST(GoldenTrace, DISABLED_NoScenariosDir) {}
#endif

}  // namespace
}  // namespace gossip::scenario
