#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "experiment/csv.hpp"
#include "experiment/sweep.hpp"
#include "experiment/table.hpp"

namespace gossip::experiment {
namespace {

// ---- TextTable ----

TEST(TextTable, PrintsAlignedHeaderAndRows) {
  TextTable table;
  table.column("f", 6).column("S", 8);
  table.add_row({"1.10", "0.0000"});
  table.add_row({"6.70", "0.9991"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("f"), std::string::npos);
  EXPECT_NE(out.find("0.9991"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Four lines: header, separator, two rows.
  int newlines = 0;
  for (const char c : out) {
    if (c == '\n') ++newlines;
  }
  EXPECT_EQ(newlines, 4);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable table;
  table.column("a", 4).column("b", 4);
  EXPECT_THROW(table.add_row({"1"}), std::invalid_argument);
}

TEST(TextTable, RejectsInvalidWidth) {
  TextTable table;
  EXPECT_THROW(table.column("x", 0), std::invalid_argument);
}

TEST(FmtDouble, FixedPrecision) {
  EXPECT_EQ(fmt_double(0.96951, 4), "0.9695");
  EXPECT_EQ(fmt_double(2.0, 1), "2.0");
  EXPECT_EQ(fmt_double(-1.25, 2), "-1.25");
}

TEST(FmtPm, CombinesValueAndHalfWidth) {
  EXPECT_EQ(fmt_pm(0.5, 0.01, 2), "0.50+-0.01");
}

// ---- CsvWriter ----

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = "/tmp/gossip_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.add_row({"1", "2"});
    csv.add_row({"3", "4"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4");
  std::remove(path.c_str());
}

TEST(CsvWriter, QuotesCellsContainingCommas) {
  const std::string path = "/tmp/gossip_csv_quote_test.csv";
  {
    CsvWriter csv(path, {"x"});
    csv.add_row({"hello,world"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);
  EXPECT_EQ(line, "\"hello,world\"");
  std::remove(path.c_str());
}

TEST(CsvWriter, Rfc4180DoublesEmbeddedQuotes) {
  const std::string path = "/tmp/gossip_csv_rfc_quote_test.csv";
  {
    CsvWriter csv(path, {"x", "y"});
    csv.add_row({"say \"hi\"", "plain"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);
  EXPECT_EQ(line, "\"say \"\"hi\"\"\",plain");
  std::remove(path.c_str());
}

TEST(CsvWriter, Rfc4180QuotesCellsContainingNewlines) {
  const std::string path = "/tmp/gossip_csv_rfc_nl_test.csv";
  {
    CsvWriter csv(path, {"x"});
    csv.add_row({"two\nlines"});
    csv.add_row({"cr\rcell"});
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "x\n\"two\nlines\"\n\"cr\rcell\"\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, ScenarioLabelRoundTripsAsOneCell) {
  // The scenario runner labels cases "z=4.0,q=0.9"; a naive reader split
  // must see exactly one quoted field, not two.
  const std::string path = "/tmp/gossip_csv_label_test.csv";
  {
    CsvWriter csv(path, {"case", "value"});
    csv.add_row({"z=4.0,q=0.9", "1"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);
  EXPECT_EQ(line, "\"z=4.0,q=0.9\",1");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsMismatchedRowAndEmptyHeader) {
  const std::string path = "/tmp/gossip_csv_err_test.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(CsvWriter("/tmp/gossip_csv_err2.csv", {}),
               std::invalid_argument);
  std::remove(path.c_str());
  std::remove("/tmp/gossip_csv_err2.csv");
}

TEST(CsvWriter, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/foo.csv", {"a"}),
               std::runtime_error);
}

TEST(CsvPathIn, CreatesDirectory) {
  const std::string dir = "/tmp/gossip_csv_dir_test";
  std::filesystem::remove_all(dir);
  const std::string path = csv_path_in(dir, "out.csv");
  EXPECT_EQ(path, dir + "/out.csv");
  EXPECT_TRUE(std::filesystem::exists(dir));
  std::filesystem::remove_all(dir);
}

// ---- sweep ----

TEST(Linspace, EndpointsAndCount) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
}

TEST(Linspace, SinglePoint) {
  const auto v = linspace(3.0, 9.0, 1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 3.0);
}

TEST(Linspace, RejectsNonPositiveCount) {
  EXPECT_THROW((void)linspace(0.0, 1.0, 0), std::invalid_argument);
}

TEST(ArangeInclusive, IncludesEndpointWithinSlack) {
  const auto v = arange_inclusive(1.1, 6.7, 0.4);
  ASSERT_FALSE(v.empty());
  EXPECT_DOUBLE_EQ(v.front(), 1.1);
  EXPECT_NEAR(v.back(), 6.7, 1e-9);
}

TEST(ArangeInclusive, RejectsNonPositiveStep) {
  EXPECT_THROW((void)arange_inclusive(0.0, 1.0, 0.0), std::invalid_argument);
}

TEST(PaperGrids, MatchSection51) {
  // "varied from 1.10 to 6.7 with an incremental step 0.4" -> 15 points.
  const auto fanouts = paper_fanout_grid();
  ASSERT_EQ(fanouts.size(), 15u);
  EXPECT_DOUBLE_EQ(fanouts.front(), 1.1);
  EXPECT_NEAR(fanouts.back(), 6.7, 1e-9);
  for (std::size_t i = 1; i < fanouts.size(); ++i) {
    EXPECT_NEAR(fanouts[i] - fanouts[i - 1], 0.4, 1e-9);
  }
  EXPECT_EQ(paper_q_grid_a(), (std::vector<double>{0.1, 0.3, 0.5, 1.0}));
  EXPECT_EQ(paper_q_grid_b(), (std::vector<double>{0.4, 0.6, 0.8, 1.0}));
}

}  // namespace
}  // namespace gossip::experiment
