#include "experiment/monte_carlo.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

#include "core/reliability_model.hpp"

namespace gossip::experiment {
namespace {

TEST(GraphMonteCarlo, DeterministicForSameSeed) {
  const auto fanout = core::poisson_fanout(4.0);
  MonteCarloOptions opt;
  opt.replications = 10;
  opt.seed = 123;
  const auto a = estimate_reliability_graph(500, *fanout, 0.9, opt);
  const auto b = estimate_reliability_graph(500, *fanout, 0.9, opt);
  EXPECT_DOUBLE_EQ(a.mean_reliability(), b.mean_reliability());
  EXPECT_EQ(a.success_count, b.success_count);
}

TEST(GraphMonteCarlo, PoolAndSerialProduceIdenticalEstimates) {
  const auto fanout = core::poisson_fanout(3.0);
  MonteCarloOptions serial;
  serial.replications = 16;
  serial.seed = 7;
  MonteCarloOptions pooled = serial;
  parallel::ThreadPool pool(4);
  pooled.pool = &pool;
  const auto a = estimate_reliability_graph(400, *fanout, 0.8, serial);
  const auto b = estimate_reliability_graph(400, *fanout, 0.8, pooled);
  EXPECT_DOUBLE_EQ(a.mean_reliability(), b.mean_reliability());
  EXPECT_DOUBLE_EQ(a.messages.mean(), b.messages.mean());
  EXPECT_EQ(a.success_count, b.success_count);
}

TEST(GraphMonteCarlo, DifferentSeedsDiffer) {
  const auto fanout = core::poisson_fanout(3.0);
  MonteCarloOptions opt1;
  opt1.replications = 10;
  opt1.seed = 1;
  MonteCarloOptions opt2 = opt1;
  opt2.seed = 2;
  const auto a = estimate_reliability_graph(500, *fanout, 0.8, opt1);
  const auto b = estimate_reliability_graph(500, *fanout, 0.8, opt2);
  EXPECT_NE(a.mean_reliability(), b.mean_reliability());
}

TEST(GraphMonteCarlo, SubcriticalReliabilityIsNearZero) {
  const auto fanout = core::poisson_fanout(1.5);
  MonteCarloOptions opt;
  opt.replications = 20;
  const auto est = estimate_reliability_graph(2000, *fanout, 0.3, opt);
  EXPECT_LT(est.mean_reliability(), 0.05);  // zq = 0.45
  EXPECT_EQ(est.success_count, 0u);
}

TEST(GraphMonteCarlo, SaturatedRegimeApproachesOne) {
  const auto fanout = core::poisson_fanout(10.0);
  MonteCarloOptions opt;
  opt.replications = 20;
  const auto est = estimate_reliability_graph(1000, *fanout, 1.0, opt);
  EXPECT_GT(est.mean_reliability(), 0.99);
}

TEST(GraphMonteCarlo, UnconditionalDeliveryAveragesNearSSquared) {
  // The delivery metric includes total cascade die-out (probability ~1-S),
  // so its unconditional mean is ~S^2, not S. This is the documented gap
  // between the protocol metric and the paper's component metric.
  const double z = 4.0;
  const double q = 0.9;
  const double s = core::poisson_reliability(z, q);
  const auto fanout = core::poisson_fanout(z);
  MonteCarloOptions opt;
  opt.replications = 400;
  const auto est = estimate_reliability_graph(1000, *fanout, q, opt);
  EXPECT_NEAR(est.mean_reliability(), s * s, 0.03);
}

TEST(GraphMonteCarlo, MessageCountTracksAliveTimesFanout) {
  const double z = 3.0;
  const double q = 0.5;
  const auto fanout = core::poisson_fanout(z);
  MonteCarloOptions opt;
  opt.replications = 30;
  const std::uint32_t n = 1000;
  const auto est = estimate_reliability_graph(n, *fanout, q, opt);
  const double expected = static_cast<double>(n) * q * z;
  EXPECT_NEAR(est.messages.mean(), expected, expected * 0.1);
}

TEST(GraphMonteCarlo, ValidationErrors) {
  const auto fanout = core::poisson_fanout(2.0);
  MonteCarloOptions opt;
  opt.replications = 0;
  EXPECT_THROW((void)estimate_reliability_graph(100, *fanout, 0.5, opt),
               std::invalid_argument);
  opt.replications = 1;
  EXPECT_THROW((void)estimate_reliability_graph(1, *fanout, 0.5, opt),
               std::invalid_argument);
}

TEST(ProtocolMonteCarlo, MatchesGraphBackendWithinTolerance) {
  // Same metric, two backends: message-level DES vs sampled digraph BFS.
  protocol::GossipParams params;
  params.num_nodes = 400;
  params.source = 0;
  params.nonfailed_ratio = 0.9;
  params.fanout = core::poisson_fanout(4.0);
  MonteCarloOptions opt;
  opt.replications = 60;
  opt.seed = 99;
  const auto des = estimate_reliability_protocol(params, opt);
  const auto mc =
      estimate_reliability_graph(400, *params.fanout, 0.9, opt);
  EXPECT_NEAR(des.mean_reliability(), mc.mean_reliability(), 0.08);
}

TEST(ProtocolMonteCarlo, DeterministicForSameSeed) {
  protocol::GossipParams params;
  params.num_nodes = 100;
  params.fanout = core::poisson_fanout(3.0);
  params.nonfailed_ratio = 0.7;
  MonteCarloOptions opt;
  opt.replications = 5;
  opt.seed = 3;
  const auto a = estimate_reliability_protocol(params, opt);
  const auto b = estimate_reliability_protocol(params, opt);
  EXPECT_DOUBLE_EQ(a.mean_reliability(), b.mean_reliability());
}

TEST(ReliabilityEstimate, DerivedQuantities) {
  const auto fanout = core::poisson_fanout(8.0);
  MonteCarloOptions opt;
  opt.replications = 25;
  const auto est = estimate_reliability_graph(200, *fanout, 1.0, opt);
  EXPECT_EQ(est.replications, 25u);
  EXPECT_GE(est.success_rate(), 0.0);
  EXPECT_LE(est.success_rate(), 1.0);
  const auto ci = est.reliability_ci();
  EXPECT_LE(ci.lo, est.mean_reliability());
  EXPECT_GE(ci.hi, est.mean_reliability());
}

}  // namespace
}  // namespace gossip::experiment
