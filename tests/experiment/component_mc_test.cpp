#include "experiment/component_mc.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

#include "core/reliability_model.hpp"
#include "core/success_model.hpp"
#include "stats/gof.hpp"

namespace gossip::experiment {
namespace {

TEST(GiantComponentEstimate, MatchesAnalysisSupercritical) {
  // The paper's own simulation metric: relative giant-component size among
  // non-failed nodes ~ Eq. (11) S.
  const double z = 4.0;
  const double q = 0.9;
  const auto fanout = core::poisson_fanout(z);
  MonteCarloOptions opt;
  opt.replications = 20;
  opt.seed = 5;
  const auto est = estimate_giant_component(2000, *fanout, q, opt);
  EXPECT_NEAR(est.giant_fraction_alive.mean(),
              core::poisson_reliability(z, q), 0.01);
  // Callaway's S (fraction of all nodes) = q * reliability.
  EXPECT_NEAR(est.giant_fraction_all.mean(),
              q * core::poisson_reliability(z, q), 0.01);
}

TEST(GiantComponentEstimate, SmallNearCriticalPoint) {
  const auto fanout = core::poisson_fanout(2.0);
  MonteCarloOptions opt;
  opt.replications = 20;
  // zq = 0.7: subcritical; finite-size giant fraction stays small.
  const auto est = estimate_giant_component(2000, *fanout, 0.35, opt);
  EXPECT_LT(est.giant_fraction_alive.mean(), 0.1);
}

TEST(GiantComponentEstimate, LargerGroupsTrackAnalysisBetter) {
  // Section 5.1's observation: "our modeling works better in larger scale
  // systems".
  const double z = 3.0;
  const double q = 0.6;
  const double analysis = core::poisson_reliability(z, q);
  const auto fanout = core::poisson_fanout(z);
  MonteCarloOptions opt;
  opt.replications = 30;
  const auto small = estimate_giant_component(200, *fanout, q, opt);
  const auto large = estimate_giant_component(4000, *fanout, q, opt);
  const double err_small = std::abs(small.giant_fraction_alive.mean() -
                                    analysis);
  const double err_large = std::abs(large.giant_fraction_alive.mean() -
                                    analysis);
  EXPECT_LT(err_large, err_small + 0.01);
}

TEST(GiantComponentEstimate, MeanComponentSizeMatchesEq2Subcritical) {
  // Below the transition, Eq. (2) <s> = q[1 + qz/(1-qz)] is the mean size
  // of a random member's component (failed members counting 0). Poisson
  // z = 2, q = 0.3 -> <s> = 0.3 * (1 + 0.6/0.4) = 0.75.
  const auto fanout = core::poisson_fanout(2.0);
  MonteCarloOptions opt;
  opt.replications = 30;
  opt.seed = 21;
  const auto est = estimate_giant_component(5000, *fanout, 0.3, opt);
  EXPECT_NEAR(est.mean_component_size.mean(), 0.75, 0.05);
}

TEST(GiantComponentEstimate, MeanComponentSizeGrowsTowardTransition) {
  const auto fanout = core::poisson_fanout(4.0);
  MonteCarloOptions opt;
  opt.replications = 15;
  opt.seed = 22;
  const auto far = estimate_giant_component(3000, *fanout, 0.10, opt);
  const auto near = estimate_giant_component(3000, *fanout, 0.22, opt);
  EXPECT_GT(near.mean_component_size.mean(), far.mean_component_size.mean());
}

TEST(GiantComponentEstimate, ValidationErrors) {
  const auto fanout = core::poisson_fanout(2.0);
  MonteCarloOptions opt;
  EXPECT_THROW((void)estimate_giant_component(1, *fanout, 0.5, opt),
               std::invalid_argument);
  EXPECT_THROW((void)estimate_giant_component(100, *fanout, 0.0, opt),
               std::invalid_argument);
  opt.replications = 0;
  EXPECT_THROW((void)estimate_giant_component(100, *fanout, 0.5, opt),
               std::invalid_argument);
}

TEST(SuccessCountExperiment, GiantMetricFollowsBinomialModel) {
  // Scaled-down Fig. 6: the X histogram must fit B(t, S) by chi-square.
  SuccessCountParams params;
  params.num_nodes = 600;
  params.fanout = core::poisson_fanout(4.0);
  params.nonfailed_ratio = 0.9;
  params.executions = 20;
  params.simulations = 20;
  params.metric = SuccessMetric::kGiantMembership;
  MonteCarloOptions opt;
  opt.seed = 11;
  const auto result = run_success_count_experiment(params, opt);

  const double s = core::poisson_reliability(4.0, 0.9);
  EXPECT_NEAR(result.mean_count, 20.0 * s, 0.3);

  std::vector<std::uint64_t> observed;
  for (std::int64_t k = 0; k <= 20; ++k) {
    observed.push_back(result.histogram.count(k));
  }
  const auto expected = core::success_count_pmf(20, s);
  const auto gof = stats::chi_square_test(observed, expected);
  // Members within one execution are correlated (they share the same
  // realized graph), which inflates the chi-square statistic relative to
  // i.i.d. sampling; accept a loose threshold and check the mean hard.
  EXPECT_GT(gof.p_value, 1e-6);
}

TEST(SuccessCountExperiment, DeliveryMetricIsDeflatedByDieOut) {
  SuccessCountParams params;
  params.num_nodes = 600;
  params.fanout = core::poisson_fanout(4.0);
  params.nonfailed_ratio = 0.9;
  params.executions = 20;
  params.simulations = 10;
  MonteCarloOptions opt;
  opt.seed = 13;

  params.metric = SuccessMetric::kGiantMembership;
  const auto giant = run_success_count_experiment(params, opt);
  params.metric = SuccessMetric::kSourceDelivery;
  const auto delivery = run_success_count_experiment(params, opt);

  const double s = core::poisson_reliability(4.0, 0.9);
  EXPECT_GT(giant.mean_count, delivery.mean_count);
  EXPECT_NEAR(delivery.mean_count, 20.0 * s * s, 1.0);
}

TEST(SuccessCountExperiment, SampleCountMatchesAliveMembers) {
  SuccessCountParams params;
  params.num_nodes = 200;
  params.fanout = core::poisson_fanout(3.0);
  params.nonfailed_ratio = 0.5;
  params.executions = 5;
  params.simulations = 4;
  MonteCarloOptions opt;
  const auto result = run_success_count_experiment(params, opt);
  EXPECT_EQ(result.histogram.total(), result.member_samples);
  // ~ simulations * (n*q - 1) samples.
  EXPECT_NEAR(static_cast<double>(result.member_samples), 4.0 * 99.0, 60.0);
}

TEST(SuccessCountExperiment, ValidationErrors) {
  SuccessCountParams params;
  MonteCarloOptions opt;
  params.num_nodes = 1;
  params.fanout = core::poisson_fanout(2.0);
  EXPECT_THROW((void)run_success_count_experiment(params, opt),
               std::invalid_argument);
  params.num_nodes = 100;
  params.fanout = nullptr;
  EXPECT_THROW((void)run_success_count_experiment(params, opt),
               std::invalid_argument);
  params.fanout = core::poisson_fanout(2.0);
  params.executions = 0;
  EXPECT_THROW((void)run_success_count_experiment(params, opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace gossip::experiment
