#include "rng/xoshiro256.hpp"

#include <set>

#include <gtest/gtest.h>

#include "rng/splitmix64.hpp"

namespace gossip::rng {
namespace {

TEST(SplitMix64, MatchesReferenceVector) {
  // Reference outputs for seed 1234567 from the public-domain SplitMix64
  // implementation (Vigna).
  std::uint64_t state = 1234567;
  EXPECT_EQ(splitmix64_next(state), 6457827717110365317ULL);
  EXPECT_EQ(splitmix64_next(state), 3203168211198807973ULL);
  EXPECT_EQ(splitmix64_next(state), 9817491932198370423ULL);
}

TEST(MixSeed, DistinctInputsGiveDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t a = 0; a < 20; ++a) {
    for (std::uint64_t b = 0; b < 20; ++b) {
      seeds.insert(mix_seed(a, b));
    }
  }
  EXPECT_EQ(seeds.size(), 400u);
}

TEST(MixSeed, IsOrderSensitive) {
  EXPECT_NE(mix_seed(1, 2), mix_seed(2, 1));
}

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256StarStar a(42);
  Xoshiro256StarStar b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256StarStar a(1);
  Xoshiro256StarStar b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Xoshiro256, ZeroSeedIsValid) {
  Xoshiro256StarStar g(0);
  // The all-zero state would get stuck at 0; seeding via SplitMix64
  // guarantees a live state.
  bool any_nonzero = false;
  for (int i = 0; i < 10; ++i) {
    if (g() != 0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(Xoshiro256, JumpProducesDisjointStream) {
  Xoshiro256StarStar base(7);
  Xoshiro256StarStar jumped(7);
  jumped.jump();
  // Collect values from both; overlap should be essentially impossible.
  std::set<std::uint64_t> from_base;
  for (int i = 0; i < 1000; ++i) from_base.insert(base());
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    if (from_base.count(jumped())) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Xoshiro256, LongJumpDiffersFromJump) {
  Xoshiro256StarStar a(7);
  Xoshiro256StarStar b(7);
  a.jump();
  b.long_jump();
  EXPECT_NE(a(), b());
}

TEST(Xoshiro256, EqualityComparesState) {
  Xoshiro256StarStar a(3);
  Xoshiro256StarStar b(3);
  EXPECT_EQ(a, b);
  (void)a();
  EXPECT_NE(a, b);
  (void)b();
  EXPECT_EQ(a, b);
}

TEST(Xoshiro256, BitsLookBalanced) {
  // Crude sanity check: across 10k draws each of the 64 bit positions
  // should be set roughly half the time.
  Xoshiro256StarStar g(99);
  int counts[64] = {};
  const int draws = 10000;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t v = g();
    for (int b = 0; b < 64; ++b) {
      if (v & (std::uint64_t{1} << b)) ++counts[b];
    }
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_GT(counts[b], draws / 2 - 500) << "bit " << b;
    EXPECT_LT(counts[b], draws / 2 + 500) << "bit " << b;
  }
}

}  // namespace
}  // namespace gossip::rng
