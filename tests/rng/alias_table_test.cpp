#include "rng/alias_table.hpp"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "stats/gof.hpp"

namespace gossip::rng {
namespace {

TEST(AliasTable, NormalizesWeights) {
  const std::vector<double> w{1.0, 3.0};
  const AliasTable table(w);
  EXPECT_DOUBLE_EQ(table.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(table.probability(1), 0.75);
  EXPECT_EQ(table.size(), 2u);
}

TEST(AliasTable, SingleCategoryAlwaysSampled) {
  const AliasTable table(std::vector<double>{5.0});
  RngStream g(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(table.sample(g), 0u);
  }
}

TEST(AliasTable, ZeroWeightCategoryNeverSampled) {
  const AliasTable table(std::vector<double>{1.0, 0.0, 1.0});
  RngStream g(2);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_NE(table.sample(g), 1u);
  }
}

TEST(AliasTable, SamplesMatchDistribution) {
  const std::vector<double> w{0.1, 0.4, 0.2, 0.05, 0.25};
  const AliasTable table(w);
  RngStream g(3);
  std::vector<std::uint64_t> observed(w.size(), 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++observed[table.sample(g)];
  const auto result = stats::chi_square_test(observed, w);
  EXPECT_GT(result.p_value, 1e-3) << "chi2=" << result.statistic;
}

TEST(AliasTable, HandlesManyCategoriesUniform) {
  std::vector<double> w(1000, 1.0);
  const AliasTable table(w);
  RngStream g(4);
  std::vector<int> counts(w.size(), 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[table.sample(g)];
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_GT(counts[i], 100) << i;
    EXPECT_LT(counts[i], 320) << i;
  }
}

TEST(AliasTable, HandlesExtremeWeightSkew) {
  const std::vector<double> w{1e-9, 1.0};
  const AliasTable table(w);
  RngStream g(5);
  int zeros = 0;
  for (int i = 0; i < 100000; ++i) {
    if (table.sample(g) == 0) ++zeros;
  }
  EXPECT_LE(zeros, 2);
}

TEST(AliasTable, RejectsInvalidWeights) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{-1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace gossip::rng
