/// Property-based checks of the 8.8 LUT sampler: rather than pinning a
/// handful of hand-picked distributions, a tiny seed-driven generator
/// produces random pmfs (random support size, random weights, occasional
/// zero entries) and every generated table must satisfy the sampler's
/// structural invariants — the code-to-outcome map is a monotone inverse
/// CDF, the realized pmf is a probability distribution over the input's
/// support, and its mean lands within the quantization error bound.

#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "rng/lut_sampler.hpp"
#include "rng/rng_stream.hpp"

namespace gossip::rng {
namespace {

constexpr std::uint32_t kCodeSpace = 1u << 16;

/// Seed-driven pmf generator. Weights are uniform in (0, 1] with every
/// third entry zeroed on average, so generated distributions exercise
/// interior holes in the support (the inverse CDF must step over them).
std::vector<double> random_pmf(RngStream& rng) {
  const auto support = 1 + static_cast<std::size_t>(rng.next_below(32));
  std::vector<double> weights(support);
  for (auto& w : weights) {
    const bool zero = support > 1 && rng.next_below(3) == 0;
    w = zero ? 0.0 : rng.next_double_open();
  }
  // Keep at least one positive entry.
  if (std::accumulate(weights.begin(), weights.end(), 0.0) == 0.0) {
    weights[support / 2] = 1.0;
  }
  return weights;
}

double pmf_mean(const std::vector<double>& weights) {
  double mass = 0.0;
  double weighted = 0.0;
  for (std::size_t k = 0; k < weights.size(); ++k) {
    mass += weights[k];
    weighted += static_cast<double>(k) * weights[k];
  }
  return weighted / mass;
}

TEST(Lut88SamplerProperty, CodeMapIsAMonotoneInverseCdf) {
  // The defining property of inverse-CDF sampling: a larger uniform code
  // can never map to a smaller outcome. Checked exhaustively over all
  // 2^16 codes for every generated pmf — any interpolation or rounding
  // bug that reorders two adjacent codes fails here.
  RngStream rng(20080808);
  for (int trial = 0; trial < 25; ++trial) {
    const auto weights = random_pmf(rng);
    const Lut88Sampler sampler(weights);
    std::int64_t previous = sampler.sample_code(0);
    for (std::uint32_t code = 1; code < kCodeSpace; ++code) {
      const std::int64_t value = sampler.sample_code(code);
      ASSERT_GE(value, previous)
          << "trial " << trial << " code " << code << ": inverse CDF "
          << "decreased from " << previous << " to " << value;
      previous = value;
    }
    EXPECT_LE(previous, sampler.max_value()) << "trial " << trial;
  }
}

TEST(Lut88SamplerProperty, RealizedPmfIsADistributionOnTheInputSupport) {
  RngStream rng(42);
  for (int trial = 0; trial < 25; ++trial) {
    const auto weights = random_pmf(rng);
    const Lut88Sampler sampler(weights);
    const auto realized = sampler.realized_pmf();

    // Exactly the 2^16 codes, normalized: mass 1 within float fold error.
    EXPECT_NEAR(std::accumulate(realized.begin(), realized.end(), 0.0), 1.0,
                1e-12)
        << "trial " << trial;
    // No probability invented outside the input support.
    EXPECT_LE(realized.size(), weights.size()) << "trial " << trial;
    for (std::size_t k = 0; k < realized.size(); ++k) {
      EXPECT_GE(realized[k], 0.0) << "trial " << trial << " outcome " << k;
    }
  }
}

TEST(Lut88SamplerProperty, RealizedMeanLandsWithinQuantizationError) {
  // 8.8 quantization moves each CDF breakpoint by at most ~2^-8, so the
  // realized mean may drift from the target mean by O(support * 2^-8).
  // The bound below is loose by design: it is the structural guarantee,
  // not a golden value (protocol-level equivalence is pinned elsewhere).
  RngStream rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const auto weights = random_pmf(rng);
    const Lut88Sampler sampler(weights);
    const double target = pmf_mean(weights);
    const double tolerance =
        0.5 + static_cast<double>(weights.size()) * (1.0 / 256.0);
    EXPECT_NEAR(sampler.realized_mean(), target, tolerance)
        << "trial " << trial << " support " << weights.size();
  }
}

TEST(Lut88SamplerProperty, SampleDrawsThroughTheSameCodePath) {
  // sample(rng) must be sample_code applied to the draw's top 16 bits —
  // the stochastic path and the exhaustively-tested kernel cannot drift
  // apart.
  const Lut88Sampler sampler({0.1, 0.4, 0.3, 0.2});
  RngStream sample_stream(99);
  RngStream code_stream(99);
  for (int draw = 0; draw < 1000; ++draw) {
    const auto expected =
        sampler.sample_code(static_cast<std::uint32_t>(code_stream() >> 48));
    EXPECT_EQ(sampler.sample(sample_stream), expected) << "draw " << draw;
  }
}

}  // namespace
}  // namespace gossip::rng
