/// Lut88Sampler: the 8.8 fixed-point inverse-CDF table behind the flat
/// engine's batched fanout draws. The table realizes a quantized pmf; the
/// tests sweep the full 16-bit code space exhaustively, so the bounds here
/// are exact properties of the table, not statistical checks.

#include "rng/lut_sampler.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/degree_distribution.hpp"

namespace gossip::rng {
namespace {

TEST(Lut88Sampler, RejectsDegeneratePmfs) {
  EXPECT_THROW(Lut88Sampler({}), std::invalid_argument);
  EXPECT_THROW(Lut88Sampler({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(Lut88Sampler({0.5, -0.1}), std::invalid_argument);
  EXPECT_THROW(Lut88Sampler(std::vector<double>(300, 1.0)),
               std::invalid_argument);  // support exceeds 8.8 range
}

TEST(Lut88Sampler, PointMassAlwaysReturnsThatOutcome) {
  // P(X = 4) = 1: every one of the 2^16 codes must map to 4 — the LUT
  // equivalent of fixed_fanout(4).
  std::vector<double> weights(5, 0.0);
  weights[4] = 1.0;
  const Lut88Sampler sampler(weights);
  EXPECT_EQ(sampler.max_value(), 4);
  for (std::uint32_t code = 0; code < (1u << 16); ++code) {
    ASSERT_EQ(sampler.sample_code(code), 4) << "code " << code;
  }
}

TEST(Lut88Sampler, RealizedPmfTracksTargetWithinQuantization) {
  // Poisson(4) truncated to the LUT support. Each CDF entry is quantized to
  // 8 fractional bits, so any outcome's realized probability can shift by
  // about 2 * 2^-8; assert a bound just above that.
  const auto dist = core::poisson_fanout(4.0);
  auto weights = dist->pmf_vector(1e-9);
  ASSERT_LE(weights.size(), 256u);
  const Lut88Sampler sampler(weights);

  double total = 0.0;
  for (const double w : weights) total += w;
  const auto realized = sampler.realized_pmf();
  ASSERT_GE(realized.size(), weights.size());
  for (std::size_t k = 0; k < weights.size(); ++k) {
    EXPECT_NEAR(realized[k], weights[k] / total, 2.5 / 256.0)
        << "outcome " << k;
  }
}

TEST(Lut88Sampler, RealizedMeanMatchesTargetMean) {
  const auto dist = core::poisson_fanout(4.0);
  const Lut88Sampler sampler(dist->pmf_vector(1e-9));
  // Mean error compounds per-outcome quantization; observed error is well
  // under 0.02 for Poisson(4).
  EXPECT_NEAR(sampler.realized_mean(), 4.0, 0.05);
}

TEST(Lut88Sampler, SampleIsDeterministicAndConsumesOneDraw) {
  const auto dist = core::poisson_fanout(4.0);
  const Lut88Sampler sampler(dist->pmf_vector(1e-9));
  RngStream rng1(123);
  RngStream rng2(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(sampler.sample(rng1), sampler.sample(rng2));
  }
  // One raw 64-bit draw per sample: the streams stay in lockstep with a
  // stream that only drew raw words.
  RngStream rng3(123);
  for (int i = 0; i < 1000; ++i) (void)rng3();
  EXPECT_EQ(rng1(), rng3());
}

TEST(Lut88Sampler, EmpiricalMeanMatchesRealizedMean) {
  const auto dist = core::poisson_fanout(4.0);
  const Lut88Sampler sampler(dist->pmf_vector(1e-9));
  RngStream rng(2008);
  const int draws = 200'000;
  double sum = 0.0;
  for (int i = 0; i < draws; ++i) {
    sum += static_cast<double>(sampler.sample(rng));
  }
  const double sigma = 2.0 / std::sqrt(static_cast<double>(draws));
  EXPECT_NEAR(sum / draws, sampler.realized_mean(), 4.0 * sigma);
}

TEST(Lut88Sampler, UnnormalizedWeightsAreNormalized) {
  // Scaling every weight by a constant must not change the table.
  const std::vector<double> base{0.25, 0.5, 0.25};
  const std::vector<double> scaled{25.0, 50.0, 25.0};
  const Lut88Sampler a(base);
  const Lut88Sampler b(scaled);
  for (std::uint32_t code = 0; code < (1u << 16); ++code) {
    ASSERT_EQ(a.sample_code(code), b.sample_code(code)) << "code " << code;
  }
}

}  // namespace
}  // namespace gossip::rng
