#include "rng/rng_stream.hpp"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace gossip::rng {
namespace {

TEST(RngStream, DeterministicForSameSeed) {
  RngStream a(123);
  RngStream b(123);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a(), b());
    ASSERT_DOUBLE_EQ(a.next_double(), b.next_double());
  }
}

TEST(RngStream, SubstreamIsIndependentOfParentDrawOrder) {
  RngStream a(5);
  RngStream b(5);
  // Advance one parent but not the other; substreams must be identical.
  for (int i = 0; i < 17; ++i) (void)a();
  RngStream sub_a = a.substream(3);
  RngStream sub_b = b.substream(3);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(sub_a(), sub_b());
  }
}

TEST(RngStream, SubstreamsWithDifferentIndicesDiffer) {
  const RngStream root(5);
  RngStream s1 = root.substream(1);
  RngStream s2 = root.substream(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (s1() == s2()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(RngStream, NextDoubleInHalfOpenUnitInterval) {
  RngStream g(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = g.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(RngStream, NextDoubleOpenNeverZero) {
  RngStream g(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = g.next_double_open();
    ASSERT_GT(x, 0.0);
    ASSERT_LE(x, 1.0);
    ASSERT_TRUE(std::isfinite(std::log(x)));
  }
}

TEST(RngStream, NextDoubleMeanIsHalf) {
  RngStream g(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += g.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngStream, NextBelowStaysInRange) {
  RngStream g(13);
  for (const std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1000003ULL}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(g.next_below(bound), bound);
    }
  }
}

TEST(RngStream, NextBelowOneAlwaysZero) {
  RngStream g(13);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(g.next_below(1), 0u);
  }
}

TEST(RngStream, NextBelowIsApproximatelyUniform) {
  RngStream g(17);
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[g.next_below(bound)];
  for (std::uint64_t k = 0; k < bound; ++k) {
    EXPECT_NEAR(counts[k], draws / 10.0, 400.0) << "bucket " << k;
  }
}

TEST(RngStream, UniformIntCoversInclusiveRange) {
  RngStream g(19);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = g.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngStream, UniformIntSinglePoint) {
  RngStream g(19);
  EXPECT_EQ(g.uniform_int(5, 5), 5);
}

TEST(RngStream, BernoulliEdgeProbabilities) {
  RngStream g(23);
  for (int i = 0; i < 100; ++i) {
    ASSERT_FALSE(g.bernoulli(0.0));
    ASSERT_TRUE(g.bernoulli(1.0));
    ASSERT_FALSE(g.bernoulli(-0.5));
    ASSERT_TRUE(g.bernoulli(1.5));
  }
}

TEST(RngStream, BernoulliFrequencyMatchesProbability) {
  RngStream g(29);
  const double p = 0.3;
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (g.bernoulli(p)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(RngStream, SeedAccessorReturnsConstructionSeed) {
  const RngStream g(777);
  EXPECT_EQ(g.seed(), 777u);
}

}  // namespace
}  // namespace gossip::rng
