#include "rng/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "math/special.hpp"
#include "stats/gof.hpp"
#include "stats/summary.hpp"

namespace gossip::rng {
namespace {

constexpr int kDraws = 60000;

/// Chi-square goodness-of-fit of sampled counts against a pmf callback over
/// support {0..max_k}; asserts p-value above 0.001.
template <typename Sampler, typename Pmf>
void expect_pmf_fit(Sampler&& draw, Pmf&& pmf, std::int64_t max_k,
                    const char* label) {
  std::vector<std::uint64_t> observed(static_cast<std::size_t>(max_k) + 1, 0);
  for (int i = 0; i < kDraws; ++i) {
    const std::int64_t k = std::min<std::int64_t>(draw(), max_k);
    ASSERT_GE(k, 0) << label;
    ++observed[static_cast<std::size_t>(k)];
  }
  std::vector<double> expected(static_cast<std::size_t>(max_k) + 1, 0.0);
  double cumulative = 0.0;
  for (std::int64_t k = 0; k < max_k; ++k) {
    expected[static_cast<std::size_t>(k)] = pmf(k);
    cumulative += expected[static_cast<std::size_t>(k)];
  }
  expected[static_cast<std::size_t>(max_k)] = std::max(0.0, 1.0 - cumulative);
  const auto result = stats::chi_square_test(observed, expected);
  EXPECT_GT(result.p_value, 1e-3)
      << label << " chi2=" << result.statistic << " dof=" << result.dof;
}

TEST(SamplePoisson, SmallMeanMatchesPmf) {
  RngStream g(101);
  const double mean = 3.3;  // Knuth regime
  expect_pmf_fit([&] { return sample_poisson(g, mean); },
                 [&](std::int64_t k) { return math::poisson_pmf(k, mean); },
                 15, "poisson-3.3");
}

TEST(SamplePoisson, LargeMeanMatchesPmf) {
  RngStream g(103);
  const double mean = 42.0;  // PTRS regime
  expect_pmf_fit([&] { return sample_poisson(g, mean); },
                 [&](std::int64_t k) { return math::poisson_pmf(k, mean); },
                 90, "poisson-42");
}

TEST(SamplePoisson, BoundaryRegimeMatchesPmf) {
  RngStream g(105);
  const double mean = 10.0;  // first PTRS mean
  expect_pmf_fit([&] { return sample_poisson(g, mean); },
                 [&](std::int64_t k) { return math::poisson_pmf(k, mean); },
                 30, "poisson-10");
}

TEST(SamplePoisson, MeanAndVarianceMatch) {
  RngStream g(107);
  const double mean = 6.7;
  stats::OnlineSummary s;
  for (int i = 0; i < kDraws; ++i) {
    s.add(static_cast<double>(sample_poisson(g, mean)));
  }
  EXPECT_NEAR(s.mean(), mean, 0.06);
  EXPECT_NEAR(s.variance(), mean, 0.2);
}

TEST(SamplePoisson, ZeroMeanAlwaysZero) {
  RngStream g(109);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sample_poisson(g, 0.0), 0);
  }
}

TEST(SamplePoisson, RejectsNegativeMean) {
  RngStream g(1);
  EXPECT_THROW((void)sample_poisson(g, -1.0), std::invalid_argument);
}

TEST(SampleBinomial, MatchesPmf) {
  RngStream g(111);
  const std::int64_t n = 20;
  const double p = 0.35;
  expect_pmf_fit([&] { return sample_binomial(g, n, p); },
                 [&](std::int64_t k) { return math::binomial_pmf(n, k, p); },
                 n, "binomial-20-0.35");
}

TEST(SampleBinomial, HighProbabilityUsesSymmetry) {
  RngStream g(113);
  const std::int64_t n = 15;
  const double p = 0.85;
  expect_pmf_fit([&] { return sample_binomial(g, n, p); },
                 [&](std::int64_t k) { return math::binomial_pmf(n, k, p); },
                 n, "binomial-15-0.85");
}

TEST(SampleBinomial, EdgeCases) {
  RngStream g(115);
  EXPECT_EQ(sample_binomial(g, 0, 0.5), 0);
  EXPECT_EQ(sample_binomial(g, 10, 0.0), 0);
  EXPECT_EQ(sample_binomial(g, 10, 1.0), 10);
  EXPECT_THROW((void)sample_binomial(g, -1, 0.5), std::invalid_argument);
  EXPECT_THROW((void)sample_binomial(g, 5, 1.5), std::invalid_argument);
}

TEST(SampleGeometric, MatchesPmf) {
  RngStream g(117);
  const double p = 0.25;
  expect_pmf_fit(
      [&] { return sample_geometric(g, p); },
      [&](std::int64_t k) {
        return p * std::pow(1.0 - p, static_cast<double>(k));
      },
      30, "geometric-0.25");
}

TEST(SampleGeometric, SuccessProbabilityOneIsZero) {
  RngStream g(119);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sample_geometric(g, 1.0), 0);
  }
}

TEST(SampleGeometric, RejectsInvalidProbability) {
  RngStream g(1);
  EXPECT_THROW((void)sample_geometric(g, 0.0), std::invalid_argument);
  EXPECT_THROW((void)sample_geometric(g, 1.5), std::invalid_argument);
}

TEST(SampleZipf, MatchesPmf) {
  RngStream g(121);
  const std::int64_t n = 50;
  const double s = 1.5;
  double norm = 0.0;
  for (std::int64_t k = 1; k <= n; ++k) {
    norm += std::pow(static_cast<double>(k), -s);
  }
  // Shift support down by one for the histogram helper (zipf starts at 1).
  expect_pmf_fit(
      [&] { return sample_zipf(g, n, s) - 1; },
      [&](std::int64_t k) {
        return std::pow(static_cast<double>(k + 1), -s) / norm;
      },
      n - 1, "zipf-50-1.5");
}

TEST(SampleZipf, ExponentOneHarmonicCase) {
  RngStream g(123);
  const std::int64_t n = 20;
  const double s = 1.0;
  double norm = 0.0;
  for (std::int64_t k = 1; k <= n; ++k) {
    norm += 1.0 / static_cast<double>(k);
  }
  expect_pmf_fit(
      [&] { return sample_zipf(g, n, s) - 1; },
      [&](std::int64_t k) { return 1.0 / static_cast<double>(k + 1) / norm; },
      n - 1, "zipf-20-1.0");
}

TEST(SampleZipf, SingletonSupport) {
  RngStream g(125);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sample_zipf(g, 1, 2.0), 1);
  }
}

TEST(SampleZipf, StaysInSupport) {
  RngStream g(127);
  for (int i = 0; i < 10000; ++i) {
    const auto k = sample_zipf(g, 7, 0.8);
    ASSERT_GE(k, 1);
    ASSERT_LE(k, 7);
  }
}

TEST(SampleExponential, MeanMatches) {
  RngStream g(129);
  const double rate = 2.5;
  stats::OnlineSummary s;
  for (int i = 0; i < kDraws; ++i) s.add(sample_exponential(g, rate));
  EXPECT_NEAR(s.mean(), 1.0 / rate, 0.01);
  EXPECT_THROW((void)sample_exponential(g, 0.0), std::invalid_argument);
}

TEST(SampleStandardNormal, MomentsMatch) {
  RngStream g(131);
  stats::OnlineSummary s;
  for (int i = 0; i < kDraws; ++i) s.add(sample_standard_normal(g));
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.variance(), 1.0, 0.03);
}

TEST(SampleLognormal, MedianMatches) {
  RngStream g(133);
  const double mu = 0.7;
  const double sigma = 0.5;
  std::vector<double> xs;
  xs.reserve(kDraws);
  for (int i = 0; i < kDraws; ++i) xs.push_back(sample_lognormal(g, mu, sigma));
  std::nth_element(xs.begin(), xs.begin() + kDraws / 2, xs.end());
  EXPECT_NEAR(xs[kDraws / 2], std::exp(mu), 0.05);
  EXPECT_THROW((void)sample_lognormal(g, 0.0, 0.0), std::invalid_argument);
}

TEST(SampleDistinct, ReturnsDistinctValuesInRange) {
  RngStream g(135);
  for (int trial = 0; trial < 200; ++trial) {
    const auto picks = sample_distinct(g, 10, 50);
    std::set<std::uint32_t> unique(picks.begin(), picks.end());
    ASSERT_EQ(unique.size(), 10u);
    for (const auto v : picks) ASSERT_LT(v, 50u);
  }
}

TEST(SampleDistinct, FullDrawIsPermutationOfRange) {
  RngStream g(137);
  const auto picks = sample_distinct(g, 8, 8);
  std::set<std::uint32_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 8u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 7u);
}

TEST(SampleDistinct, ZeroDrawIsEmpty) {
  RngStream g(139);
  EXPECT_TRUE(sample_distinct(g, 0, 5).empty());
}

TEST(SampleDistinct, MarginalInclusionIsUniform) {
  RngStream g(141);
  const std::size_t n = 20;
  const std::size_t k = 5;
  std::vector<int> counts(n, 0);
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    for (const auto v : sample_distinct(g, k, n)) ++counts[v];
  }
  const double expected = static_cast<double>(trials) * k / n;
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_NEAR(counts[v], expected, expected * 0.05) << "index " << v;
  }
}

TEST(SampleDistinct, RejectsKGreaterThanN) {
  RngStream g(1);
  EXPECT_THROW((void)sample_distinct(g, 6, 5), std::invalid_argument);
}

TEST(SampleDistinctExcluding, NeverReturnsExcluded) {
  RngStream g(143);
  for (int trial = 0; trial < 500; ++trial) {
    const auto picks = sample_distinct_excluding(g, 7, 20, 13);
    for (const auto v : picks) {
      ASSERT_NE(v, 13u);
      ASSERT_LT(v, 20u);
    }
    std::set<std::uint32_t> unique(picks.begin(), picks.end());
    ASSERT_EQ(unique.size(), 7u);
  }
}

TEST(SampleDistinctExcluding, CanDrawAllOtherNodes) {
  RngStream g(145);
  const auto picks = sample_distinct_excluding(g, 9, 10, 4);
  std::set<std::uint32_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 9u);
  EXPECT_FALSE(unique.count(4));
}

TEST(SampleDistinctExcluding, RejectsInvalidArguments) {
  RngStream g(1);
  EXPECT_THROW((void)sample_distinct_excluding(g, 10, 10, 0),
               std::invalid_argument);
  EXPECT_THROW((void)sample_distinct_excluding(g, 1, 10, 10),
               std::invalid_argument);
}

}  // namespace
}  // namespace gossip::rng
