#include "core/fanout_planner.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

#include "core/reliability_model.hpp"
#include "core/success_model.hpp"

namespace gossip::core {
namespace {

TEST(PlanPoissonGossip, PlanMeetsAllTargets) {
  PlanRequest req;
  req.target_reliability = 0.95;
  req.target_success = 0.999;
  req.nonfailed_ratio = 0.8;
  const auto plan = plan_poisson_gossip(req);

  EXPECT_GE(plan.predicted_reliability, 0.95 - 1e-6);
  EXPECT_GE(plan.predicted_success, 0.999);
  EXPECT_GT(plan.mean_fanout, 1.0 / req.nonfailed_ratio);  // supercritical
  EXPECT_NEAR(plan.critical_q, 1.0 / plan.mean_fanout, 1e-12);
  EXPECT_GT(plan.failure_margin, 0.0);
  EXPECT_GE(plan.executions, 1);
}

TEST(PlanPoissonGossip, ReproducesPaperOperatingPoint) {
  // Target the paper's operating point at q = 0.9 and p_s = 0.999: the
  // plan lands on z ~ 4.0 (the paper's {f=4.0, q=0.9} pair). The exact
  // reliability at that fanout is 0.9695; Eq. (6) then needs t = 2
  // (ln 0.001 / ln 0.0305 = 1.98). The paper's t = 3 comes from its
  // rounded R = 0.967, which success_model_test checks separately.
  PlanRequest req;
  req.target_reliability = 0.9695;
  req.target_success = 0.999;
  req.nonfailed_ratio = 0.9;
  const auto plan = plan_poisson_gossip(req);
  EXPECT_NEAR(plan.mean_fanout, 4.0, 0.02);
  EXPECT_EQ(plan.executions, 2);
  EXPECT_GE(plan.predicted_success, 0.999);
}

TEST(PlanPoissonGossip, HarderTargetsNeedMoreFanout) {
  PlanRequest easy;
  easy.target_reliability = 0.8;
  easy.nonfailed_ratio = 0.9;
  PlanRequest hard = easy;
  hard.target_reliability = 0.999;
  EXPECT_GT(plan_poisson_gossip(hard).mean_fanout,
            plan_poisson_gossip(easy).mean_fanout);
}

TEST(PlanPoissonGossip, MoreFailuresNeedMoreFanout) {
  PlanRequest healthy;
  healthy.target_reliability = 0.95;
  healthy.nonfailed_ratio = 1.0;
  PlanRequest faulty = healthy;
  faulty.nonfailed_ratio = 0.5;
  EXPECT_GT(plan_poisson_gossip(faulty).mean_fanout,
            plan_poisson_gossip(healthy).mean_fanout);
}

TEST(PlanPoissonGossip, PredictionRoundTripsThroughModel) {
  PlanRequest req;
  req.target_reliability = 0.9;
  req.nonfailed_ratio = 0.7;
  const auto plan = plan_poisson_gossip(req);
  EXPECT_NEAR(plan.predicted_reliability,
              poisson_reliability(plan.mean_fanout, req.nonfailed_ratio),
              1e-12);
  EXPECT_NEAR(plan.predicted_success,
              success_probability(plan.predicted_reliability, plan.executions),
              1e-12);
}

TEST(PlanPoissonGossip, RejectsInvalidRequests) {
  PlanRequest req;
  req.target_reliability = 0.0;
  EXPECT_THROW((void)plan_poisson_gossip(req), std::invalid_argument);
  req.target_reliability = 1.0;
  EXPECT_THROW((void)plan_poisson_gossip(req), std::invalid_argument);
  req.target_reliability = 0.9;
  req.target_success = 1.0;
  EXPECT_THROW((void)plan_poisson_gossip(req), std::invalid_argument);
  req.target_success = 0.999;
  req.nonfailed_ratio = 0.0;
  EXPECT_THROW((void)plan_poisson_gossip(req), std::invalid_argument);
}

TEST(MaxTolerableFailureRatio, RoundTripsWithReliability) {
  // At the reported maximum failure ratio, the reliability equals the
  // target; any more failures and it drops below.
  const double z = 5.0;
  const double target = 0.9;
  const double max_failures = max_tolerable_failure_ratio(z, target);
  ASSERT_GT(max_failures, 0.0);
  const double q_min = 1.0 - max_failures;
  EXPECT_NEAR(poisson_reliability(z, q_min), target, 1e-6);
  EXPECT_LT(poisson_reliability(z, q_min - 0.05), target);
}

TEST(MaxTolerableFailureRatio, ZeroWhenFanoutTooSmall) {
  // Fanout below what the target needs even at q = 1.
  EXPECT_DOUBLE_EQ(max_tolerable_failure_ratio(1.0, 0.99), 0.0);
}

TEST(MaxTolerableFailureRatio, GrowsWithFanout) {
  const double target = 0.9;
  double prev = -1.0;
  for (double z = 3.0; z <= 20.0; z += 1.0) {
    const double m = max_tolerable_failure_ratio(z, target);
    EXPECT_GE(m, prev) << "z=" << z;
    prev = m;
  }
  EXPECT_GT(prev, 0.8);
}

}  // namespace
}  // namespace gossip::core
