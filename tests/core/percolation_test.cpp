#include "core/percolation.hpp"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/reliability_model.hpp"

namespace gossip::core {
namespace {

TEST(Percolation, CriticalRatioIsInverseMeanExcessDegree) {
  // Poisson(z): q_c = 1/z (paper Eq. 10).
  const auto gf =
      GeneratingFunction::from_distribution(*poisson_fanout(4.0), 1e-13);
  EXPECT_NEAR(critical_nonfailed_ratio(gf), 0.25, 1e-7);
  // Fixed k: q_c = 1/(k-1).
  const auto gf_fixed =
      GeneratingFunction::from_distribution(*fixed_fanout(5), 1e-13);
  EXPECT_NEAR(critical_nonfailed_ratio(gf_fixed), 0.25, 1e-12);
}

TEST(Percolation, NoGiantComponentPossibleWithoutExcessDegree) {
  // All mass on degree <= 1: G1'(1) = 0, q_c = +inf.
  const GeneratingFunction gf({0.5, 0.5});
  EXPECT_TRUE(std::isinf(critical_nonfailed_ratio(gf)));
  const auto result = analyze_site_percolation(gf, 1.0);
  EXPECT_FALSE(result.supercritical);
  EXPECT_DOUBLE_EQ(result.reliability, 0.0);
}

TEST(Percolation, SubcriticalHasZeroGiantComponent) {
  const auto gf =
      GeneratingFunction::from_distribution(*poisson_fanout(2.0), 1e-13);
  const auto result = analyze_site_percolation(gf, 0.3);  // zq = 0.6 < 1
  EXPECT_FALSE(result.supercritical);
  EXPECT_NEAR(result.u, 1.0, 1e-6);
  EXPECT_NEAR(result.reliability, 0.0, 1e-5);
  EXPECT_NEAR(result.giant_fraction_all, 0.0, 1e-5);
}

TEST(Percolation, SupercriticalMatchesPoissonClosedForm) {
  // The generic solver must reproduce Eq. (11)'s fixed point S = 1-e^{-zqS}.
  const double z = 4.0;
  const double q = 0.9;
  const auto gf =
      GeneratingFunction::from_distribution(*poisson_fanout(z), 1e-13);
  const auto result = analyze_site_percolation(gf, q);
  EXPECT_TRUE(result.supercritical);
  const double closed = poisson_reliability(z, q);
  EXPECT_NEAR(result.reliability, closed, 1e-7);
  // And the fixed point itself satisfies Eq. (11).
  EXPECT_NEAR(result.reliability,
              1.0 - std::exp(-z * q * result.reliability), 1e-9);
}

class PoissonAgreementSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(PoissonAgreementSweep, GenericSolverMatchesClosedForm) {
  const auto [z, q] = GetParam();
  const auto gf =
      GeneratingFunction::from_distribution(*poisson_fanout(z), 1e-13);
  const auto result = analyze_site_percolation(gf, q);
  EXPECT_NEAR(result.reliability, poisson_reliability(z, q), 1e-6)
      << "z=" << z << " q=" << q;
  EXPECT_GE(result.u, 0.0);
  EXPECT_LE(result.u, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PoissonAgreementSweep,
    ::testing::Values(std::pair{1.5, 0.9}, std::pair{2.0, 0.4},
                      std::pair{3.0, 0.5}, std::pair{4.0, 0.9},
                      std::pair{5.0, 0.25}, std::pair{6.0, 0.6},
                      std::pair{6.7, 1.0}, std::pair{10.0, 0.15},
                      std::pair{1.1, 1.0}, std::pair{2.0, 0.3}));

TEST(Percolation, ReliabilityMonotoneInOccupancy) {
  const auto gf =
      GeneratingFunction::from_distribution(*poisson_fanout(4.0), 1e-13);
  double prev = -1.0;
  for (double q = 0.3; q <= 1.0; q += 0.05) {
    const double r = analyze_site_percolation(gf, q).reliability;
    EXPECT_GE(r, prev - 1e-9) << "q=" << q;
    prev = r;
  }
}

TEST(Percolation, ReliabilityMonotoneInMeanFanout) {
  double prev = -1.0;
  for (double z = 1.2; z <= 8.0; z += 0.4) {
    const auto gf =
        GeneratingFunction::from_distribution(*poisson_fanout(z), 1e-13);
    const double r = analyze_site_percolation(gf, 0.8).reliability;
    EXPECT_GE(r, prev - 1e-9) << "z=" << z;
    prev = r;
  }
}

TEST(Percolation, MeanComponentSizeMatchesEq2) {
  // <s> = q [1 + q G0'(1) / (1 - q G1'(1))] below the transition.
  const double z = 2.0;
  const double q = 0.3;  // zq = 0.6, subcritical
  const auto gf =
      GeneratingFunction::from_distribution(*poisson_fanout(z), 1e-13);
  const auto result = analyze_site_percolation(gf, q);
  const double expected = q * (1.0 + q * z / (1.0 - q * z));
  EXPECT_NEAR(result.mean_component_size, expected, 1e-6);
}

TEST(Percolation, MeanComponentSizeDivergesAtTransition) {
  const auto gf =
      GeneratingFunction::from_distribution(*poisson_fanout(4.0), 1e-13);
  // Exactly at q_c the truncated pmf leaves the denominator a hair above
  // zero, so accept either +inf or an astronomically large value.
  const auto at = analyze_site_percolation(gf, 0.25);
  EXPECT_GT(at.mean_component_size, 1e6);
  const auto above = analyze_site_percolation(gf, 0.5);    // past q_c
  EXPECT_TRUE(std::isinf(above.mean_component_size));
  const auto below = analyze_site_percolation(gf, 0.2);
  EXPECT_TRUE(std::isfinite(below.mean_component_size));
  EXPECT_LT(below.mean_component_size, 100.0);
}

TEST(Percolation, MeanComponentSizeGrowsApproachingTransition) {
  const auto gf =
      GeneratingFunction::from_distribution(*poisson_fanout(4.0), 1e-13);
  double prev = 0.0;
  for (double q = 0.05; q < 0.25; q += 0.04) {
    const double s = analyze_site_percolation(gf, q).mean_component_size;
    EXPECT_GT(s, prev) << "q=" << q;
    prev = s;
  }
}

TEST(Percolation, FullOccupancyFullFanoutGivesNearTotalReliability) {
  const auto gf =
      GeneratingFunction::from_distribution(*poisson_fanout(10.0), 1e-13);
  const auto result = analyze_site_percolation(gf, 1.0);
  EXPECT_GT(result.reliability, 0.9999);
}

TEST(Percolation, ZeroOccupancyIsDegenerate) {
  const auto gf =
      GeneratingFunction::from_distribution(*poisson_fanout(4.0), 1e-13);
  const auto result = analyze_site_percolation(gf, 0.0);
  EXPECT_DOUBLE_EQ(result.reliability, 0.0);
  EXPECT_DOUBLE_EQ(result.giant_fraction_all, 0.0);
}

TEST(Percolation, RejectsOutOfRangeOccupancy) {
  const auto gf =
      GeneratingFunction::from_distribution(*poisson_fanout(4.0), 1e-13);
  EXPECT_THROW((void)analyze_site_percolation(gf, -0.1),
               std::invalid_argument);
  EXPECT_THROW((void)analyze_site_percolation(gf, 1.1), std::invalid_argument);
}

TEST(Percolation, GiantFractionAllEqualsReliabilityTimesQ) {
  const auto gf =
      GeneratingFunction::from_distribution(*poisson_fanout(5.0), 1e-13);
  const auto result = analyze_site_percolation(gf, 0.7);
  EXPECT_NEAR(result.giant_fraction_all, result.reliability * 0.7, 1e-10);
}

TEST(Percolation, HeavyTailPercolatesMoreEasilyAtEqualMean) {
  // Geometric's higher excess degree lowers q_c versus Poisson of the same
  // mean — the shape effect the paper's generality argument is about.
  const double mean = 3.0;
  const auto gf_poisson =
      GeneratingFunction::from_distribution(*poisson_fanout(mean), 1e-13);
  const auto gf_geo =
      GeneratingFunction::from_distribution(*geometric_fanout(mean), 1e-13);
  EXPECT_LT(critical_nonfailed_ratio(gf_geo),
            critical_nonfailed_ratio(gf_poisson));
}

}  // namespace
}  // namespace gossip::core
