#include "core/degree_distribution.hpp"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "rng/rng_stream.hpp"
#include "stats/summary.hpp"

namespace gossip::core {
namespace {

/// Property sweep shared by every distribution family.
class DistributionProperties
    : public ::testing::TestWithParam<DegreeDistributionPtr> {};

TEST_P(DistributionProperties, PmfVectorSumsToApproximatelyOne) {
  const auto& dist = *GetParam();
  const auto pmf = dist.pmf_vector(1e-12);
  double sum = 0.0;
  for (const double p : pmf) {
    ASSERT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9) << dist.name();
}

TEST_P(DistributionProperties, PmfVectorMeanMatchesDeclaredMean) {
  const auto& dist = *GetParam();
  const auto pmf = dist.pmf_vector(1e-12);
  double mean = 0.0;
  for (std::size_t k = 0; k < pmf.size(); ++k) {
    mean += static_cast<double>(k) * pmf[k];
  }
  EXPECT_NEAR(mean, dist.mean(), 1e-6) << dist.name();
}

TEST_P(DistributionProperties, SampleMeanMatchesDeclaredMean) {
  const auto& dist = *GetParam();
  rng::RngStream rng(321);
  stats::OnlineSummary s;
  for (int i = 0; i < 40000; ++i) {
    const auto k = dist.sample(rng);
    ASSERT_GE(k, 0) << dist.name();
    s.add(static_cast<double>(k));
  }
  const double tolerance = 0.05 * std::max(1.0, dist.mean());
  EXPECT_NEAR(s.mean(), dist.mean(), tolerance) << dist.name();
}

TEST_P(DistributionProperties, PmfMatchesSampledFrequencies) {
  const auto& dist = *GetParam();
  rng::RngStream rng(654);
  const int draws = 40000;
  std::vector<int> counts(64, 0);
  for (int i = 0; i < draws; ++i) {
    const auto k = dist.sample(rng);
    if (k < 64) ++counts[static_cast<std::size_t>(k)];
  }
  for (std::size_t k = 0; k < counts.size(); ++k) {
    const double expected = dist.pmf(static_cast<std::int64_t>(k)) * draws;
    if (expected < 50.0) continue;  // skip sparse bins
    EXPECT_NEAR(counts[k], expected, 5.0 * std::sqrt(expected) + 1.0)
        << dist.name() << " k=" << k;
  }
}

TEST_P(DistributionProperties, NameIsNonEmpty) {
  EXPECT_FALSE(GetParam()->name().empty());
}

TEST_P(DistributionProperties, SamplerAdapterMatchesSample) {
  const auto& dist = *GetParam();
  const auto sampler = dist.sampler();
  rng::RngStream a(77);
  rng::RngStream b(77);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(sampler(a), dist.sample(b));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, DistributionProperties,
    ::testing::Values(poisson_fanout(4.0), poisson_fanout(0.5),
                      fixed_fanout(3), binomial_fanout(12, 0.3),
                      geometric_fanout(2.5), zipf_fanout(30, 1.4),
                      uniform_fanout(1, 7),
                      empirical_fanout({0.0, 0.2, 0.5, 0.3})),
    [](const ::testing::TestParamInfo<DegreeDistributionPtr>& param_info) {
      std::string n = param_info.param->name();
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

TEST(PoissonFanout, PmfMatchesFormula) {
  const auto d = poisson_fanout(3.0);
  EXPECT_NEAR(d->pmf(0), std::exp(-3.0), 1e-12);
  EXPECT_NEAR(d->pmf(3), std::exp(-3.0) * 27.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(d->pmf(-1), 0.0);
}

TEST(PoissonFanout, RejectsNegativeMean) {
  EXPECT_THROW((void)poisson_fanout(-1.0), std::invalid_argument);
}

TEST(FixedFanout, PointMass) {
  const auto d = fixed_fanout(5);
  EXPECT_DOUBLE_EQ(d->pmf(5), 1.0);
  EXPECT_DOUBLE_EQ(d->pmf(4), 0.0);
  EXPECT_DOUBLE_EQ(d->mean(), 5.0);
  rng::RngStream rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d->sample(rng), 5);
  const auto pmf = d->pmf_vector(1e-9);
  ASSERT_EQ(pmf.size(), 6u);
  EXPECT_DOUBLE_EQ(pmf[5], 1.0);
}

TEST(FixedFanout, ZeroFanoutIsValid) {
  const auto d = fixed_fanout(0);
  EXPECT_DOUBLE_EQ(d->mean(), 0.0);
  EXPECT_DOUBLE_EQ(d->pmf(0), 1.0);
}

TEST(FixedFanout, RejectsNegative) {
  EXPECT_THROW((void)fixed_fanout(-2), std::invalid_argument);
}

TEST(BinomialFanout, MeanAndSupport) {
  const auto d = binomial_fanout(10, 0.4);
  EXPECT_DOUBLE_EQ(d->mean(), 4.0);
  EXPECT_DOUBLE_EQ(d->pmf(11), 0.0);
  const auto pmf = d->pmf_vector(1e-9);
  EXPECT_EQ(pmf.size(), 11u);
}

TEST(GeometricFanout, MeanParameterization) {
  const auto d = geometric_fanout(3.0);
  EXPECT_DOUBLE_EQ(d->mean(), 3.0);
  // P(0) = p = 1/(1+mean) = 0.25.
  EXPECT_NEAR(d->pmf(0), 0.25, 1e-12);
  EXPECT_NEAR(d->pmf(1), 0.25 * 0.75, 1e-12);
}

TEST(ZipfFanout, SupportStartsAtOne) {
  const auto d = zipf_fanout(10, 1.2);
  EXPECT_DOUBLE_EQ(d->pmf(0), 0.0);
  EXPECT_GT(d->pmf(1), d->pmf(2));
  EXPECT_DOUBLE_EQ(d->pmf(11), 0.0);
}

TEST(ZipfFanout, RejectsInvalidParameters) {
  EXPECT_THROW((void)zipf_fanout(0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)zipf_fanout(10, 0.0), std::invalid_argument);
}

TEST(UniformFanout, FlatPmf) {
  const auto d = uniform_fanout(2, 5);
  EXPECT_DOUBLE_EQ(d->mean(), 3.5);
  EXPECT_DOUBLE_EQ(d->pmf(1), 0.0);
  EXPECT_DOUBLE_EQ(d->pmf(2), 0.25);
  EXPECT_DOUBLE_EQ(d->pmf(5), 0.25);
  EXPECT_DOUBLE_EQ(d->pmf(6), 0.0);
}

TEST(UniformFanout, RejectsInvertedRange) {
  EXPECT_THROW((void)uniform_fanout(5, 2), std::invalid_argument);
  EXPECT_THROW((void)uniform_fanout(-1, 2), std::invalid_argument);
}

TEST(EmpiricalFanout, NormalizesWeights) {
  const auto d = empirical_fanout({1.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(d->pmf(0), 0.25);
  EXPECT_DOUBLE_EQ(d->pmf(2), 0.5);
  EXPECT_DOUBLE_EQ(d->mean(), 0.25 + 2.0 * 0.5);
  EXPECT_DOUBLE_EQ(d->pmf(3), 0.0);
  EXPECT_DOUBLE_EQ(d->pmf(-1), 0.0);
}

TEST(EmpiricalFanout, RejectsInvalidWeights) {
  EXPECT_THROW((void)empirical_fanout({}), std::invalid_argument);
  EXPECT_THROW((void)empirical_fanout({-1.0, 1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace gossip::core
