#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/percolation.hpp"
#include "core/reliability_model.hpp"
#include "experiment/component_mc.hpp"

namespace gossip::core {
namespace {

TEST(OccupancyPercolation, UniformOccupancyMatchesScalarSolver) {
  // q_k = q must reproduce analyze_site_percolation exactly.
  const auto gf = GeneratingFunction::from_distribution(*poisson_fanout(4.0));
  for (const double q : {0.3, 0.5, 0.9, 1.0}) {
    const auto scalar = analyze_site_percolation(gf, q);
    const auto general = analyze_occupancy_percolation(
        gf, [q](std::int64_t) { return q; });
    EXPECT_NEAR(general.occupied_fraction, q, 1e-9) << "q=" << q;
    EXPECT_NEAR(general.reliability, scalar.reliability, 1e-7) << "q=" << q;
    EXPECT_NEAR(general.giant_fraction_all, scalar.giant_fraction_all, 1e-7);
    EXPECT_EQ(general.supercritical, scalar.supercritical) << "q=" << q;
  }
}

TEST(OccupancyPercolation, UniformMeanComponentSizeMatchesEq2) {
  const auto gf = GeneratingFunction::from_distribution(*poisson_fanout(2.0));
  const double q = 0.3;  // subcritical
  const auto scalar = analyze_site_percolation(gf, q);
  const auto general =
      analyze_occupancy_percolation(gf, [q](std::int64_t) { return q; });
  EXPECT_NEAR(general.mean_component_size, scalar.mean_component_size, 1e-7);
}

TEST(OccupancyPercolation, CriticalScaleIsReciprocalTransmissibility) {
  const auto gf = GeneratingFunction::from_distribution(*poisson_fanout(4.0));
  const auto result = analyze_occupancy_percolation(
      gf, [](std::int64_t) { return 0.5; });
  // F1'(1) = q * z = 2 -> scale 0.5 lands on the transition.
  EXPECT_NEAR(result.mean_transmissibility, 2.0, 1e-6);
  EXPECT_NEAR(result.critical_scale, 0.5, 1e-6);
  EXPECT_TRUE(result.supercritical);
}

TEST(OccupancyPercolation, KillingHubsIsWorseThanUniformFailures) {
  // Callaway et al.'s targeted-attack result, which the paper's Eq. (1)
  // framework supports but never exercises: failing high-degree members
  // costs far more reliability than failing the same NUMBER of uniformly
  // chosen members.
  const auto dist = geometric_fanout(4.0);  // heavy tail: hubs exist
  const auto gf = GeneratingFunction::from_distribution(*dist);

  // Hub attack: members with fanout >= 8 always fail; others survive.
  const OccupancyFunction hub_attack = [](std::int64_t k) {
    return k >= 8 ? 0.0 : 1.0;
  };
  const auto attacked = analyze_occupancy_percolation(gf, hub_attack);

  // Uniform failures with the same overall survivor fraction.
  const double q_uniform = attacked.occupied_fraction;
  const auto uniform = analyze_occupancy_percolation(
      gf, [q_uniform](std::int64_t) { return q_uniform; });

  EXPECT_NEAR(uniform.occupied_fraction, attacked.occupied_fraction, 1e-9);
  EXPECT_LT(attacked.giant_fraction_all, uniform.giant_fraction_all);
  EXPECT_LT(attacked.mean_transmissibility, uniform.mean_transmissibility);
}

TEST(OccupancyPercolation, ProtectingHubsBeatsUniformSurvival) {
  // The flip side: if high-degree members are made reliable, the same
  // average survival yields a larger giant component.
  const auto gf =
      GeneratingFunction::from_distribution(*geometric_fanout(3.0));
  const OccupancyFunction protect_hubs = [](std::int64_t k) {
    return k >= 4 ? 1.0 : 0.45;
  };
  const auto protected_hubs = analyze_occupancy_percolation(gf, protect_hubs);
  const double q_uniform = protected_hubs.occupied_fraction;
  const auto uniform = analyze_occupancy_percolation(
      gf, [q_uniform](std::int64_t) { return q_uniform; });
  EXPECT_GT(protected_hubs.giant_fraction_all, uniform.giant_fraction_all);
}

TEST(OccupancyPercolation, MatchesMonteCarloForDegreeDependentFailures) {
  const auto dist = poisson_fanout(4.0);
  const auto gf = GeneratingFunction::from_distribution(*dist);
  // Low-degree members are flaky, high-degree ones reliable.
  const OccupancyFunction occupancy = [](std::int64_t k) {
    return k <= 2 ? 0.4 : 0.9;
  };
  const auto analysis = analyze_occupancy_percolation(gf, occupancy);

  experiment::MonteCarloOptions opt;
  opt.replications = 25;
  opt.seed = 83;
  const auto est = experiment::estimate_giant_component_occupancy(
      3000, *dist, occupancy, opt);
  EXPECT_NEAR(est.giant_fraction_alive.mean(), analysis.reliability, 0.04);
  EXPECT_NEAR(est.giant_fraction_all.mean(), analysis.giant_fraction_all,
              0.04);
}

TEST(OccupancyPercolation, AllFailedIsDegenerate) {
  const auto gf = GeneratingFunction::from_distribution(*poisson_fanout(4.0));
  const auto result = analyze_occupancy_percolation(
      gf, [](std::int64_t) { return 0.0; });
  EXPECT_DOUBLE_EQ(result.occupied_fraction, 0.0);
  EXPECT_DOUBLE_EQ(result.giant_fraction_all, 0.0);
  EXPECT_FALSE(result.supercritical);
}

TEST(OccupancyPercolation, RejectsOutOfRangeOccupancy) {
  const auto gf = GeneratingFunction::from_distribution(*poisson_fanout(2.0));
  EXPECT_THROW((void)analyze_occupancy_percolation(
                   gf, [](std::int64_t) { return 1.5; }),
               std::invalid_argument);
  EXPECT_THROW((void)analyze_occupancy_percolation(
                   gf, [](std::int64_t) { return -0.1; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace gossip::core
