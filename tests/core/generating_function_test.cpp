#include "core/generating_function.hpp"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace gossip::core {
namespace {

TEST(GeneratingFunction, NormalizesInputPmf) {
  const GeneratingFunction gf({2.0, 2.0});
  EXPECT_NEAR(gf.g0(1.0), 1.0, 1e-12);
  EXPECT_NEAR(gf.g0(0.0), 0.5, 1e-12);
}

TEST(GeneratingFunction, PoissonMatchesClosedForm) {
  // For Po(z): G0(x) = e^{z(x-1)}, G1 = G0, G1'(1) = z.
  const double z = 4.0;
  const auto gf =
      GeneratingFunction::from_distribution(*poisson_fanout(z), 1e-14);
  for (const double x : {0.0, 0.3, 0.7, 1.0}) {
    EXPECT_NEAR(gf.g0(x), std::exp(z * (x - 1.0)), 1e-8) << "x=" << x;
    EXPECT_NEAR(gf.g1(x), std::exp(z * (x - 1.0)), 1e-7) << "x=" << x;
  }
  EXPECT_NEAR(gf.mean(), z, 1e-9);
  EXPECT_NEAR(gf.mean_excess_degree(), z, 1e-7);
}

TEST(GeneratingFunction, FixedFanoutClosedForm) {
  // For a point mass at k: G0(x) = x^k, G1(x) = x^{k-1}, G1'(1) = k-1.
  const auto gf =
      GeneratingFunction::from_distribution(*fixed_fanout(4), 1e-14);
  EXPECT_NEAR(gf.g0(0.5), std::pow(0.5, 4.0), 1e-12);
  EXPECT_NEAR(gf.g1(0.5), std::pow(0.5, 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(gf.mean(), 4.0);
  EXPECT_DOUBLE_EQ(gf.mean_excess_degree(), 3.0);
}

TEST(GeneratingFunction, GeometricExcessDegreeIsTwiceMean) {
  // Geometric with mean m: E[K(K-1)]/E[K] = 2m (heavy tail raises the
  // excess degree above the mean, unlike Poisson).
  const double m = 2.5;
  const auto gf =
      GeneratingFunction::from_distribution(*geometric_fanout(m), 1e-14);
  EXPECT_NEAR(gf.mean(), m, 1e-6);
  EXPECT_NEAR(gf.mean_excess_degree(), 2.0 * m, 1e-4);
}

TEST(GeneratingFunction, DerivativeIdentities) {
  const auto gf = GeneratingFunction({0.1, 0.2, 0.3, 0.4});
  // G0'(x) by finite differences.
  const double x = 0.6;
  const double h = 1e-6;
  const double numeric = (gf.g0(x + h) - gf.g0(x - h)) / (2.0 * h);
  EXPECT_NEAR(gf.g0_prime(x), numeric, 1e-7);
  const double numeric2 =
      (gf.g0_prime(x + h) - gf.g0_prime(x - h)) / (2.0 * h);
  EXPECT_NEAR(gf.g0_second(x), numeric2, 1e-6);
  // G1 = G0'/G0'(1).
  EXPECT_NEAR(gf.g1(x), gf.g0_prime(x) / gf.g0_prime(1.0), 1e-12);
  EXPECT_NEAR(gf.g1_prime(x), gf.g0_second(x) / gf.g0_prime(1.0), 1e-12);
}

TEST(GeneratingFunction, G1AtOneIsOne) {
  for (const auto& dist :
       {poisson_fanout(2.0), geometric_fanout(1.5), uniform_fanout(1, 5)}) {
    const auto gf = GeneratingFunction::from_distribution(*dist, 1e-13);
    EXPECT_NEAR(gf.g1(1.0), 1.0, 1e-8) << dist->name();
  }
}

TEST(GeneratingFunction, ZeroMeanDegreeG1Throws) {
  const GeneratingFunction gf({1.0});  // all mass at degree 0
  EXPECT_DOUBLE_EQ(gf.mean(), 0.0);
  EXPECT_THROW((void)gf.g1(0.5), std::domain_error);
  EXPECT_THROW((void)gf.g1_prime(0.5), std::domain_error);
}

TEST(GeneratingFunction, RejectsInvalidPmf) {
  EXPECT_THROW(GeneratingFunction({}), std::invalid_argument);
  EXPECT_THROW(GeneratingFunction({-0.5, 1.5}), std::invalid_argument);
  EXPECT_THROW(GeneratingFunction({0.0, 0.0}), std::invalid_argument);
}

TEST(GeneratingFunction, MonotoneAndConvexOnUnitInterval) {
  const auto gf =
      GeneratingFunction::from_distribution(*poisson_fanout(3.0), 1e-13);
  double prev = gf.g0(0.0);
  for (double x = 0.05; x <= 1.0; x += 0.05) {
    const double cur = gf.g0(x);
    EXPECT_GE(cur, prev);  // increasing
    prev = cur;
  }
  // Convexity: midpoint below chord.
  const double a = 0.2;
  const double b = 0.9;
  EXPECT_LE(gf.g0(0.5 * (a + b)), 0.5 * (gf.g0(a) + gf.g0(b)) + 1e-12);
}

}  // namespace
}  // namespace gossip::core
