#include "core/success_model.hpp"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace gossip::core {
namespace {

TEST(SuccessProbability, MatchesEq5) {
  // Eq. (5): Pr = 1 - (1 - p_r)^t.
  EXPECT_NEAR(success_probability(0.5, 1), 0.5, 1e-12);
  EXPECT_NEAR(success_probability(0.5, 3), 1.0 - 0.125, 1e-12);
  EXPECT_NEAR(success_probability(0.967, 3), 1.0 - std::pow(0.033, 3.0),
              1e-12);
}

TEST(SuccessProbability, EdgeCases) {
  EXPECT_DOUBLE_EQ(success_probability(0.0, 10), 0.0);
  EXPECT_DOUBLE_EQ(success_probability(1.0, 1), 1.0);
  EXPECT_DOUBLE_EQ(success_probability(0.7, 0), 0.0);
}

TEST(SuccessProbability, MonotoneInExecutions) {
  double prev = 0.0;
  for (std::int64_t t = 1; t <= 30; ++t) {
    const double p = success_probability(0.3, t);
    EXPECT_GT(p, prev);
    prev = p;
  }
  EXPECT_GT(prev, 0.9999);
}

TEST(SuccessProbability, RejectsInvalidArguments) {
  EXPECT_THROW((void)success_probability(-0.1, 1), std::invalid_argument);
  EXPECT_THROW((void)success_probability(1.1, 1), std::invalid_argument);
  EXPECT_THROW((void)success_probability(0.5, -1), std::invalid_argument);
}

TEST(RequiredExecutions, ReproducesPaperExample) {
  // Section 5.2: lg(1-0.999)/lg(1-0.967) -> t must be at least 3.
  EXPECT_EQ(required_executions(0.967, 0.999), 3);
}

TEST(RequiredExecutions, MatchesEq6Ceiling) {
  for (const double pr : {0.3, 0.5, 0.8, 0.967, 0.99}) {
    for (const double ps : {0.9, 0.99, 0.999, 0.999999}) {
      const auto t = required_executions(pr, ps);
      // t achieves the target...
      EXPECT_GE(success_probability(pr, t), ps) << pr << " " << ps;
      // ...and t-1 does not (minimality).
      if (t > 0) {
        EXPECT_LT(success_probability(pr, t - 1), ps) << pr << " " << ps;
      }
    }
  }
}

TEST(RequiredExecutions, PerfectReliabilityNeedsOneExecution) {
  EXPECT_EQ(required_executions(1.0, 0.999), 1);
}

TEST(RequiredExecutions, ZeroTargetNeedsNothing) {
  EXPECT_EQ(required_executions(0.5, 0.0), 0);
}

TEST(RequiredExecutions, UnreachableTargetThrows) {
  EXPECT_THROW((void)required_executions(0.0, 0.999), std::domain_error);
}

TEST(RequiredExecutions, RejectsTargetOfOne) {
  // (1 - p_s) = 0 makes Eq. (6) undefined: certainty is never guaranteed.
  EXPECT_THROW((void)required_executions(0.5, 1.0), std::invalid_argument);
}

TEST(SuccessCountPmf, IsBinomialDistribution) {
  const auto pmf = success_count_pmf(20, 0.967);
  ASSERT_EQ(pmf.size(), 21u);
  double sum = 0.0;
  double mean = 0.0;
  for (std::size_t k = 0; k < pmf.size(); ++k) {
    sum += pmf[k];
    mean += static_cast<double>(k) * pmf[k];
  }
  EXPECT_NEAR(sum, 1.0, 1e-10);
  EXPECT_NEAR(mean, 20.0 * 0.967, 1e-8);
  // Mode at k = 20 for p = 0.967 (paper Figs. 6-7 peak at the right edge).
  EXPECT_GT(pmf[20], pmf[19]);
  EXPECT_GT(pmf[19], pmf[18]);
}

TEST(SuccessCountPmf, MatchesBruteForceEnumeration) {
  // Brute force over all 2^t outcomes for small t.
  const std::int64_t t = 6;
  const double p = 0.42;
  const auto pmf = success_count_pmf(t, p);
  std::vector<double> brute(static_cast<std::size_t>(t) + 1, 0.0);
  for (int mask = 0; mask < (1 << t); ++mask) {
    double prob = 1.0;
    int ones = 0;
    for (int b = 0; b < t; ++b) {
      if (mask & (1 << b)) {
        prob *= p;
        ++ones;
      } else {
        prob *= 1.0 - p;
      }
    }
    brute[static_cast<std::size_t>(ones)] += prob;
  }
  for (std::size_t k = 0; k < brute.size(); ++k) {
    EXPECT_NEAR(pmf[k], brute[k], 1e-12) << "k=" << k;
  }
}

TEST(SuccessCountPmf, DegenerateExecutions) {
  const auto pmf = success_count_pmf(0, 0.5);
  ASSERT_EQ(pmf.size(), 1u);
  EXPECT_DOUBLE_EQ(pmf[0], 1.0);
  EXPECT_THROW((void)success_count_pmf(-1, 0.5), std::invalid_argument);
}

TEST(SuccessModel, ConsistencyBetweenPmfAndEq5) {
  // Pr(X >= 1) from the pmf must equal Eq. (5).
  const std::int64_t t = 12;
  const double p = 0.37;
  const auto pmf = success_count_pmf(t, p);
  const double at_least_one = 1.0 - pmf[0];
  EXPECT_NEAR(at_least_one, success_probability(p, t), 1e-12);
}

}  // namespace
}  // namespace gossip::core
