#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/baselines/kmg_model.hpp"
#include "core/baselines/pbcast_recurrence.hpp"
#include "core/baselines/si_epidemic.hpp"
#include "core/reliability_model.hpp"

namespace gossip::core::baselines {
namespace {

// ---- pbcast / recurrence model ----

TEST(PbcastExpectedInfected, TrajectoryIsMonotoneAndBounded) {
  RoundGossipParams p;
  p.num_members = 1000;
  p.fanout = 3.0;
  p.nonfailed_ratio = 0.9;
  p.rounds = 15;
  const auto traj = pbcast_expected_infected(p);
  ASSERT_EQ(traj.size(), 16u);
  double prev = 0.0;
  for (const double x : traj) {
    EXPECT_GE(x, prev - 1e-12);
    EXPECT_LE(x, 1.0 + 1e-12);
    prev = x;
  }
  EXPECT_GT(traj.back(), 0.95);  // push gossip saturates quickly
}

TEST(PbcastExpectedInfected, StartsWithOnlySource) {
  RoundGossipParams p;
  p.num_members = 100;
  p.fanout = 2.0;
  p.rounds = 0;
  const auto traj = pbcast_expected_infected(p);
  ASSERT_EQ(traj.size(), 1u);
  EXPECT_NEAR(traj[0], 1.0 / 100.0, 1e-12);
}

TEST(PbcastExpectedInfected, ZeroFanoutNeverSpreads) {
  RoundGossipParams p;
  p.num_members = 50;
  p.fanout = 0.0;
  p.rounds = 10;
  const auto traj = pbcast_expected_infected(p);
  for (const double x : traj) {
    EXPECT_NEAR(x, 1.0 / 50.0, 1e-12);
  }
}

TEST(PbcastExpectedInfected, HigherFanoutSpreadsFaster) {
  RoundGossipParams slow;
  slow.num_members = 500;
  slow.fanout = 1.5;
  slow.rounds = 5;
  RoundGossipParams fast = slow;
  fast.fanout = 4.0;
  EXPECT_GT(pbcast_expected_infected(fast).back(),
            pbcast_expected_infected(slow).back());
}

TEST(PbcastExpectedInfected, RejectsInvalidParams) {
  RoundGossipParams p;
  p.num_members = 1;
  EXPECT_THROW((void)pbcast_expected_infected(p), std::invalid_argument);
  p.num_members = 10;
  p.fanout = -1.0;
  EXPECT_THROW((void)pbcast_expected_infected(p), std::invalid_argument);
  p.fanout = 2.0;
  p.nonfailed_ratio = 0.0;
  EXPECT_THROW((void)pbcast_expected_infected(p), std::invalid_argument);
  p.nonfailed_ratio = 1.0;
  p.rounds = -1;
  EXPECT_THROW((void)pbcast_expected_infected(p), std::invalid_argument);
}

TEST(ReedFrost, FinalSizeDistributionIsNormalized) {
  RoundGossipParams p;
  p.num_members = 30;
  p.fanout = 2.0;
  p.nonfailed_ratio = 1.0;
  p.rounds = 30;
  const auto dist = reed_frost_final_size(p);
  double sum = 0.0;
  for (const double pr : dist) {
    EXPECT_GE(pr, -1e-12);
    sum += pr;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ReedFrost, ZeroFanoutInfectsOnlySource) {
  RoundGossipParams p;
  p.num_members = 20;
  p.fanout = 0.0;
  p.rounds = 20;
  const auto dist = reed_frost_final_size(p);
  EXPECT_NEAR(dist[0], 1.0, 1e-12);  // final size 1 (just the source)
}

TEST(ReedFrost, SaturatingFanoutInfectsEveryone) {
  RoundGossipParams p;
  p.num_members = 15;
  p.fanout = 14.0;  // contacts everyone each round
  p.rounds = 15;
  const auto dist = reed_frost_final_size(p);
  EXPECT_NEAR(dist.back(), 1.0, 1e-9);
}

TEST(ReedFrost, ExpectedReliabilityIncreasesWithFanout) {
  RoundGossipParams p;
  p.num_members = 25;
  p.rounds = 25;
  double prev = 0.0;
  for (const double f : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    p.fanout = f;
    const double r = reed_frost_expected_reliability(p);
    EXPECT_GE(r, prev - 1e-9) << "fanout " << f;
    EXPECT_LE(r, 1.0 + 1e-9);
    prev = r;
  }
}

TEST(ReedFrost, FailuresReduceReliability) {
  RoundGossipParams healthy;
  healthy.num_members = 24;
  healthy.fanout = 3.0;
  healthy.rounds = 24;
  healthy.nonfailed_ratio = 1.0;
  RoundGossipParams faulty = healthy;
  faulty.nonfailed_ratio = 0.5;
  EXPECT_GT(reed_frost_expected_reliability(healthy),
            reed_frost_expected_reliability(faulty));
}

// ---- SI epidemic model ----

TEST(SiTrajectory, MatchesClosedFormLogistic) {
  SiParams p;
  p.contact_rate = 2.0;
  p.nonfailed_ratio = 0.8;
  p.initial_infected_fraction = 0.01;
  p.t_end = 6.0;
  p.dt = 1e-3;
  const auto traj = si_trajectory(p, 500);
  ASSERT_GE(traj.size(), 3u);
  for (const auto& pt : traj) {
    EXPECT_NEAR(pt.infected_fraction, si_closed_form(p, pt.time), 1e-6)
        << "t=" << pt.time;
  }
}

TEST(SiTrajectory, SaturatesToOne) {
  SiParams p;
  p.contact_rate = 3.0;
  p.initial_infected_fraction = 0.001;
  p.t_end = 20.0;
  const auto traj = si_trajectory(p);
  EXPECT_GT(traj.back().infected_fraction, 0.999);
}

TEST(SiTrajectory, CannotStartFromZeroInfected) {
  // The deficiency the paper notes: SI has no spontaneous start and no
  // die-out; i(0) = 0 stays 0 forever.
  SiParams p;
  p.initial_infected_fraction = 0.0;
  p.t_end = 5.0;
  const auto traj = si_trajectory(p);
  for (const auto& pt : traj) {
    EXPECT_DOUBLE_EQ(pt.infected_fraction, 0.0);
  }
  EXPECT_DOUBLE_EQ(si_closed_form(p, 3.0), 0.0);
}

TEST(SiTrajectory, FailuresSlowTheSpread) {
  SiParams healthy;
  healthy.contact_rate = 2.0;
  healthy.initial_infected_fraction = 0.01;
  healthy.t_end = 3.0;
  SiParams faulty = healthy;
  faulty.nonfailed_ratio = 0.5;
  EXPECT_GT(si_trajectory(healthy).back().infected_fraction,
            si_trajectory(faulty).back().infected_fraction);
}

TEST(SiTrajectory, RejectsInvalidParams) {
  SiParams p;
  p.contact_rate = -1.0;
  EXPECT_THROW((void)si_trajectory(p), std::invalid_argument);
  p.contact_rate = 1.0;
  p.nonfailed_ratio = 0.0;
  EXPECT_THROW((void)si_trajectory(p), std::invalid_argument);
  p.nonfailed_ratio = 1.0;
  p.initial_infected_fraction = 1.5;
  EXPECT_THROW((void)si_trajectory(p), std::invalid_argument);
  p.initial_infected_fraction = 0.1;
  p.dt = 0.0;
  EXPECT_THROW((void)si_trajectory(p), std::invalid_argument);
}

TEST(SirFinalSize, CoincidesWithPaperEq11) {
  // The SIR final-size equation and the percolation reliability are the
  // same fixed point — the correspondence the baseline bench reports.
  for (const double z : {2.0, 4.0, 6.0}) {
    for (const double q : {0.5, 0.9}) {
      EXPECT_NEAR(sir_final_size(z, q), poisson_reliability(z, q), 1e-12);
    }
  }
}

// ---- KMG model ----

TEST(KmgSuccess, MatchesDoubleExponentialLaw) {
  // fanout = ln(n') + c  ->  success ~ exp(-e^{-c}).
  const std::int64_t n = 10000;
  const double c = 2.0;
  const double fanout = std::log(static_cast<double>(n)) + c;
  EXPECT_NEAR(kmg_success_probability(n, fanout, 0.0),
              std::exp(-std::exp(-c)), 1e-12);
}

TEST(KmgSuccess, IncreasesWithFanout) {
  double prev = 0.0;
  for (double f = 2.0; f < 20.0; f += 1.0) {
    const double p = kmg_success_probability(5000, f);
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_GT(prev, 0.999);
}

TEST(KmgSuccess, FailuresLowerTheBarSlightly) {
  // Fewer survivors -> smaller ln(n') -> higher success at equal fanout.
  EXPECT_GT(kmg_success_probability(10000, 10.0, 0.5),
            kmg_success_probability(10000, 10.0, 0.0));
}

TEST(KmgRequiredFanout, RoundTripsWithSuccessProbability) {
  const std::int64_t n = 2000;
  for (const double target : {0.9, 0.99, 0.999}) {
    const double f = kmg_required_fanout(n, target);
    EXPECT_NEAR(kmg_success_probability(n, f), target, 1e-9);
  }
}

TEST(KmgRequiredFanout, ScalesLogarithmically) {
  const double f1 = kmg_required_fanout(1000, 0.99);
  const double f2 = kmg_required_fanout(100000, 0.99);
  EXPECT_NEAR(f2 - f1, std::log(100.0), 1e-9);
}

TEST(KmgModel, RejectsInvalidArguments) {
  EXPECT_THROW((void)kmg_success_probability(1, 5.0), std::invalid_argument);
  EXPECT_THROW((void)kmg_success_probability(100, -1.0),
               std::invalid_argument);
  EXPECT_THROW((void)kmg_success_probability(100, 5.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)kmg_required_fanout(100, 0.0), std::invalid_argument);
  EXPECT_THROW((void)kmg_required_fanout(100, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace gossip::core::baselines
