#include "core/baselines/anti_entropy_model.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace gossip::core::baselines {
namespace {

AntiEntropyModelParams base(std::int64_t n, double f, std::int64_t rounds,
                            AntiEntropyMode mode) {
  AntiEntropyModelParams p;
  p.num_members = n;
  p.fanout = f;
  p.rounds = rounds;
  p.mode = mode;
  return p;
}

TEST(AntiEntropyModel, TrajectoriesAreMonotoneAndBounded) {
  for (const auto mode : {AntiEntropyMode::kPush, AntiEntropyMode::kPull,
                          AntiEntropyMode::kPushPull}) {
    const auto traj =
        anti_entropy_expected_informed(base(1000, 1.0, 20, mode));
    ASSERT_EQ(traj.size(), 21u);
    double prev = 0.0;
    for (const double x : traj) {
      EXPECT_GE(x, prev - 1e-12);
      EXPECT_LE(x, 1.0 + 1e-12);
      prev = x;
    }
  }
}

TEST(AntiEntropyModel, PushPullDominatesBothSingles) {
  const std::int64_t rounds = 8;
  const auto push =
      anti_entropy_expected_informed(base(2000, 1.0, rounds,
                                          AntiEntropyMode::kPush));
  const auto pull =
      anti_entropy_expected_informed(base(2000, 1.0, rounds,
                                          AntiEntropyMode::kPull));
  const auto both = anti_entropy_expected_informed(
      base(2000, 1.0, rounds, AntiEntropyMode::kPushPull));
  EXPECT_GE(both.back(), push.back());
  EXPECT_GE(both.back(), pull.back());
}

TEST(AntiEntropyModel, PullClosesTheTailFasterThanPush) {
  // In the mean-field limit both modes double the informed set early; the
  // classic asymmetry is the tail: push residuals decay geometrically
  // (rate e^{-f}) while pull residuals decay super-exponentially.
  const auto push = anti_entropy_expected_informed(
      base(10000, 1.0, 30, AntiEntropyMode::kPush));
  const auto pull = anti_entropy_expected_informed(
      base(10000, 1.0, 30, AntiEntropyMode::kPull));
  // Compare residual uninformed fractions once both are past 90%.
  std::size_t t = 0;
  while (t < push.size() && (push[t] < 0.9 || pull[t] < 0.9)) ++t;
  ASSERT_LT(t + 3, push.size());
  const double push_residual_decay =
      (1.0 - push[t + 3]) / (1.0 - push[t]);
  const double pull_residual_decay =
      (1.0 - pull[t + 3]) / (1.0 - pull[t]);
  EXPECT_LT(pull_residual_decay, push_residual_decay);
}

TEST(AntiEntropyModel, FailuresSlowConvergence) {
  const auto healthy = anti_entropy_expected_informed(
      base(1000, 1.0, 10, AntiEntropyMode::kPushPull));
  auto p = base(1000, 1.0, 10, AntiEntropyMode::kPushPull);
  p.nonfailed_ratio = 0.5;
  const auto faulty = anti_entropy_expected_informed(p);
  EXPECT_GT(healthy.back(), faulty.back() - 1e-12);
}

TEST(AntiEntropyModel, RoundsToFractionIsConsistentWithTrajectory) {
  const auto p = base(5000, 1.0, 0, AntiEntropyMode::kPushPull);
  const auto rounds = anti_entropy_rounds_to_fraction(p, 0.99);
  auto p2 = p;
  p2.rounds = rounds;
  const auto traj = anti_entropy_expected_informed(p2);
  EXPECT_GE(traj.back(), 0.99);
  if (rounds > 0) {
    auto p3 = p;
    p3.rounds = rounds - 1;
    EXPECT_LT(anti_entropy_expected_informed(p3).back(), 0.99);
  }
}

TEST(AntiEntropyModel, RoundsToFractionGrowsLogarithmically) {
  // Push-pull rounds to near-total coverage should grow slowly with n.
  const auto r1 = anti_entropy_rounds_to_fraction(
      base(1000, 1.0, 0, AntiEntropyMode::kPushPull), 0.999);
  const auto r2 = anti_entropy_rounds_to_fraction(
      base(100000, 1.0, 0, AntiEntropyMode::kPushPull), 0.999);
  EXPECT_LE(r2, r1 + 10);
}

TEST(AntiEntropyModel, ZeroFanoutCannotReachTarget) {
  EXPECT_THROW((void)anti_entropy_rounds_to_fraction(
                   base(100, 0.0, 0, AntiEntropyMode::kPushPull), 0.5),
               std::domain_error);
}

TEST(AntiEntropyModel, ValidationErrors) {
  EXPECT_THROW((void)anti_entropy_expected_informed(
                   base(1, 1.0, 5, AntiEntropyMode::kPush)),
               std::invalid_argument);
  EXPECT_THROW((void)anti_entropy_expected_informed(
                   base(10, -1.0, 5, AntiEntropyMode::kPush)),
               std::invalid_argument);
  EXPECT_THROW((void)anti_entropy_rounds_to_fraction(
                   base(10, 1.0, 0, AntiEntropyMode::kPush), 1.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace gossip::core::baselines
