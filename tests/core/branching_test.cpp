#include "core/branching.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/reliability_model.hpp"
#include "experiment/monte_carlo.hpp"
#include "graph/generators.hpp"
#include "graph/reachability.hpp"
#include "stats/gof.hpp"

namespace gossip::core {
namespace {

TEST(DirectedGossip, PoissonCaseRecoversSAndSSquared) {
  // For Poisson fanout, take-off probability = member reach = S, so the
  // unconditional delivery is S^2 — the quantity the graph Monte Carlo
  // measures.
  const double z = 4.0;
  const double q = 0.9;
  const auto gf = GeneratingFunction::from_distribution(*poisson_fanout(z));
  const auto analysis = analyze_directed_gossip(gf, q);
  const double s = poisson_reliability(z, q);
  EXPECT_TRUE(analysis.supercritical);
  EXPECT_NEAR(analysis.takeoff_probability, s, 1e-6);
  EXPECT_NEAR(analysis.member_reach_given_takeoff, s, 1e-6);
  EXPECT_NEAR(analysis.expected_delivery, s * s, 1e-6);
  EXPECT_NEAR(analysis.mean_progeny, z * q, 1e-9);
}

TEST(DirectedGossip, SubcriticalCascadeAlwaysDies) {
  const auto gf = GeneratingFunction::from_distribution(*poisson_fanout(2.0));
  const auto analysis = analyze_directed_gossip(gf, 0.4);  // R0 = 0.8
  EXPECT_FALSE(analysis.supercritical);
  EXPECT_NEAR(analysis.extinction_probability, 1.0, 1e-6);
  EXPECT_NEAR(analysis.expected_delivery, 0.0, 1e-6);
}

TEST(DirectedGossip, FixedFanoutNeverDiesOutButReachIsPoissonLimited) {
  // Fixed fanout k >= 1 with q = 1: every node forwards to exactly k
  // others, extinction is impossible (offspring never zero) — yet the
  // member reach still follows the Poisson in-degree fixed point.
  const auto gf = GeneratingFunction::from_distribution(*fixed_fanout(4));
  const auto analysis = analyze_directed_gossip(gf, 1.0);
  EXPECT_NEAR(analysis.takeoff_probability, 1.0, 1e-9);
  const double r = poisson_reliability(4.0, 1.0);
  EXPECT_NEAR(analysis.member_reach_given_takeoff, r, 1e-6);
  EXPECT_NEAR(analysis.expected_delivery, r, 1e-6);
}

TEST(DirectedGossip, HeavyTailLowersTakeoffAtEqualMean) {
  // Geometric offspring have a large P(0) = 1/(1+mean), so cascades die at
  // the source far more often than Poisson at the same mean.
  const double mean = 4.0;
  const auto gf_poisson =
      GeneratingFunction::from_distribution(*poisson_fanout(mean));
  const auto gf_geo =
      GeneratingFunction::from_distribution(*geometric_fanout(mean));
  const auto a_poisson = analyze_directed_gossip(gf_poisson, 1.0);
  const auto a_geo = analyze_directed_gossip(gf_geo, 1.0);
  EXPECT_LT(a_geo.takeoff_probability, a_poisson.takeoff_probability);
  // But the conditional reach depends only on the mean: identical.
  EXPECT_NEAR(a_geo.member_reach_given_takeoff,
              a_poisson.member_reach_given_takeoff, 1e-6);
}

TEST(DirectedGossip, DeliveryPredictionMatchesGraphMonteCarlo) {
  // The headline check: analysis predicts the delivery metric for a
  // NON-Poisson fanout.
  const auto dist = geometric_fanout(4.0);
  const auto gf = GeneratingFunction::from_distribution(*dist);
  const double q = 0.9;
  const auto analysis = analyze_directed_gossip(gf, q);

  experiment::MonteCarloOptions opt;
  opt.replications = 400;
  opt.seed = 71;
  const auto est = experiment::estimate_reliability_graph(1500, *dist, q, opt);
  EXPECT_NEAR(est.mean_reliability(), analysis.expected_delivery, 0.03);
}

TEST(DirectedGossip, TakeoffProbabilityMatchesSimulatedFrequency) {
  const auto dist = geometric_fanout(4.0);
  const auto gf = GeneratingFunction::from_distribution(*dist);
  const auto analysis = analyze_directed_gossip(gf, 1.0);

  // Count take-offs directly: a run took off if it reached a macroscopic
  // fraction of members.
  experiment::MonteCarloOptions opt;
  opt.replications = 500;
  opt.seed = 73;
  const auto est = experiment::estimate_reliability_graph(1000, *dist, 1.0,
                                                          opt);
  // mean delivery = takeoff * reach -> takeoff = mean / reach.
  const double implied_takeoff =
      est.mean_reliability() / analysis.member_reach_given_takeoff;
  EXPECT_NEAR(implied_takeoff, analysis.takeoff_probability, 0.05);
}

TEST(DirectedGossip, ZeroFanoutDegenerate) {
  const auto gf = GeneratingFunction::from_distribution(*fixed_fanout(0));
  const auto analysis = analyze_directed_gossip(gf, 1.0);
  EXPECT_DOUBLE_EQ(analysis.mean_progeny, 0.0);
  EXPECT_DOUBLE_EQ(analysis.expected_delivery, 0.0);
  EXPECT_FALSE(analysis.supercritical);
}

TEST(DirectedGossip, RejectsInvalidQ) {
  const auto gf = GeneratingFunction::from_distribution(*poisson_fanout(2.0));
  EXPECT_THROW((void)analyze_directed_gossip(gf, -0.1), std::invalid_argument);
  EXPECT_THROW((void)analyze_directed_gossip(gf, 1.1), std::invalid_argument);
}

TEST(BorelCascade, PmfSumsToOneSubcritical) {
  const auto pmf = borel_cascade_size_pmf(0.5, 200);
  double sum = 0.0;
  for (const double p : pmf) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-8);
}

TEST(BorelCascade, MeanMatchesClosedForm) {
  const double m = 0.6;
  const auto pmf = borel_cascade_size_pmf(m, 2000);
  double mean = 0.0;
  for (std::size_t i = 0; i < pmf.size(); ++i) {
    mean += static_cast<double>(i + 1) * pmf[i];
  }
  EXPECT_NEAR(mean, borel_mean_cascade_size(m), 1e-4);
  EXPECT_DOUBLE_EQ(borel_mean_cascade_size(m), 2.5);
}

TEST(BorelCascade, FirstTermsMatchFormula) {
  const double m = 0.4;
  const auto pmf = borel_cascade_size_pmf(m, 5);
  EXPECT_NEAR(pmf[0], std::exp(-m), 1e-12);                       // s=1
  EXPECT_NEAR(pmf[1], std::exp(-2.0 * m) * 2.0 * m / 2.0, 1e-12);  // s=2
}

TEST(BorelCascade, ZeroProgenyIsPointMassAtRoot) {
  const auto pmf = borel_cascade_size_pmf(0.0, 5);
  EXPECT_DOUBLE_EQ(pmf[0], 1.0);
  EXPECT_DOUBLE_EQ(pmf[1], 0.0);
}

TEST(BorelCascade, MatchesSimulatedCascadeSizes) {
  // Subcritical Poisson gossip: cascade sizes are Borel distributed.
  const double z = 2.0;
  const double q = 0.35;  // m = 0.7
  const auto dist = poisson_fanout(z);
  const auto pmf = borel_cascade_size_pmf(z * q, 40);

  experiment::MonteCarloOptions opt;
  opt.replications = 2000;
  opt.seed = 79;
  // The alive members reached are exactly the branching-process individuals
  // (offspring = alive targets), so their expected count is the Borel mean
  // 1/(1 - zq). The delivery MC reports the reached/alive ratio; scale back
  // to a count via the expected alive population.
  const auto est =
      experiment::estimate_reliability_graph(4000, *dist, q, opt);
  const double mean_alive_reached =
      est.mean_reliability() * (4000.0 * q + (1.0 - q));  // source forced alive
  EXPECT_NEAR(mean_alive_reached, borel_mean_cascade_size(z * q), 0.3);
}

TEST(BorelCascade, DistributionMatchesSimulatedCascades) {
  // Full distributional check: subcritical cascade sizes (alive members
  // reached per execution) follow the Borel law. Sample many executions
  // and chi-square against the pmf.
  const double z = 1.5;
  const double q = 0.4;  // m = 0.6
  const double m = z * q;
  const auto dist = poisson_fanout(z);
  const auto sampler = dist->sampler();

  constexpr std::int64_t kMaxBin = 12;
  std::vector<std::uint64_t> observed(kMaxBin + 1, 0);
  const rng::RngStream root(101);
  const std::size_t reps = 4000;
  for (std::size_t i = 0; i < reps; ++i) {
    auto rng = root.substream(i);
    graph::GossipGraphParams gp;
    gp.num_nodes = 800;
    gp.alive_probability = q;
    const auto gg = graph::make_gossip_digraph(gp, sampler, rng);
    const auto reach = graph::directed_reach(gg.graph, gg.source);
    std::int64_t alive_reached = 0;
    for (graph::NodeId v = 0; v < gp.num_nodes; ++v) {
      if (gg.alive[v] && reach.is_reached(v)) ++alive_reached;
    }
    ++observed[static_cast<std::size_t>(
        std::min<std::int64_t>(alive_reached - 1, kMaxBin))];
  }

  const auto borel = borel_cascade_size_pmf(m, 400);
  std::vector<double> expected(kMaxBin + 1, 0.0);
  double head = 0.0;
  for (std::int64_t k = 0; k < kMaxBin; ++k) {
    expected[static_cast<std::size_t>(k)] = borel[static_cast<std::size_t>(k)];
    head += borel[static_cast<std::size_t>(k)];
  }
  expected[kMaxBin] = std::max(0.0, 1.0 - head);  // pooled tail

  const auto gof = stats::chi_square_test(observed, expected);
  EXPECT_GT(gof.p_value, 1e-3) << "chi2=" << gof.statistic
                               << " dof=" << gof.dof;
}

TEST(BorelCascade, RejectsInvalidArguments) {
  EXPECT_THROW((void)borel_cascade_size_pmf(1.0, 10), std::invalid_argument);
  EXPECT_THROW((void)borel_cascade_size_pmf(-0.1, 10), std::invalid_argument);
  EXPECT_THROW((void)borel_cascade_size_pmf(0.5, 0), std::invalid_argument);
  EXPECT_THROW((void)borel_mean_cascade_size(1.2), std::invalid_argument);
}

}  // namespace
}  // namespace gossip::core
