/// core::Bitvec: the packed masks behind the protocol layer's
/// infection/delivery/alive tracking. These pin the word-level invariants
/// (trailing-bit trim, popcount, AND-count) that the hot paths rely on.

#include "core/bitvec.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace gossip::core {
namespace {

TEST(Bitvec, DefaultIsEmpty) {
  const Bitvec b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.count(), 0u);
}

TEST(Bitvec, SetResetAndIndexing) {
  Bitvec b(130);  // spans three words
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.count(), 0u);
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b[0]);
  EXPECT_TRUE(b[64]);
  EXPECT_TRUE(b[129]);
  EXPECT_FALSE(b[1]);
  EXPECT_FALSE(b[63]);
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b[64]);
  EXPECT_EQ(b.count(), 2u);
  b.set(5, true);
  b.set(5, false);
  EXPECT_FALSE(b[5]);
}

TEST(Bitvec, AssignTrueTrimsTrailingBits) {
  // 70 bits set true: the second word has 6 live bits; count() must not see
  // the 58 dead ones.
  Bitvec b(70, true);
  EXPECT_EQ(b.count(), 70u);
  EXPECT_TRUE(b[69]);
  b.assign(64, true);  // exact word boundary
  EXPECT_EQ(b.count(), 64u);
}

TEST(Bitvec, CountAndIntersection) {
  Bitvec a(100);
  Bitvec b(100);
  for (std::size_t i = 0; i < 100; i += 2) a.set(i);   // evens
  for (std::size_t i = 0; i < 100; i += 3) b.set(i);   // multiples of 3
  // Intersection: multiples of 6 in [0, 100) -> 17 values.
  EXPECT_EQ(Bitvec::count_and(a, b), 17u);
}

TEST(Bitvec, ResetAllClearsWithoutResizing) {
  Bitvec b(200, true);
  b.reset_all();
  EXPECT_EQ(b.size(), 200u);
  EXPECT_EQ(b.count(), 0u);
}

TEST(Bitvec, InitializerListAndEquality) {
  const Bitvec a{1, 0, 1, 1};
  EXPECT_EQ(a.size(), 4u);
  EXPECT_TRUE(a[0]);
  EXPECT_FALSE(a[1]);
  EXPECT_EQ(a.count(), 3u);
  const Bitvec b{1, 0, 1, 1};
  const Bitvec c{1, 0, 1, 0};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  // Same bits, different length: not equal.
  const Bitvec d{1, 0, 1, 1, 0};
  EXPECT_FALSE(a == d);
}

TEST(Bitvec, AtBoundsChecks) {
  Bitvec b(10);
  b.set(9);
  EXPECT_TRUE(b.at(9));
  EXPECT_FALSE(b.at(0));
  EXPECT_THROW((void)b.at(10), std::out_of_range);
}

TEST(Bitvec, CapacityBytesReflectsPackedStorage) {
  Bitvec b(1'000'000);
  // 10^6 bits pack into 15625 words = 125 KB; anything near 1 MB would mean
  // the mask degenerated to a byte per node.
  EXPECT_GE(b.capacity_bytes(), 125'000u);
  EXPECT_LE(b.capacity_bytes(), 250'000u);
}

}  // namespace
}  // namespace gossip::core
