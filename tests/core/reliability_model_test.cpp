#include "core/reliability_model.hpp"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace gossip::core {
namespace {

TEST(PoissonReliability, PaperOperatingPointsAgree) {
  // Section 5.2: {f=4.0, q=0.9} and {f=6.0, q=0.6} share f*q = 3.6 and
  // therefore the same reliability (~0.967 in the paper's rounding).
  const double r1 = poisson_reliability(4.0, 0.9);
  const double r2 = poisson_reliability(6.0, 0.6);
  EXPECT_NEAR(r1, r2, 1e-10);
  EXPECT_NEAR(r1, 0.9695, 5e-4);
}

TEST(PoissonReliability, SubcriticalIsZero) {
  EXPECT_DOUBLE_EQ(poisson_reliability(2.0, 0.4), 0.0);  // zq = 0.8
  EXPECT_DOUBLE_EQ(poisson_reliability(1.0, 1.0), 0.0);  // zq = 1 exactly
  EXPECT_DOUBLE_EQ(poisson_reliability(0.0, 1.0), 0.0);
}

TEST(PoissonReliability, SatisfiesEq11FixedPoint) {
  for (const double z : {1.5, 2.0, 3.0, 4.0, 6.0}) {
    for (const double q : {0.5, 0.7, 0.9, 1.0}) {
      const double s = poisson_reliability(z, q);
      if (z * q > 1.0) {
        ASSERT_GT(s, 0.0);
        EXPECT_NEAR(s, 1.0 - std::exp(-z * q * s), 1e-10)
            << "z=" << z << " q=" << q;
      }
    }
  }
}

TEST(PoissonReliability, DependsOnlyOnProductZq) {
  EXPECT_NEAR(poisson_reliability(8.0, 0.25), poisson_reliability(2.0, 1.0),
              1e-10);
  EXPECT_NEAR(poisson_reliability(10.0, 0.5), poisson_reliability(5.0, 1.0),
              1e-10);
}

TEST(PoissonReliability, RejectsInvalidArguments) {
  EXPECT_THROW((void)poisson_reliability(-1.0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)poisson_reliability(2.0, -0.1), std::invalid_argument);
  EXPECT_THROW((void)poisson_reliability(2.0, 1.1), std::invalid_argument);
}

TEST(PoissonRequiredFanout, RoundTripsThroughEq11) {
  // Eq. (12): z = -ln(1-S)/(qS); plugging z back must reproduce S.
  for (const double target : {0.2, 0.5, 0.9, 0.99, 0.9999}) {
    for (const double q : {0.2, 0.6, 1.0}) {
      const double z = poisson_required_fanout(target, q);
      EXPECT_NEAR(poisson_reliability(z, q), target, 1e-6)
          << "S=" << target << " q=" << q;
    }
  }
}

TEST(PoissonRequiredFanout, MatchesPaperFig2Shape) {
  // Fig. 2: higher q needs lower fanout; extreme reliability needs z ~ 46
  // at q = 0.2 (z = -ln(1e-4)/(0.2*0.9999) ~ 46.06).
  EXPECT_NEAR(poisson_required_fanout(0.9999, 0.2), 46.06, 0.05);
  EXPECT_LT(poisson_required_fanout(0.9999, 1.0),
            poisson_required_fanout(0.9999, 0.2));
  // Low end of the paper's range: S = 0.1111.
  const double z_low = poisson_required_fanout(0.1111, 1.0);
  EXPECT_NEAR(z_low, -std::log(1.0 - 0.1111) / 0.1111, 1e-9);
}

TEST(PoissonRequiredFanout, RejectsDegenerateTargets) {
  EXPECT_THROW((void)poisson_required_fanout(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)poisson_required_fanout(1.0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)poisson_required_fanout(0.5, 0.0), std::invalid_argument);
}

TEST(PoissonCriticalQ, IsReciprocalFanout) {
  EXPECT_DOUBLE_EQ(poisson_critical_q(4.0), 0.25);
  EXPECT_DOUBLE_EQ(poisson_critical_q(1.0), 1.0);
  EXPECT_THROW((void)poisson_critical_q(0.0), std::invalid_argument);
}

TEST(PoissonRequiredNonfailedRatio, InverseOfRequiredFanout) {
  const double target = 0.9;
  const double z = poisson_required_fanout(target, 0.6);
  EXPECT_NEAR(poisson_required_nonfailed_ratio(target, z), 0.6, 1e-9);
}

TEST(PoissonRequiredNonfailedRatio, CapsAtOne) {
  // A tiny fanout cannot reach the target at any q; result clamps to 1.
  EXPECT_DOUBLE_EQ(poisson_required_nonfailed_ratio(0.99, 1.0), 1.0);
}

TEST(GossipModel, ExposesPercolationResults) {
  const GossipModel model(1000, poisson_fanout(4.0), 0.9);
  EXPECT_NEAR(model.reliability(), poisson_reliability(4.0, 0.9), 1e-6);
  EXPECT_NEAR(model.critical_nonfailed_ratio(), 0.25, 1e-6);
  EXPECT_TRUE(model.supercritical());
  EXPECT_NEAR(model.max_tolerable_failure_ratio(), 0.75, 1e-6);
  EXPECT_EQ(model.expected_nonfailed(), 900u);
  EXPECT_NEAR(model.expected_receivers(), model.reliability() * 900.0, 1e-6);
  EXPECT_EQ(model.num_members(), 1000u);
  EXPECT_DOUBLE_EQ(model.nonfailed_ratio(), 0.9);
  EXPECT_FALSE(model.fanout().name().empty());
}

TEST(GossipModel, SubcriticalModelReportsZeroReliability) {
  const GossipModel model(1000, poisson_fanout(2.0), 0.3);
  EXPECT_FALSE(model.supercritical());
  EXPECT_NEAR(model.reliability(), 0.0, 1e-5);
}

TEST(GossipModel, WorksWithNonPoissonFanout) {
  const GossipModel model(500, fixed_fanout(4), 0.8);
  // Fixed k=4: q_c = 1/3; q=0.8 is supercritical.
  EXPECT_NEAR(model.critical_nonfailed_ratio(), 1.0 / 3.0, 1e-9);
  EXPECT_TRUE(model.supercritical());
  EXPECT_GT(model.reliability(), 0.8);
}

TEST(GossipModel, FixedFanoutBeatsPoissonAtSameMean) {
  // Lower variance -> higher reliability at equal mean (and equal q):
  // fixed fanout's G1'(1) = k-1 < k = Poisson's only when k small... the
  // comparison that matters for reliability is the full fixed point; verify
  // the known ordering at a mid-range operating point.
  const GossipModel fixed(1000, fixed_fanout(3), 0.8);
  const GossipModel poisson(1000, poisson_fanout(3.0), 0.8);
  EXPECT_GT(fixed.reliability(), poisson.reliability());
}

TEST(GossipModel, RejectsInvalidConstruction) {
  EXPECT_THROW(GossipModel(0, poisson_fanout(4.0), 0.9),
               std::invalid_argument);
  EXPECT_THROW(GossipModel(10, nullptr, 0.9), std::invalid_argument);
  EXPECT_THROW(GossipModel(10, poisson_fanout(4.0), 0.0),
               std::invalid_argument);
  EXPECT_THROW(GossipModel(10, poisson_fanout(4.0), 1.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace gossip::core
