# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/gossip_rng_tests[1]_include.cmake")
include("/root/repo/tests/gossip_math_tests[1]_include.cmake")
include("/root/repo/tests/gossip_stats_tests[1]_include.cmake")
include("/root/repo/tests/gossip_graph_tests[1]_include.cmake")
include("/root/repo/tests/gossip_core_tests[1]_include.cmake")
include("/root/repo/tests/gossip_net_tests[1]_include.cmake")
include("/root/repo/tests/gossip_obs_tests[1]_include.cmake")
include("/root/repo/tests/gossip_membership_tests[1]_include.cmake")
include("/root/repo/tests/gossip_sim_tests[1]_include.cmake")
include("/root/repo/tests/gossip_protocol_tests[1]_include.cmake")
include("/root/repo/tests/gossip_parallel_tests[1]_include.cmake")
include("/root/repo/tests/gossip_experiment_tests[1]_include.cmake")
include("/root/repo/tests/gossip_scenario_tests[1]_include.cmake")
include("/root/repo/tests/gossip_integration_tests[1]_include.cmake")
include("/root/repo/tests/gossip_validation_tests[1]_include.cmake")
if(CTEST_CONFIGURATION_TYPE MATCHES "^([Vv][Aa][Ll][Ii][Dd][Aa][Tt][Ii][Oo][Nn])$")
  add_test([=[validation.full]=] "/root/repo/tests/gossip_validation_tests" "--gtest_filter=*FullTier*:*Divergence*")
  set_tests_properties([=[validation.full]=] PROPERTIES  ENVIRONMENT "GOSSIP_VALIDATION_FULL=1" LABELS "validation" TIMEOUT "1800" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;74;add_test;/root/repo/tests/CMakeLists.txt;0;")
endif()
add_test([=[docs.check]=] "/root/.pyenv/shims/python3" "/root/repo/tools/check_docs.py")
set_tests_properties([=[docs.check]=] PROPERTIES  TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;87;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[lint.selftest]=] "/root/.pyenv/shims/python3" "/root/repo/tests/lint/determinism_lint_test.py")
set_tests_properties([=[lint.selftest]=] PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;96;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[lint.src_tree]=] "/root/.pyenv/shims/python3" "/root/repo/tools/lint/determinism_lint.py" "--root" "/root/repo" "--compile-commands" "/root/repo/compile_commands.json" "--verbose")
set_tests_properties([=[lint.src_tree]=] PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;100;add_test;/root/repo/tests/CMakeLists.txt;0;")
