#include "obs/probe.hpp"

#include <gtest/gtest.h>

namespace gossip::obs {
namespace {

TEST(RoundTrace, CollectsRoundsInOrder) {
  RoundTrace trace;
  for (std::uint64_t r = 0; r < 4; ++r) {
    RoundSample sample;
    sample.round = r;
    sample.newly_informed = r + 1;
    trace.on_round(sample);
  }
  ASSERT_EQ(trace.rounds().size(), 4u);
  for (std::uint64_t r = 0; r < 4; ++r) {
    EXPECT_EQ(trace.rounds()[r].round, r);
    EXPECT_EQ(trace.rounds()[r].newly_informed, r + 1);
  }
}

TEST(RoundTrace, RecordsRunSummary) {
  RoundTrace trace;
  RunSummary summary;
  summary.rounds = 7;
  summary.sends = 123;
  summary.informed_final = 95;
  summary.nonfailed_final = 100;
  trace.on_run(summary);
  EXPECT_EQ(trace.summary().rounds, 7u);
  EXPECT_EQ(trace.summary().sends, 123u);
  EXPECT_EQ(trace.summary().informed_final, 95u);
  EXPECT_EQ(trace.summary().nonfailed_final, 100u);
}

TEST(RoundTrace, ClearResetsRoundsAndSummary) {
  RoundTrace trace;
  trace.on_round(RoundSample{});
  RunSummary summary;
  summary.rounds = 3;
  trace.on_run(summary);

  trace.clear();
  EXPECT_TRUE(trace.rounds().empty());
  EXPECT_EQ(trace.summary().rounds, 0u);
  EXPECT_EQ(trace.summary().informed_final, 0u);
}

TEST(RoundSample, DefaultsToAllZero) {
  const RoundSample sample;
  EXPECT_EQ(sample.round, 0u);
  EXPECT_EQ(sample.frontier, 0u);
  EXPECT_EQ(sample.sends, 0u);
  EXPECT_EQ(sample.newly_informed, 0u);
  EXPECT_EQ(sample.redundant, 0u);
  EXPECT_EQ(sample.losses, 0u);
  EXPECT_EQ(sample.dead_receipts, 0u);
  EXPECT_EQ(sample.crashes, 0u);
  EXPECT_EQ(sample.joins, 0u);
  EXPECT_EQ(sample.lease_expiries, 0u);
  EXPECT_EQ(sample.informed, 0u);
}

/// A probe is an abstract interface: deleting through the base must reach
/// the derived destructor (the vtable anchor lives in probe.cpp).
TEST(Probe, PolymorphicDeleteRunsDerivedDestructor) {
  static bool destroyed = false;
  class Flagging final : public Probe {
   public:
    ~Flagging() override { destroyed = true; }
    void on_round(const RoundSample&) override {}
    void on_run(const RunSummary&) override {}
  };
  destroyed = false;
  Probe* probe = new Flagging;
  delete probe;
  EXPECT_TRUE(destroyed);
}

}  // namespace
}  // namespace gossip::obs
