#include "obs/manifest.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace gossip::obs {
namespace {

// FNV-1a 64 known-answer vectors (offset basis and the classic test
// strings); the hash must be identical on every platform or spec
// fingerprints would churn across machines.
TEST(Fnv1a64, KnownVectors) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64, SensitiveToEveryByte) {
  EXPECT_NE(fnv1a64("abc"), fnv1a64("abd"));
  EXPECT_NE(fnv1a64("abc"), fnv1a64("abc "));
}

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("z=4.0,f=0.1"), "z=4.0,f=0.1");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(PeakRss, ReportsNonZeroOnUnix) {
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(peak_rss_bytes(), 0u);
#else
  GTEST_SKIP() << "no getrusage on this platform";
#endif
}

RunManifest sample_manifest() {
  RunManifest m;
  m.tool = "gossip_scenarios";
  m.spec_name = "fig4a";
  m.spec_path = "scenarios/fig4a.scn";
  m.spec_hash = "fnv1a64:0123456789abcdef";
  m.threads = 2;
  m.smoke = true;
  m.trace_mode = "rounds";
  m.results_csv = "results/fig4a.csv";
  m.trace_csv = "results/fig4a_trace.csv";
  m.total_wall_seconds = 1.25;
  m.peak_rss_bytes = 1048576;
  CaseManifest c;
  c.scenario = "fig4a";
  c.label = "z=4.0,f=0.1";
  c.backend = "flat";
  c.metric = "reliability";
  c.seed = 2008;
  c.replications = 60;
  c.primary = 0.9695;
  c.success_rate = 0.0;
  c.wall_seconds = 0.5;
  c.rep_seconds_min = 0.001;
  c.rep_seconds_mean = 0.008;
  c.rep_seconds_max = 0.02;
  c.rep_time_log2us = {0, 0, 3, 57};
  m.cases.push_back(c);
  return m;
}

TEST(ToJson, EmitsEveryFieldWithStableKeys) {
  const std::string json = to_json(sample_manifest());
  for (const char* needle :
       {"\"tool\": \"gossip_scenarios\"", "\"spec_name\": \"fig4a\"",
        "\"spec_hash\": \"fnv1a64:0123456789abcdef\"", "\"threads\": 2",
        "\"smoke\": true", "\"trace\": \"rounds\"",
        "\"total_wall_seconds\": 1.25", "\"peak_rss_bytes\": 1048576",
        "\"case\": \"z=4.0,f=0.1\"", "\"backend\": \"flat\"",
        "\"seed\": 2008", "\"replications\": 60", "\"primary\": 0.9695",
        "\"rep_time_log2us\": [0, 0, 3, 57]"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << "missing " << needle;
  }
  // Balanced braces/brackets — a cheap structural sanity check that does
  // not require a JSON parser in the test image.
  std::ptrdiff_t braces = 0;
  std::ptrdiff_t brackets = 0;
  for (const char ch : json) {
    braces += ch == '{' ? 1 : ch == '}' ? -1 : 0;
    brackets += ch == '[' ? 1 : ch == ']' ? -1 : 0;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ToJson, IsDeterministic) {
  EXPECT_EQ(to_json(sample_manifest()), to_json(sample_manifest()));
}

TEST(WriteManifest, RoundTripsThroughFile) {
  const std::string path =
      testing::TempDir() + "/gossip_manifest_roundtrip.json";
  const auto manifest = sample_manifest();
  write_manifest(path, manifest);
  std::ifstream in(path);
  ASSERT_TRUE(in);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), to_json(manifest));
  std::remove(path.c_str());
}

TEST(WriteManifest, ThrowsOnUnwritablePath) {
  EXPECT_THROW(write_manifest("/nonexistent-dir/x/manifest.json",
                              sample_manifest()),
               std::runtime_error);
}

}  // namespace
}  // namespace gossip::obs
