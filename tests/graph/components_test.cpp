#include "graph/components.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace gossip::graph {
namespace {

Digraph make_undirected(std::initializer_list<std::pair<NodeId, NodeId>> edges,
                        NodeId n) {
  DigraphBuilder b(n);
  for (const auto& [u, v] : edges) {
    b.add_edge(u, v);
    b.add_edge(v, u);
  }
  return std::move(b).build();
}

TEST(UnionFind, StartsFullyDisjoint) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_components(), 5u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(uf.find(v), v);
    EXPECT_EQ(uf.size_of(v), 1u);
  }
}

TEST(UnionFind, UniteMergesAndCounts) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_EQ(uf.num_components(), 2u);
  EXPECT_FALSE(uf.unite(1, 0));  // already together
  EXPECT_TRUE(uf.unite(1, 3));
  EXPECT_EQ(uf.num_components(), 1u);
  EXPECT_EQ(uf.size_of(2), 4u);
  EXPECT_EQ(uf.find(0), uf.find(3));
}

TEST(UndirectedComponents, IdentifiesSeparateComponents) {
  // {0,1,2} and {3,4}; 5 isolated.
  const auto g = make_undirected({{0, 1}, {1, 2}, {3, 4}}, 6);
  const auto result = undirected_components(g);
  EXPECT_EQ(result.sizes.size(), 3u);
  EXPECT_EQ(result.giant_size, 3u);
  EXPECT_TRUE(result.in_giant(0));
  EXPECT_TRUE(result.in_giant(1));
  EXPECT_TRUE(result.in_giant(2));
  EXPECT_FALSE(result.in_giant(3));
  EXPECT_FALSE(result.in_giant(5));
  EXPECT_EQ(result.label[3], result.label[4]);
  EXPECT_NE(result.label[0], result.label[3]);
}

TEST(UndirectedComponents, SingleNodeGraph) {
  DigraphBuilder b(1);
  const auto g = std::move(b).build();
  const auto result = undirected_components(g);
  EXPECT_EQ(result.giant_size, 1u);
  EXPECT_TRUE(result.in_giant(0));
}

TEST(UndirectedComponents, FullyConnectedGraph) {
  const auto g = make_undirected({{0, 1}, {1, 2}, {2, 3}, {3, 0}}, 4);
  const auto result = undirected_components(g);
  EXPECT_EQ(result.sizes.size(), 1u);
  EXPECT_EQ(result.giant_size, 4u);
}

TEST(UndirectedComponents, IncludeMaskRemovesNodesAndTheirEdges) {
  // Path 0-1-2-3; excluding node 1 splits {0} and {2,3}.
  const auto g = make_undirected({{0, 1}, {1, 2}, {2, 3}}, 4);
  const std::vector<std::uint8_t> include{1, 0, 1, 1};
  const auto result = undirected_components(g, include);
  EXPECT_EQ(result.label[1], ComponentsResult::kNoComponent);
  EXPECT_FALSE(result.in_giant(1));
  EXPECT_EQ(result.giant_size, 2u);
  EXPECT_TRUE(result.in_giant(2));
  EXPECT_TRUE(result.in_giant(3));
  EXPECT_FALSE(result.in_giant(0));
}

TEST(UndirectedComponents, AllExcludedYieldsNoComponents) {
  const auto g = make_undirected({{0, 1}}, 2);
  const std::vector<std::uint8_t> include{0, 0};
  const auto result = undirected_components(g, include);
  EXPECT_EQ(result.sizes.size(), 0u);
  EXPECT_EQ(result.giant_size, 0u);
  EXPECT_EQ(result.giant_id, ComponentsResult::kNoComponent);
}

TEST(UndirectedComponents, MaskSizeMismatchThrows) {
  const auto g = make_undirected({{0, 1}}, 2);
  EXPECT_THROW((void)undirected_components(g, {1}), std::invalid_argument);
}

TEST(UndirectedComponents, SizesSumToIncludedCount) {
  const auto g =
      make_undirected({{0, 1}, {2, 3}, {4, 5}, {5, 6}, {8, 9}}, 10);
  const std::vector<std::uint8_t> include{1, 1, 1, 1, 1, 1, 1, 0, 1, 1};
  const auto result = undirected_components(g, include);
  std::uint32_t total = 0;
  for (const auto s : result.sizes) total += s;
  EXPECT_EQ(total, 9u);
}

TEST(UndirectedComponents, DirectedEdgesAreTreatedAsUndirected) {
  // One-way edge 0 -> 1 still connects them undirectedly.
  DigraphBuilder b(2);
  b.add_edge(0, 1);
  const auto g = std::move(b).build();
  const auto result = undirected_components(g);
  EXPECT_EQ(result.giant_size, 2u);
}

}  // namespace
}  // namespace gossip::graph
