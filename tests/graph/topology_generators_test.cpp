#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/reachability.hpp"

namespace gossip::graph {
namespace {

std::vector<std::uint32_t> degree_sequence(const Digraph& g) {
  std::vector<std::uint32_t> degrees(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) degrees[v] = g.out_degree(v);
  return degrees;
}

void expect_simple_symmetric(const Digraph& g) {
  std::set<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const NodeId w : g.out_neighbors(v)) {
      ASSERT_NE(w, v) << "self-loop at " << v;
      ASSERT_TRUE(edges.insert({v, w}).second)
          << "duplicate edge " << v << "->" << w;
    }
  }
  for (const auto& [v, w] : edges) {
    EXPECT_TRUE(edges.count({w, v})) << "missing reverse of " << v << "->"
                                     << w;
  }
}

bool connected(const Digraph& g) {
  // Both directions of every undirected edge are stored, so directed reach
  // from node 0 decides connectivity.
  const auto reach = directed_reach(g, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!reach.is_reached(v)) return false;
  }
  return true;
}

// --- Erdős–Rényi ---

TEST(ErdosRenyiTopology, EdgeCountWithinBinomialFourSigma) {
  const std::uint32_t n = 2000;
  const double p = 0.008;
  rng::RngStream rng = rng::RngStream(7).substream(0);
  const auto g = erdos_renyi(n, p, rng, /*directed=*/false);
  // Undirected pairs ~ Binomial(n(n-1)/2, p); the Digraph stores each edge
  // twice.
  const double pairs = static_cast<double>(n) * (n - 1) / 2.0;
  const double mean = pairs * p;
  const double sigma = std::sqrt(pairs * p * (1.0 - p));
  const double realized = static_cast<double>(g.num_edges()) / 2.0;
  EXPECT_NEAR(realized, mean, 4.0 * sigma)
      << "realized " << realized << " expected " << mean << " sigma "
      << sigma;
  expect_simple_symmetric(g);
}

TEST(ErdosRenyiTopology, BitIdenticalAcrossRerunsOnSameSubstream) {
  const auto run = [] {
    rng::RngStream rng = rng::RngStream(99).substream(3);
    const auto g = erdos_renyi(500, 0.02, rng, /*directed=*/false);
    return degree_sequence(g);
  };
  EXPECT_EQ(run(), run());
}

// --- Barabási–Albert ---

TEST(BarabasiAlbertTopology, ExactEdgeCountAndDegreeSum) {
  const std::uint32_t n = 3000;
  const std::uint32_t m = 4;
  rng::RngStream rng = rng::RngStream(11).substream(0);
  const auto g = barabasi_albert(n, m, rng);
  const std::uint64_t undirected = static_cast<std::uint64_t>(m) * (n - m);
  EXPECT_EQ(g.num_edges(), 2 * undirected);
  std::uint64_t degree_sum = 0;
  for (const auto d : degree_sequence(g)) degree_sum += d;
  EXPECT_EQ(degree_sum, 2 * undirected);
  expect_simple_symmetric(g);
}

TEST(BarabasiAlbertTopology, HeavyTailMaxDegreeFarExceedsMedian) {
  const std::uint32_t n = 5000;
  const std::uint32_t m = 3;
  rng::RngStream rng = rng::RngStream(12).substream(0);
  const auto g = barabasi_albert(n, m, rng);
  auto degrees = degree_sequence(g);
  std::sort(degrees.begin(), degrees.end());
  const std::uint32_t median = degrees[degrees.size() / 2];
  const std::uint32_t max = degrees.back();
  // Preferential attachment: typical nodes sit near m while the largest hub
  // grows like sqrt(n). A 10x gap is far below the expectation but far
  // above anything an ER graph of the same density produces.
  EXPECT_GE(median, m);
  EXPECT_GE(max, 10 * median)
      << "max " << max << " median " << median << " — no heavy tail?";
}

TEST(BarabasiAlbertTopology, EveryNodeConnectedAndMinDegreeM) {
  rng::RngStream rng = rng::RngStream(13).substream(0);
  const auto g = barabasi_albert(800, 2, rng);
  EXPECT_TRUE(connected(g));
  for (const auto d : degree_sequence(g)) EXPECT_GE(d, 2u);
}

TEST(BarabasiAlbertTopology, BitIdenticalAcrossRerunsOnSameSubstream) {
  const auto run = [] {
    rng::RngStream rng = rng::RngStream(21).substream(5);
    const auto g = barabasi_albert(1000, 3, rng);
    return degree_sequence(g);
  };
  EXPECT_EQ(run(), run());
}

TEST(BarabasiAlbertTopology, RejectsDegenerateParameters) {
  rng::RngStream rng(1);
  EXPECT_THROW(barabasi_albert(10, 0, rng), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(3, 3, rng), std::invalid_argument);
}

// --- WAN hierarchy ---

TEST(WanHierarchyTopology, ExactClusterCountAndContiguousBlocks) {
  WanParams params;
  params.num_nodes = 1003;  // non-divisible: first 3 clusters get 201 nodes
  params.clusters = 5;
  params.bridge_edges = 12;
  params.intra_probability = 0.01;
  rng::RngStream rng = rng::RngStream(31).substream(0);
  const auto wan = wan_hierarchy(params, rng);
  EXPECT_EQ(wan.num_clusters, 5u);
  ASSERT_EQ(wan.cluster_of.size(), params.num_nodes);
  std::vector<std::uint32_t> sizes(params.clusters, 0);
  for (std::uint32_t v = 0; v < params.num_nodes; ++v) {
    ASSERT_LT(wan.cluster_of[v], params.clusters);
    if (v > 0) {
      // Contiguous non-decreasing block assignment.
      ASSERT_GE(wan.cluster_of[v], wan.cluster_of[v - 1]);
    }
    ++sizes[wan.cluster_of[v]];
  }
  EXPECT_EQ(std::vector<std::uint32_t>({201, 201, 201, 200, 200}), sizes);
}

TEST(WanHierarchyTopology, ConnectedEvenAtMinimumBridgeBudget) {
  WanParams params;
  params.num_nodes = 400;
  params.clusters = 8;
  params.bridge_edges = 8;  // exactly the ring
  params.intra_probability = 0.0;  // cycle-only clusters
  rng::RngStream rng = rng::RngStream(32).substream(0);
  const auto wan = wan_hierarchy(params, rng);
  EXPECT_TRUE(connected(wan.graph));
  EXPECT_EQ(wan.bridge_count, 8u);
  // Cycle-only clusters: every intra edge is on a Hamiltonian cycle.
  EXPECT_EQ(wan.intra_edges, 400u);
  expect_simple_symmetric(wan.graph);
}

TEST(WanHierarchyTopology, BridgeEdgesCrossClustersOnly) {
  WanParams params;
  params.num_nodes = 300;
  params.clusters = 3;
  params.bridge_edges = 20;
  rng::RngStream rng = rng::RngStream(33).substream(0);
  const auto wan = wan_hierarchy(params, rng);
  std::uint64_t cross = 0;
  for (NodeId v = 0; v < wan.graph.num_nodes(); ++v) {
    for (const NodeId w : wan.graph.out_neighbors(v)) {
      if (v < w && wan.cluster_of[v] != wan.cluster_of[w]) ++cross;
    }
  }
  EXPECT_EQ(cross, wan.bridge_count);
  EXPECT_LE(wan.bridge_count, params.bridge_edges);
  EXPECT_GE(wan.bridge_count, params.clusters);
}

TEST(WanHierarchyTopology, BitIdenticalAcrossRerunsOnSameSubstream) {
  const auto run = [] {
    WanParams params;
    params.num_nodes = 500;
    params.clusters = 4;
    params.bridge_edges = 10;
    params.intra_probability = 0.02;
    rng::RngStream rng = rng::RngStream(41).substream(7);
    const auto wan = wan_hierarchy(params, rng);
    return degree_sequence(wan.graph);
  };
  EXPECT_EQ(run(), run());
}

TEST(WanHierarchyTopology, RejectsDegenerateParameters) {
  rng::RngStream rng(1);
  WanParams params;
  params.num_nodes = 100;
  params.clusters = 1;
  params.bridge_edges = 5;
  EXPECT_THROW(wan_hierarchy(params, rng), std::invalid_argument);
  params.clusters = 4;
  params.bridge_edges = 3;  // below the ring budget
  EXPECT_THROW(wan_hierarchy(params, rng), std::invalid_argument);
  params.bridge_edges = 4;
  params.num_nodes = 7;  // < 2 * clusters
  EXPECT_THROW(wan_hierarchy(params, rng), std::invalid_argument);
  params.num_nodes = 100;
  params.intra_probability = 1.5;
  EXPECT_THROW(wan_hierarchy(params, rng), std::invalid_argument);
}

}  // namespace
}  // namespace gossip::graph
