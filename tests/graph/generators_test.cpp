#include "graph/generators.hpp"

#include <cmath>
#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

#include "rng/distributions.hpp"
#include "stats/summary.hpp"

namespace gossip::graph {
namespace {

TEST(MakeGossipDigraph, SourceIsAlwaysAlive) {
  GossipGraphParams p;
  p.num_nodes = 100;
  p.source = 42;
  p.alive_probability = 0.01;  // almost everyone fails
  rng::RngStream rng(1);
  const auto sampler = [](rng::RngStream&) -> std::int64_t { return 2; };
  for (int i = 0; i < 20; ++i) {
    const auto g = make_gossip_digraph(p, sampler, rng);
    ASSERT_EQ(g.alive[42], 1);
    ASSERT_GE(g.alive_count, 1u);
  }
}

TEST(MakeGossipDigraph, CrashedNodesHaveNoOutEdges) {
  GossipGraphParams p;
  p.num_nodes = 200;
  p.alive_probability = 0.5;
  rng::RngStream rng(2);
  const auto sampler = [](rng::RngStream&) -> std::int64_t { return 3; };
  const auto g = make_gossip_digraph(p, sampler, rng);
  for (NodeId v = 0; v < p.num_nodes; ++v) {
    if (!g.alive[v]) {
      EXPECT_EQ(g.graph.out_degree(v), 0u) << "node " << v;
    } else {
      EXPECT_EQ(g.graph.out_degree(v), 3u) << "node " << v;
    }
  }
}

TEST(MakeGossipDigraph, NoSelfLoopsOrDuplicateTargets) {
  GossipGraphParams p;
  p.num_nodes = 50;
  rng::RngStream rng(3);
  const auto sampler = [](rng::RngStream&) -> std::int64_t { return 10; };
  const auto g = make_gossip_digraph(p, sampler, rng);
  for (NodeId v = 0; v < p.num_nodes; ++v) {
    std::set<NodeId> seen;
    for (const NodeId w : g.graph.out_neighbors(v)) {
      ASSERT_NE(w, v) << "self-loop at " << v;
      ASSERT_TRUE(seen.insert(w).second) << "duplicate target from " << v;
    }
  }
}

TEST(MakeGossipDigraph, FanoutClampedToGroupSize) {
  GossipGraphParams p;
  p.num_nodes = 5;
  rng::RngStream rng(4);
  const auto sampler = [](rng::RngStream&) -> std::int64_t { return 100; };
  const auto g = make_gossip_digraph(p, sampler, rng);
  for (NodeId v = 0; v < p.num_nodes; ++v) {
    EXPECT_EQ(g.graph.out_degree(v), 4u);
  }
}

TEST(MakeGossipDigraph, EdgeKeepProbabilityThinsEdges) {
  GossipGraphParams p;
  p.num_nodes = 500;
  p.edge_keep_probability = 0.5;
  rng::RngStream rng(5);
  const auto sampler = [](rng::RngStream&) -> std::int64_t { return 10; };
  const auto g = make_gossip_digraph(p, sampler, rng);
  const double expected = 500.0 * 10.0 * 0.5;
  EXPECT_NEAR(static_cast<double>(g.graph.num_edges()), expected,
              expected * 0.1);
}

TEST(MakeGossipDigraph, PoissonFanoutHasPoissonOutDegrees) {
  GossipGraphParams p;
  p.num_nodes = 2000;
  rng::RngStream rng(6);
  const double z = 4.0;
  const auto sampler = [z](rng::RngStream& r) {
    return rng::sample_poisson(r, z);
  };
  const auto g = make_gossip_digraph(p, sampler, rng);
  stats::OnlineSummary degrees;
  for (NodeId v = 0; v < p.num_nodes; ++v) {
    degrees.add(static_cast<double>(g.graph.out_degree(v)));
  }
  EXPECT_NEAR(degrees.mean(), z, 0.15);
  EXPECT_NEAR(degrees.variance(), z, 0.4);
}

TEST(MakeGossipDigraph, ValidationErrors) {
  rng::RngStream rng(1);
  const auto sampler = [](rng::RngStream&) -> std::int64_t { return 1; };
  GossipGraphParams p;
  p.num_nodes = 0;
  EXPECT_THROW((void)make_gossip_digraph(p, sampler, rng),
               std::invalid_argument);
  p.num_nodes = 3;
  p.source = 3;
  EXPECT_THROW((void)make_gossip_digraph(p, sampler, rng), std::out_of_range);
  p.source = 0;
  p.alive_probability = 1.5;
  EXPECT_THROW((void)make_gossip_digraph(p, sampler, rng),
               std::invalid_argument);
  p.alive_probability = 1.0;
  p.edge_keep_probability = -0.1;
  EXPECT_THROW((void)make_gossip_digraph(p, sampler, rng),
               std::invalid_argument);
}

TEST(MakeGossipDigraph, NegativeSamplerValueThrows) {
  rng::RngStream rng(1);
  GossipGraphParams p;
  p.num_nodes = 4;
  const auto bad = [](rng::RngStream&) -> std::int64_t { return -1; };
  EXPECT_THROW((void)make_gossip_digraph(p, bad, rng), std::domain_error);
}

TEST(ConfigurationModel, PreservesDegreesWhenSimple) {
  // Degrees small relative to n: collisions are rare, so most nodes keep
  // their exact degree; the erased model only loses a few stubs.
  const std::vector<std::uint32_t> degrees(100, 4);
  rng::RngStream rng(7);
  const auto g = configuration_model(degrees, rng);
  std::uint64_t total = 0;
  for (NodeId v = 0; v < 100; ++v) total += g.out_degree(v);
  // Each kept undirected edge contributes 2; at most a few % lost.
  EXPECT_GE(total, 380u);
  EXPECT_LE(total, 400u);
}

TEST(ConfigurationModel, EdgesAreSymmetric) {
  const std::vector<std::uint32_t> degrees{3, 2, 2, 3, 2};
  rng::RngStream rng(8);
  const auto g = configuration_model(degrees, rng);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const NodeId w : g.out_neighbors(v)) {
      const auto back = g.out_neighbors(w);
      EXPECT_NE(std::find(back.begin(), back.end(), v), back.end())
          << "edge " << v << "->" << w << " missing reverse";
    }
  }
}

TEST(ConfigurationModel, RejectsOddDegreeSum) {
  rng::RngStream rng(9);
  EXPECT_THROW((void)configuration_model({1, 1, 1}, rng),
               std::invalid_argument);
}

TEST(ConfigurationModel, RejectsEmpty) {
  rng::RngStream rng(9);
  EXPECT_THROW((void)configuration_model({}, rng), std::invalid_argument);
}

TEST(ConfigurationModelFromSampler, FixesOddParity) {
  rng::RngStream rng(10);
  // Constant odd degree over odd count -> odd sum needs adjustment.
  const auto sampler = [](rng::RngStream&) -> std::int64_t { return 3; };
  const auto g = configuration_model_from_sampler(5, sampler, rng);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges() % 2, 0u);  // stored as symmetric pairs
}

TEST(ErdosRenyi, EdgeCountMatchesExpectation) {
  rng::RngStream rng(11);
  const std::uint32_t n = 300;
  const double p = 0.02;
  const auto g = erdos_renyi(n, p, rng, /*directed=*/true);
  const double expected = static_cast<double>(n) * (n - 1) * p;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.15);
}

TEST(ErdosRenyi, UndirectedIsSymmetric) {
  rng::RngStream rng(12);
  const auto g = erdos_renyi(60, 0.1, rng, /*directed=*/false);
  EXPECT_EQ(g.num_edges() % 2, 0u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const NodeId w : g.out_neighbors(v)) {
      const auto back = g.out_neighbors(w);
      ASSERT_NE(std::find(back.begin(), back.end(), v), back.end());
    }
  }
}

TEST(ErdosRenyi, NoSelfLoops) {
  rng::RngStream rng(13);
  for (const bool directed : {true, false}) {
    const auto g = erdos_renyi(40, 0.2, rng, directed);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (const NodeId w : g.out_neighbors(v)) {
        ASSERT_NE(v, w);
      }
    }
  }
}

TEST(ErdosRenyi, ProbabilityZeroAndOne) {
  rng::RngStream rng(14);
  const auto empty = erdos_renyi(10, 0.0, rng);
  EXPECT_EQ(empty.num_edges(), 0u);
  const auto full = erdos_renyi(10, 1.0, rng, /*directed=*/true);
  EXPECT_EQ(full.num_edges(), 90u);
  const auto full_und = erdos_renyi(10, 1.0, rng, /*directed=*/false);
  EXPECT_EQ(full_und.num_edges(), 90u);  // 45 undirected pairs, stored twice
}

TEST(ErdosRenyi, RejectsInvalidArguments) {
  rng::RngStream rng(15);
  EXPECT_THROW((void)erdos_renyi(0, 0.5, rng), std::invalid_argument);
  EXPECT_THROW((void)erdos_renyi(5, -0.1, rng), std::invalid_argument);
  EXPECT_THROW((void)erdos_renyi(5, 1.1, rng), std::invalid_argument);
}

}  // namespace
}  // namespace gossip::graph
