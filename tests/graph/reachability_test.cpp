#include "graph/reachability.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace gossip::graph {
namespace {

Digraph chain(NodeId n) {
  DigraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return std::move(b).build();
}

TEST(DirectedReach, ChainReachesEverything) {
  const auto g = chain(10);
  const auto r = directed_reach(g, 0);
  EXPECT_EQ(r.reached_count, 10u);
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_TRUE(r.is_reached(v));
  }
}

TEST(DirectedReach, ChainFromMiddleOnlyReachesSuffix) {
  const auto g = chain(10);
  const auto r = directed_reach(g, 6);
  EXPECT_EQ(r.reached_count, 4u);
  EXPECT_FALSE(r.is_reached(5));
  EXPECT_TRUE(r.is_reached(9));
}

TEST(DirectedReach, RespectsEdgeDirection) {
  DigraphBuilder b(3);
  b.add_edge(1, 0);
  b.add_edge(1, 2);
  const auto g = std::move(b).build();
  const auto r = directed_reach(g, 0);
  EXPECT_EQ(r.reached_count, 1u);  // 0 has no out-edges
}

TEST(DirectedReach, HandlesCycles) {
  DigraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);  // cycle
  const auto g = std::move(b).build();
  const auto r = directed_reach(g, 0);
  EXPECT_EQ(r.reached_count, 3u);
  EXPECT_FALSE(r.is_reached(3));
}

TEST(DirectedReach, SourceOutOfRangeThrows) {
  const auto g = chain(3);
  EXPECT_THROW((void)directed_reach(g, 3), std::out_of_range);
}

TEST(DirectedReachIf, NonExpandableNodesReceiveButDoNotForward) {
  // 0 -> 1 -> 2; node 1 is crashed (receives, never forwards).
  const auto g = chain(3);
  const auto r = directed_reach_if(g, 0, [](NodeId v) { return v != 1; });
  EXPECT_TRUE(r.is_reached(0));
  EXPECT_TRUE(r.is_reached(1));   // crashed member still *received* m
  EXPECT_FALSE(r.is_reached(2));  // but never forwarded it
  EXPECT_EQ(r.reached_count, 2u);
}

TEST(DirectedReachIf, SourceAlwaysExpandsEvenIfPredicateSaysNo) {
  const auto g = chain(3);
  // Predicate forbids everything; the source must still forward
  // (the paper's source never fails).
  const auto r = directed_reach_if(g, 0, [](NodeId) { return false; });
  EXPECT_TRUE(r.is_reached(1));
  EXPECT_FALSE(r.is_reached(2));
}

TEST(DirectedReachIf, EquivalentToPlainReachWhenAllExpandable) {
  DigraphBuilder b(6);
  b.add_edge(0, 2);
  b.add_edge(2, 4);
  b.add_edge(4, 1);
  b.add_edge(1, 3);
  const auto g = std::move(b).build();
  const auto r1 = directed_reach(g, 0);
  const auto r2 = directed_reach_if(g, 0, [](NodeId) { return true; });
  EXPECT_EQ(r1.reached_count, r2.reached_count);
  EXPECT_EQ(r1.reached, r2.reached);
}

TEST(DirectedReach, IsolatedSourceReachesOnlyItself) {
  DigraphBuilder b(5);
  b.add_edge(1, 2);
  const auto g = std::move(b).build();
  const auto r = directed_reach(g, 0);
  EXPECT_EQ(r.reached_count, 1u);
  EXPECT_TRUE(r.is_reached(0));
}

TEST(DirectedReach, ParallelEdgesCountOnce) {
  DigraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  const auto g = std::move(b).build();
  const auto r = directed_reach(g, 0);
  EXPECT_EQ(r.reached_count, 2u);
}

}  // namespace
}  // namespace gossip::graph
