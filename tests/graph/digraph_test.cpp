#include "graph/digraph.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace gossip::graph {
namespace {

TEST(DigraphBuilder, BuildsCsrWithCorrectAdjacency) {
  DigraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 0);
  const Digraph g = std::move(b).build();

  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(1), 0u);
  EXPECT_EQ(g.out_degree(2), 1u);
  EXPECT_EQ(g.out_degree(3), 1u);

  const auto n0 = g.out_neighbors(0);
  std::vector<NodeId> v0(n0.begin(), n0.end());
  std::sort(v0.begin(), v0.end());
  EXPECT_EQ(v0, (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(g.out_neighbors(2)[0], 3u);
}

TEST(DigraphBuilder, PreservesInsertionOrderWithinNode) {
  DigraphBuilder b(3);
  b.add_edge(1, 2);
  b.add_edge(1, 0);
  b.add_edge(1, 2);
  const Digraph g = std::move(b).build();
  const auto n = g.out_neighbors(1);
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n[0], 2u);
  EXPECT_EQ(n[1], 0u);
  EXPECT_EQ(n[2], 2u);
}

TEST(DigraphBuilder, EmptyGraph) {
  DigraphBuilder b(5);
  const Digraph g = std::move(b).build();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.out_degree(v), 0u);
    EXPECT_TRUE(g.out_neighbors(v).empty());
  }
}

TEST(DigraphBuilder, RejectsOutOfRangeEndpoints) {
  DigraphBuilder b(3);
  EXPECT_THROW(b.add_edge(3, 0), std::out_of_range);
  EXPECT_THROW(b.add_edge(0, 3), std::out_of_range);
}

TEST(DigraphBuilder, ReserveDoesNotChangeSemantics) {
  DigraphBuilder b(2);
  b.reserve(100);
  b.add_edge(0, 1);
  EXPECT_EQ(b.num_edges(), 1u);
  const Digraph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Digraph, DefaultConstructedIsEmpty) {
  const Digraph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Digraph, ExplicitCsrConstruction) {
  const Digraph g({0, 2, 2, 3}, {1, 2, 0});
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(1), 0u);
}

TEST(Digraph, RejectsInconsistentCsr) {
  EXPECT_THROW(Digraph({1, 2}, {0}), std::invalid_argument);    // front != 0
  EXPECT_THROW(Digraph({0, 2}, {0}), std::invalid_argument);    // back != E
  EXPECT_THROW(Digraph({0, 2, 1, 3}, {0, 0, 0}),                // non-monotone
               std::invalid_argument);
  EXPECT_THROW(Digraph({}, {}), std::invalid_argument);         // no offsets
}

TEST(Digraph, SelfLoopsAndParallelEdgesAreRepresentable) {
  DigraphBuilder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  const Digraph g = std::move(b).build();
  EXPECT_EQ(g.out_degree(0), 3u);
}

TEST(DigraphBuilder, LargeCountingSortIsConsistent) {
  const NodeId n = 1000;
  DigraphBuilder b(n);
  // Every node points to (v+1) % n and (v+7) % n.
  for (NodeId v = 0; v < n; ++v) {
    b.add_edge(v, (v + 1) % n);
    b.add_edge(v, (v + 7) % n);
  }
  const Digraph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 2000u);
  for (NodeId v = 0; v < n; ++v) {
    ASSERT_EQ(g.out_degree(v), 2u);
    const auto nb = g.out_neighbors(v);
    EXPECT_EQ(nb[0], (v + 1) % n);
    EXPECT_EQ(nb[1], (v + 7) % n);
  }
}

}  // namespace
}  // namespace gossip::graph
