#pragma once

/// \file statistical_agreement.hpp
/// Shared framework for the validation suite: tolerance bands for
/// analytic-vs-Monte-Carlo agreement that are DERIVED from the Monte Carlo
/// run's own sampling error instead of hand-picked epsilons.
///
/// The core check is a k-sigma band: the mean-field prediction and the
/// Monte-Carlo mean must agree within k standard errors of the mean (k = 3
/// by default, ~99.7% coverage if the prediction were exact). The band
/// self-calibrates in exactly the regime where the two quantities genuinely
/// differ: the analytic prediction is conditional on the cascade taking
/// off, while a Monte-Carlo mean averages the early-die-out replications
/// in — but those same die-outs inflate the sample variance, so the SE
/// widens together with the conditional/unconditional gap (verified
/// empirically at the Fig. 5 anchor: ~2 die-outs in 60 replications move
/// the mean by ~0.032 and widen 3*SE to ~0.068).
///
/// Where the gap is *systematic* — near-critical z*q, where the extinction
/// probability is O(1) — the band cannot absorb it, and the grid tests
/// switch to the theory-sanctioned interval [(1 - rho) * pi, pi]: the
/// Monte-Carlo mean must land between "every die-out delivers nothing"
/// and "no replication died out", where pi is the conditional fixed point
/// and rho the branching-process extinction probability.
///
/// An optional absolute `bias_allowance` widens either band for the
/// model's finite-n bias (the fixed point is exact only as n -> infinity;
/// the discrepancy is O(1/n) plus the LUT's ~2^-8 pmf quantization).

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "stats/summary.hpp"

namespace gossip::validation {

/// Whether the full validation tier is enabled. The `validation.full`
/// CTest registration (tests/CMakeLists.txt) sets GOSSIP_VALIDATION_FULL=1
/// and is excluded from the default `ctest` run via CONFIGURATIONS, so the
/// heavy sweeps cost tier-1 nothing but still run under `ctest -C
/// validation -L validation`.
inline bool full_tier_enabled() {
  const char* flag = std::getenv("GOSSIP_VALIDATION_FULL");
  return flag != nullptr && *flag != '\0' && *flag != '0';
}

/// Guard for full-tier-only tests: skips (not fails) in the tier-1 run.
#define GOSSIP_VALIDATION_FULL_TIER_ONLY()                               \
  do {                                                                   \
    if (!::gossip::validation::full_tier_enabled()) {                    \
      GTEST_SKIP() << "full validation tier only (ctest -C validation "  \
                      "-L validation, or GOSSIP_VALIDATION_FULL=1)";     \
    }                                                                    \
  } while (false)

/// Outcome of one k-sigma agreement check, kept as plain data so test
/// assertions can both gate on `within` and print `describe()`.
struct Agreement {
  double prediction = 0.0;
  double mc_mean = 0.0;
  double diff = 0.0;   ///< |prediction - mc_mean|
  double se = 0.0;     ///< Monte-Carlo standard error of the mean.
  double band = 0.0;   ///< k * se + bias_allowance.
  bool within = false;

  [[nodiscard]] std::string describe() const {
    std::ostringstream os;
    os << "prediction " << prediction << " vs MC mean " << mc_mean
       << " (|diff| " << diff << ", band " << band << " = k*SE with SE "
       << se << ")";
    return os.str();
  }
};

/// k-sigma band check of a deterministic prediction against a Monte-Carlo
/// sample summary. With fewer than two samples the SE is zero and the band
/// degenerates to `bias_allowance` alone — validation tests always run
/// enough replications for a real SE.
inline Agreement agreement(double prediction, const stats::OnlineSummary& mc,
                           double k_sigma = 3.0, double bias_allowance = 0.0) {
  Agreement a;
  a.prediction = prediction;
  a.mc_mean = mc.mean();
  a.diff = std::fabs(prediction - a.mc_mean);
  a.se = mc.standard_error();
  a.band = k_sigma * a.se + bias_allowance;
  a.within = a.diff <= a.band;
  return a;
}

/// Theory-sanctioned interval for an *unconditional* Monte-Carlo mean:
/// between "every early die-out delivers ~nothing" and "no die-outs",
/// where `conditional` is the take-off fixed point pi and `extinction` the
/// branching-process die-out probability rho. Widened by k standard errors
/// plus the absolute finite-n allowance on both sides.
struct TheoryInterval {
  double lo = 0.0;
  double hi = 0.0;

  [[nodiscard]] bool contains(double value) const {
    return value >= lo && value <= hi;
  }
  [[nodiscard]] std::string describe(double value) const {
    std::ostringstream os;
    os << "MC mean " << value << " vs theory interval [" << lo << ", " << hi
       << "]";
    return os.str();
  }
};

inline TheoryInterval theory_interval(double conditional, double extinction,
                                      const stats::OnlineSummary& mc,
                                      double k_sigma = 3.0,
                                      double bias_allowance = 0.0) {
  const double slack = k_sigma * mc.standard_error() + bias_allowance;
  TheoryInterval interval;
  interval.lo = (1.0 - extinction) * conditional - slack;
  interval.hi = conditional + slack;
  return interval;
}

}  // namespace gossip::validation
