/// Topology validation, part 2 of 3: divergence pins. The paper's
/// mean-field model (Eqs. 10-11) assumes every member can gossip to every
/// other; on sparse non-uniform overlays that assumption is WRONG, and this
/// file pins both the direction and the magnitude of the error so the
/// model's validity boundary is enforced, not just documented
/// (docs/topologies.md). A change that silently closes these gaps — e.g. a
/// degree-corrected model — should trip these pins and retire them
/// deliberately.
///
/// The divergence mechanism differs per family:
///   * ba (m = 2): mean degree ~2m = 4 equals the fanout, so the clamp
///     f = min(fanout, degree) bites on most nodes and leaf-heavy
///     neighborhoods recycle the same few targets.
///   * wan (scarce bridges): dissemination between clusters rides a handful
///     of bridge endpoints; a crashed endpoint severs a whole region.

#include <cmath>
#include <cstdint>
#include <memory>

#include <gtest/gtest.h>

#include "core/degree_distribution.hpp"
#include "experiment/meanfield.hpp"
#include "experiment/monte_carlo.hpp"
#include "parallel/thread_pool.hpp"
#include "protocol/flat_gossip.hpp"
#include "scenario/topology.hpp"
#include "statistical_agreement.hpp"

namespace gossip::validation {
namespace {

protocol::FlatGossipParams flat_params(std::uint64_t n, double z, double q) {
  protocol::FlatGossipParams p;
  p.num_nodes = n;
  p.source = 0;
  p.nonfailed_ratio = q;
  p.fanout = core::poisson_fanout(z);
  return p;
}

membership::CsrAdjacencyPtr build_overlay(scenario::TopologyConfig config,
                                          std::uint32_t n,
                                          std::uint64_t seed) {
  return scenario::build_topology_adjacency(config, n, seed);
}

experiment::ReliabilityEstimate run_flat(
    const protocol::FlatGossipParams& params, std::size_t replications) {
  parallel::ThreadPool pool(4);
  experiment::MonteCarloOptions mc;
  mc.replications = replications;
  mc.seed = 2008;
  mc.pool = &pool;
  return experiment::estimate_reliability_flat(params, mc);
}

TEST(TopologyDivergence, SparseBaSitsMeasurablyBelowTheUniformPrediction) {
  // BA m = 2 at z = 4, q = 0.9: the uniform model predicts the z*q = 3.6
  // fixed point (~0.9695 conditional), but half the nodes have degree
  // exactly 2, so their realized fanout is clamped far below z. The
  // simulated mean must fall below the prediction by more than 3 sigma —
  // and the pinned gap is large (tens of percent), not marginal.
  const std::uint32_t n = 2000;
  scenario::TopologyConfig config;
  config.family = scenario::TopologyFamily::kBa;
  config.has_m = true;
  config.m = 2;

  auto params = flat_params(n, 4.0, 0.9);
  params.topology = build_overlay(config, n, 42);
  const auto sim = run_flat(params, 100);
  const auto analytic = experiment::estimate_reliability_meanfield(params);

  EXPECT_GT(analytic.reliability,
            sim.mean_reliability() +
                3.0 * sim.reliability.standard_error());
  const double gap = analytic.reliability - sim.mean_reliability();
  // Quantified: the clamp costs tens of percent of coverage at this
  // density, but gossip on a connected hub-backbone still reaches most of
  // the group — the overlay degrades reliability, it does not destroy it.
  EXPECT_GT(gap, 0.05) << "gap " << gap;
  EXPECT_LT(gap, 0.60) << "gap " << gap;
}

TEST(TopologyDivergence, ScarceBridgeWanSitsBelowTheUniformPrediction) {
  // WAN with 8 clusters and the minimum bridge ring (8 bridges for 2000
  // nodes): inter-cluster dissemination depends on ~2 bridge endpoints per
  // cluster, and with 10% of members crashed whole regions are routinely
  // cut off. Same direction and a bounded, quantified magnitude.
  const std::uint32_t n = 2000;
  scenario::TopologyConfig config;
  config.family = scenario::TopologyFamily::kWan;
  config.has_clusters = true;
  config.clusters = 8;
  config.has_bridge_edges = true;
  config.bridge_edges = 8;
  config.has_p = true;
  config.p = 0.02;  // intra extras on top of each cluster's cycle

  auto params = flat_params(n, 4.0, 0.9);
  params.topology = build_overlay(config, n, 42);
  const auto sim = run_flat(params, 100);
  const auto analytic = experiment::estimate_reliability_meanfield(params);

  EXPECT_GT(analytic.reliability,
            sim.mean_reliability() +
                3.0 * sim.reliability.standard_error());
  const double gap = analytic.reliability - sim.mean_reliability();
  EXPECT_GT(gap, 0.05) << "gap " << gap;
  EXPECT_LT(gap, 0.90) << "gap " << gap;
}

TEST(TopologyDivergence, DensityShrinksTheBaGapButTheHeavyTailKeepsItOpen) {
  GOSSIP_VALIDATION_FULL_TIER_ONLY();
  // Two mechanisms, separated. Against the UNIFORM Monte-Carlo mean (same
  // n, z, q, replication budget — so the conditional/unconditional die-out
  // mass cancels out of the contrast):
  //   * densening BA from m = 2 to m = 16 shrinks the gap monotonically
  //     (the fanout clamp stops biting), BUT
  //   * the gap does NOT close: leaves attach preferentially to hubs, a
  //     hub spreads its z picks over hundreds of neighbors, so leaf
  //     coverage stays below the well-mixed value — a pure tail effect
  //     (measured here: ~0.07 at m = 16, mean degree 32);
  //   * ER at the SAME mean degree 32 has a concentrated degree
  //     distribution and DOES close the gap within 3 sigma.
  const std::uint32_t n = 2000;
  auto params = flat_params(n, 4.0, 0.9);
  params.topology = nullptr;
  const auto uniform = run_flat(params, 100);

  const auto gap_for_ba = [&](std::uint32_t m) {
    scenario::TopologyConfig config;
    config.family = scenario::TopologyFamily::kBa;
    config.has_m = true;
    config.m = m;
    params.topology = build_overlay(config, n, 42);
    const auto sim = run_flat(params, 100);
    return uniform.mean_reliability() - sim.mean_reliability();
  };

  const double gap_m2 = gap_for_ba(2);
  const double gap_m4 = gap_for_ba(4);
  const double gap_m16 = gap_for_ba(16);
  EXPECT_GT(gap_m2, gap_m4 + 0.05) << gap_m2 << " vs " << gap_m4;
  EXPECT_GT(gap_m4, gap_m16 + 0.02) << gap_m4 << " vs " << gap_m16;
  // The heavy-tail residual: still open by more than the combined noise.
  EXPECT_GT(gap_m16, 0.03) << "m = 16 gap " << gap_m16;

  // Same density, no tail: ER with mean degree 32 is uniform to within a
  // two-sample 3-sigma band plus the repeat-pair allowance.
  scenario::TopologyConfig er;
  er.family = scenario::TopologyFamily::kEr;
  er.has_p = true;
  er.p = 32.0 / (n - 1);
  params.topology = build_overlay(er, n, 42);
  const auto er_sim = run_flat(params, 100);
  const double er_gap =
      std::fabs(uniform.mean_reliability() - er_sim.mean_reliability());
  const double band =
      3.0 * std::hypot(uniform.reliability.standard_error(),
                       er_sim.reliability.standard_error()) +
      0.005;
  EXPECT_LE(er_gap, band) << "er gap " << er_gap << " band " << band;
}

TEST(TopologyDivergence, StarvingTheBridgeBudgetWidensTheWanGap) {
  GOSSIP_VALIDATION_FULL_TIER_ONLY();
  // Dual knob for WAN: more bridges -> closer to one well-mixed group.
  // The minimum ring (8 bridges) must diverge more than a generous budget
  // (200 bridges) on the same cluster layout, same seed, same fanout.
  const std::uint32_t n = 2000;
  auto params = flat_params(n, 4.0, 0.9);
  const auto analytic = experiment::estimate_reliability_meanfield(params);

  const auto gap_for = [&](std::uint64_t bridges) {
    scenario::TopologyConfig config;
    config.family = scenario::TopologyFamily::kWan;
    config.has_clusters = true;
    config.clusters = 8;
    config.has_bridge_edges = true;
    config.bridge_edges = bridges;
    config.has_p = true;
    config.p = 0.02;
    params.topology = build_overlay(config, n, 42);
    const auto sim = run_flat(params, 100);
    return analytic.reliability - sim.mean_reliability();
  };

  const double scarce = gap_for(8);
  const double generous = gap_for(200);
  EXPECT_GT(scarce, generous)
      << "scarce " << scarce << " generous " << generous;
}

}  // namespace
}  // namespace gossip::validation
