/// Topology validation, part 3 of 3: backend equivalence. For every
/// non-uniform family, the flat SoA hot path and the message-level DES
/// reference gossip over the IDENTICAL overlay (both receive the same
/// shared CsrAdjacency, as the scenario runner wires it) and must estimate
/// the same reliability: two estimators of one quantity, compared at 3
/// combined standard errors. This is the per-topology extension of
/// tests/integration/flat_equivalence_test.cpp.

#include <cmath>
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "core/degree_distribution.hpp"
#include "experiment/monte_carlo.hpp"
#include "membership/topology_view.hpp"
#include "parallel/thread_pool.hpp"
#include "protocol/flat_gossip.hpp"
#include "protocol/gossip_multicast.hpp"
#include "scenario/topology.hpp"
#include "statistical_agreement.hpp"

namespace gossip::validation {
namespace {

/// Two-sample 3-sigma check: both means are Monte-Carlo estimates, so the
/// band combines their standard errors in quadrature.
void expect_two_sample_agreement(const experiment::ReliabilityEstimate& a,
                                 const experiment::ReliabilityEstimate& b,
                                 const char* what) {
  const double diff =
      std::fabs(a.reliability.mean() - b.reliability.mean());
  const double band =
      3.0 * std::hypot(a.reliability.standard_error(),
                       b.reliability.standard_error());
  EXPECT_LE(diff, band) << what << ": flat " << a.reliability.mean()
                        << " vs DES " << b.reliability.mean() << " (|diff| "
                        << diff << ", band " << band << ")";
  // Message volume must agree too: both engines send one message per
  // selected target over the same degree-clamped neighbor sets. Per-run
  // totals are high-variance on clustered overlays (a severed region
  // drops a block of sends at once), so this band is also SE-derived,
  // plus 1% of the mean for the flat LUT's quantized fanout pmf.
  const double msg_diff = std::fabs(a.messages.mean() - b.messages.mean());
  const double msg_band = 3.0 * std::hypot(a.messages.standard_error(),
                                           b.messages.standard_error()) +
                          0.01 * b.messages.mean();
  EXPECT_LE(msg_diff, msg_band)
      << what << ": flat " << a.messages.mean() << " vs DES "
      << b.messages.mean() << " msgs (|diff| " << msg_diff << ", band "
      << msg_band << ")";
}

void check_family(const scenario::TopologyConfig& config, std::uint32_t n,
                  double z, double q, std::size_t replications,
                  const char* what) {
  // One overlay, built exactly as the runner builds it, handed to BOTH
  // backends — the equivalence claim is about the engines, not the graphs.
  const auto csr = scenario::build_topology_adjacency(config, n, /*seed=*/7);

  parallel::ThreadPool pool(4);
  experiment::MonteCarloOptions mc;
  mc.replications = replications;
  mc.seed = 2008;
  mc.pool = &pool;

  protocol::FlatGossipParams flat;
  flat.num_nodes = n;
  flat.source = 0;
  flat.nonfailed_ratio = q;
  flat.fanout = core::poisson_fanout(z);
  flat.topology = csr;
  const auto flat_estimate = experiment::estimate_reliability_flat(flat, mc);

  protocol::GossipParams des;
  des.num_nodes = n;
  des.source = 0;
  des.nonfailed_ratio = q;
  des.fanout = core::poisson_fanout(z);
  des.membership = membership::topology_membership(csr);
  const auto des_estimate =
      experiment::estimate_reliability_protocol(des, mc);

  expect_two_sample_agreement(flat_estimate, des_estimate, what);
}

TEST(TopologyEquivalence, FlatMatchesDesOnErOverlay) {
  scenario::TopologyConfig config;
  config.family = scenario::TopologyFamily::kEr;
  config.has_p = true;
  config.p = 12.0 / 799.0;  // mean degree ~12
  check_family(config, 800, 4.0, 0.9, 40, "er");
}

TEST(TopologyEquivalence, FlatMatchesDesOnBaOverlay) {
  scenario::TopologyConfig config;
  config.family = scenario::TopologyFamily::kBa;
  config.has_m = true;
  config.m = 3;
  check_family(config, 800, 4.0, 0.9, 40, "ba");
}

TEST(TopologyEquivalence, FlatMatchesDesOnWanOverlay) {
  scenario::TopologyConfig config;
  config.family = scenario::TopologyFamily::kWan;
  config.has_clusters = true;
  config.clusters = 4;
  config.has_bridge_edges = true;
  config.bridge_edges = 12;
  config.has_p = true;
  config.p = 0.02;
  check_family(config, 800, 4.0, 0.9, 40, "wan");
}

TEST(TopologyEquivalence, FullTierEveryFamilyAtLargerScale) {
  GOSSIP_VALIDATION_FULL_TIER_ONLY();
  // Same contrast at n = 2000 with more replications: tighter SEs make
  // this a sharper lens on any systematic flat-vs-DES discrepancy.
  {
    scenario::TopologyConfig config;
    config.family = scenario::TopologyFamily::kEr;
    config.has_p = true;
    config.p = 16.0 / 1999.0;
    check_family(config, 2000, 4.0, 0.9, 80, "er@2000");
  }
  {
    scenario::TopologyConfig config;
    config.family = scenario::TopologyFamily::kBa;
    config.has_m = true;
    config.m = 4;
    check_family(config, 2000, 4.0, 0.9, 80, "ba@2000");
  }
  {
    scenario::TopologyConfig config;
    config.family = scenario::TopologyFamily::kWan;
    config.has_clusters = true;
    config.clusters = 8;
    config.has_bridge_edges = true;
    config.bridge_edges = 24;
    config.has_p = true;
    config.p = 0.02;
    check_family(config, 2000, 4.0, 0.9, 80, "wan@2000");
  }
}

}  // namespace
}  // namespace gossip::validation
