/// Tier-1 acceptance gate for the analytic engine: running the SHIPPED
/// scenarios/fig4a.scn with `engine = both` must land the mean-field
/// prediction within 3 Monte-Carlo standard errors of the simulated mean
/// on every pinned Fig. 4 anchor case, and the Fig. 5 operating points
/// (n = 5000, both z*q = 3.6 parameterizations) must agree likewise on the
/// flat backend. The bands come from the run's own sampling error
/// (statistical_agreement.hpp), not hand-tuned epsilons; the broader z*q /
/// loss sweeps live in the full tier (meanfield_grid_test.cpp).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/thread_pool.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "statistical_agreement.hpp"

namespace gossip::validation {
namespace {

using scenario::CaseResult;
using scenario::Engine;
using scenario::ScenarioRunner;
using scenario::ScenarioSpec;

constexpr double kHeadlineReliability = 0.9695;  // Eq. 11 at z*q = 3.6.

const CaseResult& find_case(const std::vector<CaseResult>& results,
                            const std::string& label) {
  for (const auto& result : results) {
    if (result.label == label) return result;
  }
  ADD_FAILURE() << "no case labeled " << label;
  static const CaseResult missing;
  return missing;
}

#ifdef GOSSIP_SCENARIOS_DIR

TEST(MeanFieldAnchor, Fig4aScenarioAgreesWithinThreeStandardErrors) {
  auto spec = ScenarioSpec::load(std::string(GOSSIP_SCENARIOS_DIR) +
                                 "/fig4a.scn");
  spec.set("engine", "both");
  parallel::ThreadPool pool(4);
  const auto results = ScenarioRunner(&pool).run(spec);

  // The pinned Fig. 4(a) anchors: z = 4.0 with f = 0.1 is THE paper
  // operating point ({f=4, q=0.9}, S ~ 0.9695); f = 0.0 is the no-failure
  // column every curve is read against. The f = 0.5 / f = 0.9 columns sit
  // where early die-outs dominate the unconditional mean and belong to the
  // full-tier interval tests, not this 3-sigma gate.
  for (const std::string label : {"z=4.0,f=0.0", "z=4.0,f=0.1"}) {
    const auto& anchor = find_case(results, label);
    ASSERT_EQ(anchor.engine, Engine::kBoth) << label;
    ASSERT_TRUE(anchor.has_meanfield) << label;
    ASSERT_EQ(anchor.replications, 60u) << label;

    const auto check = agreement(anchor.meanfield_reliability,
                                 anchor.reliability);
    EXPECT_TRUE(check.within) << label << ": " << check.describe();
    // abs_diff is the CSV column downstream tooling reads; it must be the
    // same quantity the band was checked against.
    EXPECT_DOUBLE_EQ(anchor.abs_diff(), check.diff) << label;
  }

  // The headline anchor's prediction is the Eq. 11 fixed point up to the
  // finite-n correction at n = 1000.
  const auto& headline = find_case(results, "z=4.0,f=0.1");
  EXPECT_NEAR(headline.meanfield_reliability, kHeadlineReliability, 5e-3);
}

#else
TEST(MeanFieldAnchor, DISABLED_NoScenariosDir) {}
#endif

TEST(MeanFieldAnchor, Fig5FlatAnchorsAgreeWithinThreeStandardErrors) {
  // Fig. 5 pins the same z*q = 3.6 law at n = 5000 through both
  // parameterizations: {z=4, q=0.9} and {z=6, q=0.6}. The flat engine is
  // the million-node backend the analytic model mirrors term for term, so
  // this is the sharpest agreement check in the suite. Note the band's
  // self-calibration at work: with seed 2008 the {z=4, q=0.9} run catches
  // early die-out replications, which shift the unconditional mean AND
  // widen the SE, keeping the conditional prediction inside 3 sigma.
  ScenarioSpec spec;
  spec.set("name", "fig5_anchor")
      .set("n", "5000")
      .set("backend", "flat")
      .set("fanout", "poisson($z)")
      .set("failure", "crash($f)")
      .set("metric", "reliability")
      .set("repetitions", "60")
      .set("seed", "2008")
      .set("engine", "both");
  spec.add_case({{"z", "4.0"}, {"f", "0.1"}});
  spec.add_case({{"z", "6.0"}, {"f", "0.4"}});

  parallel::ThreadPool pool(4);
  const auto results = ScenarioRunner(&pool).run(spec);
  ASSERT_EQ(results.size(), 2u);

  for (const auto& result : results) {
    ASSERT_TRUE(result.has_meanfield) << result.label;
    const auto check = agreement(result.meanfield_reliability,
                                 result.reliability);
    EXPECT_TRUE(check.within) << result.label << ": " << check.describe();
    // Both parameterizations share the z*q = 3.6 fixed point.
    EXPECT_NEAR(result.meanfield_reliability, kHeadlineReliability, 2e-3)
        << result.label;
  }
}

}  // namespace
}  // namespace gossip::validation
