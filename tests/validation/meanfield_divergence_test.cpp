/// Full-tier divergence pins: the regimes where the mean-field
/// approximation is EXPECTED to disagree with simulation, turned into
/// assertions so the validity boundary documented in docs/meanfield.md is
/// enforced, not just described. A silent improvement that makes these
/// pass (e.g. a finite-n correction term) should be noticed and the pins
/// retired deliberately.

#include <cstdint>

#include <gtest/gtest.h>

#include "core/degree_distribution.hpp"
#include "experiment/meanfield.hpp"
#include "experiment/monte_carlo.hpp"
#include "parallel/thread_pool.hpp"
#include "protocol/flat_gossip.hpp"
#include "statistical_agreement.hpp"

namespace gossip::validation {
namespace {

protocol::FlatGossipParams flat_params(std::uint64_t n, double z, double q) {
  protocol::FlatGossipParams p;
  p.num_nodes = n;
  p.source = 0;
  p.nonfailed_ratio = q;
  p.fanout = core::poisson_fanout(z);
  return p;
}

TEST(MeanFieldDivergence, SmallGroupsFallOutsideTheThreeSigmaBand) {
  GOSSIP_VALIDATION_FULL_TIER_ONLY();
  // n = 16: the model's O(1/n) terms are a few percent and the per-sender
  // hit probability z/(n-1) is far from the Poissonized limit, so even a
  // tight Monte-Carlo SE (400 replications) cannot cover the bias. The
  // divergence must be real (outside 3 sigma) but bounded (the model is
  // wrong by percents, not catastrophically).
  parallel::ThreadPool pool(4);
  experiment::MonteCarloOptions mc;
  mc.replications = 400;
  mc.seed = 2008;
  mc.pool = &pool;

  const auto params = flat_params(16, 4.0, 0.9);
  const auto sim = experiment::estimate_reliability_flat(params, mc);
  const auto analytic = experiment::estimate_reliability_meanfield(params);

  const auto check = agreement(analytic.reliability, sim.reliability);
  EXPECT_FALSE(check.within) << check.describe();
  EXPECT_LT(check.diff, 0.25) << check.describe();
}

TEST(MeanFieldDivergence, NearCriticalConditionalPredictionOvershoots) {
  GOSSIP_VALIDATION_FULL_TIER_ONLY();
  // Just above the z*q = 1 critical line the extinction probability rho is
  // O(1): most replications die out near the source, so the unconditional
  // Monte-Carlo mean sits FAR below the conditional fixed point pi — by
  // construction, not by error. Pin both the direction and the theory
  // interval that the grid tests rely on in this regime.
  parallel::ThreadPool pool(4);
  experiment::MonteCarloOptions mc;
  mc.replications = 200;
  mc.seed = 2008;
  mc.pool = &pool;

  const auto params = flat_params(2000, 2.5, 0.5);  // z*q = 1.25.
  const auto sim = experiment::estimate_reliability_flat(params, mc);
  const auto analytic = experiment::estimate_reliability_meanfield(params);

  // Heavy die-out mass: the branching process dies early more than half
  // the time this close to criticality.
  EXPECT_GT(analytic.extinction_probability, 0.5);
  // The conditional prediction overshoots the unconditional mean by far
  // more than the sampling error...
  EXPECT_GT(analytic.reliability,
            sim.mean_reliability() + 3.0 * sim.reliability.standard_error());
  // ...while the extinction-weighted interval still brackets the mean.
  const auto interval = theory_interval(
      analytic.reliability, analytic.extinction_probability, sim.reliability,
      3.0, 0.02);
  EXPECT_TRUE(interval.contains(sim.mean_reliability()))
      << interval.describe(sim.mean_reliability());
}

TEST(MeanFieldDivergence, SubcriticalRegimeIsExactlyWhereEq10Says) {
  GOSSIP_VALIDATION_FULL_TIER_ONLY();
  // Below z*q = 1 the cascade dies almost surely: the model predicts
  // extinction probability 1 and the simulation's mean informed fraction
  // collapses to O(log n / n). The model and the simulator must agree
  // that this side of the Eq. 10 line is dead.
  parallel::ThreadPool pool(4);
  experiment::MonteCarloOptions mc;
  mc.replications = 100;
  mc.seed = 2008;
  mc.pool = &pool;

  const auto params = flat_params(2000, 2.0, 0.4);  // z*q = 0.8.
  const auto sim = experiment::estimate_reliability_flat(params, mc);
  const auto analytic = experiment::estimate_reliability_meanfield(params);

  // Functional iteration stops within 1e-14 per step; the residual gap to
  // the exact fixed point 1 is the step tolerance over (1 - z*q).
  EXPECT_NEAR(analytic.extinction_probability, 1.0, 1e-9);
  EXPECT_LT(sim.mean_reliability(), 0.02);
}

}  // namespace
}  // namespace gossip::validation
