/// Full-tier cross-validation sweeps: the mean-field model against the
/// Monte-Carlo engines over the z*q plane and the loss (alpha) grid, plus
/// a three-backend cross-check at the Fig. 4 anchor. Supercritical points
/// away from the critical line use the 3-sigma agreement band; points
/// where early die-outs carry O(1) probability use the theory interval
/// [(1 - rho) * pi, pi] instead (statistical_agreement.hpp explains both).
/// These tests self-skip outside the full tier — `ctest -C validation -L
/// validation` (or GOSSIP_VALIDATION_FULL=1) runs them.

#include <cstdint>

#include <gtest/gtest.h>

#include "core/degree_distribution.hpp"
#include "experiment/meanfield.hpp"
#include "experiment/monte_carlo.hpp"
#include "parallel/thread_pool.hpp"
#include "protocol/flat_gossip.hpp"
#include "protocol/gossip_multicast.hpp"
#include "statistical_agreement.hpp"

namespace gossip::validation {
namespace {

protocol::FlatGossipParams flat_params(std::uint64_t n, double z, double q,
                                       double loss = 0.0) {
  protocol::FlatGossipParams p;
  p.num_nodes = n;
  p.source = 0;
  p.nonfailed_ratio = q;
  p.loss_probability = loss;
  p.fanout = core::poisson_fanout(z);
  return p;
}

TEST(MeanFieldFullTier, ZqGridBracketsTheMonteCarloMean) {
  GOSSIP_VALIDATION_FULL_TIER_ONLY();
  // The whole supercritical quadrant of Fig. 4/5's parameter plane, from
  // just above the z*q = 1 critical line (Eq. 10) to the deep-supercritical
  // anchors. Near the line the extinction probability rho is O(1), so the
  // unconditional Monte-Carlo mean is checked against the theory interval;
  // the 0.02 allowance absorbs the finite-n bias at n = 2000.
  parallel::ThreadPool pool(4);
  experiment::MonteCarloOptions mc;
  mc.replications = 40;
  mc.seed = 2008;
  mc.pool = &pool;

  for (const double z : {2.0, 3.0, 4.0, 5.0, 6.0}) {
    for (const double q : {0.6, 0.75, 0.9, 1.0}) {
      if (z * q <= 1.3) continue;  // Critical sliver: divergence test's job.
      const auto params = flat_params(2000, z, q);
      const auto sim = experiment::estimate_reliability_flat(params, mc);
      const auto analytic = experiment::estimate_reliability_meanfield(params);

      const auto interval = theory_interval(
          analytic.reliability, analytic.extinction_probability,
          sim.reliability, 3.0, 0.02);
      EXPECT_TRUE(interval.contains(sim.mean_reliability()))
          << "z=" << z << " q=" << q << ": "
          << interval.describe(sim.mean_reliability());
    }
  }
}

TEST(MeanFieldFullTier, LossGridFoldsIntoEffectiveFanout) {
  GOSSIP_VALIDATION_FULL_TIER_ONLY();
  // The alpha (i.i.d. loss) axis: Section 6's extension regime. Loss p
  // must act exactly like thinning the fanout to z(1-p) — the analytic
  // prediction is monotone decreasing in p and brackets the simulated mean
  // at every grid point down to z_eff * q = 2.7.
  parallel::ThreadPool pool(4);
  experiment::MonteCarloOptions mc;
  mc.replications = 40;
  mc.seed = 2008;
  mc.pool = &pool;

  double previous = 1.0;
  for (const double loss : {0.0, 0.1, 0.25, 0.4}) {
    const auto params = flat_params(2000, 5.0, 0.9, loss);
    const auto sim = experiment::estimate_reliability_flat(params, mc);
    const auto analytic = experiment::estimate_reliability_meanfield(params);

    EXPECT_LT(analytic.reliability, previous) << "loss=" << loss;
    previous = analytic.reliability;

    const auto interval = theory_interval(
        analytic.reliability, analytic.extinction_probability,
        sim.reliability, 3.0, 0.02);
    EXPECT_TRUE(interval.contains(sim.mean_reliability()))
        << "loss=" << loss << ": "
        << interval.describe(sim.mean_reliability());
  }
}

TEST(MeanFieldFullTier, ThreeBackendsAgreeWithTheModelAtTheFig4Anchor) {
  GOSSIP_VALIDATION_FULL_TIER_ONLY();
  // One operating point, every Monte-Carlo estimator: the DES reference,
  // the flat SoA engine, and the sampled-digraph backend must each sit
  // within 3 sigma (+ finite-n allowance) of the same analytic prediction
  // at {n=1000, z=4, q=0.9}. This pins the model against the simulators
  // AND the simulators against each other through a common yardstick.
  parallel::ThreadPool pool(4);
  experiment::MonteCarloOptions mc;
  mc.replications = 60;
  mc.seed = 2008;
  mc.pool = &pool;

  const auto params = flat_params(1000, 4.0, 0.9);
  const auto analytic = experiment::estimate_reliability_meanfield(params);
  EXPECT_NEAR(analytic.reliability, 0.9695, 5e-3);

  const auto flat = experiment::estimate_reliability_flat(params, mc);
  const auto flat_check =
      agreement(analytic.reliability, flat.reliability, 3.0, 0.01);
  EXPECT_TRUE(flat_check.within) << "flat: " << flat_check.describe();

  protocol::GossipParams ref;
  ref.num_nodes = 1000;
  ref.source = 0;
  ref.nonfailed_ratio = 0.9;
  ref.fanout = core::poisson_fanout(4.0);
  const auto des = experiment::estimate_reliability_protocol(ref, mc);
  const auto des_check =
      agreement(analytic.reliability, des.reliability, 3.0, 0.01);
  EXPECT_TRUE(des_check.within) << "protocol: " << des_check.describe();

  const auto graph = experiment::estimate_reliability_graph(
      1000, *core::poisson_fanout(4.0), 0.9, mc);
  const auto graph_check =
      agreement(analytic.reliability, graph.reliability, 3.0, 0.01);
  EXPECT_TRUE(graph_check.within) << "graph: " << graph_check.describe();

  // The analytic message count is the same n*z*q-ish budget the engines
  // spend: expected sends per replication within 5%.
  EXPECT_NEAR(analytic.messages / flat.messages.mean(), 1.0, 0.05);
}

}  // namespace
}  // namespace gossip::validation
