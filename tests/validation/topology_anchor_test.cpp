/// Topology validation, part 1 of 3: the uniform baseline. Routing the
/// Fig. 4/5 operating points through the `topology =` machinery must not
/// move them — `topology = uniform` is the existing engine verbatim, and a
/// dense random graph (mean degree far above the fanout) is statistically
/// indistinguishable from the uniform view. Bands come from the runs' own
/// sampling error (statistical_agreement.hpp); the regimes where topology
/// is EXPECTED to move the answer live in topology_divergence_test.cpp.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/degree_distribution.hpp"
#include "experiment/meanfield.hpp"
#include "experiment/monte_carlo.hpp"
#include "parallel/thread_pool.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "scenario/topology.hpp"
#include "statistical_agreement.hpp"

namespace gossip::validation {
namespace {

constexpr double kHeadlineReliability = 0.9695;  // Eq. 11 at z*q = 3.6.

protocol::FlatGossipParams flat_params(std::uint64_t n, double z, double q) {
  protocol::FlatGossipParams p;
  p.num_nodes = n;
  p.source = 0;
  p.nonfailed_ratio = q;
  p.fanout = core::poisson_fanout(z);
  return p;
}

membership::CsrAdjacencyPtr build_er(std::uint32_t n, double p,
                                     std::uint64_t seed) {
  scenario::TopologyConfig config;
  config.family = scenario::TopologyFamily::kEr;
  config.has_p = true;
  config.p = p;
  return scenario::build_topology_adjacency(config, n, seed);
}

TEST(TopologyAnchor, UniformTopologyKeyReproducesTheFig5Anchor) {
  // The Fig. 5 operating point ({z=4, q=0.9}, n = 5000) through the
  // scenario runner with the topology key spelled out: identical engine,
  // so the mean-field prediction must agree within 3 sigma exactly as in
  // meanfield_anchor_test.cpp.
  scenario::ScenarioSpec spec;
  spec.set("name", "topo_uniform_anchor")
      .set("n", "5000")
      .set("backend", "flat")
      .set("topology", "uniform")
      .set("fanout", "poisson(4)")
      .set("failure", "crash(0.1)")
      .set("metric", "reliability")
      .set("repetitions", "60")
      .set("seed", "2008")
      .set("engine", "both");
  parallel::ThreadPool pool(4);
  const auto results = scenario::ScenarioRunner(&pool).run(spec);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].has_meanfield);

  const auto check =
      agreement(results[0].meanfield_reliability, results[0].reliability);
  EXPECT_TRUE(check.within) << check.describe();
  EXPECT_NEAR(results[0].meanfield_reliability, kHeadlineReliability, 2e-3);
}

TEST(TopologyAnchor, DenseErMatchesTheUniformPredictionWithinThreeSigma) {
  // ER with mean degree ~50 at z = 4: each sender picks 4 of its ~50
  // neighbors, and 50 >> z makes the neighbor restriction statistically
  // invisible — the uniform mean-field fixed point must still cover the
  // simulated mean. The 0.005 allowance absorbs the O(z/degree) repeat-pair
  // bias of sampling from a 50-set instead of the whole group.
  const std::uint32_t n = 2000;
  auto params = flat_params(n, 4.0, 0.9);
  params.topology = build_er(n, 50.0 / (n - 1), 77);

  parallel::ThreadPool pool(4);
  experiment::MonteCarloOptions mc;
  mc.replications = 100;
  mc.seed = 2008;
  mc.pool = &pool;
  const auto sim = experiment::estimate_reliability_flat(params, mc);
  // The analytic engine reads only (n, q, loss, fanout) — its prediction
  // IS the uniform-view model for the same macroscopic parameters.
  const auto analytic = experiment::estimate_reliability_meanfield(params);

  const auto check =
      agreement(analytic.reliability, sim.reliability, 3.0, 0.005);
  EXPECT_TRUE(check.within) << check.describe();
}

TEST(TopologyAnchor, FullTierFig4aUniformColumnsAgree) {
  GOSSIP_VALIDATION_FULL_TIER_ONLY();
  // The full Fig. 4(a) anchor columns (f = 0.0 and the paper operating
  // point f = 0.1) at n = 1000 through the topology key, protocol AND flat
  // backends: the uniform family must be the existing engine on both.
  for (const std::string backend : {"protocol", "flat"}) {
    scenario::ScenarioSpec spec;
    spec.set("name", "topo_uniform_fig4a")
        .set("n", "1000")
        .set("backend", backend)
        .set("topology", "uniform")
        .set("fanout", "poisson(4)")
        .set("failure", "crash($f)")
        .set("metric", "reliability")
        .set("repetitions", "60")
        .set("seed", "2008")
        .set("engine", "both")
        .add_axis("f", {"0.0", "0.1"});
    parallel::ThreadPool pool(4);
    const auto results = scenario::ScenarioRunner(&pool).run(spec);
    ASSERT_EQ(results.size(), 2u) << backend;
    for (const auto& result : results) {
      ASSERT_TRUE(result.has_meanfield) << backend << " " << result.label;
      const auto check =
          agreement(result.meanfield_reliability, result.reliability);
      EXPECT_TRUE(check.within)
          << backend << " " << result.label << ": " << check.describe();
    }
  }
}

}  // namespace
}  // namespace gossip::validation
