#!/usr/bin/env python3
"""Self-tests for the determinism lint (tools/lint/).

Asserts the contract the CI lint job relies on:
  * every bad fixture in tests/lint/fixtures/ is flagged (non-zero exit)
    with the expected rule name(s) in the report;
  * the clean fixture and the fully LINT-ALLOW-annotated fixture pass;
  * LINT-ALLOW without a reason, and LINT-ALLOW naming an unknown rule,
    are themselves violations (bare-allow);
  * rule scoping: the same source text is clean when it lives outside the
    rule's layers;
  * --list-rules names every rule.

Registered with CTest as `lint.selftest`; also runnable directly:
    python3 tests/lint/determinism_lint_test.py
"""

import os
import subprocess
import sys
import tempfile
import unittest

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(TESTS_DIR))
LINT = os.path.join(REPO_ROOT, "tools", "lint", "determinism_lint.py")
FIXTURES = os.path.join(TESTS_DIR, "fixtures")

# fixture (relative to fixtures/) -> rule names that must appear
BAD_FIXTURES = {
    "src/experiment/bad_rng_source.cpp": {"rng-source"},
    "src/experiment/bad_float_accum.cpp": {"float-accumulation"},
    "src/protocol/bad_wall_clock.cpp": {"wall-clock"},
    "src/protocol/flat_gossip.cpp": {"hot-path-alloc"},
    "src/protocol/flat_gossip.hpp": {"hot-path-alloc"},
    "src/scenario/bad_unordered_iter.cpp": {"unordered-iteration"},
    "src/scenario/bad_bare_allow.cpp": {"bare-allow", "wall-clock"},
    "src/stats/bad_wall_clock_seed.cpp": {"wall-clock", "rng-source"},
}

CLEAN_FIXTURES = [
    "src/experiment/good_clean.cpp",
    "src/experiment/allowed_wall_clock.cpp",
]


def run_lint(*args, root=FIXTURES):
    cmd = [sys.executable, LINT]
    if root is not None:
        cmd += ["--root", root]
    cmd += list(args)
    return subprocess.run(cmd, capture_output=True, text=True, check=False)


class FixtureCorpus(unittest.TestCase):
    def test_every_bad_fixture_is_flagged(self):
        for rel, expected_rules in sorted(BAD_FIXTURES.items()):
            with self.subTest(fixture=rel):
                proc = run_lint(os.path.join(FIXTURES, rel))
                self.assertEqual(
                    proc.returncode, 1,
                    f"{rel} should be flagged\n{proc.stdout}{proc.stderr}")
                for rule in expected_rules:
                    self.assertIn(
                        f"[{rule}]", proc.stdout,
                        f"{rel} should report {rule}\n{proc.stdout}")

    def test_reports_carry_path_line_and_snippet(self):
        proc = run_lint(os.path.join(FIXTURES,
                                     "src/protocol/bad_wall_clock.cpp"))
        self.assertRegex(proc.stdout,
                         r"src/protocol/bad_wall_clock\.cpp:\d+: \[wall-clock\]")
        self.assertIn("steady_clock", proc.stdout)  # the offending snippet

    def test_clean_and_annotated_fixtures_pass(self):
        for rel in CLEAN_FIXTURES:
            with self.subTest(fixture=rel):
                proc = run_lint(os.path.join(FIXTURES, rel))
                self.assertEqual(
                    proc.returncode, 0,
                    f"{rel} should be clean\n{proc.stdout}{proc.stderr}")

    def test_whole_fixture_tree_is_flagged(self):
        # Explicit file list (the fixtures dir has no compile_commands.json).
        files = [os.path.join(FIXTURES, rel) for rel in BAD_FIXTURES]
        proc = run_lint(*files)
        self.assertEqual(proc.returncode, 1)


class AllowSemantics(unittest.TestCase):
    def lint_text(self, rel_path, text):
        """Lint `text` placed at fixtures-root-relative `rel_path`."""
        with tempfile.TemporaryDirectory() as tmp:
            abs_path = os.path.join(tmp, rel_path)
            os.makedirs(os.path.dirname(abs_path), exist_ok=True)
            with open(abs_path, "w", encoding="utf-8") as fh:
                fh.write(text)
            return run_lint(abs_path, root=tmp)

    VIOLATION = (
        "#include <chrono>\n"
        "double f() {\n"
        "  auto t = std::chrono::steady_clock::now();{allow}\n"
        "  return std::chrono::duration<double>(t.time_since_epoch()).count();\n"
        "}\n")

    def test_allow_with_reason_is_honored(self):
        proc = self.lint_text(
            "src/protocol/t.cpp",
            self.VIOLATION.replace("{allow}",
                "  // LINT-ALLOW(wall-clock): telemetry only"))
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_allow_on_preceding_line_is_honored(self):
        text = ("#include <chrono>\n"
                "double f() {\n"
                "  // LINT-ALLOW(wall-clock): telemetry only\n"
                "  auto t = std::chrono::steady_clock::now();\n"
                "  return std::chrono::duration<double>("
                "t.time_since_epoch()).count();\n"
                "}\n")
        proc = self.lint_text("src/protocol/t.cpp", text)
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_allow_without_reason_is_rejected(self):
        proc = self.lint_text(
            "src/protocol/t.cpp",
            self.VIOLATION.replace("{allow}", "  // LINT-ALLOW(wall-clock)"))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("[bare-allow]", proc.stdout)
        self.assertIn("[wall-clock]", proc.stdout)  # not suppressed

    def test_allow_for_unknown_rule_is_rejected(self):
        proc = self.lint_text(
            "src/protocol/t.cpp",
            self.VIOLATION.replace("{allow}",
                "  // LINT-ALLOW(wrong-rule): some reason"))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("unknown rule", proc.stdout)

    def test_allow_for_a_different_rule_does_not_suppress(self):
        proc = self.lint_text(
            "src/protocol/t.cpp",
            self.VIOLATION.replace("{allow}",
                "  // LINT-ALLOW(rng-source): wrong rule for this line"))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("[wall-clock]", proc.stdout)


class RuleScoping(unittest.TestCase):
    def lint_text(self, rel_path, text):
        with tempfile.TemporaryDirectory() as tmp:
            abs_path = os.path.join(tmp, rel_path)
            os.makedirs(os.path.dirname(abs_path), exist_ok=True)
            with open(abs_path, "w", encoding="utf-8") as fh:
                fh.write(text)
            return run_lint(abs_path, root=tmp)

    RNG = "#include <random>\nint f() { std::mt19937 e(1); return (int)e(); }\n"

    def test_rng_engines_allowed_inside_rng_layer(self):
        self.assertEqual(
            self.lint_text("src/rng/engine.cpp", self.RNG).returncode, 0)

    def test_rng_engines_rejected_outside_rng_layer(self):
        proc = self.lint_text("src/protocol/engine.cpp", self.RNG)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("[rng-source]", proc.stdout)

    def test_wall_clock_fine_outside_result_layers(self):
        text = ("#include <chrono>\n"
                "auto f() { return std::chrono::steady_clock::now(); }\n")
        self.assertEqual(
            self.lint_text("src/obs/probe_extra.cpp", text).returncode, 0)

    def test_alloc_fine_outside_hot_path_files(self):
        text = "int* f() { return new int(7); }\n"
        self.assertEqual(
            self.lint_text("src/protocol/round_gossip.cpp", text).returncode,
            0)
        proc = self.lint_text("src/protocol/flat_gossip.cpp", text)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("[hot-path-alloc]", proc.stdout)

    def test_comments_and_strings_are_not_matched(self):
        text = ('#include <string>\n'
                '// std::rand() and steady_clock in prose\n'
                'std::string f() { return "std::rand() time(nullptr)"; }\n')
        self.assertEqual(
            self.lint_text("src/protocol/doc.cpp", text).returncode, 0)


class DriverInterface(unittest.TestCase):
    def test_list_rules_names_every_rule(self):
        proc = run_lint("--list-rules", root=None)
        self.assertEqual(proc.returncode, 0)
        for rule in ("rng-source", "wall-clock", "unordered-iteration",
                     "hot-path-alloc", "float-accumulation", "bare-allow"):
            self.assertIn(rule, proc.stdout)

    def test_missing_compile_commands_is_a_setup_error(self):
        with tempfile.TemporaryDirectory() as tmp:
            os.makedirs(os.path.join(tmp, "src"))
            proc = run_lint(root=tmp)
            self.assertEqual(proc.returncode, 2)
            self.assertIn("compile_commands", proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
