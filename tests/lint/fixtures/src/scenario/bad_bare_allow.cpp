// Fixture: bare-allow — LINT-ALLOW annotations that carry no reason or
// name an unknown rule are themselves violations: the annotation is the
// audit trail. Expected violations: two bare-allow (no reason; unknown
// rule) plus the un-annotated wall-clock read they fail to cover.
#include <chrono>

namespace gossip::scenario {

double bad_annotations() {
  const auto t0 = std::chrono::steady_clock::now();  // LINT-ALLOW(wall-clock)
  const auto t1 = std::chrono::steady_clock::now();  // LINT-ALLOW(no-such-rule): reason text
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace gossip::scenario
