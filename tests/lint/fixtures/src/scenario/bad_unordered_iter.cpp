// Fixture: unordered-iteration — a scenario-layer CSV writer that walks
// an unordered_map. Expected violations: the range-for over `totals`,
// the .begin() iterator walk over `by_label`, and a range-for directly
// over a freshly built unordered_set.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gossip::scenario {

std::vector<std::string> bad_result_rows(
    const std::vector<std::pair<std::string, double>>& samples) {
  std::unordered_map<std::string, double> totals;
  std::unordered_map<std::string, int> by_label;
  for (const auto& [label, value] : samples) {
    totals[label] += value;
    by_label[label] += 1;
  }
  std::vector<std::string> rows;
  for (const auto& [label, total] : totals) {  // violation: bucket order
    rows.push_back(label + "," + std::to_string(total));
  }
  for (auto it = by_label.begin(); it != by_label.end(); ++it) {  // violation
    rows.push_back(it->first);
  }
  for (const auto& label :
       std::unordered_set<std::string>{"a", "b"}) {  // violation
    rows.push_back(label);
  }
  return rows;
}

}  // namespace gossip::scenario
