// Fixture: hot-path-alloc — this file name matches the certified
// allocation-free hot-path list, so the raw new[] and malloc below must
// both be flagged. (The real src/protocol/flat_gossip.cpp reuses an
// engine free-list and hoisted buffers instead.)
#include <cstdint>
#include <cstdlib>

namespace gossip::protocol {

std::uint32_t* bad_round_scratch(std::uint32_t n) {
  auto* frontier = new std::uint32_t[n];  // violation: hot-path-alloc
  frontier[0] = 0;
  return frontier;
}

void* bad_round_scratch_c(std::uint32_t n) {
  return std::malloc(n * sizeof(std::uint32_t));  // violation
}

}  // namespace gossip::protocol
