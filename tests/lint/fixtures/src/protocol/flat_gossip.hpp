// Fixture: hot-path-alloc on the CSR topology path — this file name
// matches the certified allocation-free hot-path list, so a neighbor
// table materialized with raw new[] / realloc inside the selection loop
// must be flagged. (The real src/protocol/flat_gossip.hpp shares one
// caller-owned CsrAdjacency through a shared_ptr and reuses pre-reserved
// index scratch instead.)
#pragma once

#include <cstdint>
#include <cstdlib>

namespace gossip::protocol {

struct BadCsrScratch {
  std::uint32_t* neighbor_copy = nullptr;
  std::uint64_t capacity = 0;

  void stage_neighbors(const std::uint32_t* nbrs, std::uint64_t degree) {
    neighbor_copy = new std::uint32_t[degree];  // violation: hot-path-alloc
    for (std::uint64_t i = 0; i < degree; ++i) neighbor_copy[i] = nbrs[i];
  }

  void grow_excluded(std::uint64_t degree) {
    neighbor_copy = static_cast<std::uint32_t*>(  // violation
        std::realloc(neighbor_copy, degree * sizeof(std::uint32_t)));
    capacity = degree;
  }
};

}  // namespace gossip::protocol
