// Fixture: wall-clock — a protocol-layer round loop that reads a real
// clock. Expected violations: steady_clock::now() inside the loop and a
// time(nullptr)-derived seed.
#include <chrono>
#include <cstdint>
#include <ctime>

namespace gossip::protocol {

std::uint64_t bad_round_deadline(std::uint64_t rounds) {
  std::uint64_t executed = 0;
  const auto deadline = std::chrono::steady_clock::now() +  // violation
                        std::chrono::seconds(1);
  for (std::uint64_t r = 0; r < rounds; ++r) {
    if (std::chrono::steady_clock::now() > deadline) break;  // violation
    ++executed;
  }
  return executed + static_cast<std::uint64_t>(time(nullptr));  // violation
}

}  // namespace gossip::protocol
