// Fixture: wall-clock + rng-source in the stats layer — a
// system_clock-seeded engine used to jitter a summary. Both rules fire.
#include <chrono>
#include <random>

namespace gossip::stats {

double bad_jittered_mean(double mean) {
  const auto seed = static_cast<unsigned>(
      std::chrono::system_clock::now().time_since_epoch().count());  // violation: wall-clock
  std::minstd_rand engine(seed);  // violation: rng-source
  return mean + static_cast<double>(engine()) * 1e-12;
}

}  // namespace gossip::stats
