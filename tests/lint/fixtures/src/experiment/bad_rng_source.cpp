// Fixture: rng-source — entropy sources outside src/rng/.
// Expected violations: std::random_device construction, mt19937 engine,
// and a bare rand() call. None are annotated, so all three must be
// flagged.
#include <cstdlib>
#include <random>

namespace gossip::experiment {

double bad_unseeded_estimate() {
  std::random_device entropy;               // violation: rng-source
  std::mt19937 engine(entropy());           // violation: rng-source
  std::uniform_real_distribution<double> u(0.0, 1.0);
  double accepted = u(engine);
  accepted += static_cast<double>(std::rand()) / RAND_MAX;  // violation
  return accepted;
}

}  // namespace gossip::experiment
