// Fixture: a clean experiment-layer file — seeded streams, ordered
// containers, no wall clocks, no naive accumulators. The lint must exit
// zero on this file. Mentions of banned names inside comments (std::rand,
// steady_clock, unordered_map) and strings must NOT be flagged:
// the lexer strips both before matching.
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gossip::experiment {

struct TinySummary {
  // Compensated accumulation lives in stats::OnlineSummary in the real
  // tree; this stand-in keeps the fixture self-contained.
  double mean = 0.0;
  std::uint64_t count = 0;
  void add(double x) {
    ++count;
    mean += (x - mean) / static_cast<double>(count);  // LINT-ALLOW(float-accumulation): running-mean update, order-pinned by the caller's index loop
  }
};

std::vector<std::string> clean_result_rows(
    const std::map<std::string, double>& totals) {
  const char* note = "steady_clock and std::rand in a string literal";
  std::vector<std::string> rows;
  rows.emplace_back(note);
  for (const auto& [label, total] : totals) {  // std::map: ordered, fine
    rows.push_back(label + "," + std::to_string(total));
  }
  return rows;
}

double clean_mean(const std::vector<double>& replications) {
  TinySummary summary;
  for (std::size_t r = 0; r < replications.size(); ++r) {
    summary.add(replications[r]);
  }
  return summary.mean;
}

}  // namespace gossip::experiment
