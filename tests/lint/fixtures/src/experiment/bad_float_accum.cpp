// Fixture: float-accumulation — the classic nondeterministic replication
// fold: a zero-initialized double bumped with += in a loop. Expected
// violations: both += sites (sum and weighted).
#include <cstddef>
#include <vector>

namespace gossip::experiment {

double bad_mean_reliability(const std::vector<double>& replications) {
  double sum = 0.0;
  double weighted{0.0};
  for (std::size_t r = 0; r < replications.size(); ++r) {
    sum += replications[r];                     // violation
    weighted += replications[r] * 0.5;          // violation
  }
  return replications.empty()
             ? 0.0
             : sum / static_cast<double>(replications.size()) + weighted;
}

}  // namespace gossip::experiment
