// Fixture: the LINT-ALLOW escape hatch. Every would-be violation below
// carries an annotation with a reason, so the lint must exit zero.
// Covers same-line annotations, preceding-line annotations, and a
// multi-rule annotation.
#include <chrono>
#include <cstddef>
#include <vector>

namespace gossip::experiment {

struct Telemetry {
  double wall_seconds = 0.0;
};

double allowed_elapsed(const std::vector<double>& replications,
                       Telemetry& telemetry) {
  const auto start = std::chrono::steady_clock::now();  // LINT-ALLOW(wall-clock): elapsed-seconds telemetry only; never feeds a metric
  double mean = 0.0;
  std::size_t count = 0;
  // LINT-ALLOW(float-accumulation, wall-clock): running mean over a fixed
  // index loop; annotation on the preceding line covers the next code line.
  for (std::size_t r = 0; r < replications.size(); ++r) {
    ++count;
    mean += (replications[r] - mean) / static_cast<double>(count);  // LINT-ALLOW(float-accumulation): order pinned by the index loop above
  }
  telemetry.wall_seconds =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now() - start)  // LINT-ALLOW(wall-clock): telemetry field, reported but never compared
          .count();
  return mean;
}

}  // namespace gossip::experiment
