#include "net/latency.hpp"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "stats/summary.hpp"

namespace gossip::net {
namespace {

TEST(ConstantLatency, AlwaysReturnsDelay) {
  const auto model = constant_latency(2.5);
  rng::RngStream rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(model->sample(rng), 2.5);
  }
  EXPECT_EQ(model->name(), "Constant(2.5)");
}

TEST(ConstantLatency, ZeroDelayAllowed) {
  const auto model = constant_latency(0.0);
  rng::RngStream rng(1);
  EXPECT_DOUBLE_EQ(model->sample(rng), 0.0);
}

TEST(ConstantLatency, RejectsNegative) {
  EXPECT_THROW((void)constant_latency(-0.1), std::invalid_argument);
}

TEST(UniformLatency, SamplesWithinRange) {
  const auto model = uniform_latency(1.0, 3.0);
  rng::RngStream rng(2);
  stats::OnlineSummary s;
  for (int i = 0; i < 20000; ++i) {
    const double d = model->sample(rng);
    ASSERT_GE(d, 1.0);
    ASSERT_LE(d, 3.0);
    s.add(d);
  }
  EXPECT_NEAR(s.mean(), 2.0, 0.02);
}

TEST(UniformLatency, DegenerateRangeIsConstant) {
  const auto model = uniform_latency(2.0, 2.0);
  rng::RngStream rng(3);
  EXPECT_DOUBLE_EQ(model->sample(rng), 2.0);
}

TEST(UniformLatency, RejectsInvalidRange) {
  EXPECT_THROW((void)uniform_latency(3.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)uniform_latency(-1.0, 1.0), std::invalid_argument);
}

TEST(ExponentialLatency, MeanMatches) {
  const auto model = exponential_latency(0.5);
  rng::RngStream rng(4);
  stats::OnlineSummary s;
  for (int i = 0; i < 40000; ++i) {
    const double d = model->sample(rng);
    ASSERT_GE(d, 0.0);
    s.add(d);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(ExponentialLatency, RejectsNonPositiveMean) {
  EXPECT_THROW((void)exponential_latency(0.0), std::invalid_argument);
  EXPECT_THROW((void)exponential_latency(-1.0), std::invalid_argument);
}

TEST(LognormalLatency, MedianMatchesExpMu) {
  const auto model = lognormal_latency(0.0, 0.6);
  rng::RngStream rng(5);
  int below = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (model->sample(rng) < 1.0) ++below;  // median of LN(0, s) is 1
  }
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.02);
}

TEST(LognormalLatency, RejectsNonPositiveSigma) {
  EXPECT_THROW((void)lognormal_latency(0.0, 0.0), std::invalid_argument);
}

TEST(LatencyModels, NamesAreDescriptive) {
  rng::RngStream rng(6);
  EXPECT_NE(uniform_latency(0.0, 1.0)->name().find("Uniform"),
            std::string::npos);
  EXPECT_NE(exponential_latency(1.0)->name().find("Exponential"),
            std::string::npos);
  EXPECT_NE(lognormal_latency(0.0, 1.0)->name().find("Lognormal"),
            std::string::npos);
}

}  // namespace
}  // namespace gossip::net
