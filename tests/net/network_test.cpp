#include "net/network.hpp"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace gossip::net {
namespace {

/// Records every delivered message.
class Recorder final : public NodeHandler {
 public:
  struct Delivery {
    NodeId from;
    Message message;
  };
  void on_message(NodeId from, const Message& message) override {
    deliveries.push_back({from, message});
  }
  std::vector<Delivery> deliveries;
};

struct Fixture {
  sim::Simulator simulator;
  std::vector<Recorder> recorders;

  Network make_network(NetworkParams params, std::size_t nodes,
                       std::uint64_t seed = 1) {
    recorders.resize(nodes);
    Network net(simulator, std::move(params), rng::RngStream(seed));
    for (auto& r : recorders) {
      (void)net.add_node(r);
    }
    return net;
  }
};

TEST(Network, DeliversWithConstantLatency) {
  Fixture fx;
  auto net = fx.make_network({constant_latency(2.0), 0.0}, 2);
  net.send(0, 1, Message{7, 0, 0});
  EXPECT_TRUE(fx.recorders[1].deliveries.empty());  // not yet delivered
  (void)fx.simulator.run();
  ASSERT_EQ(fx.recorders[1].deliveries.size(), 1u);
  EXPECT_EQ(fx.recorders[1].deliveries[0].from, 0u);
  EXPECT_EQ(fx.recorders[1].deliveries[0].message.id, 7u);
  EXPECT_DOUBLE_EQ(fx.simulator.now(), 2.0);
  EXPECT_EQ(net.counters().sent, 1u);
  EXPECT_EQ(net.counters().delivered, 1u);
}

TEST(Network, DefaultLatencyIsConstantOne) {
  Fixture fx;
  auto net = fx.make_network({nullptr, 0.0}, 2);
  net.send(0, 1, Message{1, 0, 0});
  (void)fx.simulator.run();
  EXPECT_DOUBLE_EQ(fx.simulator.now(), 1.0);
}

TEST(Network, TotalLossDropsEverything) {
  Fixture fx;
  auto net = fx.make_network({constant_latency(1.0), 1.0}, 2);
  for (int i = 0; i < 50; ++i) {
    net.send(0, 1, Message{static_cast<std::uint64_t>(i), 0, 0});
  }
  (void)fx.simulator.run();
  EXPECT_TRUE(fx.recorders[1].deliveries.empty());
  EXPECT_EQ(net.counters().lost, 50u);
  EXPECT_EQ(net.counters().delivered, 0u);
}

TEST(Network, PartialLossDropsProportionally) {
  Fixture fx;
  auto net = fx.make_network({constant_latency(1.0), 0.3}, 2, 42);
  const int sends = 10000;
  for (int i = 0; i < sends; ++i) {
    net.send(0, 1, Message{static_cast<std::uint64_t>(i), 0, 0});
  }
  (void)fx.simulator.run();
  EXPECT_NEAR(static_cast<double>(net.counters().lost), 0.3 * sends,
              0.03 * sends);
  EXPECT_EQ(net.counters().lost + net.counters().delivered,
            static_cast<std::uint64_t>(sends));
}

TEST(Network, DownDestinationDropsAtDeliveryTime) {
  Fixture fx;
  auto net = fx.make_network({constant_latency(1.0), 0.0}, 2);
  net.send(0, 1, Message{1, 0, 0});
  net.set_down(1, true);  // crashes while the message is in flight
  (void)fx.simulator.run();
  EXPECT_TRUE(fx.recorders[1].deliveries.empty());
  EXPECT_EQ(net.counters().to_down_node, 1u);
}

TEST(Network, DownSenderCannotSend) {
  Fixture fx;
  auto net = fx.make_network({constant_latency(1.0), 0.0}, 2);
  net.set_down(0, true);
  net.send(0, 1, Message{1, 0, 0});
  (void)fx.simulator.run();
  EXPECT_TRUE(fx.recorders[1].deliveries.empty());
  EXPECT_EQ(net.counters().from_down_node, 1u);
  EXPECT_EQ(net.counters().sent, 0u);
}

TEST(Network, RecoveredNodeReceivesAgain) {
  Fixture fx;
  auto net = fx.make_network({constant_latency(1.0), 0.0}, 2);
  net.set_down(1, true);
  net.set_down(1, false);
  net.send(0, 1, Message{5, 0, 0});
  (void)fx.simulator.run();
  EXPECT_EQ(fx.recorders[1].deliveries.size(), 1u);
}

TEST(Network, SelfSendIsAllowed) {
  // The protocol layer seeds the source by delivering m to itself.
  Fixture fx;
  auto net = fx.make_network({constant_latency(0.0), 0.0}, 1);
  net.send(0, 0, Message{9, 0, 0});
  (void)fx.simulator.run();
  EXPECT_EQ(fx.recorders[0].deliveries.size(), 1u);
}

TEST(Network, OutOfRangeEndpointsThrow) {
  Fixture fx;
  auto net = fx.make_network({constant_latency(1.0), 0.0}, 2);
  EXPECT_THROW(net.send(2, 0, Message{}), std::out_of_range);
  EXPECT_THROW(net.send(0, 2, Message{}), std::out_of_range);
  EXPECT_THROW(net.set_down(5, true), std::out_of_range);
}

TEST(Network, RejectsInvalidLossProbability) {
  sim::Simulator simulator;
  EXPECT_THROW(Network(simulator, {constant_latency(1.0), 1.5},
                       rng::RngStream(1)),
               std::invalid_argument);
  EXPECT_THROW(Network(simulator, {constant_latency(1.0), -0.5},
                       rng::RngStream(1)),
               std::invalid_argument);
}

TEST(Network, MessagesToDistinctNodesAllArrive) {
  Fixture fx;
  auto net = fx.make_network({constant_latency(1.0), 0.0}, 10);
  for (NodeId v = 1; v < 10; ++v) {
    net.send(0, v, Message{v, 0, 0});
  }
  (void)fx.simulator.run();
  for (NodeId v = 1; v < 10; ++v) {
    ASSERT_EQ(fx.recorders[v].deliveries.size(), 1u) << "node " << v;
    EXPECT_EQ(fx.recorders[v].deliveries[0].message.id, v);
  }
}

TEST(Network, VariableLatencyReordersDeliveries) {
  // With uniform latency, later sends can arrive earlier; the DES must
  // deliver in timestamp order regardless of send order.
  Fixture fx;
  auto net = fx.make_network({uniform_latency(0.1, 5.0), 0.0}, 2, 7);
  for (int i = 0; i < 100; ++i) {
    net.send(0, 1, Message{static_cast<std::uint64_t>(i), 0, 0});
  }
  double prev = -1.0;
  // Drain one event at a time, checking the clock is monotone.
  while (fx.simulator.step()) {
    EXPECT_GE(fx.simulator.now(), prev);
    prev = fx.simulator.now();
  }
  EXPECT_EQ(fx.recorders[1].deliveries.size(), 100u);
}

}  // namespace
}  // namespace gossip::net
