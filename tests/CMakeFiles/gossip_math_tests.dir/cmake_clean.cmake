file(REMOVE_RECURSE
  "CMakeFiles/gossip_math_tests.dir/math/fixed_point_test.cpp.o"
  "CMakeFiles/gossip_math_tests.dir/math/fixed_point_test.cpp.o.d"
  "CMakeFiles/gossip_math_tests.dir/math/meanfield_test.cpp.o"
  "CMakeFiles/gossip_math_tests.dir/math/meanfield_test.cpp.o.d"
  "CMakeFiles/gossip_math_tests.dir/math/ode_test.cpp.o"
  "CMakeFiles/gossip_math_tests.dir/math/ode_test.cpp.o.d"
  "CMakeFiles/gossip_math_tests.dir/math/roots_test.cpp.o"
  "CMakeFiles/gossip_math_tests.dir/math/roots_test.cpp.o.d"
  "CMakeFiles/gossip_math_tests.dir/math/series_test.cpp.o"
  "CMakeFiles/gossip_math_tests.dir/math/series_test.cpp.o.d"
  "CMakeFiles/gossip_math_tests.dir/math/special_test.cpp.o"
  "CMakeFiles/gossip_math_tests.dir/math/special_test.cpp.o.d"
  "gossip_math_tests"
  "gossip_math_tests.pdb"
  "gossip_math_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_math_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
