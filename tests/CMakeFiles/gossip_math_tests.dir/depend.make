# Empty dependencies file for gossip_math_tests.
# This may be replaced when dependencies are built.
