
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/math/fixed_point_test.cpp" "tests/CMakeFiles/gossip_math_tests.dir/math/fixed_point_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_math_tests.dir/math/fixed_point_test.cpp.o.d"
  "/root/repo/tests/math/meanfield_test.cpp" "tests/CMakeFiles/gossip_math_tests.dir/math/meanfield_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_math_tests.dir/math/meanfield_test.cpp.o.d"
  "/root/repo/tests/math/ode_test.cpp" "tests/CMakeFiles/gossip_math_tests.dir/math/ode_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_math_tests.dir/math/ode_test.cpp.o.d"
  "/root/repo/tests/math/roots_test.cpp" "tests/CMakeFiles/gossip_math_tests.dir/math/roots_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_math_tests.dir/math/roots_test.cpp.o.d"
  "/root/repo/tests/math/series_test.cpp" "tests/CMakeFiles/gossip_math_tests.dir/math/series_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_math_tests.dir/math/series_test.cpp.o.d"
  "/root/repo/tests/math/special_test.cpp" "tests/CMakeFiles/gossip_math_tests.dir/math/special_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_math_tests.dir/math/special_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gossip_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
