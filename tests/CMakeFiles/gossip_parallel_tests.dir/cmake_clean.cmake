file(REMOVE_RECURSE
  "CMakeFiles/gossip_parallel_tests.dir/parallel/parallel_for_test.cpp.o"
  "CMakeFiles/gossip_parallel_tests.dir/parallel/parallel_for_test.cpp.o.d"
  "CMakeFiles/gossip_parallel_tests.dir/parallel/thread_pool_test.cpp.o"
  "CMakeFiles/gossip_parallel_tests.dir/parallel/thread_pool_test.cpp.o.d"
  "gossip_parallel_tests"
  "gossip_parallel_tests.pdb"
  "gossip_parallel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_parallel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
