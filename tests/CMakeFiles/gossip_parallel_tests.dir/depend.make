# Empty dependencies file for gossip_parallel_tests.
# This may be replaced when dependencies are built.
