# Empty dependencies file for gossip_net_tests.
# This may be replaced when dependencies are built.
