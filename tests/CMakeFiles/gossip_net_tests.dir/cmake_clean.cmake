file(REMOVE_RECURSE
  "CMakeFiles/gossip_net_tests.dir/net/latency_test.cpp.o"
  "CMakeFiles/gossip_net_tests.dir/net/latency_test.cpp.o.d"
  "CMakeFiles/gossip_net_tests.dir/net/network_test.cpp.o"
  "CMakeFiles/gossip_net_tests.dir/net/network_test.cpp.o.d"
  "gossip_net_tests"
  "gossip_net_tests.pdb"
  "gossip_net_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_net_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
