file(REMOVE_RECURSE
  "CMakeFiles/gossip_scenario_tests.dir/scenario/compare_test.cpp.o"
  "CMakeFiles/gossip_scenario_tests.dir/scenario/compare_test.cpp.o.d"
  "CMakeFiles/gossip_scenario_tests.dir/scenario/engine_test.cpp.o"
  "CMakeFiles/gossip_scenario_tests.dir/scenario/engine_test.cpp.o.d"
  "CMakeFiles/gossip_scenario_tests.dir/scenario/registry_test.cpp.o"
  "CMakeFiles/gossip_scenario_tests.dir/scenario/registry_test.cpp.o.d"
  "CMakeFiles/gossip_scenario_tests.dir/scenario/runner_test.cpp.o"
  "CMakeFiles/gossip_scenario_tests.dir/scenario/runner_test.cpp.o.d"
  "CMakeFiles/gossip_scenario_tests.dir/scenario/spec_test.cpp.o"
  "CMakeFiles/gossip_scenario_tests.dir/scenario/spec_test.cpp.o.d"
  "CMakeFiles/gossip_scenario_tests.dir/scenario/topology_spec_test.cpp.o"
  "CMakeFiles/gossip_scenario_tests.dir/scenario/topology_spec_test.cpp.o.d"
  "CMakeFiles/gossip_scenario_tests.dir/scenario/trace_test.cpp.o"
  "CMakeFiles/gossip_scenario_tests.dir/scenario/trace_test.cpp.o.d"
  "CMakeFiles/gossip_scenario_tests.dir/scenario/workload_test.cpp.o"
  "CMakeFiles/gossip_scenario_tests.dir/scenario/workload_test.cpp.o.d"
  "gossip_scenario_tests"
  "gossip_scenario_tests.pdb"
  "gossip_scenario_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_scenario_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
