# Empty dependencies file for gossip_scenario_tests.
# This may be replaced when dependencies are built.
