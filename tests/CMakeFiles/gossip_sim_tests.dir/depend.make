# Empty dependencies file for gossip_sim_tests.
# This may be replaced when dependencies are built.
