file(REMOVE_RECURSE
  "CMakeFiles/gossip_sim_tests.dir/sim/event_queue_test.cpp.o"
  "CMakeFiles/gossip_sim_tests.dir/sim/event_queue_test.cpp.o.d"
  "CMakeFiles/gossip_sim_tests.dir/sim/simulator_test.cpp.o"
  "CMakeFiles/gossip_sim_tests.dir/sim/simulator_test.cpp.o.d"
  "gossip_sim_tests"
  "gossip_sim_tests.pdb"
  "gossip_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
