
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/membership/dynamics_test.cpp" "tests/CMakeFiles/gossip_membership_tests.dir/membership/dynamics_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_membership_tests.dir/membership/dynamics_test.cpp.o.d"
  "/root/repo/tests/membership/full_view_test.cpp" "tests/CMakeFiles/gossip_membership_tests.dir/membership/full_view_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_membership_tests.dir/membership/full_view_test.cpp.o.d"
  "/root/repo/tests/membership/partial_view_test.cpp" "tests/CMakeFiles/gossip_membership_tests.dir/membership/partial_view_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_membership_tests.dir/membership/partial_view_test.cpp.o.d"
  "/root/repo/tests/membership/scamp_test.cpp" "tests/CMakeFiles/gossip_membership_tests.dir/membership/scamp_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_membership_tests.dir/membership/scamp_test.cpp.o.d"
  "/root/repo/tests/membership/topology_view_test.cpp" "tests/CMakeFiles/gossip_membership_tests.dir/membership/topology_view_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_membership_tests.dir/membership/topology_view_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gossip_membership.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_stats.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_rng.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
