# Empty dependencies file for gossip_membership_tests.
# This may be replaced when dependencies are built.
