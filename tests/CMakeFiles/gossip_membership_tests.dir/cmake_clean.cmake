file(REMOVE_RECURSE
  "CMakeFiles/gossip_membership_tests.dir/membership/dynamics_test.cpp.o"
  "CMakeFiles/gossip_membership_tests.dir/membership/dynamics_test.cpp.o.d"
  "CMakeFiles/gossip_membership_tests.dir/membership/full_view_test.cpp.o"
  "CMakeFiles/gossip_membership_tests.dir/membership/full_view_test.cpp.o.d"
  "CMakeFiles/gossip_membership_tests.dir/membership/partial_view_test.cpp.o"
  "CMakeFiles/gossip_membership_tests.dir/membership/partial_view_test.cpp.o.d"
  "CMakeFiles/gossip_membership_tests.dir/membership/scamp_test.cpp.o"
  "CMakeFiles/gossip_membership_tests.dir/membership/scamp_test.cpp.o.d"
  "CMakeFiles/gossip_membership_tests.dir/membership/topology_view_test.cpp.o"
  "CMakeFiles/gossip_membership_tests.dir/membership/topology_view_test.cpp.o.d"
  "gossip_membership_tests"
  "gossip_membership_tests.pdb"
  "gossip_membership_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_membership_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
