
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/components_test.cpp" "tests/CMakeFiles/gossip_graph_tests.dir/graph/components_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_graph_tests.dir/graph/components_test.cpp.o.d"
  "/root/repo/tests/graph/digraph_test.cpp" "tests/CMakeFiles/gossip_graph_tests.dir/graph/digraph_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_graph_tests.dir/graph/digraph_test.cpp.o.d"
  "/root/repo/tests/graph/generators_test.cpp" "tests/CMakeFiles/gossip_graph_tests.dir/graph/generators_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_graph_tests.dir/graph/generators_test.cpp.o.d"
  "/root/repo/tests/graph/reachability_test.cpp" "tests/CMakeFiles/gossip_graph_tests.dir/graph/reachability_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_graph_tests.dir/graph/reachability_test.cpp.o.d"
  "/root/repo/tests/graph/topology_generators_test.cpp" "tests/CMakeFiles/gossip_graph_tests.dir/graph/topology_generators_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_graph_tests.dir/graph/topology_generators_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gossip_graph.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_stats.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_rng.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
