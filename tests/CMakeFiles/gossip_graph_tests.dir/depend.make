# Empty dependencies file for gossip_graph_tests.
# This may be replaced when dependencies are built.
