file(REMOVE_RECURSE
  "CMakeFiles/gossip_graph_tests.dir/graph/components_test.cpp.o"
  "CMakeFiles/gossip_graph_tests.dir/graph/components_test.cpp.o.d"
  "CMakeFiles/gossip_graph_tests.dir/graph/digraph_test.cpp.o"
  "CMakeFiles/gossip_graph_tests.dir/graph/digraph_test.cpp.o.d"
  "CMakeFiles/gossip_graph_tests.dir/graph/generators_test.cpp.o"
  "CMakeFiles/gossip_graph_tests.dir/graph/generators_test.cpp.o.d"
  "CMakeFiles/gossip_graph_tests.dir/graph/reachability_test.cpp.o"
  "CMakeFiles/gossip_graph_tests.dir/graph/reachability_test.cpp.o.d"
  "CMakeFiles/gossip_graph_tests.dir/graph/topology_generators_test.cpp.o"
  "CMakeFiles/gossip_graph_tests.dir/graph/topology_generators_test.cpp.o.d"
  "gossip_graph_tests"
  "gossip_graph_tests.pdb"
  "gossip_graph_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_graph_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
