file(REMOVE_RECURSE
  "CMakeFiles/gossip_validation_tests.dir/validation/meanfield_anchor_test.cpp.o"
  "CMakeFiles/gossip_validation_tests.dir/validation/meanfield_anchor_test.cpp.o.d"
  "CMakeFiles/gossip_validation_tests.dir/validation/meanfield_divergence_test.cpp.o"
  "CMakeFiles/gossip_validation_tests.dir/validation/meanfield_divergence_test.cpp.o.d"
  "CMakeFiles/gossip_validation_tests.dir/validation/meanfield_grid_test.cpp.o"
  "CMakeFiles/gossip_validation_tests.dir/validation/meanfield_grid_test.cpp.o.d"
  "CMakeFiles/gossip_validation_tests.dir/validation/topology_anchor_test.cpp.o"
  "CMakeFiles/gossip_validation_tests.dir/validation/topology_anchor_test.cpp.o.d"
  "CMakeFiles/gossip_validation_tests.dir/validation/topology_divergence_test.cpp.o"
  "CMakeFiles/gossip_validation_tests.dir/validation/topology_divergence_test.cpp.o.d"
  "CMakeFiles/gossip_validation_tests.dir/validation/topology_equivalence_test.cpp.o"
  "CMakeFiles/gossip_validation_tests.dir/validation/topology_equivalence_test.cpp.o.d"
  "gossip_validation_tests"
  "gossip_validation_tests.pdb"
  "gossip_validation_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_validation_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
