# Empty dependencies file for gossip_validation_tests.
# This may be replaced when dependencies are built.
