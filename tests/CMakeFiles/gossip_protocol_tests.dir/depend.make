# Empty dependencies file for gossip_protocol_tests.
# This may be replaced when dependencies are built.
