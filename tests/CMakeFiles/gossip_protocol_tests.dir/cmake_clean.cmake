file(REMOVE_RECURSE
  "CMakeFiles/gossip_protocol_tests.dir/protocol/anti_entropy_test.cpp.o"
  "CMakeFiles/gossip_protocol_tests.dir/protocol/anti_entropy_test.cpp.o.d"
  "CMakeFiles/gossip_protocol_tests.dir/protocol/dynamic_crash_test.cpp.o"
  "CMakeFiles/gossip_protocol_tests.dir/protocol/dynamic_crash_test.cpp.o.d"
  "CMakeFiles/gossip_protocol_tests.dir/protocol/flat_gossip_test.cpp.o"
  "CMakeFiles/gossip_protocol_tests.dir/protocol/flat_gossip_test.cpp.o.d"
  "CMakeFiles/gossip_protocol_tests.dir/protocol/gossip_multicast_test.cpp.o"
  "CMakeFiles/gossip_protocol_tests.dir/protocol/gossip_multicast_test.cpp.o.d"
  "CMakeFiles/gossip_protocol_tests.dir/protocol/probe_trace_test.cpp.o"
  "CMakeFiles/gossip_protocol_tests.dir/protocol/probe_trace_test.cpp.o.d"
  "CMakeFiles/gossip_protocol_tests.dir/protocol/repeated_gossip_test.cpp.o"
  "CMakeFiles/gossip_protocol_tests.dir/protocol/repeated_gossip_test.cpp.o.d"
  "CMakeFiles/gossip_protocol_tests.dir/protocol/round_gossip_test.cpp.o"
  "CMakeFiles/gossip_protocol_tests.dir/protocol/round_gossip_test.cpp.o.d"
  "gossip_protocol_tests"
  "gossip_protocol_tests.pdb"
  "gossip_protocol_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_protocol_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
