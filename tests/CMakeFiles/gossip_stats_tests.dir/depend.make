# Empty dependencies file for gossip_stats_tests.
# This may be replaced when dependencies are built.
