file(REMOVE_RECURSE
  "CMakeFiles/gossip_stats_tests.dir/stats/ci_test.cpp.o"
  "CMakeFiles/gossip_stats_tests.dir/stats/ci_test.cpp.o.d"
  "CMakeFiles/gossip_stats_tests.dir/stats/fit_test.cpp.o"
  "CMakeFiles/gossip_stats_tests.dir/stats/fit_test.cpp.o.d"
  "CMakeFiles/gossip_stats_tests.dir/stats/gof_test.cpp.o"
  "CMakeFiles/gossip_stats_tests.dir/stats/gof_test.cpp.o.d"
  "CMakeFiles/gossip_stats_tests.dir/stats/histogram_test.cpp.o"
  "CMakeFiles/gossip_stats_tests.dir/stats/histogram_test.cpp.o.d"
  "CMakeFiles/gossip_stats_tests.dir/stats/summary_property_test.cpp.o"
  "CMakeFiles/gossip_stats_tests.dir/stats/summary_property_test.cpp.o.d"
  "CMakeFiles/gossip_stats_tests.dir/stats/summary_test.cpp.o"
  "CMakeFiles/gossip_stats_tests.dir/stats/summary_test.cpp.o.d"
  "gossip_stats_tests"
  "gossip_stats_tests.pdb"
  "gossip_stats_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_stats_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
