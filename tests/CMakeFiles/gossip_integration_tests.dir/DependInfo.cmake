
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/baseline_consistency_test.cpp" "tests/CMakeFiles/gossip_integration_tests.dir/integration/baseline_consistency_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_integration_tests.dir/integration/baseline_consistency_test.cpp.o.d"
  "/root/repo/tests/integration/determinism_test.cpp" "tests/CMakeFiles/gossip_integration_tests.dir/integration/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_integration_tests.dir/integration/determinism_test.cpp.o.d"
  "/root/repo/tests/integration/flat_equivalence_test.cpp" "tests/CMakeFiles/gossip_integration_tests.dir/integration/flat_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_integration_tests.dir/integration/flat_equivalence_test.cpp.o.d"
  "/root/repo/tests/integration/golden_trace_test.cpp" "tests/CMakeFiles/gossip_integration_tests.dir/integration/golden_trace_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_integration_tests.dir/integration/golden_trace_test.cpp.o.d"
  "/root/repo/tests/integration/model_vs_simulation_test.cpp" "tests/CMakeFiles/gossip_integration_tests.dir/integration/model_vs_simulation_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_integration_tests.dir/integration/model_vs_simulation_test.cpp.o.d"
  "/root/repo/tests/integration/paper_figures_test.cpp" "tests/CMakeFiles/gossip_integration_tests.dir/integration/paper_figures_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_integration_tests.dir/integration/paper_figures_test.cpp.o.d"
  "/root/repo/tests/integration/property_sweep_test.cpp" "tests/CMakeFiles/gossip_integration_tests.dir/integration/property_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_integration_tests.dir/integration/property_sweep_test.cpp.o.d"
  "/root/repo/tests/integration/topology_golden_test.cpp" "tests/CMakeFiles/gossip_integration_tests.dir/integration/topology_golden_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_integration_tests.dir/integration/topology_golden_test.cpp.o.d"
  "/root/repo/tests/integration/trace_anchor_test.cpp" "tests/CMakeFiles/gossip_integration_tests.dir/integration/trace_anchor_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_integration_tests.dir/integration/trace_anchor_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gossip_experiment.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_scenario.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_stats.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_graph.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_parallel.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_protocol.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_core.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_obs.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_membership.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_net.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_rng.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_math.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
