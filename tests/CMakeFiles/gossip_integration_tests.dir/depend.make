# Empty dependencies file for gossip_integration_tests.
# This may be replaced when dependencies are built.
