file(REMOVE_RECURSE
  "CMakeFiles/gossip_integration_tests.dir/integration/baseline_consistency_test.cpp.o"
  "CMakeFiles/gossip_integration_tests.dir/integration/baseline_consistency_test.cpp.o.d"
  "CMakeFiles/gossip_integration_tests.dir/integration/determinism_test.cpp.o"
  "CMakeFiles/gossip_integration_tests.dir/integration/determinism_test.cpp.o.d"
  "CMakeFiles/gossip_integration_tests.dir/integration/flat_equivalence_test.cpp.o"
  "CMakeFiles/gossip_integration_tests.dir/integration/flat_equivalence_test.cpp.o.d"
  "CMakeFiles/gossip_integration_tests.dir/integration/golden_trace_test.cpp.o"
  "CMakeFiles/gossip_integration_tests.dir/integration/golden_trace_test.cpp.o.d"
  "CMakeFiles/gossip_integration_tests.dir/integration/model_vs_simulation_test.cpp.o"
  "CMakeFiles/gossip_integration_tests.dir/integration/model_vs_simulation_test.cpp.o.d"
  "CMakeFiles/gossip_integration_tests.dir/integration/paper_figures_test.cpp.o"
  "CMakeFiles/gossip_integration_tests.dir/integration/paper_figures_test.cpp.o.d"
  "CMakeFiles/gossip_integration_tests.dir/integration/property_sweep_test.cpp.o"
  "CMakeFiles/gossip_integration_tests.dir/integration/property_sweep_test.cpp.o.d"
  "CMakeFiles/gossip_integration_tests.dir/integration/topology_golden_test.cpp.o"
  "CMakeFiles/gossip_integration_tests.dir/integration/topology_golden_test.cpp.o.d"
  "CMakeFiles/gossip_integration_tests.dir/integration/trace_anchor_test.cpp.o"
  "CMakeFiles/gossip_integration_tests.dir/integration/trace_anchor_test.cpp.o.d"
  "gossip_integration_tests"
  "gossip_integration_tests.pdb"
  "gossip_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
