file(REMOVE_RECURSE
  "CMakeFiles/gossip_experiment_tests.dir/experiment/component_mc_test.cpp.o"
  "CMakeFiles/gossip_experiment_tests.dir/experiment/component_mc_test.cpp.o.d"
  "CMakeFiles/gossip_experiment_tests.dir/experiment/harness_test.cpp.o"
  "CMakeFiles/gossip_experiment_tests.dir/experiment/harness_test.cpp.o.d"
  "CMakeFiles/gossip_experiment_tests.dir/experiment/monte_carlo_test.cpp.o"
  "CMakeFiles/gossip_experiment_tests.dir/experiment/monte_carlo_test.cpp.o.d"
  "gossip_experiment_tests"
  "gossip_experiment_tests.pdb"
  "gossip_experiment_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_experiment_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
