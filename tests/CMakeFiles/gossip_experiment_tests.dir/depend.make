# Empty dependencies file for gossip_experiment_tests.
# This may be replaced when dependencies are built.
