
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/obs/manifest_test.cpp" "tests/CMakeFiles/gossip_obs_tests.dir/obs/manifest_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_obs_tests.dir/obs/manifest_test.cpp.o.d"
  "/root/repo/tests/obs/probe_test.cpp" "tests/CMakeFiles/gossip_obs_tests.dir/obs/probe_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_obs_tests.dir/obs/probe_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gossip_obs.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_stats.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
