# Empty dependencies file for gossip_obs_tests.
# This may be replaced when dependencies are built.
