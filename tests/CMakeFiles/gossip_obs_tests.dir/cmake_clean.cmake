file(REMOVE_RECURSE
  "CMakeFiles/gossip_obs_tests.dir/obs/manifest_test.cpp.o"
  "CMakeFiles/gossip_obs_tests.dir/obs/manifest_test.cpp.o.d"
  "CMakeFiles/gossip_obs_tests.dir/obs/probe_test.cpp.o"
  "CMakeFiles/gossip_obs_tests.dir/obs/probe_test.cpp.o.d"
  "gossip_obs_tests"
  "gossip_obs_tests.pdb"
  "gossip_obs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_obs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
