
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/anti_entropy_model_test.cpp" "tests/CMakeFiles/gossip_core_tests.dir/core/anti_entropy_model_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_core_tests.dir/core/anti_entropy_model_test.cpp.o.d"
  "/root/repo/tests/core/baselines_test.cpp" "tests/CMakeFiles/gossip_core_tests.dir/core/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_core_tests.dir/core/baselines_test.cpp.o.d"
  "/root/repo/tests/core/bitvec_test.cpp" "tests/CMakeFiles/gossip_core_tests.dir/core/bitvec_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_core_tests.dir/core/bitvec_test.cpp.o.d"
  "/root/repo/tests/core/branching_test.cpp" "tests/CMakeFiles/gossip_core_tests.dir/core/branching_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_core_tests.dir/core/branching_test.cpp.o.d"
  "/root/repo/tests/core/degree_distribution_test.cpp" "tests/CMakeFiles/gossip_core_tests.dir/core/degree_distribution_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_core_tests.dir/core/degree_distribution_test.cpp.o.d"
  "/root/repo/tests/core/fanout_planner_test.cpp" "tests/CMakeFiles/gossip_core_tests.dir/core/fanout_planner_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_core_tests.dir/core/fanout_planner_test.cpp.o.d"
  "/root/repo/tests/core/generating_function_test.cpp" "tests/CMakeFiles/gossip_core_tests.dir/core/generating_function_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_core_tests.dir/core/generating_function_test.cpp.o.d"
  "/root/repo/tests/core/occupancy_percolation_test.cpp" "tests/CMakeFiles/gossip_core_tests.dir/core/occupancy_percolation_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_core_tests.dir/core/occupancy_percolation_test.cpp.o.d"
  "/root/repo/tests/core/percolation_test.cpp" "tests/CMakeFiles/gossip_core_tests.dir/core/percolation_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_core_tests.dir/core/percolation_test.cpp.o.d"
  "/root/repo/tests/core/reliability_model_test.cpp" "tests/CMakeFiles/gossip_core_tests.dir/core/reliability_model_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_core_tests.dir/core/reliability_model_test.cpp.o.d"
  "/root/repo/tests/core/success_model_test.cpp" "tests/CMakeFiles/gossip_core_tests.dir/core/success_model_test.cpp.o" "gcc" "tests/CMakeFiles/gossip_core_tests.dir/core/success_model_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gossip_core.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_experiment.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_stats.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_graph.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_parallel.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_protocol.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_obs.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_membership.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_net.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_rng.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_math.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
