file(REMOVE_RECURSE
  "CMakeFiles/gossip_core_tests.dir/core/anti_entropy_model_test.cpp.o"
  "CMakeFiles/gossip_core_tests.dir/core/anti_entropy_model_test.cpp.o.d"
  "CMakeFiles/gossip_core_tests.dir/core/baselines_test.cpp.o"
  "CMakeFiles/gossip_core_tests.dir/core/baselines_test.cpp.o.d"
  "CMakeFiles/gossip_core_tests.dir/core/bitvec_test.cpp.o"
  "CMakeFiles/gossip_core_tests.dir/core/bitvec_test.cpp.o.d"
  "CMakeFiles/gossip_core_tests.dir/core/branching_test.cpp.o"
  "CMakeFiles/gossip_core_tests.dir/core/branching_test.cpp.o.d"
  "CMakeFiles/gossip_core_tests.dir/core/degree_distribution_test.cpp.o"
  "CMakeFiles/gossip_core_tests.dir/core/degree_distribution_test.cpp.o.d"
  "CMakeFiles/gossip_core_tests.dir/core/fanout_planner_test.cpp.o"
  "CMakeFiles/gossip_core_tests.dir/core/fanout_planner_test.cpp.o.d"
  "CMakeFiles/gossip_core_tests.dir/core/generating_function_test.cpp.o"
  "CMakeFiles/gossip_core_tests.dir/core/generating_function_test.cpp.o.d"
  "CMakeFiles/gossip_core_tests.dir/core/occupancy_percolation_test.cpp.o"
  "CMakeFiles/gossip_core_tests.dir/core/occupancy_percolation_test.cpp.o.d"
  "CMakeFiles/gossip_core_tests.dir/core/percolation_test.cpp.o"
  "CMakeFiles/gossip_core_tests.dir/core/percolation_test.cpp.o.d"
  "CMakeFiles/gossip_core_tests.dir/core/reliability_model_test.cpp.o"
  "CMakeFiles/gossip_core_tests.dir/core/reliability_model_test.cpp.o.d"
  "CMakeFiles/gossip_core_tests.dir/core/success_model_test.cpp.o"
  "CMakeFiles/gossip_core_tests.dir/core/success_model_test.cpp.o.d"
  "gossip_core_tests"
  "gossip_core_tests.pdb"
  "gossip_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
