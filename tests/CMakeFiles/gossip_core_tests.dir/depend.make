# Empty dependencies file for gossip_core_tests.
# This may be replaced when dependencies are built.
