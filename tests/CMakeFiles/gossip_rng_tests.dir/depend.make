# Empty dependencies file for gossip_rng_tests.
# This may be replaced when dependencies are built.
