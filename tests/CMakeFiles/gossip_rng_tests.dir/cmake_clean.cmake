file(REMOVE_RECURSE
  "CMakeFiles/gossip_rng_tests.dir/rng/alias_table_test.cpp.o"
  "CMakeFiles/gossip_rng_tests.dir/rng/alias_table_test.cpp.o.d"
  "CMakeFiles/gossip_rng_tests.dir/rng/distributions_test.cpp.o"
  "CMakeFiles/gossip_rng_tests.dir/rng/distributions_test.cpp.o.d"
  "CMakeFiles/gossip_rng_tests.dir/rng/lut_property_test.cpp.o"
  "CMakeFiles/gossip_rng_tests.dir/rng/lut_property_test.cpp.o.d"
  "CMakeFiles/gossip_rng_tests.dir/rng/lut_sampler_test.cpp.o"
  "CMakeFiles/gossip_rng_tests.dir/rng/lut_sampler_test.cpp.o.d"
  "CMakeFiles/gossip_rng_tests.dir/rng/rng_stream_test.cpp.o"
  "CMakeFiles/gossip_rng_tests.dir/rng/rng_stream_test.cpp.o.d"
  "CMakeFiles/gossip_rng_tests.dir/rng/xoshiro_test.cpp.o"
  "CMakeFiles/gossip_rng_tests.dir/rng/xoshiro_test.cpp.o.d"
  "gossip_rng_tests"
  "gossip_rng_tests.pdb"
  "gossip_rng_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_rng_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
