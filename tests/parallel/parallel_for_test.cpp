#include "parallel/parallel_for.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "rng/rng_stream.hpp"
#include "stats/summary.hpp"

namespace gossip::parallel {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  parallel_for(pool, visits.size(),
               [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleIterationRunsInline) {
  ThreadPool pool(2);
  int count = 0;
  parallel_for(pool, 1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ParallelFor, ExceptionPropagates) {
  ThreadPool pool(3);
  EXPECT_THROW(
      parallel_for(pool, 100,
                   [](std::size_t i) {
                     if (i == 57) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelMap, ProducesOrderedResults) {
  ThreadPool pool(4);
  const auto out = parallel_map<int>(
      pool, 100, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ParallelMap, DeterministicAcrossWorkerCounts) {
  // The core reproducibility property: per-index derived RNG substreams
  // make results independent of the scheduling.
  const rng::RngStream root(2024);
  const auto body = [&root](std::size_t i) {
    auto rng = root.substream(i);
    double acc = 0.0;
    for (int k = 0; k < 100; ++k) acc += rng.next_double();
    return acc;
  };
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const auto r1 = parallel_map<double>(pool1, 64, body);
  const auto r4 = parallel_map<double>(pool4, 64, body);
  EXPECT_EQ(r1, r4);
}

TEST(ParallelFor, SumMatchesSerialComputation) {
  ThreadPool pool(4);
  std::vector<double> values(5000);
  parallel_for(pool, values.size(), [&](std::size_t i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  });
  const double parallel_sum =
      std::accumulate(values.begin(), values.end(), 0.0);
  double serial_sum = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    serial_sum += 1.0 / static_cast<double>(i + 1);
  }
  EXPECT_DOUBLE_EQ(parallel_sum, serial_sum);
}

TEST(ParallelFor, CountSmallerThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  parallel_for(pool, 3, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

}  // namespace
}  // namespace gossip::parallel
