#include "parallel/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace gossip::parallel {
namespace {

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPool, ExplicitWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitVoidTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto f = pool.submit([&] { counter.fetch_add(1); });
  f.get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ManyTasksAllExecute) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleBlocksUntilQueueDrains) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    (void)pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&] { done.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_seen{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit([&] {
      const int now = in_flight.fetch_add(1) + 1;
      int expected = max_seen.load();
      while (now > expected &&
             !max_seen.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      in_flight.fetch_sub(1);
    }));
  }
  for (auto& f : futures) f.get();
  // On a single-core host the scheduler may still serialize, so only
  // require that nothing exceeded the pool size.
  EXPECT_LE(max_seen.load(), 2);
  EXPECT_GE(max_seen.load(), 1);
}

}  // namespace
}  // namespace gossip::parallel
