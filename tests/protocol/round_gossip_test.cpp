#include "protocol/round_gossip.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

#include "core/baselines/pbcast_recurrence.hpp"

namespace gossip::protocol {
namespace {

RoundGossipProtocolParams base_params(std::uint32_t n, std::int64_t fanout,
                                      std::int64_t rounds, double q = 1.0) {
  RoundGossipProtocolParams p;
  p.num_nodes = n;
  p.source = 0;
  p.nonfailed_ratio = q;
  p.fanout = core::fixed_fanout(fanout);
  p.rounds = rounds;
  return p;
}

TEST(RoundGossip, InformedFractionIsMonotonePerRound) {
  const auto p = base_params(500, 3, 10);
  rng::RngStream rng(1);
  const auto result = run_round_gossip(p, rng);
  double prev = 0.0;
  for (const double frac : result.informed_per_round) {
    EXPECT_GE(frac, prev);
    EXPECT_LE(frac, 1.0);
    prev = frac;
  }
  EXPECT_NEAR(result.informed_per_round[0], 1.0 / 500.0, 1e-12);
}

TEST(RoundGossip, EnoughRoundsWithForwardAlwaysReachEveryone) {
  auto p = base_params(200, 4, 30);
  p.mode = RoundGossipMode::kForwardAlways;
  rng::RngStream rng(2);
  const auto result = run_round_gossip(p, rng);
  EXPECT_TRUE(result.execution.success);
  EXPECT_DOUBLE_EQ(result.execution.reliability, 1.0);
}

TEST(RoundGossip, ForwardOnceStopsWhenFrontierDies) {
  // Fanout 1 on a small group: the single chain dies quickly; the run must
  // terminate before exhausting the round budget.
  const auto p = base_params(100, 1, 1000);
  rng::RngStream rng(3);
  const auto result = run_round_gossip(p, rng);
  EXPECT_LT(result.rounds_executed, 1000);
}

TEST(RoundGossip, ZeroRoundsMeansOnlySourceInformed) {
  const auto p = base_params(50, 3, 0);
  rng::RngStream rng(4);
  const auto result = run_round_gossip(p, rng);
  EXPECT_EQ(result.execution.nonfailed_received, 1u);
  EXPECT_EQ(result.rounds_executed, 0);
}

TEST(RoundGossip, ForwardAlwaysBeatsForwardOnceAtEqualRounds) {
  auto once = base_params(400, 2, 6);
  once.mode = RoundGossipMode::kForwardOnce;
  auto always = once;
  always.mode = RoundGossipMode::kForwardAlways;
  double r_once = 0.0;
  double r_always = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    rng::RngStream rng1(seed);
    rng::RngStream rng2(seed);
    r_once += run_round_gossip(once, rng1).execution.reliability;
    r_always += run_round_gossip(always, rng2).execution.reliability;
  }
  EXPECT_GT(r_always, r_once);
}

TEST(RoundGossip, CrashedMembersNeverForward) {
  auto p = base_params(10, 9, 5, 1.0);
  const core::Bitvec alive{1, 0, 0, 0, 0, 0, 0, 0, 0, 1};
  rng::RngStream rng(5);
  const auto result = run_round_gossip(p, alive, rng);
  EXPECT_EQ(result.execution.nonfailed_count, 2u);
  // Source contacts everyone; node 9 receives and may forward, but all
  // others are dead, so the run ends with both alive members informed.
  EXPECT_TRUE(result.execution.success);
}

TEST(RoundGossip, MeanFieldRecurrencePredictsForwardAlwaysTrajectory) {
  // The pbcast recurrence is the mean-field limit of kForwardAlways; at
  // n = 2000 the realized trajectory should track it closely.
  const std::uint32_t n = 2000;
  const double fanout = 2.0;
  const std::int64_t rounds = 8;
  auto p = base_params(n, static_cast<std::int64_t>(fanout), rounds);
  p.mode = RoundGossipMode::kForwardAlways;
  rng::RngStream rng(6);
  const auto sim = run_round_gossip(p, rng);

  core::baselines::RoundGossipParams mp;
  mp.num_members = n;
  mp.fanout = fanout;
  mp.nonfailed_ratio = 1.0;
  mp.rounds = rounds;
  const auto model = core::baselines::pbcast_expected_infected(mp);

  ASSERT_EQ(sim.informed_per_round.size(), model.size());
  for (std::size_t t = 0; t < model.size(); ++t) {
    EXPECT_NEAR(sim.informed_per_round[t], model[t], 0.05)
        << "round " << t;
  }
}

TEST(RoundGossip, DeterministicForSameSeed) {
  const auto p = base_params(300, 3, 8, 0.7);
  rng::RngStream rng1(42);
  rng::RngStream rng2(42);
  const auto r1 = run_round_gossip(p, rng1);
  const auto r2 = run_round_gossip(p, rng2);
  EXPECT_EQ(r1.execution.received, r2.execution.received);
  EXPECT_EQ(r1.informed_per_round, r2.informed_per_round);
}

TEST(RoundGossip, ValidationErrors) {
  rng::RngStream rng(1);
  auto p = base_params(2, 1, 1);
  p.num_nodes = 1;
  EXPECT_THROW((void)run_round_gossip(p, rng), std::invalid_argument);
  p = base_params(5, 1, 1);
  p.rounds = -1;
  EXPECT_THROW((void)run_round_gossip(p, rng), std::invalid_argument);
  p = base_params(5, 1, 1);
  p.fanout = nullptr;
  EXPECT_THROW((void)run_round_gossip(p, rng), std::invalid_argument);
  p = base_params(5, 1, 1);
  EXPECT_THROW((void)run_round_gossip(p, {1, 1, 1}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace gossip::protocol
