#include <gtest/gtest.h>

#include <cstdint>

#include "core/degree_distribution.hpp"
#include "obs/probe.hpp"
#include "protocol/flat_gossip.hpp"
#include "protocol/gossip_multicast.hpp"
#include "rng/rng_stream.hpp"

namespace gossip::protocol {
namespace {

// ---- shared assertions --------------------------------------------------

/// sends == newly_informed + redundant + losses + dead_receipts for every
/// round >= 1 (round 0 is the injection: first receipts without traffic).
void expect_accounting_identity(const obs::RoundTrace& trace) {
  for (const auto& s : trace.rounds()) {
    if (s.round == 0) continue;
    EXPECT_EQ(s.sends,
              s.newly_informed + s.redundant + s.losses + s.dead_receipts)
        << "round " << s.round;
  }
}

void expect_rounds_indexed_in_order(const obs::RoundTrace& trace) {
  for (std::size_t r = 0; r < trace.rounds().size(); ++r) {
    EXPECT_EQ(trace.rounds()[r].round, r);
  }
}

/// The informed series is the running sum of newly_informed.
void expect_cumulative_informed(const obs::RoundTrace& trace) {
  std::uint64_t informed = 0;
  for (const auto& s : trace.rounds()) {
    informed += s.newly_informed;
    EXPECT_EQ(s.informed, informed) << "round " << s.round;
  }
  EXPECT_EQ(trace.summary().informed_final, informed);
}

// ---- flat engine --------------------------------------------------------

FlatGossipParams flat_params() {
  FlatGossipParams params;
  params.num_nodes = 2000;
  params.nonfailed_ratio = 0.9;
  params.loss_probability = 0.05;
  params.fanout = core::poisson_fanout(4.0);
  return params;
}

TEST(FlatGossipTrace, TracedRunMatchesUntracedBitForBit) {
  FlatGossipEngine a(flat_params());
  FlatGossipEngine b(flat_params());
  rng::RngStream rng_a(77);
  rng::RngStream rng_b(77);
  obs::RoundTrace trace;
  const auto plain = a.run_once(rng_a);
  const auto traced = b.run_once(rng_b, &trace);
  EXPECT_EQ(plain.rounds, traced.rounds);
  EXPECT_EQ(plain.messages_sent, traced.messages_sent);
  EXPECT_EQ(plain.duplicate_receipts, traced.duplicate_receipts);
  EXPECT_EQ(plain.losses, traced.losses);
  EXPECT_EQ(plain.dead_receipts, traced.dead_receipts);
  EXPECT_EQ(plain.nonfailed_count, traced.nonfailed_count);
  EXPECT_EQ(plain.nonfailed_received, traced.nonfailed_received);
  EXPECT_EQ(plain.reliability, traced.reliability);
  // The probe consumed no randomness: the streams are in the same state.
  EXPECT_EQ(rng_a(), rng_b());
}

TEST(FlatGossipTrace, RoundSamplesSatisfyInvariants) {
  FlatGossipEngine engine(flat_params());
  rng::RngStream rng(78);
  obs::RoundTrace trace;
  const auto result = engine.run_once(rng, &trace);

  expect_rounds_indexed_in_order(trace);
  expect_accounting_identity(trace);
  expect_cumulative_informed(trace);

  // Round 0 is the bare injection.
  ASSERT_FALSE(trace.rounds().empty());
  const auto& injection = trace.rounds().front();
  EXPECT_EQ(injection.newly_informed, 1u);
  EXPECT_EQ(injection.frontier, 0u);
  EXPECT_EQ(injection.sends, 0u);

  // Generation structure: round r's frontier is exactly round r-1's newly
  // informed (in the flat engine every informed member is alive).
  for (std::size_t r = 1; r < trace.rounds().size(); ++r) {
    EXPECT_EQ(trace.rounds()[r].frontier,
              trace.rounds()[r - 1].newly_informed)
        << "round " << r;
  }

  // Whole-run totals agree with the engine's own result counters.
  const auto& summary = trace.summary();
  EXPECT_EQ(summary.rounds, result.rounds);
  EXPECT_EQ(summary.sends, result.messages_sent);
  EXPECT_EQ(summary.redundant, result.duplicate_receipts);
  EXPECT_EQ(summary.losses, result.losses);
  EXPECT_EQ(summary.dead_receipts, result.dead_receipts);
  EXPECT_EQ(summary.informed_final, result.nonfailed_received);
  EXPECT_EQ(summary.nonfailed_final, result.nonfailed_count);
  EXPECT_EQ(summary.crashes, 0u);
  EXPECT_EQ(summary.joins, 0u);
  EXPECT_EQ(summary.lease_expiries, 0u);
}

TEST(FlatGossipTrace, ResultCountersMatchWithoutProbe) {
  // losses / dead_receipts are now first-class result fields; they must be
  // populated (identically) with and without a probe attached.
  FlatGossipEngine a(flat_params());
  FlatGossipEngine b(flat_params());
  rng::RngStream rng_a(79);
  rng::RngStream rng_b(79);
  obs::RoundTrace trace;
  const auto plain = a.run_once(rng_a);
  const auto traced = b.run_once(rng_b, &trace);
  EXPECT_GT(plain.losses, 0u);
  EXPECT_GT(plain.dead_receipts, 0u);
  EXPECT_EQ(plain.losses, traced.losses);
  EXPECT_EQ(plain.dead_receipts, traced.dead_receipts);
}

// ---- DES protocol engine ------------------------------------------------

GossipParams des_params() {
  GossipParams params;
  params.num_nodes = 500;
  params.nonfailed_ratio = 0.9;
  params.loss_probability = 0.05;
  params.fanout = core::poisson_fanout(4.0);
  return params;
}

TEST(ProtocolTrace, TracedRunMatchesUntracedBitForBit) {
  rng::RngStream rng_a(101);
  rng::RngStream rng_b(101);
  obs::RoundTrace trace;
  const auto plain = run_gossip_once(des_params(), rng_a);
  const auto traced = run_gossip_once(des_params(), rng_b, &trace);
  EXPECT_EQ(plain.messages_sent, traced.messages_sent);
  EXPECT_EQ(plain.duplicate_receipts, traced.duplicate_receipts);
  EXPECT_EQ(plain.nonfailed_count, traced.nonfailed_count);
  EXPECT_EQ(plain.nonfailed_received, traced.nonfailed_received);
  EXPECT_EQ(plain.reliability, traced.reliability);
  EXPECT_EQ(plain.completion_time, traced.completion_time);
  EXPECT_EQ(rng_a(), rng_b());
}

TEST(ProtocolTrace, RoundSamplesSatisfyInvariants) {
  rng::RngStream rng(102);
  obs::RoundTrace trace;
  const auto result = run_gossip_once(des_params(), rng, &trace);

  expect_rounds_indexed_in_order(trace);
  expect_accounting_identity(trace);
  expect_cumulative_informed(trace);

  ASSERT_FALSE(trace.rounds().empty());
  EXPECT_EQ(trace.rounds().front().newly_informed, 1u);  // hop-0 injection
  EXPECT_EQ(trace.rounds().front().sends, 0u);

  // Crash case A (before receive): only alive members ever record a
  // receipt, so every newly informed member activates into the next
  // round's frontier.
  for (std::size_t r = 1; r < trace.rounds().size(); ++r) {
    EXPECT_EQ(trace.rounds()[r].frontier,
              trace.rounds()[r - 1].newly_informed)
        << "round " << r;
  }

  const auto& summary = trace.summary();
  EXPECT_EQ(summary.sends, result.messages_sent);
  EXPECT_EQ(summary.redundant, result.duplicate_receipts);
  EXPECT_EQ(summary.informed_final, result.nonfailed_received);
  EXPECT_EQ(summary.nonfailed_final, result.nonfailed_count);
  EXPECT_GT(summary.losses, 0u);        // loss_probability = 0.05
  EXPECT_GT(summary.dead_receipts, 0u); // 10% static crashes
}

TEST(ProtocolTrace, CrashCaseBCountsInformedButNotForwarding) {
  // Case B members record the receipt, then fail to activate: frontier can
  // only lose members relative to the newly informed.
  auto params = des_params();
  params.loss_probability = 0.0;
  params.crash_case = CrashCase::kAfterReceiveBeforeForward;
  rng::RngStream rng(103);
  obs::RoundTrace trace;
  const auto result = run_gossip_once(params, rng, &trace);
  expect_accounting_identity(trace);
  expect_cumulative_informed(trace);
  bool saw_dead_informed = false;
  for (std::size_t r = 1; r < trace.rounds().size(); ++r) {
    EXPECT_LE(trace.rounds()[r].frontier,
              trace.rounds()[r - 1].newly_informed);
    saw_dead_informed |= trace.rounds()[r].frontier <
                         trace.rounds()[r - 1].newly_informed;
  }
  EXPECT_TRUE(saw_dead_informed);
  // informed now exceeds the alive receivers: crashed members count too.
  EXPECT_GE(trace.summary().informed_final, result.nonfailed_received);
}

TEST(ProtocolTrace, MidrunCrashesAreRecordedAsEvents) {
  auto params = des_params();
  params.nonfailed_ratio = 1.0;
  params.loss_probability = 0.0;
  params.midrun_crash_fraction = 0.3;
  rng::RngStream rng(104);
  obs::RoundTrace trace;
  const auto result = run_gossip_once(params, rng, &trace);
  ASSERT_GT(result.midrun_crashes, 0u);
  EXPECT_EQ(trace.summary().crashes, result.midrun_crashes);
  std::uint64_t crash_events = 0;
  for (const auto& s : trace.rounds()) crash_events += s.crashes;
  EXPECT_EQ(crash_events, result.midrun_crashes);
}

TEST(ProtocolTrace, WorkloadTraceCoversAllMessages) {
  auto params = des_params();
  params.loss_probability = 0.0;
  WorkloadParams workload;
  workload.num_messages = 3;
  workload.spacing = 2.0;
  rng::RngStream rng(105);
  obs::RoundTrace trace;
  const auto result = run_gossip_workload(params, workload, rng, &trace);
  expect_accounting_identity(trace);
  expect_cumulative_informed(trace);
  EXPECT_EQ(trace.summary().sends, result.messages_sent);
  EXPECT_EQ(trace.summary().redundant, result.duplicate_receipts);
  // Every injection is a hop-0 first receipt at its source, so round 0
  // carries one newly-informed entry per injected message, and no traffic.
  std::uint64_t injected = 0;
  for (const auto& m : result.messages) injected += m.injected ? 1 : 0;
  EXPECT_EQ(injected, 3u);
  ASSERT_FALSE(trace.rounds().empty());
  EXPECT_EQ(trace.rounds().front().newly_informed, 3u);
  EXPECT_EQ(trace.rounds().front().sends, 0u);
}

}  // namespace
}  // namespace gossip::protocol
