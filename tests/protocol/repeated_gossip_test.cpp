#include "protocol/repeated_gossip.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace gossip::protocol {
namespace {

RepeatedGossipParams base_params(std::uint32_t n, double fanout_mean, double q,
                                 std::int64_t executions) {
  RepeatedGossipParams p;
  p.base.num_nodes = n;
  p.base.source = 0;
  p.base.nonfailed_ratio = q;
  p.base.fanout = core::poisson_fanout(fanout_mean);
  p.executions = executions;
  return p;
}

TEST(RepeatedGossip, CountsAreBoundedByExecutions) {
  const auto p = base_params(100, 4.0, 0.9, 7);
  rng::RngStream rng(1);
  const auto result = run_repeated_gossip(p, rng);
  EXPECT_EQ(result.executions, 7);
  ASSERT_EQ(result.receive_counts.size(), 100u);
  for (const auto c : result.receive_counts) {
    EXPECT_LE(c, 7u);
  }
  EXPECT_EQ(result.per_execution_reliability.size(), 7u);
}

TEST(RepeatedGossip, SourceReceivesInEveryExecution) {
  const auto p = base_params(50, 3.0, 0.8, 10);
  rng::RngStream rng(2);
  const auto result = run_repeated_gossip(p, rng);
  EXPECT_EQ(result.receive_counts[0], 10u);
}

TEST(RepeatedGossip, AliveMaskIsPersistentAcrossExecutions) {
  const auto p = base_params(100, 10.0, 0.5, 5);
  rng::RngStream rng(3);
  const auto result = run_repeated_gossip(p, rng);
  // Crashed members never receive in any execution (kBeforeReceive).
  for (NodeId v = 0; v < 100; ++v) {
    if (!result.alive[v]) {
      EXPECT_EQ(result.receive_counts[v], 0u) << "node " << v;
    }
  }
  EXPECT_EQ(result.alive_count, result.alive.count());
}

TEST(RepeatedGossip, SaturatingFanoutGivesFullCounts) {
  RepeatedGossipParams p = base_params(30, 0.0, 1.0, 4);
  p.base.fanout = core::fixed_fanout(29);
  rng::RngStream rng(4);
  const auto result = run_repeated_gossip(p, rng);
  for (NodeId v = 0; v < 30; ++v) {
    EXPECT_EQ(result.receive_counts[v], 4u);
  }
  EXPECT_EQ(result.successful_executions, 4);
}

TEST(RepeatedGossip, SuccessCountSamplesExcludeSourceAndCrashed) {
  const auto p = base_params(200, 4.0, 0.6, 6);
  rng::RngStream rng(5);
  const auto result = run_repeated_gossip(p, rng);
  const auto samples = result.success_count_samples(0);
  EXPECT_EQ(samples.size(), result.alive_count - 1);
  for (const auto s : samples) {
    EXPECT_LE(s, 6u);
  }
}

TEST(RepeatedGossip, DeterministicForSameSeed) {
  const auto p = base_params(150, 3.5, 0.7, 5);
  rng::RngStream rng1(9);
  rng::RngStream rng2(9);
  const auto r1 = run_repeated_gossip(p, rng1);
  const auto r2 = run_repeated_gossip(p, rng2);
  EXPECT_EQ(r1.receive_counts, r2.receive_counts);
  EXPECT_EQ(r1.alive, r2.alive);
  EXPECT_EQ(r1.per_execution_reliability, r2.per_execution_reliability);
}

TEST(RepeatedGossip, ExecutionsVaryWithinOneRun) {
  // Different executions must consume different randomness: with moderate
  // fanout the per-execution reliabilities should not all be identical.
  const auto p = base_params(300, 2.5, 1.0, 10);
  rng::RngStream rng(11);
  const auto result = run_repeated_gossip(p, rng);
  bool any_different = false;
  for (std::size_t i = 1; i < result.per_execution_reliability.size(); ++i) {
    if (result.per_execution_reliability[i] !=
        result.per_execution_reliability[0]) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(RepeatedGossip, RejectsNonPositiveExecutions) {
  auto p = base_params(10, 2.0, 1.0, 0);
  rng::RngStream rng(1);
  EXPECT_THROW((void)run_repeated_gossip(p, rng), std::invalid_argument);
}

}  // namespace
}  // namespace gossip::protocol
