#include "protocol/anti_entropy.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

#include "core/baselines/anti_entropy_model.hpp"
#include "stats/summary.hpp"

namespace gossip::protocol {
namespace {

AntiEntropyParams base_params(std::uint32_t n, std::int64_t fanout,
                              std::int64_t rounds, ExchangeMode mode,
                              double q = 1.0) {
  AntiEntropyParams p;
  p.num_nodes = n;
  p.source = 0;
  p.nonfailed_ratio = q;
  p.fanout = core::fixed_fanout(fanout);
  p.rounds = rounds;
  p.mode = mode;
  return p;
}

TEST(AntiEntropy, PushPullConvergesAndStopsEarly) {
  const auto p = base_params(500, 2, 50, ExchangeMode::kPushPull);
  rng::RngStream rng(1);
  const auto result = run_anti_entropy(p, rng);
  EXPECT_TRUE(result.execution.success);
  EXPECT_GT(result.rounds_to_full_coverage, 0);
  EXPECT_LT(result.rounds_to_full_coverage, 25);
  EXPECT_EQ(result.rounds_executed, result.rounds_to_full_coverage);
}

TEST(AntiEntropy, InformedFractionIsMonotone) {
  for (const auto mode :
       {ExchangeMode::kPush, ExchangeMode::kPull, ExchangeMode::kPushPull}) {
    const auto p = base_params(300, 1, 30, mode);
    rng::RngStream rng(2);
    const auto result = run_anti_entropy(p, rng);
    double prev = 0.0;
    for (const double x : result.informed_per_round) {
      EXPECT_GE(x, prev);
      prev = x;
    }
  }
}

TEST(AntiEntropy, PullAloneCannotStartFromColdPeers) {
  // With fanout 0 nothing moves in any mode.
  auto p = base_params(100, 0, 10, ExchangeMode::kPull);
  rng::RngStream rng(3);
  const auto result = run_anti_entropy(p, rng);
  EXPECT_EQ(result.execution.nonfailed_received, 1u);
}

TEST(AntiEntropy, PushPullBeatsPushAloneInTailRounds) {
  // The classic result: push needs O(log n) + tail rounds, pull finishes
  // the tail super-exponentially. Compare informed fractions at a fixed
  // small round budget.
  const std::int64_t rounds = 6;
  stats::OnlineSummary push_frac;
  stats::OnlineSummary pushpull_frac;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    rng::RngStream rng1(seed);
    rng::RngStream rng2(seed);
    const auto push = run_anti_entropy(
        base_params(1000, 1, rounds, ExchangeMode::kPush), rng1);
    const auto pushpull = run_anti_entropy(
        base_params(1000, 1, rounds, ExchangeMode::kPushPull), rng2);
    push_frac.add(push.informed_per_round.back());
    pushpull_frac.add(pushpull.informed_per_round.back());
  }
  EXPECT_GT(pushpull_frac.mean(), push_frac.mean());
}

TEST(AntiEntropy, CrashedMembersDoNotParticipate) {
  auto p = base_params(10, 9, 10, ExchangeMode::kPushPull, 1.0);
  const core::Bitvec alive{1, 1, 0, 1, 0, 1, 1, 1, 0, 1};
  rng::RngStream rng(4);
  const auto result = run_anti_entropy(p, alive, rng);
  EXPECT_TRUE(result.execution.success);  // full fanout reaches all alive
  for (NodeId v = 0; v < 10; ++v) {
    if (!alive[v]) {
      EXPECT_EQ(result.execution.received[v], 0) << "node " << v;
    }
  }
}

TEST(AntiEntropy, MatchesMeanFieldModel) {
  const std::uint32_t n = 2000;
  const std::int64_t rounds = 8;
  AntiEntropyParams sp = base_params(n, 1, rounds, ExchangeMode::kPushPull);

  core::baselines::AntiEntropyModelParams mp;
  mp.num_members = n;
  mp.fanout = 1.0;
  mp.rounds = rounds;
  mp.mode = core::baselines::AntiEntropyMode::kPushPull;
  const auto model = core::baselines::anti_entropy_expected_informed(mp);

  stats::OnlineSummary final_frac;
  rng::RngStream rng(5);
  for (int i = 0; i < 10; ++i) {
    auto run_rng = rng.substream(static_cast<std::uint64_t>(i));
    const auto sim = run_anti_entropy(sp, run_rng);
    const std::size_t t =
        std::min(sim.informed_per_round.size() - 1,
                 static_cast<std::size_t>(rounds));
    final_frac.add(sim.informed_per_round[t]);
  }
  EXPECT_NEAR(final_frac.mean(), model.back(), 0.08);
}

TEST(AntiEntropy, DeterministicForSameSeed) {
  const auto p = base_params(200, 2, 10, ExchangeMode::kPushPull, 0.8);
  rng::RngStream rng1(42);
  rng::RngStream rng2(42);
  const auto r1 = run_anti_entropy(p, rng1);
  const auto r2 = run_anti_entropy(p, rng2);
  EXPECT_EQ(r1.execution.received, r2.execution.received);
  EXPECT_EQ(r1.informed_per_round, r2.informed_per_round);
}

TEST(AntiEntropy, ValidationErrors) {
  rng::RngStream rng(1);
  auto p = base_params(1, 1, 1, ExchangeMode::kPush);
  EXPECT_THROW((void)run_anti_entropy(p, rng), std::invalid_argument);
  p = base_params(5, 1, -1, ExchangeMode::kPush);
  EXPECT_THROW((void)run_anti_entropy(p, rng), std::invalid_argument);
  p = base_params(5, 1, 1, ExchangeMode::kPush);
  p.fanout = nullptr;
  EXPECT_THROW((void)run_anti_entropy(p, rng), std::invalid_argument);
}

}  // namespace
}  // namespace gossip::protocol
