/// FlatGossipEngine: validation, determinism, and the two structural
/// guarantees the hot path is built on — a bounded workspace at million-node
/// scale and ZERO heap allocations in the steady-state replication loop.
///
/// The allocation check overrides global operator new/delete for this test
/// binary with counting forwarders; only counter DELTAS inside a test body
/// are asserted, so the other suites' tests in the same binary are
/// unaffected.

#include "protocol/flat_gossip.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/degree_distribution.hpp"
#include "graph/generators.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace gossip::protocol {
namespace {

FlatGossipParams base_params(std::uint64_t n, double fanout_mean, double q) {
  FlatGossipParams p;
  p.num_nodes = n;
  p.source = 0;
  p.nonfailed_ratio = q;
  p.fanout = core::poisson_fanout(fanout_mean);
  return p;
}

TEST(FlatGossip, ValidatesParameters) {
  EXPECT_THROW(FlatGossipEngine(base_params(1, 4.0, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(FlatGossipEngine(base_params(10, 4.0, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(FlatGossipEngine(base_params(10, 4.0, 1.5)),
               std::invalid_argument);
  auto no_fanout = base_params(10, 4.0, 1.0);
  no_fanout.fanout = nullptr;
  EXPECT_THROW(FlatGossipEngine{no_fanout}, std::invalid_argument);
  auto bad_source = base_params(10, 4.0, 1.0);
  bad_source.source = 10;
  EXPECT_THROW(FlatGossipEngine{bad_source}, std::out_of_range);
  auto bad_loss = base_params(10, 4.0, 1.0);
  bad_loss.loss_probability = -0.1;
  EXPECT_THROW(FlatGossipEngine{bad_loss}, std::invalid_argument);
}

TEST(FlatGossip, PinsTheSupportedMaximumGroupSize) {
  // The engine (and every index computation behind it) is specified up to
  // 2^31 nodes; one past that must be a constructor error, not silent
  // truncation into 32-bit NodeIds.
  EXPECT_EQ(kMaxSupportedNodes, std::uint64_t{1} << 31);
  auto p = base_params(kMaxSupportedNodes + 1, 4.0, 1.0);
  EXPECT_THROW(FlatGossipEngine{p}, std::invalid_argument);
}

TEST(FlatGossip, SaturatingFanoutReachesEveryone) {
  auto p = base_params(50, 0.0, 1.0);
  p.fanout = core::fixed_fanout(49);
  FlatGossipEngine engine(p);
  rng::RngStream rng(1);
  const auto result = engine.run_once(rng);
  EXPECT_TRUE(result.success);
  EXPECT_DOUBLE_EQ(result.reliability, 1.0);
  EXPECT_EQ(result.nonfailed_count, 50u);
  EXPECT_EQ(result.nonfailed_received, 50u);
}

TEST(FlatGossip, ZeroFanoutReachesOnlySource) {
  auto p = base_params(20, 0.0, 1.0);
  p.fanout = core::fixed_fanout(0);
  FlatGossipEngine engine(p);
  rng::RngStream rng(2);
  const auto result = engine.run_once(rng);
  EXPECT_EQ(result.nonfailed_received, 1u);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.messages_sent, 0u);
}

TEST(FlatGossip, TotalLossReachesOnlySource) {
  auto p = base_params(100, 4.0, 1.0);
  p.loss_probability = 1.0;
  FlatGossipEngine engine(p);
  rng::RngStream rng(3);
  const auto result = engine.run_once(rng);
  EXPECT_EQ(result.nonfailed_received, 1u);
  EXPECT_FALSE(result.success);
}

TEST(FlatGossip, DeterministicBitForBitAcrossEnginesAndReuse) {
  const auto p = base_params(2000, 4.0, 0.9);
  FlatGossipEngine engine1(p);
  FlatGossipEngine engine2(p);
  rng::RngStream rng1(77);
  rng::RngStream rng2(77);
  for (int i = 0; i < 5; ++i) {
    const auto r1 = engine1.run_once(rng1);
    const auto r2 = engine2.run_once(rng2);
    ASSERT_EQ(r1.nonfailed_count, r2.nonfailed_count);
    ASSERT_EQ(r1.nonfailed_received, r2.nonfailed_received);
    ASSERT_EQ(r1.messages_sent, r2.messages_sent);
    ASSERT_EQ(r1.duplicate_receipts, r2.duplicate_receipts);
    ASSERT_EQ(r1.rounds, r2.rounds);
    ASSERT_DOUBLE_EQ(r1.reliability, r2.reliability);
  }
  // A fresh engine replays replication 3 identically: results depend only
  // on the stream state, never on buffer history.
  rng::RngStream rng3(77);
  FlatGossipEngine engine3(p);
  FlatGossipResult replay{};
  for (int i = 0; i < 4; ++i) replay = engine3.run_once(rng3);
  rng::RngStream rng4(77);
  FlatGossipResult direct{};
  FlatGossipEngine engine4(p);
  for (int i = 0; i < 4; ++i) direct = engine4.run_once(rng4);
  EXPECT_EQ(replay.nonfailed_received, direct.nonfailed_received);
  EXPECT_EQ(replay.messages_sent, direct.messages_sent);
}

TEST(FlatGossip, SteadyStateLoopIsAllocationFree) {
  const auto p = base_params(10'000, 4.0, 0.9);
  FlatGossipEngine engine(p);
  rng::RngStream rng(2008);
  (void)engine.run_once(rng);  // warm-up: first run may touch fresh pages
  std::uint64_t received_total = 0;
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 20; ++i) {
    received_total += engine.run_once(rng).nonfailed_received;
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_GT(received_total, 0u);
  EXPECT_EQ(after - before, 0u)
      << "the replication loop allocated " << (after - before) << " times";
}

TEST(FlatGossip, MillionNodeWorkspaceStaysBounded) {
  // n = 10^6: two packed bitsets (125 KB each) + two frontiers (4 MB each)
  // + fanout scratch (2 MB). Anything over 16 MB means a mask degenerated
  // to a byte (or worse) per node.
  const auto p = base_params(1'000'000, 4.0, 0.9);
  FlatGossipEngine engine(p);
  EXPECT_LE(engine.workspace_bytes(), 16u * 1024 * 1024);
  EXPECT_GE(engine.workspace_bytes(), 2u * (1'000'000 / 8));
}

membership::CsrAdjacencyPtr ring_topology(std::uint32_t n) {
  auto csr = std::make_shared<membership::CsrAdjacency>();
  csr->offsets.resize(n + 1);
  csr->neighbors.reserve(2ULL * n);
  for (std::uint32_t v = 0; v < n; ++v) {
    csr->offsets[v + 1] = csr->offsets[v] + 2;
    csr->neighbors.push_back((v + n - 1) % n);
    csr->neighbors.push_back((v + 1) % n);
  }
  csr->max_degree = 2;
  return csr;
}

membership::CsrAdjacencyPtr to_csr(const graph::Digraph& g) {
  auto csr = std::make_shared<membership::CsrAdjacency>();
  csr->offsets.resize(static_cast<std::size_t>(g.num_nodes()) + 1);
  csr->neighbors.reserve(g.num_edges());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.out_neighbors(v);
    csr->offsets[v + 1] = csr->offsets[v] + nbrs.size();
    csr->neighbors.insert(csr->neighbors.end(), nbrs.begin(), nbrs.end());
    csr->max_degree = std::max(csr->max_degree,
                               static_cast<std::uint32_t>(nbrs.size()));
  }
  return csr;
}

TEST(FlatGossipTopology, RingWithSaturatingFanoutSpreadsHopByHop) {
  const std::uint32_t n = 100;
  auto p = base_params(n, 0.0, 1.0);
  p.fanout = core::fixed_fanout(2);
  p.topology = ring_topology(n);
  FlatGossipEngine engine(p);
  rng::RngStream rng(1);
  const auto result = engine.run_once(rng);
  // Fanout equals every degree, so each round informs exactly the two next
  // ring positions: full coverage in n/2 rounds, never faster.
  EXPECT_TRUE(result.success);
  EXPECT_DOUBLE_EQ(result.reliability, 1.0);
  EXPECT_GE(result.rounds, n / 2);
}

TEST(FlatGossipTopology, ValidatesTheAdjacencyUpFront) {
  auto p = base_params(10, 4.0, 1.0);
  p.topology = ring_topology(12);  // node-count mismatch
  EXPECT_THROW(FlatGossipEngine{p}, std::invalid_argument);
  auto malformed = std::make_shared<membership::CsrAdjacency>(
      *ring_topology(10));
  malformed->max_degree = 7;
  p.topology = malformed;
  EXPECT_THROW(FlatGossipEngine{p}, std::invalid_argument);
}

TEST(FlatGossipTopology, DeterministicBitForBitAcrossEngines) {
  rng::RngStream graph_rng(404);
  auto p = base_params(2000, 4.0, 0.9);
  p.topology = to_csr(graph::barabasi_albert(2000, 5, graph_rng));
  FlatGossipEngine engine1(p);
  FlatGossipEngine engine2(p);
  rng::RngStream rng1(77);
  rng::RngStream rng2(77);
  for (int i = 0; i < 5; ++i) {
    const auto r1 = engine1.run_once(rng1);
    const auto r2 = engine2.run_once(rng2);
    ASSERT_EQ(r1.nonfailed_received, r2.nonfailed_received);
    ASSERT_EQ(r1.messages_sent, r2.messages_sent);
    ASSERT_EQ(r1.rounds, r2.rounds);
  }
}

TEST(FlatGossipTopology, SteadyStateLoopIsAllocationFree) {
  // A scale-free overlay with mean fanout near the degree floor exercises
  // all three selection branches (copy-all, sparse rejection, complement);
  // none of them may allocate once the engine is warm.
  rng::RngStream graph_rng(505);
  auto p = base_params(5000, 4.0, 0.9);
  p.topology = to_csr(graph::barabasi_albert(5000, 5, graph_rng));
  FlatGossipEngine engine(p);
  rng::RngStream rng(2008);
  (void)engine.run_once(rng);  // warm-up: first run may touch fresh pages
  std::uint64_t received_total = 0;
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 20; ++i) {
    received_total += engine.run_once(rng).nonfailed_received;
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_GT(received_total, 0u);
  EXPECT_EQ(after - before, 0u)
      << "the topology replication loop allocated " << (after - before)
      << " times";
}

TEST(FlatGossipTopology, FanoutClampsToTheDegree) {
  // Star center (degree n-1) vs leaves (degree 1): a huge fanout draw sends
  // to every neighbor, never more.
  const std::uint32_t n = 32;
  auto csr = std::make_shared<membership::CsrAdjacency>();
  csr->offsets.resize(n + 1);
  for (std::uint32_t v = 1; v < n; ++v) csr->neighbors.push_back(v);
  csr->offsets[1] = n - 1;
  for (std::uint32_t v = 1; v < n; ++v) {
    csr->offsets[v + 1] = csr->offsets[v] + 1;
    csr->neighbors.push_back(0);
  }
  csr->max_degree = n - 1;
  auto p = base_params(n, 0.0, 1.0);
  p.fanout = core::fixed_fanout(200);
  p.topology = csr;
  FlatGossipEngine engine(p);
  rng::RngStream rng(3);
  const auto result = engine.run_once(rng);
  EXPECT_TRUE(result.success);
  // Source round: n-1 sends; every leaf then sends exactly 1 (back to the
  // center, redundant).
  EXPECT_EQ(result.messages_sent, (n - 1) + (n - 1));
  EXPECT_EQ(result.duplicate_receipts, n - 1);
}

TEST(FlatGossip, CountsDuplicatesAndMessages) {
  const auto p = base_params(500, 6.0, 1.0);
  FlatGossipEngine engine(p);
  // Seed note: 9 is the one seed in [9, 16) whose first code lands in the
  // quantized low cell of the LUT (source draws fanout 0, cascade never
  // starts) — a legitimate but useless execution for this test.
  rng::RngStream rng(10);
  const auto result = engine.run_once(rng);
  // With z = 6 > ln(n) almost everyone is reached and most sends are
  // redundant; both counters must be populated and consistent.
  EXPECT_GT(result.messages_sent, result.num_nodes);
  EXPECT_GT(result.duplicate_receipts, 0u);
  EXPECT_GE(result.messages_sent,
            result.duplicate_receipts + result.nonfailed_received - 1);
}

}  // namespace
}  // namespace gossip::protocol
