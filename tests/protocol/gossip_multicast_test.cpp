#include "protocol/gossip_multicast.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

#include "membership/partial_view.hpp"

namespace gossip::protocol {
namespace {

GossipParams base_params(std::uint32_t n, double fanout_mean, double q) {
  GossipParams p;
  p.num_nodes = n;
  p.source = 0;
  p.nonfailed_ratio = q;
  p.fanout = core::poisson_fanout(fanout_mean);
  return p;
}

TEST(GossipMulticast, SaturatingFanoutReachesEveryone) {
  GossipParams p = base_params(50, 0.0, 1.0);
  p.fanout = core::fixed_fanout(49);  // everyone contacts everyone
  rng::RngStream rng(1);
  const auto result = run_gossip_once(p, rng);
  EXPECT_TRUE(result.success);
  EXPECT_DOUBLE_EQ(result.reliability, 1.0);
  EXPECT_EQ(result.nonfailed_count, 50u);
  EXPECT_EQ(result.nonfailed_received, 50u);
}

TEST(GossipMulticast, ZeroFanoutReachesOnlySource) {
  GossipParams p = base_params(20, 0.0, 1.0);
  p.fanout = core::fixed_fanout(0);
  rng::RngStream rng(2);
  const auto result = run_gossip_once(p, rng);
  EXPECT_EQ(result.nonfailed_received, 1u);
  EXPECT_NEAR(result.reliability, 1.0 / 20.0, 1e-12);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.messages_sent, 0u);
}

TEST(GossipMulticast, SourceAlwaysReceivesItsOwnMessage) {
  GossipParams p = base_params(30, 2.0, 0.5);
  rng::RngStream rng(3);
  for (int i = 0; i < 10; ++i) {
    const auto result = run_gossip_once(p, rng);
    EXPECT_EQ(result.received[p.source], 1);
    EXPECT_EQ(result.alive[p.source], 1);
    EXPECT_GE(result.reliability, 0.0);
    EXPECT_LE(result.reliability, 1.0);
  }
}

TEST(GossipMulticast, DeterministicForSameSeed) {
  const GossipParams p = base_params(200, 3.0, 0.8);
  rng::RngStream rng1(77);
  rng::RngStream rng2(77);
  const auto r1 = run_gossip_once(p, rng1);
  const auto r2 = run_gossip_once(p, rng2);
  EXPECT_EQ(r1.received, r2.received);
  EXPECT_EQ(r1.alive, r2.alive);
  EXPECT_EQ(r1.messages_sent, r2.messages_sent);
  EXPECT_DOUBLE_EQ(r1.reliability, r2.reliability);
}

TEST(GossipMulticast, CrashCasesYieldIdenticalReliabilityForSameSeed) {
  // Section 4.1: "crash before receiving" and "crash after receiving but
  // before forwarding" are treated the same — alive members' behaviour and
  // randomness consumption are identical in both implementations.
  GossipParams before = base_params(300, 3.0, 0.6);
  before.crash_case = CrashCase::kBeforeReceive;
  GossipParams after = before;
  after.crash_case = CrashCase::kAfterReceiveBeforeForward;

  rng::RngStream mask_rng(5);
  const auto alive = draw_alive_mask(300, 0, 0.6, mask_rng);
  rng::RngStream rng1(99);
  rng::RngStream rng2(99);
  const auto r1 = run_gossip_once(before, alive, rng1);
  const auto r2 = run_gossip_once(after, alive, rng2);
  EXPECT_DOUBLE_EQ(r1.reliability, r2.reliability);
  EXPECT_EQ(r1.nonfailed_received, r2.nonfailed_received);
  // Alive members' receipt flags agree exactly.
  for (NodeId v = 0; v < 300; ++v) {
    if (alive[v]) {
      ASSERT_EQ(r1.received[v], r2.received[v]) << "node " << v;
    }
  }
}

TEST(GossipMulticast, CrashedMembersNeverRecordReceiptInCaseA) {
  GossipParams p = base_params(100, 5.0, 0.5);
  p.crash_case = CrashCase::kBeforeReceive;
  rng::RngStream rng(6);
  const auto result = run_gossip_once(p, rng);
  for (NodeId v = 0; v < 100; ++v) {
    if (!result.alive[v]) {
      EXPECT_EQ(result.received[v], 0) << "node " << v;
    }
  }
}

TEST(GossipMulticast, CrashedMembersMayReceiveInCaseB) {
  GossipParams p = base_params(200, 6.0, 0.5);
  p.crash_case = CrashCase::kAfterReceiveBeforeForward;
  rng::RngStream rng(7);
  const auto result = run_gossip_once(p, rng);
  bool any_crashed_received = false;
  for (NodeId v = 0; v < 200; ++v) {
    if (!result.alive[v] && result.received[v]) {
      any_crashed_received = true;
    }
  }
  EXPECT_TRUE(any_crashed_received);
}

TEST(GossipMulticast, FixedAliveMaskIsHonored) {
  GossipParams p = base_params(10, 0.0, 1.0);
  p.fanout = core::fixed_fanout(9);
  const core::Bitvec alive{1, 1, 0, 1, 0, 1, 1, 1, 0, 1};
  rng::RngStream rng(8);
  const auto result = run_gossip_once(p, alive, rng);
  EXPECT_EQ(result.alive, alive);
  EXPECT_EQ(result.nonfailed_count, 7u);
  // Saturating fanout: every alive member receives.
  EXPECT_TRUE(result.success);
}

TEST(GossipMulticast, DuplicateReceiptsAreCountedAndDiscarded) {
  GossipParams p = base_params(10, 0.0, 1.0);
  p.fanout = core::fixed_fanout(9);
  rng::RngStream rng(9);
  const auto result = run_gossip_once(p, rng);
  // 10 nodes each send 9 messages; only 10 first-receipts are possible, so
  // the rest are duplicates (source's self-delivery is internal).
  EXPECT_EQ(result.messages_sent, 90u);
  EXPECT_EQ(result.duplicate_receipts, 90u - 9u);
}

TEST(GossipMulticast, MessageLossReducesReliability) {
  GossipParams lossless = base_params(1000, 3.0, 1.0);
  GossipParams lossy = lossless;
  lossy.loss_probability = 0.6;
  rng::RngStream rng1(10);
  rng::RngStream rng2(10);
  // Average over a few runs to smooth cascade die-out noise.
  double r_lossless = 0.0;
  double r_lossy = 0.0;
  for (int i = 0; i < 5; ++i) {
    r_lossless += run_gossip_once(lossless, rng1).reliability;
    r_lossy += run_gossip_once(lossy, rng2).reliability;
  }
  EXPECT_GT(r_lossless, r_lossy);
}

TEST(GossipMulticast, PartialMembershipRestrictsTargets) {
  GossipParams p = base_params(6, 0.0, 1.0);
  p.fanout = core::fixed_fanout(5);
  // Ring views: node i only knows i+1; gossip must still traverse the ring.
  std::vector<std::vector<membership::NodeId>> views(6);
  for (membership::NodeId v = 0; v < 6; ++v) {
    views[v] = {static_cast<membership::NodeId>((v + 1) % 6)};
  }
  p.membership = membership::list_membership(std::move(views), "ring");
  rng::RngStream rng(11);
  const auto result = run_gossip_once(p, rng);
  EXPECT_TRUE(result.success);  // the ring is connected
  EXPECT_EQ(result.messages_sent, 6u);  // each node forwards once to 1 peer
}

TEST(GossipMulticast, CompletionTimeGrowsWithLatency) {
  GossipParams fast = base_params(100, 4.0, 1.0);
  fast.latency = net::constant_latency(1.0);
  GossipParams slow = fast;
  slow.latency = net::constant_latency(10.0);
  rng::RngStream rng1(12);
  rng::RngStream rng2(12);
  const auto r_fast = run_gossip_once(fast, rng1);
  const auto r_slow = run_gossip_once(slow, rng2);
  EXPECT_GT(r_slow.completion_time, r_fast.completion_time);
}

TEST(GossipMulticast, ValidationErrors) {
  rng::RngStream rng(1);
  GossipParams p;
  p.num_nodes = 1;
  p.fanout = core::poisson_fanout(2.0);
  EXPECT_THROW((void)run_gossip_once(p, rng), std::invalid_argument);
  p.num_nodes = 10;
  p.source = 10;
  EXPECT_THROW((void)run_gossip_once(p, rng), std::out_of_range);
  p.source = 0;
  p.nonfailed_ratio = 0.0;
  EXPECT_THROW((void)run_gossip_once(p, rng), std::invalid_argument);
  p.nonfailed_ratio = 1.0;
  p.fanout = nullptr;
  EXPECT_THROW((void)run_gossip_once(p, rng), std::invalid_argument);
}

TEST(GossipMulticast, RejectsBadAliveMask) {
  GossipParams p = base_params(5, 1.0, 1.0);
  rng::RngStream rng(1);
  EXPECT_THROW((void)run_gossip_once(p, {1, 1, 1}, rng),
               std::invalid_argument);
  EXPECT_THROW((void)run_gossip_once(p, {0, 1, 1, 1, 1}, rng),
               std::invalid_argument);  // source dead
}

TEST(DrawAliveMask, SourceForcedAliveAndRatioRespected) {
  rng::RngStream rng(13);
  int alive_total = 0;
  const int n = 1000;
  const auto mask = draw_alive_mask(n, 5, 0.3, rng);
  EXPECT_EQ(mask[5], 1);
  alive_total = static_cast<int>(mask.count());
  EXPECT_NEAR(alive_total, 300, 60);
}

}  // namespace
}  // namespace gossip::protocol
