#include <stdexcept>

#include <gtest/gtest.h>

#include "core/reliability_model.hpp"
#include "protocol/gossip_multicast.hpp"
#include "stats/summary.hpp"

namespace gossip::protocol {
namespace {

GossipParams crash_params(double fraction, double time_lo, double time_hi) {
  GossipParams p;
  p.num_nodes = 800;
  p.nonfailed_ratio = 1.0;
  p.fanout = core::poisson_fanout(5.0);
  p.midrun_crash_fraction = fraction;
  p.midrun_crash_time = net::uniform_latency(time_lo, time_hi);
  return p;
}

double mean_reliability(const GossipParams& p, std::uint64_t seed,
                        int reps = 15) {
  const rng::RngStream root(seed);
  stats::OnlineSummary s;
  for (int i = 0; i < reps; ++i) {
    auto rng = root.substream(static_cast<std::uint64_t>(i));
    s.add(run_gossip_once(p, rng).reliability);
  }
  return s.mean();
}

TEST(DynamicCrash, NoCrashFractionMeansNoCrashes) {
  GossipParams p = crash_params(0.0, 0.0, 1.0);
  rng::RngStream rng(1);
  const auto exec = run_gossip_once(p, rng);
  EXPECT_EQ(exec.midrun_crashes, 0u);
}

TEST(DynamicCrash, CrashedMembersAreRemovedFromAliveMask) {
  GossipParams p = crash_params(0.5, 0.0, 2.0);
  rng::RngStream rng(2);
  const auto exec = run_gossip_once(p, rng);
  EXPECT_GT(exec.midrun_crashes, 0u);
  const auto alive_count = static_cast<std::uint32_t>(exec.alive.count());
  EXPECT_EQ(alive_count, exec.nonfailed_count);
  EXPECT_EQ(alive_count + exec.midrun_crashes, 800u);
  // The source never crashes.
  EXPECT_EQ(exec.alive[p.source], 1);
}

TEST(DynamicCrash, EarlyCrashesApproximateStaticFailures) {
  // Crashes at t ~ 0 should cost about as much as static failures with
  // q = 1 - fraction.
  const double fraction = 0.4;
  GossipParams dynamic = crash_params(fraction, 0.0, 0.01);
  const double dynamic_rel = mean_reliability(dynamic, 11, 25);
  const double static_prediction =
      core::poisson_reliability(5.0, 1.0 - fraction);
  // Delivery metric conditional-vs-unconditional noise: compare loosely but
  // directionally (S^2-deflated delivery vs component-S for the static
  // model makes exact matching inappropriate; use the conditional band).
  EXPECT_LT(dynamic_rel, static_prediction + 0.05);
  EXPECT_GT(dynamic_rel, static_prediction * static_prediction - 0.12);
}

TEST(DynamicCrash, LateCrashesAreHarmless) {
  // Dissemination completes in ~10 hops; crashes at t ~ 1000 change nothing
  // about delivery.
  GossipParams late = crash_params(0.5, 900.0, 1000.0);
  GossipParams none = crash_params(0.0, 0.0, 1.0);
  // Same protocol randomness -> compare means over seeds.
  const double late_rel = mean_reliability(late, 13);
  const double none_rel = mean_reliability(none, 13);
  EXPECT_NEAR(late_rel, none_rel, 0.02);
}

TEST(DynamicCrash, ReliabilityDegradesMonotonicallyWithCrashOnset) {
  // Earlier crash windows hurt more.
  const double early = mean_reliability(crash_params(0.4, 0.0, 1.0), 17, 25);
  const double mid = mean_reliability(crash_params(0.4, 3.0, 5.0), 17, 25);
  const double late = mean_reliability(crash_params(0.4, 20.0, 30.0), 17, 25);
  EXPECT_LT(early, mid + 0.03);
  EXPECT_LT(mid, late + 0.03);
  EXPECT_LT(early, late);
}

TEST(DynamicCrash, DeterministicForSameSeed) {
  GossipParams p = crash_params(0.3, 0.0, 5.0);
  rng::RngStream rng1(99);
  rng::RngStream rng2(99);
  const auto r1 = run_gossip_once(p, rng1);
  const auto r2 = run_gossip_once(p, rng2);
  EXPECT_EQ(r1.received, r2.received);
  EXPECT_EQ(r1.midrun_crashes, r2.midrun_crashes);
  EXPECT_DOUBLE_EQ(r1.reliability, r2.reliability);
}

TEST(DynamicCrash, RejectsInvalidFraction) {
  GossipParams p = crash_params(1.5, 0.0, 1.0);
  rng::RngStream rng(1);
  EXPECT_THROW((void)run_gossip_once(p, rng), std::invalid_argument);
}

}  // namespace
}  // namespace gossip::protocol
