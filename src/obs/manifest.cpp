#include "obs/manifest.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace gossip::obs {

namespace {

/// Shortest round-trip double formatting (%.17g trimmed would be noisy;
/// %g at 12 significant digits is stable and plenty for wall clocks and
/// metric means).
std::string fmt_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

void append_case(std::string& out, const CaseManifest& c,
                 const std::string& indent) {
  const std::string in2 = indent + "  ";
  out += indent + "{\n";
  out += in2 + "\"scenario\": \"" + json_escape(c.scenario) + "\",\n";
  out += in2 + "\"case\": \"" + json_escape(c.label) + "\",\n";
  out += in2 + "\"backend\": \"" + json_escape(c.backend) + "\",\n";
  out += in2 + "\"metric\": \"" + json_escape(c.metric) + "\",\n";
  out += in2 + "\"seed\": " + std::to_string(c.seed) + ",\n";
  out += in2 + "\"replications\": " + std::to_string(c.replications) + ",\n";
  out += in2 + "\"primary\": " + fmt_number(c.primary) + ",\n";
  out += in2 + "\"success_rate\": " + fmt_number(c.success_rate) + ",\n";
  out += in2 + "\"wall_seconds\": " + fmt_number(c.wall_seconds) + ",\n";
  out += in2 + "\"rep_seconds\": {\"min\": " + fmt_number(c.rep_seconds_min) +
         ", \"mean\": " + fmt_number(c.rep_seconds_mean) +
         ", \"max\": " + fmt_number(c.rep_seconds_max) + "},\n";
  out += in2 + "\"rep_time_log2us\": [";
  for (std::size_t i = 0; i < c.rep_time_log2us.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(c.rep_time_log2us[i]);
  }
  out += "]\n";
  out += indent + "}";
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buffer;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char ch : text) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t peak_rss_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

std::string to_json(const RunManifest& manifest) {
  std::string out = "{\n";
  out += "  \"tool\": \"" + json_escape(manifest.tool) + "\",\n";
  out += "  \"spec_name\": \"" + json_escape(manifest.spec_name) + "\",\n";
  out += "  \"spec_path\": \"" + json_escape(manifest.spec_path) + "\",\n";
  out += "  \"spec_hash\": \"" + json_escape(manifest.spec_hash) + "\",\n";
  out += "  \"threads\": " + std::to_string(manifest.threads) + ",\n";
  out += std::string("  \"smoke\": ") + (manifest.smoke ? "true" : "false") +
         ",\n";
  out += "  \"trace\": \"" + json_escape(manifest.trace_mode) + "\",\n";
  out += "  \"results_csv\": \"" + json_escape(manifest.results_csv) + "\",\n";
  out += "  \"trace_csv\": \"" + json_escape(manifest.trace_csv) + "\",\n";
  out += "  \"total_wall_seconds\": " + fmt_number(manifest.total_wall_seconds) +
         ",\n";
  out += "  \"peak_rss_bytes\": " + std::to_string(manifest.peak_rss_bytes) +
         ",\n";
  out += "  \"cases\": [\n";
  for (std::size_t i = 0; i < manifest.cases.size(); ++i) {
    append_case(out, manifest.cases[i], "    ");
    out += i + 1 < manifest.cases.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

void write_manifest(const std::string& path, const RunManifest& manifest) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write manifest: " + path);
  }
  out << to_json(manifest);
  if (!out) {
    throw std::runtime_error("error writing manifest: " + path);
  }
}

}  // namespace gossip::obs
