#include "obs/probe.hpp"

namespace gossip::obs {

// Out-of-line destructor anchors the vtable in this translation unit.
Probe::~Probe() = default;

}  // namespace gossip::obs
