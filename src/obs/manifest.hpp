#pragma once

/// \file manifest.hpp
/// Run manifests: a machine-readable JSON record of one tool invocation —
/// what spec ran (content hash), with which seeds and backends, how long
/// every case and replication took, and how much memory the process peaked
/// at. CI uploads the manifest next to the result CSVs so a perf regression
/// is diagnosable from artifacts alone, without re-running anything; the
/// same record is what a long-lived gossipd daemon would periodically
/// checkpoint. Schema documented in docs/observability.md.
///
/// The JSON emitter is deliberately tiny (objects, arrays, strings,
/// numbers) — no external dependency, stable key order (declaration order
/// below), so manifests diff cleanly run to run.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gossip::obs {

/// Per-case record. `rep_time_log2us[k]` counts replications whose wall
/// clock fell in [2^(k-1), 2^k) microseconds (k = 0 collects sub-1us reps)
/// — a log-scale latency histogram compact enough to commit yet sharp
/// enough to show a bimodal slowdown that a mean would hide.
struct CaseManifest {
  std::string scenario;
  std::string label;
  std::string backend;
  std::string metric;
  std::uint64_t seed = 0;
  std::uint64_t replications = 0;
  double primary = 0.0;       ///< The case's headline metric value.
  double success_rate = 0.0;
  double wall_seconds = 0.0;  ///< Sum of this case's replication times.
  double rep_seconds_min = 0.0;
  double rep_seconds_mean = 0.0;
  double rep_seconds_max = 0.0;
  std::vector<std::uint64_t> rep_time_log2us;
};

struct RunManifest {
  std::string tool;        ///< Emitting binary, e.g. "gossip_scenarios".
  std::string spec_name;
  std::string spec_path;   ///< As given on the command line; "" if inline.
  std::string spec_hash;   ///< "fnv1a64:<16 hex>" over the normalized spec.
  std::uint64_t threads = 0;
  bool smoke = false;
  std::string trace_mode;  ///< "off", "counters", or "rounds".
  std::string results_csv;
  std::string trace_csv;   ///< "" when no trace CSV was written.
  double total_wall_seconds = 0.0;
  std::uint64_t peak_rss_bytes = 0;
  std::vector<CaseManifest> cases;
};

/// Serializes the manifest as pretty-printed JSON (two-space indent).
[[nodiscard]] std::string to_json(const RunManifest& manifest);

/// Writes to_json(manifest) at `path` (parent directory must exist).
/// Throws std::runtime_error when the file cannot be written.
void write_manifest(const std::string& path, const RunManifest& manifest);

/// JSON string escaping for the emitter; exposed for tests.
[[nodiscard]] std::string json_escape(std::string_view text);

/// FNV-1a 64-bit content hash — stable across platforms and runs, used to
/// fingerprint the normalized spec text in `RunManifest::spec_hash`.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text) noexcept;

/// Peak resident set size of this process in bytes; 0 where the platform
/// offers no getrusage-style accounting.
[[nodiscard]] std::uint64_t peak_rss_bytes() noexcept;

}  // namespace gossip::obs
