#pragma once

/// \file probe.hpp
/// The observability probe: a per-execution hook both gossip engines (the
/// message-level DES in protocol/gossip_multicast.hpp and the flat
/// struct-of-arrays engine in protocol/flat_gossip.hpp) report into while a
/// dissemination runs. The paper's outputs are endpoint summaries
/// (reliability, success); the probe exposes the *mechanism* behind them —
/// the per-round epidemic growth curve, redundant-delivery waste, channel
/// losses, and churn interference — which is exactly the trajectory data a
/// mean-field/ODE co-model (ROADMAP "analytic fast path") must be validated
/// against, and the shape of telemetry a live gossipd daemon would stream.
///
/// Cost contract: a null probe (the default `probe == nullptr`) must be
/// free. Engines accumulate the per-round deltas in counters they keep
/// anyway and test the pointer once per ROUND (never per message), so the
/// instrumented-but-disabled hot path stays within 2% of the uninstrumented
/// PR 6 baseline — gated by tools/bench_compare.py on BM_RoundLoopFlat.
///
/// Determinism contract: probes only observe. No probe implementation may
/// consume engine randomness, and engines make identical draws whether or
/// not a probe is attached — pinned by tests/protocol/probe_trace_test.cpp
/// and the scenario-layer determinism suite.
///
/// This layer depends on nothing but the standard library so every other
/// layer (protocol, experiment, scenario, tools) can link it freely.

#include <cstdint>
#include <vector>

namespace gossip::obs {

/// One round of a dissemination, in the flat engine's generation terms:
/// round 0 is the injection (the source alone), and round r >= 1 covers the
/// messages sent by the members first informed in round r - 1. The DES
/// engine maps onto the same indexing by message hop count (a receipt whose
/// message has hops == r belongs to round r), which coincides with virtual
/// time under the default unit latency. Membership events (crash / join /
/// lease expiry) are bucketed by floor(virtual time).
///
/// Accounting identity, both engines:
///   sends == newly_informed + redundant + losses + dead_receipts
/// for every round r >= 1 once the run has drained (in-flight messages keep
/// their hop-round, so the identity is exact at on_run time even under
/// latency). Round 0 breaks it by design: injections count as first
/// receipts without wire traffic.
struct RoundSample {
  std::uint64_t round = 0;
  /// Members that forwarded this round (the previous round's newly
  /// informed that were alive to act — includes fanout-0 draws).
  std::uint64_t frontier = 0;
  std::uint64_t sends = 0;            ///< Messages put on the wire.
  std::uint64_t newly_informed = 0;   ///< First receipts.
  std::uint64_t redundant = 0;        ///< Duplicate receipts (waste).
  std::uint64_t losses = 0;           ///< Channel losses (loss model).
  std::uint64_t dead_receipts = 0;    ///< Dropped at crashed members.
  std::uint64_t crashes = 0;          ///< Members crashing in this window.
  std::uint64_t joins = 0;            ///< Members (re)joining.
  std::uint64_t lease_expiries = 0;   ///< Lease-expiry re-subscriptions.
  /// Cumulative members informed by the end of this round, source included.
  /// In the flat engine this equals the survivors that received m; the DES
  /// additionally counts members that received m but later crashed.
  std::uint64_t informed = 0;
};

/// Whole-run counters, emitted once when the execution drains.
struct RunSummary {
  std::uint64_t rounds = 0;           ///< Highest round index reached.
  std::uint64_t sends = 0;
  std::uint64_t redundant = 0;
  std::uint64_t losses = 0;
  std::uint64_t dead_receipts = 0;
  std::uint64_t crashes = 0;
  std::uint64_t joins = 0;
  std::uint64_t lease_expiries = 0;
  std::uint64_t informed_final = 0;   ///< Cumulative informed at extinction.
  std::uint64_t nonfailed_final = 0;  ///< Members alive at the end.
};

/// Observation sink. on_round fires once per round in round order; on_run
/// fires once when the execution drains. Implementations must not throw and
/// must not consume engine randomness.
class Probe {
 public:
  virtual ~Probe();
  virtual void on_round(const RoundSample& sample) = 0;
  virtual void on_run(const RunSummary& summary) = 0;
};

/// The standard collector: records every round plus the run summary.
/// Reusable across executions via clear() — the scenario runner keeps one
/// per replication slot so tracing stays allocation-light.
class RoundTrace final : public Probe {
 public:
  void on_round(const RoundSample& sample) override {
    rounds_.push_back(sample);
  }
  void on_run(const RunSummary& summary) override { summary_ = summary; }

  [[nodiscard]] const std::vector<RoundSample>& rounds() const noexcept {
    return rounds_;
  }
  [[nodiscard]] const RunSummary& summary() const noexcept {
    return summary_;
  }

  void clear() noexcept {
    rounds_.clear();
    summary_ = RunSummary{};
  }

 private:
  std::vector<RoundSample> rounds_;
  RunSummary summary_;
};

}  // namespace gossip::obs
