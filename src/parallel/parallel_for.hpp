#pragma once

/// \file parallel_for.hpp
/// Deterministic data-parallel loops over an index range. Each index is a
/// self-contained work item (one Monte Carlo replication); the scheduler
/// never influences results because items write only to their own slot and
/// randomness is derived per-index, not per-thread.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace gossip::parallel {

/// Runs body(i) for every i in [0, count), distributing contiguous chunks
/// over the pool. Blocks until all iterations complete; rethrows the first
/// exception encountered.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// Maps indices to values: out[i] = body(i). Deterministic regardless of the
/// number of workers.
template <typename T>
[[nodiscard]] std::vector<T> parallel_map(
    ThreadPool& pool, std::size_t count,
    const std::function<T(std::size_t)>& body) {
  std::vector<T> out(count);
  parallel_for(pool, count, [&](std::size_t i) { out[i] = body(i); });
  return out;
}

}  // namespace gossip::parallel
