#pragma once

/// \file thread_pool.hpp
/// Fixed-size worker pool with a simple locked task queue. Parallelism in
/// this project is explicit (HPC message-passing style): work units are
/// independent Monte Carlo replications, each with its own derived RNG
/// substream, so results are bit-identical regardless of worker count.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace gossip::parallel {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future resolves with its result (or exception).
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& task) {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit after shutdown");
      }
      queue_.emplace_back([packaged]() { (*packaged)(); });
    }
    cv_.notify_one();
    return future;
  }

  [[nodiscard]] std::size_t num_threads() const noexcept {
    return workers_.size();
  }

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace gossip::parallel
