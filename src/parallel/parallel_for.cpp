#include "parallel/parallel_for.hpp"

#include <algorithm>
#include <future>

namespace gossip::parallel {

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t workers = pool.num_threads();
  if (workers <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  // Static chunking: a few chunks per worker balances load without making
  // task-queue overhead visible.
  const std::size_t chunks = std::min(count, workers * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    if (begin >= count) break;
    const std::size_t end = std::min(count, begin + chunk_size);
    futures.push_back(pool.submit([&body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    }));
  }
  for (auto& f : futures) f.get();  // propagates the first exception
}

}  // namespace gossip::parallel
