#include "rng/alias_table.hpp"

#include <cmath>
#include <stdexcept>

namespace gossip::rng {

AliasTable::AliasTable(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) {
    throw std::invalid_argument("AliasTable requires at least one weight");
  }
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("AliasTable weights must be finite and >= 0");
    }
    total += w;
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument("AliasTable requires positive total weight");
  }

  normalized_.resize(n);
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Vose's stable two-worklist construction.
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    normalized_[i] = weights[i] / total;
    scaled[i] = normalized_[i] * static_cast<double>(n);
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<std::uint32_t>(i));
    } else {
      large.push_back(static_cast<std::uint32_t>(i));
    }
  }

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      small.push_back(l);
    } else {
      large.push_back(l);
    }
  }
  // Remaining buckets are numerically 1.
  for (const std::uint32_t i : large) prob_[i] = 1.0;
  for (const std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t AliasTable::sample(RngStream& rng) const noexcept {
  const std::size_t bucket =
      static_cast<std::size_t>(rng.next_below(prob_.size()));
  return rng.next_double() < prob_[bucket] ? bucket : alias_[bucket];
}

}  // namespace gossip::rng
