#include "rng/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "math/special.hpp"

namespace gossip::rng {

namespace {

/// Knuth's product method: exact, O(mean) per draw.
[[nodiscard]] std::int64_t poisson_knuth(RngStream& rng, double mean) {
  const double limit = std::exp(-mean);
  std::int64_t k = 0;
  double product = rng.next_double_open();
  while (product > limit) {
    ++k;
    product *= rng.next_double_open();
  }
  return k;
}

/// Hörmann (1993) PTRS: transformed rejection with squeeze, O(1) per draw.
/// Valid for mean >= 10.
[[nodiscard]] std::int64_t poisson_ptrs(RngStream& rng, double mean) {
  const double log_mean = std::log(mean);
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);

  while (true) {
    const double u = rng.next_double() - 0.5;
    const double v = rng.next_double_open();
    const double us = 0.5 - std::abs(u);
    const auto k = static_cast<std::int64_t>(
        std::floor((2.0 * a / us + b) * u + mean + 0.43));
    if (us >= 0.07 && v <= v_r) {
      return k;
    }
    if (k < 0 || (us < 0.013 && v > us)) {
      continue;
    }
    const double lhs = std::log(v * inv_alpha / (a / (us * us) + b));
    const double rhs = -mean + static_cast<double>(k) * log_mean -
                       math::log_factorial(k);
    if (lhs <= rhs) {
      return k;
    }
  }
}

}  // namespace

std::int64_t sample_poisson(RngStream& rng, double mean) {
  if (!(mean >= 0.0)) {
    throw std::invalid_argument("sample_poisson requires mean >= 0");
  }
  if (mean == 0.0) return 0;
  if (mean < 10.0) return poisson_knuth(rng, mean);
  return poisson_ptrs(rng, mean);
}

std::int64_t sample_binomial(RngStream& rng, std::int64_t n, double p) {
  if (n < 0) {
    throw std::invalid_argument("sample_binomial requires n >= 0");
  }
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("sample_binomial requires p in [0, 1]");
  }
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  // Exploit symmetry so the geometric-skip loop runs over min(p, 1-p).
  if (p > 0.5) {
    return n - sample_binomial(rng, n, 1.0 - p);
  }
  // Waiting-time method: skip lengths between successes are geometric.
  const double log_q = std::log1p(-p);
  std::int64_t successes = 0;
  std::int64_t position = 0;
  while (true) {
    const double u = rng.next_double_open();
    position += static_cast<std::int64_t>(std::floor(std::log(u) / log_q)) + 1;
    if (position > n) break;
    ++successes;
  }
  return successes;
}

std::int64_t sample_geometric(RngStream& rng, double p) {
  if (!(p > 0.0 && p <= 1.0)) {
    throw std::invalid_argument("sample_geometric requires p in (0, 1]");
  }
  if (p == 1.0) return 0;
  const double u = rng.next_double_open();
  return static_cast<std::int64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::int64_t sample_zipf(RngStream& rng, std::int64_t n, double s) {
  if (n < 1) {
    throw std::invalid_argument("sample_zipf requires n >= 1");
  }
  if (!(s > 0.0)) {
    throw std::invalid_argument("sample_zipf requires s > 0");
  }
  if (n == 1) return 1;
  // Rejection-inversion (Hörmann & Derflinger 1996): invert the integral of
  // the continuous envelope h(x) = x^{-s}, then accept/reject against the
  // discrete pmf. O(1) expected draws for any n and s.
  const auto h = [s](double x) { return std::pow(x, -s); };
  const auto h_integral = [s](double x) {
    const double log_x = std::log(x);
    if (s == 1.0) return log_x;
    return std::expm1((1.0 - s) * log_x) / (1.0 - s);
  };
  const auto h_integral_inverse = [s](double y) {
    if (s == 1.0) return std::exp(y);
    double t = y * (1.0 - s);
    if (t < -1.0) t = -1.0;  // guard rounding below the pole
    return std::exp(std::log1p(t) / (1.0 - s));
  };

  const double h_x1 = h_integral(1.5) - 1.0;
  const double h_n = h_integral(static_cast<double>(n) + 0.5);
  const double threshold_guard =
      2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));

  while (true) {
    const double u = h_n + rng.next_double() * (h_x1 - h_n);
    const double x = h_integral_inverse(u);
    auto k = static_cast<std::int64_t>(std::llround(x));
    k = std::clamp<std::int64_t>(k, 1, n);
    const double kd = static_cast<double>(k);
    // Squeeze: points close enough to k are always accepted.
    if (kd - x <= threshold_guard) {
      return k;
    }
    if (u >= h_integral(kd + 0.5) - h(kd)) {
      return k;
    }
  }
}

std::int64_t sample_uniform_int(RngStream& rng, std::int64_t lo,
                                std::int64_t hi) {
  if (lo > hi) {
    throw std::invalid_argument("sample_uniform_int requires lo <= hi");
  }
  return rng.uniform_int(lo, hi);
}

double sample_exponential(RngStream& rng, double rate) {
  if (!(rate > 0.0)) {
    throw std::invalid_argument("sample_exponential requires rate > 0");
  }
  return -std::log(rng.next_double_open()) / rate;
}

double sample_standard_normal(RngStream& rng) {
  const double u1 = rng.next_double_open();
  const double u2 = rng.next_double();
  constexpr double kTwoPi = 6.283185307179586;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double sample_lognormal(RngStream& rng, double mu, double sigma) {
  if (!(sigma > 0.0)) {
    throw std::invalid_argument("sample_lognormal requires sigma > 0");
  }
  return std::exp(mu + sigma * sample_standard_normal(rng));
}

void sample_distinct_into(RngStream& rng, std::size_t k, std::size_t n,
                          std::vector<std::uint32_t>& out) {
  if (k > n) {
    throw std::invalid_argument("sample_distinct requires k <= n");
  }
  // Floyd's algorithm: k iterations, each drawing one uniform integer. The
  // chosen-so-far set is exactly the contents of `out`, so membership is a
  // linear scan for the small k of the hot paths (fanouts of a handful) and
  // a hash set only for large requests — the scan variant consumes the
  // identical draw sequence and produces identical output, allocation-free.
  out.clear();
  if (out.capacity() < k) out.reserve(k);
  if (k <= 64) {
    for (std::size_t j = n - k; j < n; ++j) {
      const auto t = static_cast<std::uint32_t>(
          rng.next_below(static_cast<std::uint64_t>(j) + 1));
      if (std::find(out.begin(), out.end(), t) == out.end()) {
        out.push_back(t);
      } else {
        out.push_back(static_cast<std::uint32_t>(j));
      }
    }
    return;
  }
  std::unordered_set<std::uint32_t> chosen;
  chosen.reserve(k * 2);
  for (std::size_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::uint32_t>(
        rng.next_below(static_cast<std::uint64_t>(j) + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      const auto jj = static_cast<std::uint32_t>(j);
      chosen.insert(jj);
      out.push_back(jj);
    }
  }
}

std::vector<std::uint32_t> sample_distinct(RngStream& rng, std::size_t k,
                                           std::size_t n) {
  std::vector<std::uint32_t> out;
  sample_distinct_into(rng, k, n, out);
  return out;
}

void sample_distinct_excluding_into(RngStream& rng, std::size_t k,
                                    std::size_t n, std::uint32_t excluded,
                                    std::vector<std::uint32_t>& out) {
  if (n == 0 || excluded >= n) {
    throw std::invalid_argument(
        "sample_distinct_excluding requires excluded < n");
  }
  if (k > n - 1) {
    throw std::invalid_argument(
        "sample_distinct_excluding requires k <= n - 1");
  }
  // Sample from a virtual array of size n-1 that omits `excluded` by
  // remapping indices >= excluded up by one.
  sample_distinct_into(rng, k, n - 1, out);
  for (auto& v : out) {
    if (v >= excluded) ++v;
  }
}

std::vector<std::uint32_t> sample_distinct_excluding(RngStream& rng,
                                                     std::size_t k,
                                                     std::size_t n,
                                                     std::uint32_t excluded) {
  std::vector<std::uint32_t> picks;
  sample_distinct_excluding_into(rng, k, n, excluded, picks);
  return picks;
}

}  // namespace gossip::rng
