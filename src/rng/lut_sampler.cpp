#include "rng/lut_sampler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace gossip::rng {

namespace {

/// The continuous staircase g: [0, 1] -> [0, K+1]: on the u-interval
/// (CDF[k-1], CDF[k]] it ramps linearly from k to k+1, so floor(g(u)) = k
/// with probability exactly p_k. The table stores g on a 257-point grid in
/// 8.8 fixed point; interpolate-then-floor sampling approximates the exact
/// inverse-CDF draw with error confined to grid cells that straddle a CDF
/// boundary.
double staircase(const std::vector<double>& cdf, double u) {
  const std::size_t k_count = cdf.size();
  // Find the first k with cdf[k] > u — the strict inequality makes this the
  // right-continuous generalized inverse: u rides the (cdf[k-1], cdf[k]]
  // interval of outcome k, and zero-mass outcomes (cdf[k] == cdf[k-1]) are
  // never selected, including a zero-mass prefix at u == 0.
  std::size_t lo = 0;
  std::size_t hi = k_count;  // exclusive
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf[mid] > u) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (lo >= k_count) return static_cast<double>(k_count);  // u == 1 edge
  const double below = lo == 0 ? 0.0 : cdf[lo - 1];
  const double mass = cdf[lo] - below;
  const double frac = mass > 0.0 ? (u - below) / mass : 0.0;
  return static_cast<double>(lo) + std::min(std::max(frac, 0.0), 1.0);
}

}  // namespace

Lut88Sampler::Lut88Sampler(const std::vector<double>& weights) {
  if (weights.empty()) {
    throw std::invalid_argument("Lut88Sampler requires a non-empty pmf");
  }
  if (static_cast<std::int64_t>(weights.size()) > kMaxValue + 1) {
    throw std::invalid_argument(
        "Lut88Sampler supports outcomes 0..255 only (8.8 fixed point)");
  }
  double total = 0.0;
  for (const double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument(
          "Lut88Sampler requires finite non-negative weights");
    }
    total += w;
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument("Lut88Sampler requires positive total mass");
  }

  std::vector<double> cdf(weights.size());
  double accum = 0.0;
  for (std::size_t k = 0; k < weights.size(); ++k) {
    accum += weights[k] / total;
    cdf[k] = std::min(accum, 1.0);
  }
  cdf.back() = 1.0;

  max_value_ = static_cast<std::int64_t>(weights.size()) - 1;
  const double scale = static_cast<double>(1u << kFracBits);
  const double grid = static_cast<double>(1u << kIndexBits);
  for (unsigned i = 0; i < kTableEntries; ++i) {
    const double u = static_cast<double>(i) / grid;
    const double g = staircase(cdf, u);
    const double fixed = std::round(g * scale);
    const double cap = static_cast<double>(
        std::numeric_limits<std::uint16_t>::max());
    table_[i] = static_cast<std::uint16_t>(std::min(fixed, cap));
  }
}

double Lut88Sampler::realized_mean() const {
  double sum = 0.0;
  for (std::uint32_t code = 0; code < (1u << 16); ++code) {
    sum += static_cast<double>(sample_code(code));
  }
  return sum / static_cast<double>(1u << 16);
}

std::vector<double> Lut88Sampler::realized_pmf() const {
  std::vector<double> pmf(static_cast<std::size_t>(max_value_) + 1, 0.0);
  const double cell = 1.0 / static_cast<double>(1u << 16);
  for (std::uint32_t code = 0; code < (1u << 16); ++code) {
    pmf[static_cast<std::size_t>(sample_code(code))] += cell;
  }
  return pmf;
}

}  // namespace gossip::rng
