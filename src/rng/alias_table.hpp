#pragma once

/// \file alias_table.hpp
/// Walker/Vose alias method: O(n) construction, O(1) sampling from an
/// arbitrary discrete distribution. This is how EmpiricalDistribution
/// fanouts (core/degree_distribution.hpp) are drawn in the simulator.

#include <cstdint>
#include <span>
#include <vector>

#include "rng/rng_stream.hpp"

namespace gossip::rng {

class AliasTable {
 public:
  /// Builds the table from unnormalized non-negative weights. At least one
  /// weight must be positive. Weight i is the relative probability of
  /// drawing index i.
  explicit AliasTable(std::span<const double> weights);

  /// Draws an index distributed according to the construction weights.
  [[nodiscard]] std::size_t sample(RngStream& rng) const noexcept;

  /// Number of categories.
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

  /// Normalized probability of category i (for inspection/testing).
  [[nodiscard]] double probability(std::size_t i) const noexcept {
    return normalized_[i];
  }

 private:
  std::vector<double> prob_;          // acceptance probability per bucket
  std::vector<std::uint32_t> alias_;  // fallback category per bucket
  std::vector<double> normalized_;    // original weights, normalized
};

}  // namespace gossip::rng
