#pragma once

/// \file lut_sampler.hpp
/// Fixed-point lookup-table sampler for small-support discrete
/// distributions (fanout / degree draws on the hot path). The inverse CDF is
/// quantized into 257 entries of 8.8 fixed point; a draw consumes 16 random
/// bits (8 table-index bits + 8 fractional bits), linearly interpolates two
/// adjacent entries, and floors — one table walk, two multiplies, no
/// floating point and no branches on the distribution's shape. This is the
/// lt_lut idiom of LT-code degree samplers, repurposed for the gossip
/// fanout distributions: after construction, sampling cost is independent
/// of the distribution family.
///
/// The quantization makes the sampled pmf an approximation of the input pmf
/// with per-outcome error bounded by ~2^-8; the protocol's equivalence
/// tests pin the resulting reliability against the exact-sampler reference
/// path within Monte Carlo tolerance, and the sampler itself is
/// deterministic bit for bit.

#include <array>
#include <cstdint>
#include <vector>

#include "rng/rng_stream.hpp"

namespace gossip::rng {

class Lut88Sampler {
 public:
  static constexpr unsigned kIndexBits = 8;
  static constexpr unsigned kFracBits = 8;
  static constexpr unsigned kTableEntries = (1u << kIndexBits) + 1u;
  /// Largest representable outcome: values are stored in 8.8 fixed point,
  /// so the support must fit in 8 integer bits.
  static constexpr std::int64_t kMaxValue = (1 << kIndexBits) - 1;

  /// Builds the table from a (possibly unnormalized, possibly
  /// tail-truncated) pmf: weights[k] ∝ P(X = k). The support
  /// {0, ..., weights.size() - 1} must not exceed kMaxValue + 1 outcomes.
  /// Throws std::invalid_argument on an empty, negative, or zero-mass pmf.
  explicit Lut88Sampler(const std::vector<double>& weights);

  /// Pure fixed-point kernel: maps a 16-bit code in [0, 65536) to an
  /// outcome by interpolating the quantized inverse CDF. Exposed so tests
  /// can sweep the entire code space exhaustively.
  [[nodiscard]] std::int64_t sample_code(std::uint32_t code) const noexcept {
    const std::uint32_t index = (code >> kFracBits) & ((1u << kIndexBits) - 1u);
    const std::uint32_t frac = code & ((1u << kFracBits) - 1u);
    // 8.8 entries, interpolated into 8.16 fixed point, then floored.
    const std::uint32_t lo = table_[index];
    const std::uint32_t hi = table_[index + 1];
    const std::uint32_t l = lo * ((1u << kFracBits) - frac) + hi * frac;
    const auto value =
        static_cast<std::int64_t>(l >> (kFracBits + kFracBits));
    return value < max_value_ ? value : max_value_;
  }

  /// Draws one outcome; consumes exactly one 64-bit draw (top 16 bits).
  [[nodiscard]] std::int64_t sample(RngStream& rng) const noexcept {
    return sample_code(static_cast<std::uint32_t>(rng() >> 48));
  }

  /// Largest outcome the table can produce.
  [[nodiscard]] std::int64_t max_value() const noexcept { return max_value_; }

  /// Mean of the pmf the table actually realizes (exhaustive over the 2^16
  /// code space) — tests compare it against the target distribution's mean.
  [[nodiscard]] double realized_mean() const;

  /// The pmf the table actually realizes, exhaustively enumerated.
  [[nodiscard]] std::vector<double> realized_pmf() const;

 private:
  std::array<std::uint16_t, kTableEntries> table_{};
  std::int64_t max_value_ = 0;
};

}  // namespace gossip::rng
