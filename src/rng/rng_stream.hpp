#pragma once

/// \file rng_stream.hpp
/// RngStream: the uniform-random interface the rest of the project consumes.
/// Wraps xoshiro256** with convenience draws (doubles, bounded integers,
/// Bernoulli) and substream derivation so that a single experiment seed
/// deterministically fans out into per-replication, per-node streams.

#include <cstdint>

#include "rng/xoshiro256.hpp"

namespace gossip::rng {

class RngStream {
 public:
  using result_type = std::uint64_t;

  /// Root stream for a master seed.
  explicit RngStream(std::uint64_t seed = 0) noexcept;

  /// Derives an independent child stream identified by `index`. Children of
  /// the same (seed, index) pair are identical; different indices are
  /// decorrelated by SplitMix64 hashing. Derivation does not advance this
  /// stream, so substream layout is independent of draw order.
  [[nodiscard]] RngStream substream(std::uint64_t index) const noexcept;

  /// Raw 64 random bits (UniformRandomBitGenerator interface).
  result_type operator()() noexcept { return engine_(); }
  [[nodiscard]] static constexpr result_type min() noexcept {
    return Xoshiro256StarStar::min();
  }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return Xoshiro256StarStar::max();
  }

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double next_double() noexcept;

  /// Uniform double in (0, 1]; never returns zero (safe under log()).
  [[nodiscard]] double next_double_open() noexcept;

  /// Uniform integer in [0, bound) via Lemire's nearly-divisionless method.
  /// bound must be > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in the inclusive range [lo, hi].
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept;

  /// True with probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  RngStream(std::uint64_t seed, Xoshiro256StarStar engine) noexcept
      : seed_(seed), engine_(engine) {}

  std::uint64_t seed_;
  Xoshiro256StarStar engine_;
};

}  // namespace gossip::rng
