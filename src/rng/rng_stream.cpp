#include "rng/rng_stream.hpp"

#include "rng/splitmix64.hpp"

namespace gossip::rng {

RngStream::RngStream(std::uint64_t seed) noexcept
    : seed_(seed), engine_(seed) {}

RngStream RngStream::substream(std::uint64_t index) const noexcept {
  const std::uint64_t child_seed = mix_seed(seed_, index);
  return RngStream(child_seed, Xoshiro256StarStar(child_seed));
}

double RngStream::next_double() noexcept {
  // Top 53 bits scaled by 2^-53: uniform on [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double RngStream::next_double_open() noexcept {
  // (u + 1) * 2^-53 lies in (0, 1]; log() of the result is always finite.
  return (static_cast<double>(engine_() >> 11) + 1.0) * 0x1.0p-53;
}

std::uint64_t RngStream::next_below(std::uint64_t bound) noexcept {
  // Lemire (2019), "Fast Random Integer Generation in an Interval".
  __extension__ using u128 = unsigned __int128;
  const std::uint64_t x = engine_();
  u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      const std::uint64_t retry = engine_();
      m = static_cast<u128>(retry) * static_cast<u128>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi >= lo expected
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool RngStream::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

}  // namespace gossip::rng
