#pragma once

/// \file splitmix64.hpp
/// SplitMix64 (Steele, Lea, Flood 2014): a tiny 64-bit mixing generator used
/// solely to expand user seeds into full xoshiro256** state and to derive
/// independent substream seeds. Not used as a simulation RNG itself.

#include <cstdint>

namespace gossip::rng {

/// Advances `state` and returns the next SplitMix64 output.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(
    std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of two words; used to hash (seed, stream index) pairs into
/// substream seeds that are decorrelated from the parent stream.
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t a,
                                               std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2));
  std::uint64_t first = splitmix64_next(s);
  return first ^ splitmix64_next(s);
}

}  // namespace gossip::rng
