#include "rng/xoshiro256.hpp"

#include "rng/splitmix64.hpp"

namespace gossip::rng {

namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64_next(sm);
  }
}

Xoshiro256StarStar::result_type Xoshiro256StarStar::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void Xoshiro256StarStar::apply_jump(const std::uint64_t table[4]) noexcept {
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (int i = 0; i < 4; ++i) {
    for (int b = 0; b < 64; ++b) {
      if (table[i] & (std::uint64_t{1} << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      (*this)();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

void Xoshiro256StarStar::jump() noexcept {
  static constexpr std::uint64_t kJump[4] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  apply_jump(kJump);
}

void Xoshiro256StarStar::long_jump() noexcept {
  static constexpr std::uint64_t kLongJump[4] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  apply_jump(kLongJump);
}

}  // namespace gossip::rng
