#pragma once

/// \file xoshiro256.hpp
/// xoshiro256** 1.0 (Blackman & Vigna 2018): the project's base PRNG.
/// 256 bits of state, period 2^256 - 1, passes BigCrush, and supports
/// jump()/long_jump() for 2^128 / 2^192 non-overlapping subsequences — the
/// property the parallel Monte Carlo driver relies on for reproducible
/// independent worker streams.

#include <cstdint>
#include <limits>

// This header requires C++20 (it relies on a defaulted operator==, which
// older standards reject with an unhelpful diagnostic). Non-CMake consumers
// compiling with -std=c++17 or earlier get this clear error instead.
#if defined(_MSVC_LANG)
static_assert(_MSVC_LANG >= 202002L,
              "gossip/rng/xoshiro256.hpp requires C++20 (/std:c++20)");
#else
static_assert(__cplusplus >= 202002L,
              "gossip/rng/xoshiro256.hpp requires C++20 (-std=c++20)");
#endif

namespace gossip::rng {

class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state by running SplitMix64 from `seed`, per the
  /// reference implementation's recommendation. Any seed (including 0) is
  /// valid; the all-zero state cannot be produced.
  explicit Xoshiro256StarStar(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 random bits.
  result_type operator()() noexcept;

  /// Advances the state by 2^128 steps; 2^128 calls to jump() yield
  /// non-overlapping sequences.
  void jump() noexcept;

  /// Advances the state by 2^192 steps; for coarser stream partitioning.
  void long_jump() noexcept;

  [[nodiscard]] bool operator==(const Xoshiro256StarStar&) const = default;

 private:
  void apply_jump(const std::uint64_t table[4]) noexcept;

  std::uint64_t state_[4];
};

}  // namespace gossip::rng
