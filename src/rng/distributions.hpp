#pragma once

/// \file distributions.hpp
/// Non-uniform samplers over RngStream. These back the fanout distributions
/// of the gossip algorithm (paper Fig. 1 draws f_i ~ P on first receipt) and
/// the statistical machinery of the experiment harness.

#include <cstdint>
#include <vector>

#include "rng/rng_stream.hpp"

namespace gossip::rng {

/// Poisson(mean) variate. Knuth's product method below mean 10, Hörmann's
/// PTRS transformed rejection above (O(1) per draw at any mean). mean >= 0.
[[nodiscard]] std::int64_t sample_poisson(RngStream& rng, double mean);

/// Binomial(n, p) variate by the waiting-time (geometric skip) method,
/// O(n·p) expected time — exact, suitable for the moderate n·p used here.
[[nodiscard]] std::int64_t sample_binomial(RngStream& rng, std::int64_t n,
                                           double p);

/// Geometric variate counting failures before the first success,
/// support {0, 1, 2, ...}, success probability p in (0, 1].
[[nodiscard]] std::int64_t sample_geometric(RngStream& rng, double p);

/// Zipf variate on {1, ..., n} with exponent s > 0, i.e.
/// P(K = k) ∝ k^{-s}, by Devroye's rejection method (O(1) expected).
[[nodiscard]] std::int64_t sample_zipf(RngStream& rng, std::int64_t n,
                                       double s);

/// Uniform variate on the inclusive integer range [lo, hi].
[[nodiscard]] std::int64_t sample_uniform_int(RngStream& rng, std::int64_t lo,
                                              std::int64_t hi);

/// Exponential variate with the given rate (> 0).
[[nodiscard]] double sample_exponential(RngStream& rng, double rate);

/// Standard normal variate (Box-Muller; one value per call, no caching so
/// streams stay stateless beyond the engine).
[[nodiscard]] double sample_standard_normal(RngStream& rng);

/// Lognormal variate with the given log-space mu and sigma (> 0).
[[nodiscard]] double sample_lognormal(RngStream& rng, double mu, double sigma);

/// Draws k distinct indices uniformly at random from {0, ..., n-1} by
/// Floyd's algorithm (O(k) expected). Requires 0 <= k <= n. Order of the
/// returned indices is unspecified.
[[nodiscard]] std::vector<std::uint32_t> sample_distinct(RngStream& rng,
                                                         std::size_t k,
                                                         std::size_t n);

/// As sample_distinct, but never returns `excluded` (a node does not gossip
/// to itself). Requires 0 <= k <= n - 1 and excluded < n.
[[nodiscard]] std::vector<std::uint32_t> sample_distinct_excluding(
    RngStream& rng, std::size_t k, std::size_t n, std::uint32_t excluded);

/// Allocation-free variants for the hot paths: identical draw sequence and
/// output as the returning forms, but the result is written into `out`
/// (cleared first, capacity reused). Callers keep one scratch vector alive
/// across calls so the steady-state loop performs no heap allocation.
void sample_distinct_into(RngStream& rng, std::size_t k, std::size_t n,
                          std::vector<std::uint32_t>& out);
void sample_distinct_excluding_into(RngStream& rng, std::size_t k,
                                    std::size_t n, std::uint32_t excluded,
                                    std::vector<std::uint32_t>& out);

}  // namespace gossip::rng
