#pragma once

/// \file reachability.hpp
/// Directed reachability (BFS) from a source node. One gossip execution
/// delivers the message exactly to the set of nodes reachable from the
/// source through nodes that actually forward — failed nodes receive but do
/// not expand, which is what the `expandable` predicate encodes.

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/digraph.hpp"

namespace gossip::graph {

struct ReachResult {
  std::vector<std::uint8_t> reached;  ///< 1 iff the node received m.
  std::uint32_t reached_count = 0;    ///< Total reached (including source).

  [[nodiscard]] bool is_reached(NodeId v) const noexcept {
    return reached[v] != 0;
  }
};

/// BFS from `source` expanding every reached node.
[[nodiscard]] ReachResult directed_reach(const Digraph& g, NodeId source);

/// BFS from `source` expanding a reached node v only when expandable(v) is
/// true. The source is always expanded (the paper assumes it never fails).
/// Nodes that are reached but not expandable still count as reached — they
/// received the message, they just never forwarded it.
[[nodiscard]] ReachResult directed_reach_if(
    const Digraph& g, NodeId source,
    const std::function<bool(NodeId)>& expandable);

}  // namespace gossip::graph
