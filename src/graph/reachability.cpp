#include "graph/reachability.hpp"

#include <stdexcept>

namespace gossip::graph {

namespace {

ReachResult reach_impl(const Digraph& g, NodeId source,
                       const std::function<bool(NodeId)>* expandable) {
  if (source >= g.num_nodes()) {
    throw std::out_of_range("reachability source out of range");
  }
  ReachResult result;
  result.reached.assign(g.num_nodes(), 0);
  std::vector<NodeId> frontier;
  frontier.reserve(64);
  result.reached[source] = 1;
  result.reached_count = 1;
  frontier.push_back(source);

  while (!frontier.empty()) {
    const NodeId v = frontier.back();
    frontier.pop_back();
    // The source always forwards; others only if the predicate allows.
    if (expandable != nullptr && v != source && !(*expandable)(v)) {
      continue;
    }
    for (const NodeId w : g.out_neighbors(v)) {
      if (!result.reached[w]) {
        result.reached[w] = 1;
        ++result.reached_count;
        frontier.push_back(w);
      }
    }
  }
  return result;
}

}  // namespace

ReachResult directed_reach(const Digraph& g, NodeId source) {
  return reach_impl(g, source, nullptr);
}

ReachResult directed_reach_if(const Digraph& g, NodeId source,
                              const std::function<bool(NodeId)>& expandable) {
  return reach_impl(g, source, &expandable);
}

}  // namespace gossip::graph
