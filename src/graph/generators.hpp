#pragma once

/// \file generators.hpp
/// Random graph generators:
///   * make_gossip_digraph — the digraph induced by one execution of the
///     paper's Fig. 1 algorithm under crash failures (the Monte Carlo
///     workhorse behind the Figs. 4-7 reproductions);
///   * configuration_model — undirected graph with a prescribed degree
///     sequence (validates the generalized-random-graph analysis directly);
///   * erdos_renyi — classic G(n, p), directed or undirected;
///   * barabasi_albert — scale-free preferential attachment (heavy-tailed
///     degrees, the topology regime where uniform-view reliability models
///     are known to diverge);
///   * wan_hierarchy — two-level clustered WAN: dense intra-cluster
///     subgraphs joined by a configurable inter-cluster edge budget.

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/digraph.hpp"
#include "rng/rng_stream.hpp"

namespace gossip::graph {

/// Draws one fanout value; plugged in from core::DegreeDistribution so the
/// graph layer stays independent of the modeling layer.
using DegreeSampler = std::function<std::int64_t(rng::RngStream&)>;

struct GossipGraphParams {
  std::uint32_t num_nodes = 0;
  NodeId source = 0;
  /// Non-failed member ratio q: each non-source node is alive independently
  /// with this probability. The source is always alive (paper Section 3).
  double alive_probability = 1.0;
  /// Probability an emitted gossip message is actually delivered; 1 - loss.
  /// The paper assumes 1.0; the message-loss ablation lowers it.
  double edge_keep_probability = 1.0;
};

struct GossipGraph {
  Digraph graph;                     ///< Out-edges = chosen gossip targets.
  std::vector<std::uint8_t> alive;   ///< 1 = non-failed member.
  NodeId source = 0;
  std::uint32_t alive_count = 0;     ///< Number of non-failed members.
};

/// Samples the directed graph of one gossip execution: every *alive* node
/// (crashed members never forward, whether they crashed before receiving or
/// after receiving but before forwarding — the two cases of Section 4.1)
/// draws f ~ sampler and f distinct uniform targets excluding itself.
/// Fanouts larger than n-1 are clamped to n-1 (a node cannot address more
/// distinct members than exist).
[[nodiscard]] GossipGraph make_gossip_digraph(const GossipGraphParams& params,
                                              const DegreeSampler& sampler,
                                              rng::RngStream& rng);

/// Undirected configuration model on a degree sequence (sum must be even;
/// pass exact sequence). Stub-pairing; self-loops and duplicate pairings are
/// discarded, the standard erased-configuration-model simplification whose
/// effect vanishes as n grows. Each undirected edge is stored in both
/// directions of the returned Digraph.
[[nodiscard]] Digraph configuration_model(
    const std::vector<std::uint32_t>& degrees, rng::RngStream& rng);

/// Samples an i.i.d. degree sequence from `sampler` (clamped to [0, n-1]),
/// adjusting the last node's degree by +-1 if needed to make the sum even,
/// then runs configuration_model.
[[nodiscard]] Digraph configuration_model_from_sampler(
    std::uint32_t num_nodes, const DegreeSampler& sampler,
    rng::RngStream& rng);

/// G(n, p): every ordered pair (directed=true) or unordered pair
/// (directed=false, stored in both directions) is an edge independently
/// with probability p. Uses geometric skipping, O(n + E) expected.
[[nodiscard]] Digraph erdos_renyi(std::uint32_t num_nodes, double p,
                                  rng::RngStream& rng, bool directed = true);

/// Barabási–Albert scale-free graph: nodes 0..m-1 seed the graph, node m
/// attaches to all of them, and every later node attaches to `m` DISTINCT
/// existing nodes drawn preferentially by degree (repeated-endpoint list,
/// O(E) expected). Undirected; every edge is stored in both directions.
/// Exactly m * (num_nodes - m) edges; requires 1 <= m < num_nodes.
[[nodiscard]] Digraph barabasi_albert(std::uint32_t num_nodes, std::uint32_t m,
                                      rng::RngStream& rng);

struct WanParams {
  std::uint32_t num_nodes = 0;
  /// Number of clusters (>= 2); nodes are partitioned into contiguous
  /// blocks of near-equal size (id / block size), so downstream consumers
  /// (regional-outage schedules) can recover the partition without carrying
  /// the assignment around. Requires num_nodes >= 2 * clusters.
  std::uint32_t clusters = 0;
  /// Total inter-cluster edge budget (>= clusters). The first `clusters`
  /// edges form a ring over the clusters — the generator's connectivity
  /// guarantee — and the remainder joins uniformly random cluster pairs.
  std::uint64_t bridge_edges = 0;
  /// Extra intra-cluster edge probability: beyond the random cycle that
  /// keeps each cluster connected, every intra-cluster pair is an edge
  /// independently with this probability. 0 = cycle-only clusters.
  double intra_probability = 0.0;
};

struct WanGraph {
  Digraph graph;                          ///< Undirected, both directions.
  std::vector<std::uint32_t> cluster_of;  ///< Contiguous cluster blocks.
  std::uint32_t num_clusters = 0;
  std::uint64_t intra_edges = 0;   ///< Realized intra-cluster edges.
  std::uint64_t bridge_count = 0;  ///< Realized inter-cluster edges (a few
                                   ///< below the budget when dedup rejects
                                   ///< exhaust their attempt bound).
};

/// Two-level WAN hierarchy: each contiguous cluster gets a random
/// Hamiltonian cycle (so every cluster is internally connected) plus
/// ER(intra_probability) extra edges; clusters are joined by a bridge ring
/// plus the remaining random inter-cluster budget. The result is connected
/// by construction. Undirected; every edge is stored in both directions.
[[nodiscard]] WanGraph wan_hierarchy(const WanParams& params,
                                     rng::RngStream& rng);

}  // namespace gossip::graph
