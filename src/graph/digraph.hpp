#pragma once

/// \file digraph.hpp
/// Compact directed graph in CSR (compressed sparse row) form. One execution
/// of the gossip algorithm induces exactly such a graph — node i's out-edges
/// are the f_i targets it chose — so this is the central data structure of
/// the graph-based Monte Carlo path.

#include <cstdint>
#include <span>
#include <vector>

namespace gossip::graph {

using NodeId = std::uint32_t;

class Digraph {
 public:
  Digraph() = default;

  /// Builds from explicit CSR arrays. `offsets` has num_nodes + 1 entries;
  /// targets of node v are targets[offsets[v] .. offsets[v+1]).
  Digraph(std::vector<std::uint64_t> offsets, std::vector<NodeId> targets);

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return offsets_.empty() ? 0 : static_cast<NodeId>(offsets_.size() - 1);
  }
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return targets_.size();
  }
  [[nodiscard]] std::uint32_t out_degree(NodeId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }
  [[nodiscard]] std::span<const NodeId> out_neighbors(NodeId v) const {
    return {targets_.data() + offsets_[v],
            targets_.data() + offsets_[v + 1]};
  }

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<NodeId> targets_;
};

/// Incremental edge-list accumulator; build() converts to CSR in O(V + E).
class DigraphBuilder {
 public:
  explicit DigraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  /// Appends a directed edge. Endpoints must be < num_nodes.
  void add_edge(NodeId from, NodeId to);

  /// Reserves space for an expected number of edges.
  void reserve(std::size_t num_edges);

  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return froms_.size(); }

  /// Consumes the builder and produces the CSR graph (counting sort by
  /// source; preserves insertion order within a node's edge list).
  [[nodiscard]] Digraph build() &&;

 private:
  NodeId num_nodes_;
  std::vector<NodeId> froms_;
  std::vector<NodeId> tos_;
};

}  // namespace gossip::graph
