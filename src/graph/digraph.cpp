#include "graph/digraph.hpp"

#include <stdexcept>

namespace gossip::graph {

Digraph::Digraph(std::vector<std::uint64_t> offsets,
                 std::vector<NodeId> targets)
    : offsets_(std::move(offsets)), targets_(std::move(targets)) {
  if (offsets_.empty()) {
    throw std::invalid_argument("Digraph offsets must have >= 1 entry");
  }
  if (offsets_.front() != 0 || offsets_.back() != targets_.size()) {
    throw std::invalid_argument("Digraph CSR offsets are inconsistent");
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    if (offsets_[i] < offsets_[i - 1]) {
      throw std::invalid_argument("Digraph CSR offsets must be monotone");
    }
  }
}

void DigraphBuilder::add_edge(NodeId from, NodeId to) {
  if (from >= num_nodes_ || to >= num_nodes_) {
    throw std::out_of_range("DigraphBuilder edge endpoint out of range");
  }
  froms_.push_back(from);
  tos_.push_back(to);
}

void DigraphBuilder::reserve(std::size_t num_edges) {
  froms_.reserve(num_edges);
  tos_.reserve(num_edges);
}

Digraph DigraphBuilder::build() && {
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(num_nodes_) + 1,
                                     0);
  for (const NodeId f : froms_) {
    ++offsets[static_cast<std::size_t>(f) + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    offsets[i] += offsets[i - 1];
  }
  std::vector<NodeId> targets(froms_.size());
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t i = 0; i < froms_.size(); ++i) {
    targets[cursor[froms_[i]]++] = tos_[i];
  }
  return Digraph(std::move(offsets), std::move(targets));
}

}  // namespace gossip::graph
