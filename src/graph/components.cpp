#include "graph/components.hpp"

#include <numeric>
#include <stdexcept>

namespace gossip::graph {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), size_(n, 1), num_components_(n) {
  std::iota(parent_.begin(), parent_.end(), NodeId{0});
}

NodeId UnionFind::find(NodeId v) noexcept {
  while (parent_[v] != v) {
    parent_[v] = parent_[parent_[v]];  // path halving
    v = parent_[v];
  }
  return v;
}

bool UnionFind::unite(NodeId a, NodeId b) noexcept {
  NodeId ra = find(a);
  NodeId rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_components_;
  return true;
}

std::uint32_t UnionFind::size_of(NodeId v) noexcept { return size_[find(v)]; }

namespace {

ComponentsResult components_impl(const Digraph& g,
                                 const std::vector<std::uint8_t>* include) {
  const NodeId n = g.num_nodes();
  UnionFind uf(n);
  const auto included = [&](NodeId v) {
    return include == nullptr || (*include)[v] != 0;
  };
  for (NodeId v = 0; v < n; ++v) {
    if (!included(v)) continue;
    for (const NodeId w : g.out_neighbors(v)) {
      if (included(w)) uf.unite(v, w);
    }
  }

  ComponentsResult result;
  result.label.assign(n, ComponentsResult::kNoComponent);
  std::vector<std::uint32_t> root_to_id(n, ComponentsResult::kNoComponent);
  std::uint32_t next_id = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (!included(v)) continue;
    const NodeId root = uf.find(v);
    if (root_to_id[root] == ComponentsResult::kNoComponent) {
      root_to_id[root] = next_id++;
      result.sizes.push_back(0);
    }
    result.label[v] = root_to_id[root];
    ++result.sizes[root_to_id[root]];
  }
  for (std::uint32_t id = 0; id < result.sizes.size(); ++id) {
    if (result.sizes[id] > result.giant_size) {
      result.giant_size = result.sizes[id];
      result.giant_id = id;
    }
  }
  return result;
}

}  // namespace

ComponentsResult undirected_components(const Digraph& g) {
  return components_impl(g, nullptr);
}

ComponentsResult undirected_components(
    const Digraph& g, const std::vector<std::uint8_t>& include) {
  if (include.size() != g.num_nodes()) {
    throw std::invalid_argument("include mask size must equal node count");
  }
  return components_impl(g, &include);
}

}  // namespace gossip::graph
