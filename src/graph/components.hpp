#pragma once

/// \file components.hpp
/// Connected components of the undirected view of a digraph: union-find plus
/// giant-component extraction. The paper's analytical reliability is the
/// relative size of the giant component (Section 4.2); this module measures
/// the same quantity on sampled graphs.

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace gossip::graph {

/// Disjoint-set forest with union by size and path halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  [[nodiscard]] NodeId find(NodeId v) noexcept;

  /// Merges the sets of a and b; returns true iff they were distinct.
  bool unite(NodeId a, NodeId b) noexcept;

  /// Size of the set containing v.
  [[nodiscard]] std::uint32_t size_of(NodeId v) noexcept;

  [[nodiscard]] std::size_t num_components() const noexcept {
    return num_components_;
  }

 private:
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t num_components_;
};

/// Component labeling of the undirected view of `g`, optionally restricted
/// to nodes where include[v] != 0 (site percolation: failed nodes and their
/// edges are removed). Excluded nodes receive label kNoComponent.
struct ComponentsResult {
  static constexpr std::uint32_t kNoComponent = 0xffffffffu;
  std::vector<std::uint32_t> label;  ///< Component id per node.
  std::vector<std::uint32_t> sizes;  ///< Size per component id.
  std::uint32_t giant_id = kNoComponent;   ///< Largest component's id.
  std::uint32_t giant_size = 0;            ///< Its node count.

  [[nodiscard]] bool in_giant(NodeId v) const noexcept {
    return label[v] == giant_id && giant_id != kNoComponent;
  }
};

/// Components over all nodes.
[[nodiscard]] ComponentsResult undirected_components(const Digraph& g);

/// Components restricted to included nodes; an edge survives only if both
/// endpoints are included.
[[nodiscard]] ComponentsResult undirected_components(
    const Digraph& g, const std::vector<std::uint8_t>& include);

}  // namespace gossip::graph
