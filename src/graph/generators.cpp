#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "rng/distributions.hpp"

namespace gossip::graph {

GossipGraph make_gossip_digraph(const GossipGraphParams& params,
                                const DegreeSampler& sampler,
                                rng::RngStream& rng) {
  const std::uint32_t n = params.num_nodes;
  if (n == 0) {
    throw std::invalid_argument("make_gossip_digraph requires num_nodes > 0");
  }
  if (params.source >= n) {
    throw std::out_of_range("make_gossip_digraph source out of range");
  }
  if (!(params.alive_probability >= 0.0 && params.alive_probability <= 1.0)) {
    throw std::invalid_argument("alive_probability must be in [0, 1]");
  }
  if (!(params.edge_keep_probability >= 0.0 &&
        params.edge_keep_probability <= 1.0)) {
    throw std::invalid_argument("edge_keep_probability must be in [0, 1]");
  }

  GossipGraph out;
  out.source = params.source;
  out.alive.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    const bool alive =
        v == params.source || rng.bernoulli(params.alive_probability);
    out.alive[v] = alive ? 1 : 0;
    if (alive) ++out.alive_count;
  }

  DigraphBuilder builder(n);
  for (NodeId v = 0; v < n; ++v) {
    if (!out.alive[v]) continue;  // crashed members never gossip
    std::int64_t fanout = sampler(rng);
    if (fanout < 0) {
      throw std::domain_error("degree sampler returned a negative fanout");
    }
    fanout = std::min<std::int64_t>(fanout, static_cast<std::int64_t>(n) - 1);
    if (fanout == 0) continue;
    const auto targets = rng::sample_distinct_excluding(
        rng, static_cast<std::size_t>(fanout), n, v);
    for (const NodeId t : targets) {
      if (params.edge_keep_probability >= 1.0 ||
          rng.bernoulli(params.edge_keep_probability)) {
        builder.add_edge(v, t);
      }
    }
  }
  out.graph = std::move(builder).build();
  return out;
}

Digraph configuration_model(const std::vector<std::uint32_t>& degrees,
                            rng::RngStream& rng) {
  const auto n = static_cast<std::uint32_t>(degrees.size());
  if (n == 0) {
    throw std::invalid_argument("configuration_model requires >= 1 node");
  }
  std::uint64_t total = 0;
  std::vector<NodeId> stubs;
  for (NodeId v = 0; v < n; ++v) {
    total += degrees[v];
  }
  if (total % 2 != 0) {
    throw std::invalid_argument("configuration_model degree sum must be even");
  }
  stubs.reserve(total);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t i = 0; i < degrees[v]; ++i) stubs.push_back(v);
  }

  // Fisher-Yates shuffle, then pair consecutive stubs.
  for (std::size_t i = stubs.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
    std::swap(stubs[i - 1], stubs[j]);
  }

  DigraphBuilder builder(n);
  builder.reserve(stubs.size());
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(stubs.size());
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    const NodeId a = stubs[i];
    const NodeId b = stubs[i + 1];
    if (a == b) continue;  // erased configuration model: drop self-loops
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
    if (!seen.insert(key).second) continue;  // drop duplicate edges
    builder.add_edge(a, b);
    builder.add_edge(b, a);
  }
  return std::move(builder).build();
}

Digraph configuration_model_from_sampler(std::uint32_t num_nodes,
                                         const DegreeSampler& sampler,
                                         rng::RngStream& rng) {
  if (num_nodes == 0) {
    throw std::invalid_argument(
        "configuration_model_from_sampler requires >= 1 node");
  }
  std::vector<std::uint32_t> degrees(num_nodes);
  std::uint64_t total = 0;
  for (auto& d : degrees) {
    std::int64_t k = sampler(rng);
    if (k < 0) {
      throw std::domain_error("degree sampler returned a negative degree");
    }
    k = std::min<std::int64_t>(k, static_cast<std::int64_t>(num_nodes) - 1);
    d = static_cast<std::uint32_t>(k);
    total += d;
  }
  if (total % 2 != 0) {
    // Adjust one node by a single stub to even out the total; bias is O(1/n).
    if (degrees[num_nodes - 1] + 1 <= num_nodes - 1) {
      ++degrees[num_nodes - 1];
    } else {
      --degrees[num_nodes - 1];
    }
  }
  return configuration_model(degrees, rng);
}

Digraph erdos_renyi(std::uint32_t num_nodes, double p, rng::RngStream& rng,
                    bool directed) {
  if (num_nodes == 0) {
    throw std::invalid_argument("erdos_renyi requires >= 1 node");
  }
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("erdos_renyi requires p in [0, 1]");
  }
  DigraphBuilder builder(num_nodes);
  if (p == 0.0) return std::move(builder).build();

  const std::uint64_t n = num_nodes;
  // Iterate over the flattened pair index with geometric skips between
  // successive edges (Batagelj & Brandes 2005).
  const std::uint64_t num_pairs =
      directed ? n * (n - 1) : n * (n - 1) / 2;
  const auto emit = [&](std::uint64_t pair_index) {
    if (directed) {
      const std::uint64_t row = pair_index / (n - 1);
      std::uint64_t col = pair_index % (n - 1);
      if (col >= row) ++col;  // skip the diagonal
      builder.add_edge(static_cast<NodeId>(row), static_cast<NodeId>(col));
    } else {
      // Unrank the unordered pair index into (a < b).
      const double idx = static_cast<double>(pair_index);
      auto a = static_cast<std::uint64_t>(
          std::floor((2.0 * static_cast<double>(n) - 1.0 -
                      std::sqrt((2.0 * static_cast<double>(n) - 1.0) *
                                    (2.0 * static_cast<double>(n) - 1.0) -
                                8.0 * idx)) /
                     2.0));
      // Guard floating-point unranking at block boundaries.
      auto row_start = [&](std::uint64_t r) {
        return r * n - r * (r + 1) / 2;
      };
      while (a > 0 && row_start(a) > pair_index) --a;
      while (row_start(a + 1) <= pair_index) ++a;
      const std::uint64_t b = a + 1 + (pair_index - row_start(a));
      builder.add_edge(static_cast<NodeId>(a), static_cast<NodeId>(b));
      builder.add_edge(static_cast<NodeId>(b), static_cast<NodeId>(a));
    }
  };

  if (p >= 1.0) {
    for (std::uint64_t i = 0; i < num_pairs; ++i) emit(i);
    return std::move(builder).build();
  }

  const double log_q = std::log1p(-p);
  std::uint64_t i = 0;
  while (true) {
    const double u = rng.next_double_open();
    const double skip = std::floor(std::log(u) / log_q);
    if (skip >= static_cast<double>(num_pairs - i)) break;
    i += static_cast<std::uint64_t>(skip);
    emit(i);
    ++i;
    if (i >= num_pairs) break;
  }
  return std::move(builder).build();
}

Digraph barabasi_albert(std::uint32_t num_nodes, std::uint32_t m,
                        rng::RngStream& rng) {
  if (m == 0) {
    throw std::invalid_argument("barabasi_albert requires m >= 1");
  }
  if (num_nodes <= m) {
    throw std::invalid_argument("barabasi_albert requires num_nodes > m");
  }

  // Repeated-endpoint list: each stored edge contributes both endpoints, so a
  // uniform draw from `endpoints` is exactly degree-proportional.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2ULL * m * (num_nodes - m));
  DigraphBuilder builder(num_nodes);
  builder.reserve(2ULL * m * (num_nodes - m));

  std::vector<NodeId> chosen;
  chosen.reserve(m);
  const auto attach = [&](NodeId v, NodeId t) {
    builder.add_edge(v, t);
    builder.add_edge(t, v);
    endpoints.push_back(v);
    endpoints.push_back(t);
  };

  // Node m seeds the preferential process by attaching to all of 0..m-1
  // (the isolated seed nodes have degree zero, so they must be wired
  // deterministically before degree-proportional draws are meaningful).
  for (NodeId t = 0; t < m; ++t) attach(m, t);

  for (NodeId v = m + 1; v < num_nodes; ++v) {
    chosen.clear();
    while (chosen.size() < m) {
      const auto pick = static_cast<std::size_t>(
          rng.next_below(endpoints.size()));
      const NodeId t = endpoints[pick];
      if (std::find(chosen.begin(), chosen.end(), t) != chosen.end()) continue;
      chosen.push_back(t);
    }
    for (const NodeId t : chosen) attach(v, t);
  }
  return std::move(builder).build();
}

WanGraph wan_hierarchy(const WanParams& params, rng::RngStream& rng) {
  const std::uint32_t n = params.num_nodes;
  const std::uint32_t k = params.clusters;
  if (k < 2) {
    throw std::invalid_argument("wan_hierarchy requires clusters >= 2");
  }
  if (n < 2 * k) {
    throw std::invalid_argument(
        "wan_hierarchy requires num_nodes >= 2 * clusters");
  }
  if (params.bridge_edges < k) {
    throw std::invalid_argument(
        "wan_hierarchy requires bridge_edges >= clusters (bridge ring)");
  }
  if (!(params.intra_probability >= 0.0 && params.intra_probability <= 1.0)) {
    throw std::invalid_argument(
        "wan_hierarchy requires intra_probability in [0, 1]");
  }

  WanGraph out;
  out.num_clusters = k;
  out.cluster_of.resize(n);
  // Contiguous near-equal blocks: the first (n mod k) clusters get one extra
  // node, so cluster boundaries are recoverable from (n, k) alone.
  const std::uint32_t base = n / k;
  const std::uint32_t extra = n % k;
  std::vector<std::uint32_t> start(k + 1);
  for (std::uint32_t c = 0; c < k; ++c) {
    start[c + 1] = start[c] + base + (c < extra ? 1 : 0);
  }
  for (std::uint32_t c = 0; c < k; ++c) {
    for (std::uint32_t v = start[c]; v < start[c + 1]; ++v) {
      out.cluster_of[v] = c;
    }
  }

  DigraphBuilder builder(n);
  std::unordered_set<std::uint64_t> seen;
  const auto undirected_key = [](NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
  };
  const auto add_undirected = [&](NodeId a, NodeId b) {
    if (a == b || !seen.insert(undirected_key(a, b)).second) return false;
    builder.add_edge(a, b);
    builder.add_edge(b, a);
    return true;
  };

  std::vector<NodeId> perm;
  for (std::uint32_t c = 0; c < k; ++c) {
    const std::uint32_t lo = start[c];
    const std::uint32_t size = start[c + 1] - lo;
    // Random Hamiltonian cycle through the cluster: internal connectivity is
    // guaranteed regardless of intra_probability.
    perm.resize(size);
    for (std::uint32_t i = 0; i < size; ++i) perm[i] = lo + i;
    for (std::size_t i = size; i > 1; --i) {
      const auto j = static_cast<std::size_t>(rng.next_below(i));
      std::swap(perm[i - 1], perm[j]);
    }
    for (std::uint32_t i = 0; i < size; ++i) {
      if (add_undirected(perm[i], perm[(i + 1) % size])) ++out.intra_edges;
    }
    if (params.intra_probability > 0.0 && size > 2) {
      const Digraph ext =
          erdos_renyi(size, params.intra_probability, rng, /*directed=*/false);
      for (NodeId a = 0; a < size; ++a) {
        for (const NodeId b : ext.out_neighbors(a)) {
          if (a < b && add_undirected(lo + a, lo + b)) ++out.intra_edges;
        }
      }
    }
  }

  // Bridge ring first (cluster c <-> cluster c+1 mod k): keeps the whole
  // graph connected even at the minimum budget of exactly `clusters` edges.
  const auto random_member = [&](std::uint32_t c) {
    const std::uint32_t size = start[c + 1] - start[c];
    return static_cast<NodeId>(start[c] + rng.next_below(size));
  };
  for (std::uint32_t c = 0; c < k; ++c) {
    const std::uint32_t d = (c + 1) % k;
    // A fresh endpoint pair is drawn on collision; with >= 2 nodes per
    // cluster the pair space is at least 4, so the bound is generous.
    for (int attempt = 0; attempt < 64; ++attempt) {
      if (add_undirected(random_member(c), random_member(d))) {
        ++out.bridge_count;
        break;
      }
    }
  }
  for (std::uint64_t e = out.bridge_count; e < params.bridge_edges; ++e) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto c = static_cast<std::uint32_t>(rng.next_below(k));
      auto d = static_cast<std::uint32_t>(rng.next_below(k - 1));
      if (d >= c) ++d;
      if (add_undirected(random_member(c), random_member(d))) {
        ++out.bridge_count;
        break;
      }
    }
  }

  out.graph = std::move(builder).build();
  return out;
}

}  // namespace gossip::graph
