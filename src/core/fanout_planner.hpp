#pragma once

/// \file fanout_planner.hpp
/// Protocol provisioning built on the paper's model: given a reliability
/// target, an assumed failure level, and a success requirement, compute the
/// Poisson mean fanout (Eq. 12) and execution count (Eq. 6) that achieve
/// them — the workflow the paper's Figs. 2-3 illustrate.

#include <cstdint>

namespace gossip::core {

struct PlanRequest {
  /// Desired one-execution reliability R(q, Po(z)), in (0, 1).
  double target_reliability = 0.99;
  /// Desired probability that gossiping succeeds (every non-failed member
  /// reached at least once across repeated executions), in [0, 1).
  double target_success = 0.999;
  /// Assumed non-failed member ratio q, in (0, 1].
  double nonfailed_ratio = 1.0;
};

struct GossipPlan {
  double mean_fanout = 0.0;          ///< z from Eq. (12).
  std::int64_t executions = 0;       ///< t from Eq. (6).
  double critical_q = 0.0;           ///< 1/z at the chosen fanout.
  /// Failure headroom: how much further q could drop before the giant
  /// component disappears (q - q_c).
  double failure_margin = 0.0;
  double predicted_reliability = 0.0;  ///< Round-trip check via Eq. (11).
  double predicted_success = 0.0;      ///< Eq. (5) at the chosen t.
};

/// Plans Poisson gossiping parameters for the request. Throws on infeasible
/// or out-of-range inputs.
[[nodiscard]] GossipPlan plan_poisson_gossip(const PlanRequest& request);

/// Maximum failed-node ratio (1 - q) tolerable while keeping reliability at
/// least `target_reliability` with mean fanout `mean_fanout` (the paper's
/// headline question: the maximum ratio of failed nodes that can be
/// tolerated without reducing the required reliability).
[[nodiscard]] double max_tolerable_failure_ratio(double mean_fanout,
                                                 double target_reliability);

}  // namespace gossip::core
