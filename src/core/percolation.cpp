#include "core/percolation.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "math/series.hpp"

namespace gossip::core {

double critical_nonfailed_ratio(const GeneratingFunction& gf) {
  const double excess = gf.mean_excess_degree();
  if (!(excess > 0.0)) {
    return std::numeric_limits<double>::infinity();
  }
  return 1.0 / excess;
}

PercolationResult analyze_site_percolation(const GeneratingFunction& gf,
                                           double q,
                                           const PercolationOptions& opts) {
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("analyze_site_percolation requires q in [0,1]");
  }

  PercolationResult result;
  result.q = q;
  result.critical_q = critical_nonfailed_ratio(gf);
  result.supercritical = q > result.critical_q;

  if (q == 0.0 || !(gf.mean() > 0.0)) {
    // Nothing is occupied, or nobody ever gossips: no spread at all.
    result.u = 1.0;
    result.mean_component_size = q;  // Eq. (2) with G0'(1) = 0 or q = 0
    return result;
  }

  // Solve u = 1 - q + q*G1(u) by monotone fixed-point iteration from u = 0.
  // g(u) is increasing and convex on [0,1] with g(1) = 1, so iterating from
  // 0 converges to the smallest fixed point: u* < 1 iff supercritical.
  double u = 0.0;
  for (int i = 0; i < opts.max_iterations; ++i) {
    const double next = 1.0 - q + q * gf.g1(u);
    if (std::abs(next - u) <= opts.tolerance) {
      u = next;
      break;
    }
    u = next;
  }
  result.u = u;

  // S = F0(1) - F0(u) = q (1 - G0(u)): fraction of all nodes in the giant
  // component. The paper's reliability divides by q.
  const double giant_all = q * (1.0 - gf.g0(u));
  result.giant_fraction_all = giant_all < opts.tolerance * 10 ? 0.0 : giant_all;
  result.reliability = result.giant_fraction_all / q;

  // Mean finite-component size, Eq. (2). Below the transition this is the
  // mean size of the component of a random node; it diverges at q_c.
  const double denom = 1.0 - q * gf.mean_excess_degree();
  if (denom <= 0.0) {
    result.mean_component_size = std::numeric_limits<double>::infinity();
  } else {
    result.mean_component_size = q * (1.0 + q * gf.mean() / denom);
  }
  return result;
}

OccupancyPercolationResult analyze_occupancy_percolation(
    const GeneratingFunction& gf, const OccupancyFunction& occupancy,
    const PercolationOptions& opts) {
  const auto& pmf = gf.pmf();
  // Materialize the thinned coefficient vector f_k = p_k q_k (Eq. (1)).
  std::vector<double> thinned(pmf.size());
  for (std::size_t k = 0; k < pmf.size(); ++k) {
    const double qk = occupancy(static_cast<std::int64_t>(k));
    if (!(qk >= 0.0 && qk <= 1.0)) {
      throw std::invalid_argument(
          "analyze_occupancy_percolation requires occupancy in [0, 1]");
    }
    thinned[k] = pmf[k] * qk;
  }

  const auto f0 = [&](double x) { return math::evaluate_series(thinned, x); };
  const auto f0_prime = [&](double x) {
    return math::evaluate_series_derivative(thinned, x);
  };
  const auto f0_second = [&](double x) {
    return math::evaluate_series_second_derivative(thinned, x);
  };
  const double mean_degree = gf.mean();

  OccupancyPercolationResult result;
  result.occupied_fraction = f0(1.0);
  if (!(mean_degree > 0.0) || result.occupied_fraction == 0.0) {
    result.mean_component_size = result.occupied_fraction;
    return result;
  }

  // F1(x) = F0'(x) / G0'(1) (Callaway et al.).
  const auto f1 = [&](double x) { return f0_prime(x) / mean_degree; };
  result.mean_transmissibility = f0_second(1.0) / mean_degree;
  result.supercritical = result.mean_transmissibility > 1.0;
  result.critical_scale =
      result.mean_transmissibility > 0.0
          ? 1.0 / result.mean_transmissibility
          : std::numeric_limits<double>::infinity();

  // u = 1 - F1(1) + F1(u), iterated from 0 (monotone to the smallest root).
  const double f1_at_one = f1(1.0);
  double u = 0.0;
  for (int i = 0; i < opts.max_iterations; ++i) {
    const double next = 1.0 - f1_at_one + f1(u);
    if (std::abs(next - u) <= opts.tolerance) {
      u = next;
      break;
    }
    u = next;
  }
  result.u = u;

  const double giant = result.occupied_fraction - f0(u);
  result.giant_fraction_all = giant < opts.tolerance * 10 ? 0.0 : giant;
  result.reliability = result.giant_fraction_all / result.occupied_fraction;

  const double denom = 1.0 - result.mean_transmissibility;
  if (denom <= 0.0) {
    result.mean_component_size = std::numeric_limits<double>::infinity();
  } else {
    result.mean_component_size =
        result.occupied_fraction + f0_prime(1.0) * f1_at_one / denom;
  }
  return result;
}

}  // namespace gossip::core
