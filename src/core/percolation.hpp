#pragma once

/// \file percolation.hpp
/// Site percolation on generalized random graphs with uniform occupation
/// probability q — the mathematical core of the paper (Section 4.2):
///
///   F0(x) = q G0(x),  F1(x) = q G1(x)                    (Eq. 1, q_k = q)
///   <s>   = q [1 + q G0'(1) / (1 - q G1'(1))]            (Eq. 2)
///   q_c   = 1 / G1'(1)                                   (Eq. 3)
///   S     = F0(1) - F0(u),  u = 1 - F1(1) + F1(u)        (Eq. 4, corrected
///                                                          sign; see DESIGN.md)
///
/// The paper's *reliability of gossiping* R(q, P) is the giant-component
/// fraction among NON-FAILED nodes: S / q = 1 - G0(u).

#include <functional>
#include <limits>

#include "core/generating_function.hpp"

namespace gossip::core {

struct PercolationResult {
  double q = 1.0;            ///< Non-failed (occupied) node ratio.
  double critical_q = 0.0;   ///< q_c = 1/G1'(1); +inf if G1'(1) == 0.
  bool supercritical = false;  ///< q > q_c (a giant component exists).
  double u = 1.0;            ///< Self-consistency fixed point (Eq. 4).
  /// Giant-component size as a fraction of ALL n nodes (Callaway's S).
  double giant_fraction_all = 0.0;
  /// Giant-component size as a fraction of non-failed nodes: the paper's
  /// reliability of gossiping R(q, P) (and its "S" in Eqs. (11)-(12)).
  double reliability = 0.0;
  /// Mean size of the (finite) component containing a random node, Eq. (2).
  /// Diverges at q_c; reported as +inf at/above the transition.
  double mean_component_size = 0.0;
};

struct PercolationOptions {
  double tolerance = 1e-13;
  int max_iterations = 200000;
};

/// Solves the site-percolation equations for the degree distribution
/// captured by `gf` at non-failed ratio q in [0, 1].
[[nodiscard]] PercolationResult analyze_site_percolation(
    const GeneratingFunction& gf, double q,
    const PercolationOptions& opts = {});

/// Convenience: critical non-failed ratio for a distribution (Eq. 3),
/// +inf when the mean excess degree is zero (no giant component at any q).
[[nodiscard]] double critical_nonfailed_ratio(const GeneratingFunction& gf);

// ---- General per-degree occupancy (the paper's Eq. (1) before it
// specializes to q_k = q) ----

/// Probability that a member with fanout/degree k is non-failed. The paper
/// introduces exactly this freedom in Eq. (1) and then studies the uniform
/// case; keeping it general models targeted failures (e.g. high-degree
/// hubs crashing preferentially, Callaway et al.'s attack scenario).
using OccupancyFunction = std::function<double(std::int64_t degree)>;

struct OccupancyPercolationResult {
  double occupied_fraction = 0.0;     ///< F0(1) = sum_k p_k q_k.
  double mean_transmissibility = 0.0; ///< F1'(1); supercritical iff > 1.
  bool supercritical = false;
  double u = 1.0;                     ///< Fixed point of u = 1-F1(1)+F1(u).
  double giant_fraction_all = 0.0;    ///< S = F0(1) - F0(u).
  /// Giant share among occupied (non-failed) members: S / F0(1).
  double reliability = 0.0;
  /// Mean finite-component size, Callaway's generalization of Eq. (2).
  double mean_component_size = 0.0;
  /// Scaling every q_k by this factor lands exactly on the transition
  /// (= 1 / mean_transmissibility); < 1 means failure headroom exists.
  double critical_scale = 0.0;
};

/// Solves site percolation with degree-dependent occupancy probabilities.
/// occupancy(k) must be in [0, 1] for every k in the support.
[[nodiscard]] OccupancyPercolationResult analyze_occupancy_percolation(
    const GeneratingFunction& gf, const OccupancyFunction& occupancy,
    const PercolationOptions& opts = {});

}  // namespace gossip::core
