#include "core/reliability_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/roots.hpp"

namespace gossip::core {

GossipModel::GossipModel(std::size_t num_members, DegreeDistributionPtr fanout,
                         double nonfailed_ratio)
    : n_(num_members), fanout_(std::move(fanout)), q_(nonfailed_ratio) {
  if (n_ == 0) {
    throw std::invalid_argument("GossipModel requires num_members > 0");
  }
  if (fanout_ == nullptr) {
    throw std::invalid_argument("GossipModel requires a fanout distribution");
  }
  if (!(q_ > 0.0 && q_ <= 1.0)) {
    throw std::invalid_argument("GossipModel requires q in (0, 1]");
  }
  const auto gf = GeneratingFunction::from_distribution(*fanout_);
  percolation_ = analyze_site_percolation(gf, q_);
}

double GossipModel::max_tolerable_failure_ratio() const noexcept {
  const double qc = percolation_.critical_q;
  return qc >= 1.0 ? 0.0 : 1.0 - qc;
}

std::size_t GossipModel::expected_nonfailed() const noexcept {
  return static_cast<std::size_t>(static_cast<double>(n_) * q_);
}

double GossipModel::expected_receivers() const noexcept {
  return reliability() * static_cast<double>(expected_nonfailed());
}

double poisson_reliability(double mean_fanout, double q) {
  if (!(mean_fanout >= 0.0)) {
    throw std::invalid_argument("poisson_reliability requires mean_fanout >= 0");
  }
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("poisson_reliability requires q in [0, 1]");
  }
  const double zq = mean_fanout * q;
  if (zq <= 1.0) {
    return 0.0;  // Eq. (10): below the critical point the giant
                 // component (and thus the reliability) vanishes.
  }
  // Root of h(S) = S - 1 + exp(-zq S) in (0, 1]. h(0) = 0 is the trivial
  // root; h'(0) = 1 - zq < 0 supercritically, and h(1) > 0, so the
  // non-trivial root lies in (0, 1) and bisection from a small positive
  // bracket edge finds it.
  const auto h = [zq](double s) { return s - 1.0 + std::exp(-zq * s); };
  // Choose the lower bracket edge past the trivial root: h is negative
  // there. Start from 1/zq scaled down until sign is confirmed.
  double lo = std::min(0.5, 1.0 / zq);
  while (h(lo) >= 0.0 && lo > 1e-12) {
    lo *= 0.5;
  }
  if (h(lo) >= 0.0) {
    return 0.0;  // numerically indistinguishable from critical
  }
  const auto res = math::brent(h, lo, 1.0);
  return res.root;
}

double poisson_required_fanout(double target, double q) {
  if (!(target > 0.0 && target < 1.0)) {
    throw std::invalid_argument(
        "poisson_required_fanout requires target in (0, 1)");
  }
  if (!(q > 0.0 && q <= 1.0)) {
    throw std::invalid_argument("poisson_required_fanout requires q in (0, 1]");
  }
  return -std::log1p(-target) / (q * target);  // Eq. (12)
}

double poisson_critical_q(double mean_fanout) {
  if (!(mean_fanout > 0.0)) {
    throw std::invalid_argument("poisson_critical_q requires mean_fanout > 0");
  }
  return 1.0 / mean_fanout;  // Eq. (10)
}

double poisson_required_nonfailed_ratio(double target, double mean_fanout) {
  if (!(target > 0.0 && target < 1.0)) {
    throw std::invalid_argument(
        "poisson_required_nonfailed_ratio requires target in (0, 1)");
  }
  if (!(mean_fanout > 0.0)) {
    throw std::invalid_argument(
        "poisson_required_nonfailed_ratio requires mean_fanout > 0");
  }
  // Eq. (12) solved for q at fixed z.
  const double q = -std::log1p(-target) / (mean_fanout * target);
  return std::min(q, 1.0);
}

}  // namespace gossip::core
