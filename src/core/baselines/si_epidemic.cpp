#include "core/baselines/si_epidemic.hpp"

#include <cmath>
#include <stdexcept>

#include "core/reliability_model.hpp"
#include "math/ode.hpp"

namespace gossip::core::baselines {

namespace {

void validate(const SiParams& p) {
  if (!(p.contact_rate >= 0.0)) {
    throw std::invalid_argument("SI requires contact_rate >= 0");
  }
  if (!(p.nonfailed_ratio > 0.0 && p.nonfailed_ratio <= 1.0)) {
    throw std::invalid_argument("SI requires q in (0, 1]");
  }
  if (!(p.initial_infected_fraction >= 0.0 &&
        p.initial_infected_fraction <= 1.0)) {
    throw std::invalid_argument("SI requires i(0) in [0, 1]");
  }
  if (!(p.t_end >= 0.0) || !(p.dt > 0.0)) {
    throw std::invalid_argument("SI requires t_end >= 0 and dt > 0");
  }
}

}  // namespace

std::vector<SiTrajectoryPoint> si_trajectory(const SiParams& params,
                                             std::size_t sample_stride) {
  validate(params);
  if (sample_stride == 0) sample_stride = 1;
  const double beta = params.contact_rate * params.nonfailed_ratio;

  std::vector<SiTrajectoryPoint> out;
  std::size_t step = 0;
  const math::OdeObserver observer = [&](double t,
                                         const std::vector<double>& y) {
    if (step % sample_stride == 0) {
      out.push_back({t, y[0]});
    }
    ++step;
  };
  const math::OdeSystem system = [beta](double, const std::vector<double>& y,
                                        std::vector<double>& dydt) {
    dydt[0] = beta * y[0] * (1.0 - y[0]);
  };
  const auto final_state =
      math::integrate_rk4(system, {params.initial_infected_fraction}, 0.0,
                          params.t_end, params.dt, observer);
  if (out.empty() || out.back().time < params.t_end) {
    out.push_back({params.t_end, final_state[0]});
  }
  return out;
}

double si_closed_form(const SiParams& params, double t) {
  validate(params);
  const double i0 = params.initial_infected_fraction;
  if (i0 == 0.0) return 0.0;  // SI cannot start from zero infected
  if (i0 == 1.0) return 1.0;
  const double beta = params.contact_rate * params.nonfailed_ratio;
  // Logistic solution i(t) = i0 e^{bt} / (1 - i0 + i0 e^{bt}).
  const double e = std::exp(beta * t);
  return i0 * e / (1.0 - i0 + i0 * e);
}

double sir_final_size(double mean_fanout, double nonfailed_ratio) {
  return poisson_reliability(mean_fanout, nonfailed_ratio);
}

}  // namespace gossip::core::baselines
