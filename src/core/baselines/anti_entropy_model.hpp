#pragma once

/// \file anti_entropy_model.hpp
/// Mean-field recurrences for round-based anti-entropy exchange (Demers et
/// al., the paper's reference [2]): the expected informed fraction per
/// round under PUSH, PULL, and PUSH-PULL with mean per-round fanout f and
/// non-failed ratio q. Complements the one-shot percolation model the paper
/// builds: these are the dynamics the replicated-database lineage used.
///
/// With x the informed fraction of non-failed members, n members total and
/// m = n q non-failed (contacts hitting crashed members are wasted):
///   push:      x' = x + (1-x) (1 - miss^{x m})        miss = 1 - f/(n-1)
///   pull:      x' = x + (1-x) (1 - (1 - x m / (n-1))^f)
///   push-pull: both updates composed within one round.

#include <cstdint>
#include <vector>

namespace gossip::core::baselines {

enum class AntiEntropyMode {
  kPush,
  kPull,
  kPushPull,
};

struct AntiEntropyModelParams {
  std::int64_t num_members = 0;
  double fanout = 0.0;           ///< Mean peers contacted per round.
  double nonfailed_ratio = 1.0;  ///< q.
  std::int64_t rounds = 0;
  AntiEntropyMode mode = AntiEntropyMode::kPushPull;
};

/// Expected informed fraction of non-failed members after each round
/// (index 0 = just the source).
[[nodiscard]] std::vector<double> anti_entropy_expected_informed(
    const AntiEntropyModelParams& params);

/// Rounds until the expected informed fraction reaches `target` (e.g.
/// 1 - 1/m for "everyone"); throws if it cannot within `max_rounds`.
[[nodiscard]] std::int64_t anti_entropy_rounds_to_fraction(
    const AntiEntropyModelParams& params, double target,
    std::int64_t max_rounds = 10000);

}  // namespace gossip::core::baselines
