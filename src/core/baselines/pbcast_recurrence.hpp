#pragma once

/// \file pbcast_recurrence.hpp
/// The "recurrence model" the paper's related-work section discusses
/// (Birman et al., Bimodal Multicast/pbcast): round-based gossip analyzed as
/// a recurrence between successive rounds. We provide both flavors the
/// literature uses:
///   * a mean-field recurrence on the expected number of infected members
///     per round (fast, approximate — the "simplified" model whose accuracy
///     the paper criticizes), and
///   * the exact chain-binomial (Reed-Frost) Markov chain on the number of
///     infected members, tractable for moderate n — the "intractable for
///     large n" exact model.
/// Both incorporate crash failures through the non-failed ratio q.

#include <cstdint>
#include <vector>

namespace gossip::core::baselines {

struct RoundGossipParams {
  std::int64_t num_members = 0;   ///< Total group size n (incl. source).
  double fanout = 0.0;            ///< Targets contacted per round per node.
  double nonfailed_ratio = 1.0;   ///< q; failed members never forward.
  std::int64_t rounds = 0;        ///< Number of gossip rounds.
};

/// Mean-field recurrence, forward-always ("infect forever"): expected
/// fraction of NON-FAILED members infected after each round (index 0 = just
/// the source). In each round EVERY currently-infected member contacts
/// `fanout` uniform members; a contact infects iff the target is non-failed
/// and susceptible.
[[nodiscard]] std::vector<double> pbcast_expected_infected(
    const RoundGossipParams& params);

/// Mean-field recurrence, forward-once ("infect and die", the Reed-Frost
/// limit and the round-synchronized analog of the paper's Fig. 1): only
/// members infected in the PREVIOUS round contact `fanout` uniform members
/// this round.
[[nodiscard]] std::vector<double> pbcast_expected_infected_forward_once(
    const RoundGossipParams& params);

/// Exact Reed-Frost chain-binomial final-size distribution over the number
/// of ultimately-infected non-failed members (support 1..m where
/// m = [n*q]). Per-round per-pair transmission probability is
/// fanout/(n-1) * q-thinning. O(m^3)-ish dynamic program — intended for
/// moderate m (the paper's point about Markov-chain intractability).
/// Entry k of the result is Pr(final infected count == k+1).
[[nodiscard]] std::vector<double> reed_frost_final_size(
    const RoundGossipParams& params);

/// Convenience: expected final reliability (fraction of non-failed members
/// ultimately infected) under the exact Reed-Frost chain.
[[nodiscard]] double reed_frost_expected_reliability(
    const RoundGossipParams& params);

}  // namespace gossip::core::baselines
