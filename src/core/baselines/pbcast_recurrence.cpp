#include "core/baselines/pbcast_recurrence.hpp"

#include <cmath>
#include <stdexcept>

#include "math/special.hpp"

namespace gossip::core::baselines {

namespace {

void validate(const RoundGossipParams& p) {
  if (p.num_members < 2) {
    throw std::invalid_argument("round gossip requires >= 2 members");
  }
  if (!(p.fanout >= 0.0)) {
    throw std::invalid_argument("round gossip requires fanout >= 0");
  }
  if (!(p.nonfailed_ratio > 0.0 && p.nonfailed_ratio <= 1.0)) {
    throw std::invalid_argument("round gossip requires q in (0, 1]");
  }
  if (p.rounds < 0) {
    throw std::invalid_argument("round gossip requires rounds >= 0");
  }
}

}  // namespace

std::vector<double> pbcast_expected_infected(const RoundGossipParams& params) {
  validate(params);
  const double n = static_cast<double>(params.num_members);
  const double m = std::floor(n * params.nonfailed_ratio);  // non-failed count
  if (m < 1.0) {
    throw std::invalid_argument("round gossip requires >= 1 non-failed member");
  }

  // i_t: expected number of infected non-failed members after round t.
  // Each infected member contacts `fanout` uniform members (out of n-1);
  // a given non-failed susceptible avoids one infector's contacts with
  // probability (1 - fanout/(n-1)).
  const double miss_per_infector =
      std::max(0.0, 1.0 - params.fanout / (n - 1.0));
  std::vector<double> trajectory;
  trajectory.reserve(static_cast<std::size_t>(params.rounds) + 1);
  double infected = 1.0;  // the never-failing source
  trajectory.push_back(infected / m);
  for (std::int64_t t = 0; t < params.rounds; ++t) {
    const double susceptible = m - infected;
    const double p_contacted =
        1.0 - std::pow(miss_per_infector, infected);
    infected += susceptible * p_contacted;
    trajectory.push_back(infected / m);
  }
  return trajectory;
}

std::vector<double> pbcast_expected_infected_forward_once(
    const RoundGossipParams& params) {
  validate(params);
  const double n = static_cast<double>(params.num_members);
  const double m = std::floor(n * params.nonfailed_ratio);
  if (m < 1.0) {
    throw std::invalid_argument("round gossip requires >= 1 non-failed member");
  }
  const double miss_per_infector =
      std::max(0.0, 1.0 - params.fanout / (n - 1.0));
  std::vector<double> trajectory;
  trajectory.reserve(static_cast<std::size_t>(params.rounds) + 1);
  double cumulative = 1.0;  // the never-failing source
  double fresh = 1.0;       // infected in the previous round
  trajectory.push_back(cumulative / m);
  for (std::int64_t t = 0; t < params.rounds; ++t) {
    const double susceptible = m - cumulative;
    const double p_contacted = 1.0 - std::pow(miss_per_infector, fresh);
    const double newly = susceptible * p_contacted;
    cumulative += newly;
    fresh = newly;
    trajectory.push_back(cumulative / m);
  }
  return trajectory;
}

std::vector<double> reed_frost_final_size(const RoundGossipParams& params) {
  validate(params);
  const auto n = params.num_members;
  const auto m = static_cast<std::int64_t>(
      std::floor(static_cast<double>(n) * params.nonfailed_ratio));
  if (m < 1) {
    throw std::invalid_argument("round gossip requires >= 1 non-failed member");
  }
  // Per-round probability that a specific infected member transmits to a
  // specific other member: it contacts fanout of the n-1 others uniformly.
  const double tau =
      std::min(1.0, params.fanout / static_cast<double>(n - 1));

  // Reed-Frost chain over (susceptible count s, newly-infected count i);
  // only non-failed members matter (failed ones neither forward nor count).
  // state[s][i] = probability of s susceptibles with i fresh infectives.
  const auto s0 = static_cast<std::size_t>(m - 1);
  std::vector<std::vector<double>> state(
      s0 + 1, std::vector<double>(static_cast<std::size_t>(m) + 1, 0.0));
  state[s0][1] = 1.0;  // source infected, everyone else susceptible

  // final[k] accumulates the probability that the epidemic dies with
  // (m - 1 - s) + 1 = m - s total infected, i.e. when i reaches 0.
  std::vector<double> final_size(static_cast<std::size_t>(m), 0.0);

  const std::int64_t rounds =
      params.rounds > 0 ? params.rounds : m;  // m rounds always suffice? No:
  // the chain absorbs once i == 0; running m rounds guarantees absorption
  // because each non-absorbing round infects >= 1 member.

  for (std::int64_t round = 0; round < rounds; ++round) {
    std::vector<std::vector<double>> next(
        s0 + 1, std::vector<double>(static_cast<std::size_t>(m) + 1, 0.0));
    for (std::size_t s = 0; s <= s0; ++s) {
      for (std::size_t i = 1; i <= static_cast<std::size_t>(m); ++i) {
        const double prob = state[s][i];
        if (prob == 0.0) continue;
        // Each susceptible escapes all i infectives independently.
        const double escape = std::pow(1.0 - tau, static_cast<double>(i));
        for (std::size_t j = 0; j <= s; ++j) {
          const double trans =
              math::binomial_pmf(static_cast<std::int64_t>(s),
                                 static_cast<std::int64_t>(j), 1.0 - escape);
          if (trans == 0.0) continue;
          if (j == 0) {
            // Epidemic dies: total infected = m - s.
            final_size[static_cast<std::size_t>(m) - s - 1] += prob * trans;
          } else {
            next[s - j][j] += prob * trans;
          }
        }
      }
    }
    state = std::move(next);
  }
  // Any residual probability mass (unfinished after `rounds`) is assigned to
  // the current infected totals, matching "stop after t rounds" semantics.
  for (std::size_t s = 0; s <= s0; ++s) {
    for (std::size_t i = 1; i <= static_cast<std::size_t>(m); ++i) {
      if (state[s][i] > 0.0) {
        final_size[static_cast<std::size_t>(m) - s - 1] += state[s][i];
      }
    }
  }
  return final_size;
}

double reed_frost_expected_reliability(const RoundGossipParams& params) {
  const auto dist = reed_frost_final_size(params);
  const double m = static_cast<double>(dist.size());
  double mean = 0.0;
  for (std::size_t k = 0; k < dist.size(); ++k) {
    mean += static_cast<double>(k + 1) * dist[k];
  }
  return mean / m;
}

}  // namespace gossip::core::baselines
