#include "core/baselines/anti_entropy_model.hpp"

#include <cmath>
#include <stdexcept>

namespace gossip::core::baselines {

namespace {

void validate(const AntiEntropyModelParams& p) {
  if (p.num_members < 2) {
    throw std::invalid_argument("anti-entropy model requires >= 2 members");
  }
  if (!(p.fanout >= 0.0)) {
    throw std::invalid_argument("anti-entropy model requires fanout >= 0");
  }
  if (!(p.nonfailed_ratio > 0.0 && p.nonfailed_ratio <= 1.0)) {
    throw std::invalid_argument("anti-entropy model requires q in (0, 1]");
  }
  if (p.rounds < 0) {
    throw std::invalid_argument("anti-entropy model requires rounds >= 0");
  }
}

/// One round of the mean-field update starting from informed fraction x.
double step(const AntiEntropyModelParams& p, double x) {
  const double n = static_cast<double>(p.num_members);
  const double m = std::floor(n * p.nonfailed_ratio);
  const double miss = std::max(0.0, 1.0 - p.fanout / (n - 1.0));

  double informed = x;
  if (p.mode != AntiEntropyMode::kPull) {
    // PUSH: a susceptible escapes all x*m informed pushers.
    const double p_reached = 1.0 - std::pow(miss, x * m);
    informed = informed + (1.0 - informed) * p_reached;
  }
  if (p.mode != AntiEntropyMode::kPush) {
    // PULL: an uninformed member hits an informed ALIVE peer with
    // probability x*m/(n-1) per contact; f contacts per round. Pulls act on
    // the start-of-round state, matching the protocol's snapshot semantics.
    const double hit = std::min(1.0, x * m / (n - 1.0));
    const double p_found = 1.0 - std::pow(1.0 - hit, p.fanout);
    informed = informed + (1.0 - informed) * p_found;
  }
  return std::min(informed, 1.0);
}

}  // namespace

std::vector<double> anti_entropy_expected_informed(
    const AntiEntropyModelParams& params) {
  validate(params);
  const double n = static_cast<double>(params.num_members);
  const double m = std::floor(n * params.nonfailed_ratio);
  if (m < 1.0) {
    throw std::invalid_argument("anti-entropy model requires >= 1 survivor");
  }
  std::vector<double> trajectory;
  trajectory.reserve(static_cast<std::size_t>(params.rounds) + 1);
  double x = 1.0 / m;  // just the source
  trajectory.push_back(x);
  for (std::int64_t t = 0; t < params.rounds; ++t) {
    x = step(params, x);
    trajectory.push_back(x);
  }
  return trajectory;
}

std::int64_t anti_entropy_rounds_to_fraction(
    const AntiEntropyModelParams& params, double target,
    std::int64_t max_rounds) {
  validate(params);
  if (!(target > 0.0 && target <= 1.0)) {
    throw std::invalid_argument("target fraction must be in (0, 1]");
  }
  const double n = static_cast<double>(params.num_members);
  const double m = std::floor(n * params.nonfailed_ratio);
  double x = 1.0 / m;
  for (std::int64_t t = 0; t <= max_rounds; ++t) {
    if (x >= target) return t;
    const double next = step(params, x);
    if (next <= x && x < target) {
      throw std::domain_error(
          "anti-entropy model cannot reach the target fraction");
    }
    x = next;
  }
  throw std::domain_error("anti-entropy model: max_rounds exceeded");
}

}  // namespace gossip::core::baselines
