#pragma once

/// \file kmg_model.hpp
/// The Microsoft/KMG random-graph baseline (paper reference [6]:
/// Kermarrec, Massoulié, Ganesh, "Probabilistic Reliable Dissemination in
/// Large-Scale Systems", IEEE TPDS 2003). Their result: with per-node
/// fanout log(n) + c the probability that gossip reaches EVERY member tends
/// to exp(-e^{-c}). Under a failed-node proportion epsilon the same law
/// holds on the n' = n(1-epsilon) survivors. This model predicts only the
/// all-or-nothing success probability — not the per-member reliability —
/// which is exactly the gap the paper's model fills; the baseline bench
/// contrasts the two.

#include <cstdint>

namespace gossip::core::baselines {

/// Asymptotic probability that every surviving member is reached when each
/// member gossips to `fanout` uniform targets in a group of `num_members`
/// with failed proportion `failed_ratio`:
///   c = fanout - ln(n'),  n' = n (1 - failed_ratio),  P = exp(-e^{-c}).
[[nodiscard]] double kmg_success_probability(std::int64_t num_members,
                                             double fanout,
                                             double failed_ratio = 0.0);

/// Fanout needed so the KMG success probability reaches `target` in (0, 1):
///   fanout = ln(n') - ln(-ln(target)).
[[nodiscard]] double kmg_required_fanout(std::int64_t num_members,
                                         double target,
                                         double failed_ratio = 0.0);

}  // namespace gossip::core::baselines
