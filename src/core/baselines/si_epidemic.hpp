#pragma once

/// \file si_epidemic.hpp
/// The epidemic baseline (paper reference [9], the LRG protocol's SI model).
/// Two mean-field views are provided:
///   * SI dynamics: infected members stay infectious forever; the balance
///     equation di/dt = beta i (1 - i) is integrated numerically. SI always
///     saturates — exactly the deficiency the paper points out (no die-out,
///     no node failures in the original).
///   * SIR-style "gossip once" final size: each member forwards once then
///     stops, yielding the final-size equation S = 1 - exp(-z q S) — the
///     same fixed point as the paper's Eq. (11), demonstrating the
///     percolation/epidemic correspondence.

#include <vector>

namespace gossip::core::baselines {

struct SiParams {
  /// Per-member contact rate (contacts per unit time), scaled by the
  /// non-failed ratio to account for contacts wasted on crashed members.
  double contact_rate = 1.0;
  double nonfailed_ratio = 1.0;  ///< q.
  double initial_infected_fraction = 0.0;  ///< i(0) among non-failed members.
  double t_end = 10.0;
  double dt = 1e-3;
};

struct SiTrajectoryPoint {
  double time = 0.0;
  double infected_fraction = 0.0;  ///< Among non-failed members.
};

/// Integrates di/dt = contact_rate * q * i * (1 - i) with RK4 and returns
/// the sampled trajectory (every `sample_stride` steps plus the endpoint).
[[nodiscard]] std::vector<SiTrajectoryPoint> si_trajectory(
    const SiParams& params, std::size_t sample_stride = 100);

/// Closed-form logistic solution at time t (for validating the integrator).
[[nodiscard]] double si_closed_form(const SiParams& params, double t);

/// SIR-style final size: the fraction S of non-failed members ultimately
/// reached when every infected member makes `mean_fanout` contacts in total
/// and then stops, with non-failed ratio q. Solves S = 1 - exp(-z q S);
/// returns 0 below the threshold z*q <= 1. Numerically identical to
/// core::poisson_reliability — exposed here to make the correspondence
/// explicit in the baseline-comparison bench.
[[nodiscard]] double sir_final_size(double mean_fanout, double nonfailed_ratio);

}  // namespace gossip::core::baselines
