#include "core/baselines/kmg_model.hpp"

#include <cmath>
#include <stdexcept>

namespace gossip::core::baselines {

namespace {

double surviving_members(std::int64_t num_members, double failed_ratio) {
  if (num_members < 2) {
    throw std::invalid_argument("KMG model requires >= 2 members");
  }
  if (!(failed_ratio >= 0.0 && failed_ratio < 1.0)) {
    throw std::invalid_argument("KMG model requires failed_ratio in [0, 1)");
  }
  const double survivors =
      static_cast<double>(num_members) * (1.0 - failed_ratio);
  if (!(survivors > 1.0)) {
    throw std::invalid_argument("KMG model requires > 1 surviving member");
  }
  return survivors;
}

}  // namespace

double kmg_success_probability(std::int64_t num_members, double fanout,
                               double failed_ratio) {
  if (!(fanout >= 0.0)) {
    throw std::invalid_argument("KMG model requires fanout >= 0");
  }
  const double survivors = surviving_members(num_members, failed_ratio);
  const double c = fanout - std::log(survivors);
  return std::exp(-std::exp(-c));
}

double kmg_required_fanout(std::int64_t num_members, double target,
                           double failed_ratio) {
  if (!(target > 0.0 && target < 1.0)) {
    throw std::invalid_argument("KMG model requires target in (0, 1)");
  }
  const double survivors = surviving_members(num_members, failed_ratio);
  return std::log(survivors) - std::log(-std::log(target));
}

}  // namespace gossip::core::baselines
