#include "core/degree_distribution.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "math/special.hpp"
#include "rng/alias_table.hpp"
#include "rng/distributions.hpp"

namespace gossip::core {

namespace {

/// Upper cap on truncated supports, far beyond any realistic fanout.
constexpr std::int64_t kMaxSupport = 1 << 20;

std::string format_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::vector<double> DegreeDistribution::pmf_vector(double tail_epsilon) const {
  if (!(tail_epsilon > 0.0 && tail_epsilon < 1.0)) {
    throw std::invalid_argument("pmf_vector tail_epsilon must be in (0, 1)");
  }
  std::vector<double> out;
  double cumulative = 0.0;
  for (std::int64_t k = 0; k < kMaxSupport; ++k) {
    const double p = pmf(k);
    out.push_back(p);
    cumulative += p;
    if (cumulative >= 1.0 - tail_epsilon) break;
  }
  return out;
}

FanoutSampler DegreeDistribution::sampler() const {
  // The lambda borrows `this`; distributions are owned by shared_ptr at the
  // call sites, so capture a non-owning pointer and document the contract:
  // the distribution must outlive the sampler.
  return [self = this](rng::RngStream& rng) { return self->sample(rng); };
}

namespace {

class PoissonFanout final : public DegreeDistribution {
 public:
  explicit PoissonFanout(double mean) : mean_(mean) {
    if (!(mean >= 0.0)) {
      throw std::invalid_argument("poisson_fanout requires mean >= 0");
    }
  }
  [[nodiscard]] std::string name() const override {
    return "Poisson(z=" + format_double(mean_) + ")";
  }
  [[nodiscard]] double mean() const override { return mean_; }
  [[nodiscard]] double pmf(std::int64_t k) const override {
    return math::poisson_pmf(k, mean_);
  }
  [[nodiscard]] std::int64_t sample(rng::RngStream& rng) const override {
    return rng::sample_poisson(rng, mean_);
  }

 private:
  double mean_;
};

class FixedFanout final : public DegreeDistribution {
 public:
  explicit FixedFanout(std::int64_t k) : k_(k) {
    if (k < 0) {
      throw std::invalid_argument("fixed_fanout requires k >= 0");
    }
  }
  [[nodiscard]] std::string name() const override {
    return "Fixed(k=" + std::to_string(k_) + ")";
  }
  [[nodiscard]] double mean() const override {
    return static_cast<double>(k_);
  }
  [[nodiscard]] double pmf(std::int64_t k) const override {
    return k == k_ ? 1.0 : 0.0;
  }
  [[nodiscard]] std::int64_t sample(rng::RngStream&) const override {
    return k_;
  }
  [[nodiscard]] std::vector<double> pmf_vector(double) const override {
    std::vector<double> out(static_cast<std::size_t>(k_) + 1, 0.0);
    out.back() = 1.0;
    return out;
  }

 private:
  std::int64_t k_;
};

class BinomialFanout final : public DegreeDistribution {
 public:
  BinomialFanout(std::int64_t trials, double p) : trials_(trials), p_(p) {
    if (trials < 0) {
      throw std::invalid_argument("binomial_fanout requires trials >= 0");
    }
    if (!(p >= 0.0 && p <= 1.0)) {
      throw std::invalid_argument("binomial_fanout requires p in [0, 1]");
    }
  }
  [[nodiscard]] std::string name() const override {
    return "Binomial(n=" + std::to_string(trials_) +
           ",p=" + format_double(p_) + ")";
  }
  [[nodiscard]] double mean() const override {
    return static_cast<double>(trials_) * p_;
  }
  [[nodiscard]] double pmf(std::int64_t k) const override {
    return math::binomial_pmf(trials_, k, p_);
  }
  [[nodiscard]] std::int64_t sample(rng::RngStream& rng) const override {
    return rng::sample_binomial(rng, trials_, p_);
  }
  [[nodiscard]] std::vector<double> pmf_vector(double) const override {
    std::vector<double> out(static_cast<std::size_t>(trials_) + 1);
    for (std::int64_t k = 0; k <= trials_; ++k) {
      out[static_cast<std::size_t>(k)] = math::binomial_pmf(trials_, k, p_);
    }
    return out;
  }

 private:
  std::int64_t trials_;
  double p_;
};

class GeometricFanout final : public DegreeDistribution {
 public:
  explicit GeometricFanout(double mean) : mean_(mean) {
    if (!(mean >= 0.0)) {
      throw std::invalid_argument("geometric_fanout requires mean >= 0");
    }
    p_ = 1.0 / (1.0 + mean);
  }
  [[nodiscard]] std::string name() const override {
    return "Geometric(mean=" + format_double(mean_) + ")";
  }
  [[nodiscard]] double mean() const override { return mean_; }
  [[nodiscard]] double pmf(std::int64_t k) const override {
    if (k < 0) return 0.0;
    return p_ * std::pow(1.0 - p_, static_cast<double>(k));
  }
  [[nodiscard]] std::int64_t sample(rng::RngStream& rng) const override {
    return rng::sample_geometric(rng, p_);
  }

 private:
  double mean_;
  double p_;
};

class ZipfFanout final : public DegreeDistribution {
 public:
  ZipfFanout(std::int64_t max_value, double exponent)
      : max_value_(max_value), exponent_(exponent) {
    if (max_value < 1) {
      throw std::invalid_argument("zipf_fanout requires max_value >= 1");
    }
    if (!(exponent > 0.0)) {
      throw std::invalid_argument("zipf_fanout requires exponent > 0");
    }
    normalizer_ = 0.0;
    mean_ = 0.0;
    for (std::int64_t k = 1; k <= max_value_; ++k) {
      const double w = std::pow(static_cast<double>(k), -exponent_);
      normalizer_ += w;
      mean_ += static_cast<double>(k) * w;
    }
    mean_ /= normalizer_;
  }
  [[nodiscard]] std::string name() const override {
    return "Zipf(max=" + std::to_string(max_value_) +
           ",s=" + format_double(exponent_) + ")";
  }
  [[nodiscard]] double mean() const override { return mean_; }
  [[nodiscard]] double pmf(std::int64_t k) const override {
    if (k < 1 || k > max_value_) return 0.0;
    return std::pow(static_cast<double>(k), -exponent_) / normalizer_;
  }
  [[nodiscard]] std::int64_t sample(rng::RngStream& rng) const override {
    return rng::sample_zipf(rng, max_value_, exponent_);
  }
  [[nodiscard]] std::vector<double> pmf_vector(double) const override {
    std::vector<double> out(static_cast<std::size_t>(max_value_) + 1, 0.0);
    for (std::int64_t k = 1; k <= max_value_; ++k) {
      out[static_cast<std::size_t>(k)] = pmf(k);
    }
    return out;
  }

 private:
  std::int64_t max_value_;
  double exponent_;
  double normalizer_;
  double mean_;
};

class UniformFanout final : public DegreeDistribution {
 public:
  UniformFanout(std::int64_t lo, std::int64_t hi) : lo_(lo), hi_(hi) {
    if (lo < 0 || lo > hi) {
      throw std::invalid_argument("uniform_fanout requires 0 <= lo <= hi");
    }
  }
  [[nodiscard]] std::string name() const override {
    return "Uniform[" + std::to_string(lo_) + "," + std::to_string(hi_) + "]";
  }
  [[nodiscard]] double mean() const override {
    return 0.5 * (static_cast<double>(lo_) + static_cast<double>(hi_));
  }
  [[nodiscard]] double pmf(std::int64_t k) const override {
    if (k < lo_ || k > hi_) return 0.0;
    return 1.0 / static_cast<double>(hi_ - lo_ + 1);
  }
  [[nodiscard]] std::int64_t sample(rng::RngStream& rng) const override {
    return rng.uniform_int(lo_, hi_);
  }
  [[nodiscard]] std::vector<double> pmf_vector(double) const override {
    std::vector<double> out(static_cast<std::size_t>(hi_) + 1, 0.0);
    for (std::int64_t k = lo_; k <= hi_; ++k) {
      out[static_cast<std::size_t>(k)] = pmf(k);
    }
    return out;
  }

 private:
  std::int64_t lo_;
  std::int64_t hi_;
};

class EmpiricalFanout final : public DegreeDistribution {
 public:
  explicit EmpiricalFanout(std::vector<double> weights)
      : table_(weights), pmf_(weights.size()) {
    // AliasTable validated the weights; store the normalized pmf.
    double mean = 0.0;
    for (std::size_t k = 0; k < weights.size(); ++k) {
      pmf_[k] = table_.probability(k);
      mean += static_cast<double>(k) * pmf_[k];
    }
    mean_ = mean;
  }
  [[nodiscard]] std::string name() const override {
    return "Empirical(K=" + std::to_string(pmf_.size() - 1) + ")";
  }
  [[nodiscard]] double mean() const override { return mean_; }
  [[nodiscard]] double pmf(std::int64_t k) const override {
    if (k < 0 || static_cast<std::size_t>(k) >= pmf_.size()) return 0.0;
    return pmf_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::int64_t sample(rng::RngStream& rng) const override {
    return static_cast<std::int64_t>(table_.sample(rng));
  }
  [[nodiscard]] std::vector<double> pmf_vector(double) const override {
    return pmf_;
  }

 private:
  rng::AliasTable table_;
  std::vector<double> pmf_;
  double mean_;
};

}  // namespace

DegreeDistributionPtr poisson_fanout(double mean) {
  return std::make_shared<PoissonFanout>(mean);
}

DegreeDistributionPtr fixed_fanout(std::int64_t k) {
  return std::make_shared<FixedFanout>(k);
}

DegreeDistributionPtr binomial_fanout(std::int64_t trials, double p) {
  return std::make_shared<BinomialFanout>(trials, p);
}

DegreeDistributionPtr geometric_fanout(double mean) {
  return std::make_shared<GeometricFanout>(mean);
}

DegreeDistributionPtr zipf_fanout(std::int64_t max_value, double exponent) {
  return std::make_shared<ZipfFanout>(max_value, exponent);
}

DegreeDistributionPtr uniform_fanout(std::int64_t lo, std::int64_t hi) {
  return std::make_shared<UniformFanout>(lo, hi);
}

DegreeDistributionPtr empirical_fanout(std::vector<double> weights) {
  return std::make_shared<EmpiricalFanout>(std::move(weights));
}

}  // namespace gossip::core
