#pragma once

/// \file reliability_model.hpp
/// The user-facing gossip model Gossip(n, P, q) of Section 4.1 and the
/// Poisson closed forms of Section 4.3:
///   q_c = 1/z                       (Eq. 10: need q > 1/z)
///   S   = 1 - exp(-z q S)           (Eq. 11: reliability fixed point)
///   z   = -ln(1 - S) / (q S)        (Eq. 12: fanout needed for target S)

#include <cstddef>

#include "core/degree_distribution.hpp"
#include "core/percolation.hpp"

namespace gossip::core {

/// Gossip(n, P, q): n members, fanout distribution P, non-failed ratio q.
/// Immutable once constructed; all queries are pure.
class GossipModel {
 public:
  GossipModel(std::size_t num_members, DegreeDistributionPtr fanout,
              double nonfailed_ratio);

  /// R(q, P): probability a non-failed member receives the message in one
  /// execution = relative giant-component size (Section 4.2).
  [[nodiscard]] double reliability() const noexcept {
    return percolation_.reliability;
  }

  /// q_c (Eq. 3): below this non-failed ratio the reliability collapses.
  [[nodiscard]] double critical_nonfailed_ratio() const noexcept {
    return percolation_.critical_q;
  }

  /// Maximum tolerable failed-node ratio 1 - q_c while a giant component
  /// (hence non-vanishing reliability) still exists.
  [[nodiscard]] double max_tolerable_failure_ratio() const noexcept;

  [[nodiscard]] bool supercritical() const noexcept {
    return percolation_.supercritical;
  }

  /// Mean finite-component size (Eq. 2).
  [[nodiscard]] double mean_component_size() const noexcept {
    return percolation_.mean_component_size;
  }

  /// Full percolation detail.
  [[nodiscard]] const PercolationResult& percolation() const noexcept {
    return percolation_;
  }

  /// n_nonfailed = [n * q] (Section 4.2).
  [[nodiscard]] std::size_t expected_nonfailed() const noexcept;

  /// Expected number of non-failed receivers in one execution:
  /// R(q,P) * n_nonfailed.
  [[nodiscard]] double expected_receivers() const noexcept;

  [[nodiscard]] std::size_t num_members() const noexcept { return n_; }
  [[nodiscard]] double nonfailed_ratio() const noexcept { return q_; }
  [[nodiscard]] const DegreeDistribution& fanout() const noexcept {
    return *fanout_;
  }
  [[nodiscard]] const DegreeDistributionPtr& fanout_ptr() const noexcept {
    return fanout_;
  }

 private:
  std::size_t n_;
  DegreeDistributionPtr fanout_;
  double q_;
  PercolationResult percolation_;
};

// ---- Poisson closed forms (Section 4.3) ----

/// Solves S = 1 - exp(-z q S) for the non-trivial root (Eq. 11); returns 0
/// when z*q <= 1 (subcritical, Eq. 10 violated).
[[nodiscard]] double poisson_reliability(double mean_fanout, double q);

/// Mean fanout required for reliability `target` at non-failed ratio q
/// (Eq. 12). target in (0, 1), q in (0, 1].
[[nodiscard]] double poisson_required_fanout(double target, double q);

/// Critical non-failed ratio 1/z (Eq. 10). mean_fanout > 0.
[[nodiscard]] double poisson_critical_q(double mean_fanout);

/// Minimum non-failed ratio q needed to reach reliability `target` with
/// mean fanout z (inverse of Eq. 12 in q); the maximum tolerable failure
/// ratio at that operating point is 1 minus this.
[[nodiscard]] double poisson_required_nonfailed_ratio(double target,
                                                      double mean_fanout);

}  // namespace gossip::core
