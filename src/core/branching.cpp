#include "core/branching.hpp"

#include <cmath>
#include <stdexcept>

#include "math/fixed_point.hpp"
#include "math/special.hpp"

namespace gossip::core {

DirectedGossipAnalysis analyze_directed_gossip(const GeneratingFunction& gf,
                                               double q) {
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("analyze_directed_gossip requires q in [0,1]");
  }
  DirectedGossipAnalysis result;
  result.q = q;
  result.mean_progeny = q * gf.mean();
  result.supercritical = result.mean_progeny > 1.0;

  if (result.mean_progeny == 0.0) {
    // Nobody forwards: the cascade is just the source.
    return result;
  }

  // Extinction probability: smallest fixed point of y = G0(1 - q + q y)
  // on [0, 1]; iterate from 0 (monotone convergence to the smallest root).
  const auto offspring = [&](double y) { return gf.g0(1.0 - q + q * y); };
  const auto ext = math::fixed_point(offspring, 0.0);
  result.extinction_probability = ext.value;
  result.takeoff_probability = 1.0 - ext.value;

  // Member reach given take-off: in-degrees are Poisson(q z̄) regardless of
  // the fanout shape, so r = 1 - exp(-q z̄ r), solved the same way.
  const double m = result.mean_progeny;
  if (m > 1.0) {
    const auto reach = math::fixed_point(
        [m](double r) { return 1.0 - std::exp(-m * r); }, 1.0);
    result.member_reach_given_takeoff = reach.value;
  } else {
    result.member_reach_given_takeoff = 0.0;
  }
  result.expected_delivery =
      result.takeoff_probability * result.member_reach_given_takeoff;
  return result;
}

std::vector<double> borel_cascade_size_pmf(double mean_progeny,
                                           std::size_t max_size) {
  if (!(mean_progeny >= 0.0 && mean_progeny < 1.0)) {
    throw std::invalid_argument(
        "borel_cascade_size_pmf requires mean_progeny in [0, 1)");
  }
  if (max_size == 0) {
    throw std::invalid_argument("borel_cascade_size_pmf requires max_size > 0");
  }
  std::vector<double> pmf(max_size);
  if (mean_progeny == 0.0) {
    pmf[0] = 1.0;  // the cascade is exactly the root
    return pmf;
  }
  const double log_m = std::log(mean_progeny);
  for (std::size_t i = 0; i < max_size; ++i) {
    const double s = static_cast<double>(i + 1);
    // log P = -m s + (s-1) log(m s) - log(s!)
    const double log_p = -mean_progeny * s + (s - 1.0) * (log_m + std::log(s)) -
                         math::log_factorial(static_cast<std::int64_t>(i) + 1);
    pmf[i] = std::exp(log_p);
  }
  return pmf;
}

double borel_mean_cascade_size(double mean_progeny) {
  if (!(mean_progeny >= 0.0 && mean_progeny < 1.0)) {
    throw std::invalid_argument(
        "borel_mean_cascade_size requires mean_progeny in [0, 1)");
  }
  return 1.0 / (1.0 - mean_progeny);
}

}  // namespace gossip::core
