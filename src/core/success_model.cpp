#include "core/success_model.hpp"

#include <cmath>
#include <stdexcept>

#include "math/special.hpp"

namespace gossip::core {

double success_probability(double reliability, std::int64_t executions) {
  if (!(reliability >= 0.0 && reliability <= 1.0)) {
    throw std::invalid_argument(
        "success_probability requires reliability in [0, 1]");
  }
  if (executions < 0) {
    throw std::invalid_argument("success_probability requires executions >= 0");
  }
  return math::one_minus_pow(1.0 - reliability,
                             static_cast<double>(executions));
}

std::int64_t required_executions(double reliability, double target_success) {
  if (!(reliability >= 0.0 && reliability <= 1.0)) {
    throw std::invalid_argument(
        "required_executions requires reliability in [0, 1]");
  }
  if (!(target_success >= 0.0 && target_success < 1.0)) {
    throw std::invalid_argument(
        "required_executions requires target_success in [0, 1)");
  }
  if (target_success == 0.0) return 0;
  if (reliability == 0.0) {
    throw std::domain_error(
        "required_executions: unreachable target (zero reliability)");
  }
  if (reliability == 1.0) return 1;
  // Eq. (6): t >= log(1 - p_s) / log(1 - p_r).
  const double t =
      std::log1p(-target_success) / std::log1p(-reliability);
  auto needed = static_cast<std::int64_t>(std::ceil(t));
  // Guard the exact-boundary case against floating-point round-off.
  while (success_probability(reliability, needed) < target_success) {
    ++needed;
  }
  return needed;
}

std::vector<double> success_count_pmf(std::int64_t executions,
                                      double reliability) {
  if (executions < 0) {
    throw std::invalid_argument("success_count_pmf requires executions >= 0");
  }
  std::vector<double> pmf(static_cast<std::size_t>(executions) + 1);
  for (std::int64_t k = 0; k <= executions; ++k) {
    pmf[static_cast<std::size_t>(k)] =
        math::binomial_pmf(executions, k, reliability);
  }
  return pmf;
}

}  // namespace gossip::core
