#include "core/generating_function.hpp"

#include <stdexcept>

#include "math/series.hpp"

namespace gossip::core {

GeneratingFunction::GeneratingFunction(std::vector<double> pmf)
    : pmf_(math::normalize_pmf(pmf)) {
  mean_ = math::series_mean(pmf_);
  const double second_factorial = math::factorial_moment(pmf_, 2);
  mean_excess_ = mean_ > 0.0 ? second_factorial / mean_ : 0.0;
}

GeneratingFunction GeneratingFunction::from_distribution(
    const DegreeDistribution& dist, double tail_epsilon) {
  return GeneratingFunction(dist.pmf_vector(tail_epsilon));
}

double GeneratingFunction::g0(double x) const {
  return math::evaluate_series(pmf_, x);
}

double GeneratingFunction::g0_prime(double x) const {
  return math::evaluate_series_derivative(pmf_, x);
}

double GeneratingFunction::g0_second(double x) const {
  return math::evaluate_series_second_derivative(pmf_, x);
}

double GeneratingFunction::g1(double x) const {
  if (!(mean_ > 0.0)) {
    throw std::domain_error("G1 undefined: mean degree is zero");
  }
  return g0_prime(x) / mean_;
}

double GeneratingFunction::g1_prime(double x) const {
  if (!(mean_ > 0.0)) {
    throw std::domain_error("G1' undefined: mean degree is zero");
  }
  return g0_second(x) / mean_;
}

}  // namespace gossip::core
