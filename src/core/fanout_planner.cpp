#include "core/fanout_planner.hpp"

#include <stdexcept>

#include "core/reliability_model.hpp"
#include "core/success_model.hpp"

namespace gossip::core {

GossipPlan plan_poisson_gossip(const PlanRequest& request) {
  if (!(request.target_reliability > 0.0 && request.target_reliability < 1.0)) {
    throw std::invalid_argument(
        "plan_poisson_gossip requires target_reliability in (0, 1)");
  }
  if (!(request.target_success >= 0.0 && request.target_success < 1.0)) {
    throw std::invalid_argument(
        "plan_poisson_gossip requires target_success in [0, 1)");
  }
  if (!(request.nonfailed_ratio > 0.0 && request.nonfailed_ratio <= 1.0)) {
    throw std::invalid_argument(
        "plan_poisson_gossip requires nonfailed_ratio in (0, 1]");
  }

  GossipPlan plan;
  plan.mean_fanout = poisson_required_fanout(request.target_reliability,
                                             request.nonfailed_ratio);
  plan.critical_q = poisson_critical_q(plan.mean_fanout);
  plan.failure_margin = request.nonfailed_ratio - plan.critical_q;
  plan.predicted_reliability =
      poisson_reliability(plan.mean_fanout, request.nonfailed_ratio);
  plan.executions =
      required_executions(plan.predicted_reliability, request.target_success);
  plan.predicted_success =
      success_probability(plan.predicted_reliability, plan.executions);
  return plan;
}

double max_tolerable_failure_ratio(double mean_fanout,
                                   double target_reliability) {
  const double q_min =
      poisson_required_nonfailed_ratio(target_reliability, mean_fanout);
  return 1.0 - q_min;
}

}  // namespace gossip::core
