#pragma once

/// \file degree_distribution.hpp
/// Fanout distributions P for the general gossiping algorithm (paper Fig. 1:
/// each member draws f_i ~ P on first receipt). The paper's analysis works
/// for arbitrary P — that generality is one of its claimed advantages over
/// Poisson-only models — so this hierarchy provides the families used in the
/// paper (Poisson) plus the ones the ablations compare (fixed, binomial,
/// geometric, zipf, uniform, empirical).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rng/rng_stream.hpp"

namespace gossip::core {

/// Draws one fanout value from a stream; structurally identical to
/// graph::DegreeSampler so distributions plug into the graph generators.
using FanoutSampler = std::function<std::int64_t(rng::RngStream&)>;

class DegreeDistribution {
 public:
  virtual ~DegreeDistribution() = default;

  /// Human-readable identifier, e.g. "Poisson(z=4.0)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Mean fanout E[f].
  [[nodiscard]] virtual double mean() const = 0;

  /// P(f = k); 0 outside the support.
  [[nodiscard]] virtual double pmf(std::int64_t k) const = 0;

  /// Draws one fanout value.
  [[nodiscard]] virtual std::int64_t sample(rng::RngStream& rng) const = 0;

  /// Truncated pmf vector {p_0, ..., p_K} covering mass >= 1 - tail_epsilon.
  /// Finite-support distributions return their exact pmf. The result is NOT
  /// renormalized; GeneratingFunction normalizes on construction.
  [[nodiscard]] virtual std::vector<double> pmf_vector(
      double tail_epsilon) const;

  /// Adapter to the std::function sampler type used by graph generators and
  /// the protocol layer.
  [[nodiscard]] FanoutSampler sampler() const;
};

using DegreeDistributionPtr = std::shared_ptr<const DegreeDistribution>;

/// Poisson fanout Po(z) — the paper's Section 4.3 case study.
[[nodiscard]] DegreeDistributionPtr poisson_fanout(double mean);

/// Deterministic fanout: every member gossips to exactly k targets (the
/// "traditional" algorithm the paper generalizes away from).
[[nodiscard]] DegreeDistributionPtr fixed_fanout(std::int64_t k);

/// Binomial fanout B(trials, p).
[[nodiscard]] DegreeDistributionPtr binomial_fanout(std::int64_t trials,
                                                    double p);

/// Geometric fanout on {0, 1, 2, ...} with the given mean
/// (success probability p = 1/(1+mean)). Heavy-tailed relative to Poisson.
[[nodiscard]] DegreeDistributionPtr geometric_fanout(double mean);

/// Zipf fanout on {1, ..., max_value} with exponent s: P(k) ∝ k^{-s}.
[[nodiscard]] DegreeDistributionPtr zipf_fanout(std::int64_t max_value,
                                                double exponent);

/// Uniform integer fanout on the inclusive range [lo, hi].
[[nodiscard]] DegreeDistributionPtr uniform_fanout(std::int64_t lo,
                                                   std::int64_t hi);

/// Arbitrary finite pmf: weight[k] ∝ P(f = k). Normalized on construction.
[[nodiscard]] DegreeDistributionPtr empirical_fanout(
    std::vector<double> weights);

}  // namespace gossip::core
