#pragma once

/// \file success_model.hpp
/// The success-of-gossiping model of Section 4.2(2): repeated executions of
/// the algorithm are independent Bernoulli trials. With per-execution
/// reliability p_r = R(q, P), the number X of executions (out of t) in which
/// a given non-failed member receives the message is B(t, p_r), so
///   Pr(member reached at least once) = 1 - (1 - p_r)^t     (Eq. 5)
///   t >= log(1 - p_s) / log(1 - p_r)                       (Eq. 6)

#include <cstdint>
#include <vector>

namespace gossip::core {

/// Eq. (5): probability a non-failed member is reached at least once in
/// `executions` independent runs, given per-run reliability `reliability`.
[[nodiscard]] double success_probability(double reliability,
                                         std::int64_t executions);

/// Eq. (6): minimum number of executions t such that
/// success_probability(reliability, t) >= target_success. Throws when the
/// target is unreachable (reliability == 0 with target > 0).
[[nodiscard]] std::int64_t required_executions(double reliability,
                                               double target_success);

/// Full pmf of X ~ B(t, reliability): entry k is Pr(X = k), the model curve
/// drawn through the Figs. 6-7 histograms.
[[nodiscard]] std::vector<double> success_count_pmf(std::int64_t executions,
                                                    double reliability);

}  // namespace gossip::core
