#pragma once

/// \file bitvec.hpp
/// Packed bit vector over std::vector<uint64_t> words. The protocol layer's
/// infection/delivery/alive tracking lives in these instead of
/// std::vector<uint8_t> masks: 8x denser (n = 10^6 nodes fit in 125 KB per
/// mask), word-wise popcount for the survivor counts, and O(n/64) clears
/// between replications. operator[] returns bool, so read sites written
/// against the old byte masks keep working unchanged.

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <vector>

namespace gossip::core {

class Bitvec {
 public:
  Bitvec() = default;
  explicit Bitvec(std::size_t n, bool value = false) { assign(n, value); }
  Bitvec(std::initializer_list<bool> bits) {
    assign(bits.size(), false);
    std::size_t i = 0;
    for (const bool b : bits) {
      if (b) set(i);
      ++i;
    }
  }

  /// Resizes to n bits, all set to `value` (invariant: trailing bits of the
  /// last word are zero, so operator== and count() work word-wise).
  void assign(std::size_t n, bool value) {
    size_ = n;
    words_.assign((n + 63) / 64, value ? ~std::uint64_t{0} : std::uint64_t{0});
    trim();
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] bool operator[](std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  /// Bounds-checked read (the protocol's failure-injection callbacks take
  /// externally supplied node ids).
  [[nodiscard]] bool at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("Bitvec::at index out of range");
    return (*this)[i];
  }

  void set(std::size_t i) noexcept {
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  void reset(std::size_t i) noexcept {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void set(std::size_t i, bool value) noexcept {
    value ? set(i) : reset(i);
  }

  /// Clears every bit without touching capacity — the per-replication reset
  /// of the flat engine's steady-state loop.
  void reset_all() noexcept {
    std::fill(words_.begin(), words_.end(), std::uint64_t{0});
  }

  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t total = 0;
    for (const std::uint64_t w : words_) {
      total += static_cast<std::size_t>(std::popcount(w));
    }
    return total;
  }

  /// Bits set in both (e.g. alive AND infected — the survivors reached).
  [[nodiscard]] static std::size_t count_and(const Bitvec& a,
                                             const Bitvec& b) noexcept {
    const std::size_t words = std::min(a.words_.size(), b.words_.size());
    std::size_t total = 0;
    for (std::size_t i = 0; i < words; ++i) {
      total += static_cast<std::size_t>(
          std::popcount(a.words_[i] & b.words_[i]));
    }
    return total;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return words_.capacity() * sizeof(std::uint64_t);
  }

  friend bool operator==(const Bitvec& a, const Bitvec& b) noexcept {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  void trim() noexcept {
    const std::size_t tail = size_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << tail) - 1;
    }
  }

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace gossip::core
