#pragma once

/// \file branching.hpp
/// Branching-process analysis of one DIRECTED gossip cascade — the theory
/// behind the delivery metric (what the protocol actually achieves), as
/// opposed to the undirected giant-component metric the paper plots.
///
/// One execution of Fig. 1 is a forward branching process: the source draws
/// f ~ P targets, each target survives with probability q and then draws
/// its own f ~ P. The offspring generating function is therefore
///     G_off(x) = G0(1 - q + q x),
/// and the cascade dies out entirely with the extinction probability
///     y* = smallest fixed point of y = G_off(y).
/// Because every member's IN-degree is asymptotically Poisson(q z̄)
/// (uniform target choice thins to a Poisson regardless of the fanout
/// shape), the fraction of non-failed members reached GIVEN take-off
/// satisfies the Poisson fixed point
///     r = 1 - exp(-q z̄ r),
/// and the unconditional expected delivered fraction is (1 - y*) · r.
/// For Poisson fanout, y* = 1 - S and r = S, recovering the S^2 the
/// Monte Carlo measures; for other fanout shapes take-off and reach
/// decouple — take-off depends on the whole distribution, reach only on
/// its mean.

#include <cstddef>
#include <vector>

#include "core/generating_function.hpp"

namespace gossip::core {

struct DirectedGossipAnalysis {
  double q = 1.0;                ///< Non-failed member ratio.
  double mean_progeny = 0.0;     ///< R0 = q * mean fanout.
  bool supercritical = false;    ///< R0 > 1.
  double extinction_probability = 1.0;  ///< y*.
  double takeoff_probability = 0.0;     ///< 1 - y*.
  /// Fraction of non-failed members reached, conditional on take-off.
  double member_reach_given_takeoff = 0.0;
  /// Unconditional expected delivered fraction of non-failed members:
  /// takeoff_probability * member_reach_given_takeoff.
  double expected_delivery = 0.0;
};

/// Analyzes the directed cascade of the Fig. 1 protocol with fanout
/// generating function `gf` and non-failed ratio q in [0, 1].
[[nodiscard]] DirectedGossipAnalysis analyze_directed_gossip(
    const GeneratingFunction& gf, double q);

/// Borel distribution: the total size (including the root) of a subcritical
/// Galton-Watson cascade with Poisson(mean_progeny) offspring,
///     P(T = s) = e^{-m s} (m s)^{s-1} / s!,  s = 1, 2, ...
/// Entry k of the result is P(T = k + 1). mean_progeny must be in [0, 1).
/// This is the exact law of small gossip cascades below the phase
/// transition (paper Eq. (2) gives only its mean).
[[nodiscard]] std::vector<double> borel_cascade_size_pmf(
    double mean_progeny, std::size_t max_size);

/// Mean of the Borel law, 1 / (1 - mean_progeny): the expected number of
/// members one execution reaches below the critical point.
[[nodiscard]] double borel_mean_cascade_size(double mean_progeny);

}  // namespace gossip::core
