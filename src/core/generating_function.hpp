#pragma once

/// \file generating_function.hpp
/// Probability generating functions of fanout/degree distributions — the
/// analytical machinery of Section 3/4 of the paper:
///   G0(x) = sum_k p_k x^k                 (degree distribution)
///   G1(x) = G0'(x) / G0'(1)               (excess degree distribution)
/// The failure-thinned F0/F1 of Eq. (1) are formed in percolation.hpp as
/// q * G0 and q * G1 (uniform failure probability q_k = q).

#include <vector>

#include "core/degree_distribution.hpp"

namespace gossip::core {

class GeneratingFunction {
 public:
  /// Builds from a (possibly unnormalized) truncated pmf; coefficients are
  /// normalized so G0(1) = 1.
  explicit GeneratingFunction(std::vector<double> pmf);

  /// Builds from a distribution by truncating its pmf at mass
  /// 1 - tail_epsilon.
  [[nodiscard]] static GeneratingFunction from_distribution(
      const DegreeDistribution& dist, double tail_epsilon = 1e-12);

  /// G0(x).
  [[nodiscard]] double g0(double x) const;
  /// G0'(x).
  [[nodiscard]] double g0_prime(double x) const;
  /// G0''(x).
  [[nodiscard]] double g0_second(double x) const;

  /// G1(x) = G0'(x)/G0'(1). Throws if the mean degree is zero.
  [[nodiscard]] double g1(double x) const;
  /// G1'(x) = G0''(x)/G0'(1).
  [[nodiscard]] double g1_prime(double x) const;

  /// Mean degree z1 = G0'(1).
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Mean excess degree G1'(1) = G0''(1)/G0'(1); the reciprocal of the
  /// critical non-failed ratio (paper Eq. (3)).
  [[nodiscard]] double mean_excess_degree() const noexcept {
    return mean_excess_;
  }

  /// The normalized coefficient vector {p_0, ..., p_K}.
  [[nodiscard]] const std::vector<double>& pmf() const noexcept {
    return pmf_;
  }

 private:
  std::vector<double> pmf_;
  double mean_ = 0.0;
  double mean_excess_ = 0.0;
};

}  // namespace gossip::core
