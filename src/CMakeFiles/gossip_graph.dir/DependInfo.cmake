
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/components.cpp" "src/CMakeFiles/gossip_graph.dir/graph/components.cpp.o" "gcc" "src/CMakeFiles/gossip_graph.dir/graph/components.cpp.o.d"
  "/root/repo/src/graph/digraph.cpp" "src/CMakeFiles/gossip_graph.dir/graph/digraph.cpp.o" "gcc" "src/CMakeFiles/gossip_graph.dir/graph/digraph.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/gossip_graph.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/gossip_graph.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/reachability.cpp" "src/CMakeFiles/gossip_graph.dir/graph/reachability.cpp.o" "gcc" "src/CMakeFiles/gossip_graph.dir/graph/reachability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gossip_rng.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
