# Empty dependencies file for gossip_graph.
# This may be replaced when dependencies are built.
