file(REMOVE_RECURSE
  "libgossip_graph.a"
)
