file(REMOVE_RECURSE
  "CMakeFiles/gossip_graph.dir/graph/components.cpp.o"
  "CMakeFiles/gossip_graph.dir/graph/components.cpp.o.d"
  "CMakeFiles/gossip_graph.dir/graph/digraph.cpp.o"
  "CMakeFiles/gossip_graph.dir/graph/digraph.cpp.o.d"
  "CMakeFiles/gossip_graph.dir/graph/generators.cpp.o"
  "CMakeFiles/gossip_graph.dir/graph/generators.cpp.o.d"
  "CMakeFiles/gossip_graph.dir/graph/reachability.cpp.o"
  "CMakeFiles/gossip_graph.dir/graph/reachability.cpp.o.d"
  "libgossip_graph.a"
  "libgossip_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
