# Empty dependencies file for gossip_experiment.
# This may be replaced when dependencies are built.
