file(REMOVE_RECURSE
  "CMakeFiles/gossip_experiment.dir/experiment/component_mc.cpp.o"
  "CMakeFiles/gossip_experiment.dir/experiment/component_mc.cpp.o.d"
  "CMakeFiles/gossip_experiment.dir/experiment/csv.cpp.o"
  "CMakeFiles/gossip_experiment.dir/experiment/csv.cpp.o.d"
  "CMakeFiles/gossip_experiment.dir/experiment/meanfield.cpp.o"
  "CMakeFiles/gossip_experiment.dir/experiment/meanfield.cpp.o.d"
  "CMakeFiles/gossip_experiment.dir/experiment/monte_carlo.cpp.o"
  "CMakeFiles/gossip_experiment.dir/experiment/monte_carlo.cpp.o.d"
  "CMakeFiles/gossip_experiment.dir/experiment/sweep.cpp.o"
  "CMakeFiles/gossip_experiment.dir/experiment/sweep.cpp.o.d"
  "CMakeFiles/gossip_experiment.dir/experiment/table.cpp.o"
  "CMakeFiles/gossip_experiment.dir/experiment/table.cpp.o.d"
  "libgossip_experiment.a"
  "libgossip_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
