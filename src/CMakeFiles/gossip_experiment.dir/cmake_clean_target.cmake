file(REMOVE_RECURSE
  "libgossip_experiment.a"
)
