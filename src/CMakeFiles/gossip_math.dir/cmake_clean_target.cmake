file(REMOVE_RECURSE
  "libgossip_math.a"
)
