file(REMOVE_RECURSE
  "CMakeFiles/gossip_math.dir/math/fixed_point.cpp.o"
  "CMakeFiles/gossip_math.dir/math/fixed_point.cpp.o.d"
  "CMakeFiles/gossip_math.dir/math/meanfield.cpp.o"
  "CMakeFiles/gossip_math.dir/math/meanfield.cpp.o.d"
  "CMakeFiles/gossip_math.dir/math/ode.cpp.o"
  "CMakeFiles/gossip_math.dir/math/ode.cpp.o.d"
  "CMakeFiles/gossip_math.dir/math/roots.cpp.o"
  "CMakeFiles/gossip_math.dir/math/roots.cpp.o.d"
  "CMakeFiles/gossip_math.dir/math/series.cpp.o"
  "CMakeFiles/gossip_math.dir/math/series.cpp.o.d"
  "CMakeFiles/gossip_math.dir/math/special.cpp.o"
  "CMakeFiles/gossip_math.dir/math/special.cpp.o.d"
  "libgossip_math.a"
  "libgossip_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
