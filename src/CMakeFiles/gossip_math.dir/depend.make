# Empty dependencies file for gossip_math.
# This may be replaced when dependencies are built.
