
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/fixed_point.cpp" "src/CMakeFiles/gossip_math.dir/math/fixed_point.cpp.o" "gcc" "src/CMakeFiles/gossip_math.dir/math/fixed_point.cpp.o.d"
  "/root/repo/src/math/meanfield.cpp" "src/CMakeFiles/gossip_math.dir/math/meanfield.cpp.o" "gcc" "src/CMakeFiles/gossip_math.dir/math/meanfield.cpp.o.d"
  "/root/repo/src/math/ode.cpp" "src/CMakeFiles/gossip_math.dir/math/ode.cpp.o" "gcc" "src/CMakeFiles/gossip_math.dir/math/ode.cpp.o.d"
  "/root/repo/src/math/roots.cpp" "src/CMakeFiles/gossip_math.dir/math/roots.cpp.o" "gcc" "src/CMakeFiles/gossip_math.dir/math/roots.cpp.o.d"
  "/root/repo/src/math/series.cpp" "src/CMakeFiles/gossip_math.dir/math/series.cpp.o" "gcc" "src/CMakeFiles/gossip_math.dir/math/series.cpp.o.d"
  "/root/repo/src/math/special.cpp" "src/CMakeFiles/gossip_math.dir/math/special.cpp.o" "gcc" "src/CMakeFiles/gossip_math.dir/math/special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
