file(REMOVE_RECURSE
  "CMakeFiles/gossip_stats.dir/stats/ci.cpp.o"
  "CMakeFiles/gossip_stats.dir/stats/ci.cpp.o.d"
  "CMakeFiles/gossip_stats.dir/stats/fit.cpp.o"
  "CMakeFiles/gossip_stats.dir/stats/fit.cpp.o.d"
  "CMakeFiles/gossip_stats.dir/stats/gof.cpp.o"
  "CMakeFiles/gossip_stats.dir/stats/gof.cpp.o.d"
  "CMakeFiles/gossip_stats.dir/stats/histogram.cpp.o"
  "CMakeFiles/gossip_stats.dir/stats/histogram.cpp.o.d"
  "CMakeFiles/gossip_stats.dir/stats/summary.cpp.o"
  "CMakeFiles/gossip_stats.dir/stats/summary.cpp.o.d"
  "libgossip_stats.a"
  "libgossip_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
