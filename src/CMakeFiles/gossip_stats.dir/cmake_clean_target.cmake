file(REMOVE_RECURSE
  "libgossip_stats.a"
)
