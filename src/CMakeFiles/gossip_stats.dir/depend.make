# Empty dependencies file for gossip_stats.
# This may be replaced when dependencies are built.
