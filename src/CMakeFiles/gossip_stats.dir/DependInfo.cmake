
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/ci.cpp" "src/CMakeFiles/gossip_stats.dir/stats/ci.cpp.o" "gcc" "src/CMakeFiles/gossip_stats.dir/stats/ci.cpp.o.d"
  "/root/repo/src/stats/fit.cpp" "src/CMakeFiles/gossip_stats.dir/stats/fit.cpp.o" "gcc" "src/CMakeFiles/gossip_stats.dir/stats/fit.cpp.o.d"
  "/root/repo/src/stats/gof.cpp" "src/CMakeFiles/gossip_stats.dir/stats/gof.cpp.o" "gcc" "src/CMakeFiles/gossip_stats.dir/stats/gof.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/gossip_stats.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/gossip_stats.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/CMakeFiles/gossip_stats.dir/stats/summary.cpp.o" "gcc" "src/CMakeFiles/gossip_stats.dir/stats/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gossip_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
