file(REMOVE_RECURSE
  "CMakeFiles/gossip_rng.dir/rng/alias_table.cpp.o"
  "CMakeFiles/gossip_rng.dir/rng/alias_table.cpp.o.d"
  "CMakeFiles/gossip_rng.dir/rng/distributions.cpp.o"
  "CMakeFiles/gossip_rng.dir/rng/distributions.cpp.o.d"
  "CMakeFiles/gossip_rng.dir/rng/lut_sampler.cpp.o"
  "CMakeFiles/gossip_rng.dir/rng/lut_sampler.cpp.o.d"
  "CMakeFiles/gossip_rng.dir/rng/rng_stream.cpp.o"
  "CMakeFiles/gossip_rng.dir/rng/rng_stream.cpp.o.d"
  "CMakeFiles/gossip_rng.dir/rng/xoshiro256.cpp.o"
  "CMakeFiles/gossip_rng.dir/rng/xoshiro256.cpp.o.d"
  "libgossip_rng.a"
  "libgossip_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
