file(REMOVE_RECURSE
  "libgossip_rng.a"
)
