
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rng/alias_table.cpp" "src/CMakeFiles/gossip_rng.dir/rng/alias_table.cpp.o" "gcc" "src/CMakeFiles/gossip_rng.dir/rng/alias_table.cpp.o.d"
  "/root/repo/src/rng/distributions.cpp" "src/CMakeFiles/gossip_rng.dir/rng/distributions.cpp.o" "gcc" "src/CMakeFiles/gossip_rng.dir/rng/distributions.cpp.o.d"
  "/root/repo/src/rng/lut_sampler.cpp" "src/CMakeFiles/gossip_rng.dir/rng/lut_sampler.cpp.o" "gcc" "src/CMakeFiles/gossip_rng.dir/rng/lut_sampler.cpp.o.d"
  "/root/repo/src/rng/rng_stream.cpp" "src/CMakeFiles/gossip_rng.dir/rng/rng_stream.cpp.o" "gcc" "src/CMakeFiles/gossip_rng.dir/rng/rng_stream.cpp.o.d"
  "/root/repo/src/rng/xoshiro256.cpp" "src/CMakeFiles/gossip_rng.dir/rng/xoshiro256.cpp.o" "gcc" "src/CMakeFiles/gossip_rng.dir/rng/xoshiro256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gossip_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
