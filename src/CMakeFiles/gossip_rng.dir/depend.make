# Empty dependencies file for gossip_rng.
# This may be replaced when dependencies are built.
