file(REMOVE_RECURSE
  "libgossip_obs.a"
)
