file(REMOVE_RECURSE
  "CMakeFiles/gossip_obs.dir/obs/manifest.cpp.o"
  "CMakeFiles/gossip_obs.dir/obs/manifest.cpp.o.d"
  "CMakeFiles/gossip_obs.dir/obs/probe.cpp.o"
  "CMakeFiles/gossip_obs.dir/obs/probe.cpp.o.d"
  "libgossip_obs.a"
  "libgossip_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
