# Empty dependencies file for gossip_obs.
# This may be replaced when dependencies are built.
