file(REMOVE_RECURSE
  "CMakeFiles/gossip_protocol.dir/protocol/anti_entropy.cpp.o"
  "CMakeFiles/gossip_protocol.dir/protocol/anti_entropy.cpp.o.d"
  "CMakeFiles/gossip_protocol.dir/protocol/flat_gossip.cpp.o"
  "CMakeFiles/gossip_protocol.dir/protocol/flat_gossip.cpp.o.d"
  "CMakeFiles/gossip_protocol.dir/protocol/gossip_multicast.cpp.o"
  "CMakeFiles/gossip_protocol.dir/protocol/gossip_multicast.cpp.o.d"
  "CMakeFiles/gossip_protocol.dir/protocol/repeated_gossip.cpp.o"
  "CMakeFiles/gossip_protocol.dir/protocol/repeated_gossip.cpp.o.d"
  "CMakeFiles/gossip_protocol.dir/protocol/round_gossip.cpp.o"
  "CMakeFiles/gossip_protocol.dir/protocol/round_gossip.cpp.o.d"
  "libgossip_protocol.a"
  "libgossip_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
