# Empty dependencies file for gossip_protocol.
# This may be replaced when dependencies are built.
