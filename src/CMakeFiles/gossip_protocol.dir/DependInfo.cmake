
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/anti_entropy.cpp" "src/CMakeFiles/gossip_protocol.dir/protocol/anti_entropy.cpp.o" "gcc" "src/CMakeFiles/gossip_protocol.dir/protocol/anti_entropy.cpp.o.d"
  "/root/repo/src/protocol/flat_gossip.cpp" "src/CMakeFiles/gossip_protocol.dir/protocol/flat_gossip.cpp.o" "gcc" "src/CMakeFiles/gossip_protocol.dir/protocol/flat_gossip.cpp.o.d"
  "/root/repo/src/protocol/gossip_multicast.cpp" "src/CMakeFiles/gossip_protocol.dir/protocol/gossip_multicast.cpp.o" "gcc" "src/CMakeFiles/gossip_protocol.dir/protocol/gossip_multicast.cpp.o.d"
  "/root/repo/src/protocol/repeated_gossip.cpp" "src/CMakeFiles/gossip_protocol.dir/protocol/repeated_gossip.cpp.o" "gcc" "src/CMakeFiles/gossip_protocol.dir/protocol/repeated_gossip.cpp.o.d"
  "/root/repo/src/protocol/round_gossip.cpp" "src/CMakeFiles/gossip_protocol.dir/protocol/round_gossip.cpp.o" "gcc" "src/CMakeFiles/gossip_protocol.dir/protocol/round_gossip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gossip_core.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_membership.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_net.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_obs.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_rng.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_sim.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
