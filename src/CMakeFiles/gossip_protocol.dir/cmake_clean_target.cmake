file(REMOVE_RECURSE
  "libgossip_protocol.a"
)
