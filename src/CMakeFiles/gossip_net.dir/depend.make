# Empty dependencies file for gossip_net.
# This may be replaced when dependencies are built.
