
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/latency.cpp" "src/CMakeFiles/gossip_net.dir/net/latency.cpp.o" "gcc" "src/CMakeFiles/gossip_net.dir/net/latency.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/gossip_net.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/gossip_net.dir/net/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gossip_rng.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_sim.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
