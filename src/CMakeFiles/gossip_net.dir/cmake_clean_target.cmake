file(REMOVE_RECURSE
  "libgossip_net.a"
)
