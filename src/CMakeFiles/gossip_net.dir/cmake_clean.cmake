file(REMOVE_RECURSE
  "CMakeFiles/gossip_net.dir/net/latency.cpp.o"
  "CMakeFiles/gossip_net.dir/net/latency.cpp.o.d"
  "CMakeFiles/gossip_net.dir/net/network.cpp.o"
  "CMakeFiles/gossip_net.dir/net/network.cpp.o.d"
  "libgossip_net.a"
  "libgossip_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
