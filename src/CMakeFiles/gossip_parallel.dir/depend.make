# Empty dependencies file for gossip_parallel.
# This may be replaced when dependencies are built.
