file(REMOVE_RECURSE
  "CMakeFiles/gossip_parallel.dir/parallel/parallel_for.cpp.o"
  "CMakeFiles/gossip_parallel.dir/parallel/parallel_for.cpp.o.d"
  "CMakeFiles/gossip_parallel.dir/parallel/thread_pool.cpp.o"
  "CMakeFiles/gossip_parallel.dir/parallel/thread_pool.cpp.o.d"
  "libgossip_parallel.a"
  "libgossip_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
