file(REMOVE_RECURSE
  "libgossip_parallel.a"
)
