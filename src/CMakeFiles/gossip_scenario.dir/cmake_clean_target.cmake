file(REMOVE_RECURSE
  "libgossip_scenario.a"
)
