file(REMOVE_RECURSE
  "CMakeFiles/gossip_scenario.dir/scenario/compare.cpp.o"
  "CMakeFiles/gossip_scenario.dir/scenario/compare.cpp.o.d"
  "CMakeFiles/gossip_scenario.dir/scenario/failure_models.cpp.o"
  "CMakeFiles/gossip_scenario.dir/scenario/failure_models.cpp.o.d"
  "CMakeFiles/gossip_scenario.dir/scenario/manifest.cpp.o"
  "CMakeFiles/gossip_scenario.dir/scenario/manifest.cpp.o.d"
  "CMakeFiles/gossip_scenario.dir/scenario/registry.cpp.o"
  "CMakeFiles/gossip_scenario.dir/scenario/registry.cpp.o.d"
  "CMakeFiles/gossip_scenario.dir/scenario/runner.cpp.o"
  "CMakeFiles/gossip_scenario.dir/scenario/runner.cpp.o.d"
  "CMakeFiles/gossip_scenario.dir/scenario/spec.cpp.o"
  "CMakeFiles/gossip_scenario.dir/scenario/spec.cpp.o.d"
  "CMakeFiles/gossip_scenario.dir/scenario/topology.cpp.o"
  "CMakeFiles/gossip_scenario.dir/scenario/topology.cpp.o.d"
  "libgossip_scenario.a"
  "libgossip_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
