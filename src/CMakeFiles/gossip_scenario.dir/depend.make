# Empty dependencies file for gossip_scenario.
# This may be replaced when dependencies are built.
