file(REMOVE_RECURSE
  "libgossip_sim.a"
)
