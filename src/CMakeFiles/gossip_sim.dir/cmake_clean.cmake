file(REMOVE_RECURSE
  "CMakeFiles/gossip_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/gossip_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/gossip_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/gossip_sim.dir/sim/simulator.cpp.o.d"
  "libgossip_sim.a"
  "libgossip_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
