# Empty dependencies file for gossip_sim.
# This may be replaced when dependencies are built.
