file(REMOVE_RECURSE
  "libgossip_core.a"
)
