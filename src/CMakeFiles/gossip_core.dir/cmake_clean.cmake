file(REMOVE_RECURSE
  "CMakeFiles/gossip_core.dir/core/baselines/anti_entropy_model.cpp.o"
  "CMakeFiles/gossip_core.dir/core/baselines/anti_entropy_model.cpp.o.d"
  "CMakeFiles/gossip_core.dir/core/baselines/kmg_model.cpp.o"
  "CMakeFiles/gossip_core.dir/core/baselines/kmg_model.cpp.o.d"
  "CMakeFiles/gossip_core.dir/core/baselines/pbcast_recurrence.cpp.o"
  "CMakeFiles/gossip_core.dir/core/baselines/pbcast_recurrence.cpp.o.d"
  "CMakeFiles/gossip_core.dir/core/baselines/si_epidemic.cpp.o"
  "CMakeFiles/gossip_core.dir/core/baselines/si_epidemic.cpp.o.d"
  "CMakeFiles/gossip_core.dir/core/branching.cpp.o"
  "CMakeFiles/gossip_core.dir/core/branching.cpp.o.d"
  "CMakeFiles/gossip_core.dir/core/degree_distribution.cpp.o"
  "CMakeFiles/gossip_core.dir/core/degree_distribution.cpp.o.d"
  "CMakeFiles/gossip_core.dir/core/fanout_planner.cpp.o"
  "CMakeFiles/gossip_core.dir/core/fanout_planner.cpp.o.d"
  "CMakeFiles/gossip_core.dir/core/generating_function.cpp.o"
  "CMakeFiles/gossip_core.dir/core/generating_function.cpp.o.d"
  "CMakeFiles/gossip_core.dir/core/percolation.cpp.o"
  "CMakeFiles/gossip_core.dir/core/percolation.cpp.o.d"
  "CMakeFiles/gossip_core.dir/core/reliability_model.cpp.o"
  "CMakeFiles/gossip_core.dir/core/reliability_model.cpp.o.d"
  "CMakeFiles/gossip_core.dir/core/success_model.cpp.o"
  "CMakeFiles/gossip_core.dir/core/success_model.cpp.o.d"
  "libgossip_core.a"
  "libgossip_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
