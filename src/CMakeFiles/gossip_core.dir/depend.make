# Empty dependencies file for gossip_core.
# This may be replaced when dependencies are built.
