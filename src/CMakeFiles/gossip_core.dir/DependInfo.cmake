
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines/anti_entropy_model.cpp" "src/CMakeFiles/gossip_core.dir/core/baselines/anti_entropy_model.cpp.o" "gcc" "src/CMakeFiles/gossip_core.dir/core/baselines/anti_entropy_model.cpp.o.d"
  "/root/repo/src/core/baselines/kmg_model.cpp" "src/CMakeFiles/gossip_core.dir/core/baselines/kmg_model.cpp.o" "gcc" "src/CMakeFiles/gossip_core.dir/core/baselines/kmg_model.cpp.o.d"
  "/root/repo/src/core/baselines/pbcast_recurrence.cpp" "src/CMakeFiles/gossip_core.dir/core/baselines/pbcast_recurrence.cpp.o" "gcc" "src/CMakeFiles/gossip_core.dir/core/baselines/pbcast_recurrence.cpp.o.d"
  "/root/repo/src/core/baselines/si_epidemic.cpp" "src/CMakeFiles/gossip_core.dir/core/baselines/si_epidemic.cpp.o" "gcc" "src/CMakeFiles/gossip_core.dir/core/baselines/si_epidemic.cpp.o.d"
  "/root/repo/src/core/branching.cpp" "src/CMakeFiles/gossip_core.dir/core/branching.cpp.o" "gcc" "src/CMakeFiles/gossip_core.dir/core/branching.cpp.o.d"
  "/root/repo/src/core/degree_distribution.cpp" "src/CMakeFiles/gossip_core.dir/core/degree_distribution.cpp.o" "gcc" "src/CMakeFiles/gossip_core.dir/core/degree_distribution.cpp.o.d"
  "/root/repo/src/core/fanout_planner.cpp" "src/CMakeFiles/gossip_core.dir/core/fanout_planner.cpp.o" "gcc" "src/CMakeFiles/gossip_core.dir/core/fanout_planner.cpp.o.d"
  "/root/repo/src/core/generating_function.cpp" "src/CMakeFiles/gossip_core.dir/core/generating_function.cpp.o" "gcc" "src/CMakeFiles/gossip_core.dir/core/generating_function.cpp.o.d"
  "/root/repo/src/core/percolation.cpp" "src/CMakeFiles/gossip_core.dir/core/percolation.cpp.o" "gcc" "src/CMakeFiles/gossip_core.dir/core/percolation.cpp.o.d"
  "/root/repo/src/core/reliability_model.cpp" "src/CMakeFiles/gossip_core.dir/core/reliability_model.cpp.o" "gcc" "src/CMakeFiles/gossip_core.dir/core/reliability_model.cpp.o.d"
  "/root/repo/src/core/success_model.cpp" "src/CMakeFiles/gossip_core.dir/core/success_model.cpp.o" "gcc" "src/CMakeFiles/gossip_core.dir/core/success_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gossip_math.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
