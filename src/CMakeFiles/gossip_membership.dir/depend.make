# Empty dependencies file for gossip_membership.
# This may be replaced when dependencies are built.
