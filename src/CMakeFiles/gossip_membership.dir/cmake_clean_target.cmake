file(REMOVE_RECURSE
  "libgossip_membership.a"
)
