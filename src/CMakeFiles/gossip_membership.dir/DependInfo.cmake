
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/membership/dynamics.cpp" "src/CMakeFiles/gossip_membership.dir/membership/dynamics.cpp.o" "gcc" "src/CMakeFiles/gossip_membership.dir/membership/dynamics.cpp.o.d"
  "/root/repo/src/membership/full_view.cpp" "src/CMakeFiles/gossip_membership.dir/membership/full_view.cpp.o" "gcc" "src/CMakeFiles/gossip_membership.dir/membership/full_view.cpp.o.d"
  "/root/repo/src/membership/partial_view.cpp" "src/CMakeFiles/gossip_membership.dir/membership/partial_view.cpp.o" "gcc" "src/CMakeFiles/gossip_membership.dir/membership/partial_view.cpp.o.d"
  "/root/repo/src/membership/scamp.cpp" "src/CMakeFiles/gossip_membership.dir/membership/scamp.cpp.o" "gcc" "src/CMakeFiles/gossip_membership.dir/membership/scamp.cpp.o.d"
  "/root/repo/src/membership/topology_view.cpp" "src/CMakeFiles/gossip_membership.dir/membership/topology_view.cpp.o" "gcc" "src/CMakeFiles/gossip_membership.dir/membership/topology_view.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/gossip_rng.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/gossip_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
