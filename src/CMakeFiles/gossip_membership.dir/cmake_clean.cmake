file(REMOVE_RECURSE
  "CMakeFiles/gossip_membership.dir/membership/dynamics.cpp.o"
  "CMakeFiles/gossip_membership.dir/membership/dynamics.cpp.o.d"
  "CMakeFiles/gossip_membership.dir/membership/full_view.cpp.o"
  "CMakeFiles/gossip_membership.dir/membership/full_view.cpp.o.d"
  "CMakeFiles/gossip_membership.dir/membership/partial_view.cpp.o"
  "CMakeFiles/gossip_membership.dir/membership/partial_view.cpp.o.d"
  "CMakeFiles/gossip_membership.dir/membership/scamp.cpp.o"
  "CMakeFiles/gossip_membership.dir/membership/scamp.cpp.o.d"
  "CMakeFiles/gossip_membership.dir/membership/topology_view.cpp.o"
  "CMakeFiles/gossip_membership.dir/membership/topology_view.cpp.o.d"
  "libgossip_membership.a"
  "libgossip_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
