#pragma once

/// \file gof.hpp
/// Goodness-of-fit tests. The Figs. 6/7 benches use the chi-square test to
/// check that the simulated success-count distribution matches the paper's
/// B(20, R) Bernoulli-trials model quantitatively, not just by eye.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace gossip::stats {

struct ChiSquareResult {
  double statistic = 0.0;
  double dof = 0.0;       ///< Degrees of freedom after bin pooling.
  double p_value = 1.0;   ///< P(chi2_dof >= statistic).
  int pooled_bins = 0;    ///< Bins merged to satisfy the expected-count rule.
};

/// Pearson chi-square test of observed counts against expected probabilities.
/// `expected_pmf` must sum to ~1 over the same support as `observed`.
/// Adjacent low-expectation bins (expected count < min_expected) are pooled
/// from the tails inward, the standard remedy for sparse tails.
[[nodiscard]] ChiSquareResult chi_square_test(
    std::span<const std::uint64_t> observed,
    std::span<const double> expected_pmf, double min_expected = 5.0);

struct KsResult {
  double statistic = 0.0;  ///< sup |F_n - F|
  double p_value = 1.0;    ///< Asymptotic Kolmogorov distribution tail.
};

/// One-sample Kolmogorov-Smirnov test of `sample` (any order) against a
/// continuous CDF evaluated by `cdf`.
[[nodiscard]] KsResult ks_test(std::vector<double> sample,
                               const std::function<double(double)>& cdf);

}  // namespace gossip::stats
