#include "stats/fit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "math/special.hpp"

namespace gossip::stats {

namespace {

double validated_sample_mean(std::span<const std::int64_t> samples) {
  if (samples.empty()) {
    throw std::invalid_argument("fit requires at least one sample");
  }
  double sum = 0.0;
  for (const auto s : samples) {
    if (s < 0) {
      throw std::invalid_argument("fanout samples must be non-negative");
    }
    sum += static_cast<double>(s);  // LINT-ALLOW(float-accumulation): single fit over the caller's sample span, order fixed by the span itself
  }
  return sum / static_cast<double>(samples.size());
}

}  // namespace

PoissonFit fit_poisson(std::span<const std::int64_t> samples) {
  PoissonFit fit;
  fit.mean = validated_sample_mean(samples);
  fit.samples = samples.size();
  for (const auto s : samples) {
    fit.log_likelihood += std::log(std::max(
        math::poisson_pmf(s, std::max(fit.mean, 1e-300)), 1e-300));
  }
  return fit;
}

GeometricFit fit_geometric(std::span<const std::int64_t> samples) {
  GeometricFit fit;
  fit.mean = validated_sample_mean(samples);
  fit.success_probability = 1.0 / (1.0 + fit.mean);
  fit.samples = samples.size();
  const double p = fit.success_probability;
  for (const auto s : samples) {
    fit.log_likelihood +=
        std::log(p) + static_cast<double>(s) * std::log1p(-p);
  }
  return fit;
}

ChiSquareResult poisson_adequacy_test(std::span<const std::int64_t> samples,
                                      double mean, bool estimated) {
  if (samples.empty()) {
    throw std::invalid_argument("adequacy test requires samples");
  }
  if (!(mean >= 0.0)) {
    throw std::invalid_argument("adequacy test requires mean >= 0");
  }
  std::int64_t max_k = 0;
  for (const auto s : samples) {
    max_k = std::max(max_k, s);
  }
  // One extra bin absorbs the upper tail beyond the observed maximum.
  const auto bins = static_cast<std::size_t>(max_k) + 2;
  std::vector<std::uint64_t> observed(bins, 0);
  for (const auto s : samples) {
    ++observed[static_cast<std::size_t>(s)];
  }
  std::vector<double> expected(bins, 0.0);
  double cumulative = 0.0;
  for (std::size_t k = 0; k + 1 < bins; ++k) {
    expected[k] = math::poisson_pmf(static_cast<std::int64_t>(k), mean);
    cumulative += expected[k];  // LINT-ALLOW(float-accumulation): pmf partial sum in fixed bin order k = 0..bins-1
  }
  expected[bins - 1] = std::max(0.0, 1.0 - cumulative);

  ChiSquareResult result = chi_square_test(observed, expected);
  if (estimated && result.dof > 1.0) {
    // Charge the estimated parameter: dof falls by one.
    result.dof -= 1.0;
    result.p_value = math::chi_square_sf(result.statistic, result.dof);
  }
  return result;
}

}  // namespace gossip::stats
