#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace gossip::stats {

void OnlineSummary::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineSummary::merge(const OnlineSummary& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineSummary::mean() const noexcept { return count_ ? mean_ : 0.0; }

double OnlineSummary::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double OnlineSummary::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineSummary::standard_error() const noexcept {
  return count_ > 1 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
}

double OnlineSummary::sum() const noexcept {
  return mean_ * static_cast<double>(count_);
}

}  // namespace gossip::stats
