#include "stats/histogram.hpp"

#include <algorithm>
#include <stdexcept>

namespace gossip::stats {

IntHistogram::IntHistogram(std::int64_t max_value) {
  if (max_value < 0) {
    throw std::invalid_argument("IntHistogram requires max_value >= 0");
  }
  bins_.assign(static_cast<std::size_t>(max_value) + 1, 0);
}

void IntHistogram::add(std::int64_t value) noexcept { add(value, 1); }

void IntHistogram::add(std::int64_t value, std::uint64_t weight) noexcept {
  std::int64_t clamped = value;
  if (value < 0) {
    underflow_ += weight;
    clamped = 0;
  } else if (value > max_value()) {
    overflow_ += weight;
    clamped = max_value();
  }
  bins_[static_cast<std::size_t>(clamped)] += weight;
  total_ += weight;
}

std::uint64_t IntHistogram::count(std::int64_t value) const {
  if (value < 0 || value > max_value()) {
    throw std::out_of_range("IntHistogram::count value outside bin range");
  }
  return bins_[static_cast<std::size_t>(value)];
}

std::vector<double> IntHistogram::pmf() const {
  std::vector<double> out(bins_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    out[i] = static_cast<double>(bins_[i]) / static_cast<double>(total_);
  }
  return out;
}

double IntHistogram::mean() const {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    acc += static_cast<double>(i) * static_cast<double>(bins_[i]);  // LINT-ALLOW(float-accumulation): histogram moment in fixed bin-index order
  }
  return acc / static_cast<double>(total_);
}

}  // namespace gossip::stats
