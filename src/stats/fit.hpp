#pragma once

/// \file fit.hpp
/// Fitting fanout distributions to observed samples — the bridge from a
/// deployed system's measured gossip behaviour to the paper's model. An
/// operator logs the per-member fanouts actually used, fits a family here,
/// checks adequacy, and feeds the fitted distribution to core::GossipModel
/// (see examples/trace_calibration.cpp).

#include <cstdint>
#include <span>

#include "stats/gof.hpp"

namespace gossip::stats {

struct PoissonFit {
  double mean = 0.0;            ///< MLE: the sample mean.
  double log_likelihood = 0.0;  ///< At the MLE.
  std::size_t samples = 0;
};

/// Maximum-likelihood Poisson fit; samples must be non-negative.
[[nodiscard]] PoissonFit fit_poisson(std::span<const std::int64_t> samples);

struct GeometricFit {
  double mean = 0.0;               ///< MLE of the mean (sample mean).
  double success_probability = 0.0;  ///< p = 1 / (1 + mean).
  double log_likelihood = 0.0;
  std::size_t samples = 0;
};

/// Maximum-likelihood geometric (failures-before-success) fit.
[[nodiscard]] GeometricFit fit_geometric(
    std::span<const std::int64_t> samples);

/// Chi-square adequacy test of samples against Poisson(mean). One degree of
/// freedom is charged for the estimated parameter when `estimated` is true.
[[nodiscard]] ChiSquareResult poisson_adequacy_test(
    std::span<const std::int64_t> samples, double mean, bool estimated = true);

}  // namespace gossip::stats
