#include "stats/gof.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>

#include "math/special.hpp"

namespace gossip::stats {

ChiSquareResult chi_square_test(std::span<const std::uint64_t> observed,
                                std::span<const double> expected_pmf,
                                double min_expected) {
  if (observed.size() != expected_pmf.size()) {
    throw std::invalid_argument("chi_square_test size mismatch");
  }
  if (observed.empty()) {
    throw std::invalid_argument("chi_square_test requires at least one bin");
  }
  std::uint64_t total = 0;
  for (const auto o : observed) total += o;
  if (total == 0) {
    throw std::invalid_argument("chi_square_test requires observations");
  }
  const double n = static_cast<double>(total);

  // Pool sparse bins from both tails inward until every remaining bin has an
  // expected count of at least `min_expected`.
  struct Bin {
    double observed;
    double expected;
  };
  std::vector<Bin> bins;
  bins.reserve(observed.size());
  for (std::size_t i = 0; i < observed.size(); ++i) {
    bins.push_back({static_cast<double>(observed[i]), expected_pmf[i] * n});
  }

  int pooled = 0;
  const auto pool_pass = [&]() {
    // Left tail.
    while (bins.size() > 1 && bins.front().expected < min_expected) {
      bins[1].observed += bins[0].observed;
      bins[1].expected += bins[0].expected;
      bins.erase(bins.begin());
      ++pooled;
    }
    // Right tail.
    while (bins.size() > 1 && bins.back().expected < min_expected) {
      bins[bins.size() - 2].observed += bins.back().observed;
      bins[bins.size() - 2].expected += bins.back().expected;
      bins.pop_back();
      ++pooled;
    }
  };
  pool_pass();

  ChiSquareResult result;
  result.pooled_bins = pooled;
  if (bins.size() < 2) {
    // Everything pooled into one bin: the test is degenerate; report a
    // perfect fit rather than dividing by zero dof.
    result.dof = 0.0;
    result.p_value = 1.0;
    return result;
  }

  double stat = 0.0;
  for (const auto& b : bins) {
    if (b.expected <= 0.0) {
      if (b.observed > 0.0) {
        stat = std::numeric_limits<double>::infinity();
      }
      continue;
    }
    const double d = b.observed - b.expected;
    stat += d * d / b.expected;  // LINT-ALLOW(float-accumulation): chi-square statistic in fixed bin order, one call per test
  }
  result.statistic = stat;
  result.dof = static_cast<double>(bins.size() - 1);
  result.p_value = std::isinf(stat)
                       ? 0.0
                       : math::chi_square_sf(stat, result.dof);
  return result;
}

KsResult ks_test(std::vector<double> sample,
                 const std::function<double(double)>& cdf) {
  if (sample.empty()) {
    throw std::invalid_argument("ks_test requires a non-empty sample");
  }
  std::sort(sample.begin(), sample.end());
  const double n = static_cast<double>(sample.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const double f = cdf(sample[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::abs(f - lo), std::abs(hi - f)});
  }

  // Asymptotic Kolmogorov distribution tail with the Stephens small-sample
  // correction.
  const double sqrt_n = std::sqrt(n);
  const double lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
  double p = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double jd = static_cast<double>(j);
    const double term = std::exp(-2.0 * jd * jd * lambda * lambda);
    p += sign * term;  // LINT-ALLOW(float-accumulation): Kolmogorov series in fixed j order with early-out on term magnitude
    sign = -sign;
    if (term < 1e-12) break;
  }
  return {d, std::clamp(2.0 * p, 0.0, 1.0)};
}

}  // namespace gossip::stats
