#pragma once

/// \file ci.hpp
/// Confidence intervals: normal-approximation CI for sample means (reported
/// next to every simulated series so reproduction deltas can be judged) and
/// the Wilson score interval for proportions such as delivery ratios.

#include <cstdint>

#include "stats/summary.hpp"

namespace gossip::stats {

struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  [[nodiscard]] double width() const noexcept { return hi - lo; }
  [[nodiscard]] bool contains(double x) const noexcept {
    return x >= lo && x <= hi;
  }
};

/// Two-sided standard-normal quantile for the given confidence level in
/// (0, 1), e.g. 0.95 -> 1.959964. Acklam's rational approximation,
/// |relative error| < 1.2e-9.
[[nodiscard]] double normal_quantile_two_sided(double confidence);

/// Normal-approximation CI for the mean of the summarized sample.
[[nodiscard]] Interval mean_confidence_interval(const OnlineSummary& summary,
                                                double confidence = 0.95);

/// Wilson score interval for a binomial proportion with `successes` out of
/// `trials`.
[[nodiscard]] Interval wilson_interval(std::uint64_t successes,
                                       std::uint64_t trials,
                                       double confidence = 0.95);

}  // namespace gossip::stats
