#pragma once

/// \file summary.hpp
/// Numerically stable online summary statistics (Welford / Chan parallel
/// merge). Every Monte Carlo series in the benches is accumulated through
/// this type.

#include <cstdint>

namespace gossip::stats {

class OnlineSummary {
 public:
  /// Folds one observation into the summary.
  void add(double x) noexcept;

  /// Merges another summary (Chan et al. pairwise update); enables
  /// deterministic parallel reduction across worker threads.
  void merge(const OnlineSummary& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept;
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean; 0 for fewer than 2 samples.
  [[nodiscard]] double standard_error() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace gossip::stats
