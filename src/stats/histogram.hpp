#pragma once

/// \file histogram.hpp
/// Integer-valued histogram (counting observations of k = 0, 1, 2, ...).
/// Figures 6 and 7 of the paper are exactly this object: the empirical
/// distribution of the per-member success count X over 20 executions.

#include <cstdint>
#include <vector>

namespace gossip::stats {

class IntHistogram {
 public:
  /// Creates a histogram over {0, ..., max_value}; observations outside the
  /// range are clamped into the edge bins and counted in overflow counters.
  explicit IntHistogram(std::int64_t max_value);

  void add(std::int64_t value) noexcept;
  void add(std::int64_t value, std::uint64_t weight) noexcept;

  [[nodiscard]] std::uint64_t count(std::int64_t value) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::int64_t max_value() const noexcept {
    return static_cast<std::int64_t>(bins_.size()) - 1;
  }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }

  /// Empirical probability of each bin: count/total (0 if empty).
  [[nodiscard]] std::vector<double> pmf() const;

  /// Mean of the recorded (clamped) values.
  [[nodiscard]] double mean() const;

 private:
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace gossip::stats
