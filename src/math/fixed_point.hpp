#pragma once

/// \file fixed_point.hpp
/// Damped fixed-point iteration for x = g(x) on an interval. Used to solve
/// the percolation self-consistency condition u = 1 - F1(1) + F1(u)
/// (Callaway et al., paper Eq. (4)) and the Poisson reliability fixed point
/// S = 1 - exp(-z q S) (paper Eq. (11)).

#include <functional>

namespace gossip::math {

/// Outcome of a fixed-point solve.
struct FixedPointResult {
  double value = 0.0;      ///< Best estimate of the fixed point.
  double step = 0.0;       ///< |x_{k+1} - x_k| at termination.
  int iterations = 0;      ///< Iterations actually performed.
  bool converged = false;  ///< True iff the tolerance was met.
};

/// Options for fixed_point().
struct FixedPointOptions {
  double tolerance = 1e-13;  ///< Terminate when |x_{k+1} - x_k| <= tolerance.
  int max_iterations = 10000;
  double damping = 1.0;  ///< x <- (1-d)x + d g(x); 1.0 is plain iteration.
  double clamp_lo = 0.0;  ///< Iterates are clamped into [clamp_lo, clamp_hi].
  double clamp_hi = 1.0;
};

/// Iterates x <- (1-d)*x + d*g(x) from `x0`, clamping into the configured
/// interval. Plain iteration (d = 1) converges for the contraction maps that
/// arise from generating functions on [0,1]; damping is exposed for
/// near-critical cases where g'(x*) approaches 1.
[[nodiscard]] FixedPointResult fixed_point(
    const std::function<double(double)>& g, double x0,
    const FixedPointOptions& opts = {});

}  // namespace gossip::math
