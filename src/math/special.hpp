#pragma once

/// \file special.hpp
/// Log-domain special functions and discrete probability mass functions.
/// Everything that could overflow (factorials, binomial coefficients, large
/// Poisson/binomial pmfs) is computed through lgamma so the success-of-
/// gossiping model (paper Eqs. (5)-(6)) stays accurate for large t and k.

#include <cstdint>

namespace gossip::math {

/// ln(n!) for n >= 0, exact semantics via lgamma(n+1).
[[nodiscard]] double log_factorial(std::int64_t n);

/// ln C(n, k). Returns -inf when k < 0 or k > n (coefficient zero).
[[nodiscard]] double log_binomial_coefficient(std::int64_t n, std::int64_t k);

/// Binomial pmf P(X = k) for X ~ B(n, p), computed in the log domain.
/// p must lie in [0, 1]; out-of-support k yields 0.
[[nodiscard]] double binomial_pmf(std::int64_t n, std::int64_t k, double p);

/// Binomial upper tail P(X >= k) for X ~ B(n, p), by direct stable summation
/// of the smaller tail.
[[nodiscard]] double binomial_sf(std::int64_t n, std::int64_t k, double p);

/// Poisson pmf P(X = k) for X ~ Po(mean), log-domain. mean must be >= 0.
[[nodiscard]] double poisson_pmf(std::int64_t k, double mean);

/// Poisson CDF P(X <= k) by stable forward recurrence.
[[nodiscard]] double poisson_cdf(std::int64_t k, double mean);

/// log(1 - exp(x)) for x < 0, accurate near both ends (Maechler's trick).
[[nodiscard]] double log1mexp(double x);

/// Regularized survival value 1 - (1-p)^t computed without cancellation;
/// this is the probability of gossiping success after t executions
/// (paper Eq. (5)).
[[nodiscard]] double one_minus_pow(double one_minus_p, double t);

/// Regularized lower incomplete gamma P(a, x), a > 0, x >= 0.
[[nodiscard]] double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x). The chi-square
/// survival function used by the goodness-of-fit tests is
/// Q(dof/2, stat/2).
[[nodiscard]] double regularized_gamma_q(double a, double x);

/// Chi-square survival function P(X >= stat) with `dof` degrees of freedom.
[[nodiscard]] double chi_square_sf(double stat, double dof);

}  // namespace gossip::math
