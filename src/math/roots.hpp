#pragma once

/// \file roots.hpp
/// Scalar root finding: bisection, Newton-Raphson with bisection fallback,
/// and Brent's method. These are the numerical workhorses behind the
/// percolation self-consistency equations (core/percolation.hpp) and the
/// fanout planner (core/reliability_model.hpp).

#include <functional>

namespace gossip::math {

/// Outcome of an iterative scalar solve.
struct RootResult {
  double root = 0.0;        ///< Best estimate of the root.
  double residual = 0.0;    ///< f(root) at the returned estimate.
  int iterations = 0;       ///< Iterations actually performed.
  bool converged = false;   ///< True iff the tolerance was met.
};

/// Convergence/iteration policy shared by the root finders.
struct RootOptions {
  double x_tolerance = 1e-12;   ///< Stop when the bracket/step is this small.
  double f_tolerance = 1e-13;   ///< Stop when |f(x)| falls below this.
  int max_iterations = 200;     ///< Hard iteration cap.
};

/// Bisection on [lo, hi]. Requires f(lo) and f(hi) to have opposite signs
/// (a zero-valued endpoint is accepted as the root). Linear but unconditionally
/// convergent.
[[nodiscard]] RootResult bisect(const std::function<double(double)>& f,
                                double lo, double hi,
                                const RootOptions& opts = {});

/// Newton-Raphson from `x0`, safeguarded by the bracket [lo, hi]: any step
/// that escapes the bracket or fails to shrink it is replaced by a bisection
/// step, so the method inherits bisection's robustness with Newton's
/// quadratic tail convergence.
[[nodiscard]] RootResult newton(const std::function<double(double)>& f,
                                const std::function<double(double)>& df,
                                double x0, double lo, double hi,
                                const RootOptions& opts = {});

/// Brent's method (inverse quadratic interpolation + secant + bisection) on
/// [lo, hi]. Requires a sign change. The default choice when no cheap
/// derivative is available.
[[nodiscard]] RootResult brent(const std::function<double(double)>& f,
                               double lo, double hi,
                               const RootOptions& opts = {});

}  // namespace gossip::math
