#pragma once

/// \file meanfield.hpp
/// Mean-field analytic engine: a deterministic O(rounds) recurrence (plus a
/// continuous-time RK4 cross-check) for the infected-fraction evolution of
/// the paper's forward-once gossip under static crash failures (non-failed
/// ratio q) and i.i.d. per-message loss. This is the ROADMAP's "analytic
/// fast path": one evaluation costs microseconds independent of n, so
/// parameter grids at n = 10^7+ — infeasible to simulate — become cheap.
///
/// Model. Let A = 1 + (n-1)q be the expected non-failed population (the
/// source is always alive) and let z_cap = sum_k min(k, n-1) p_k be the
/// mean fanout after the engine's k <= n-1 cap. A sender selects its
/// targets *distinct* and uniformly among the other n-1 members, so the
/// probability that one sender's round delivers to a fixed other member is
/// exactly z_cap (1-loss) / (n-1) — linear in the mean, no generating
/// function needed. Writing m = 1 - z_cap(1-loss)/(n-1) for the per-sender
/// per-member miss probability, a frontier of F forwarding members leaves
/// an uninformed live member uninformed with probability m^F (independence
/// across senders is the mean-field approximation), giving the recurrence
///
///     I_0 = 1,   F_{r+1} = newly_r,   newly_{r+1} = (A - I_r)(1 - m^F)
///
/// whose limit solves the finite-n fixed point I = 1 + (A-1)(1 - m^I).
/// As n -> infinity this becomes the paper's Eq. 11, S = 1 - exp(-z q S),
/// with loss folding into an effective fanout z(1-loss) — the same folding
/// the simulators exhibit (tests/integration/flat_equivalence_test.cpp).
///
/// Validity regime (documented by tests/validation/): the approximation
/// replaces the random frontier by its mean, so it is tight when the
/// cascade takes off and n is large (relative error O(1/n) plus the
/// conditioning error described below), and it *diverges by design* for
/// small n or near the z q = 1 critical point, where fluctuations
/// dominate. predict_reliability is the reliability conditional on
/// take-off; extinction_probability(params) gives the branching-process
/// weight of the early-die-out executions a Monte-Carlo mean averages in.
///
/// This header depends only on the standard library (gossip_math is the
/// base layer); callers with a core::DegreeDistribution pass
/// dist.pmf_vector(tail_epsilon) as the fanout pmf.

#include <cstdint>
#include <vector>

#include "math/roots.hpp"

namespace gossip::meanfield {

struct Params {
  std::uint64_t num_nodes = 0;
  /// Non-failed member ratio q; each non-source member is alive i.i.d.
  double nonfailed_ratio = 1.0;
  /// Per-message i.i.d. loss probability; folds into effective fanout.
  double loss_probability = 0.0;
  /// Truncated fanout pmf {p_0, ..., p_K}; p_k = P(fanout = k). Need not
  /// sum to exactly 1 (distributions truncate tail mass); it is
  /// renormalized on use, mirroring core::GeneratingFunction.
  std::vector<double> fanout_pmf;
  /// The recurrence ends when the expected newly-informed count falls
  /// below this (in members, not fractions): the deterministic analog of
  /// the simulators' empty-frontier extinction.
  double extinction_threshold = 0.5;
  /// Hard cap on recurrence rounds (the cascade drains in O(log n)).
  std::uint64_t max_rounds = 10000;
};

/// One round of the deterministic trajectory — the double-valued mirror of
/// obs::RoundSample, same round indexing (round 0 = injection) and the
/// same accounting identity sends = newly + redundant + losses + dead for
/// every round r >= 1, exact by construction.
struct RoundPoint {
  std::uint64_t round = 0;
  double frontier = 0.0;        ///< Expected forwarding members.
  double sends = 0.0;           ///< Expected messages on the wire.
  double newly_informed = 0.0;  ///< Expected first receipts.
  double redundant = 0.0;       ///< Expected duplicate receipts.
  double losses = 0.0;          ///< Expected channel losses.
  double dead_receipts = 0.0;   ///< Expected deliveries to crashed members.
  double informed = 0.0;        ///< Cumulative informed live members.
  /// informed / A — the trajectory the round-trace CSVs plot.
  double informed_fraction = 0.0;
};

struct Trajectory {
  std::vector<RoundPoint> rounds;    ///< Round 0 = injection.
  double expected_nonfailed = 0.0;   ///< A = 1 + (n-1) q.
  double reliability = 0.0;          ///< Endpoint informed / A.
  double messages = 0.0;             ///< Total expected sends.
  double redundant = 0.0;            ///< Total expected duplicate receipts.
  double losses = 0.0;               ///< Total expected channel losses.
  double dead_receipts = 0.0;        ///< Total expected dead deliveries.
  std::uint64_t rounds_to_extinction = 0;  ///< Highest round index emitted.
};

/// Diagnostics of the fixed-point solve behind predict_reliability.
struct FixedPoint {
  double informed = 0.0;     ///< I solving I = 1 + (A-1)(1 - m^I).
  double reliability = 0.0;  ///< informed / A.
  math::RootResult solve;    ///< Brent diagnostics (bracket [1, A]).
};

/// Mean fanout after the k <= n-1 cap, times (1 - loss): the effective
/// per-sender delivery pressure z_eff. Throws std::invalid_argument on an
/// empty/negative/zero-mass pmf or parameters outside their domains.
[[nodiscard]] double effective_fanout(const Params& params);

/// The full deterministic per-round trajectory (O(rounds), no randomness).
[[nodiscard]] Trajectory predict_trajectory(const Params& params);

/// Reliability conditional on take-off: the finite-n fixed point solved
/// with Brent on [1, A] (the bracket always holds: injection makes I = 0
/// a non-solution). Agrees with predict_trajectory's endpoint up to the
/// extinction threshold's truncation, and with the paper's Eq. 11 as
/// n -> infinity.
[[nodiscard]] double predict_reliability(const Params& params);

/// As predict_reliability, exposing the root-finder diagnostics.
[[nodiscard]] FixedPoint solve_fixed_point(const Params& params);

/// Independent continuous-time cross-check: the forward-once protocol as a
/// unit-infectious-period SIR system (informed members emit their z_eff
/// expected deliveries at rate z_eff while infectious, then stop),
/// integrated with math::integrate_rk4. Its final size solves the same
/// fixed point with exp(-h I) in place of (1-h)^I, so it must agree with
/// predict_reliability to O(z^2/n) — asserted in tests/math and
/// tests/validation, NOT used by the scenario engine.
[[nodiscard]] double predict_reliability_ode(const Params& params,
                                             double dt = 0.01);

/// Probability the cascade dies out early: the smallest fixed point of the
/// offspring generating function g(x) = sum_k p_k (1 - zeta + zeta x)^k
/// with zeta = (1-loss)(A-1)/(n-1) (a fresh sender's per-target chance of
/// producing a new informed member in the virgin population). Above the
/// z q = 1 threshold this is < 1; a Monte-Carlo reliability mean equals
/// approximately (1 - rho) * predict_reliability + rho * O(1/A).
[[nodiscard]] double extinction_probability(const Params& params);

}  // namespace gossip::meanfield
