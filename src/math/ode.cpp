#include "math/ode.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>

namespace gossip::math {

namespace {

void validate(double t0, double t1, double dt) {
  if (!(t1 >= t0)) {
    throw std::invalid_argument("ODE integration requires t1 >= t0");
  }
  if (!(dt > 0.0)) {
    throw std::invalid_argument("ODE integration requires dt > 0");
  }
}

}  // namespace

std::vector<double> integrate_rk4(const OdeSystem& system,
                                  std::vector<double> y0, double t0, double t1,
                                  double dt, const OdeObserver& observer) {
  validate(t0, t1, dt);
  const std::size_t n = y0.size();
  std::vector<double> k1(n), k2(n), k3(n), k4(n), tmp(n);
  std::vector<double> y = std::move(y0);
  double t = t0;
  if (observer) observer(t, y);

  while (t < t1) {
    const double h = std::min(dt, t1 - t);
    system(t, y, k1);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * h * k1[i];
    system(t + 0.5 * h, tmp, k2);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * h * k2[i];
    system(t + 0.5 * h, tmp, k3);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + h * k3[i];
    system(t + h, tmp, k4);
    for (std::size_t i = 0; i < n; ++i) {
      y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
    t += h;
    if (observer) observer(t, y);
  }
  return y;
}

std::vector<double> integrate_euler(const OdeSystem& system,
                                    std::vector<double> y0, double t0,
                                    double t1, double dt,
                                    const OdeObserver& observer) {
  validate(t0, t1, dt);
  const std::size_t n = y0.size();
  std::vector<double> dydt(n);
  std::vector<double> y = std::move(y0);
  double t = t0;
  if (observer) observer(t, y);

  while (t < t1) {
    const double h = std::min(dt, t1 - t);
    system(t, y, dydt);
    for (std::size_t i = 0; i < n; ++i) y[i] += h * dydt[i];
    t += h;
    if (observer) observer(t, y);
  }
  return y;
}

}  // namespace gossip::math
