#include "math/fixed_point.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gossip::math {

FixedPointResult fixed_point(const std::function<double(double)>& g, double x0,
                             const FixedPointOptions& opts) {
  if (!(opts.damping > 0.0) || opts.damping > 1.0) {
    throw std::invalid_argument("fixed_point damping must be in (0, 1]");
  }
  if (!(opts.clamp_lo <= opts.clamp_hi)) {
    throw std::invalid_argument("fixed_point clamp interval is empty");
  }

  double x = std::clamp(x0, opts.clamp_lo, opts.clamp_hi);
  FixedPointResult result;
  for (int i = 0; i < opts.max_iterations; ++i) {
    const double gx = g(x);
    double next = (1.0 - opts.damping) * x + opts.damping * gx;
    next = std::clamp(next, opts.clamp_lo, opts.clamp_hi);
    result.iterations = i + 1;
    result.step = std::abs(next - x);
    result.value = next;
    if (result.step <= opts.tolerance) {
      result.converged = true;
      return result;
    }
    x = next;
  }
  return result;
}

}  // namespace gossip::math
