#include "math/meanfield.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/ode.hpp"

namespace gossip::meanfield {

namespace {

/// Validated derived quantities shared by every entry point.
struct Model {
  double n = 0.0;       ///< Group size as a double.
  double a = 0.0;       ///< Expected non-failed members A = 1 + (n-1) q.
  double z_cap = 0.0;   ///< Mean fanout after the k <= n-1 cap.
  double z_eff = 0.0;   ///< z_cap * (1 - loss).
  double miss = 1.0;    ///< Per-sender per-member miss m = 1 - z_eff/(n-1).
  double mass = 0.0;    ///< Raw pmf mass (truncation remainder).
};

Model build_model(const Params& params) {
  if (params.num_nodes < 2) {
    throw std::invalid_argument("mean-field model requires n >= 2");
  }
  if (!(params.nonfailed_ratio >= 0.0 && params.nonfailed_ratio <= 1.0)) {
    throw std::invalid_argument("nonfailed_ratio must be in [0, 1]");
  }
  if (!(params.loss_probability >= 0.0 && params.loss_probability <= 1.0)) {
    throw std::invalid_argument("loss_probability must be in [0, 1]");
  }
  if (params.fanout_pmf.empty()) {
    throw std::invalid_argument("fanout pmf must be non-empty");
  }
  if (!(params.extinction_threshold > 0.0)) {
    throw std::invalid_argument("extinction_threshold must be > 0");
  }
  Model model;
  model.n = static_cast<double>(params.num_nodes);
  model.a = 1.0 + (model.n - 1.0) * params.nonfailed_ratio;
  double weighted = 0.0;
  double mass = 0.0;
  const double cap = model.n - 1.0;
  for (std::size_t k = 0; k < params.fanout_pmf.size(); ++k) {
    const double p = params.fanout_pmf[k];
    if (!(p >= 0.0)) {
      throw std::invalid_argument("fanout pmf entries must be >= 0");
    }
    mass += p;
    weighted += p * std::min(static_cast<double>(k), cap);
  }
  if (!(mass > 0.0)) {
    throw std::invalid_argument("fanout pmf must carry positive mass");
  }
  model.mass = mass;
  model.z_cap = weighted / mass;
  model.z_eff = model.z_cap * (1.0 - params.loss_probability);
  model.miss = 1.0 - model.z_eff / cap;
  return model;
}

}  // namespace

double effective_fanout(const Params& params) {
  return build_model(params).z_eff;
}

Trajectory predict_trajectory(const Params& params) {
  const Model model = build_model(params);
  const double loss = params.loss_probability;
  const double dead_share = (model.n - model.a) / (model.n - 1.0);

  Trajectory traj;
  traj.expected_nonfailed = model.a;

  // Round 0 mirrors the engines' injection: the source alone is informed,
  // nothing on the wire (the one round that breaks the send identity).
  double informed = 1.0;
  RoundPoint inject;
  inject.newly_informed = 1.0;
  inject.informed = 1.0;
  inject.informed_fraction = 1.0 / model.a;
  traj.rounds.push_back(inject);

  double frontier = 1.0;  // The source forwards in round 1.
  for (std::uint64_t r = 1;
       r <= params.max_rounds && frontier >= params.extinction_threshold;
       ++r) {
    const double sends = frontier * model.z_cap;
    const double arrivals = sends * (1.0 - loss);
    const double uninformed_alive = std::max(model.a - informed, 0.0);
    // m^F leaves a fixed uninformed live member untouched by the whole
    // frontier; the exponent is the (real-valued) expected frontier.
    const double reached = 1.0 - std::pow(model.miss, frontier);
    const double newly = uninformed_alive * reached;
    const double dead = arrivals * dead_share;
    // Deliveries to live members split into first and duplicate receipts;
    // the remainder is redundant by the accounting identity. Analytically
    // newly <= arrivals * alive_share (the informed are a subset of the
    // live targets), so the clamp only absorbs float rounding.
    const double redundant = std::max(arrivals - dead - newly, 0.0);
    informed += newly;

    RoundPoint point;
    point.round = r;
    point.frontier = frontier;
    point.sends = sends;
    point.newly_informed = newly;
    point.redundant = redundant;
    point.losses = sends * loss;
    point.dead_receipts = dead;
    point.informed = informed;
    point.informed_fraction = informed / model.a;
    traj.rounds.push_back(point);
    traj.messages += sends;
    traj.redundant += redundant;
    traj.losses += point.losses;
    traj.dead_receipts += dead;

    frontier = newly;
  }

  traj.rounds_to_extinction = traj.rounds.back().round;
  traj.reliability = informed / model.a;
  return traj;
}

FixedPoint solve_fixed_point(const Params& params) {
  const Model model = build_model(params);
  FixedPoint fp;
  // Degenerate regimes where the bracket [1, A] collapses: no live peers
  // (q = 0) or no delivery pressure (z_eff = 0) leave the source alone.
  if (model.a - 1.0 <= 0.0) {
    fp.informed = 1.0;
    fp.reliability = 1.0;
    fp.solve.root = 1.0;
    fp.solve.converged = true;
    return fp;
  }
  if (!(model.z_eff > 0.0)) {
    fp.informed = 1.0;
    fp.reliability = 1.0 / model.a;
    fp.solve.root = 1.0;
    fp.solve.converged = true;
    return fp;
  }
  // f(1) = (A-1)(1-m) > 0 and f(A) = -(A-1) m^A < 0: the injection term
  // removes the trivial I = 0 solution, so Brent always has its bracket.
  const auto f = [&](double informed) {
    return 1.0 + (model.a - 1.0) * (1.0 - std::pow(model.miss, informed)) -
           informed;
  };
  fp.solve = math::brent(f, 1.0, model.a);
  fp.informed = fp.solve.root;
  fp.reliability = fp.informed / model.a;
  return fp;
}

double predict_reliability(const Params& params) {
  return solve_fixed_point(params).reliability;
}

double predict_reliability_ode(const Params& params, double dt) {
  const Model model = build_model(params);
  if (!(dt > 0.0)) {
    throw std::invalid_argument("ode step must be > 0");
  }
  if (model.a - 1.0 <= 0.0) return 1.0;
  if (!(model.z_eff > 0.0)) return 1.0 / model.a;
  // SIR with unit infectious period: y = {S, I_active}. A member forwards
  // at hit rate z_eff/(n-1) toward each other member while infectious and
  // retires at rate 1, so its expected lifetime delivery pressure matches
  // one discrete forward-once round.
  const double pair_rate = model.z_eff / (model.n - 1.0);
  const math::OdeSystem system = [pair_rate](double, const std::vector<double>& y,
                                             std::vector<double>& dydt) {
    const double contact = pair_rate * y[0] * y[1];
    dydt[0] = -contact;
    dydt[1] = contact - y[1];
  };
  // The cascade peaks within O(log A) and the active population then
  // decays at unit rate; this horizon leaves a negligible I_active tail.
  const double t1 = 30.0 + 10.0 * std::log(model.a);
  const auto y_end =
      math::integrate_rk4(system, {model.a - 1.0, 1.0}, 0.0, t1, dt);
  const double uninformed = std::max(y_end[0], 0.0);
  return (model.a - uninformed) / model.a;
}

double extinction_probability(const Params& params) {
  const Model model = build_model(params);
  if (model.a - 1.0 <= 0.0 || !(model.z_eff > 0.0)) return 1.0;
  // Offspring PGF of the early-phase branching process: each of a fresh
  // sender's min(k, n-1) targets independently becomes a new sender with
  // probability zeta (delivered, live, and virgin population assumed).
  const double zeta =
      (1.0 - params.loss_probability) * (model.a - 1.0) / (model.n - 1.0);
  const double cap = model.n - 1.0;
  const auto g = [&](double x) {
    const double per_target = 1.0 - zeta + zeta * x;
    double total = 0.0;
    for (std::size_t k = 0; k < params.fanout_pmf.size(); ++k) {
      total += params.fanout_pmf[k] *
               std::pow(per_target, std::min(static_cast<double>(k), cap));
    }
    return total / model.mass;
  };
  // Functional iteration from 0 converges monotonically to the smallest
  // fixed point of g in [0, 1] (g is increasing and convex).
  double x = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double next = g(x);
    if (std::fabs(next - x) < 1e-14) return next;
    x = next;
  }
  return x;
}

}  // namespace gossip::meanfield
