#include "math/special.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace gossip::math {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

double log_factorial(std::int64_t n) {
  if (n < 0) {
    throw std::invalid_argument("log_factorial requires n >= 0");
  }
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double log_binomial_coefficient(std::int64_t n, std::int64_t k) {
  if (n < 0) {
    throw std::invalid_argument("log_binomial_coefficient requires n >= 0");
  }
  if (k < 0 || k > n) {
    return kNegInf;
  }
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double binomial_pmf(std::int64_t n, std::int64_t k, double p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("binomial_pmf requires p in [0, 1]");
  }
  if (k < 0 || k > n) {
    return 0.0;
  }
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = log_binomial_coefficient(n, k) +
                         static_cast<double>(k) * std::log(p) +
                         static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double binomial_sf(std::int64_t n, std::int64_t k, double p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("binomial_sf requires p in [0, 1]");
  }
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  // Sum the shorter tail for accuracy; pmf terms are monotone enough that
  // plain accumulation in double suffices for the n used here.
  if (2 * k <= n) {
    double cdf = 0.0;
    for (std::int64_t i = 0; i < k; ++i) cdf += binomial_pmf(n, i, p);
    return 1.0 - cdf;
  }
  double sf = 0.0;
  for (std::int64_t i = k; i <= n; ++i) sf += binomial_pmf(n, i, p);
  return sf;
}

double poisson_pmf(std::int64_t k, double mean) {
  if (!(mean >= 0.0)) {
    throw std::invalid_argument("poisson_pmf requires mean >= 0");
  }
  if (k < 0) return 0.0;
  if (mean == 0.0) return k == 0 ? 1.0 : 0.0;
  const double log_pmf = static_cast<double>(k) * std::log(mean) - mean -
                         log_factorial(k);
  return std::exp(log_pmf);
}

double poisson_cdf(std::int64_t k, double mean) {
  if (!(mean >= 0.0)) {
    throw std::invalid_argument("poisson_cdf requires mean >= 0");
  }
  if (k < 0) return 0.0;
  double term = std::exp(-mean);
  double sum = term;
  for (std::int64_t i = 1; i <= k; ++i) {
    term *= mean / static_cast<double>(i);
    sum += term;
  }
  return std::min(sum, 1.0);
}

double log1mexp(double x) {
  if (!(x < 0.0)) {
    throw std::invalid_argument("log1mexp requires x < 0");
  }
  // Maechler (2012): switch forms at -ln 2 to keep full precision.
  constexpr double kLn2 = 0.6931471805599453;
  if (x > -kLn2) {
    return std::log(-std::expm1(x));
  }
  return std::log1p(-std::exp(x));
}

double one_minus_pow(double one_minus_p, double t) {
  if (!(one_minus_p >= 0.0 && one_minus_p <= 1.0)) {
    throw std::invalid_argument("one_minus_pow requires base in [0, 1]");
  }
  if (!(t >= 0.0)) {
    throw std::invalid_argument("one_minus_pow requires t >= 0");
  }
  if (one_minus_p == 0.0) return t == 0.0 ? 0.0 : 1.0;
  if (one_minus_p == 1.0) return 0.0;
  // 1 - exp(t * ln(1-p)), evaluated with expm1 to preserve small results.
  return -std::expm1(t * std::log(one_minus_p));
}

namespace {

/// Lower incomplete gamma by power series; converges fast for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < 1000; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Upper incomplete gamma by Lentz continued fraction; for x >= a + 1.
double gamma_q_cf(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 1000; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-16) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  if (!(a > 0.0)) {
    throw std::invalid_argument("regularized_gamma_p requires a > 0");
  }
  if (!(x >= 0.0)) {
    throw std::invalid_argument("regularized_gamma_p requires x >= 0");
  }
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double regularized_gamma_q(double a, double x) {
  if (!(a > 0.0)) {
    throw std::invalid_argument("regularized_gamma_q requires a > 0");
  }
  if (!(x >= 0.0)) {
    throw std::invalid_argument("regularized_gamma_q requires x >= 0");
  }
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double chi_square_sf(double stat, double dof) {
  if (!(dof > 0.0)) {
    throw std::invalid_argument("chi_square_sf requires dof > 0");
  }
  if (!(stat >= 0.0)) {
    throw std::invalid_argument("chi_square_sf requires stat >= 0");
  }
  return regularized_gamma_q(0.5 * dof, 0.5 * stat);
}

}  // namespace gossip::math
