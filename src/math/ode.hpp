#pragma once

/// \file ode.hpp
/// Small fixed-step ODE integrators over std::vector<double> state. The SI
/// epidemic baseline (paper reference [9], LRG) integrates its balance
/// equations with these.

#include <functional>
#include <vector>

namespace gossip::math {

/// Right-hand side dy/dt = f(t, y) writing into `dydt` (same size as y).
using OdeSystem = std::function<void(double t, const std::vector<double>& y,
                                     std::vector<double>& dydt)>;

/// Observer invoked after every accepted step with (t, y).
using OdeObserver =
    std::function<void(double t, const std::vector<double>& y)>;

/// Classic fourth-order Runge-Kutta with fixed step `dt` from t0 to t1.
/// The final (possibly shorter) step lands exactly on t1. Returns the state
/// at t1. The observer, if provided, sees the initial state and every step.
[[nodiscard]] std::vector<double> integrate_rk4(
    const OdeSystem& system, std::vector<double> y0, double t0, double t1,
    double dt, const OdeObserver& observer = {});

/// Forward Euler, exposed for tests and for reproducing literature that used
/// it; RK4 should be preferred.
[[nodiscard]] std::vector<double> integrate_euler(
    const OdeSystem& system, std::vector<double> y0, double t0, double t1,
    double dt, const OdeObserver& observer = {});

}  // namespace gossip::math
