#pragma once

/// \file series.hpp
/// Truncated power series with non-negative coefficients, the concrete
/// representation behind probability generating functions: a pmf {p_0, p_1,
/// ..., p_K} is the coefficient vector of G(x) = sum_k p_k x^k. Provides
/// evaluation (Horner), derivatives, factorial moments, and normalization —
/// the raw material for core/generating_function.hpp.

#include <cstddef>
#include <span>
#include <vector>

namespace gossip::math {

/// Evaluates sum_k c_k x^k by Horner's rule.
[[nodiscard]] double evaluate_series(std::span<const double> coeffs, double x);

/// Evaluates the first derivative sum_k k c_k x^{k-1}.
[[nodiscard]] double evaluate_series_derivative(std::span<const double> coeffs,
                                                double x);

/// Evaluates the second derivative sum_k k (k-1) c_k x^{k-2}.
[[nodiscard]] double evaluate_series_second_derivative(
    std::span<const double> coeffs, double x);

/// Coefficient vector of the derivative series d/dx sum_k c_k x^k.
[[nodiscard]] std::vector<double> differentiate_series(
    std::span<const double> coeffs);

/// n-th factorial moment E[K(K-1)...(K-n+1)] of the pmf given by `coeffs`,
/// i.e. the n-th derivative of its generating function at x = 1.
[[nodiscard]] double factorial_moment(std::span<const double> coeffs, int n);

/// Mean sum_k k c_k (first factorial moment).
[[nodiscard]] double series_mean(std::span<const double> coeffs);

/// Variance of the pmf given by `coeffs` (assumes it is normalized).
[[nodiscard]] double series_variance(std::span<const double> coeffs);

/// Scales `coeffs` so they sum to one. Throws if the sum is not positive or
/// any coefficient is negative.
[[nodiscard]] std::vector<double> normalize_pmf(std::span<const double> coeffs);

/// Drops trailing coefficients below `epsilon`, keeping at least one term.
[[nodiscard]] std::vector<double> trim_series(std::span<const double> coeffs,
                                              double epsilon = 0.0);

}  // namespace gossip::math
