#include "math/roots.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gossip::math {

namespace {

[[nodiscard]] bool opposite_signs(double a, double b) noexcept {
  return (a < 0.0 && b > 0.0) || (a > 0.0 && b < 0.0);
}

void require_bracket(double lo, double hi, double flo, double fhi) {
  if (!(lo < hi)) {
    throw std::invalid_argument("root bracket requires lo < hi");
  }
  if (flo != 0.0 && fhi != 0.0 && !opposite_signs(flo, fhi)) {
    throw std::invalid_argument("root bracket requires a sign change");
  }
}

}  // namespace

RootResult bisect(const std::function<double(double)>& f, double lo, double hi,
                  const RootOptions& opts) {
  double flo = f(lo);
  double fhi = f(hi);
  require_bracket(lo, hi, flo, fhi);
  if (flo == 0.0) return {lo, 0.0, 0, true};
  if (fhi == 0.0) return {hi, 0.0, 0, true};

  RootResult result;
  for (int i = 0; i < opts.max_iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    result.iterations = i + 1;
    result.root = mid;
    result.residual = fmid;
    if (std::abs(fmid) <= opts.f_tolerance || (hi - lo) <= opts.x_tolerance) {
      result.converged = true;
      return result;
    }
    if (opposite_signs(flo, fmid)) {
      hi = mid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  return result;
}

RootResult newton(const std::function<double(double)>& f,
                  const std::function<double(double)>& df, double x0, double lo,
                  double hi, const RootOptions& opts) {
  double flo = f(lo);
  double fhi = f(hi);
  require_bracket(lo, hi, flo, fhi);
  if (flo == 0.0) return {lo, 0.0, 0, true};
  if (fhi == 0.0) return {hi, 0.0, 0, true};

  // Keep the bracket oriented so that f(lo) < 0 < f(hi).
  if (flo > 0.0) {
    std::swap(lo, hi);
  }

  double x = std::clamp(x0, std::min(lo, hi), std::max(lo, hi));
  RootResult result;
  for (int i = 0; i < opts.max_iterations; ++i) {
    const double fx = f(x);
    result.iterations = i + 1;
    result.root = x;
    result.residual = fx;
    if (std::abs(fx) <= opts.f_tolerance) {
      result.converged = true;
      return result;
    }
    if (fx < 0.0) {
      lo = x;
    } else {
      hi = x;
    }

    const double dfx = df(x);
    double next;
    if (dfx != 0.0 && std::isfinite(dfx)) {
      next = x - fx / dfx;
    } else {
      next = 0.5 * (lo + hi);
    }
    const double lo_edge = std::min(lo, hi);
    const double hi_edge = std::max(lo, hi);
    if (!(next > lo_edge && next < hi_edge)) {
      next = 0.5 * (lo + hi);  // Newton escaped the bracket: bisect instead.
    }
    if (std::abs(next - x) <= opts.x_tolerance) {
      result.root = next;
      result.residual = f(next);
      result.converged = true;
      return result;
    }
    x = next;
  }
  return result;
}

RootResult brent(const std::function<double(double)>& f, double lo, double hi,
                 const RootOptions& opts) {
  double a = lo;
  double b = hi;
  double fa = f(a);
  double fb = f(b);
  require_bracket(lo, hi, fa, fb);
  if (fa == 0.0) return {a, 0.0, 0, true};
  if (fb == 0.0) return {b, 0.0, 0, true};

  // `b` holds the best estimate; `c` the previous one.
  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a;
  double fc = fa;
  bool used_bisection = true;
  double d = 0.0;  // step before last, used by the guard conditions

  RootResult result;
  for (int i = 0; i < opts.max_iterations; ++i) {
    result.iterations = i + 1;
    double s;
    if (fa != fc && fb != fc) {
      // Inverse quadratic interpolation.
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // Secant step.
      s = b - fb * (b - a) / (fb - fa);
    }

    const double mid = 0.5 * (a + b);
    const bool out_of_range = !((s > std::min(mid, b)) && (s < std::max(mid, b)));
    const bool step_too_small =
        (used_bisection && std::abs(s - b) >= 0.5 * std::abs(b - c)) ||
        (!used_bisection && std::abs(s - b) >= 0.5 * std::abs(c - d));
    if (out_of_range || step_too_small) {
      s = mid;
      used_bisection = true;
    } else {
      used_bisection = false;
    }

    const double fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if (opposite_signs(fa, fs)) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::abs(fa) < std::abs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }

    result.root = b;
    result.residual = fb;
    if (std::abs(fb) <= opts.f_tolerance || std::abs(b - a) <= opts.x_tolerance) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

}  // namespace gossip::math
