#include "math/series.hpp"

#include <cmath>
#include <stdexcept>

namespace gossip::math {

double evaluate_series(std::span<const double> coeffs, double x) {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = acc * x + coeffs[i];
  }
  return acc;
}

double evaluate_series_derivative(std::span<const double> coeffs, double x) {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 1;) {
    acc = acc * x + static_cast<double>(i) * coeffs[i];
  }
  return acc;
}

double evaluate_series_second_derivative(std::span<const double> coeffs,
                                         double x) {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 2;) {
    const double k = static_cast<double>(i);
    acc = acc * x + k * (k - 1.0) * coeffs[i];
  }
  return acc;
}

std::vector<double> differentiate_series(std::span<const double> coeffs) {
  if (coeffs.size() <= 1) {
    return {0.0};
  }
  std::vector<double> out(coeffs.size() - 1);
  for (std::size_t i = 1; i < coeffs.size(); ++i) {
    out[i - 1] = static_cast<double>(i) * coeffs[i];
  }
  return out;
}

double factorial_moment(std::span<const double> coeffs, int n) {
  if (n < 0) {
    throw std::invalid_argument("factorial_moment requires n >= 0");
  }
  double acc = 0.0;
  for (std::size_t k = 0; k < coeffs.size(); ++k) {
    double falling = 1.0;
    for (int j = 0; j < n; ++j) {
      falling *= static_cast<double>(k) - static_cast<double>(j);
    }
    if (static_cast<std::size_t>(n) > k) falling = 0.0;
    acc += falling * coeffs[k];
  }
  return acc;
}

double series_mean(std::span<const double> coeffs) {
  return factorial_moment(coeffs, 1);
}

double series_variance(std::span<const double> coeffs) {
  const double m1 = factorial_moment(coeffs, 1);
  const double m2 = factorial_moment(coeffs, 2);
  return m2 + m1 - m1 * m1;
}

std::vector<double> normalize_pmf(std::span<const double> coeffs) {
  double sum = 0.0;
  for (const double c : coeffs) {
    if (c < 0.0 || !std::isfinite(c)) {
      throw std::invalid_argument("pmf coefficients must be finite and >= 0");
    }
    sum += c;
  }
  if (!(sum > 0.0)) {
    throw std::invalid_argument("pmf must have positive total mass");
  }
  std::vector<double> out(coeffs.begin(), coeffs.end());
  for (double& c : out) c /= sum;
  return out;
}

std::vector<double> trim_series(std::span<const double> coeffs,
                                double epsilon) {
  std::size_t n = coeffs.size();
  while (n > 1 && std::abs(coeffs[n - 1]) <= epsilon) {
    --n;
  }
  return {coeffs.begin(), coeffs.begin() + static_cast<std::ptrdiff_t>(n)};
}

}  // namespace gossip::math
