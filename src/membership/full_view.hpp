#pragma once

/// \file full_view.hpp
/// Idealized full membership: every member knows every other member. This
/// realizes the analytical model's uniform-target assumption exactly and is
/// the default for the paper-reproduction experiments.

#include "membership/view.hpp"

namespace gossip::membership {

/// Provider whose views are "all n members except the owner". Views are
/// O(1) objects; no n-sized tables are materialized.
[[nodiscard]] MembershipProviderPtr full_membership(std::uint32_t num_nodes);

}  // namespace gossip::membership
