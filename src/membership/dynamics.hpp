#pragma once

/// \file dynamics.hpp
/// Live membership: the evolving counterpart of MembershipProvider. The
/// static providers in view.hpp hand the protocol a snapshot frozen before
/// dissemination starts; a MembershipDynamics object instead *is* the view
/// table, mutated by join/leave/lease-expiry events while gossip rounds
/// read it — so target selection always draws from the membership as it
/// exists at that virtual time, which is the regime where the paper's
/// fault-tolerance predictions and a deployed system actually meet.
///
/// Executions own their dynamics instance (views mutate per run), so the
/// protocol receives a *factory* and builds one instance per execution from
/// a dedicated RNG substream. All mutation entry points take the caller's
/// stream explicitly: invoked in deterministic DES order, the whole
/// membership trajectory is reproducible bit for bit.

#include <memory>

#include "membership/scamp.hpp"
#include "membership/view.hpp"

namespace gossip::membership {

/// A mutable membership substrate. NodeIds are stable for the lifetime of
/// the instance; nodes toggle between present (subscribed) and absent.
class MembershipDynamics {
 public:
  virtual ~MembershipDynamics() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::uint32_t num_nodes() const = 0;
  [[nodiscard]] virtual bool is_present(NodeId node) const = 0;

  /// Current out-view of `owner` (peers it would gossip to). Absent owners
  /// have empty views.
  [[nodiscard]] virtual const std::vector<NodeId>& view_of(
      NodeId owner) const = 0;

  /// Draws up to `k` distinct targets uniformly from owner's CURRENT view;
  /// the whole view when k exceeds its size. Never returns the owner.
  [[nodiscard]] virtual std::vector<NodeId> select_targets(
      NodeId owner, std::size_t k, rng::RngStream& rng) const = 0;

  /// Allocation-free variant: identical draws and output as select_targets,
  /// written into `out`. Default forwards; hot implementations override.
  virtual void select_targets_into(NodeId owner, std::size_t k,
                                   rng::RngStream& rng,
                                   std::vector<NodeId>& out) const {
    out = select_targets(owner, k, rng);
  }

  /// Node (re)subscribes through a uniformly random present contact.
  virtual void join(NodeId node, rng::RngStream& rng) = 0;

  /// Node leaves (or its failure is detected): every in-neighbor drops the
  /// arc, and the protocol's repair rule replaces most dropped arcs with
  /// members of the leaver's own view so arity is preserved.
  virtual void leave(NodeId node, rng::RngStream& rng) = 0;

  /// Node's subscription lease expires: its in-arcs lapse and it
  /// re-subscribes, rebalancing in-degrees accumulated under churn.
  virtual void expire_lease(NodeId node, rng::RngStream& rng) = 0;
};

using MembershipDynamicsPtr = std::unique_ptr<MembershipDynamics>;

/// Builds one per-execution dynamics instance. Factories are immutable and
/// shared across replications; `rng` seeds the initial view construction.
class MembershipDynamicsFactory {
 public:
  virtual ~MembershipDynamicsFactory() = default;
  [[nodiscard]] virtual MembershipDynamicsPtr create(
      rng::RngStream rng) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

using MembershipDynamicsFactoryPtr =
    std::shared_ptr<const MembershipDynamicsFactory>;

/// SCAMP lifecycle dynamics (Ganesh, Kermarrec, Massoulié): initial views
/// from the subscription process in scamp.hpp, then
///   join   — subscription walk via a random present contact (the contact
///            forwards the subscription to its view plus `redundancy`
///            extra copies; each holder keeps with probability
///            1/(1 + view size), else forwards on),
///   leave  — unsubscription repair: of the leaver's j in-arcs,
///            j - redundancy - 1 are replaced by arcs to members of the
///            leaver's out-view, the rest lapse (SCAMP's size-decrease
///            rule),
///   lease  — in-arcs lapse and the node re-subscribes through a member of
///            its own view.
/// Views therefore keep mean size ~ (redundancy + 1) ln n under churn,
/// which is the invariant the dynamics tests pin.
[[nodiscard]] MembershipDynamicsFactoryPtr scamp_dynamics_factory(
    ScampParams params);

}  // namespace gossip::membership
