#include "membership/dynamics.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "rng/distributions.hpp"

namespace gossip::membership {

namespace {

/// Removes `value` from `list` preserving order (order is part of the
/// deterministic trajectory); false if absent.
bool erase_value(std::vector<NodeId>& list, NodeId value) {
  const auto it = std::find(list.begin(), list.end(), value);
  if (it == list.end()) return false;
  list.erase(it);
  return true;
}

bool contains(const std::vector<NodeId>& list, NodeId value) {
  return std::find(list.begin(), list.end(), value) != list.end();
}

/// Component name with enough detail to reproduce the configuration: the
/// hop budget is part of the name whenever it differs from the default.
std::string scamp_churn_name(const ScampParams& params) {
  std::string name = "scamp-churn(" + std::to_string(params.redundancy);
  if (params.max_forward_hops != ScampParams{}.max_forward_hops) {
    name += "," + std::to_string(params.max_forward_hops);
  }
  return name + ")";
}

class ScampDynamics final : public MembershipDynamics {
 public:
  ScampDynamics(ScampParams params, rng::RngStream& rng)
      : params_(params),
        out_(build_scamp_views(params, rng)),
        in_(params.num_nodes),
        present_(params.num_nodes, 1) {
    for (NodeId u = 0; u < params_.num_nodes; ++u) {
      for (const NodeId v : out_[u]) in_[v].push_back(u);
    }
  }

  [[nodiscard]] std::string name() const override {
    return scamp_churn_name(params_);
  }

  [[nodiscard]] std::uint32_t num_nodes() const override {
    return params_.num_nodes;
  }

  [[nodiscard]] bool is_present(NodeId node) const override {
    return present_.at(node) != 0;
  }

  [[nodiscard]] const std::vector<NodeId>& view_of(
      NodeId owner) const override {
    return out_.at(owner);
  }

  [[nodiscard]] std::vector<NodeId> select_targets(
      NodeId owner, std::size_t k, rng::RngStream& rng) const override {
    const auto& view = out_.at(owner);
    const std::size_t v = view.size();
    k = std::min(k, v);
    if (k == 0) return {};
    if (k == v) return view;
    const auto picks = rng::sample_distinct(rng, k, v);
    std::vector<NodeId> targets;
    targets.reserve(k);
    for (const auto idx : picks) targets.push_back(view[idx]);
    return targets;
  }

  void join(NodeId node, rng::RngStream& rng) override {
    if (present_.at(node)) return;
    present_[node] = 1;
    const NodeId contact = random_present_peer(node, rng);
    if (contact == node) return;  // nobody else present; views stay empty
    add_arc(node, contact);
    subscribe(node, contact, rng);
  }

  void leave(NodeId node, rng::RngStream& rng) override {
    (void)rng;  // repair is deterministic given the leaver's current arcs
    if (!present_.at(node)) return;
    present_[node] = 0;

    // The leaver's out-view is the replacement pool its in-neighbors are
    // pointed at (SCAMP unsubscription: "replace me with my contacts").
    const std::vector<NodeId> pool = out_[node];
    for (const NodeId w : out_[node]) erase_value(in_[w], node);
    out_[node].clear();

    const std::vector<NodeId> in_nbrs = in_[node];
    in_[node].clear();
    // Of j in-arcs, j - c - 1 are replaced and c + 1 simply lapse, so the
    // group's total arity shrinks by the leaver's fair share.
    const std::size_t replaced =
        in_nbrs.size() > params_.redundancy + 1
            ? in_nbrs.size() - params_.redundancy - 1
            : 0;
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < in_nbrs.size(); ++i) {
      const NodeId u = in_nbrs[i];
      erase_value(out_[u], node);
      if (i >= replaced || pool.empty()) continue;
      for (std::size_t tries = 0; tries < pool.size(); ++tries) {
        const NodeId r = pool[(cursor + tries) % pool.size()];
        if (r != u && present_[r] && !contains(out_[u], r)) {
          add_arc(u, r);
          cursor = (cursor + tries + 1) % pool.size();
          break;
        }
      }
    }
  }

  void expire_lease(NodeId node, rng::RngStream& rng) override {
    if (!present_.at(node)) return;
    // In-arcs lapse unreplaced: holders stopped refreshing this
    // subscription, and the fresh walk below re-balances where it lands.
    for (const NodeId u : in_[node]) erase_value(out_[u], node);
    in_[node].clear();

    NodeId contact = node;
    if (!out_[node].empty()) {
      contact = out_[node][static_cast<std::size_t>(
          rng.next_below(out_[node].size()))];
    } else {
      contact = random_present_peer(node, rng);
      if (contact == node) return;
      add_arc(node, contact);
    }
    subscribe(node, contact, rng);
  }

 private:
  /// Uniform present peer != node, or `node` itself when none exists.
  [[nodiscard]] NodeId random_present_peer(NodeId node, rng::RngStream& rng) {
    std::vector<NodeId> candidates;
    candidates.reserve(params_.num_nodes);
    for (NodeId v = 0; v < params_.num_nodes; ++v) {
      if (v != node && present_[v]) candidates.push_back(v);
    }
    if (candidates.empty()) return node;
    return candidates[static_cast<std::size_t>(
        rng.next_below(candidates.size()))];
  }

  /// True if the arc was new. Maintains the in-neighbor index.
  bool add_arc(NodeId from, NodeId to) {
    if (from == to || contains(out_[from], to)) return false;
    out_[from].push_back(to);
    in_[to].push_back(from);
    return true;
  }

  /// One subscription copy for `subscriber`, starting at `holder`: keep
  /// with probability 1/(1 + view size), else forward to a random view
  /// member; forced placement once the hop budget runs out (scamp.cpp's
  /// totality rule).
  void place_copy(NodeId subscriber, NodeId holder, rng::RngStream& rng) {
    NodeId current = holder;
    for (std::uint32_t hop = 0; hop < params_.max_forward_hops; ++hop) {
      if (current != subscriber) {
        const double keep =
            1.0 / (1.0 + static_cast<double>(out_[current].size()));
        if (rng.bernoulli(keep) && add_arc(current, subscriber)) return;
      }
      if (out_[current].empty()) break;
      current = out_[current][static_cast<std::size_t>(
          rng.next_below(out_[current].size()))];
    }
    if (current != subscriber) {
      add_arc(current, subscriber);
    } else if (holder != subscriber) {
      add_arc(holder, subscriber);
    } else {
      // The walk dead-ended at the subscriber itself (reachable when the
      // contact's view contains it, e.g. on a lease renewal). Force
      // placement at the next present member — build_scamp_views' totality
      // rule — instead of silently dropping the copy.
      for (NodeId offset = 1; offset < params_.num_nodes; ++offset) {
        const NodeId w = (subscriber + offset) % params_.num_nodes;
        if (!present_[w]) continue;
        add_arc(w, subscriber);
        break;
      }
    }
  }

  /// SCAMP subscription fan-out through `contact` for a join or a lease
  /// renewal: one copy per current view member of the contact, plus the
  /// redundancy copies, plus the contact's own keep draw.
  void subscribe(NodeId node, NodeId contact, rng::RngStream& rng) {
    const std::vector<NodeId> snapshot = out_[contact];
    for (const NodeId holder : snapshot) place_copy(node, holder, rng);
    for (std::uint32_t c = 0; c < params_.redundancy; ++c) {
      place_copy(node, contact, rng);
    }
    const double keep =
        1.0 / (1.0 + static_cast<double>(out_[contact].size()));
    if (rng.bernoulli(keep)) add_arc(contact, node);
  }

  ScampParams params_;
  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  std::vector<std::uint8_t> present_;
};

class ScampDynamicsFactory final : public MembershipDynamicsFactory {
 public:
  explicit ScampDynamicsFactory(ScampParams params) : params_(params) {
    if (params_.num_nodes < 2) {
      throw std::invalid_argument(
          "scamp_dynamics_factory requires >= 2 nodes");
    }
  }

  [[nodiscard]] MembershipDynamicsPtr create(
      rng::RngStream rng) const override {
    return std::make_unique<ScampDynamics>(params_, rng);
  }

  [[nodiscard]] std::string name() const override {
    return scamp_churn_name(params_);
  }

 private:
  ScampParams params_;
};

}  // namespace

MembershipDynamicsFactoryPtr scamp_dynamics_factory(ScampParams params) {
  return std::make_shared<ScampDynamicsFactory>(params);
}

}  // namespace gossip::membership
