#include "membership/scamp.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "membership/partial_view.hpp"

namespace gossip::membership {

namespace {

/// Inserts `peer` into `view` if absent; returns true when inserted.
bool insert_unique(std::vector<NodeId>& view, NodeId peer) {
  if (std::find(view.begin(), view.end(), peer) != view.end()) {
    return false;
  }
  view.push_back(peer);
  return true;
}

}  // namespace

std::vector<std::vector<NodeId>> build_scamp_views(const ScampParams& params,
                                                   rng::RngStream& rng) {
  if (params.num_nodes < 2) {
    throw std::invalid_argument("build_scamp_views requires >= 2 nodes");
  }
  std::vector<std::vector<NodeId>> views(params.num_nodes);

  // Forwards one subscription copy for `subscriber` starting at `holder`.
  // Keeps with probability 1/(1+|view|), else forwards to a random view
  // member; gives up (keeps unconditionally) after max_forward_hops.
  const auto place_copy = [&](NodeId subscriber, NodeId holder) {
    NodeId current = holder;
    for (std::uint32_t hop = 0; hop < params.max_forward_hops; ++hop) {
      if (current != subscriber) {
        const double keep_probability =
            1.0 / (1.0 + static_cast<double>(views[current].size()));
        if (rng.bernoulli(keep_probability) &&
            insert_unique(views[current], subscriber)) {
          return;
        }
      }
      if (views[current].empty()) break;
      const auto next_index = static_cast<std::size_t>(
          rng.next_below(views[current].size()));
      current = views[current][next_index];
    }
    // Hop budget exhausted: force placement somewhere valid to guarantee
    // the subscriber becomes reachable (SCAMP's lease mechanism would
    // eventually repair this; we keep the constructor total instead).
    if (current != subscriber) {
      insert_unique(views[current], subscriber);
    } else {
      insert_unique(views[holder != subscriber ? holder : (subscriber + 1) %
                                                     params.num_nodes],
                    subscriber);
    }
  };

  // Node 0 and 1 bootstrap each other; later nodes join via a uniformly
  // random existing contact.
  views[0].push_back(1);
  views[1].push_back(0);
  for (NodeId joiner = 2; joiner < params.num_nodes; ++joiner) {
    const auto contact = static_cast<NodeId>(rng.next_below(joiner));
    // The joiner starts knowing its contact.
    insert_unique(views[joiner], contact);
    // The contact forwards the new subscription to all of its current view
    // members plus `redundancy` extra copies (SCAMP subscription rule).
    const std::vector<NodeId> snapshot = views[contact];
    for (const NodeId holder : snapshot) {
      place_copy(joiner, holder);
    }
    for (std::uint32_t c = 0; c < params.redundancy; ++c) {
      place_copy(joiner, contact);
    }
    // The contact itself keeps the subscriber with the usual probability.
    const double keep_probability =
        1.0 / (1.0 + static_cast<double>(views[contact].size()));
    if (rng.bernoulli(keep_probability)) {
      insert_unique(views[contact], joiner);
    }
  }
  return views;
}

MembershipProviderPtr scamp_membership(const ScampParams& params,
                                       rng::RngStream& rng) {
  return list_membership(build_scamp_views(params, rng), "scamp");
}

}  // namespace gossip::membership
