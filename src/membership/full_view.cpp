#include "membership/full_view.hpp"

#include <algorithm>
#include <stdexcept>

#include "rng/distributions.hpp"

namespace gossip::membership {

namespace {

class FullView final : public MembershipView {
 public:
  FullView(std::uint32_t num_nodes, NodeId owner)
      : num_nodes_(num_nodes), owner_(owner) {}

  [[nodiscard]] std::size_t size() const override { return num_nodes_ - 1; }

  [[nodiscard]] std::vector<NodeId> select_targets(
      std::size_t k, rng::RngStream& rng) const override {
    k = std::min<std::size_t>(k, num_nodes_ - 1);
    return rng::sample_distinct_excluding(rng, k, num_nodes_, owner_);
  }

  void select_targets_into(std::size_t k, rng::RngStream& rng,
                           std::vector<NodeId>& out) const override {
    k = std::min<std::size_t>(k, num_nodes_ - 1);
    rng::sample_distinct_excluding_into(rng, k, num_nodes_, owner_, out);
  }

  [[nodiscard]] std::string name() const override { return "full"; }

 private:
  std::uint32_t num_nodes_;
  NodeId owner_;
};

class FullMembership final : public MembershipProvider {
 public:
  explicit FullMembership(std::uint32_t num_nodes) : num_nodes_(num_nodes) {
    if (num_nodes < 2) {
      throw std::invalid_argument("full_membership requires >= 2 nodes");
    }
  }
  [[nodiscard]] MembershipViewPtr view_for(NodeId owner) const override {
    if (owner >= num_nodes_) {
      throw std::out_of_range("full_membership owner out of range");
    }
    return std::make_shared<FullView>(num_nodes_, owner);
  }
  [[nodiscard]] std::string name() const override { return "full"; }

 private:
  std::uint32_t num_nodes_;
};

}  // namespace

MembershipProviderPtr full_membership(std::uint32_t num_nodes) {
  return std::make_shared<FullMembership>(num_nodes);
}

}  // namespace gossip::membership
