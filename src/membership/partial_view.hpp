#pragma once

/// \file partial_view.hpp
/// Partial membership from explicit per-node neighbor lists. Construct
/// either uniformly at random (each member knows `view_size` uniform peers)
/// or from externally built lists (e.g. the SCAMP subscription protocol in
/// scamp.hpp). The membership ablation quantifies how far such views drift
/// from the model's uniform-choice assumption.

#include "membership/view.hpp"

namespace gossip::membership {

/// Provider backed by explicit adjacency lists: views[i] are the members
/// node i knows. Lists must not contain the owner or duplicates.
[[nodiscard]] MembershipProviderPtr list_membership(
    std::vector<std::vector<NodeId>> views, std::string name = "list");

/// Uniform random partial views: every node knows `view_size` distinct
/// uniform peers (excluding itself). view_size must be in [1, n-1].
[[nodiscard]] MembershipProviderPtr uniform_partial_membership(
    std::uint32_t num_nodes, std::size_t view_size, rng::RngStream& rng);

}  // namespace gossip::membership
