#include "membership/partial_view.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <unordered_set>

#include "rng/distributions.hpp"

namespace gossip::membership {

namespace {

using ViewTable = std::vector<std::vector<NodeId>>;

class ListView final : public MembershipView {
 public:
  ListView(std::shared_ptr<const ViewTable> table, NodeId owner,
           std::string provider_name)
      : table_(std::move(table)), owner_(owner),
        name_(std::move(provider_name)) {}

  [[nodiscard]] std::size_t size() const override {
    return neighbors().size();
  }

  [[nodiscard]] std::vector<NodeId> select_targets(
      std::size_t k, rng::RngStream& rng) const override {
    const auto& nbrs = neighbors();
    const std::size_t v = nbrs.size();
    k = std::min(k, v);
    if (k == 0) return {};
    if (k == v) return nbrs;
    const auto picks = rng::sample_distinct(rng, k, v);
    std::vector<NodeId> out;
    out.reserve(k);
    for (const auto idx : picks) out.push_back(nbrs[idx]);
    return out;
  }

  [[nodiscard]] std::string name() const override { return name_; }

 private:
  [[nodiscard]] const std::vector<NodeId>& neighbors() const {
    return (*table_)[owner_];
  }

  std::shared_ptr<const ViewTable> table_;  // shared with the provider
  NodeId owner_;
  std::string name_;
};

class ListMembership final : public MembershipProvider {
 public:
  ListMembership(ViewTable views, std::string name)
      : table_(std::make_shared<const ViewTable>(std::move(views))),
        name_(std::move(name)) {
    const auto& table = *table_;
    for (NodeId owner = 0; owner < table.size(); ++owner) {
      std::unordered_set<NodeId> seen;
      for (const NodeId peer : table[owner]) {
        if (peer == owner) {
          throw std::invalid_argument("list_membership: view contains owner");
        }
        if (peer >= table.size()) {
          throw std::invalid_argument("list_membership: peer out of range");
        }
        if (!seen.insert(peer).second) {
          throw std::invalid_argument("list_membership: duplicate peer");
        }
      }
    }
  }

  [[nodiscard]] MembershipViewPtr view_for(NodeId owner) const override {
    if (owner >= table_->size()) {
      throw std::out_of_range("list_membership owner out of range");
    }
    return std::make_shared<ListView>(table_, owner, name_);
  }

  [[nodiscard]] std::string name() const override { return name_; }

 private:
  std::shared_ptr<const ViewTable> table_;
  std::string name_;
};

}  // namespace

MembershipProviderPtr list_membership(std::vector<std::vector<NodeId>> views,
                                      std::string name) {
  return std::make_shared<ListMembership>(std::move(views), std::move(name));
}

MembershipProviderPtr uniform_partial_membership(std::uint32_t num_nodes,
                                                 std::size_t view_size,
                                                 rng::RngStream& rng) {
  if (num_nodes < 2) {
    throw std::invalid_argument(
        "uniform_partial_membership requires >= 2 nodes");
  }
  if (view_size < 1 || view_size > num_nodes - 1) {
    throw std::invalid_argument(
        "uniform_partial_membership requires view_size in [1, n-1]");
  }
  std::vector<std::vector<NodeId>> views(num_nodes);
  for (NodeId owner = 0; owner < num_nodes; ++owner) {
    views[owner] =
        rng::sample_distinct_excluding(rng, view_size, num_nodes, owner);
  }
  return list_membership(std::move(views), "uniform-partial");
}

}  // namespace gossip::membership
