#pragma once

/// \file view.hpp
/// Membership views. The paper assumes "a scalable membership protocol is
/// available, such as [SCAMP]" and has each member pick gossip targets
/// "uniformly at random from its membership view". This interface is that
/// assumption made concrete; implementations range from the idealized full
/// view (exactly the model's uniform-choice premise) to SCAMP-style partial
/// views (what a deployed system would actually have).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rng/rng_stream.hpp"

namespace gossip::membership {

using NodeId = std::uint32_t;

class MembershipView {
 public:
  virtual ~MembershipView() = default;

  /// Number of members visible to the owner (excluding the owner itself).
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Draws up to `k` distinct gossip targets uniformly from the view; never
  /// returns the owner. If k exceeds the view size, the whole view is
  /// returned (a member cannot address more peers than it knows).
  [[nodiscard]] virtual std::vector<NodeId> select_targets(
      std::size_t k, rng::RngStream& rng) const = 0;

  /// Allocation-free variant for the hot paths: identical draw sequence and
  /// output as select_targets, written into `out` (cleared first, capacity
  /// reused). The default forwards to select_targets; implementations with
  /// a per-message cost override it (see FullView).
  virtual void select_targets_into(std::size_t k, rng::RngStream& rng,
                                   std::vector<NodeId>& out) const {
    out = select_targets(k, rng);
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

using MembershipViewPtr = std::shared_ptr<const MembershipView>;

/// Produces the view of each member; lets protocols stay agnostic about how
/// membership is realized.
class MembershipProvider {
 public:
  virtual ~MembershipProvider() = default;
  [[nodiscard]] virtual MembershipViewPtr view_for(NodeId owner) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

using MembershipProviderPtr = std::shared_ptr<const MembershipProvider>;

}  // namespace gossip::membership
