#pragma once

/// \file topology_view.hpp
/// Static-topology membership: each node's view IS its neighbor set in a
/// fixed overlay graph (Erdős–Rényi, scale-free, clustered WAN, ...). This
/// is the regime Hu & Jehl study — gossip restricted to large-scale random
/// topologies, where reliability predictions diverge from the paper's
/// uniform-view model. The adjacency is CSR (compressed sparse row) in two
/// flat arrays so the flat SoA engine can consume it with zero steady-state
/// allocations; this header deliberately does not depend on the graph
/// layer — scenario code converts graph::Digraph into CsrAdjacency.

#include <cstdint>
#include <span>
#include <vector>

#include "membership/view.hpp"

namespace gossip::membership {

/// Flat CSR neighbor lists: node v's neighbors are
/// neighbors[offsets[v] .. offsets[v + 1]). Immutable after construction;
/// shared by reference between the scenario layer, the DES provider below,
/// and the flat engine's hot loop.
struct CsrAdjacency {
  std::vector<std::uint64_t> offsets;  ///< Size num_nodes + 1; offsets[0]==0.
  std::vector<NodeId> neighbors;       ///< Size offsets.back().
  std::uint32_t max_degree = 0;        ///< max_v degree(v); sizing scratch.

  [[nodiscard]] std::uint32_t num_nodes() const {
    return offsets.empty() ? 0
                           : static_cast<std::uint32_t>(offsets.size() - 1);
  }
  [[nodiscard]] std::uint32_t degree(NodeId v) const {
    return static_cast<std::uint32_t>(offsets[v + 1] - offsets[v]);
  }
  [[nodiscard]] std::span<const NodeId> neighbors_of(NodeId v) const {
    return {neighbors.data() + offsets[v], degree(v)};
  }
};

using CsrAdjacencyPtr = std::shared_ptr<const CsrAdjacency>;

/// Validates CSR shape invariants (monotone offsets covering `neighbors`,
/// in-range targets, no self-loops or duplicate neighbors, max_degree
/// consistent); throws std::invalid_argument on the first violation.
void validate_csr_adjacency(const CsrAdjacency& adjacency);

/// MembershipProvider over a fixed CSR adjacency: view_for(v) serves exactly
/// v's neighbor set, and target selection draws uniformly WITHIN that set —
/// the neighbor-restricted selection of a topology-constrained overlay.
/// Validates the adjacency up-front.
[[nodiscard]] MembershipProviderPtr topology_membership(
    CsrAdjacencyPtr adjacency, std::string name = "topology");

}  // namespace gossip::membership
