#include "membership/topology_view.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "rng/distributions.hpp"

namespace gossip::membership {

void validate_csr_adjacency(const CsrAdjacency& adjacency) {
  if (adjacency.offsets.empty() || adjacency.offsets.front() != 0) {
    throw std::invalid_argument(
        "CsrAdjacency: offsets must start with a leading 0");
  }
  if (adjacency.offsets.back() != adjacency.neighbors.size()) {
    throw std::invalid_argument(
        "CsrAdjacency: offsets.back() must equal neighbors.size()");
  }
  const std::uint32_t n = adjacency.num_nodes();
  std::uint32_t max_degree = 0;
  std::unordered_set<NodeId> seen;
  for (NodeId v = 0; v < n; ++v) {
    if (adjacency.offsets[v + 1] < adjacency.offsets[v]) {
      throw std::invalid_argument("CsrAdjacency: offsets must be monotone");
    }
    max_degree = std::max(max_degree, adjacency.degree(v));
    seen.clear();
    for (const NodeId t : adjacency.neighbors_of(v)) {
      if (t >= n) {
        throw std::invalid_argument("CsrAdjacency: neighbor out of range");
      }
      if (t == v) {
        throw std::invalid_argument("CsrAdjacency: self-loop neighbor");
      }
      if (!seen.insert(t).second) {
        throw std::invalid_argument("CsrAdjacency: duplicate neighbor");
      }
    }
  }
  if (adjacency.max_degree != max_degree) {
    throw std::invalid_argument(
        "CsrAdjacency: max_degree inconsistent with offsets");
  }
}

namespace {

class TopologyView final : public MembershipView {
 public:
  TopologyView(CsrAdjacencyPtr adjacency, NodeId owner,
               std::string provider_name)
      : adjacency_(std::move(adjacency)), owner_(owner),
        name_(std::move(provider_name)) {}

  [[nodiscard]] std::size_t size() const override {
    return adjacency_->degree(owner_);
  }

  [[nodiscard]] std::vector<NodeId> select_targets(
      std::size_t k, rng::RngStream& rng) const override {
    std::vector<NodeId> out;
    select_targets_into(k, rng, out);
    return out;
  }

  void select_targets_into(std::size_t k, rng::RngStream& rng,
                           std::vector<NodeId>& out) const override {
    const auto nbrs = adjacency_->neighbors_of(owner_);
    const std::size_t d = nbrs.size();
    k = std::min(k, d);
    out.clear();
    if (k == 0) return;
    if (k == d) {
      out.assign(nbrs.begin(), nbrs.end());
      return;
    }
    // Draw k distinct neighbor INDICES into `out`, then map in place — the
    // same two-step draw for both entry points keeps the sequences aligned.
    rng::sample_distinct_into(rng, k, d, out);
    for (auto& slot : out) slot = nbrs[slot];
  }

  [[nodiscard]] std::string name() const override { return name_; }

 private:
  CsrAdjacencyPtr adjacency_;  // shared with the provider
  NodeId owner_;
  std::string name_;
};

class TopologyMembership final : public MembershipProvider {
 public:
  TopologyMembership(CsrAdjacencyPtr adjacency, std::string name)
      : adjacency_(std::move(adjacency)), name_(std::move(name)) {
    if (!adjacency_) {
      throw std::invalid_argument("topology_membership: null adjacency");
    }
    validate_csr_adjacency(*adjacency_);
  }

  [[nodiscard]] MembershipViewPtr view_for(NodeId owner) const override {
    if (owner >= adjacency_->num_nodes()) {
      throw std::out_of_range("topology_membership owner out of range");
    }
    return std::make_shared<TopologyView>(adjacency_, owner, name_);
  }

  [[nodiscard]] std::string name() const override { return name_; }

 private:
  CsrAdjacencyPtr adjacency_;
  std::string name_;
};

}  // namespace

MembershipProviderPtr topology_membership(CsrAdjacencyPtr adjacency,
                                          std::string name) {
  return std::make_shared<TopologyMembership>(std::move(adjacency),
                                              std::move(name));
}

}  // namespace gossip::membership
