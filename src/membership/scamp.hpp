#pragma once

/// \file scamp.hpp
/// SCAMP-style membership construction (Ganesh, Kermarrec, Massoulié —
/// the paper's reference [12]). Members join through a random contact; the
/// contact forwards the new subscription to all of its view plus c extra
/// copies; each recipient keeps the subscription with probability
/// 1/(1 + view size), otherwise forwards it to a random view member.
/// The resulting partial views have mean size ~ (c+1) ln n, which is what
/// makes gossip over SCAMP views approximate uniform target selection.
///
/// This is an offline constructor (no DES involvement): the paper treats
/// membership as a pre-existing substrate, so we build the views first and
/// gossip over them afterwards.

#include "membership/view.hpp"

namespace gossip::membership {

struct ScampParams {
  std::uint32_t num_nodes = 0;
  /// Extra subscription copies per join (SCAMP's c); view sizes scale as
  /// (c + 1) ln n.
  std::uint32_t redundancy = 1;
  /// Forwarding hop cap per subscription copy; prevents pathological walks.
  std::uint32_t max_forward_hops = 256;
};

/// Runs the subscription process for all nodes joining in id order and
/// returns each node's resulting view (out-neighbors).
[[nodiscard]] std::vector<std::vector<NodeId>> build_scamp_views(
    const ScampParams& params, rng::RngStream& rng);

/// Convenience: build_scamp_views wrapped into a MembershipProvider.
[[nodiscard]] MembershipProviderPtr scamp_membership(const ScampParams& params,
                                                     rng::RngStream& rng);

}  // namespace gossip::membership
