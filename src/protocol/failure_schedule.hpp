#pragma once

/// \file failure_schedule.hpp
/// First-class fault injection for the message-level protocol. The paper's
/// crashes are static (Section 4.1: fail before receiving, or after
/// receiving but before forwarding); a FailureSchedule generalizes that to
/// anything expressible over the event-driven simulator — timed churn
/// traces, degree-targeted kills, structured message loss — without each
/// experiment hand-rolling its own injection loop. Concrete schedules live
/// in the scenario layer (scenario/failure_models.hpp); the protocol only
/// sees this interface.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/degree_distribution.hpp"
#include "net/network.hpp"
#include "rng/rng_stream.hpp"

namespace gossip::protocol {

/// The hooks a schedule may drive, provided by the protocol session right
/// before dissemination starts (virtual time 0). All callbacks remain valid
/// for the whole execution, so scheduled actions may keep copies.
///
/// Semantics: crashes injected through set_alive use fail-stop delivery-drop
/// semantics (the paper's case A; Section 4.1 proves case B yields the same
/// reliability). The source never fails (Section 3) — set_alive on the
/// source is ignored.
struct FailureContext {
  std::uint32_t num_nodes = 0;
  net::NodeId source = 0;
  /// The execution's fanout distribution, for degree-aware schedules.
  const core::DegreeDistribution* fanout = nullptr;

  /// Current liveness of a member.
  std::function<bool(net::NodeId)> is_alive;
  /// Immediately crashes (false) or revives (true) a member. Callable both
  /// during apply() (static failures) and from scheduled actions (churn).
  std::function<void(net::NodeId, bool)> set_alive;
  /// Runs `action` at absolute virtual time t >= 0; actions needing
  /// randomness should capture their own substream by value so execution
  /// order cannot perturb other draws.
  std::function<void(double, std::function<void()>)> schedule_action;
  /// Installs a structured per-send loss filter on the network.
  std::function<void(net::LossFilter)> set_loss_filter;
  /// Pins member v's fanout draw to `f` (>= 0): on first receipt v forwards
  /// to exactly f targets instead of sampling. Lets degree-targeted
  /// schedules decide degrees and failures consistently.
  std::function<void(net::NodeId, std::int64_t)> pin_fanout;

  /// Expires member v's membership lease: under live membership dynamics
  /// the member re-subscribes (SCAMP lease renewal); a no-op on executions
  /// running over a static view snapshot.
  std::function<void(net::NodeId)> expire_lease;

  /// Messages member v has forwarded so far in this execution. Lets
  /// adaptive schedules (kill_hottest_forwarder) target the members
  /// currently carrying the dissemination.
  std::function<std::uint64_t(net::NodeId)> forwards_sent;
};

class FailureSchedule {
 public:
  virtual ~FailureSchedule() = default;

  /// Human-readable identifier, e.g. "churn(crash@2:0.1)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once per execution before the source's initial send. `rng` is a
  /// dedicated substream: draws here never shift protocol randomness.
  virtual void apply(FailureContext& context, rng::RngStream& rng) const = 0;
};

using FailureSchedulePtr = std::shared_ptr<const FailureSchedule>;

}  // namespace gossip::protocol
