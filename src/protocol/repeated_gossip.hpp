#pragma once

/// \file repeated_gossip.hpp
/// Repeated executions of the gossip algorithm — the success-of-gossiping
/// experiment of Section 5.2 (Figs. 6-7). Crashes are persistent: one alive
/// mask is drawn per experiment and shared by all t executions, while
/// fanouts/targets re-randomize per execution, making the executions
/// independent Bernoulli trials for every surviving member (the premise of
/// the B(t, R) model, Eqs. (5)-(6)).

#include <cstdint>
#include <vector>

#include "protocol/gossip_multicast.hpp"

namespace gossip::protocol {

struct RepeatedGossipParams {
  GossipParams base;
  std::int64_t executions = 20;  ///< t; the paper uses 20.
};

struct RepeatedGossipResult {
  std::int64_t executions = 0;
  std::uint32_t alive_count = 0;  ///< Non-failed members (incl. source).
  core::Bitvec alive;
  /// Per-node count of executions in which the node received m; crashed
  /// nodes report 0 (kBeforeReceive) or incidental receipts
  /// (kAfterReceiveBeforeForward) and are excluded from X statistics.
  std::vector<std::uint32_t> receive_counts;
  /// Reliability of each execution (giant-component realization).
  std::vector<double> per_execution_reliability;
  /// Number of executions that achieved success (all alive members reached).
  std::int64_t successful_executions = 0;

  /// Samples of X (receive count over t executions) for every non-failed
  /// member except the source (which trivially receives every time).
  [[nodiscard]] std::vector<std::uint32_t> success_count_samples(
      NodeId source) const;
};

/// Runs t executions with a persistent alive mask drawn once.
[[nodiscard]] RepeatedGossipResult run_repeated_gossip(
    const RepeatedGossipParams& params, rng::RngStream& rng);

}  // namespace gossip::protocol
