#include "protocol/gossip_multicast.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "membership/full_view.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace gossip::protocol {

namespace {

void validate(const GossipParams& params) {
  if (params.num_nodes < 2) {
    throw std::invalid_argument("gossip requires >= 2 nodes");
  }
  if (params.source >= params.num_nodes) {
    throw std::out_of_range("gossip source out of range");
  }
  if (!(params.nonfailed_ratio > 0.0 && params.nonfailed_ratio <= 1.0)) {
    throw std::invalid_argument("gossip requires q in (0, 1]");
  }
  if (params.fanout == nullptr) {
    throw std::invalid_argument("gossip requires a fanout distribution");
  }
  if (!(params.midrun_crash_fraction >= 0.0 &&
        params.midrun_crash_fraction <= 1.0)) {
    throw std::invalid_argument(
        "gossip requires midrun_crash_fraction in [0, 1]");
  }
  if (params.membership != nullptr && params.dynamics != nullptr) {
    throw std::invalid_argument(
        "gossip takes a static membership view or live dynamics, not both");
  }
}

void validate_workload(const WorkloadParams& workload) {
  if (workload.num_messages == 0) {
    throw std::invalid_argument("workload requires >= 1 message");
  }
  if (!(workload.spacing >= 0.0) || !std::isfinite(workload.spacing)) {
    throw std::invalid_argument("workload spacing must be finite and >= 0");
  }
}

/// One execution of Fig. 1 over the DES, generalized to a workload of
/// overlapping messages sharing the clock, the failure schedule, and (when
/// configured) the live membership. Owns all per-run state.
class Session {
 public:
  Session(const GossipParams& params, const WorkloadParams& workload,
          core::Bitvec alive, rng::RngStream rng, obs::Probe* probe)
      : params_(params),
        workload_(workload),
        alive_(std::move(alive)),
        rng_(rng),
        membership_rng_(rng.substream(0x6d656d62)),  // "memb"
        network_(simulator_,
                 net::NetworkParams{params.latency, params.loss_probability},
                 rng.substream(0x6e657477)),
        probe_(probe) {
    if (probe_ != nullptr) {
      // Drops never reach handle(), so loss/dead accounting comes from the
      // network's drop hook; the dropped message still carries its hop
      // count, which is the round it would have landed in. Observational
      // only — counters and draws are identical without the observer.
      network_.set_drop_observer(
          [this](NodeId /*from*/, NodeId /*to*/, const net::Message& message,
                 net::DropReason reason, double /*now*/) {
            if (reason == net::DropReason::kLoss) {
              ++trace_round(message.hops).losses;
            } else if (reason == net::DropReason::kDestinationDown) {
              ++trace_round(message.hops).dead_receipts;
            }
            // kSenderDown messages were never sent; they appear nowhere.
          });
    }
    const std::uint32_t n = params_.num_nodes;
    const std::uint32_t w = workload_.num_messages;
    if (params_.dynamics) {
      // Per-execution evolving views on a dedicated substream; members dead
      // from the start have already been repaired around.
      auto build_rng = rng.substream(0x64796e73);  // "dyns"
      dynamics_ = params_.dynamics->create(build_rng);
      for (NodeId v = 0; v < n; ++v) {
        if (!alive_[v]) dynamics_->leave(v, membership_rng_);
      }
    } else {
      membership_ = params_.membership
                        ? params_.membership
                        : membership::full_membership(n);
      // Views of a static provider are immutable for the whole execution;
      // caching them turns the per-message view_for allocation into a
      // once-per-node lookup.
      view_cache_.assign(n, nullptr);
    }
    seen_.assign(static_cast<std::size_t>(w) * n, false);
    receipt_time_.assign(static_cast<std::size_t>(w) * n, 0.0);
    last_receipt_.assign(w, 0.0);
    injected_.assign(w, 0);
    sources_.resize(w);
    for (std::uint32_t j = 0; j < w; ++j) {
      // Spread sources stride evenly around the id space; message 0 always
      // originates at the configured (crash-immune) source.
      sources_[j] = workload_.spread_sources
                        ? static_cast<NodeId>(
                              (params_.source +
                               static_cast<std::uint64_t>(j) * n / w) %
                              n)
                        : params_.source;
    }
    forwards_.assign(n, 0);
    pinned_fanout_.assign(n, -1);
    slots_.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      slots_.emplace_back(this, v);
    }
    for (auto& slot : slots_) {
      const NodeId id = network_.add_node(slot);
      (void)id;
    }
    if (params_.crash_case == CrashCase::kBeforeReceive) {
      for (NodeId v = 0; v < n; ++v) {
        if (!alive_[v]) network_.set_down(v, true);
      }
    }
  }

  ExecutionResult run_single() {
    execute();
    ExecutionResult result;
    result.num_nodes = params_.num_nodes;
    result.alive = alive_;
    // Single-message mode: seen_ is exactly the n receipt flags.
    result.received = seen_;
    result.nonfailed_count = static_cast<std::uint32_t>(alive_.count());
    result.nonfailed_received = static_cast<std::uint32_t>(
        core::Bitvec::count_and(alive_, seen_));
    result.reliability = static_cast<double>(result.nonfailed_received) /
                         static_cast<double>(result.nonfailed_count);
    result.success = result.nonfailed_received == result.nonfailed_count;
    result.messages_sent = network_.counters().sent;
    result.duplicate_receipts = duplicates_;
    result.completion_time = last_receipt_time_;
    result.midrun_crashes = midrun_crashes_;
    return result;
  }

  WorkloadResult run_workload() {
    execute();
    const std::uint32_t n = params_.num_nodes;
    WorkloadResult result;
    result.num_nodes = n;
    result.nonfailed_count = static_cast<std::uint32_t>(alive_.count());
    result.messages.reserve(workload_.num_messages);
    result.all_success = true;
    for (std::uint32_t j = 0; j < workload_.num_messages; ++j) {
      MessageStats stats;
      stats.id = j + 1;
      stats.source = sources_[j];
      stats.inject_time = inject_time(j);
      stats.injected = injected_[j] != 0;
      stats.alive_count = result.nonfailed_count;
      double latency_sum = 0.0;
      for (NodeId v = 0; v < n; ++v) {
        if (!alive_[v] || !seen_[flat(j, v)]) continue;
        ++stats.delivered;
        latency_sum += receipt_time_[flat(j, v)] - stats.inject_time;  // LINT-ALLOW(float-accumulation): within one execution, node order fixed by the NodeId loop; replication folds use OnlineSummary
      }
      stats.reliability = static_cast<double>(stats.delivered) /
                          static_cast<double>(stats.alive_count);
      stats.success = stats.delivered == stats.alive_count;
      stats.completion_time = last_receipt_[j];
      stats.mean_latency =
          stats.delivered == 0
              ? 0.0
              : latency_sum / static_cast<double>(stats.delivered);
      result.mean_reliability += stats.reliability;
      result.all_success = result.all_success && stats.success;
      result.messages.push_back(stats);
    }
    result.mean_reliability /=
        static_cast<double>(workload_.num_messages);
    result.messages_sent = network_.counters().sent;
    result.duplicate_receipts = duplicates_;
    result.midrun_crashes = midrun_crashes_;
    result.completion_time = last_receipt_time_;
    return result;
  }

 private:
  struct NodeSlot final : net::NodeHandler {
    NodeSlot(Session* owning_session, NodeId node_id)
        : session(owning_session), self(node_id) {}
    Session* session;
    NodeId self;
    void on_message(NodeId from, const net::Message& message) override {
      session->handle(self, from, message);
    }
  };

  [[nodiscard]] std::size_t flat(std::uint32_t msg, NodeId v) const {
    return static_cast<std::size_t>(msg) * params_.num_nodes + v;
  }

  [[nodiscard]] double inject_time(std::uint32_t msg) const {
    return static_cast<double>(msg) * workload_.spacing;
  }

  void execute() {
    // Declarative fault injection runs first, on its own substream: the
    // schedule may crash members statically, plant timed churn actions, pin
    // fanouts, or install a loss filter, and none of it shifts the draws of
    // the legacy failure paths below.
    if (params_.failure) {
      FailureContext context;
      context.num_nodes = params_.num_nodes;
      context.source = params_.source;
      context.fanout = params_.fanout.get();
      context.is_alive = [this](NodeId v) { return alive_.at(v); };
      context.set_alive = [this](NodeId v, bool alive) {
        set_alive(v, alive);
      };
      context.schedule_action = [this](double t,
                                       std::function<void()> action) {
        simulator_.schedule_at(t, std::move(action));
      };
      context.set_loss_filter = [this](net::LossFilter filter) {
        network_.set_loss_filter(std::move(filter));
      };
      context.pin_fanout = [this](NodeId v, std::int64_t f) {
        if (f < 0) {
          throw std::invalid_argument("pin_fanout requires f >= 0");
        }
        pinned_fanout_.at(v) = f;
      };
      context.expire_lease = [this](NodeId v) {
        if (dynamics_ && alive_.at(v)) {
          dynamics_->expire_lease(v, membership_rng_);
          if (probe_ != nullptr) {
            ++trace_round(time_bucket()).lease_expiries;
          }
        }
      };
      context.forwards_sent = [this](NodeId v) { return forwards_.at(v); };
      auto schedule_rng = rng_.substream(0x6661696cULL);  // "fail"
      params_.failure->apply(context, schedule_rng);
    }

    // Schedule dynamic crashes before dissemination starts. A crashing
    // member flips to failed: the network drops its in-flight deliveries
    // and it never forwards afterwards; it leaves the non-failed population
    // for metric purposes (it is, after all, a failed member).
    if (params_.midrun_crash_fraction > 0.0) {
      const auto crash_time = params_.midrun_crash_time
                                  ? params_.midrun_crash_time
                                  : net::uniform_latency(0.0, 10.0);
      for (NodeId v = 0; v < params_.num_nodes; ++v) {
        if (v == params_.source || !alive_[v]) continue;
        if (!rng_.bernoulli(params_.midrun_crash_fraction)) continue;
        const double when = crash_time->sample(rng_);
        simulator_.schedule_at(when, [this, v] {
          if (!alive_[v]) return;
          alive_.reset(v);
          ++midrun_crashes_;
          network_.set_down(v, true);
          if (dynamics_) dynamics_->leave(v, membership_rng_);
          if (probe_ != nullptr) ++trace_round(time_bucket()).crashes;
        });
      }
    }

    for (std::uint32_t j = 0; j < workload_.num_messages; ++j) {
      simulator_.schedule_at(inject_time(j), [this, j] { inject(j); });
    }
    running_ = true;  // liveness transitions from here on count as mid-run
    simulator_.run();
    flush_trace();
  }

  /// Membership events are bucketed by virtual time (message rounds go by
  /// hop count; the two coincide under unit latency). Clamped so a far-
  /// future churn action cannot balloon the trace vector.
  [[nodiscard]] std::size_t time_bucket() const {
    const double now = simulator_.now();
    if (!(now > 0.0)) return 0;
    constexpr double kMaxBucket = 1 << 20;
    return static_cast<std::size_t>(now < kMaxBucket ? now : kMaxBucket);
  }

  [[nodiscard]] obs::RoundSample& trace_round(std::size_t round) {
    if (round >= trace_rounds_.size()) trace_rounds_.resize(round + 1);
    return trace_rounds_[round];
  }

  /// Emits the collected rounds in order (filling round indices and the
  /// cumulative informed series) followed by the whole-run summary.
  void flush_trace() {
    if (probe_ == nullptr) return;
    obs::RunSummary summary;
    std::uint64_t informed = 0;
    for (std::size_t r = 0; r < trace_rounds_.size(); ++r) {
      obs::RoundSample& sample = trace_rounds_[r];
      sample.round = r;
      informed += sample.newly_informed;
      sample.informed = informed;
      summary.crashes += sample.crashes;
      summary.joins += sample.joins;
      summary.lease_expiries += sample.lease_expiries;
      probe_->on_round(sample);
    }
    summary.rounds =
        trace_rounds_.empty() ? 0 : trace_rounds_.size() - 1;
    summary.sends = network_.counters().sent;
    summary.redundant = duplicates_;
    summary.losses = network_.counters().lost;
    summary.dead_receipts = network_.counters().to_down_node;
    summary.informed_final = informed;
    summary.nonfailed_final = alive_.count();
    probe_->on_run(summary);
  }

  void inject(std::uint32_t msg) {
    const NodeId source = sources_[msg];
    // A spread source that died before its injection slot loses the
    // message outright; the crash-immune params_.source always injects.
    if (!alive_[source]) return;
    injected_[msg] = 1;
    const net::Message m{/*id=*/msg + 1, /*origin=*/source, /*hops=*/0};
    handle(source, source, m);
  }

  /// Crash/revival entry point for FailureSchedules: flips liveness, the
  /// network's fail-stop flag, and (under live dynamics) the membership
  /// repair together. The source is immune (Section 3).
  void set_alive(NodeId v, bool alive) {
    if (v == params_.source) return;
    const bool was_alive = alive_.at(v);
    if (was_alive == alive) return;
    alive_.set(v, alive);
    network_.set_down(v, !alive);
    if (!alive && running_) ++midrun_crashes_;
    if (dynamics_) {
      if (alive) {
        dynamics_->join(v, membership_rng_);
      } else {
        dynamics_->leave(v, membership_rng_);
      }
    }
    if (probe_ != nullptr) {
      obs::RoundSample& sample = trace_round(time_bucket());
      if (alive) {
        ++sample.joins;
      } else {
        ++sample.crashes;
      }
    }
  }

  void handle(NodeId self, NodeId /*from*/, const net::Message& message) {
    const auto msg = static_cast<std::uint32_t>(message.id - 1);
    last_receipt_time_ = simulator_.now();
    last_receipt_[msg] = simulator_.now();
    const bool traced = probe_ != nullptr;
    if (seen_[flat(msg, self)]) {
      ++duplicates_;
      if (traced) ++trace_round(message.hops).redundant;
      return;  // Fig. 1: duplicates are discarded immediately
    }
    seen_.set(flat(msg, self));
    receipt_time_[flat(msg, self)] = simulator_.now();
    if (traced) ++trace_round(message.hops).newly_informed;
    // Crash case B: the member received m but crashed before forwarding.
    // (Case A never reaches here for crashed members: the network dropped
    // the delivery.) Either way a crashed member draws no fanout, so both
    // cases consume identical randomness for alive members.
    if (!alive_[self]) {
      return;
    }
    // The member activates: it belongs to the NEXT round's frontier, which
    // is where its sends land — the flat engine's generation indexing.
    if (traced) ++trace_round(message.hops + 1).frontier;
    const std::int64_t pinned = pinned_fanout_[self];
    const std::int64_t fanout =
        pinned >= 0 ? pinned : params_.fanout->sample(rng_);
    if (fanout <= 0) return;
    // Target selection goes through the _into variants with one scratch
    // vector per session, so the steady-state loop stops allocating a fresh
    // target vector (and, static mode, a fresh view object) per message.
    if (dynamics_) {
      dynamics_->select_targets_into(self, static_cast<std::size_t>(fanout),
                                     rng_, targets_);
    } else {
      auto& view = view_cache_[self];
      if (view == nullptr) view = membership_->view_for(self);
      view->select_targets_into(static_cast<std::size_t>(fanout), rng_,
                                targets_);
    }
    forwards_[self] += targets_.size();
    if (traced) trace_round(message.hops + 1).sends += targets_.size();
    net::Message forwarded = message;
    forwarded.hops = message.hops + 1;
    for (const NodeId t : targets_) {
      network_.send(self, t, forwarded);
    }
  }

  GossipParams params_;
  WorkloadParams workload_;
  core::Bitvec alive_;
  rng::RngStream rng_;
  rng::RngStream membership_rng_;  ///< Drives all membership repair draws.
  sim::Simulator simulator_;
  net::Network network_;
  membership::MembershipProviderPtr membership_;  ///< Static-view mode.
  membership::MembershipDynamicsPtr dynamics_;    ///< Live-view mode.
  /// Lazily-built per-node views (static mode; views are immutable per run).
  std::vector<membership::MembershipViewPtr> view_cache_;
  std::vector<NodeId> targets_;           ///< Per-message selection scratch.
  core::Bitvec seen_;                     ///< [msg * n + v] receipt flags.
  std::vector<double> receipt_time_;      ///< First-receipt times, same shape.
  std::vector<double> last_receipt_;      ///< Per-message last receipt.
  std::vector<std::uint8_t> injected_;
  std::vector<NodeId> sources_;
  std::vector<std::uint64_t> forwards_;   ///< Messages forwarded per member.
  std::vector<std::int64_t> pinned_fanout_;  ///< -1 = draw from P as usual.
  std::vector<NodeSlot> slots_;
  std::uint64_t duplicates_ = 0;
  std::uint32_t midrun_crashes_ = 0;
  double last_receipt_time_ = 0.0;
  bool running_ = false;
  obs::Probe* probe_ = nullptr;
  /// Hop-indexed round accumulators, flushed to probe_ when the run drains
  /// (empty and untouched for untraced runs).
  std::vector<obs::RoundSample> trace_rounds_;
};

}  // namespace

core::Bitvec draw_alive_mask(std::uint32_t num_nodes, NodeId source,
                             double nonfailed_ratio, rng::RngStream& rng) {
  if (source >= num_nodes) {
    throw std::out_of_range("draw_alive_mask source out of range");
  }
  core::Bitvec alive(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) {
    if (v == source || rng.bernoulli(nonfailed_ratio)) alive.set(v);
  }
  return alive;
}

ExecutionResult run_gossip_once(const GossipParams& params,
                                rng::RngStream& rng, obs::Probe* probe) {
  validate(params);
  auto alive = draw_alive_mask(params.num_nodes, params.source,
                               params.nonfailed_ratio, rng);
  return run_gossip_once(params, alive, rng, probe);
}

ExecutionResult run_gossip_once(const GossipParams& params,
                                const core::Bitvec& alive,
                                rng::RngStream& rng, obs::Probe* probe) {
  validate(params);
  if (alive.size() != params.num_nodes) {
    throw std::invalid_argument("alive mask size must equal num_nodes");
  }
  if (!alive[params.source]) {
    throw std::invalid_argument("the source member must be alive");
  }
  Session session(params, WorkloadParams{}, alive, rng.substream(rng()),
                  probe);
  return session.run_single();
}

WorkloadResult run_gossip_workload(const GossipParams& params,
                                   const WorkloadParams& workload,
                                   rng::RngStream& rng, obs::Probe* probe) {
  validate(params);
  validate_workload(workload);
  auto alive = draw_alive_mask(params.num_nodes, params.source,
                               params.nonfailed_ratio, rng);
  Session session(params, workload, alive, rng.substream(rng()), probe);
  return session.run_workload();
}

}  // namespace gossip::protocol
