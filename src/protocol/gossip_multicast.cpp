#include "protocol/gossip_multicast.hpp"

#include <algorithm>
#include <stdexcept>

#include "membership/full_view.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace gossip::protocol {

namespace {

void validate(const GossipParams& params) {
  if (params.num_nodes < 2) {
    throw std::invalid_argument("gossip requires >= 2 nodes");
  }
  if (params.source >= params.num_nodes) {
    throw std::out_of_range("gossip source out of range");
  }
  if (!(params.nonfailed_ratio > 0.0 && params.nonfailed_ratio <= 1.0)) {
    throw std::invalid_argument("gossip requires q in (0, 1]");
  }
  if (params.fanout == nullptr) {
    throw std::invalid_argument("gossip requires a fanout distribution");
  }
  if (!(params.midrun_crash_fraction >= 0.0 &&
        params.midrun_crash_fraction <= 1.0)) {
    throw std::invalid_argument(
        "gossip requires midrun_crash_fraction in [0, 1]");
  }
}

/// One execution of Fig. 1 over the DES. Owns all per-run state.
class Session {
 public:
  Session(const GossipParams& params, std::vector<std::uint8_t> alive,
          rng::RngStream rng)
      : params_(params),
        alive_(std::move(alive)),
        rng_(rng),
        network_(simulator_,
                 net::NetworkParams{params.latency, params.loss_probability},
                 rng.substream(0x6e657477)) {
    membership_ = params_.membership
                      ? params_.membership
                      : membership::full_membership(params_.num_nodes);
    seen_.assign(params_.num_nodes, 0);
    pinned_fanout_.assign(params_.num_nodes, -1);
    slots_.reserve(params_.num_nodes);
    for (NodeId v = 0; v < params_.num_nodes; ++v) {
      slots_.emplace_back(this, v);
    }
    for (auto& slot : slots_) {
      const NodeId id = network_.add_node(slot);
      (void)id;
    }
    if (params_.crash_case == CrashCase::kBeforeReceive) {
      for (NodeId v = 0; v < params_.num_nodes; ++v) {
        if (!alive_[v]) network_.set_down(v, true);
      }
    }
  }

  ExecutionResult run() {
    // Declarative fault injection runs first, on its own substream: the
    // schedule may crash members statically, plant timed churn actions, pin
    // fanouts, or install a loss filter, and none of it shifts the draws of
    // the legacy failure paths below.
    if (params_.failure) {
      FailureContext context;
      context.num_nodes = params_.num_nodes;
      context.source = params_.source;
      context.fanout = params_.fanout.get();
      context.is_alive = [this](NodeId v) { return alive_.at(v) != 0; };
      context.set_alive = [this](NodeId v, bool alive) {
        set_alive(v, alive);
      };
      context.schedule_action = [this](double t,
                                       std::function<void()> action) {
        simulator_.schedule_at(t, std::move(action));
      };
      context.set_loss_filter = [this](net::LossFilter filter) {
        network_.set_loss_filter(std::move(filter));
      };
      context.pin_fanout = [this](NodeId v, std::int64_t f) {
        if (f < 0) {
          throw std::invalid_argument("pin_fanout requires f >= 0");
        }
        pinned_fanout_.at(v) = f;
      };
      auto schedule_rng = rng_.substream(0x6661696cULL);  // "fail"
      params_.failure->apply(context, schedule_rng);
    }

    // Schedule dynamic crashes before dissemination starts. A crashing
    // member flips to failed: the network drops its in-flight deliveries
    // and it never forwards afterwards; it leaves the non-failed population
    // for metric purposes (it is, after all, a failed member).
    if (params_.midrun_crash_fraction > 0.0) {
      const auto crash_time = params_.midrun_crash_time
                                  ? params_.midrun_crash_time
                                  : net::uniform_latency(0.0, 10.0);
      for (NodeId v = 0; v < params_.num_nodes; ++v) {
        if (v == params_.source || !alive_[v]) continue;
        if (!rng_.bernoulli(params_.midrun_crash_fraction)) continue;
        const double when = crash_time->sample(rng_);
        simulator_.schedule_at(when, [this, v] {
          if (!alive_[v]) return;
          alive_[v] = 0;
          ++midrun_crashes_;
          network_.set_down(v, true);
        });
      }
    }

    const net::Message m{/*id=*/1, /*origin=*/params_.source, /*hops=*/0};
    simulator_.schedule_at(0.0, [this, m] {
      handle(params_.source, params_.source, m);
    });
    running_ = true;  // liveness transitions from here on count as mid-run
    simulator_.run();

    ExecutionResult result;
    result.num_nodes = params_.num_nodes;
    result.alive = alive_;
    result.received = seen_;
    for (NodeId v = 0; v < params_.num_nodes; ++v) {
      if (alive_[v]) {
        ++result.nonfailed_count;
        if (seen_[v]) ++result.nonfailed_received;
      }
    }
    result.reliability = static_cast<double>(result.nonfailed_received) /
                         static_cast<double>(result.nonfailed_count);
    result.success = result.nonfailed_received == result.nonfailed_count;
    result.messages_sent = network_.counters().sent;
    result.duplicate_receipts = duplicates_;
    result.completion_time = last_receipt_time_;
    result.midrun_crashes = midrun_crashes_;
    return result;
  }

 private:
  struct NodeSlot final : net::NodeHandler {
    NodeSlot(Session* owning_session, NodeId node_id)
        : session(owning_session), self(node_id) {}
    Session* session;
    NodeId self;
    void on_message(NodeId from, const net::Message& message) override {
      session->handle(self, from, message);
    }
  };

  /// Crash/revival entry point for FailureSchedules: flips liveness and the
  /// network's fail-stop flag together. The source is immune (Section 3).
  void set_alive(NodeId v, bool alive) {
    if (v == params_.source) return;
    const bool was_alive = alive_.at(v) != 0;
    if (was_alive == alive) return;
    alive_[v] = alive ? 1 : 0;
    network_.set_down(v, !alive);
    if (!alive && running_) ++midrun_crashes_;
  }

  void handle(NodeId self, NodeId /*from*/, const net::Message& message) {
    last_receipt_time_ = simulator_.now();
    if (seen_[self]) {
      ++duplicates_;
      return;  // Fig. 1: duplicates are discarded immediately
    }
    seen_[self] = 1;
    // Crash case B: the member received m but crashed before forwarding.
    // (Case A never reaches here for crashed members: the network dropped
    // the delivery.) Either way a crashed member draws no fanout, so both
    // cases consume identical randomness for alive members.
    if (!alive_[self]) {
      return;
    }
    const std::int64_t pinned = pinned_fanout_[self];
    const std::int64_t fanout =
        pinned >= 0 ? pinned : params_.fanout->sample(rng_);
    if (fanout <= 0) return;
    const auto view = membership_->view_for(self);
    const auto targets =
        view->select_targets(static_cast<std::size_t>(fanout), rng_);
    net::Message forwarded = message;
    forwarded.hops = message.hops + 1;
    for (const NodeId t : targets) {
      network_.send(self, t, forwarded);
    }
  }

  GossipParams params_;
  std::vector<std::uint8_t> alive_;
  rng::RngStream rng_;
  sim::Simulator simulator_;
  net::Network network_;
  membership::MembershipProviderPtr membership_;
  std::vector<std::uint8_t> seen_;
  std::vector<std::int64_t> pinned_fanout_;  ///< -1 = draw from P as usual.
  std::vector<NodeSlot> slots_;
  std::uint64_t duplicates_ = 0;
  std::uint32_t midrun_crashes_ = 0;
  double last_receipt_time_ = 0.0;
  bool running_ = false;
};

}  // namespace

std::vector<std::uint8_t> draw_alive_mask(std::uint32_t num_nodes,
                                          NodeId source,
                                          double nonfailed_ratio,
                                          rng::RngStream& rng) {
  if (source >= num_nodes) {
    throw std::out_of_range("draw_alive_mask source out of range");
  }
  std::vector<std::uint8_t> alive(num_nodes, 0);
  for (NodeId v = 0; v < num_nodes; ++v) {
    alive[v] = (v == source || rng.bernoulli(nonfailed_ratio)) ? 1 : 0;
  }
  return alive;
}

ExecutionResult run_gossip_once(const GossipParams& params,
                                rng::RngStream& rng) {
  validate(params);
  auto alive = draw_alive_mask(params.num_nodes, params.source,
                               params.nonfailed_ratio, rng);
  return run_gossip_once(params, alive, rng);
}

ExecutionResult run_gossip_once(const GossipParams& params,
                                const std::vector<std::uint8_t>& alive,
                                rng::RngStream& rng) {
  validate(params);
  if (alive.size() != params.num_nodes) {
    throw std::invalid_argument("alive mask size must equal num_nodes");
  }
  if (!alive[params.source]) {
    throw std::invalid_argument("the source member must be alive");
  }
  Session session(params, alive, rng.substream(rng()));
  return session.run();
}

}  // namespace gossip::protocol
