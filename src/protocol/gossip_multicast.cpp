#include "protocol/gossip_multicast.hpp"

#include <algorithm>
#include <stdexcept>

#include "membership/full_view.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace gossip::protocol {

namespace {

void validate(const GossipParams& params) {
  if (params.num_nodes < 2) {
    throw std::invalid_argument("gossip requires >= 2 nodes");
  }
  if (params.source >= params.num_nodes) {
    throw std::out_of_range("gossip source out of range");
  }
  if (!(params.nonfailed_ratio > 0.0 && params.nonfailed_ratio <= 1.0)) {
    throw std::invalid_argument("gossip requires q in (0, 1]");
  }
  if (params.fanout == nullptr) {
    throw std::invalid_argument("gossip requires a fanout distribution");
  }
  if (!(params.midrun_crash_fraction >= 0.0 &&
        params.midrun_crash_fraction <= 1.0)) {
    throw std::invalid_argument(
        "gossip requires midrun_crash_fraction in [0, 1]");
  }
}

/// One execution of Fig. 1 over the DES. Owns all per-run state.
class Session {
 public:
  Session(const GossipParams& params, std::vector<std::uint8_t> alive,
          rng::RngStream rng)
      : params_(params),
        alive_(std::move(alive)),
        rng_(rng),
        network_(simulator_,
                 net::NetworkParams{params.latency, params.loss_probability},
                 rng.substream(0x6e657477)) {
    membership_ = params_.membership
                      ? params_.membership
                      : membership::full_membership(params_.num_nodes);
    seen_.assign(params_.num_nodes, 0);
    slots_.reserve(params_.num_nodes);
    for (NodeId v = 0; v < params_.num_nodes; ++v) {
      slots_.emplace_back(this, v);
    }
    for (auto& slot : slots_) {
      const NodeId id = network_.add_node(slot);
      (void)id;
    }
    if (params_.crash_case == CrashCase::kBeforeReceive) {
      for (NodeId v = 0; v < params_.num_nodes; ++v) {
        if (!alive_[v]) network_.set_down(v, true);
      }
    }
  }

  ExecutionResult run() {
    // Schedule dynamic crashes before dissemination starts. A crashing
    // member flips to failed: the network drops its in-flight deliveries
    // and it never forwards afterwards; it leaves the non-failed population
    // for metric purposes (it is, after all, a failed member).
    if (params_.midrun_crash_fraction > 0.0) {
      const auto crash_time = params_.midrun_crash_time
                                  ? params_.midrun_crash_time
                                  : net::uniform_latency(0.0, 10.0);
      for (NodeId v = 0; v < params_.num_nodes; ++v) {
        if (v == params_.source || !alive_[v]) continue;
        if (!rng_.bernoulli(params_.midrun_crash_fraction)) continue;
        const double when = crash_time->sample(rng_);
        simulator_.schedule_at(when, [this, v] {
          if (!alive_[v]) return;
          alive_[v] = 0;
          ++midrun_crashes_;
          network_.set_down(v, true);
        });
      }
    }

    const net::Message m{/*id=*/1, /*origin=*/params_.source, /*hops=*/0};
    simulator_.schedule_at(0.0, [this, m] {
      handle(params_.source, params_.source, m);
    });
    simulator_.run();

    ExecutionResult result;
    result.num_nodes = params_.num_nodes;
    result.alive = alive_;
    result.received = seen_;
    for (NodeId v = 0; v < params_.num_nodes; ++v) {
      if (alive_[v]) {
        ++result.nonfailed_count;
        if (seen_[v]) ++result.nonfailed_received;
      }
    }
    result.reliability = static_cast<double>(result.nonfailed_received) /
                         static_cast<double>(result.nonfailed_count);
    result.success = result.nonfailed_received == result.nonfailed_count;
    result.messages_sent = network_.counters().sent;
    result.duplicate_receipts = duplicates_;
    result.completion_time = simulator_.now();
    result.midrun_crashes = midrun_crashes_;
    return result;
  }

 private:
  struct NodeSlot final : net::NodeHandler {
    NodeSlot(Session* owning_session, NodeId node_id)
        : session(owning_session), self(node_id) {}
    Session* session;
    NodeId self;
    void on_message(NodeId from, const net::Message& message) override {
      session->handle(self, from, message);
    }
  };

  void handle(NodeId self, NodeId /*from*/, const net::Message& message) {
    if (seen_[self]) {
      ++duplicates_;
      return;  // Fig. 1: duplicates are discarded immediately
    }
    seen_[self] = 1;
    // Crash case B: the member received m but crashed before forwarding.
    // (Case A never reaches here for crashed members: the network dropped
    // the delivery.) Either way a crashed member draws no fanout, so both
    // cases consume identical randomness for alive members.
    if (!alive_[self]) {
      return;
    }
    const std::int64_t fanout = params_.fanout->sample(rng_);
    if (fanout <= 0) return;
    const auto view = membership_->view_for(self);
    const auto targets =
        view->select_targets(static_cast<std::size_t>(fanout), rng_);
    net::Message forwarded = message;
    forwarded.hops = message.hops + 1;
    for (const NodeId t : targets) {
      network_.send(self, t, forwarded);
    }
  }

  GossipParams params_;
  std::vector<std::uint8_t> alive_;
  rng::RngStream rng_;
  sim::Simulator simulator_;
  net::Network network_;
  membership::MembershipProviderPtr membership_;
  std::vector<std::uint8_t> seen_;
  std::vector<NodeSlot> slots_;
  std::uint64_t duplicates_ = 0;
  std::uint32_t midrun_crashes_ = 0;
};

}  // namespace

std::vector<std::uint8_t> draw_alive_mask(std::uint32_t num_nodes,
                                          NodeId source,
                                          double nonfailed_ratio,
                                          rng::RngStream& rng) {
  if (source >= num_nodes) {
    throw std::out_of_range("draw_alive_mask source out of range");
  }
  std::vector<std::uint8_t> alive(num_nodes, 0);
  for (NodeId v = 0; v < num_nodes; ++v) {
    alive[v] = (v == source || rng.bernoulli(nonfailed_ratio)) ? 1 : 0;
  }
  return alive;
}

ExecutionResult run_gossip_once(const GossipParams& params,
                                rng::RngStream& rng) {
  validate(params);
  auto alive = draw_alive_mask(params.num_nodes, params.source,
                               params.nonfailed_ratio, rng);
  return run_gossip_once(params, alive, rng);
}

ExecutionResult run_gossip_once(const GossipParams& params,
                                const std::vector<std::uint8_t>& alive,
                                rng::RngStream& rng) {
  validate(params);
  if (alive.size() != params.num_nodes) {
    throw std::invalid_argument("alive mask size must equal num_nodes");
  }
  if (!alive[params.source]) {
    throw std::invalid_argument("the source member must be alive");
  }
  Session session(params, alive, rng.substream(rng()));
  return session.run();
}

}  // namespace gossip::protocol
