#include "protocol/repeated_gossip.hpp"

#include <stdexcept>

namespace gossip::protocol {

std::vector<std::uint32_t> RepeatedGossipResult::success_count_samples(
    NodeId source) const {
  std::vector<std::uint32_t> samples;
  samples.reserve(alive_count > 0 ? alive_count - 1 : 0);
  for (NodeId v = 0; v < alive.size(); ++v) {
    if (v == source || !alive[v]) continue;
    samples.push_back(receive_counts[v]);
  }
  return samples;
}

RepeatedGossipResult run_repeated_gossip(const RepeatedGossipParams& params,
                                         rng::RngStream& rng) {
  if (params.executions < 1) {
    throw std::invalid_argument("run_repeated_gossip requires executions >= 1");
  }
  RepeatedGossipResult result;
  result.executions = params.executions;
  result.alive = draw_alive_mask(params.base.num_nodes, params.base.source,
                                 params.base.nonfailed_ratio, rng);
  result.alive_count = static_cast<std::uint32_t>(result.alive.count());
  result.receive_counts.assign(params.base.num_nodes, 0);
  result.per_execution_reliability.reserve(
      static_cast<std::size_t>(params.executions));

  for (std::int64_t t = 0; t < params.executions; ++t) {
    auto exec_rng = rng.substream(static_cast<std::uint64_t>(t) + 1);
    const auto exec = run_gossip_once(params.base, result.alive, exec_rng);
    result.per_execution_reliability.push_back(exec.reliability);
    if (exec.success) ++result.successful_executions;
    for (NodeId v = 0; v < params.base.num_nodes; ++v) {
      if (exec.received[v]) ++result.receive_counts[v];
    }
  }
  return result;
}

}  // namespace gossip::protocol
