#include "protocol/round_gossip.hpp"

#include <stdexcept>

#include "membership/full_view.hpp"

namespace gossip::protocol {

namespace {

void validate(const RoundGossipProtocolParams& params) {
  if (params.num_nodes < 2) {
    throw std::invalid_argument("round gossip requires >= 2 nodes");
  }
  if (params.source >= params.num_nodes) {
    throw std::out_of_range("round gossip source out of range");
  }
  if (!(params.nonfailed_ratio > 0.0 && params.nonfailed_ratio <= 1.0)) {
    throw std::invalid_argument("round gossip requires q in (0, 1]");
  }
  if (params.fanout == nullptr) {
    throw std::invalid_argument("round gossip requires a fanout distribution");
  }
  if (params.rounds < 0) {
    throw std::invalid_argument("round gossip requires rounds >= 0");
  }
}

}  // namespace

RoundGossipResult run_round_gossip(const RoundGossipProtocolParams& params,
                                   rng::RngStream& rng) {
  validate(params);
  const auto alive = draw_alive_mask(params.num_nodes, params.source,
                                     params.nonfailed_ratio, rng);
  return run_round_gossip(params, alive, rng);
}

RoundGossipResult run_round_gossip(const RoundGossipProtocolParams& params,
                                   const core::Bitvec& alive,
                                   rng::RngStream& rng) {
  validate(params);
  if (alive.size() != params.num_nodes) {
    throw std::invalid_argument("alive mask size must equal num_nodes");
  }
  if (!alive[params.source]) {
    throw std::invalid_argument("the source member must be alive");
  }
  const auto membership = params.membership
                              ? params.membership
                              : membership::full_membership(params.num_nodes);

  // Round-synchronous execution: no per-message events are needed, so this
  // baseline runs as a plain loop (the DES path is exercised by the Fig. 1
  // protocol; both report the same ExecutionResult metrics).
  core::Bitvec informed(params.num_nodes);
  informed.set(params.source);
  std::vector<NodeId> fresh{params.source};  // informed in the last round
  std::vector<NodeId> targets;               // per-sender selection scratch
  std::uint64_t messages_sent = 0;
  std::uint64_t duplicates = 0;

  const auto nonfailed_count = static_cast<std::uint32_t>(alive.count());
  std::uint32_t nonfailed_informed = 1;  // the source

  RoundGossipResult result;
  result.informed_per_round.push_back(
      static_cast<double>(nonfailed_informed) /
      static_cast<double>(nonfailed_count));

  // Per-round buffers hoisted out of the loop: capacity persists across
  // rounds, so the steady-state loop reuses it instead of reallocating.
  std::vector<NodeId> senders;
  std::vector<NodeId> newly;
  std::vector<membership::MembershipViewPtr> view_cache(params.num_nodes);
  for (std::int64_t round = 0; round < params.rounds; ++round) {
    // Snapshot of this round's senders.
    senders.clear();
    if (params.mode == RoundGossipMode::kForwardOnce) {
      senders.swap(fresh);
    } else {
      for (NodeId v = 0; v < params.num_nodes; ++v) {
        if (informed[v] && alive[v]) senders.push_back(v);
      }
    }
    if (senders.empty()) break;

    newly.clear();
    for (const NodeId s : senders) {
      if (!alive[s]) continue;  // crashed members never push
      const std::int64_t fanout = params.fanout->sample(rng);
      if (fanout <= 0) continue;
      auto& view = view_cache[s];
      if (view == nullptr) view = membership->view_for(s);
      view->select_targets_into(static_cast<std::size_t>(fanout), rng,
                                targets);
      for (const NodeId t : targets) {
        ++messages_sent;
        if (informed[t]) {
          ++duplicates;
          continue;
        }
        informed.set(t);
        newly.push_back(t);
        if (alive[t]) ++nonfailed_informed;
      }
    }
    result.rounds_executed = round + 1;
    result.informed_per_round.push_back(
        static_cast<double>(nonfailed_informed) /
        static_cast<double>(nonfailed_count));
    if (params.mode == RoundGossipMode::kForwardOnce) {
      // Only alive fresh receivers forward next round.
      for (const NodeId v : newly) {
        if (alive[v]) fresh.push_back(v);
      }
      if (fresh.empty()) break;
    }
  }

  ExecutionResult& exec = result.execution;
  exec.num_nodes = params.num_nodes;
  exec.alive = alive;
  exec.received = informed;
  exec.nonfailed_count = nonfailed_count;
  exec.nonfailed_received = nonfailed_informed;
  exec.reliability = static_cast<double>(nonfailed_informed) /
                     static_cast<double>(nonfailed_count);
  exec.success = nonfailed_informed == nonfailed_count;
  exec.messages_sent = messages_sent;
  exec.duplicate_receipts = duplicates;
  exec.completion_time = static_cast<double>(result.rounds_executed);
  return result;
}

}  // namespace gossip::protocol
